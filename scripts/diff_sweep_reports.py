#!/usr/bin/env python3
"""Bit-identity check between two exploration CSV reports.

Used by the CI distributed smoke sweep: a single-process `sunmap_cli
--sweep` run and a `--workers N` run over the same grid must emit
identical reports — every scalar printed for every (point, topology)
cell, winner rows included — except for the shard/worker provenance
columns, which are empty in-process and populated in a distributed run.

  diff_sweep_reports.py single.csv distributed.csv

Exits 1 and prints the first differing rows when the reports diverge,
or when the distributed report carries no provenance at all (which would
mean the sweep silently ran in-process).
"""

import csv
import sys

PROVENANCE_COLUMNS = ("shard", "worker")


def load(path: str):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    if not rows:
        print(f"FAIL: {path} is empty")
        sys.exit(1)
    return rows[0], rows[1:]


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    single_path, distributed_path = sys.argv[1], sys.argv[2]
    single_header, single_rows = load(single_path)
    dist_header, dist_rows = load(distributed_path)

    if single_header != dist_header:
        print(f"FAIL: header mismatch:\n  {single_path}: {single_header}\n"
              f"  {distributed_path}: {dist_header}")
        return 1
    masked = [i for i, name in enumerate(single_header)
              if name in PROVENANCE_COLUMNS]
    if len(masked) != len(PROVENANCE_COLUMNS):
        print(f"FAIL: expected provenance columns {PROVENANCE_COLUMNS} "
              f"in the header, got {single_header}")
        return 1

    if len(single_rows) != len(dist_rows):
        print(f"FAIL: {single_path} has {len(single_rows)} rows but "
              f"{distributed_path} has {len(dist_rows)}")
        return 1

    def mask(row):
        return [cell for i, cell in enumerate(row) if i not in masked]

    ok = True
    for line, (s, d) in enumerate(zip(single_rows, dist_rows), start=2):
        if mask(s) != mask(d):
            print(f"FAIL: row {line} differs beyond provenance:\n"
                  f"  {single_path}: {s}\n  {distributed_path}: {d}")
            ok = False
            if line > 12:  # Enough to diagnose; don't flood the log.
                break

    populated = sum(1 for row in dist_rows
                    if any(row[i] for i in masked if i < len(row)))
    if populated == 0:
        print(f"FAIL: {distributed_path} has empty shard/worker columns "
              f"everywhere — the sweep did not run distributed")
        ok = False

    if ok:
        print(f"OK: {len(single_rows)} rows bit-identical "
              f"(provenance columns masked; {populated} rows carry "
              f"shard/worker provenance)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
