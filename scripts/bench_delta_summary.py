#!/usr/bin/env python3
"""Markdown delta summary between a fresh probe JSON and its baseline.

Used by the refresh-baselines CI job to surface what a merge just did to
the tracked benchmarks (BENCH_search.json in particular) in the GitHub job
summary, before the fresh numbers overwrite the committed baselines:

  bench_delta_summary.py --current BENCH_search.json \
      --baseline bench/baselines/BENCH_search.json >> "$GITHUB_STEP_SUMMARY"

Prints the top-level wall clock, every sub-benchmark's old/new/delta, and
any recorded invariant flags (bit_identical, annealing_incremental, ...).
Missing baselines render as "new" rows instead of failing — this is a
reporting tool; the hard gate is check_bench_regression.py.
"""

import argparse
import json
import os
import sys

# The hard gate owns the invariant list; the summary reports those plus the
# informational speedup/fraction scalars the probes record alongside them.
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_bench_regression import INVARIANT_KEYS as GATED_INVARIANT_KEYS

INVARIANT_KEYS = GATED_INVARIANT_KEYS + (
    "annealing_speedup_rigid", "annealing_speedup_sized",
    "annealing_txn_speedup_rigid", "annealing_txn_speedup_sized",
    "aggregate_speedup", "min_prune_fraction", "min_area_prune_fraction",
    "min_power_prune_fraction", "fault_incremental_speedup",
    "session_speedup_minpath", "session_speedup_splitall",
    "event_speedup_light_load", "hot_path_speedup", "finalist_speedup_2t")


def fmt_ms(value) -> str:
    return f"{float(value):.1f}"


def delta_cell(current: float, baseline) -> str:
    if baseline is None or float(baseline) <= 0.0:
        return "new"
    ratio = float(current) / float(baseline)
    sign = "+" if ratio >= 1.0 else ""
    return f"{sign}{100.0 * (ratio - 1.0):.0f}%"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", required=True)
    args = parser.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except FileNotFoundError:
        baseline = {}

    name = current.get("benchmark", args.current)
    print(f"### {name} baseline refresh\n")
    print("| benchmark | baseline ms | fresh ms | delta |")
    print("|---|---|---|---|")
    base_wall = baseline.get("wall_ms")
    print(f"| {name} (total) | "
          f"{fmt_ms(base_wall) if base_wall is not None else '—'} | "
          f"{fmt_ms(current['wall_ms'])} | "
          f"{delta_cell(current['wall_ms'], base_wall)} |")
    baseline_subs = baseline.get("sub_benchmarks", {})
    for sub, ms in current.get("sub_benchmarks", {}).items():
        base_ms = baseline_subs.get(sub)
        print(f"| {sub} | "
              f"{fmt_ms(base_ms) if base_ms is not None else '—'} | "
              f"{fmt_ms(ms)} | {delta_cell(ms, base_ms)} |")

    flags = [(key, baseline.get(key), current.get(key))
             for key in INVARIANT_KEYS if key in current]
    if flags:
        print("\n| invariant | baseline | fresh |")
        print("|---|---|---|")
        for key, old, new in flags:
            marker = "" if old in (None, new) else " ⚠️"
            print(f"| {key} | {old if old is not None else '—'} | "
                  f"{new}{marker} |")

    # The fault probe also records how degraded-mode re-evaluation scales
    # with the number of injected scenarios; render it as its own table so
    # the trend (incremental flat-ish, reference linear) stays visible.
    scaling = current.get("scenario_scaling")
    if scaling:
        baseline_scaling = {point.get("scenarios"): point
                            for point in baseline.get("scenario_scaling", [])}
        print("\n| scenarios | incremental ms | reference ms | speedup | "
              "baseline speedup |")
        print("|---|---|---|---|---|")
        for point in scaling:
            old = baseline_scaling.get(point.get("scenarios"), {})
            old_speedup = old.get("speedup")
            print(f"| {point['scenarios']} | "
                  f"{fmt_ms(point['incremental_ms'])} | "
                  f"{fmt_ms(point['reference_ms'])} | "
                  f"{float(point['speedup']):.2f}x | "
                  f"{f'{float(old_speedup):.2f}x' if old_speedup is not None else '—'} |")

    # The distributed probe records how the sweep scales with forked worker
    # processes against the single-process explorer; render it the same way
    # so the fork/merge overhead trend stays visible across runners.
    scaling = current.get("worker_scaling")
    if scaling:
        baseline_scaling = {point.get("workers"): point
                            for point in baseline.get("worker_scaling", [])}
        print("\n| workers | wall ms | speedup vs single | "
              "baseline speedup |")
        print("|---|---|---|---|")
        for point in scaling:
            old = baseline_scaling.get(point.get("workers"), {})
            old_speedup = old.get("speedup")
            print(f"| {point['workers']} | "
                  f"{fmt_ms(point['ms'])} | "
                  f"{float(point['speedup']):.2f}x | "
                  f"{f'{float(old_speedup):.2f}x' if old_speedup is not None else '—'} |")
    # The simulation probe records each (topology, traffic) leg run by both
    # engines; render cycle-vs-event and the events/sec the event engine
    # sustains so the light-load win stays visible as the router model grows.
    probe = current.get("engine_probe")
    if probe:
        baseline_probe = {row.get("run"): row
                          for row in baseline.get("engine_probe", [])}
        print("\n| leg | cycle ms | event ms | speedup | "
              "baseline speedup | Mevents/s |")
        print("|---|---|---|---|---|---|")
        for row in probe:
            old = baseline_probe.get(row.get("run"), {})
            old_speedup = old.get("speedup")
            print(f"| {row['run']} | "
                  f"{fmt_ms(row['cycle_ms'])} | "
                  f"{fmt_ms(row['event_ms'])} | "
                  f"{float(row['speedup']):.2f}x | "
                  f"{f'{float(old_speedup):.2f}x' if old_speedup is not None else '—'} | "
                  f"{float(row['event_events_per_sec']) / 1e6:.2f} |")

    # The simulation probe also compares the overhauled event engine against
    # the frozen in-binary pre-overhaul baseline per leg; keep the hot-path
    # win visible as the router model keeps growing.
    probe = current.get("hot_path_probe")
    if probe:
        baseline_probe = {row.get("run"): row
                          for row in baseline.get("hot_path_probe", [])}
        print("\n| leg | frozen-baseline ms | current ms | speedup | "
              "baseline speedup |")
        print("|---|---|---|---|---|")
        for row in probe:
            old = baseline_probe.get(row.get("run"), {})
            old_speedup = old.get("speedup")
            print(f"| {row['run']} | "
                  f"{fmt_ms(row['baseline_ms'])} | "
                  f"{fmt_ms(row['current_ms'])} | "
                  f"{float(row['speedup']):.2f}x | "
                  f"{f'{float(old_speedup):.2f}x' if old_speedup is not None else '—'} |")

    # And how the parallel finalist tier scales with worker threads (the
    # 2-thread bar is gated on multi-core machines only).
    scaling = current.get("finalist_scaling")
    if scaling:
        baseline_scaling = {point.get("threads"): point
                            for point in baseline.get("finalist_scaling", [])}
        print("\n| finalist threads | wall ms | speedup vs serial | "
              "baseline speedup |")
        print("|---|---|---|---|")
        for point in scaling:
            old = baseline_scaling.get(point.get("threads"), {})
            old_speedup = old.get("speedup")
            print(f"| {point['threads']} | "
                  f"{fmt_ms(point['ms'])} | "
                  f"{float(point['speedup']):.2f}x | "
                  f"{f'{float(old_speedup):.2f}x' if old_speedup is not None else '—'} |")
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
