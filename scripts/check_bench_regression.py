#!/usr/bin/env python3
"""Cross-PR perf regression gate for the benchmark probes.

Compares the `wall_ms` of freshly measured probe JSONs against their
committed baselines and fails (exit 1) when a measurement is more than
--max-slowdown times its baseline. The committed baselines are recorded on
the development container; CI runners differ in absolute speed, which is
why the gate is a generous ratio rather than a tight budget — it exists to
catch order-of-magnitude regressions (a disabled cache, an accidentally
quadratic loop), not scheduling noise.

Several probes are gated in one invocation by repeating --current/--baseline
(pairs are matched positionally). Every pair's "benchmark" name must match
between current and baseline, and every sub-benchmark present in a current
file must exist in its baseline — unmatched names are hard errors, so a
probe silently renamed or missing from the committed baselines can never
slip through green.

Usage:
  check_bench_regression.py \
      --current BENCH_mapping.json --baseline bench/baselines/BENCH_mapping.json \
      --current BENCH_exploration.json --baseline bench/baselines/BENCH_exploration.json \
      [--max-slowdown 2.0]
"""

import argparse
import json
import sys

# Correctness invariants recorded alongside the timings, when present: the
# probes' mapping costs, candidate counts, bit-identity flags, the
# incremental floorplanner's 2x acceptance bar, and the transactional
# annealing win (bit-identical SA with incremental floorplan deltas on
# accept AND reject, >= 2x where the delta-vs-rebuild machinery is
# isolated), and the fault-evaluation pair (an empty fault set leaves the
# mapping search bit-identical; degraded re-evaluation through prebuilt
# per-scenario BFS tables is >= 2x the from-scratch masked searches) are
# part of the contract and must not drift as the engine gets faster. The
# distributed-sweep probe adds two more: a merged multi-process report and
# a checkpoint-resumed report must both stay bit-identical to the
# single-process explorer. The routing probe adds the transactional
# incremental-routing pair: every speculative RoutingSession solve is
# bit-identical to the from-scratch canonical loop, and the gated
# exploration legs keep the >= 2x session speedup under both minimum-path
# and split-all routing. The simulation probe adds the engine pair: the
# event-driven engine is bit-identical to the cycle-stepped reference on
# every leg (the full SimStats record, verdict paths included), and the
# light-load legs keep the >= 3x aggregate event speedup. The simulator
# hot-path overhaul adds two more: the overhauled event engine stays
# bit-identical to the frozen in-binary pre-overhaul baseline while keeping
# the >= 1.3x aggregate speedup over it, and the explorer's parallel
# finalist tier merges simulation scores bit-identically to the serial pass
# at every thread count.
INVARIANT_KEYS = ("cost", "evaluated_mappings", "pruned_mappings",
                  "bit_identical", "restart_never_worse", "incremental_2x",
                  "annealing_incremental", "fault_free_bit_identical",
                  "fault_incremental_2x", "merge_bit_identical",
                  "resume_bit_identical", "routing_bit_identical",
                  "routing_incremental_2x", "sim_bit_identical",
                  "sim_event_3x", "sim_hot_path_1p3x",
                  "finalist_parallel_identical")


def check_pair(current_path: str, baseline_path: str,
               max_slowdown: float) -> bool:
    with open(current_path) as f:
        current = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    ok = True
    current_name = current.get("benchmark")
    baseline_name = baseline.get("benchmark")
    if current_name != baseline_name:
        print(f"FAIL: benchmark name mismatch: {current_path} is "
              f"{current_name!r} but {baseline_path} is {baseline_name!r}")
        return False

    def gate(label: str, current_ms: float, baseline_ms: float) -> bool:
        if baseline_ms <= 0:
            print(f"FAIL: {label}: baseline wall_ms is {baseline_ms}; "
                  f"nothing to compare")
            return False
        ratio = current_ms / baseline_ms
        print(f"{label}: current {current_ms:.1f} ms vs baseline "
              f"{baseline_ms:.1f} ms (ratio {ratio:.2f}, "
              f"limit {max_slowdown:.2f})")
        if ratio > max_slowdown:
            print(f"FAIL: {label} slowed beyond the regression limit")
            return False
        return True

    ok &= gate(str(current_name), float(current["wall_ms"]),
               float(baseline["wall_ms"]))

    # Sub-benchmarks: every name measured now must have a committed
    # baseline; a missing one is a hard error, not a silent pass.
    current_subs = current.get("sub_benchmarks", {})
    baseline_subs = baseline.get("sub_benchmarks", {})
    for name, current_ms in current_subs.items():
        if name not in baseline_subs:
            print(f"FAIL: {current_name}/{name} has no baseline in "
                  f"{baseline_path} — refresh the committed baselines")
            ok = False
            continue
        ok &= gate(f"{current_name}/{name}", float(current_ms),
                   float(baseline_subs[name]))
    for name in baseline_subs:
        if name not in current_subs:
            print(f"warning: baseline sub-benchmark {current_name}/{name} "
                  f"was not measured in this run")

    for key in INVARIANT_KEYS:
        if key in baseline and key in current and current[key] != baseline[key]:
            print(f"FAIL: {current_name}: {key} drifted: "
                  f"baseline {baseline[key]} vs current {current[key]}")
            ok = False
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", action="append", required=True,
                        help="probe JSON produced by this run (repeatable)")
    parser.add_argument("--baseline", action="append", required=True,
                        help="committed baseline JSON (repeatable, paired "
                             "positionally with --current)")
    parser.add_argument("--max-slowdown", type=float, default=2.0,
                        help="fail when current/baseline exceeds this ratio")
    args = parser.parse_args()

    if len(args.current) != len(args.baseline):
        print(f"FAIL: {len(args.current)} --current file(s) but "
              f"{len(args.baseline)} --baseline file(s)")
        return 1

    ok = True
    for current_path, baseline_path in zip(args.current, args.baseline):
        ok &= check_pair(current_path, baseline_path, args.max_slowdown)
    print("OK" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
