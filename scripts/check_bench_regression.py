#!/usr/bin/env python3
"""Cross-PR perf regression gate for the benchmark probes.

Compares the `wall_ms` of a freshly measured probe JSON against the
committed baseline and fails (exit 1) when the measurement is more than
--max-slowdown times the baseline. The committed baselines are recorded on
the development container; CI runners differ in absolute speed, which is
why the gate is a generous ratio rather than a tight budget — it exists to
catch order-of-magnitude regressions (a disabled cache, an accidentally
quadratic loop), not scheduling noise.

Usage:
  check_bench_regression.py --current BENCH_mapping.json \
      --baseline bench/baselines/BENCH_mapping.json [--max-slowdown 2.0]
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="probe JSON produced by this run")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--max-slowdown", type=float, default=2.0,
                        help="fail when current/baseline exceeds this ratio")
    args = parser.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    current_ms = float(current["wall_ms"])
    baseline_ms = float(baseline["wall_ms"])
    if baseline_ms <= 0:
        print(f"baseline wall_ms is {baseline_ms}; nothing to compare")
        return 1
    ratio = current_ms / baseline_ms
    print(f"{current.get('benchmark', args.current)}: "
          f"current {current_ms:.1f} ms vs baseline {baseline_ms:.1f} ms "
          f"(ratio {ratio:.2f}, limit {args.max_slowdown:.2f})")

    # Correctness invariants recorded alongside the timing, when present:
    # the probe's mapping cost and candidate counts are part of the
    # contract and must not drift as the engine gets faster.
    for key in ("cost", "evaluated_mappings", "pruned_mappings",
                "bit_identical"):
        if key in baseline and key in current and current[key] != baseline[key]:
            print(f"FAIL: {key} drifted: baseline {baseline[key]} "
                  f"vs current {current[key]}")
            return 1

    if ratio > args.max_slowdown:
        print("FAIL: benchmark slowed beyond the regression limit")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
