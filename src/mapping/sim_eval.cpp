#include "mapping/sim_eval.h"

#include <stdexcept>
#include <vector>

namespace sunmap::mapping {

SimTierOptions sim_tier_options(const MapperConfig& config) {
  SimTierOptions options;
  options.config.engine = config.sim_use_event_engine
                              ? sim::SimEngine::kEventDriven
                              : sim::SimEngine::kCycleStepped;
  options.config.seed = config.sim_seed;
  options.flits_per_cycle_per_gbps = config.sim_flits_per_cycle_per_gbps;
  options.traffic = config.sim_traffic;
  options.burst_len = config.sim_burst_len;
  options.burst_duty = config.sim_burst_duty;
  return options;
}

SimEvaluator::SimEvaluator(SimTierOptions options)
    : options_(std::move(options)) {
  if (options_.cache_capacity < 1) {
    throw std::invalid_argument(
        "SimEvaluator: cache_capacity must be >= 1");
  }
}

SimScore SimEvaluator::score(const CoreGraph& app,
                             const topo::Topology& topology,
                             const MappingResult& result) {
  const auto commodities = commodities_by_value(app);
  if (result.eval.routes.size() != commodities.size()) {
    throw std::invalid_argument(
        "SimEvaluator: result carries no materialized routes");
  }
  if (result.core_to_slot.size() <
      static_cast<std::size_t>(app.num_cores())) {
    throw std::invalid_argument("SimEvaluator: incomplete mapping");
  }

  // Bind the mapping's own routes (borrowed, not copied) and its traffic
  // rates into the simulator. Commodity order is the deterministic
  // routing order, so flow order — and with it the PRNG draw order — is
  // reproducible.
  sim::RouteTable table(topology.num_slots());
  std::vector<sim::TrafficFlow> flows;
  flows.reserve(commodities.size());
  double weighted_latency = 0.0;
  double weight_sum = 0.0;
  const double flits = static_cast<double>(options_.config.flits_per_packet);
  const double link_lat =
      static_cast<double>(options_.config.link_latency_cycles);
  for (std::size_t k = 0; k < commodities.size(); ++k) {
    const auto& c = commodities[k];
    const int src_slot =
        result.core_to_slot[static_cast<std::size_t>(c.src_core)];
    const int dst_slot =
        result.core_to_slot[static_cast<std::size_t>(c.dst_core)];
    const auto& routes = result.eval.routes[k];
    table.set_ref(src_slot, dst_slot, routes);
    flows.push_back(sim::TrafficFlow{src_slot, dst_slot, c.value_mbps});
    // Zero-load packet latency for this commodity: F flits pipeline behind
    // the head over S switches and S-1 links.
    const double switches = routes.weighted_switch_hops();
    weighted_latency += c.value_mbps * (flits + (switches - 1.0) * link_lat);
    weight_sum += c.value_mbps;
  }

  auto [it, inserted] = cache_.try_emplace(&topology);
  Entry& entry = it->second;
  entry.last_used = ++use_tick_;
  if (inserted) {
    entry.layout = sim::make_network_layout(topology);
    entry.simulator = std::make_unique<sim::Simulator>(
        topology, table, options_.config, entry.layout);
    // Bounded LRU: evict the least-recently-scored topology beyond the
    // capacity (never the entry just inserted).
    while (cache_.size() > options_.cache_capacity) {
      auto victim = cache_.begin();
      for (auto c = cache_.begin(); c != cache_.end(); ++c) {
        if (c->second.last_used < victim->second.last_used) victim = c;
      }
      cache_.erase(victim);
    }
  } else {
    entry.simulator->bind(table);
  }

  SimScore score;
  if (options_.traffic == SimTraffic::kBursty) {
    sim::BurstyTraffic traffic(flows, options_.config.flits_per_packet,
                               options_.flits_per_cycle_per_gbps,
                               options_.burst_len, options_.burst_duty);
    score.stats = entry.simulator->run(traffic);
  } else {
    sim::TraceTraffic traffic(flows, options_.config.flits_per_packet,
                              options_.flits_per_cycle_per_gbps);
    score.stats = entry.simulator->run(traffic);
  }
  score.analytical_latency_cycles =
      weight_sum > 0.0 ? weighted_latency / weight_sum : 0.0;
  score.simulated_latency_cycles = score.stats.avg_latency_cycles;
  return score;
}

}  // namespace sunmap::mapping
