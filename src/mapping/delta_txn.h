#pragma once

#include <utility>
#include <vector>

#include "mapping/mapper.h"

namespace sunmap::mapping {

class EvalContext;
struct EvalScratch;

/// One pairwise slot exchange of a batched transactional move.
using SlotMove = std::pair<int, int>;

/// The transactional delta-evaluation protocol of the mapping search: one
/// begin -> speculative evaluate -> commit | rollback cycle that atomically
/// spans every piece of state a candidate swap touches —
///
///  * the mapping arrays (core_to_slot and its slot_to_core inverse),
///  * the scratch's incremental fplan::FloorplanSession (cache misses under
///    an open speculation solve through push_shapes, journaling what they
///    displace) together with the scratch's session shape key,
///  * the scratch's incremental route::RoutingSession (adaptive-routing
///    evaluations under an open speculation solve speculatively, journaling
///    displaced routes in session frames that rollback pops), and
///  * the EvalContext memo caches, which being pure memoisation need no
///    undo: a speculative result cached during a rolled-back transaction is
///    still the exact value any later evaluation of that mapping computes.
///
/// begin_moves() applies an ordered batch of pairwise slot exchanges (a
/// single swap, a 2-opt chain, a segment rotation — any permutation
/// decomposed into transpositions); begin_swap() is the one-element sugar.
/// evaluate()/prunable() then see the speculative mapping through the
/// normal EvalContext entry points; commit() keeps it (dropping the
/// journals), rollback() restores the mapping (reverse-applying the batch —
/// each exchange is self-inverse), the floorplan-session state (in
/// O(dirty), via the session's undo journal — no re-derivation), the
/// session key, and the routing-session trace, bit-identically to the state
/// before begin_moves(). This is what lets annealing chains reject a
/// candidate without leaving either session dirty: the next candidate's
/// delta is measured against the incumbent, not against the rejected
/// speculation.
///
/// The transaction borrows everything it coordinates; the context, scratch,
/// and both mapping vectors must outlive it. One scratch carries at most
/// one open speculation (begin_moves() under an open one throws); concurrent
/// search workers each run their own transaction over their own scratch.
/// Destroying an open transaction rolls it back.
class DeltaTxn {
 public:
  DeltaTxn(const EvalContext& ctx, EvalScratch& scratch,
           std::vector<int>& core_to_slot, std::vector<int>& slot_to_core);
  ~DeltaTxn();

  DeltaTxn(const DeltaTxn&) = delete;
  DeltaTxn& operator=(const DeltaTxn&) = delete;

  /// Applies the pairwise swap of slots (a, b) to the mapping arrays and
  /// opens the speculation. Swapping two empty slots is the caller's no-op
  /// to skip; a swap involving one empty slot moves the occupying core.
  /// Sugar for begin_moves({{a, b}}).
  void begin_swap(int slot_a, int slot_b);

  /// Applies an ordered batch of pairwise slot exchanges atomically and
  /// opens the speculation: the mapping after begin_moves({{a,b},{b,c}}) is
  /// the 3-cycle a->b->c->a of the incumbent mapping's slot contents.
  /// rollback() reverse-applies the batch. Throws on an empty batch and
  /// under an already-open speculation.
  void begin_moves(const std::vector<SlotMove>& moves);

  /// Evaluates the current (speculative or committed) mapping through the
  /// context. Works outside a speculation too — e.g. for the initial
  /// mapping — where it behaves exactly like ctx.evaluate().
  [[nodiscard]] Evaluation evaluate(bool materialize = false) const;

  /// Phase-1 bound check of the current mapping against `incumbent`
  /// (EvalContext::prunable through this transaction's scratch).
  [[nodiscard]] bool prunable(const Evaluation& incumbent) const;

  /// Keeps the speculative batch: the mapping stays, the session journals
  /// are committed, and the transaction is ready for the next begin_moves().
  void commit();

  /// Undoes the speculative batch: mapping arrays, floorplan-session state,
  /// session key, and routing-session trace all return to their
  /// pre-begin_moves() values.
  void rollback();

  [[nodiscard]] bool open() const { return open_; }

 private:
  const EvalContext& ctx_;
  EvalScratch& scratch_;
  std::vector<int>& core_to_slot_;
  std::vector<int>& slot_to_core_;
  std::vector<SlotMove> moves_;
  bool open_ = false;
};

/// Applies the pairwise swap of slots (a, b) to a mapping and its inverse in
/// place. Self-inverse: applying it twice restores both arrays — the
/// primitive DeltaTxn's begin/rollback are built on.
void apply_slot_swap(int a, int b, std::vector<int>& core_to_slot,
                     std::vector<int>& slot_to_core);

}  // namespace sunmap::mapping
