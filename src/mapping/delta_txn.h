#pragma once

#include <vector>

#include "mapping/mapper.h"

namespace sunmap::mapping {

class EvalContext;
struct EvalScratch;

/// The transactional delta-evaluation protocol of the mapping search: one
/// begin -> speculative evaluate -> commit | rollback cycle that atomically
/// spans every piece of state a candidate swap touches —
///
///  * the mapping arrays (core_to_slot and its slot_to_core inverse),
///  * the scratch's incremental fplan::FloorplanSession (cache misses under
///    an open speculation solve through push_shapes, journaling what they
///    displace) together with the scratch's session shape key, and
///  * the EvalContext memo caches, which being pure memoisation need no
///    undo: a speculative result cached during a rolled-back transaction is
///    still the exact value any later evaluation of that mapping computes.
///
/// begin_swap() applies a pairwise slot swap; evaluate()/prunable() then see
/// the speculative mapping through the normal EvalContext entry points;
/// commit() keeps it (dropping the journal), rollback() restores the
/// mapping, the session state (in O(dirty), via the session's undo journal
/// — no re-derivation), and the session key, bit-identically to the state
/// before begin_swap(). This is what lets annealing chains reject a
/// candidate without leaving the floorplan session dirty: the next
/// candidate's delta is measured against the incumbent, not against the
/// rejected speculation.
///
/// The transaction borrows everything it coordinates; the context, scratch,
/// and both mapping vectors must outlive it. One scratch carries at most
/// one open speculation (begin_swap() under an open one throws); concurrent
/// search workers each run their own transaction over their own scratch.
/// Destroying an open transaction rolls it back.
class DeltaTxn {
 public:
  DeltaTxn(const EvalContext& ctx, EvalScratch& scratch,
           std::vector<int>& core_to_slot, std::vector<int>& slot_to_core);
  ~DeltaTxn();

  DeltaTxn(const DeltaTxn&) = delete;
  DeltaTxn& operator=(const DeltaTxn&) = delete;

  /// Applies the pairwise swap of slots (a, b) to the mapping arrays and
  /// opens the speculation. Swapping two empty slots is the caller's no-op
  /// to skip; a swap involving one empty slot moves the occupying core.
  void begin_swap(int slot_a, int slot_b);

  /// Evaluates the current (speculative or committed) mapping through the
  /// context. Works outside a speculation too — e.g. for the initial
  /// mapping — where it behaves exactly like ctx.evaluate().
  [[nodiscard]] Evaluation evaluate(bool materialize = false) const;

  /// Phase-1 bound check of the current mapping against `incumbent`
  /// (EvalContext::prunable through this transaction's scratch).
  [[nodiscard]] bool prunable(const Evaluation& incumbent) const;

  /// Keeps the speculative swap: the mapping stays, the session journal is
  /// committed, and the transaction is ready for the next begin_swap().
  void commit();

  /// Undoes the speculative swap: mapping arrays, floorplan-session state,
  /// and session key all return to their pre-begin_swap() values.
  void rollback();

  [[nodiscard]] bool open() const { return open_; }

 private:
  const EvalContext& ctx_;
  EvalScratch& scratch_;
  std::vector<int>& core_to_slot_;
  std::vector<int>& slot_to_core_;
  int slot_a_ = -1;
  int slot_b_ = -1;
  bool open_ = false;
};

/// Applies the pairwise swap of slots (a, b) to a mapping and its inverse in
/// place. Self-inverse: applying it twice restores both arrays — the
/// primitive DeltaTxn's begin/rollback are built on.
void apply_slot_swap(int a, int b, std::vector<int>& core_to_slot,
                     std::vector<int>& slot_to_core);

}  // namespace sunmap::mapping
