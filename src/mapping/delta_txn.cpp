#include "mapping/delta_txn.h"

#include <stdexcept>
#include <utility>

#include "mapping/eval_context.h"

namespace sunmap::mapping {

void apply_slot_swap(int a, int b, std::vector<int>& core_to_slot,
                     std::vector<int>& slot_to_core) {
  const int core_a = slot_to_core[static_cast<std::size_t>(a)];
  const int core_b = slot_to_core[static_cast<std::size_t>(b)];
  if (core_a >= 0) core_to_slot[static_cast<std::size_t>(core_a)] = b;
  if (core_b >= 0) core_to_slot[static_cast<std::size_t>(core_b)] = a;
  std::swap(slot_to_core[static_cast<std::size_t>(a)],
            slot_to_core[static_cast<std::size_t>(b)]);
}

DeltaTxn::DeltaTxn(const EvalContext& ctx, EvalScratch& scratch,
                   std::vector<int>& core_to_slot,
                   std::vector<int>& slot_to_core)
    : ctx_(ctx),
      scratch_(scratch),
      core_to_slot_(core_to_slot),
      slot_to_core_(slot_to_core) {
  if (scratch_.txn_depth != 0) {
    throw std::logic_error(
        "DeltaTxn: scratch already carries an open speculation");
  }
}

DeltaTxn::~DeltaTxn() {
  // Exception safety: a speculation abandoned mid-flight (an evaluate()
  // throwing, a search unwound early) must not leak swapped mappings or
  // journaled session frames into the committed state.
  if (open_) rollback();
}

void DeltaTxn::begin_swap(int slot_a, int slot_b) {
  begin_moves({{slot_a, slot_b}});
}

void DeltaTxn::begin_moves(const std::vector<SlotMove>& moves) {
  if (open_) {
    throw std::logic_error(
        "DeltaTxn::begin_moves: previous speculation not settled");
  }
  if (moves.empty()) {
    throw std::invalid_argument("DeltaTxn::begin_moves: empty move batch");
  }
  for (const auto& [a, b] : moves) {
    apply_slot_swap(a, b, core_to_slot_, slot_to_core_);
  }
  moves_ = moves;
  open_ = true;
  scratch_.txn_depth = 1;
  scratch_.txn_session_pushes = 0;
  scratch_.txn_route_pushes = 0;
  scratch_.txn_key_undo.clear();
}

Evaluation DeltaTxn::evaluate(bool materialize) const {
  return ctx_.evaluate(core_to_slot_, scratch_, materialize);
}

bool DeltaTxn::prunable(const Evaluation& incumbent) const {
  return ctx_.prunable(core_to_slot_, incumbent, scratch_);
}

void DeltaTxn::commit() {
  if (!open_) throw std::logic_error("DeltaTxn::commit: no open speculation");
  if (scratch_.txn_session_pushes > 0) {
    scratch_.fplan_session->commit_shapes();
  }
  if (scratch_.txn_route_pushes > 0) {
    scratch_.routing_session->commit();
  }
  scratch_.txn_depth = 0;
  scratch_.txn_session_pushes = 0;
  scratch_.txn_route_pushes = 0;
  scratch_.txn_key_undo.clear();
  open_ = false;
}

void DeltaTxn::rollback() {
  if (!open_) {
    throw std::logic_error("DeltaTxn::rollback: no open speculation");
  }
  // Each exchange is self-inverse, so reverse-applying the batch restores
  // the mapping; the session key entries are restored in reverse journal
  // order (a slot touched by several speculative floorplan misses lands
  // back on its pre-speculation class); both sessions' frames pop
  // newest-first by construction.
  for (auto it = moves_.rbegin(); it != moves_.rend(); ++it) {
    apply_slot_swap(it->first, it->second, core_to_slot_, slot_to_core_);
  }
  for (auto it = scratch_.txn_key_undo.rbegin();
       it != scratch_.txn_key_undo.rend(); ++it) {
    scratch_.fplan_session_key[static_cast<std::size_t>(it->first)] =
        it->second;
  }
  for (int i = 0; i < scratch_.txn_session_pushes; ++i) {
    scratch_.fplan_session->pop_shapes();
  }
  for (int i = 0; i < scratch_.txn_route_pushes; ++i) {
    scratch_.routing_session->pop();
  }
  scratch_.txn_depth = 0;
  scratch_.txn_session_pushes = 0;
  scratch_.txn_route_pushes = 0;
  scratch_.txn_key_undo.clear();
  open_ = false;
}

}  // namespace sunmap::mapping
