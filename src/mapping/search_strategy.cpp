#include "mapping/search_strategy.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include "mapping/delta_txn.h"
#include "mapping/eval_context.h"
#include "util/prng.h"

namespace sunmap::mapping {

namespace {

/// Outcome of one speculatively evaluated swap candidate.
struct SwapOutcome {
  enum class State : std::uint8_t { kSkipped, kPruned, kEvaluated };
  State state = State::kSkipped;
  Evaluation eval;
};

/// The annealing energy: objective cost with smooth infeasibility penalties
/// so the walk can cross infeasible regions.
double annealing_energy(const Evaluation& eval, const MapperConfig& cfg) {
  double value = eval.cost;
  if (!eval.bandwidth_feasible) {
    value += 2.0 * (eval.max_link_load_mbps - cfg.link_bandwidth_mbps) /
             cfg.link_bandwidth_mbps * eval.cost;
  }
  if (!eval.area_feasible) value *= 2.0;
  return value;
}

/// One independent annealing chain, from the initial mapping under one seed.
struct ChainOutcome {
  std::vector<int> best_mapping;
  Evaluation best_eval;
  int evaluated = 0;
  /// (area, power) trace, in iteration order, when the config collects it.
  std::vector<std::pair<double, double>> explored;
};

/// Metropolis acceptance over random moves with geometric cooling. The
/// chain itself cannot be bound-pruned (even a worse candidate may be
/// accepted, and its exact cost feeds the Metropolis criterion), so the
/// speedup comes from the cached evaluation path and the transactional
/// floorplan/routing deltas. Every candidate runs as one DeltaTxn
/// speculation: commit keeps the move, rollback restores the mapping AND
/// both incremental sessions to the incumbent in O(dirty) — so both
/// accepted and rejected iterations re-solve from a few-slot delta, never
/// from the wreckage of a rejected candidate. The best *feasible-ranked*
/// mapping seen (under better_than) is what the chain returns.
///
/// Moves are pairwise swaps, with probability
/// config.annealing_chain_move_prob of a 2-opt chain instead: a slot
/// 3-cycle a->b->c->a applied through begin_moves({(a,b), (b,c)}), reaching
/// mappings two swaps away in one Metropolis decision. At probability 0 (the
/// default) no chain-related random numbers are drawn, so the walk is
/// bit-identical to the plain-swap implementation.
///
/// With config.annealing_reheats > 0 the chain is split into equal segments
/// and the temperature is reset to t0 x the current energy at each segment
/// start; reheats = 0 reproduces the plain geometric schedule bit-for-bit.
ChainOutcome run_annealing_chain(const EvalContext& ctx,
                                 const std::vector<int>& initial_mapping,
                                 const Evaluation& initial_eval,
                                 std::uint64_t seed, int iterations,
                                 double cooling,
                                 EvalScratch* shared_scratch = nullptr) {
  const topo::Topology& topology = ctx.topology();
  const MapperConfig& cfg = ctx.config();

  ChainOutcome out;
  out.best_mapping = initial_mapping;
  out.best_eval = initial_eval;

  util::Prng prng(seed);
  auto current = initial_mapping;
  auto current_eval = initial_eval;
  double temperature = cfg.annealing_t0 * annealing_energy(current_eval, cfg);
  std::vector<int> slot_to_core(static_cast<std::size_t>(topology.num_slots()),
                                -1);
  for (int c = 0; c < ctx.app().num_cores(); ++c) {
    slot_to_core[static_cast<std::size_t>(
        current[static_cast<std::size_t>(c)])] = c;
  }
  // Sequential callers lend their persistent scratch (and with it the
  // incremental floorplan session); parallel chains bring their own.
  EvalScratch local_scratch;
  EvalScratch& scratch = shared_scratch ? *shared_scratch : local_scratch;
  DeltaTxn txn(ctx, scratch, current, slot_to_core);

  // Exactly annealing_reheats resets, at the k/(reheats+1) fractions of the
  // budget (duplicates from tiny budgets collapse; a reset can never land
  // on iteration 0 or past the end).
  std::vector<int> reheat_points;
  for (int k = 1; k <= cfg.annealing_reheats; ++k) {
    const int point = static_cast<int>(
        static_cast<long long>(iterations) * k / (cfg.annealing_reheats + 1));
    if (point > 0 && (reheat_points.empty() || reheat_points.back() != point)) {
      reheat_points.push_back(point);
    }
  }
  std::size_t next_reheat = 0;
  std::vector<SlotMove> moves;

  for (int iter = 0; iter < iterations; ++iter) {
    if (next_reheat < reheat_points.size() &&
        iter == reheat_points[next_reheat]) {
      temperature = cfg.annealing_t0 * annealing_energy(current_eval, cfg);
      ++next_reheat;
    }
    const int a = prng.next_int(0, topology.num_slots() - 1);
    int b = prng.next_int(0, topology.num_slots() - 2);
    if (b >= a) ++b;
    moves.clear();
    moves.emplace_back(a, b);
    // The prob > 0 short-circuit is what keeps default walks bit-identical:
    // no chance() (or c) draw ever perturbs the Prng stream at prob 0.
    if (cfg.annealing_chain_move_prob > 0.0 && topology.num_slots() >= 3 &&
        prng.chance(cfg.annealing_chain_move_prob)) {
      // Third distinct slot, uniform over [0, n) \ {a, b}: the 3-cycle
      // a->b->c->a decomposes into the transpositions (a,b) then (b,c).
      int c = prng.next_int(0, topology.num_slots() - 3);
      const int lo = std::min(a, b);
      const int hi = std::max(a, b);
      if (c >= lo) ++c;
      if (c >= hi) ++c;
      moves.emplace_back(b, c);
    }
    bool touches_core = false;
    for (const auto& [x, y] : moves) {
      if (slot_to_core[static_cast<std::size_t>(x)] >= 0 ||
          slot_to_core[static_cast<std::size_t>(y)] >= 0) {
        touches_core = true;
        break;
      }
    }
    if (!touches_core) continue;  // every touched slot empty: no-op

    txn.begin_moves(moves);
    auto eval = txn.evaluate(/*materialize=*/false);
    ++out.evaluated;
    if (cfg.collect_explored) {
      out.explored.emplace_back(eval.design_area_mm2, eval.design_power_mw);
    }

    const double delta = annealing_energy(eval, cfg) -
                         annealing_energy(current_eval, cfg);
    const bool accept =
        delta <= 0.0 ||
        (temperature > 1e-12 && prng.chance(std::exp(-delta / temperature)));
    if (better_than(eval, out.best_eval)) {
      out.best_eval = eval;
      out.best_mapping = current;
    }
    if (accept) {
      txn.commit();
      current_eval = std::move(eval);
    } else {
      txn.rollback();
    }
    temperature *= cooling;
  }
  return out;
}

/// Folds one chain's outcome into the search result: counters and explored
/// trace always, the mapping only when it strictly improves (ties keep the
/// earlier result, which is what makes best-of-restarts deterministic in
/// seed order).
void commit_chain(ChainOutcome&& chain, MappingResult& result) {
  result.evaluated_mappings += chain.evaluated;
  result.explored_area_power.insert(
      result.explored_area_power.end(),
      std::make_move_iterator(chain.explored.begin()),
      std::make_move_iterator(chain.explored.end()));
  if (better_than(chain.best_eval, result.eval)) {
    result.eval = std::move(chain.best_eval);
    result.core_to_slot = std::move(chain.best_mapping);
  }
}

}  // namespace

void GreedySwapSearch::improve(const EvalContext& ctx, MappingResult& result,
                               EvalScratch& scratch) const {
  // Fig 5 steps 9-10: pairwise swaps of topology vertices. Swapping two
  // slots exchanges whatever occupies them (two cores, or a core and an
  // empty slot, which moves the core). Candidates are two-phase evaluated:
  // the objective's cost lower bound first, the full routing + floorplanning
  // evaluation only for candidates the bound cannot reject. Every candidate
  // is one DeltaTxn speculation — rollback leaves the mapping and floorplan
  // session exactly on the incumbent, commit keeps the swap.
  const topo::Topology& topology = ctx.topology();
  const MapperConfig& cfg = ctx.config();
  const int num_slots = topology.num_slots();
  std::vector<int>& mapping = result.core_to_slot;
  std::vector<int> slot_to_core(static_cast<std::size_t>(num_slots), -1);
  for (int c = 0; c < ctx.app().num_cores(); ++c) {
    slot_to_core[static_cast<std::size_t>(
        mapping[static_cast<std::size_t>(c)])] = c;
  }

  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<std::size_t>(num_slots) *
                static_cast<std::size_t>(num_slots - 1) / 2);
  for (int a = 0; a < num_slots; ++a) {
    for (int b = a + 1; b < num_slots; ++b) pairs.emplace_back(a, b);
  }

  const auto record_explored = [&](const Evaluation& eval) {
    if (cfg.collect_explored) {
      result.explored_area_power.emplace_back(eval.design_area_mm2,
                                              eval.design_power_mw);
    }
  };

  const int num_threads =
      std::min(cfg.num_threads, static_cast<int>(pairs.size()));

  if (num_threads <= 1) {
    DeltaTxn txn(ctx, scratch, mapping, slot_to_core);
    for (int pass = 0; pass < cfg.swap_passes; ++pass) {
      bool improved = false;
      for (const auto& [a, b] : pairs) {
        const int core_a = slot_to_core[static_cast<std::size_t>(a)];
        const int core_b = slot_to_core[static_cast<std::size_t>(b)];
        if (core_a < 0 && core_b < 0) continue;  // both empty: no-op

        txn.begin_swap(a, b);
        ++result.evaluated_mappings;
        if (txn.prunable(result.eval)) {
          ++result.pruned_mappings;
          txn.rollback();
          continue;
        }
        auto eval = txn.evaluate(/*materialize=*/false);
        record_explored(eval);
        if (better_than(eval, result.eval)) {
          result.eval = std::move(eval);
          txn.commit();  // keep the swap
          improved = true;
        } else {
          txn.rollback();
        }
      }
      if (!improved) break;
    }
    return;
  }

  // Parallel neighborhood search: workers speculatively evaluate a chunk of
  // candidates against the incumbent, then outcomes are committed in
  // canonical pair order. When a candidate is accepted, the later outcomes
  // of the chunk are discarded (they were evaluated against a stale
  // incumbent and mapping) and the next chunk resumes right after the
  // accepted pair — exactly the sequential trajectory, so any thread count
  // yields the sequential result, deterministically.
  // Worker 0 keeps the caller's scratch (and its floorplan session); the
  // extra workers draw theirs from the caller's shared pool, so their
  // sessions survive across chunks, passes, and improve() calls instead of
  // being rebuilt per search. The pool is sized up front — worker_scratch()
  // is not thread-safe to grow.
  std::vector<EvalScratch*> worker_scratches(
      static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    worker_scratches[static_cast<std::size_t>(t)] = &scratch.worker_scratch(t);
  }
  std::vector<std::vector<int>> worker_mapping(
      static_cast<std::size_t>(num_threads));
  std::vector<std::vector<int>> worker_inverse(
      static_cast<std::size_t>(num_threads));
  const std::size_t chunk_size = std::max<std::size_t>(
      128, 32 * static_cast<std::size_t>(num_threads));
  std::vector<SwapOutcome> outcomes(chunk_size);

  for (int pass = 0; pass < cfg.swap_passes; ++pass) {
    bool improved = false;
    std::size_t begin = 0;
    while (begin < pairs.size()) {
      const std::size_t count = std::min(chunk_size, pairs.size() - begin);
      std::atomic<std::size_t> next{0};

      auto worker = [&](int t) {
        auto& m = worker_mapping[static_cast<std::size_t>(t)];
        auto& inv = worker_inverse[static_cast<std::size_t>(t)];
        m = mapping;
        inv = slot_to_core;
        auto& worker_scratch = *worker_scratches[static_cast<std::size_t>(t)];
        // One transaction per worker, one speculation per candidate:
        // rollback parks the worker's mapping copy and floorplan session
        // back on the incumbent between candidates.
        DeltaTxn txn(ctx, worker_scratch, m, inv);
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= count) break;
          const auto [a, b] = pairs[begin + i];
          auto& out = outcomes[i];
          const int core_a = inv[static_cast<std::size_t>(a)];
          const int core_b = inv[static_cast<std::size_t>(b)];
          if (core_a < 0 && core_b < 0) {
            out.state = SwapOutcome::State::kSkipped;
            continue;
          }
          txn.begin_swap(a, b);
          if (txn.prunable(result.eval)) {
            out.state = SwapOutcome::State::kPruned;
          } else {
            out.eval = txn.evaluate(/*materialize=*/false);
            out.state = SwapOutcome::State::kEvaluated;
          }
          txn.rollback();  // speculation only; acceptance is committed below
        }
      };

      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(num_threads - 1));
      for (int t = 1; t < num_threads; ++t) pool.emplace_back(worker, t);
      worker(0);
      for (auto& thread : pool) thread.join();

      // Commit outcomes in canonical order.
      std::size_t committed = count;
      for (std::size_t i = 0; i < count; ++i) {
        auto& out = outcomes[i];
        if (out.state == SwapOutcome::State::kSkipped) continue;
        ++result.evaluated_mappings;
        if (out.state == SwapOutcome::State::kPruned) {
          ++result.pruned_mappings;
          continue;
        }
        record_explored(out.eval);
        if (better_than(out.eval, result.eval)) {
          const auto [a, b] = pairs[begin + i];
          apply_slot_swap(a, b, mapping, slot_to_core);
          result.eval = std::move(out.eval);
          improved = true;
          committed = i + 1;  // discard stale outcomes past the acceptance
          break;
        }
      }
      begin += committed;
    }
    if (!improved) break;
  }
}

void AnnealingSearch::improve(const EvalContext& ctx, MappingResult& result,
                              EvalScratch& scratch) const {
  const MapperConfig& cfg = ctx.config();
  commit_chain(run_annealing_chain(ctx, result.core_to_slot, result.eval,
                                   cfg.annealing_seed,
                                   cfg.annealing_iterations,
                                   cfg.annealing_cooling, &scratch),
               result);
}

void RestartAnnealingSearch::improve(const EvalContext& ctx,
                                     MappingResult& result,
                                     EvalScratch& scratch) const {
  const MapperConfig& cfg = ctx.config();
  const int restarts = cfg.annealing_restarts;
  const int total = cfg.annealing_iterations;

  // The total iteration budget is divided evenly across the restarts (the
  // first total % restarts chains get one extra), so a restart sweep stays
  // cost-comparable with the single-seed annealer at the same
  // annealing_iterations. Each chain's cooling is compressed so its shorter
  // schedule spans the same temperature range as the single full-length
  // chain would (cooling^(total/budget) per step); chains that get the full
  // budget keep the configured factor untouched.
  std::vector<int> budgets(static_cast<std::size_t>(restarts),
                           restarts > 0 ? total / restarts : 0);
  for (int r = 0; r < total % restarts; ++r) {
    ++budgets[static_cast<std::size_t>(r)];
  }

  std::vector<ChainOutcome> outcomes(static_cast<std::size_t>(restarts));
  const auto run_chain = [&](int r, EvalScratch* chain_scratch) {
    const int budget = budgets[static_cast<std::size_t>(r)];
    double cooling = cfg.annealing_cooling;
    if (budget > 0 && budget < total) {
      cooling = std::pow(cfg.annealing_cooling,
                         static_cast<double>(total) / budget);
    }
    outcomes[static_cast<std::size_t>(r)] = run_annealing_chain(
        ctx, result.core_to_slot, result.eval,
        cfg.annealing_seed + static_cast<std::uint64_t>(r), budget, cooling,
        chain_scratch);
  };

  const int num_threads = std::min(cfg.num_threads, restarts);
  if (num_threads <= 1) {
    // Sequential chains run one at a time, so they can all share the
    // caller's scratch — and with it one floorplan session.
    for (int r = 0; r < restarts; ++r) run_chain(r, &scratch);
  } else {
    // Chains are fully independent (each owns its Prng and mapping
    // copies), so workers just pull restart indices; determinism comes
    // from committing the outcomes in seed order below. Worker 0 keeps the
    // caller's scratch; the extra workers draw theirs from the caller's
    // shared pool (sized up front — growing is not thread-safe), so their
    // floorplan sessions persist across chains, improve() calls, and the
    // design points of a sweep.
    std::atomic<int> next{0};
    std::vector<EvalScratch*> worker_scratches(
        static_cast<std::size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      worker_scratches[static_cast<std::size_t>(t)] =
          &scratch.worker_scratch(t);
    }
    const auto worker = [&](int t) {
      EvalScratch& worker_scratch =
          *worker_scratches[static_cast<std::size_t>(t)];
      for (;;) {
        const int r = next.fetch_add(1);
        if (r >= restarts) break;
        run_chain(r, &worker_scratch);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(num_threads - 1));
    for (int t = 1; t < num_threads; ++t) pool.emplace_back(worker, t);
    worker(0);
    for (auto& thread : pool) thread.join();
  }

  for (auto& chain : outcomes) commit_chain(std::move(chain), result);
}

std::unique_ptr<SearchStrategy> make_search_strategy(SearchKind kind) {
  switch (kind) {
    case SearchKind::kGreedySwaps:
      return std::make_unique<GreedySwapSearch>();
    case SearchKind::kAnnealing:
      return std::make_unique<AnnealingSearch>();
    case SearchKind::kRestartAnnealing:
      return std::make_unique<RestartAnnealingSearch>();
  }
  return std::make_unique<GreedySwapSearch>();
}

}  // namespace sunmap::mapping
