#include "mapping/eval_context.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <mutex>
#include <queue>
#include <shared_mutex>
#include <stdexcept>

namespace sunmap::mapping {

namespace {

std::atomic<std::uint64_t> g_contexts_built{0};
std::atomic<std::uint64_t> g_metrics_hits{0};
std::atomic<std::uint64_t> g_metrics_misses{0};
std::atomic<std::uint64_t> g_floorplan_hits{0};
std::atomic<std::uint64_t> g_floorplan_misses{0};

/// True when two configs produce identical route sets (and hence identical
/// evaluation metrics) for every mapping, i.e. the metrics cache carries
/// over. Objective, weights, area cap, and the bandwidth *threshold* are
/// deliberately absent: they only enter the cost/feasibility fields, which
/// are re-derived per config. The bandwidth matters for routing only under
/// split-across-all-paths, where it caps per-chunk spreading.
bool same_evaluation_class(const MapperConfig& a, const MapperConfig& b) {
  if (a.routing != b.routing) return false;
  if (a.split_chunks != b.split_chunks) return false;
  if (a.reroute_passes != b.reroute_passes) return false;
  if (a.routing == route::RoutingKind::kSplitAll &&
      a.link_bandwidth_mbps != b.link_bandwidth_mbps) {
    return false;
  }
  // The raw per-scenario degraded metrics cached alongside the fault-free
  // ones depend on which scenarios exist (aggregation mode and penalty do
  // not — they only enter the re-derived cost — but the spec does).
  // incremental_fault_eval is deliberately absent: like
  // incremental_floorplan, both settings produce bit-identical metrics.
  if (!(a.faults.spec == b.faults.spec)) return false;
  return true;
}

}  // namespace

EvalScratch& EvalScratch::worker_scratch(int t) {
  if (t <= 0) return *this;
  while (worker_pool.size() < static_cast<std::size_t>(t)) {
    worker_pool.push_back(std::make_unique<EvalScratch>());
  }
  return *worker_pool[static_cast<std::size_t>(t - 1)];
}

std::uint64_t EvalContext::contexts_built() {
  return g_contexts_built.load(std::memory_order_relaxed);
}

EvalContext::CacheStats EvalContext::cache_stats() {
  CacheStats stats;
  stats.metrics_hits = g_metrics_hits.load(std::memory_order_relaxed);
  stats.metrics_misses = g_metrics_misses.load(std::memory_order_relaxed);
  stats.floorplan_hits = g_floorplan_hits.load(std::memory_order_relaxed);
  stats.floorplan_misses = g_floorplan_misses.load(std::memory_order_relaxed);
  return stats;
}

EvalContext::EvalContext(const CoreGraph& app, const topo::Topology& topology,
                         const MapperConfig& config,
                         const model::AreaPowerLibrary& library)
    : app_(app),
      topology_(topology),
      commodities_(commodities_by_value(app)),
      placement_(topology.relative_placement()) {
  // Accumulated in commodity order, matching the summation order of the
  // from-scratch evaluator.
  for (const auto& commodity : commodities_) {
    total_value_ += commodity.value_mbps;
  }

  // Group cores by bit-identical floorplan shapes: mappings that only
  // permute same-shaped cores yield the same floorplan, so the floorplan
  // cache keys on the per-slot shape class rather than the core identity.
  core_shape_class_.reserve(static_cast<std::size_t>(app.num_cores()));
  for (int core = 0; core < app.num_cores(); ++core) {
    const auto& shape = app.core(core).shape;
    std::uint16_t cls = 0;
    for (; cls < class_shapes_.size(); ++cls) {
      if (class_shapes_[cls] == shape) break;
    }
    if (cls == class_shapes_.size()) class_shapes_.push_back(shape);
    core_shape_class_.push_back(cls);
  }

  context_id_ = g_contexts_built.fetch_add(1, std::memory_order_relaxed) + 1;
  bind(config, library, /*first_bind=*/true);
}

void EvalContext::rebind(const MapperConfig& config,
                         const model::AreaPowerLibrary& library) {
  bind(config, library, /*first_bind=*/false);
}

void EvalContext::bind(const MapperConfig& config,
                       const model::AreaPowerLibrary& library,
                       bool first_bind) {
  const bool tech_changed = first_bind || !(config_.tech == config.tech);
  const bool floorplan_changed =
      tech_changed || !(config_.floorplan == config.floorplan);
  const bool evaluation_class_changed =
      floorplan_changed || !same_evaluation_class(config_, config);
  const bool faults_changed =
      first_bind || !(config_.faults.spec == config.faults.spec);

  if (tech_changed) {
    // Resolve the area/power library once per switch instead of per lookup
    // in the evaluator's inner loops, and pre-sum the mapping-invariant
    // totals.
    std::vector<std::pair<int, int>> switch_ports;
    switch_ports.reserve(static_cast<std::size_t>(topology_.num_switches()));
    for (graph::NodeId sw = 0; sw < topology_.num_switches(); ++sw) {
      switch_ports.emplace_back(topology_.switch_in_ports(sw),
                                topology_.switch_out_ports(sw));
    }
    switch_table_ = model::ResolvedSwitchTable(library, switch_ports);

    switch_shapes_.clear();
    switch_shapes_.reserve(static_cast<std::size_t>(topology_.num_switches()));
    for (graph::NodeId sw = 0; sw < topology_.num_switches(); ++sw) {
      auto shape =
          fplan::BlockShape::soft_block(switch_table_.entry(sw).area_mm2);
      shape.min_aspect = 0.5;
      shape.max_aspect = 2.0;
      switch_shapes_.push_back(shape);
    }
  }
  if (floorplan_changed) {
    // Scratch-owned floorplan sessions were resolved against the old
    // options/switch shapes; moving the epoch makes every scratch rebuild
    // its session on next use.
    ++session_epoch_;
    std::unique_lock<std::shared_mutex> lock(cache_mutex_);
    floorplan_cache_.clear();
  }
  if (evaluation_class_changed) {
    // Scratch routing sessions hold a replay trace of the old evaluation
    // class; moving the epoch makes every scratch rebuild on next use.
    ++routing_epoch_;
    std::unique_lock<std::shared_mutex> lock(cache_mutex_);
    metrics_cache_.clear();
  }

  config_ = config;

  route::RoutingEngine::Options engine_options;
  engine_options.split_chunks = config_.split_chunks;
  engine_options.capacity_hint_mbps = config_.link_bandwidth_mbps;
  if (config_.routing == route::RoutingKind::kMinPath) {
    // Topology-only: built on the first minimum-path bind, reused forever.
    if (!quadrant_table_) quadrant_table_.emplace(topology_);
    engine_options.quadrant_table = &*quadrant_table_;
  }
  engine_.emplace(topology_, config_.routing, engine_options);

  static_routing_ = config_.routing == route::RoutingKind::kDimensionOrdered ||
                    config_.routing == route::RoutingKind::kSplitMin;
  adaptive_routing_ = config_.routing == route::RoutingKind::kMinPath ||
                      config_.routing == route::RoutingKind::kSplitAll;

  if (faults_changed) build_fault_tables();

  static_routes_ = nullptr;
  if (config_.routing == route::RoutingKind::kDimensionOrdered) {
    if (!static_routes_do_) {
      static_routes_do_.emplace();
      build_static_routes(*static_routes_do_);
    }
    static_routes_ = &*static_routes_do_;
  } else if (config_.routing == route::RoutingKind::kSplitMin) {
    if (!static_routes_sm_) {
      static_routes_sm_.emplace();
      build_static_routes(*static_routes_sm_);
    }
    static_routes_ = &*static_routes_sm_;
  }

  // The bound envelope is pure geometry over the placement, shape classes,
  // and resolved switch shapes: it only moves when the technology point or
  // the floorplan options do. The per-slot-pair power-bound table also
  // folds in per-link wire bounds, so it shares the same validity; it is
  // only (re)built when the bound objective can actually use it.
  if (tech_changed || floorplan_changed) {
    build_bound_envelope();
    power_bound_valid_ = false;
  }
  const bool needs_power_bound =
      supports_pruning() && (config_.objective == Objective::kMinPower ||
                             config_.objective == Objective::kWeighted);
  if (needs_power_bound && !power_bound_valid_) build_power_bound_table();
}

void EvalContext::build_static_routes(
    std::vector<route::RouteSet>& table) const {
  // Dimension-ordered and split-across-minimum-paths routes depend only on
  // the slot pair, never on link loads, so every candidate mapping draws its
  // routes from this table. This is what makes re-routing after a pairwise
  // swap a delta operation: only the commodities touching the two swapped
  // slots change which table entry they reference.
  const int num_slots = topology_.num_slots();
  table.resize(static_cast<std::size_t>(num_slots) *
               static_cast<std::size_t>(num_slots));
  const route::LoadMap no_loads(topology_.switch_graph().num_edges());
  for (int src = 0; src < num_slots; ++src) {
    for (int dst = 0; dst < num_slots; ++dst) {
      if (src == dst) continue;
      engine_->route(src, dst, /*demand=*/0.0, no_loads,
                     table[static_cast<std::size_t>(src) *
                               static_cast<std::size_t>(num_slots) +
                           static_cast<std::size_t>(dst)]);
    }
  }
}

void EvalContext::build_fault_tables() {
  fault_scenarios_ = fault::materialize(config_.faults.spec, topology_);
  fault_masks_.clear();
  fault_bfs_.clear();
  if (fault_scenarios_.empty()) return;

  const auto& g = topology_.switch_graph();
  fault_masks_.resize(fault_scenarios_.size());
  for (std::size_t s = 0; s < fault_scenarios_.size(); ++s) {
    fault::make_mask(g, fault_scenarios_[s], fault_masks_[s]);
  }

  // One BFS per (scenario, distinct ingress switch): every commodity's
  // degraded route is then an O(path length) parent walk, shared by all
  // commodities injecting at that switch. Storing parent arrays instead of
  // per-slot-pair paths keeps the table O(scenarios x switches^2) small
  // even for exhaustive N-1 sets on large meshes.
  const auto num_switches = static_cast<std::size_t>(g.num_nodes());
  std::vector<char> is_ingress(num_switches, 0);
  for (int slot = 0; slot < topology_.num_slots(); ++slot) {
    is_ingress[static_cast<std::size_t>(topology_.ingress_switch(slot))] = 1;
  }
  fault_bfs_.resize(fault_scenarios_.size() * num_switches);
  for (std::size_t s = 0; s < fault_scenarios_.size(); ++s) {
    for (std::size_t sw = 0; sw < num_switches; ++sw) {
      if (is_ingress[sw] == 0) continue;
      fault::masked_bfs(g, static_cast<graph::NodeId>(sw), fault_masks_[s],
                        fault_bfs_[s * num_switches + sw]);
    }
  }
}

void EvalContext::apply_config_dependent(Evaluation& eval,
                                         double floorplan_aspect) const {
  eval.bandwidth_feasible =
      eval.max_link_load_mbps <= config_.link_bandwidth_mbps + 1e-9;
  eval.area_feasible =
      eval.design_area_mm2 <= config_.max_area_mm2 + 1e-9 &&
      floorplan_aspect <= config_.max_design_aspect + 1e-9;

  // ---- Fig 5 step 8: objective cost. ----
  switch (config_.objective) {
    case Objective::kMinDelay:
      eval.cost = eval.avg_switch_hops;
      break;
    case Objective::kMinArea:
      eval.cost = eval.design_area_mm2;
      break;
    case Objective::kMinPower:
      eval.cost = eval.design_power_mw;
      break;
    case Objective::kWeighted: {
      const auto& w = config_.weights;
      eval.cost = w.delay * eval.avg_switch_hops / w.ref_hops +
                  w.area * eval.design_area_mm2 / w.ref_area_mm2 +
                  w.power * eval.design_power_mw / w.ref_power_mw;
      break;
    }
  }
  // Fold the raw degraded metrics (cached alongside the fault-free ones)
  // into the per-scenario and aggregated costs. Shared code with the
  // from-scratch Mapper::evaluate, and re-run on metrics-cache hits, so the
  // hit path re-derives fault costs exactly like the flags above.
  apply_fault_objective(eval, config_);
}

Evaluation EvalContext::evaluate(const std::vector<int>& core_to_slot,
                                 EvalScratch& scratch,
                                 bool materialize) const {
  const int num_cores = app_.num_cores();
  const int num_slots = topology_.num_slots();
  const int num_switches = topology_.num_switches();
  if (static_cast<int>(core_to_slot.size()) != num_cores) {
    throw std::invalid_argument("EvalContext::evaluate: mapping size mismatch");
  }
  scratch.slot_to_core.assign(static_cast<std::size_t>(num_slots), -1);
  for (int core = 0; core < num_cores; ++core) {
    const int slot = core_to_slot[static_cast<std::size_t>(core)];
    if (slot < 0 || slot >= num_slots) {
      throw std::invalid_argument("EvalContext::evaluate: slot out of range");
    }
    if (scratch.slot_to_core[static_cast<std::size_t>(slot)] != -1) {
      throw std::invalid_argument("EvalContext::evaluate: mapping not injective");
    }
    scratch.slot_to_core[static_cast<std::size_t>(slot)] = core;
  }

  // Metrics-cache fast path: the search loops re-visit mappings (across
  // passes, and across the design points of a sweep that share the
  // evaluation class). The cached metrics are config-independent; only the
  // feasibility flags and cost are re-derived below, with the same
  // arithmetic as a fresh evaluation — so hits are bit-identical to misses.
  if (!materialize) {
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    const auto it = metrics_cache_.find(core_to_slot);
    if (it != metrics_cache_.end()) {
      g_metrics_hits.fetch_add(1, std::memory_order_relaxed);
      Evaluation eval = it->second.metrics;
      apply_config_dependent(eval, it->second.floorplan_aspect);
      return eval;
    }
    g_metrics_misses.fetch_add(1, std::memory_order_relaxed);
  }

  Evaluation eval;
  const std::size_t num_commodities = commodities_.size();

  // ---- Fig 5 steps 2-6: route commodities in decreasing value order. ----
  const int num_edges = topology_.switch_graph().num_edges();
  if (scratch.loads.num_edges() != num_edges) {
    scratch.loads = route::LoadMap(num_edges);
  } else {
    scratch.loads.clear();
  }
  scratch.route_refs.resize(num_commodities);

  if (static_routing_) {
    for (std::size_t k = 0; k < num_commodities; ++k) {
      const auto& commodity = commodities_[k];
      const int src_slot =
          core_to_slot[static_cast<std::size_t>(commodity.src_core)];
      const int dst_slot =
          core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
      const route::RouteSet& routes = static_route(src_slot, dst_slot);
      scratch.loads.add_route(routes, commodity.value_mbps);
      scratch.route_refs[k] = &routes;
    }
  } else if (config_.incremental_routing) {
    // Session path: replay the canonical routing trace against the previous
    // solve's routes, re-running only the Dijkstras whose inputs could have
    // changed (bit-identical to the inline loop below — see
    // route::RoutingSession). Under an open DeltaTxn the solve is
    // speculative: displaced routes are journaled in a session frame that
    // rollback pops verbatim.
    route::RoutingSession& session = routing_session_for(scratch);
    scratch.commodity_endpoints.resize(num_commodities);
    for (std::size_t k = 0; k < num_commodities; ++k) {
      const auto& commodity = commodities_[k];
      scratch.commodity_endpoints[k] = route::CommodityEndpoints{
          core_to_slot[static_cast<std::size_t>(commodity.src_core)],
          core_to_slot[static_cast<std::size_t>(commodity.dst_core)]};
    }
    const bool speculative = scratch.txn_depth > 0;
    session.solve(*engine_, scratch.commodity_endpoints, scratch.loads,
                  speculative);
    if (speculative) ++scratch.txn_route_pushes;
    for (std::size_t k = 0; k < num_commodities; ++k) {
      scratch.route_refs[k] = &session.route(static_cast<int>(k));
    }
  } else {
    // Reference path: the from-scratch canonical loop the session must
    // reproduce bit-for-bit (kept selectable so the routing bench invariant
    // and the session equivalence tests can measure one against the other).
    scratch.routes.resize(num_commodities);
    for (std::size_t k = 0; k < num_commodities; ++k) {
      const auto& commodity = commodities_[k];
      const int src_slot =
          core_to_slot[static_cast<std::size_t>(commodity.src_core)];
      const int dst_slot =
          core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
      engine_->route(src_slot, dst_slot, commodity.value_mbps, scratch.loads,
                     scratch.routes[k]);
      scratch.loads.add_route(scratch.routes[k], commodity.value_mbps);
      scratch.route_refs[k] = &scratch.routes[k];
    }
    if (adaptive_routing_) {
      for (int pass = 0; pass < config_.reroute_passes; ++pass) {
        for (std::size_t k = 0; k < num_commodities; ++k) {
          const auto& commodity = commodities_[k];
          const int src_slot =
              core_to_slot[static_cast<std::size_t>(commodity.src_core)];
          const int dst_slot =
              core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
          scratch.loads.remove_route(scratch.routes[k], commodity.value_mbps);
          engine_->route(src_slot, dst_slot, commodity.value_mbps,
                         scratch.loads, scratch.routes[k]);
          scratch.loads.add_route(scratch.routes[k], commodity.value_mbps);
        }
      }
    }
  }

  double weighted_hops = 0.0;
  for (std::size_t k = 0; k < num_commodities; ++k) {
    weighted_hops += commodities_[k].value_mbps *
                     scratch.route_refs[k]->weighted_switch_hops();
  }
  eval.avg_switch_hops =
      total_value_ > 0.0 ? weighted_hops / total_value_ : 0.0;
  eval.max_link_load_mbps = scratch.loads.max_load();

  // ---- Fig 5 step 7: floorplan and area/power estimation. ----
  eval.switch_area_mm2 = switch_table_.total_area_mm2();
  eval.static_power_mw = switch_table_.total_static_power_mw();

  // Floorplan cache: the placement depends only on which shapes occupy
  // which slots. place() is deterministic, so a hit reproduces the computed
  // floorplan bit-for-bit; and because the key ignores routing, objective,
  // and constraints, the cache carries floorplans across every design point
  // of a sweep that shares floorplan options and technology. The same
  // helper is the min-area bound's exact phase, so pruned candidates warm
  // the cache for the evaluations that follow.
  const fplan::Floorplan& floorplan =
      floorplan_for_mapping(core_to_slot, scratch);
  eval.design_area_mm2 = floorplan.area_mm2();
  const double floorplan_aspect = floorplan.aspect();

  // Index the placed block centres so every wire length in the power loop is
  // an O(1) lookup (Floorplan::center_distance_mm scans all blocks).
  scratch.core_cx.assign(static_cast<std::size_t>(num_slots), 0.0);
  scratch.core_cy.assign(static_cast<std::size_t>(num_slots), 0.0);
  scratch.switch_cx.assign(static_cast<std::size_t>(num_switches), 0.0);
  scratch.switch_cy.assign(static_cast<std::size_t>(num_switches), 0.0);
  for (const auto& block : floorplan.blocks()) {
    if (block.kind == fplan::PlacedBlock::Kind::kCore) {
      scratch.core_cx[static_cast<std::size_t>(block.index)] = block.cx();
      scratch.core_cy[static_cast<std::size_t>(block.index)] = block.cy();
    } else {
      scratch.switch_cx[static_cast<std::size_t>(block.index)] = block.cx();
      scratch.switch_cy[static_cast<std::size_t>(block.index)] = block.cy();
    }
  }
  const auto manhattan = [](double ax, double ay, double bx, double by) {
    return std::abs(ax - bx) + std::abs(ay - by);
  };

  // Power and latency: identical arithmetic to the from-scratch evaluator,
  // with the library lookups and block scans replaced by the resolved
  // tables above.
  const auto& g = topology_.switch_graph();
  const double link_e = config_.tech.link_energy_pj_per_bit_mm;
  const double wire_ps_per_mm = config_.tech.link_delay_ps_per_mm;
  const double cycle_ps = config_.tech.clock_period_ps;
  double power_mw = 0.0;
  double weighted_latency_ps = 0.0;
  for (std::size_t k = 0; k < num_commodities; ++k) {
    const auto& commodity = commodities_[k];
    const int src_slot =
        core_to_slot[static_cast<std::size_t>(commodity.src_core)];
    const int dst_slot =
        core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
    const graph::NodeId ingress = topology_.ingress_switch(src_slot);
    const graph::NodeId egress = topology_.egress_switch(dst_slot);
    double energy_pj = 0.0;   // fraction-weighted energy per bit
    double latency_ps = 0.0;  // fraction-weighted head latency
    for (const auto& wp : scratch.route_refs[k]->paths) {
      double path_pj = 0.0;
      double wire_mm = 0.0;
      for (graph::NodeId sw : wp.path.nodes) {
        path_pj += switch_table_.energy_pj_per_bit(sw);
      }
      for (graph::EdgeId e : wp.path.edges) {
        const auto& edge = g.edge(e);
        wire_mm += manhattan(
            scratch.switch_cx[static_cast<std::size_t>(edge.src)],
            scratch.switch_cy[static_cast<std::size_t>(edge.src)],
            scratch.switch_cx[static_cast<std::size_t>(edge.dst)],
            scratch.switch_cy[static_cast<std::size_t>(edge.dst)]);
      }
      wire_mm += manhattan(
          scratch.core_cx[static_cast<std::size_t>(src_slot)],
          scratch.core_cy[static_cast<std::size_t>(src_slot)],
          scratch.switch_cx[static_cast<std::size_t>(ingress)],
          scratch.switch_cy[static_cast<std::size_t>(ingress)]);
      wire_mm += manhattan(
          scratch.core_cx[static_cast<std::size_t>(dst_slot)],
          scratch.core_cy[static_cast<std::size_t>(dst_slot)],
          scratch.switch_cx[static_cast<std::size_t>(egress)],
          scratch.switch_cy[static_cast<std::size_t>(egress)]);
      path_pj += link_e * wire_mm;
      energy_pj += wp.fraction * path_pj;
      // One pipeline cycle per switch plus repeated-wire delay.
      latency_ps += wp.fraction *
                    (static_cast<double>(wp.path.nodes.size()) * cycle_ps +
                     wire_mm * wire_ps_per_mm);
    }
    // MB/s * pJ/bit -> mW (1e6 * 8 * 1e-12 * 1e3).
    power_mw += commodity.value_mbps * 8e-3 * energy_pj;
    weighted_latency_ps += commodity.value_mbps * latency_ps;
  }
  eval.dynamic_power_mw = power_mw;
  eval.design_power_mw = eval.dynamic_power_mw + eval.static_power_mw;
  eval.avg_path_latency_ns =
      total_value_ > 0.0 ? weighted_latency_ps / total_value_ / 1000.0 : 0.0;

  // ---- Degraded modes: every commodity re-routed under each scenario. ----
  // The incremental path walks the prebuilt per-(scenario, ingress) BFS
  // parents; the reference path re-runs the identical BFS per commodity.
  // Both extract through fault::extract_path, so the routes — and all the
  // arithmetic below — are bit-identical between the two. Disconnection is
  // a recorded verdict, never an exception: the search keeps moving.
  if (!fault_scenarios_.empty()) {
    const auto num_switches_sz = static_cast<std::size_t>(num_switches);
    eval.fault_outcomes.resize(fault_scenarios_.size());
    for (std::size_t s = 0; s < fault_scenarios_.size(); ++s) {
      const fault::ScenarioMask& mask = fault_masks_[s];
      auto& outcome = eval.fault_outcomes[s];
      outcome = Evaluation::FaultScenarioOutcome{};
      outcome.weight = fault_scenarios_[s].weight;
      double fault_hops = 0.0;
      double fault_power_mw = 0.0;
      for (std::size_t k = 0; k < num_commodities; ++k) {
        const auto& commodity = commodities_[k];
        const int src_slot =
            core_to_slot[static_cast<std::size_t>(commodity.src_core)];
        const int dst_slot =
            core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
        const graph::NodeId ingress = topology_.ingress_switch(src_slot);
        const graph::NodeId egress = topology_.egress_switch(dst_slot);
        const fault::MaskedBfs* bfs;
        if (config_.incremental_fault_eval) {
          bfs = &fault_bfs_[s * num_switches_sz +
                            static_cast<std::size_t>(ingress)];
        } else {
          fault::masked_bfs(g, ingress, mask, scratch.fault_bfs);
          bfs = &scratch.fault_bfs;
        }
        if (!fault::extract_path(g, *bfs, ingress, egress,
                                 scratch.fault_path)) {
          outcome.connected = false;
          continue;
        }
        const graph::Path& fpath = scratch.fault_path;
        fault_hops += commodity.value_mbps *
                      static_cast<double>(fpath.nodes.size());
        double path_pj = 0.0;
        double wire_mm = 0.0;
        for (const graph::NodeId sw : fpath.nodes) {
          path_pj += switch_table_.energy_pj_per_bit(sw);
        }
        for (const graph::EdgeId e : fpath.edges) {
          const auto& edge = g.edge(e);
          wire_mm += manhattan(
              scratch.switch_cx[static_cast<std::size_t>(edge.src)],
              scratch.switch_cy[static_cast<std::size_t>(edge.src)],
              scratch.switch_cx[static_cast<std::size_t>(edge.dst)],
              scratch.switch_cy[static_cast<std::size_t>(edge.dst)]);
        }
        wire_mm += manhattan(
            scratch.core_cx[static_cast<std::size_t>(src_slot)],
            scratch.core_cy[static_cast<std::size_t>(src_slot)],
            scratch.switch_cx[static_cast<std::size_t>(ingress)],
            scratch.switch_cy[static_cast<std::size_t>(ingress)]);
        wire_mm += manhattan(
            scratch.core_cx[static_cast<std::size_t>(dst_slot)],
            scratch.core_cy[static_cast<std::size_t>(dst_slot)],
            scratch.switch_cx[static_cast<std::size_t>(egress)],
            scratch.switch_cy[static_cast<std::size_t>(egress)]);
        path_pj += link_e * wire_mm;
        fault_power_mw += commodity.value_mbps * 8e-3 * path_pj;
      }
      outcome.avg_switch_hops =
          total_value_ > 0.0 ? fault_hops / total_value_ : 0.0;
      outcome.dynamic_power_mw = fault_power_mw;
    }
  }

  apply_config_dependent(eval, floorplan_aspect);

  // Cache the metrics while `eval` still carries no floorplan or routes:
  // entries stay scalar-sized, and hits re-derive the flags/cost from the
  // stored aspect with the same arithmetic as above.
  {
    std::unique_lock<std::shared_mutex> lock(cache_mutex_);
    if (metrics_cache_.size() < kMetricsCacheCap) {
      metrics_cache_.emplace(core_to_slot,
                             CachedMetrics{eval, floorplan_aspect});
    }
  }

  // Lightweight (search-loop) evaluations carry metrics only: the searches
  // compare candidates by scalars, so copying the floorplan geometry into
  // every rejected candidate would be pure waste. Materialized evaluations
  // — the winners and every caller-facing result — get the full floorplan
  // and routes, exactly as before.
  if (materialize) {
    eval.floorplan = floorplan;
    eval.link_loads = scratch.loads.values();
    eval.routes.reserve(num_commodities);
    for (std::size_t k = 0; k < num_commodities; ++k) {
      eval.routes.push_back(*scratch.route_refs[k]);
    }
    // Per-scenario degraded link loads are a materialized-only extra (like
    // link_loads), computed after the cache insert above so cached metrics
    // stay identical between the hit and miss paths.
    if (!fault_scenarios_.empty()) {
      const auto num_switches_sz = static_cast<std::size_t>(num_switches);
      for (std::size_t s = 0; s < fault_scenarios_.size(); ++s) {
        auto& outcome = eval.fault_outcomes[s];
        scratch.fault_loads.assign(static_cast<std::size_t>(num_edges), 0.0);
        for (std::size_t k = 0; k < num_commodities; ++k) {
          const auto& commodity = commodities_[k];
          const int src_slot =
              core_to_slot[static_cast<std::size_t>(commodity.src_core)];
          const graph::NodeId ingress = topology_.ingress_switch(src_slot);
          const graph::NodeId egress = topology_.egress_switch(
              core_to_slot[static_cast<std::size_t>(commodity.dst_core)]);
          const fault::MaskedBfs* bfs;
          if (config_.incremental_fault_eval) {
            bfs = &fault_bfs_[s * num_switches_sz +
                              static_cast<std::size_t>(ingress)];
          } else {
            fault::masked_bfs(g, ingress, fault_masks_[s], scratch.fault_bfs);
            bfs = &scratch.fault_bfs;
          }
          if (!fault::extract_path(g, *bfs, ingress, egress,
                                   scratch.fault_path)) {
            continue;
          }
          for (const graph::EdgeId e : scratch.fault_path.edges) {
            scratch.fault_loads[static_cast<std::size_t>(e)] +=
                commodity.value_mbps;
          }
        }
        outcome.max_link_load_mbps =
            scratch.fault_loads.empty()
                ? 0.0
                : *std::max_element(scratch.fault_loads.begin(),
                                    scratch.fault_loads.end());
      }
    }
  }
  return eval;
}

const fplan::Floorplan& EvalContext::floorplan_for_mapping(
    const std::vector<int>& core_to_slot, EvalScratch& scratch) const {
  const int num_slots = topology_.num_slots();
  scratch.floor_key.assign(static_cast<std::size_t>(num_slots), 0);
  for (int core = 0; core < app_.num_cores(); ++core) {
    scratch.floor_key[static_cast<std::size_t>(
        core_to_slot[static_cast<std::size_t>(core)])] =
        static_cast<std::uint16_t>(
            core_shape_class_[static_cast<std::size_t>(core)] + 1);
  }
  {
    // Cache-entry references outlive the lock: entries are never evicted,
    // and the only clear happens in bind(), which is documented to never
    // run concurrently with evaluations.
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    const auto it = floorplan_cache_.find(scratch.floor_key);
    if (it != floorplan_cache_.end()) {
      g_floorplan_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    g_floorplan_misses.fetch_add(1, std::memory_order_relaxed);
  }
  // Cache miss. The reference (non-incremental) path pays a from-scratch
  // Floorplanner::place — it exists so the annealing_incremental bench
  // invariant and the transactional-equivalence tests can measure the
  // incremental engine against the exact arithmetic it must reproduce.
  if (!config_.incremental_floorplan) {
    scratch.core_shapes.assign(static_cast<std::size_t>(num_slots),
                               std::nullopt);
    for (int slot = 0; slot < num_slots; ++slot) {
      const std::uint16_t cls =
          scratch.floor_key[static_cast<std::size_t>(slot)];
      if (cls > 0) {
        scratch.core_shapes[static_cast<std::size_t>(slot)] =
            class_shapes_[static_cast<std::size_t>(cls - 1)];
      }
    }
    scratch.fplan_result = fplan::Floorplanner(config_.floorplan)
                               .place(placement_, scratch.core_shapes,
                                      switch_shapes_);
    std::unique_lock<std::shared_mutex> lock(cache_mutex_);
    if (floorplan_cache_.size() < kFloorplanCacheCap) {
      floorplan_cache_.emplace(scratch.floor_key, scratch.fplan_result);
    }
    return scratch.fplan_result;
  }
  // Incremental path: solve through this thread's session, sending only the
  // slots whose shape class moved since the session's last solve — a
  // pairwise swap perturbs at most two. Shape classes map to bit-identical
  // shapes, so updating by class representative equals updating by the
  // cores' own shapes, and the session's incremental solve is bit-identical
  // to the from-scratch Floorplanner::place the cache used to call. Under an
  // open DeltaTxn speculation the delta is journaled instead of applied
  // destructively: the session takes it as a push_shapes frame and the
  // displaced key entries are logged, so a rollback restores the session to
  // the incumbent mapping without re-deriving anything.
  fplan::FloorplanSession& session = session_for(scratch);
  const bool speculative = scratch.txn_depth > 0;
  scratch.fplan_updates.clear();
  for (int slot = 0; slot < num_slots; ++slot) {
    const std::uint16_t want = scratch.floor_key[static_cast<std::size_t>(slot)];
    auto& have = scratch.fplan_session_key[static_cast<std::size_t>(slot)];
    if (have == want) continue;
    fplan::SlotShapeUpdate update;
    update.slot = slot;
    if (want > 0) update.shape = class_shapes_[static_cast<std::size_t>(want - 1)];
    scratch.fplan_updates.push_back(std::move(update));
    if (speculative) scratch.txn_key_undo.emplace_back(slot, have);
    have = want;
  }
  if (speculative) {
    session.push_shapes(scratch.fplan_updates);
    ++scratch.txn_session_pushes;
  } else {
    session.update_shapes(scratch.fplan_updates);
  }
  const fplan::Floorplan& floorplan = session.solve();
  {
    std::unique_lock<std::shared_mutex> lock(cache_mutex_);
    if (floorplan_cache_.size() < kFloorplanCacheCap) {
      floorplan_cache_.emplace(scratch.floor_key, floorplan);
    }
  }
  // The session's solution stays untouched until this scratch's next
  // floorplan query, so returning it directly skips a blocks copy per miss.
  return floorplan;
}

fplan::FloorplanSession& EvalContext::session_for(EvalScratch& scratch) const {
  const auto num_slots = static_cast<std::size_t>(topology_.num_slots());
  // The slot-count guard backs up the id/epoch checks: a scratch recycled
  // across contexts (the shared worker pool hands them around freely) whose
  // id and floorplan epoch both happen to line up must still never feed a
  // session resolved for a different topology — a mismatch between the key
  // length and this topology's slot count is the tell.
  if (scratch.fplan_session == nullptr ||
      scratch.fplan_session_context != context_id_ ||
      scratch.fplan_session_epoch != session_epoch_ ||
      scratch.fplan_session_key.size() != num_slots) {
    // Seed with every slot empty (shape class 0); the first solve's delta
    // then carries the whole mapping, which the session treats as a full
    // solve anyway.
    scratch.core_shapes.assign(num_slots, std::nullopt);
    scratch.fplan_session = std::make_unique<fplan::FloorplanSession>(
        config_.floorplan, placement_, scratch.core_shapes, switch_shapes_);
    scratch.fplan_session_context = context_id_;
    scratch.fplan_session_epoch = session_epoch_;
    scratch.fplan_session_key.assign(num_slots, 0);
    scratch.txn_session_pushes = 0;
    scratch.txn_key_undo.clear();
  }
  return *scratch.fplan_session;
}

route::RoutingSession& EvalContext::routing_session_for(
    EvalScratch& scratch) const {
  // Same id/epoch discipline as session_for: a scratch recycled across
  // contexts or across an evaluation-class rebind holds a trace of different
  // routes, so it is rebound rather than trusted. The commodity-count guard
  // is the structural backstop for id collisions.
  if (scratch.routing_session == nullptr ||
      scratch.routing_session_context != context_id_ ||
      scratch.routing_session_epoch != routing_epoch_ ||
      scratch.routing_session->num_commodities() !=
          static_cast<int>(commodities_.size()) ||
      scratch.routing_session->reroute_passes() != config_.reroute_passes) {
    if (scratch.routing_session == nullptr) {
      scratch.routing_session = std::make_unique<route::RoutingSession>();
    }
    std::vector<double> demands;
    demands.reserve(commodities_.size());
    for (const auto& commodity : commodities_) {
      demands.push_back(commodity.value_mbps);
    }
    scratch.routing_session->reset(std::move(demands), config_.reroute_passes);
    scratch.routing_session_context = context_id_;
    scratch.routing_session_epoch = routing_epoch_;
    scratch.txn_route_pushes = 0;
  }
  return *scratch.routing_session;
}

bool EvalContext::supports_pruning() const {
  // Collecting explored mappings requires the full area/power of every
  // candidate, so it disables pruning regardless of the objective; the
  // bound_pruning switch is how the admissibility tests obtain the
  // prune-free reference search.
  return config_.bound_pruning && !config_.collect_explored;
}

double EvalContext::hop_cost_lower_bound(
    const std::vector<int>& core_to_slot) const {
  double weighted = 0.0;
  for (const auto& commodity : commodities_) {
    const int src_slot =
        core_to_slot[static_cast<std::size_t>(commodity.src_core)];
    const int dst_slot =
        core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
    weighted += commodity.value_mbps *
                static_cast<double>(
                    topology_.min_switch_hops(src_slot, dst_slot));
  }
  return total_value_ > 0.0 ? weighted / total_value_ : 0.0;
}

void EvalContext::build_bound_envelope() {
  BoundEnvelope env;
  env.grid = placement_.mode == topo::RelativePlacement::Mode::kGrid;
  env.spacing = config_.floorplan.spacing_mm;
  env.ncols = std::max(placement_.num_cols, 1);
  env.nrows = std::max(placement_.num_rows, 1);
  const int num_slots = topology_.num_slots();
  const int num_switches = topology_.num_switches();

  // Minimal dimensions a block can resolve to: hard blocks are fixed, soft
  // blocks are clamped to [min_aspect, max_aspect] by the sizing pass, so
  // w >= sqrt(area * min_aspect) and h >= sqrt(area / max_aspect) whatever
  // aspect the floorplanner actually picks.
  const auto min_dims = [](const fplan::BlockShape& shape) {
    if (!shape.soft) return std::pair<double, double>{shape.width_mm,
                                                      shape.height_mm};
    return std::pair<double, double>{
        std::sqrt(shape.area_mm2 * shape.min_aspect),
        std::sqrt(shape.area_mm2 / shape.max_aspect)};
  };

  env.class_min_w.reserve(class_shapes_.size());
  env.class_min_h.reserve(class_shapes_.size());
  for (const auto& shape : class_shapes_) {
    const auto [w, h] = min_dims(shape);
    env.class_min_w.push_back(w);
    env.class_min_h.push_back(h);
  }
  env.min_any_class_w =
      env.class_min_w.empty()
          ? 0.0
          : *std::min_element(env.class_min_w.begin(), env.class_min_w.end());
  env.min_any_class_h =
      env.class_min_h.empty()
          ? 0.0
          : *std::min_element(env.class_min_h.begin(), env.class_min_h.end());

  env.slot_col.assign(static_cast<std::size_t>(num_slots), -1);
  env.slot_row.assign(static_cast<std::size_t>(num_slots), -1);
  env.slot_sub.assign(static_cast<std::size_t>(num_slots), 0);
  env.col_slot_count.assign(static_cast<std::size_t>(env.ncols), 0);
  env.row_slot_count.assign(static_cast<std::size_t>(env.nrows), 0);
  env.switch_min_w.assign(static_cast<std::size_t>(num_switches), 0.0);
  env.switch_min_h.assign(static_cast<std::size_t>(num_switches), 0.0);
  env.switch_col.assign(static_cast<std::size_t>(num_switches), -1);
  env.switch_row.assign(static_cast<std::size_t>(num_switches), -1);
  env.switch_sub.assign(static_cast<std::size_t>(num_switches), 0);
  env.col_base_w.assign(static_cast<std::size_t>(env.ncols), 0.0);
  env.col_has_items.assign(static_cast<std::size_t>(env.ncols), 0);
  env.row_has_items.assign(static_cast<std::size_t>(env.nrows), 0);
  env.row_base_h.assign(static_cast<std::size_t>(env.nrows), 0.0);
  if (env.grid) {
    env.cell_base_h.assign(
        static_cast<std::size_t>(env.nrows) *
            static_cast<std::size_t>(env.ncols),
        0.0);
    env.cell_base_n.assign(env.cell_base_h.size(), 0);
  } else {
    env.col_base_h.assign(static_cast<std::size_t>(env.ncols), 0.0);
    env.col_base_n.assign(static_cast<std::size_t>(env.ncols), 0);
  }

  bool ok = true;
  for (const auto& item : placement_.items) {
    if (item.col < 0 || item.col >= env.ncols || item.row < 0 ||
        item.row >= env.nrows) {
      ok = false;
      break;
    }
    const auto col = static_cast<std::size_t>(item.col);
    if (item.kind == topo::RelativePlacement::Item::Kind::kCore) {
      if (item.index < 0 || item.index >= num_slots) {
        ok = false;
        break;
      }
      // Core items contribute per candidate (they depend on the mapping);
      // only their coordinates are recorded here.
      env.slot_col[static_cast<std::size_t>(item.index)] = item.col;
      env.slot_row[static_cast<std::size_t>(item.index)] = item.row;
      env.slot_sub[static_cast<std::size_t>(item.index)] = item.sub;
      ++env.col_slot_count[col];
      ++env.row_slot_count[static_cast<std::size_t>(item.row)];
    } else {
      if (item.index < 0 || item.index >= num_switches) {
        ok = false;
        break;
      }
      const auto sw = static_cast<std::size_t>(item.index);
      const auto [w, h] = min_dims(switch_shapes_[sw]);
      env.switch_min_w[sw] = w;
      env.switch_min_h[sw] = h;
      env.switch_col[sw] = item.col;
      env.switch_row[sw] = item.row;
      env.switch_sub[sw] = item.sub;
      env.col_base_w[col] = std::max(env.col_base_w[col], w);
      env.col_has_items[col] = 1;
      env.row_has_items[static_cast<std::size_t>(item.row)] = 1;
      if (env.grid) {
        const std::size_t cell =
            static_cast<std::size_t>(item.row) *
                static_cast<std::size_t>(env.ncols) +
            col;
        env.cell_base_h[cell] += h;
        ++env.cell_base_n[cell];
      } else {
        env.col_base_h[col] += h;
        ++env.col_base_n[col];
      }
    }
  }
  // Every slot and switch must be placed for the bounds to speak about any
  // candidate mapping; a placement that omits one disables the envelope
  // (bounds of 0 never prune).
  for (int s = 0; ok && s < num_slots; ++s) {
    if (env.slot_col[static_cast<std::size_t>(s)] < 0) ok = false;
  }
  for (int sw = 0; ok && sw < num_switches; ++sw) {
    if (env.switch_col[static_cast<std::size_t>(sw)] < 0) ok = false;
  }

  if (ok && env.grid) {
    // Switch-only band floor per row: the row is at least as tall as its
    // tallest core-less cell stack. Also index which core slot shares each
    // cell (the per-link wire bounds use it).
    for (int r = 0; r < env.nrows; ++r) {
      for (int c = 0; c < env.ncols; ++c) {
        const std::size_t cell = static_cast<std::size_t>(r) *
                                     static_cast<std::size_t>(env.ncols) +
                                 static_cast<std::size_t>(c);
        const int n = env.cell_base_n[cell];
        if (n > 0) {
          const double h = env.cell_base_h[cell] + env.spacing * (n - 1);
          auto& row = env.row_base_h[static_cast<std::size_t>(r)];
          row = std::max(row, h);
        }
      }
    }
    env.cell_slot.assign(static_cast<std::size_t>(env.nrows) *
                             static_cast<std::size_t>(env.ncols),
                         -1);
    for (int s = 0; s < num_slots; ++s) {
      const auto slot = static_cast<std::size_t>(s);
      env.cell_slot[static_cast<std::size_t>(env.slot_row[slot]) *
                        static_cast<std::size_t>(env.ncols) +
                    static_cast<std::size_t>(env.slot_col[slot])] = s;
    }
  }

  if (ok) {
    // Minimum core-attachment wire per slot: in the band layout two blocks
    // in different columns are centred in bands at least `spacing` apart,
    // so their centres are >= spacing + (w_a + w_b) / 2 apart along x;
    // blocks sharing a column are stacked, giving the same bound along y
    // with heights. Half the switch extent is precomputed here; the core's
    // half extent joins per candidate, since it depends on the mapping.
    env.attach_in_base.assign(static_cast<std::size_t>(num_slots), 0.0);
    env.attach_out_base.assign(static_cast<std::size_t>(num_slots), 0.0);
    env.attach_in_vertical.assign(static_cast<std::size_t>(num_slots), 0);
    env.attach_out_vertical.assign(static_cast<std::size_t>(num_slots), 0);
    env.slot_in_sw.assign(static_cast<std::size_t>(num_slots), 0);
    env.slot_out_sw.assign(static_cast<std::size_t>(num_slots), 0);
    for (int s = 0; s < num_slots; ++s) {
      const auto slot = static_cast<std::size_t>(s);
      const auto in_sw =
          static_cast<std::size_t>(topology_.ingress_switch(s));
      const auto out_sw =
          static_cast<std::size_t>(topology_.egress_switch(s));
      env.slot_in_sw[slot] = static_cast<int>(in_sw);
      env.slot_out_sw[slot] = static_cast<int>(out_sw);
      const bool in_vertical =
          env.slot_col[slot] == env.switch_col[in_sw];
      const bool out_vertical =
          env.slot_col[slot] == env.switch_col[out_sw];
      env.attach_in_vertical[slot] = in_vertical ? 1 : 0;
      env.attach_out_vertical[slot] = out_vertical ? 1 : 0;
      env.attach_in_base[slot] =
          env.spacing +
          (in_vertical ? env.switch_min_h[in_sw] : env.switch_min_w[in_sw]) /
              2.0;
      env.attach_out_base[slot] =
          env.spacing +
          (out_vertical ? env.switch_min_h[out_sw]
                        : env.switch_min_w[out_sw]) /
              2.0;
    }
  }

  env.valid = ok;
  envelope_ = std::move(env);
}

void EvalContext::build_power_bound_table() {
  // Cheapest possible energy per bit between every (ingress, egress) switch
  // pair: Dijkstra over per-switch energies from the resolved table plus a
  // per-link minimum wire energy from the placement envelope. Any actual
  // route of any routing function traverses some switch path, whose energy
  // is the sum of its node energies plus the wire energy of its (at least
  // minimally long) links — never below this table's entry.
  const auto& g = topology_.switch_graph();
  const int num_slots = topology_.num_slots();
  const double link_e = config_.tech.link_energy_pj_per_bit_mm;

  // Per-link minimum wire lengths. Blocks sit centred in their column band
  // and stacked inside their row band, so the centre distance between two
  // switches is at least the spacing-separated sum of everything provably
  // between them: other columns'/rows' width/height floors, and — the
  // pigeonhole floors — the minimal core extent wherever the application
  // has more cores than fit outside a region, which guarantees that region
  // hosts a core whatever the mapping.
  const BoundEnvelope& env = envelope_;
  const int num_cores = app_.num_cores();
  const auto guaranteed_core = [&](int slots_in_region) {
    return slots_in_region > 0 &&
           num_cores > topology_.num_slots() - slots_in_region;
  };
  std::vector<double> col_w_floor, row_h_floor;
  std::vector<char> col_used, row_used;
  if (env.valid) {
    col_w_floor.assign(static_cast<std::size_t>(env.ncols), 0.0);
    col_used.assign(static_cast<std::size_t>(env.ncols), 0);
    for (int c = 0; c < env.ncols; ++c) {
      const auto col = static_cast<std::size_t>(c);
      const bool core = guaranteed_core(env.col_slot_count[col]);
      col_used[col] = env.col_has_items[col] || core;
      col_w_floor[col] = env.col_base_w[col];
      if (core) {
        col_w_floor[col] = std::max(col_w_floor[col], env.min_any_class_w);
      }
    }
    row_h_floor.assign(static_cast<std::size_t>(env.nrows), 0.0);
    row_used.assign(static_cast<std::size_t>(env.nrows), 0);
    for (int r = 0; r < env.nrows; ++r) {
      const auto row = static_cast<std::size_t>(r);
      const bool core = guaranteed_core(env.row_slot_count[row]);
      row_used[row] = env.row_has_items[row] || core;
      row_h_floor[row] = env.row_base_h[row];
      if (core) {
        row_h_floor[row] = std::max(row_h_floor[row], env.min_any_class_h);
      }
    }
  }

  // The band engine (the default) centres every block inside its full
  // column band and packs row bands back to back, which is what the
  // column/row floor terms below lean on. The simplex-LP engine only
  // guarantees the pairwise ordering constraints themselves (a narrow
  // switch may sit at the edge of a column another block widened), so
  // under it the bounds fall back to what the LP constraints provably
  // give: half of each endpoint's own extent, one spacing, and the
  // intra-cell stack of the upper cell — still admissible, just looser.
  const bool band_geometry =
      config_.floorplan.engine == fplan::Floorplanner::Engine::kLongestPath;

  std::vector<double> edge_wire(static_cast<std::size_t>(g.num_edges()), 0.0);
  if (env.valid) {
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& edge = g.edge(e);
      const auto u = static_cast<std::size_t>(edge.src);
      const auto v = static_cast<std::size_t>(edge.dst);
      double wire = 0.0;
      if (env.switch_col[u] != env.switch_col[v]) {
        // Different column bands: the x distance spans half of each end
        // column (each at least as wide as its own switch and, under the
        // band engine, its column floor) plus — band engine only — every
        // provably occupied column between, with a spacing gap per band
        // crossing.
        wire = env.switch_min_w[u] / 2.0 + env.switch_min_w[v] / 2.0 +
               env.spacing;
        if (band_geometry) {
          const int lo = std::min(env.switch_col[u], env.switch_col[v]);
          const int hi = std::max(env.switch_col[u], env.switch_col[v]);
          wire = std::max(col_w_floor[static_cast<std::size_t>(
                              env.switch_col[u])],
                          env.switch_min_w[u]) /
                     2.0 +
                 std::max(col_w_floor[static_cast<std::size_t>(
                              env.switch_col[v])],
                          env.switch_min_w[v]) /
                     2.0;
          int gaps = 1;
          for (int c = lo + 1; c < hi; ++c) {
            if (!col_used[static_cast<std::size_t>(c)]) continue;
            wire += col_w_floor[static_cast<std::size_t>(c)];
            ++gaps;
          }
          wire += env.spacing * gaps;
        }
      } else if (env.grid && env.switch_row[u] != env.switch_row[v]) {
        // Same column, different row bands: half of each switch's height,
        // a spacing per crossing (band engine: plus every provably used
        // row band between) — and, when the upper switch's cell is
        // guaranteed to host a core stacked below it, that core's minimal
        // height too (an intra-cell constraint both engines enforce).
        const bool v_upper = env.switch_row[v] > env.switch_row[u];
        const auto upper = v_upper ? v : u;
        wire = (env.switch_min_h[u] + env.switch_min_h[v]) / 2.0;
        int gaps = 1;
        if (band_geometry) {
          const int lo = std::min(env.switch_row[u], env.switch_row[v]);
          const int hi = std::max(env.switch_row[u], env.switch_row[v]);
          for (int r = lo + 1; r < hi; ++r) {
            if (!row_used[static_cast<std::size_t>(r)]) continue;
            wire += row_h_floor[static_cast<std::size_t>(r)];
            ++gaps;
          }
        }
        const int cell_slot =
            env.cell_slot[static_cast<std::size_t>(env.switch_row[upper]) *
                              static_cast<std::size_t>(env.ncols) +
                          static_cast<std::size_t>(env.switch_col[upper])];
        if (cell_slot >= 0 && guaranteed_core(1) &&
            env.slot_sub[static_cast<std::size_t>(cell_slot)] <
                env.switch_sub[upper]) {
          wire += env.min_any_class_h + env.spacing;
        }
        wire += env.spacing * gaps;
      } else {
        // Same band (stacked in one cell or one column): at least a
        // spacing plus half of each height apart.
        wire = env.spacing + (env.switch_min_h[u] + env.switch_min_h[v]) / 2.0;
      }
      edge_wire[static_cast<std::size_t>(e)] = wire;
    }
  }

  // Exact-geometry upgrade: when the application has a single core shape
  // class and fills every slot, every injective mapping produces the same
  // per-slot shape assignment, hence the identical floorplan. The wire
  // bounds can then use the actual placed geometry — per-link centre
  // distances and exact core-attachment wires — instead of minimal
  // envelopes, which is what closes most of the bound gap on the
  // fully-occupied uniform meshes (netproc16).
  power_bound_exact_ = false;
  const auto manhattan = [](double ax, double ay, double bx, double by) {
    return std::abs(ax - bx) + std::abs(ay - by);
  };
  if (env.valid && class_shapes_.size() == 1 &&
      num_cores == num_slots) {
    const int num_switches = topology_.num_switches();
    std::vector<std::optional<fplan::BlockShape>> shapes(
        static_cast<std::size_t>(num_slots), class_shapes_[0]);
    const fplan::Floorplan plan =
        fplan::Floorplanner(config_.floorplan)
            .place(placement_, shapes, switch_shapes_);
    std::vector<double> sw_cx(static_cast<std::size_t>(num_switches), 0.0);
    std::vector<double> sw_cy(static_cast<std::size_t>(num_switches), 0.0);
    std::vector<double> core_cx(static_cast<std::size_t>(num_slots), 0.0);
    std::vector<double> core_cy(static_cast<std::size_t>(num_slots), 0.0);
    for (const auto& block : plan.blocks()) {
      if (block.kind == fplan::PlacedBlock::Kind::kCore) {
        core_cx[static_cast<std::size_t>(block.index)] = block.cx();
        core_cy[static_cast<std::size_t>(block.index)] = block.cy();
      } else {
        sw_cx[static_cast<std::size_t>(block.index)] = block.cx();
        sw_cy[static_cast<std::size_t>(block.index)] = block.cy();
      }
    }
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& edge = g.edge(e);
      edge_wire[static_cast<std::size_t>(e)] = manhattan(
          sw_cx[static_cast<std::size_t>(edge.src)],
          sw_cy[static_cast<std::size_t>(edge.src)],
          sw_cx[static_cast<std::size_t>(edge.dst)],
          sw_cy[static_cast<std::size_t>(edge.dst)]);
    }
    exact_attach_in_.assign(static_cast<std::size_t>(num_slots), 0.0);
    exact_attach_out_.assign(static_cast<std::size_t>(num_slots), 0.0);
    for (int s = 0; s < num_slots; ++s) {
      const auto slot = static_cast<std::size_t>(s);
      const auto in_sw =
          static_cast<std::size_t>(topology_.ingress_switch(s));
      const auto out_sw =
          static_cast<std::size_t>(topology_.egress_switch(s));
      exact_attach_in_[slot] = manhattan(core_cx[slot], core_cy[slot],
                                         sw_cx[in_sw], sw_cy[in_sw]);
      exact_attach_out_[slot] = manhattan(core_cx[slot], core_cy[slot],
                                          sw_cx[out_sw], sw_cy[out_sw]);
    }
    power_bound_exact_ = true;
  }

  // One single-source Dijkstra per distinct ingress switch reaches every
  // egress at once — O(S) passes instead of a point-to-point search per
  // slot pair. Run once with the wire term folded in (the main table) and,
  // outside exact mode, once over switch energies alone — the base the
  // per-candidate occupied-band wire refinement adds its geometric floor
  // to (the refined bound must not double-count the static edge wires).
  const auto run_sweep = [&](const auto& edge_cost,
                             std::vector<double>& table) {
    table.assign(static_cast<std::size_t>(num_slots) *
                     static_cast<std::size_t>(num_slots),
                 0.0);
    constexpr double kUnreached = std::numeric_limits<double>::infinity();
    std::map<graph::NodeId, std::vector<double>> by_ingress;
    std::vector<char> settled;
    for (int src = 0; src < num_slots; ++src) {
      const graph::NodeId u = topology_.ingress_switch(src);
      auto [it, inserted] =
          by_ingress.try_emplace(u, std::vector<double>());
      if (inserted) {
        auto& dist = it->second;
        dist.assign(static_cast<std::size_t>(g.num_nodes()), kUnreached);
        settled.assign(static_cast<std::size_t>(g.num_nodes()), 0);
        using Entry = std::pair<double, graph::NodeId>;
        std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
        dist[static_cast<std::size_t>(u)] = 0.0;
        queue.emplace(0.0, u);
        while (!queue.empty()) {
          const auto [d, node] = queue.top();
          queue.pop();
          if (settled[static_cast<std::size_t>(node)]) continue;
          settled[static_cast<std::size_t>(node)] = 1;
          for (const graph::EdgeId e : g.out_edges(node)) {
            const graph::NodeId next = g.edge(e).dst;
            const double candidate = d + edge_cost(e);
            if (candidate < dist[static_cast<std::size_t>(next)]) {
              dist[static_cast<std::size_t>(next)] = candidate;
              queue.emplace(candidate, next);
            }
          }
        }
      }
      const auto& dist = it->second;
      for (int dst = 0; dst < num_slots; ++dst) {
        const auto v =
            static_cast<std::size_t>(topology_.egress_switch(dst));
        // An unreachable pair cannot be routed at all; leave its bound at
        // zero so it can never prune a candidate evaluate() would reject
        // its own way.
        table[static_cast<std::size_t>(src) *
                  static_cast<std::size_t>(num_slots) +
              static_cast<std::size_t>(dst)] =
            dist[v] == kUnreached
                ? 0.0
                : switch_table_.energy_pj_per_bit(static_cast<int>(u)) +
                      dist[v];
      }
    }
  };
  run_sweep(
      [&](graph::EdgeId e) {
        return switch_table_.energy_pj_per_bit(g.edge(e).dst) +
               link_e * edge_wire[static_cast<std::size_t>(e)];
      },
      pair_energy_lb_);
  if (!power_bound_exact_) {
    run_sweep(
        [&](graph::EdgeId e) {
          return switch_table_.energy_pj_per_bit(g.edge(e).dst);
        },
        pair_switch_energy_lb_);
  } else {
    pair_switch_energy_lb_.clear();
  }
  power_bound_valid_ = true;
}

void EvalContext::fill_bound_floors(const std::vector<int>& core_to_slot,
                                    EvalScratch& scratch) const {
  const BoundEnvelope& env = envelope_;
  // Start from the mapping-invariant switch floors, then fold in each
  // mapped core's minimal dimensions at its slot's grid position — exactly
  // the band layout the floorplanner computes, with every resolved
  // dimension replaced by its minimum.
  scratch.bound_col_w = env.col_base_w;
  scratch.bound_col_used.assign(env.col_has_items.begin(),
                                env.col_has_items.end());
  if (env.grid) {
    scratch.bound_row_h = env.row_base_h;
    scratch.bound_row_used.assign(env.row_has_items.begin(),
                                  env.row_has_items.end());
  } else {
    scratch.bound_row_h = env.col_base_h;
    scratch.bound_row_used.assign(env.col_base_n.size(), 0);
  }

  for (int core = 0; core < app_.num_cores(); ++core) {
    const auto slot = static_cast<std::size_t>(
        core_to_slot[static_cast<std::size_t>(core)]);
    const auto cls =
        static_cast<std::size_t>(core_shape_class_[static_cast<std::size_t>(
            core)]);
    const auto col = static_cast<std::size_t>(env.slot_col[slot]);
    auto& col_w = scratch.bound_col_w[col];
    col_w = std::max(col_w, env.class_min_w[cls]);
    scratch.bound_col_used[col] = 1;
    if (env.grid) {
      const auto row = static_cast<std::size_t>(env.slot_row[slot]);
      const std::size_t cell =
          row * static_cast<std::size_t>(env.ncols) + col;
      const double stack = env.cell_base_h[cell] + env.class_min_h[cls] +
                           env.spacing * env.cell_base_n[cell];
      auto& row_h = scratch.bound_row_h[row];
      row_h = std::max(row_h, stack);
      scratch.bound_row_used[row] = 1;
    } else {
      scratch.bound_row_h[col] += env.class_min_h[cls];
      ++scratch.bound_row_used[col];
    }
  }
}

double EvalContext::area_lower_bound(const std::vector<int>& core_to_slot,
                                     EvalScratch& scratch) const {
  const BoundEnvelope& env = envelope_;
  if (!env.valid) return 0.0;

  fill_bound_floors(core_to_slot, scratch);

  double width = 0.0;
  int used_cols = 0;
  for (std::size_t c = 0; c < scratch.bound_col_w.size(); ++c) {
    if (!scratch.bound_col_used[c]) continue;
    width += scratch.bound_col_w[c];
    ++used_cols;
  }
  if (used_cols > 1) width += env.spacing * (used_cols - 1);

  double height = 0.0;
  if (env.grid) {
    int used_rows = 0;
    for (std::size_t r = 0; r < scratch.bound_row_h.size(); ++r) {
      if (!scratch.bound_row_used[r]) continue;
      height += scratch.bound_row_h[r];
      ++used_rows;
    }
    if (used_rows > 1) height += env.spacing * (used_rows - 1);
  } else {
    // Columns mode: chip height is the tallest column stack.
    for (std::size_t c = 0; c < scratch.bound_row_h.size(); ++c) {
      const int items = env.col_base_n[c] + scratch.bound_row_used[c];
      if (items <= 0) continue;
      height = std::max(height,
                        scratch.bound_row_h[c] + env.spacing * (items - 1));
    }
  }
  return width * height;
}

double EvalContext::power_lower_bound_impl(
    const std::vector<int>& core_to_slot, EvalScratch& scratch,
    bool floors_filled) const {
  if (!power_bound_valid_) return 0.0;
  const BoundEnvelope& env = envelope_;
  const auto num_slots = static_cast<std::size_t>(topology_.num_slots());
  const double link_e = config_.tech.link_energy_pj_per_bit_mm;

  // Exact-geometry mode (mapping-invariant floorplan): the pair table
  // already carries actual wire lengths, and the attachments are exact.
  if (power_bound_exact_) {
    double power_mw = 0.0;
    for (const auto& commodity : commodities_) {
      const auto src_slot = static_cast<std::size_t>(
          core_to_slot[static_cast<std::size_t>(commodity.src_core)]);
      const auto dst_slot = static_cast<std::size_t>(
          core_to_slot[static_cast<std::size_t>(commodity.dst_core)]);
      const double energy_pj =
          pair_energy_lb_[src_slot * num_slots + dst_slot] +
          link_e * (exact_attach_in_[src_slot] + exact_attach_out_[dst_slot]);
      power_mw += commodity.value_mbps * 8e-3 * energy_pj;
    }
    return switch_table_.total_static_power_mw() + power_mw;
  }

  // Per-candidate occupied-row/column wire refinement (band engine only —
  // it leans on blocks being centred in their column bands and row bands
  // packing back to back). The candidate's per-band floors are the area
  // bound's, folded into prefix sums so each commodity's between-band wire
  // floor is O(1): for ingress/egress switches in different bands, their
  // centre distance is at least half of each end band plus every occupied
  // band between, a spacing per crossing — along both axes. Added to the
  // switch-energy-only Dijkstra table it forms a second admissible bound;
  // each commodity takes the max of the two.
  const bool refine =
      env.valid && env.grid &&
      config_.floorplan.engine == fplan::Floorplanner::Engine::kLongestPath &&
      !pair_switch_energy_lb_.empty();
  if (refine) {
    if (!floors_filled) fill_bound_floors(core_to_slot, scratch);
    const auto ncols = static_cast<std::size_t>(env.ncols);
    const auto nrows = static_cast<std::size_t>(env.nrows);
    scratch.bound_col_px.assign(ncols, 0.0);
    scratch.bound_col_pn.assign(ncols, 0);
    double acc_w = 0.0;
    int cnt_w = 0;
    for (std::size_t c = 0; c < ncols; ++c) {
      if (scratch.bound_col_used[c]) {
        acc_w += scratch.bound_col_w[c];
        ++cnt_w;
      }
      scratch.bound_col_px[c] = acc_w;
      scratch.bound_col_pn[c] = cnt_w;
    }
    scratch.bound_row_px.assign(nrows, 0.0);
    scratch.bound_row_pn.assign(nrows, 0);
    double acc_h = 0.0;
    int cnt_h = 0;
    for (std::size_t r = 0; r < nrows; ++r) {
      if (scratch.bound_row_used[r]) {
        acc_h += scratch.bound_row_h[r];
        ++cnt_h;
      }
      scratch.bound_row_px[r] = acc_h;
      scratch.bound_row_pn[r] = cnt_h;
    }
  }

  double power_mw = 0.0;
  for (const auto& commodity : commodities_) {
    const auto src_slot = static_cast<std::size_t>(
        core_to_slot[static_cast<std::size_t>(commodity.src_core)]);
    const auto dst_slot = static_cast<std::size_t>(
        core_to_slot[static_cast<std::size_t>(commodity.dst_core)]);
    double energy_pj = pair_energy_lb_[src_slot * num_slots + dst_slot];
    double attach_pj = 0.0;
    if (env.valid) {
      const auto src_cls = static_cast<std::size_t>(
          core_shape_class_[static_cast<std::size_t>(commodity.src_core)]);
      const auto dst_cls = static_cast<std::size_t>(
          core_shape_class_[static_cast<std::size_t>(commodity.dst_core)]);
      const double in_core = env.attach_in_vertical[src_slot]
                                 ? env.class_min_h[src_cls]
                                 : env.class_min_w[src_cls];
      const double out_core = env.attach_out_vertical[dst_slot]
                                  ? env.class_min_h[dst_cls]
                                  : env.class_min_w[dst_cls];
      attach_pj = link_e * (env.attach_in_base[src_slot] + in_core / 2.0 +
                            env.attach_out_base[dst_slot] + out_core / 2.0);
    }
    if (refine) {
      const auto in_sw = static_cast<std::size_t>(env.slot_in_sw[src_slot]);
      const auto out_sw = static_cast<std::size_t>(env.slot_out_sw[dst_slot]);
      double wire = 0.0;
      const int cu = env.switch_col[in_sw];
      const int cv = env.switch_col[out_sw];
      if (cu != cv) {
        // Blocks sit centred in their column band, so the x distance spans
        // half of each end column (at least as wide as its own switch and
        // the candidate's column floor) plus every occupied column between.
        const int lo = std::min(cu, cv);
        const int hi = std::max(cu, cv);
        const double between =
            scratch.bound_col_px[static_cast<std::size_t>(hi - 1)] -
            scratch.bound_col_px[static_cast<std::size_t>(lo)];
        const int gaps =
            scratch.bound_col_pn[static_cast<std::size_t>(hi - 1)] -
            scratch.bound_col_pn[static_cast<std::size_t>(lo)] + 1;
        wire += std::max(scratch.bound_col_w[static_cast<std::size_t>(cu)],
                         env.switch_min_w[in_sw]) /
                    2.0 +
                std::max(scratch.bound_col_w[static_cast<std::size_t>(cv)],
                         env.switch_min_w[out_sw]) /
                    2.0 +
                between + env.spacing * gaps;
      }
      const int ru = env.switch_row[in_sw];
      const int rv = env.switch_row[out_sw];
      if (ru != rv) {
        // Row bands pack back to back; the endpoints contribute half their
        // own switch heights (a stacked block is not centred in its band).
        const int lo = std::min(ru, rv);
        const int hi = std::max(ru, rv);
        const double between =
            scratch.bound_row_px[static_cast<std::size_t>(hi - 1)] -
            scratch.bound_row_px[static_cast<std::size_t>(lo)];
        const int gaps =
            scratch.bound_row_pn[static_cast<std::size_t>(hi - 1)] -
            scratch.bound_row_pn[static_cast<std::size_t>(lo)] + 1;
        wire += (env.switch_min_h[in_sw] + env.switch_min_h[out_sw]) / 2.0 +
                between + env.spacing * gaps;
      }
      const double refined =
          pair_switch_energy_lb_[src_slot * num_slots + dst_slot] +
          link_e * wire;
      energy_pj = std::max(energy_pj, refined);
    }
    power_mw += commodity.value_mbps * 8e-3 * (energy_pj + attach_pj);
  }
  return switch_table_.total_static_power_mw() + power_mw;
}

bool EvalContext::prunable(const std::vector<int>& core_to_slot,
                           const Evaluation& incumbent,
                           EvalScratch& scratch) const {
  // Sound only against a feasible incumbent: better_than() ranks any
  // feasible candidate above an infeasible incumbent regardless of cost, and
  // the cost bounds say nothing about bandwidth feasibility.
  if (!supports_pruning() || !incumbent.feasible()) return false;
  // Strict-dominance margin for bounds whose arithmetic is not an exact
  // reproduction of evaluate()'s: they only prune candidates beating the
  // incumbent by more than a relative 1e-9, which dwarfs any floating-point
  // divergence between the bound and the exact value.
  const double strict = 1e-9 * std::max(1.0, std::abs(incumbent.cost));

  const bool wants_area_bound =
      config_.objective == Objective::kMinArea ||
      config_.objective == Objective::kWeighted ||
      std::isfinite(config_.max_area_mm2);
  double area_lb = 0.0;
  if (envelope_.valid && wants_area_bound) {
    area_lb = area_lower_bound(core_to_slot, scratch);
    if (area_lb > (config_.max_area_mm2 + 1e-9) * (1.0 + 1e-9)) {
      // Provably violates the area cap: an infeasible candidate can never
      // rank above a feasible incumbent, whatever the objective.
      return true;
    }
  }

  switch (config_.objective) {
    case Objective::kMinDelay: {
      const double bound = hop_cost_lower_bound(core_to_slot);
      // For the single-minimal-path routing functions (DO, MP) an evaluated
      // candidate whose routes are all minimal reproduces the bound's
      // arithmetic exactly, so `bound >= cost` can never prune a candidate
      // that would have ranked strictly better — ties included. The split
      // functions accumulate path fractions whose sum can differ from 1 by
      // an ulp, so they keep the safety margin and only prune strictly
      // dominated candidates.
      const bool exact_bound =
          config_.routing == route::RoutingKind::kDimensionOrdered ||
          config_.routing == route::RoutingKind::kMinPath;
      return bound >= incumbent.cost + (exact_bound ? 0.0 : strict);
    }
    case Objective::kMinArea: {
      if (envelope_.valid && area_lb >= incumbent.cost + strict) return true;
      // The envelope could not decide, but under min-area the cost IS the
      // floorplan area, which depends only on the per-slot shape classes:
      // the exact (cache-accelerated) floorplan settles it, skipping the
      // routing the full evaluation would pay. Ties prune — an equal-cost
      // candidate never replaces the incumbent.
      return floorplan_for_mapping(core_to_slot, scratch).area_mm2() >=
             incumbent.cost;
    }
    case Objective::kMinPower:
      // area_lower_bound (when the area cap engaged it above) already
      // derived this candidate's band floors into the scratch; the power
      // refinement reuses them.
      return power_bound_valid_ &&
             power_lower_bound_impl(core_to_slot, scratch,
                                    /*floors_filled=*/envelope_.valid &&
                                        wants_area_bound) >=
                 incumbent.cost + strict;
    case Objective::kWeighted: {
      if (!power_bound_valid_ || !envelope_.valid) return false;
      const auto& w = config_.weights;
      const double bound =
          w.delay * hop_cost_lower_bound(core_to_slot) / w.ref_hops +
          w.area * area_lb / w.ref_area_mm2 +
          w.power *
              power_lower_bound_impl(core_to_slot, scratch,
                                     /*floors_filled=*/true) /
              w.ref_power_mw;
      return bound >= incumbent.cost + strict;
    }
  }
  return false;
}

}  // namespace sunmap::mapping
