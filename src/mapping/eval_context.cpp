#include "mapping/eval_context.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sunmap::mapping {

EvalContext::EvalContext(const CoreGraph& app, const topo::Topology& topology,
                         const MapperConfig& config,
                         const model::AreaPowerLibrary& library)
    : app_(app),
      topology_(topology),
      config_(config),
      commodities_(commodities_by_value(app)),
      placement_(topology.relative_placement()),
      planner_(config.floorplan),
      engine_(topology, config.routing, config.split_chunks,
              config.link_bandwidth_mbps) {
  // Accumulated in commodity order, matching the summation order of the
  // from-scratch evaluator.
  for (const auto& commodity : commodities_) {
    total_value_ += commodity.value_mbps;
  }

  // Resolve the area/power library once per switch instead of per lookup in
  // the evaluator's inner loops, and pre-sum the mapping-invariant totals.
  std::vector<std::pair<int, int>> switch_ports;
  switch_ports.reserve(static_cast<std::size_t>(topology.num_switches()));
  for (graph::NodeId sw = 0; sw < topology.num_switches(); ++sw) {
    switch_ports.emplace_back(topology.switch_in_ports(sw),
                              topology.switch_out_ports(sw));
  }
  switch_table_ = model::ResolvedSwitchTable(library, switch_ports);

  switch_shapes_.reserve(static_cast<std::size_t>(topology.num_switches()));
  for (graph::NodeId sw = 0; sw < topology.num_switches(); ++sw) {
    auto shape = fplan::BlockShape::soft_block(switch_table_.entry(sw).area_mm2);
    shape.min_aspect = 0.5;
    shape.max_aspect = 2.0;
    switch_shapes_.push_back(shape);
  }

  static_routing_ = config_.routing == route::RoutingKind::kDimensionOrdered ||
                    config_.routing == route::RoutingKind::kSplitMin;
  adaptive_routing_ = config_.routing == route::RoutingKind::kMinPath ||
                      config_.routing == route::RoutingKind::kSplitAll;

  if (config_.routing == route::RoutingKind::kMinPath) {
    quadrant_table_.emplace(topology_);
    engine_.attach_quadrant_table(&*quadrant_table_);
  }
  if (static_routing_) build_static_routes();
}

void EvalContext::build_static_routes() {
  // Dimension-ordered and split-across-minimum-paths routes depend only on
  // the slot pair, never on link loads, so every candidate mapping draws its
  // routes from this table. This is what makes re-routing after a pairwise
  // swap a delta operation: only the commodities touching the two swapped
  // slots change which table entry they reference.
  const int num_slots = topology_.num_slots();
  static_routes_.resize(static_cast<std::size_t>(num_slots) *
                        static_cast<std::size_t>(num_slots));
  const route::LoadMap no_loads(topology_.switch_graph().num_edges());
  for (int src = 0; src < num_slots; ++src) {
    for (int dst = 0; dst < num_slots; ++dst) {
      if (src == dst) continue;
      static_routes_[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(num_slots) +
                     static_cast<std::size_t>(dst)] =
          engine_.route(src, dst, /*demand=*/0.0, no_loads);
    }
  }
}

Evaluation EvalContext::evaluate(const std::vector<int>& core_to_slot,
                                 EvalScratch& scratch,
                                 bool materialize) const {
  const int num_cores = app_.num_cores();
  const int num_slots = topology_.num_slots();
  const int num_switches = topology_.num_switches();
  if (static_cast<int>(core_to_slot.size()) != num_cores) {
    throw std::invalid_argument("EvalContext::evaluate: mapping size mismatch");
  }
  scratch.slot_to_core.assign(static_cast<std::size_t>(num_slots), -1);
  for (int core = 0; core < num_cores; ++core) {
    const int slot = core_to_slot[static_cast<std::size_t>(core)];
    if (slot < 0 || slot >= num_slots) {
      throw std::invalid_argument("EvalContext::evaluate: slot out of range");
    }
    if (scratch.slot_to_core[static_cast<std::size_t>(slot)] != -1) {
      throw std::invalid_argument("EvalContext::evaluate: mapping not injective");
    }
    scratch.slot_to_core[static_cast<std::size_t>(slot)] = core;
  }

  Evaluation eval;
  const std::size_t num_commodities = commodities_.size();

  // ---- Fig 5 steps 2-6: route commodities in decreasing value order. ----
  const int num_edges = topology_.switch_graph().num_edges();
  if (scratch.loads.num_edges() != num_edges) {
    scratch.loads = route::LoadMap(num_edges);
  } else {
    scratch.loads.clear();
  }
  scratch.route_refs.resize(num_commodities);

  if (static_routing_) {
    for (std::size_t k = 0; k < num_commodities; ++k) {
      const auto& commodity = commodities_[k];
      const int src_slot =
          core_to_slot[static_cast<std::size_t>(commodity.src_core)];
      const int dst_slot =
          core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
      const route::RouteSet& routes = static_route(src_slot, dst_slot);
      scratch.loads.add_route(routes, commodity.value_mbps);
      scratch.route_refs[k] = &routes;
    }
  } else {
    scratch.routes.resize(num_commodities);
    for (std::size_t k = 0; k < num_commodities; ++k) {
      const auto& commodity = commodities_[k];
      const int src_slot =
          core_to_slot[static_cast<std::size_t>(commodity.src_core)];
      const int dst_slot =
          core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
      scratch.routes[k] = engine_.route(src_slot, dst_slot,
                                        commodity.value_mbps, scratch.loads);
      scratch.loads.add_route(scratch.routes[k], commodity.value_mbps);
      scratch.route_refs[k] = &scratch.routes[k];
    }
    if (adaptive_routing_) {
      for (int pass = 0; pass < config_.reroute_passes; ++pass) {
        for (std::size_t k = 0; k < num_commodities; ++k) {
          const auto& commodity = commodities_[k];
          const int src_slot =
              core_to_slot[static_cast<std::size_t>(commodity.src_core)];
          const int dst_slot =
              core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
          scratch.loads.add_route(scratch.routes[k], -commodity.value_mbps);
          scratch.routes[k] = engine_.route(src_slot, dst_slot,
                                            commodity.value_mbps,
                                            scratch.loads);
          scratch.loads.add_route(scratch.routes[k], commodity.value_mbps);
        }
      }
    }
  }

  double weighted_hops = 0.0;
  for (std::size_t k = 0; k < num_commodities; ++k) {
    weighted_hops += commodities_[k].value_mbps *
                     scratch.route_refs[k]->weighted_switch_hops();
  }
  eval.avg_switch_hops =
      total_value_ > 0.0 ? weighted_hops / total_value_ : 0.0;
  eval.max_link_load_mbps = scratch.loads.max_load();
  eval.bandwidth_feasible =
      eval.max_link_load_mbps <= config_.link_bandwidth_mbps + 1e-9;

  // ---- Fig 5 step 7: floorplan and area/power estimation. ----
  scratch.core_shapes.assign(static_cast<std::size_t>(num_slots),
                             std::nullopt);
  for (int slot = 0; slot < num_slots; ++slot) {
    const int core = scratch.slot_to_core[static_cast<std::size_t>(slot)];
    if (core >= 0) {
      scratch.core_shapes[static_cast<std::size_t>(slot)] =
          app_.core(core).shape;
    }
  }
  eval.switch_area_mm2 = switch_table_.total_area_mm2();
  eval.static_power_mw = switch_table_.total_static_power_mw();

  eval.floorplan = planner_.place(placement_, scratch.core_shapes,
                                  switch_shapes_);
  eval.design_area_mm2 = eval.floorplan.area_mm2();
  eval.area_feasible =
      eval.design_area_mm2 <= config_.max_area_mm2 + 1e-9 &&
      eval.floorplan.aspect() <= config_.max_design_aspect + 1e-9;

  // Index the placed block centres so every wire length in the power loop is
  // an O(1) lookup (Floorplan::center_distance_mm scans all blocks).
  scratch.core_cx.assign(static_cast<std::size_t>(num_slots), 0.0);
  scratch.core_cy.assign(static_cast<std::size_t>(num_slots), 0.0);
  scratch.switch_cx.assign(static_cast<std::size_t>(num_switches), 0.0);
  scratch.switch_cy.assign(static_cast<std::size_t>(num_switches), 0.0);
  for (const auto& block : eval.floorplan.blocks()) {
    if (block.kind == fplan::PlacedBlock::Kind::kCore) {
      scratch.core_cx[static_cast<std::size_t>(block.index)] = block.cx();
      scratch.core_cy[static_cast<std::size_t>(block.index)] = block.cy();
    } else {
      scratch.switch_cx[static_cast<std::size_t>(block.index)] = block.cx();
      scratch.switch_cy[static_cast<std::size_t>(block.index)] = block.cy();
    }
  }
  const auto manhattan = [](double ax, double ay, double bx, double by) {
    return std::abs(ax - bx) + std::abs(ay - by);
  };

  // Power and latency: identical arithmetic to the from-scratch evaluator,
  // with the library lookups and block scans replaced by the resolved
  // tables above.
  const auto& g = topology_.switch_graph();
  const double link_e = config_.tech.link_energy_pj_per_bit_mm;
  const double wire_ps_per_mm = config_.tech.link_delay_ps_per_mm;
  const double cycle_ps = config_.tech.clock_period_ps;
  double power_mw = 0.0;
  double weighted_latency_ps = 0.0;
  for (std::size_t k = 0; k < num_commodities; ++k) {
    const auto& commodity = commodities_[k];
    const int src_slot =
        core_to_slot[static_cast<std::size_t>(commodity.src_core)];
    const int dst_slot =
        core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
    const graph::NodeId ingress = topology_.ingress_switch(src_slot);
    const graph::NodeId egress = topology_.egress_switch(dst_slot);
    double energy_pj = 0.0;   // fraction-weighted energy per bit
    double latency_ps = 0.0;  // fraction-weighted head latency
    for (const auto& wp : scratch.route_refs[k]->paths) {
      double path_pj = 0.0;
      double wire_mm = 0.0;
      for (graph::NodeId sw : wp.path.nodes) {
        path_pj += switch_table_.energy_pj_per_bit(sw);
      }
      for (graph::EdgeId e : wp.path.edges) {
        const auto& edge = g.edge(e);
        wire_mm += manhattan(
            scratch.switch_cx[static_cast<std::size_t>(edge.src)],
            scratch.switch_cy[static_cast<std::size_t>(edge.src)],
            scratch.switch_cx[static_cast<std::size_t>(edge.dst)],
            scratch.switch_cy[static_cast<std::size_t>(edge.dst)]);
      }
      wire_mm += manhattan(
          scratch.core_cx[static_cast<std::size_t>(src_slot)],
          scratch.core_cy[static_cast<std::size_t>(src_slot)],
          scratch.switch_cx[static_cast<std::size_t>(ingress)],
          scratch.switch_cy[static_cast<std::size_t>(ingress)]);
      wire_mm += manhattan(
          scratch.core_cx[static_cast<std::size_t>(dst_slot)],
          scratch.core_cy[static_cast<std::size_t>(dst_slot)],
          scratch.switch_cx[static_cast<std::size_t>(egress)],
          scratch.switch_cy[static_cast<std::size_t>(egress)]);
      path_pj += link_e * wire_mm;
      energy_pj += wp.fraction * path_pj;
      // One pipeline cycle per switch plus repeated-wire delay.
      latency_ps += wp.fraction *
                    (static_cast<double>(wp.path.nodes.size()) * cycle_ps +
                     wire_mm * wire_ps_per_mm);
    }
    // MB/s * pJ/bit -> mW (1e6 * 8 * 1e-12 * 1e3).
    power_mw += commodity.value_mbps * 8e-3 * energy_pj;
    weighted_latency_ps += commodity.value_mbps * latency_ps;
  }
  eval.dynamic_power_mw = power_mw;
  eval.design_power_mw = eval.dynamic_power_mw + eval.static_power_mw;
  eval.avg_path_latency_ns =
      total_value_ > 0.0 ? weighted_latency_ps / total_value_ / 1000.0 : 0.0;

  // ---- Fig 5 step 8: objective cost. ----
  switch (config_.objective) {
    case Objective::kMinDelay:
      eval.cost = eval.avg_switch_hops;
      break;
    case Objective::kMinArea:
      eval.cost = eval.design_area_mm2;
      break;
    case Objective::kMinPower:
      eval.cost = eval.design_power_mw;
      break;
    case Objective::kWeighted: {
      const auto& w = config_.weights;
      eval.cost = w.delay * eval.avg_switch_hops / w.ref_hops +
                  w.area * eval.design_area_mm2 / w.ref_area_mm2 +
                  w.power * eval.design_power_mw / w.ref_power_mw;
      break;
    }
  }

  if (materialize) {
    eval.link_loads = scratch.loads.values();
    eval.routes.reserve(num_commodities);
    for (std::size_t k = 0; k < num_commodities; ++k) {
      eval.routes.push_back(*scratch.route_refs[k]);
    }
  }
  return eval;
}

bool EvalContext::supports_pruning() const {
  // Only the pure delay objective is dominated by the hop bound; collecting
  // explored mappings requires the full area/power of every candidate.
  return config_.objective == Objective::kMinDelay &&
         !config_.collect_explored;
}

double EvalContext::hop_cost_lower_bound(
    const std::vector<int>& core_to_slot) const {
  double weighted = 0.0;
  for (const auto& commodity : commodities_) {
    const int src_slot =
        core_to_slot[static_cast<std::size_t>(commodity.src_core)];
    const int dst_slot =
        core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
    weighted += commodity.value_mbps *
                static_cast<double>(
                    topology_.min_switch_hops(src_slot, dst_slot));
  }
  return total_value_ > 0.0 ? weighted / total_value_ : 0.0;
}

bool EvalContext::prunable(const std::vector<int>& core_to_slot,
                           const Evaluation& incumbent) const {
  // Sound only against a feasible incumbent: better_than() ranks any
  // feasible candidate above an infeasible incumbent regardless of cost, and
  // the hop bound says nothing about feasibility.
  if (!supports_pruning() || !incumbent.feasible()) return false;
  const double bound = hop_cost_lower_bound(core_to_slot);
  // For the single-minimal-path routing functions (DO, MP) an evaluated
  // candidate whose routes are all minimal reproduces the bound's arithmetic
  // exactly, so `bound >= cost` can never prune a candidate that would have
  // ranked strictly better — ties included. The split functions accumulate
  // path fractions whose sum can differ from 1 by an ulp, so they keep a
  // safety margin and only prune strictly dominated candidates.
  const bool exact_bound =
      config_.routing == route::RoutingKind::kDimensionOrdered ||
      config_.routing == route::RoutingKind::kMinPath;
  const double margin =
      exact_bound ? 0.0 : 1e-9 * std::max(1.0, std::abs(incumbent.cost));
  return bound >= incumbent.cost + margin;
}

}  // namespace sunmap::mapping
