#include "mapping/eval_context.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>

namespace sunmap::mapping {

namespace {

std::atomic<std::uint64_t> g_contexts_built{0};
std::atomic<std::uint64_t> g_metrics_hits{0};
std::atomic<std::uint64_t> g_metrics_misses{0};
std::atomic<std::uint64_t> g_floorplan_hits{0};
std::atomic<std::uint64_t> g_floorplan_misses{0};

/// True when two configs produce identical route sets (and hence identical
/// evaluation metrics) for every mapping, i.e. the metrics cache carries
/// over. Objective, weights, area cap, and the bandwidth *threshold* are
/// deliberately absent: they only enter the cost/feasibility fields, which
/// are re-derived per config. The bandwidth matters for routing only under
/// split-across-all-paths, where it caps per-chunk spreading.
bool same_evaluation_class(const MapperConfig& a, const MapperConfig& b) {
  if (a.routing != b.routing) return false;
  if (a.split_chunks != b.split_chunks) return false;
  if (a.reroute_passes != b.reroute_passes) return false;
  if (a.routing == route::RoutingKind::kSplitAll &&
      a.link_bandwidth_mbps != b.link_bandwidth_mbps) {
    return false;
  }
  return true;
}

}  // namespace

std::uint64_t EvalContext::contexts_built() {
  return g_contexts_built.load(std::memory_order_relaxed);
}

EvalContext::CacheStats EvalContext::cache_stats() {
  CacheStats stats;
  stats.metrics_hits = g_metrics_hits.load(std::memory_order_relaxed);
  stats.metrics_misses = g_metrics_misses.load(std::memory_order_relaxed);
  stats.floorplan_hits = g_floorplan_hits.load(std::memory_order_relaxed);
  stats.floorplan_misses = g_floorplan_misses.load(std::memory_order_relaxed);
  return stats;
}

EvalContext::EvalContext(const CoreGraph& app, const topo::Topology& topology,
                         const MapperConfig& config,
                         const model::AreaPowerLibrary& library)
    : app_(app),
      topology_(topology),
      commodities_(commodities_by_value(app)),
      placement_(topology.relative_placement()) {
  // Accumulated in commodity order, matching the summation order of the
  // from-scratch evaluator.
  for (const auto& commodity : commodities_) {
    total_value_ += commodity.value_mbps;
  }

  // Group cores by bit-identical floorplan shapes: mappings that only
  // permute same-shaped cores yield the same floorplan, so the floorplan
  // cache keys on the per-slot shape class rather than the core identity.
  core_shape_class_.reserve(static_cast<std::size_t>(app.num_cores()));
  std::vector<const fplan::BlockShape*> class_shapes;
  for (int core = 0; core < app.num_cores(); ++core) {
    const auto& shape = app.core(core).shape;
    std::uint16_t cls = 0;
    for (; cls < class_shapes.size(); ++cls) {
      if (*class_shapes[cls] == shape) break;
    }
    if (cls == class_shapes.size()) class_shapes.push_back(&shape);
    core_shape_class_.push_back(cls);
  }

  g_contexts_built.fetch_add(1, std::memory_order_relaxed);
  bind(config, library, /*first_bind=*/true);
}

void EvalContext::rebind(const MapperConfig& config,
                         const model::AreaPowerLibrary& library) {
  bind(config, library, /*first_bind=*/false);
}

void EvalContext::bind(const MapperConfig& config,
                       const model::AreaPowerLibrary& library,
                       bool first_bind) {
  const bool tech_changed = first_bind || !(config_.tech == config.tech);
  const bool floorplan_changed =
      tech_changed || !(config_.floorplan == config.floorplan);
  const bool evaluation_class_changed =
      floorplan_changed || !same_evaluation_class(config_, config);

  if (tech_changed) {
    // Resolve the area/power library once per switch instead of per lookup
    // in the evaluator's inner loops, and pre-sum the mapping-invariant
    // totals.
    std::vector<std::pair<int, int>> switch_ports;
    switch_ports.reserve(static_cast<std::size_t>(topology_.num_switches()));
    for (graph::NodeId sw = 0; sw < topology_.num_switches(); ++sw) {
      switch_ports.emplace_back(topology_.switch_in_ports(sw),
                                topology_.switch_out_ports(sw));
    }
    switch_table_ = model::ResolvedSwitchTable(library, switch_ports);

    switch_shapes_.clear();
    switch_shapes_.reserve(static_cast<std::size_t>(topology_.num_switches()));
    for (graph::NodeId sw = 0; sw < topology_.num_switches(); ++sw) {
      auto shape =
          fplan::BlockShape::soft_block(switch_table_.entry(sw).area_mm2);
      shape.min_aspect = 0.5;
      shape.max_aspect = 2.0;
      switch_shapes_.push_back(shape);
    }
  }
  if (floorplan_changed) {
    planner_ = fplan::Floorplanner(config.floorplan);
    std::unique_lock<std::shared_mutex> lock(cache_mutex_);
    floorplan_cache_.clear();
  }
  if (evaluation_class_changed) {
    std::unique_lock<std::shared_mutex> lock(cache_mutex_);
    metrics_cache_.clear();
  }

  config_ = config;
  engine_.emplace(topology_, config_.routing, config_.split_chunks,
                  config_.link_bandwidth_mbps);

  static_routing_ = config_.routing == route::RoutingKind::kDimensionOrdered ||
                    config_.routing == route::RoutingKind::kSplitMin;
  adaptive_routing_ = config_.routing == route::RoutingKind::kMinPath ||
                      config_.routing == route::RoutingKind::kSplitAll;

  if (config_.routing == route::RoutingKind::kMinPath) {
    // Topology-only: built on the first minimum-path bind, reused forever.
    if (!quadrant_table_) quadrant_table_.emplace(topology_);
    engine_->attach_quadrant_table(&*quadrant_table_);
  }

  static_routes_ = nullptr;
  if (config_.routing == route::RoutingKind::kDimensionOrdered) {
    if (!static_routes_do_) {
      static_routes_do_.emplace();
      build_static_routes(*static_routes_do_);
    }
    static_routes_ = &*static_routes_do_;
  } else if (config_.routing == route::RoutingKind::kSplitMin) {
    if (!static_routes_sm_) {
      static_routes_sm_.emplace();
      build_static_routes(*static_routes_sm_);
    }
    static_routes_ = &*static_routes_sm_;
  }
}

void EvalContext::build_static_routes(
    std::vector<route::RouteSet>& table) const {
  // Dimension-ordered and split-across-minimum-paths routes depend only on
  // the slot pair, never on link loads, so every candidate mapping draws its
  // routes from this table. This is what makes re-routing after a pairwise
  // swap a delta operation: only the commodities touching the two swapped
  // slots change which table entry they reference.
  const int num_slots = topology_.num_slots();
  table.resize(static_cast<std::size_t>(num_slots) *
               static_cast<std::size_t>(num_slots));
  const route::LoadMap no_loads(topology_.switch_graph().num_edges());
  for (int src = 0; src < num_slots; ++src) {
    for (int dst = 0; dst < num_slots; ++dst) {
      if (src == dst) continue;
      table[static_cast<std::size_t>(src) *
                static_cast<std::size_t>(num_slots) +
            static_cast<std::size_t>(dst)] =
          engine_->route(src, dst, /*demand=*/0.0, no_loads);
    }
  }
}

void EvalContext::apply_config_dependent(Evaluation& eval,
                                         double floorplan_aspect) const {
  eval.bandwidth_feasible =
      eval.max_link_load_mbps <= config_.link_bandwidth_mbps + 1e-9;
  eval.area_feasible =
      eval.design_area_mm2 <= config_.max_area_mm2 + 1e-9 &&
      floorplan_aspect <= config_.max_design_aspect + 1e-9;

  // ---- Fig 5 step 8: objective cost. ----
  switch (config_.objective) {
    case Objective::kMinDelay:
      eval.cost = eval.avg_switch_hops;
      break;
    case Objective::kMinArea:
      eval.cost = eval.design_area_mm2;
      break;
    case Objective::kMinPower:
      eval.cost = eval.design_power_mw;
      break;
    case Objective::kWeighted: {
      const auto& w = config_.weights;
      eval.cost = w.delay * eval.avg_switch_hops / w.ref_hops +
                  w.area * eval.design_area_mm2 / w.ref_area_mm2 +
                  w.power * eval.design_power_mw / w.ref_power_mw;
      break;
    }
  }
}

Evaluation EvalContext::evaluate(const std::vector<int>& core_to_slot,
                                 EvalScratch& scratch,
                                 bool materialize) const {
  const int num_cores = app_.num_cores();
  const int num_slots = topology_.num_slots();
  const int num_switches = topology_.num_switches();
  if (static_cast<int>(core_to_slot.size()) != num_cores) {
    throw std::invalid_argument("EvalContext::evaluate: mapping size mismatch");
  }
  scratch.slot_to_core.assign(static_cast<std::size_t>(num_slots), -1);
  for (int core = 0; core < num_cores; ++core) {
    const int slot = core_to_slot[static_cast<std::size_t>(core)];
    if (slot < 0 || slot >= num_slots) {
      throw std::invalid_argument("EvalContext::evaluate: slot out of range");
    }
    if (scratch.slot_to_core[static_cast<std::size_t>(slot)] != -1) {
      throw std::invalid_argument("EvalContext::evaluate: mapping not injective");
    }
    scratch.slot_to_core[static_cast<std::size_t>(slot)] = core;
  }

  // Metrics-cache fast path: the search loops re-visit mappings (across
  // passes, and across the design points of a sweep that share the
  // evaluation class). The cached metrics are config-independent; only the
  // feasibility flags and cost are re-derived below, with the same
  // arithmetic as a fresh evaluation — so hits are bit-identical to misses.
  if (!materialize) {
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    const auto it = metrics_cache_.find(core_to_slot);
    if (it != metrics_cache_.end()) {
      g_metrics_hits.fetch_add(1, std::memory_order_relaxed);
      Evaluation eval = it->second.metrics;
      apply_config_dependent(eval, it->second.floorplan_aspect);
      return eval;
    }
    g_metrics_misses.fetch_add(1, std::memory_order_relaxed);
  }

  Evaluation eval;
  const std::size_t num_commodities = commodities_.size();

  // ---- Fig 5 steps 2-6: route commodities in decreasing value order. ----
  const int num_edges = topology_.switch_graph().num_edges();
  if (scratch.loads.num_edges() != num_edges) {
    scratch.loads = route::LoadMap(num_edges);
  } else {
    scratch.loads.clear();
  }
  scratch.route_refs.resize(num_commodities);

  if (static_routing_) {
    for (std::size_t k = 0; k < num_commodities; ++k) {
      const auto& commodity = commodities_[k];
      const int src_slot =
          core_to_slot[static_cast<std::size_t>(commodity.src_core)];
      const int dst_slot =
          core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
      const route::RouteSet& routes = static_route(src_slot, dst_slot);
      scratch.loads.add_route(routes, commodity.value_mbps);
      scratch.route_refs[k] = &routes;
    }
  } else {
    scratch.routes.resize(num_commodities);
    for (std::size_t k = 0; k < num_commodities; ++k) {
      const auto& commodity = commodities_[k];
      const int src_slot =
          core_to_slot[static_cast<std::size_t>(commodity.src_core)];
      const int dst_slot =
          core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
      scratch.routes[k] = engine_->route(src_slot, dst_slot,
                                         commodity.value_mbps, scratch.loads);
      scratch.loads.add_route(scratch.routes[k], commodity.value_mbps);
      scratch.route_refs[k] = &scratch.routes[k];
    }
    if (adaptive_routing_) {
      for (int pass = 0; pass < config_.reroute_passes; ++pass) {
        for (std::size_t k = 0; k < num_commodities; ++k) {
          const auto& commodity = commodities_[k];
          const int src_slot =
              core_to_slot[static_cast<std::size_t>(commodity.src_core)];
          const int dst_slot =
              core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
          scratch.loads.add_route(scratch.routes[k], -commodity.value_mbps);
          scratch.routes[k] = engine_->route(src_slot, dst_slot,
                                             commodity.value_mbps,
                                             scratch.loads);
          scratch.loads.add_route(scratch.routes[k], commodity.value_mbps);
        }
      }
    }
  }

  double weighted_hops = 0.0;
  for (std::size_t k = 0; k < num_commodities; ++k) {
    weighted_hops += commodities_[k].value_mbps *
                     scratch.route_refs[k]->weighted_switch_hops();
  }
  eval.avg_switch_hops =
      total_value_ > 0.0 ? weighted_hops / total_value_ : 0.0;
  eval.max_link_load_mbps = scratch.loads.max_load();

  // ---- Fig 5 step 7: floorplan and area/power estimation. ----
  eval.switch_area_mm2 = switch_table_.total_area_mm2();
  eval.static_power_mw = switch_table_.total_static_power_mw();

  // Floorplan cache: the placement depends only on which shapes occupy
  // which slots. place() is deterministic, so a hit reproduces the computed
  // floorplan bit-for-bit; and because the key ignores routing, objective,
  // and constraints, the cache carries floorplans across every design point
  // of a sweep that shares floorplan options and technology.
  scratch.floor_key.assign(static_cast<std::size_t>(num_slots), 0);
  for (int slot = 0; slot < num_slots; ++slot) {
    const int core = scratch.slot_to_core[static_cast<std::size_t>(slot)];
    if (core >= 0) {
      scratch.floor_key[static_cast<std::size_t>(slot)] =
          static_cast<std::uint16_t>(
              core_shape_class_[static_cast<std::size_t>(core)] + 1);
    }
  }
  fplan::Floorplan floorplan;
  bool floorplan_cached = false;
  {
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    const auto it = floorplan_cache_.find(scratch.floor_key);
    if (it != floorplan_cache_.end()) {
      g_floorplan_hits.fetch_add(1, std::memory_order_relaxed);
      floorplan = it->second;
      floorplan_cached = true;
    } else {
      g_floorplan_misses.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!floorplan_cached) {
    scratch.core_shapes.assign(static_cast<std::size_t>(num_slots),
                               std::nullopt);
    for (int slot = 0; slot < num_slots; ++slot) {
      const int core = scratch.slot_to_core[static_cast<std::size_t>(slot)];
      if (core >= 0) {
        scratch.core_shapes[static_cast<std::size_t>(slot)] =
            app_.core(core).shape;
      }
    }
    floorplan = planner_.place(placement_, scratch.core_shapes,
                               switch_shapes_);
    std::unique_lock<std::shared_mutex> lock(cache_mutex_);
    if (floorplan_cache_.size() < kFloorplanCacheCap) {
      floorplan_cache_.emplace(scratch.floor_key, floorplan);
    }
  }
  eval.design_area_mm2 = floorplan.area_mm2();
  const double floorplan_aspect = floorplan.aspect();

  // Index the placed block centres so every wire length in the power loop is
  // an O(1) lookup (Floorplan::center_distance_mm scans all blocks).
  scratch.core_cx.assign(static_cast<std::size_t>(num_slots), 0.0);
  scratch.core_cy.assign(static_cast<std::size_t>(num_slots), 0.0);
  scratch.switch_cx.assign(static_cast<std::size_t>(num_switches), 0.0);
  scratch.switch_cy.assign(static_cast<std::size_t>(num_switches), 0.0);
  for (const auto& block : floorplan.blocks()) {
    if (block.kind == fplan::PlacedBlock::Kind::kCore) {
      scratch.core_cx[static_cast<std::size_t>(block.index)] = block.cx();
      scratch.core_cy[static_cast<std::size_t>(block.index)] = block.cy();
    } else {
      scratch.switch_cx[static_cast<std::size_t>(block.index)] = block.cx();
      scratch.switch_cy[static_cast<std::size_t>(block.index)] = block.cy();
    }
  }
  const auto manhattan = [](double ax, double ay, double bx, double by) {
    return std::abs(ax - bx) + std::abs(ay - by);
  };

  // Power and latency: identical arithmetic to the from-scratch evaluator,
  // with the library lookups and block scans replaced by the resolved
  // tables above.
  const auto& g = topology_.switch_graph();
  const double link_e = config_.tech.link_energy_pj_per_bit_mm;
  const double wire_ps_per_mm = config_.tech.link_delay_ps_per_mm;
  const double cycle_ps = config_.tech.clock_period_ps;
  double power_mw = 0.0;
  double weighted_latency_ps = 0.0;
  for (std::size_t k = 0; k < num_commodities; ++k) {
    const auto& commodity = commodities_[k];
    const int src_slot =
        core_to_slot[static_cast<std::size_t>(commodity.src_core)];
    const int dst_slot =
        core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
    const graph::NodeId ingress = topology_.ingress_switch(src_slot);
    const graph::NodeId egress = topology_.egress_switch(dst_slot);
    double energy_pj = 0.0;   // fraction-weighted energy per bit
    double latency_ps = 0.0;  // fraction-weighted head latency
    for (const auto& wp : scratch.route_refs[k]->paths) {
      double path_pj = 0.0;
      double wire_mm = 0.0;
      for (graph::NodeId sw : wp.path.nodes) {
        path_pj += switch_table_.energy_pj_per_bit(sw);
      }
      for (graph::EdgeId e : wp.path.edges) {
        const auto& edge = g.edge(e);
        wire_mm += manhattan(
            scratch.switch_cx[static_cast<std::size_t>(edge.src)],
            scratch.switch_cy[static_cast<std::size_t>(edge.src)],
            scratch.switch_cx[static_cast<std::size_t>(edge.dst)],
            scratch.switch_cy[static_cast<std::size_t>(edge.dst)]);
      }
      wire_mm += manhattan(
          scratch.core_cx[static_cast<std::size_t>(src_slot)],
          scratch.core_cy[static_cast<std::size_t>(src_slot)],
          scratch.switch_cx[static_cast<std::size_t>(ingress)],
          scratch.switch_cy[static_cast<std::size_t>(ingress)]);
      wire_mm += manhattan(
          scratch.core_cx[static_cast<std::size_t>(dst_slot)],
          scratch.core_cy[static_cast<std::size_t>(dst_slot)],
          scratch.switch_cx[static_cast<std::size_t>(egress)],
          scratch.switch_cy[static_cast<std::size_t>(egress)]);
      path_pj += link_e * wire_mm;
      energy_pj += wp.fraction * path_pj;
      // One pipeline cycle per switch plus repeated-wire delay.
      latency_ps += wp.fraction *
                    (static_cast<double>(wp.path.nodes.size()) * cycle_ps +
                     wire_mm * wire_ps_per_mm);
    }
    // MB/s * pJ/bit -> mW (1e6 * 8 * 1e-12 * 1e3).
    power_mw += commodity.value_mbps * 8e-3 * energy_pj;
    weighted_latency_ps += commodity.value_mbps * latency_ps;
  }
  eval.dynamic_power_mw = power_mw;
  eval.design_power_mw = eval.dynamic_power_mw + eval.static_power_mw;
  eval.avg_path_latency_ns =
      total_value_ > 0.0 ? weighted_latency_ps / total_value_ / 1000.0 : 0.0;

  apply_config_dependent(eval, floorplan_aspect);

  // Cache the metrics while `eval` still carries no floorplan or routes:
  // entries stay scalar-sized, and hits re-derive the flags/cost from the
  // stored aspect with the same arithmetic as above.
  {
    std::unique_lock<std::shared_mutex> lock(cache_mutex_);
    if (metrics_cache_.size() < kMetricsCacheCap) {
      metrics_cache_.emplace(core_to_slot,
                             CachedMetrics{eval, floorplan_aspect});
    }
  }

  eval.floorplan = std::move(floorplan);
  if (materialize) {
    eval.link_loads = scratch.loads.values();
    eval.routes.reserve(num_commodities);
    for (std::size_t k = 0; k < num_commodities; ++k) {
      eval.routes.push_back(*scratch.route_refs[k]);
    }
  }
  return eval;
}

bool EvalContext::supports_pruning() const {
  // Only the pure delay objective is dominated by the hop bound; collecting
  // explored mappings requires the full area/power of every candidate.
  return config_.objective == Objective::kMinDelay &&
         !config_.collect_explored;
}

double EvalContext::hop_cost_lower_bound(
    const std::vector<int>& core_to_slot) const {
  double weighted = 0.0;
  for (const auto& commodity : commodities_) {
    const int src_slot =
        core_to_slot[static_cast<std::size_t>(commodity.src_core)];
    const int dst_slot =
        core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
    weighted += commodity.value_mbps *
                static_cast<double>(
                    topology_.min_switch_hops(src_slot, dst_slot));
  }
  return total_value_ > 0.0 ? weighted / total_value_ : 0.0;
}

bool EvalContext::prunable(const std::vector<int>& core_to_slot,
                           const Evaluation& incumbent) const {
  // Sound only against a feasible incumbent: better_than() ranks any
  // feasible candidate above an infeasible incumbent regardless of cost, and
  // the hop bound says nothing about feasibility.
  if (!supports_pruning() || !incumbent.feasible()) return false;
  const double bound = hop_cost_lower_bound(core_to_slot);
  // For the single-minimal-path routing functions (DO, MP) an evaluated
  // candidate whose routes are all minimal reproduces the bound's arithmetic
  // exactly, so `bound >= cost` can never prune a candidate that would have
  // ranked strictly better — ties included. The split functions accumulate
  // path fractions whose sum can differ from 1 by an ulp, so they keep a
  // safety margin and only prune strictly dominated candidates.
  const bool exact_bound =
      config_.routing == route::RoutingKind::kDimensionOrdered ||
      config_.routing == route::RoutingKind::kMinPath;
  const double margin =
      exact_bound ? 0.0 : 1e-9 * std::max(1.0, std::abs(incumbent.cost));
  return bound >= incumbent.cost + margin;
}

}  // namespace sunmap::mapping
