#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "fault/fault.h"
#include "fplan/floorplanner.h"
#include "mapping/core_graph.h"
#include "model/library.h"
#include "route/routing.h"
#include "topo/topology.h"

namespace sunmap::mapping {

/// Design objectives SUNMAP explores (§1: "minimizing average communication
/// delay, power consumption, area"). kWeighted combines all three with the
/// weights in MapperConfig::weights — an extension for trading objectives
/// off inside a single search rather than re-running per objective.
enum class Objective { kMinDelay, kMinArea, kMinPower, kWeighted };

const char* to_string(Objective objective);

/// Weights of the combined objective. Each term is normalised by a
/// reference scale so the weights are dimensionless: cost =
/// delay*hops/ref_hops + area*mm2/ref_area + power*mW/ref_power.
struct ObjectiveWeights {
  double delay = 1.0;
  double area = 1.0;
  double power = 1.0;
  double ref_hops = 3.0;
  double ref_area_mm2 = 60.0;
  double ref_power_mw = 400.0;
};

/// Which mapping-search strategy Mapper runs after the greedy initial
/// placement: the paper's pairwise-swap pass (hill climbing), a
/// simulated-annealing walk, or the multi-restart annealer (N independent
/// seeded chains, best-of-restarts kept). Each kind is implemented by a
/// mapping::SearchStrategy (search_strategy.h); this enum is the
/// configuration-level selector the CLI and sweep axes expose.
enum class SearchKind { kGreedySwaps, kAnnealing, kRestartAnnealing };

const char* to_string(SearchKind kind);

/// Traffic model the simulator-backed finalist tier replays a mapped
/// design's commodities under: the plain application trace (Bernoulli at
/// each flow's rate) or the same flows modulated by BurstyTraffic's on/off
/// bursts (same long-run offered load concentrated into contention-heavy
/// phases).
enum class SimTraffic { kTrace, kBursty };

const char* to_string(SimTraffic traffic);

/// Configuration of one mapping run (phase 1 of the design flow).
struct MapperConfig {
  route::RoutingKind routing = route::RoutingKind::kMinPath;
  Objective objective = Objective::kMinDelay;

  /// Maximum traffic any NoC link may carry, MB/s ("Capacity of a link in a
  /// NoC is technology and implementation dependent and is assumed as an
  /// input"; the experiments use 500 MB/s).
  double link_bandwidth_mbps = 500.0;

  /// Area constraint: maximum floorplanned design area (mm^2).
  double max_area_mm2 = std::numeric_limits<double>::infinity();
  /// Maximum allowed design aspect ratio (max(W/H, H/W)).
  double max_design_aspect = 2.5;

  /// Weights used when objective == Objective::kWeighted.
  ObjectiveWeights weights;

  /// How the mapping space is searched after the greedy initial placement.
  SearchKind search = SearchKind::kGreedySwaps;

  /// Hill-climbing passes over all pairwise slot swaps (Fig 5 steps 9-10;
  /// one pass reproduces the paper, more passes strictly dominate).
  int swap_passes = 2;

  /// Simulated-annealing parameters (search == kAnnealing or
  /// kRestartAnnealing): random pairwise swaps accepted with the Metropolis
  /// criterion under geometric cooling. `annealing_iterations` is the TOTAL
  /// iteration budget of the search; the restart annealer divides it across
  /// its restarts so restart counts are comparable at equal cost.
  int annealing_iterations = 2000;
  double annealing_t0 = 0.3;       ///< Initial temperature (relative cost).
  double annealing_cooling = 0.995;
  std::uint64_t annealing_seed = 1;

  /// Independent annealing chains of the restart annealer (search ==
  /// kRestartAnnealing). Chain r is seeded with annealing_seed + r and all
  /// chains start from the greedy initial mapping; the best-of-restarts
  /// result (ties to the lowest restart index) is kept. Chains run on
  /// num_threads workers and are committed in seed order, so any thread
  /// count returns the identical result.
  int annealing_restarts = 4;

  /// Temperature re-heats per annealing chain: the chain is split into
  /// (annealing_reheats + 1) equal segments and the temperature is reset to
  /// annealing_t0 x the current energy at each segment start, letting a
  /// cold chain escape the local minimum it converged into. 0 (the default)
  /// reproduces the plain geometric schedule.
  int annealing_reheats = 0;

  /// Probability that an annealing move is a 2-opt chain — a 3-cycle of
  /// slots applied as the batched move {(a,b), (b,c)} through one
  /// DeltaTxn::begin_moves transaction — instead of a plain pairwise swap.
  /// Chain moves reach mappings two swaps away in one Metropolis decision,
  /// which plain-swap walks only reach through an uphill intermediate. 0
  /// (the default) draws no extra random numbers, so default-configured
  /// annealing walks are bit-identical to the pre-chain implementation.
  double annealing_chain_move_prob = 0.0;

  /// Master switch for bound-based candidate pruning (the two-phase swap
  /// evaluation). On by default; the pruning admissibility tests flip it
  /// off to obtain the prune-free reference search, which must be
  /// bit-identical.
  bool bound_pruning = true;

  /// Master switch for incremental floorplanning: with it on (the default),
  /// floorplan-cache misses solve through the scratch's persistent
  /// fplan::FloorplanSession — delta updates, and push/pop speculation
  /// frames under the search's DeltaTxn protocol — while off makes every
  /// miss pay a from-scratch Floorplanner::place. Results are bit-identical
  /// either way (the session contract); the off position is the reference
  /// the annealing_incremental bench invariant and the transactional
  /// equivalence tests measure against.
  bool incremental_floorplan = true;

  /// Fault scenarios to evaluate every candidate mapping under, plus how
  /// their degraded costs aggregate into the search objective (fault/fault.h).
  /// The default (empty) keeps evaluation bit-identical to a fault-unaware
  /// run. The spec is topology-independent; each EvalContext materializes it
  /// against its own topology, so one configuration sweeps a whole library.
  fault::FaultSet faults;

  /// Master switch for incremental per-scenario fault re-evaluation: with it
  /// on (the default), each evaluation reads the per-(scenario, ingress
  /// switch) masked-BFS tables the context prebuilt at bind, while off
  /// re-runs the BFS per commodity — the from-scratch reference the
  /// fault_incremental_2x bench invariant measures against. Both paths
  /// extract paths through the same code, so results are bit-identical.
  bool incremental_fault_eval = true;

  /// Master switch for incremental adaptive routing (MP / split-all): with
  /// it on (the default), evaluations solve through the scratch's
  /// persistent route::RoutingSession, which replays the canonical routing
  /// trace and re-runs only the Dijkstras whose inputs could have changed —
  /// and journals displaced routes in push/pop frames under the search's
  /// DeltaTxn protocol. Off makes every evaluation pay the from-scratch
  /// loop. Results are bit-identical either way (the session contract); the
  /// off position is the reference the routing_bit_identical and
  /// routing_incremental_2x bench invariants measure against. The static
  /// kinds (DO / SM) read precomputed route tables and ignore this switch.
  bool incremental_routing = true;

  /// Sub-flows for split-across-all-paths routing.
  int split_chunks = 16;

  /// Rip-up-and-reroute refinement rounds for the load-adaptive routing
  /// functions (MP and SA): after the initial decreasing-order pass each
  /// commodity is removed and re-routed against the traffic that stays,
  /// which approximates the balanced multi-commodity solution much better
  /// than a single sequential pass. 0 reproduces the paper's Fig 5 exactly.
  int reroute_passes = 2;

  /// Record the (area, power) of every evaluated mapping, enabling the
  /// Pareto exploration of Fig 9(b). Collecting disables bound-based swap
  /// pruning (a pruned candidate has no area/power to record).
  bool collect_explored = false;

  /// Worker threads for the greedy-swap neighborhood search. Candidate
  /// swaps are evaluated concurrently in chunks and committed in canonical
  /// order, so any thread count produces results identical to the
  /// sequential search. 1 (the default) runs fully sequential.
  int num_threads = 1;

  /// Simulator-backed finalist tier (consumed by the explorer and the CLI,
  /// not by Mapper::map itself): after the analytically-pruned search, the
  /// flit-level simulator re-scores the top-K feasible candidates per
  /// objective with contention-aware delay. 0 disables the tier.
  int sim_finalists = 0;
  /// Simulation engine for the finalist tier and --sim-validate: the
  /// event-driven engine (default) or the cycle-stepped reference. Both are
  /// bit-identical; the flag exists for A/B checks and perf probes.
  bool sim_use_event_engine = true;
  /// MB/s -> flits/cycle conversion for the simulated application trace
  /// (sim::TraceTraffic's scaling knob).
  double sim_flits_per_cycle_per_gbps = 0.05;
  /// Rank by simulated delay (--sim-rank): after the finalist tier scores
  /// the top-K feasible cells of each objective group, each group is
  /// re-ranked by contention-aware simulated delay and the sim winners are
  /// reported alongside the analytical ones (two-phase rank: analytical
  /// prefilter, simulated re-rank). Purely additive — analytical results
  /// and winners are untouched. Requires sim_finalists >= 1.
  bool sim_rank = false;
  /// PRNG seed of the finalist-tier simulator, decoupled from the mapping
  /// search's seed so the two streams can be varied independently
  /// (--sim-seed). 1 — the default — reproduces the historical behavior
  /// (sim::SimConfig's default seed). Must be >= 1; 0 is reserved as "not
  /// a seed" so a forgotten flag value fails loudly instead of silently
  /// changing every score.
  std::uint64_t sim_seed = 1;
  /// Traffic model the finalist tier simulates (--sim-traffic); see
  /// SimTraffic. Burst shape for kBursty: mean burst length in cycles and
  /// the long-run fraction of the timeline covered by bursts (in-burst rate
  /// is scaled by 1/duty so offered load matches the plain trace).
  SimTraffic sim_traffic = SimTraffic::kTrace;
  double sim_burst_len = 50.0;
  double sim_burst_duty = 0.3;

  fplan::Floorplanner::Options floorplan;
  model::TechParams tech = model::TechParams::um100();

  /// Validates the configuration, throwing std::invalid_argument naming the
  /// offending field. The single source of truth for configuration sanity:
  /// Mapper's constructor, the DesignSpaceExplorer, and the CLI all call
  /// this instead of keeping their own ad-hoc checks.
  void validate() const;
};

/// Everything phase 2 needs to compare a mapped topology against the rest —
/// the per-mapping outputs of Fig 5 steps 7-8.
struct Evaluation {
  bool bandwidth_feasible = false;
  bool area_feasible = false;
  [[nodiscard]] bool feasible() const {
    return bandwidth_feasible && area_feasible;
  }

  /// Maximum traffic across any link: the minimum link bandwidth the design
  /// requires (the metric of Fig 9(a)).
  double max_link_load_mbps = 0.0;
  /// Communication-weighted average number of switches traversed (the "avg
  /// hops" of Figs 3(d), 6(a), 7(b)).
  double avg_switch_hops = 0.0;
  /// Communication-weighted average end-to-end path latency in ns, combining
  /// one pipeline cycle per switch with floorplan-extracted wire delays —
  /// the floorplan-aware refinement of the hop metric.
  double avg_path_latency_ns = 0.0;
  /// Floorplanned chip area ("design area").
  double design_area_mm2 = 0.0;
  /// Network power: switches + links, from the bit-energy models ("design
  /// power"); the sum of the dynamic and static components below.
  double design_power_mw = 0.0;
  /// Traffic-dependent switch + link power.
  double dynamic_power_mw = 0.0;
  /// Always-on (leakage + clock) power of all instantiated switches.
  double static_power_mw = 0.0;
  /// Silicon area of the network switches alone.
  double switch_area_mm2 = 0.0;
  /// Objective-function value (lower is better); infeasible mappings rank
  /// by max link overload. With fault scenarios configured this is the
  /// aggregated (worst-case or weighted) degraded cost; without, the plain
  /// fault-free objective value.
  double cost = std::numeric_limits<double>::infinity();

  /// Degraded-mode metrics of one fault scenario, aligned with the
  /// materialized scenario list of the configuration's FaultSet. Degraded
  /// routes are deterministic shortest paths over the surviving subgraph
  /// (regardless of the configured routing function), so the raw metrics
  /// are config-independent within an evaluation class and cache alongside
  /// the fault-free ones; `cost` is re-derived per configuration.
  struct FaultScenarioOutcome {
    /// False when the scenario disconnects a commodity or kills a switch a
    /// mapped core attaches to; the scenario then contributes
    /// infeasible_penalty x the fault-free cost instead of its own metrics.
    bool connected = true;
    double avg_switch_hops = 0.0;  ///< Over the commodities still routable.
    double dynamic_power_mw = 0.0;
    double weight = 1.0;  ///< From the scenario, for kWeighted aggregation.
    double cost = 0.0;    ///< Per-scenario objective value (config-derived).
    /// Max degraded link load; filled on materialized evaluations only.
    double max_link_load_mbps = 0.0;
  };
  /// One entry per fault scenario; empty when the config carries no faults.
  std::vector<FaultScenarioOutcome> fault_outcomes;
  /// Max over the per-scenario costs (0 when no scenarios) — the
  /// robustness column of exploration reports.
  double worst_fault_cost = 0.0;
  /// Scenarios that disconnected at least one commodity.
  int infeasible_fault_scenarios = 0;

  fplan::Floorplan floorplan;
  /// Routes per commodity, aligned with commodities_by_value(app).
  std::vector<route::RouteSet> routes;
  /// Final link loads, indexed by switch-graph EdgeId.
  std::vector<double> link_loads;
};

/// Ranks two evaluations under the mapper's search: feasible before
/// infeasible, then lower cost; among infeasible, lower max load.
bool better_than(const Evaluation& a, const Evaluation& b);

/// Derives the per-scenario costs and the aggregated objective value from an
/// evaluation's raw fault outcomes, overwriting eval.cost (which must hold
/// the fault-free objective value on entry). No-op without outcomes. Shared
/// by Mapper::evaluate and EvalContext so the degraded-cost arithmetic is
/// literally the same code on the reference and incremental paths.
void apply_fault_objective(Evaluation& eval, const MapperConfig& config);

/// Result of mapping one application onto one topology.
struct MappingResult {
  /// map: V -> U of the paper; core_to_slot[i] is the slot of core i.
  std::vector<int> core_to_slot;
  /// Inverse mapping; -1 marks an unused slot.
  std::vector<int> slot_to_core;
  Evaluation eval;
  /// (area mm^2, power mW) of every evaluated mapping when
  /// MapperConfig::collect_explored is set.
  std::vector<std::pair<double, double>> explored_area_power;
  /// Candidate mappings the search considered (pruned + fully evaluated).
  int evaluated_mappings = 0;
  /// Of those, the candidates rejected by the hop-distance cost bound alone,
  /// without paying for routing and floorplanning.
  int pruned_mappings = 0;
};

class EvalContext;
struct EvalScratch;

/// The minimum-path mapping algorithm of Fig 5, generalised over topologies
/// and routing functions: greedy initial placement, commodities routed in
/// decreasing order over quadrant graphs, floorplan-based area/power
/// estimation, bandwidth/area feasibility, and pairwise-swap improvement.
class Mapper {
 public:
  explicit Mapper(MapperConfig config = {});

  /// Runs the full algorithm. Throws std::invalid_argument if the
  /// application has more cores than the topology has slots (the mapping
  /// function requires |V| <= |U|). Builds an EvalContext internally and
  /// reuses it across every candidate evaluation of the search.
  [[nodiscard]] MappingResult map(const CoreGraph& app,
                                  const topo::Topology& topology) const;

  /// The canonical entry point: maps over a caller-built context
  /// (make_context) and a caller-owned scratch that survives across map()
  /// calls. The scratch owns the thread's incremental floorplan and routing
  /// sessions, so a sweep that re-binds one context across many design
  /// points keeps the sessions (and their solved state) alive between
  /// searches — this is the overload DesignSpaceExplorer drives, and every
  /// other map() overload is sugar over it. The scratch must not be shared
  /// between concurrent map() calls.
  [[nodiscard]] MappingResult map(const EvalContext& ctx,
                                  EvalScratch& scratch) const;

  /// Compatibility shim for the pre-session API: constructs a throwaway
  /// scratch per call, so the incremental sessions are rebuilt every time.
  /// Prefer map(ctx, scratch) with a scratch that outlives the call.
  [[deprecated("use map(ctx, scratch) — a throwaway scratch rebuilds the "
               "incremental sessions on every call")]] [[nodiscard]]
  MappingResult map(const EvalContext& ctx) const;

  /// Builds the incremental evaluation engine for one (application,
  /// topology) pair under this mapper's configuration. The returned context
  /// borrows `app` and `topology`; both must outlive it.
  [[nodiscard]] EvalContext make_context(const CoreGraph& app,
                                         const topo::Topology& topology) const;

  /// Evaluates a fixed mapping (Fig 5 steps 2-8 only), from scratch with no
  /// caching. Exposed for tests, Pareto sweeps, and user-supplied
  /// placements; also the reference implementation the cached
  /// EvalContext::evaluate() path is regression-tested against.
  [[nodiscard]] Evaluation evaluate(const CoreGraph& app,
                                    const topo::Topology& topology,
                                    const std::vector<int>& core_to_slot) const;

  [[nodiscard]] const MapperConfig& config() const { return config_; }

  /// The area/power library resolved for config().tech — what make_context
  /// seeds contexts with, and what EvalContext::rebind() needs when
  /// re-binding a context to this mapper's configuration.
  [[nodiscard]] const model::AreaPowerLibrary& library() const {
    return library_;
  }

 private:
  [[nodiscard]] std::vector<int> greedy_initial_mapping(
      const CoreGraph& app, const topo::Topology& topology) const;

  MapperConfig config_;
  model::AreaPowerLibrary library_;
};

}  // namespace sunmap::mapping
