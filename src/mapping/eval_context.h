#pragma once

#include <optional>
#include <vector>

#include "fplan/floorplanner.h"
#include "mapping/mapper.h"
#include "model/library.h"
#include "route/routing.h"
#include "topo/topology.h"

namespace sunmap::mapping {

/// Reusable per-thread buffers for EvalContext::evaluate(), so the mapping
/// search stops allocating in its inner loop. One scratch must not be shared
/// between concurrent evaluations; the parallel neighborhood search gives
/// each worker its own.
struct EvalScratch {
  std::vector<int> slot_to_core;
  route::LoadMap loads{0};
  /// Per-commodity routes computed by the adaptive routing functions; the
  /// deterministic functions point into the context's static route cache
  /// instead.
  std::vector<route::RouteSet> routes;
  /// Per-commodity route reference, aligned with EvalContext::commodities().
  std::vector<const route::RouteSet*> route_refs;
  std::vector<std::optional<fplan::BlockShape>> core_shapes;
  /// Block centres extracted from the candidate floorplan, indexed by SlotId
  /// (cores) and switch NodeId, so the power loop's wire lengths are O(1)
  /// lookups instead of linear scans over the placed blocks.
  std::vector<double> core_cx, core_cy, switch_cx, switch_cy;
};

/// The incremental mapping-evaluation engine: everything about one
/// (application, topology, mapper configuration) triple that is invariant
/// across candidate mappings, precomputed once so that Mapper's search loops
/// evaluate thousands of candidates without redoing it.
///
/// Cached here:
///  * the commodity list sorted by decreasing value (Fig 5 step 2);
///  * the switch area/power library rows resolved per switch, with the
///    mapping-invariant totals (silicon area, static power) pre-summed;
///  * the quadrant-graph admission masks of §4.3 for every slot pair
///    (minimum-path routing only), shared lock-free by search workers;
///  * complete route sets per slot pair for the deterministic routing
///    functions (dimension-ordered, split-across-minimum-paths), whose
///    routes do not depend on link loads — re-routing a commodity after a
///    swap is then a table lookup, which is what makes the swap search's
///    delta-routing cheap;
///  * the topology's relative placement and the floorplanner instance;
///  * a reusable routing engine.
///
/// evaluate() is a drop-in replacement for Mapper::evaluate() and produces
/// bit-identical Evaluations (asserted by the equivalence regression tests);
/// it is const and thread-safe once constructed, given per-thread scratch.
///
/// The context borrows the application and topology; both must outlive it.
class EvalContext {
 public:
  EvalContext(const CoreGraph& app, const topo::Topology& topology,
              const MapperConfig& config,
              const model::AreaPowerLibrary& library);

  EvalContext(const EvalContext&) = delete;
  EvalContext& operator=(const EvalContext&) = delete;

  [[nodiscard]] const CoreGraph& app() const { return app_; }
  [[nodiscard]] const topo::Topology& topology() const { return topology_; }
  [[nodiscard]] const MapperConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<Commodity>& commodities() const {
    return commodities_;
  }

  /// Evaluates one mapping (Fig 5 steps 2-8) using the cached data. With
  /// `materialize` false the returned Evaluation carries every metric and
  /// the floorplan but leaves `routes`/`link_loads` empty — the search
  /// loops compare candidates by metrics only, and skipping the per-copy of
  /// the route sets keeps rejected candidates cheap.
  ///
  /// Throws std::invalid_argument on a malformed mapping, mirroring
  /// Mapper::evaluate().
  [[nodiscard]] Evaluation evaluate(const std::vector<int>& core_to_slot,
                                    EvalScratch& scratch,
                                    bool materialize = true) const;

  /// True when candidate mappings can be pruned by the hop-distance cost
  /// bound: the objective must be pure delay (for any other objective the
  /// bound does not dominate the cost) and the caller must not be collecting
  /// every explored mapping's area/power.
  [[nodiscard]] bool supports_pruning() const;

  /// Lower bound on the mapping's communication-weighted average switch
  /// hops: every commodity needs at least min_switch_hops between its
  /// mapped slots, whatever the routing function does. For minimal routing
  /// functions the bound is exact when every route is minimal, and it is
  /// computed with the same summation order as evaluate(), so comparing it
  /// against an evaluated cost is floating-point safe.
  [[nodiscard]] double hop_cost_lower_bound(
      const std::vector<int>& core_to_slot) const;

  /// Phase 1 of the two-phase evaluation: true when the bound proves the
  /// candidate cannot rank strictly better than the incumbent, so the full
  /// routing + floorplanning evaluation can be skipped without changing the
  /// search result.
  [[nodiscard]] bool prunable(const std::vector<int>& core_to_slot,
                              const Evaluation& incumbent) const;

 private:
  void build_static_routes();
  [[nodiscard]] const route::RouteSet& static_route(int src_slot,
                                                    int dst_slot) const {
    return static_routes_[static_cast<std::size_t>(src_slot) *
                              static_cast<std::size_t>(topology_.num_slots()) +
                          static_cast<std::size_t>(dst_slot)];
  }

  const CoreGraph& app_;
  const topo::Topology& topology_;
  MapperConfig config_;  // by value: the context must not dangle on the mapper

  std::vector<Commodity> commodities_;
  double total_value_ = 0.0;

  model::ResolvedSwitchTable switch_table_;
  std::vector<fplan::BlockShape> switch_shapes_;
  topo::RelativePlacement placement_;
  fplan::Floorplanner planner_;

  route::RoutingEngine engine_;
  std::optional<route::QuadrantTable> quadrant_table_;
  /// Route sets per (src, dst) slot pair for load-independent routing
  /// functions; empty for the adaptive ones.
  std::vector<route::RouteSet> static_routes_;
  bool static_routing_ = false;
  bool adaptive_routing_ = false;
};

}  // namespace sunmap::mapping
