#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "fault/fault.h"
#include "fplan/floorplanner.h"
#include "fplan/session.h"
#include "mapping/mapper.h"
#include "model/library.h"
#include "route/routing.h"
#include "route/routing_session.h"
#include "topo/topology.h"

namespace sunmap::mapping {

/// Reusable per-thread buffers for EvalContext::evaluate(), so the mapping
/// search stops allocating in its inner loop. One scratch must not be shared
/// between concurrent evaluations; the parallel neighborhood search gives
/// each worker its own.
struct EvalScratch {
  std::vector<int> slot_to_core;
  route::LoadMap loads{0};
  /// Per-commodity routes computed by the adaptive routing functions; the
  /// deterministic functions point into the context's static route cache
  /// instead.
  std::vector<route::RouteSet> routes;
  /// Per-commodity route reference, aligned with EvalContext::commodities().
  std::vector<const route::RouteSet*> route_refs;
  std::vector<std::optional<fplan::BlockShape>> core_shapes;
  /// Block centres extracted from the candidate floorplan, indexed by SlotId
  /// (cores) and switch NodeId, so the power loop's wire lengths are O(1)
  /// lookups instead of linear scans over the placed blocks.
  std::vector<double> core_cx, core_cy, switch_cx, switch_cy;
  /// Per-slot shape-class ids (0 = empty slot) — the floorplan cache key.
  std::vector<std::uint16_t> floor_key;
  /// Degraded-mode routing buffers: the reference fault path re-runs its
  /// masked BFS here per (scenario, commodity), and both paths extract the
  /// commodity's surviving route into fault_path. fault_loads accumulates
  /// per-scenario link loads on materialized evaluations.
  fault::MaskedBfs fault_bfs;
  graph::Path fault_path;
  std::vector<double> fault_loads;
  /// Column/row accumulators of the area lower bound (phase-1 pruning).
  /// bound_row_used doubles as a per-column item count in columns-mode
  /// placements, hence int rather than a flag.
  std::vector<double> bound_col_w, bound_row_h;
  std::vector<char> bound_col_used;
  std::vector<int> bound_row_used;
  /// Per-candidate occupied-column/row prefix folds of the min-power wire
  /// refinement: cumulative width/height floors and occupied counts, so
  /// each commodity's between-band wire floor is an O(1) lookup.
  std::vector<double> bound_col_px, bound_row_px;
  std::vector<int> bound_col_pn, bound_row_pn;

  /// This thread's incremental floorplan session: floorplan-cache misses
  /// solve through it, sending only the slots whose shape class changed
  /// since the previous miss (a pairwise swap sends <= 2). Owned by the
  /// scratch so concurrent workers never share solver state; the context
  /// lazily (re)builds it when the scratch meets a different context or the
  /// context's floorplan options / technology epoch moved. The session
  /// survives rebind()s that keep the floorplan configuration, which is how
  /// a design-space sweep reuses one session per topology worker across
  /// every grid point sharing its floorplan options.
  std::unique_ptr<fplan::FloorplanSession> fplan_session;
  std::uint64_t fplan_session_context = 0;  ///< EvalContext id it belongs to.
  std::uint64_t fplan_session_epoch = 0;    ///< Floorplan epoch it was built at.
  /// Per-slot shape classes the session currently holds (the delta base).
  std::vector<std::uint16_t> fplan_session_key;
  std::vector<fplan::SlotShapeUpdate> fplan_updates;  ///< Reusable delta buffer.
  /// Home of the latest floorplan computed outside the session and the
  /// cache (the non-incremental reference path, or a miss past the cache
  /// cap) — floorplan_for_mapping returns references, never copies.
  fplan::Floorplan fplan_result;

  /// This thread's incremental routing session (MP / split-all only; the
  /// static kinds keep reading the context's route tables). Owned by the
  /// scratch for the same reason as fplan_session: concurrent workers must
  /// never share solver state. The context rebuilds it when the scratch
  /// meets a different context or a rebind() changed the evaluation class
  /// (anything that alters routes invalidates the session's cached trace).
  std::unique_ptr<route::RoutingSession> routing_session;
  std::uint64_t routing_session_context = 0;  ///< EvalContext id it belongs to.
  std::uint64_t routing_session_epoch = 0;    ///< Routing epoch it was built at.
  /// Reusable per-commodity endpoint buffer handed to the session's solve.
  std::vector<route::CommodityEndpoints> commodity_endpoints;

  // ---- Transactional state (owned by mapping::DeltaTxn). ----
  /// Non-zero while a DeltaTxn speculation is open on this scratch. While
  /// open, floorplan-cache misses journal their session delta (the session
  /// solves through push_shapes instead of update_shapes) and log the
  /// displaced fplan_session_key entries below, so DeltaTxn::rollback() can
  /// restore both without re-deriving anything.
  int txn_depth = 0;
  /// Speculative session frames opened since begin_moves() (rollback pops
  /// exactly this many).
  int txn_session_pushes = 0;
  /// Speculative routing-session frames opened since begin_moves()
  /// (rollback pops exactly this many; commit folds them).
  int txn_route_pushes = 0;
  /// (slot, displaced shape class) journal of fplan_session_key changes.
  std::vector<std::pair<int, std::uint16_t>> txn_key_undo;

  /// Shared per-worker scratch pool for the parallel search paths. The
  /// parallel neighborhood search and the restart annealer lend worker t > 0
  /// the pool's (t-1)th scratch instead of stack-allocating fresh ones, so
  /// the workers' floorplan sessions survive across chunks, passes, improve()
  /// calls, and — because the explorer keeps one caller scratch per topology
  /// worker for a whole sweep — across every design point of a grid. Entries
  /// are created on first use and epoch/slot-guarded by the context exactly
  /// like the caller's own session.
  std::vector<std::unique_ptr<EvalScratch>> worker_pool;

  /// The pooled scratch for worker `t` (worker 0 is this scratch itself),
  /// growing the pool on first use. Not thread-safe: size the pool before
  /// handing scratches to concurrent workers.
  EvalScratch& worker_scratch(int t);
};

/// The incremental mapping-evaluation engine: everything about one
/// (application, topology) pair that is invariant across candidate mappings,
/// precomputed once so that Mapper's search loops evaluate thousands of
/// candidates without redoing it.
///
/// The context's state is split in two layers:
///
///  *Mapping-invariant, configuration-independent* — owned by the (app,
///  topology) pair and never rebuilt: the commodity list sorted by
///  decreasing value (Fig 5 step 2), the topology's relative placement, the
///  quadrant-graph admission masks of §4.3 (built once on first use by a
///  minimum-path configuration, then shared lock-free by search workers),
///  and the complete route tables per slot pair for the load-independent
///  routing functions (dimension-ordered, split-across-minimum-paths) —
///  one table per routing kind, built on first use and kept.
///
///  *Configuration-bound* — derived from one MapperConfig and replaced by
///  rebind(): the routing engine, the active objective/constraints, the
///  floorplanner, and the switch area/power rows resolved for the config's
///  technology point.
///
/// rebind() is what makes batched design-space exploration cheap: a
/// DesignSpaceExplorer builds one context per (app, topology) pair and
/// re-binds it across every configuration of a sweep, so the per-topology
/// precomputation above is paid once per topology instead of once per
/// design point.
///
/// Two bounded memoisation caches accelerate repeated evaluations and are
/// entirely transparent (hits return bit-identical results to a fresh
/// computation, because the cached functions are deterministic):
///
///  * a floorplan cache keyed by the per-slot shape assignment. Floorplans
///    depend only on which block shapes occupy which slots — not on the
///    routing function, objective, or bandwidth — so the cache survives
///    every rebind() that keeps the floorplan options and technology point,
///    and it also merges candidate mappings that permute identically-shaped
///    cores. Floorplanning dominates evaluation cost, which makes this the
///    main source of the explorer's cross-configuration speedup. Cache
///    *misses* solve through the scratch's incremental FloorplanSession
///    (fplan/session.h): only the slots whose shape class moved since the
///    session's previous solve are re-solved, which is a two-slot delta in
///    the pairwise-swap loops.
///  * an evaluation-metrics cache keyed by the mapping, valid for one
///    "evaluation class" (routing function plus the config fields that
///    influence routes). Objective, area cap, and bandwidth threshold only
///    affect the cost and feasibility flags, which are re-derived from the
///    cached metrics per configuration.
///
/// evaluate() is a drop-in replacement for Mapper::evaluate() and produces
/// bit-identical Evaluations (asserted by the equivalence regression tests);
/// it is thread-safe given per-thread scratch (the caches are internally
/// synchronised). rebind() must not run concurrently with evaluations.
///
/// The context borrows the application and topology; both must outlive it.
class EvalContext {
 public:
  EvalContext(const CoreGraph& app, const topo::Topology& topology,
              const MapperConfig& config,
              const model::AreaPowerLibrary& library);

  EvalContext(const EvalContext&) = delete;
  EvalContext& operator=(const EvalContext&) = delete;

  /// Re-binds the context to a new mapper configuration without rebuilding
  /// the per-topology state: quadrant masks and static route tables are
  /// kept (and lazily extended when the new routing kind needs a table that
  /// was not built yet), the switch table is re-resolved only when the
  /// technology point changed, and the floorplan cache survives whenever
  /// the floorplan options and technology are unchanged. `library` must be
  /// resolved for `config.tech` (Mapper::library() provides this).
  ///
  /// After rebind(), evaluate()/map() behave exactly as if the context had
  /// been freshly constructed with `config`.
  void rebind(const MapperConfig& config,
              const model::AreaPowerLibrary& library);

  [[nodiscard]] const CoreGraph& app() const { return app_; }
  [[nodiscard]] const topo::Topology& topology() const { return topology_; }
  [[nodiscard]] const MapperConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<Commodity>& commodities() const {
    return commodities_;
  }

  /// Evaluates one mapping (Fig 5 steps 2-8) using the cached data. With
  /// `materialize` false the returned Evaluation carries metrics ONLY:
  /// `routes`, `link_loads`, and `floorplan` all stay empty — the search
  /// loops compare candidates by scalars, and skipping the route and
  /// geometry copies keeps rejected candidates cheap. Materialized
  /// evaluations always carry the full floorplan and routes.
  ///
  /// Throws std::invalid_argument on a malformed mapping, mirroring
  /// Mapper::evaluate().
  [[nodiscard]] Evaluation evaluate(const std::vector<int>& core_to_slot,
                                    EvalScratch& scratch,
                                    bool materialize = true) const;

  /// True when candidate mappings may be bound-pruned at all: pruning is
  /// enabled in the config and the caller is not collecting every explored
  /// mapping's area/power (a pruned candidate has nothing to record). Which
  /// bound applies is per-objective — see prunable().
  [[nodiscard]] bool supports_pruning() const;

  /// Lower bound on the mapping's communication-weighted average switch
  /// hops: every commodity needs at least min_switch_hops between its
  /// mapped slots, whatever the routing function does. For minimal routing
  /// functions the bound is exact when every route is minimal, and it is
  /// computed with the same summation order as evaluate(), so comparing it
  /// against an evaluated cost is floating-point safe.
  [[nodiscard]] double hop_cost_lower_bound(
      const std::vector<int>& core_to_slot) const;

  /// Lower bound on the mapping's floorplanned design area, from the
  /// shape-class envelope of the relative placement: the chip width is at
  /// least the spacing-separated sum over non-empty columns of each
  /// column's widest minimal block width, the height likewise over row
  /// bands (grid mode) or column stacks (columns mode), and every block's
  /// minimal dimensions follow from its shape (exact for hard blocks,
  /// sqrt(area*min_aspect) x sqrt(area/max_aspect) for soft ones). Mirrors
  /// the band layout the floorplanner itself computes, with every resolved
  /// dimension replaced by its minimum, so it can never exceed the true
  /// area. Returns 0 when the topology's placement could not be enveloped.
  [[nodiscard]] double area_lower_bound(const std::vector<int>& core_to_slot,
                                        EvalScratch& scratch) const;

  /// Lower bound on the mapping's design power (mW): the exact
  /// mapping-invariant static power from the resolved switch table, plus,
  /// per commodity, the minimum achievable energy per bit — the cheapest
  /// switch-energy path between the mapped slots' ingress/egress switches
  /// (Dijkstra over the resolved per-switch energies plus per-link minimum
  /// wire lengths from the placement envelope) and the minimum
  /// core-attachment wire energy. Every actual route of any routing
  /// function costs at least this much. Returns 0 when the power-bound
  /// table is not bound (see prunable() for when it is built).
  ///
  /// Two refinements tighten the wire part beyond the static per-link
  /// floors (ROADMAP follow-on from PR 3):
  ///  * per-candidate occupied-row/column refinement — under the band
  ///    engine, each commodity's ingress->egress wire is additionally
  ///    bounded by the spacing-separated column/row floors of the bands the
  ///    candidate actually occupies (the same floors the area bound
  ///    derives), folded against a switch-energy-only Dijkstra table; the
  ///    commodity takes the max of the two admissible bounds.
  ///  * exact-geometry upgrade — when every slot provably hosts the one
  ///    core shape class the application has (num_cores == num_slots,
  ///    single class), the floorplan is the same for every candidate, so
  ///    the per-link wires and core attachments use the actual placed
  ///    geometry instead of minimal envelopes. This is what moves the
  ///    fully-occupied uniform meshes (netproc16) from a ~25% prune rate.
  [[nodiscard]] double power_lower_bound(const std::vector<int>& core_to_slot,
                                         EvalScratch& scratch) const {
    return power_lower_bound_impl(core_to_slot, scratch,
                                  /*floors_filled=*/false);
  }

  /// Phase 1 of the two-phase evaluation: true when an admissible bound
  /// proves the candidate cannot rank strictly better than the incumbent
  /// (or proves it violates the area cap), so the full routing +
  /// floorplanning evaluation can be skipped without changing the search
  /// result. Objective-generic: min-delay uses the hop bound, min-area the
  /// shape-class envelope refined by the exact (cache-accelerated)
  /// floorplan, min-power the switch-table energy bound, and the weighted
  /// objective their weighted combination. Bounds that are not exact
  /// reproductions of evaluate()'s arithmetic only prune strictly
  /// dominated candidates (a relative 1e-9 safety margin), so pruned
  /// searches return bit-identical results to prune-disabled ones.
  [[nodiscard]] bool prunable(const std::vector<int>& core_to_slot,
                              const Evaluation& incumbent,
                              EvalScratch& scratch) const;

  /// Total EvalContext constructions since process start. The batched
  /// exploration tests assert on deltas of this counter to prove the
  /// explorer builds exactly one context per (app, topology) pair.
  [[nodiscard]] static std::uint64_t contexts_built();

  /// Process-wide memoisation-cache counters (relaxed atomics), for the
  /// benches' cache-effectiveness reporting.
  struct CacheStats {
    std::uint64_t metrics_hits = 0;
    std::uint64_t metrics_misses = 0;
    std::uint64_t floorplan_hits = 0;
    std::uint64_t floorplan_misses = 0;
  };
  [[nodiscard]] static CacheStats cache_stats();

 private:
  void bind(const MapperConfig& config,
            const model::AreaPowerLibrary& library, bool first_bind);
  void build_static_routes(std::vector<route::RouteSet>& table) const;
  [[nodiscard]] const route::RouteSet& static_route(int src_slot,
                                                    int dst_slot) const {
    return (*static_routes_)[static_cast<std::size_t>(src_slot) *
                                 static_cast<std::size_t>(
                                     topology_.num_slots()) +
                             static_cast<std::size_t>(dst_slot)];
  }
  /// Sets the config-dependent fields of an evaluation (feasibility flags
  /// and objective cost) from its config-independent metrics and the
  /// floorplan's aspect ratio. Shared by the fresh-computation and
  /// cache-hit paths so their arithmetic is literally the same code.
  void apply_config_dependent(Evaluation& eval,
                              double floorplan_aspect) const;

  /// The mapping's floorplan, via the shape-class cache (computed and
  /// inserted on a miss). Exactly what evaluate() uses; also the min-area
  /// bound's exact phase. Fills scratch.floor_key as a side effect. Misses
  /// solve through the scratch's incremental FloorplanSession, so the cost
  /// of a miss is a delta re-solve, not a from-scratch floorplan.
  ///
  /// Returns a reference instead of a copy — the search loops only read
  /// scalars and block centres from it. The reference points at a cache
  /// entry (stable: entries are never evicted, only cleared by rebind(),
  /// which must not run concurrently with evaluations), at the scratch's
  /// session solution, or at scratch.fplan_result; it stays valid until
  /// this scratch's next evaluation or floorplan query.
  [[nodiscard]] const fplan::Floorplan& floorplan_for_mapping(
      const std::vector<int>& core_to_slot, EvalScratch& scratch) const;

  /// The scratch's floorplan session, (re)built when the scratch belongs to
  /// another context or a rebind() moved the floorplan options/technology.
  [[nodiscard]] fplan::FloorplanSession& session_for(
      EvalScratch& scratch) const;

  /// The scratch's routing session, (re)built when the scratch belongs to
  /// another context or a rebind() changed the evaluation class. A rebuild
  /// binds the session to this context's commodity demands in canonical
  /// order and drops any speculative frame bookkeeping.
  [[nodiscard]] route::RoutingSession& routing_session_for(
      EvalScratch& scratch) const;

  /// Materializes the config's fault spec against this topology and
  /// prebuilds one masked-BFS parent table per (scenario, ingress switch) —
  /// the incremental fault path reads routes out of these tables instead of
  /// re-searching, which is where the >= 2x per-scenario re-evaluation
  /// speedup comes from. Rebuilt only when the bound FaultSet changes.
  void build_fault_tables();
  void build_bound_envelope();
  void build_power_bound_table();
  /// Fills scratch.bound_col_w / bound_row_h (+ used flags) with the
  /// candidate's per-band minimal floors — the shared first stage of
  /// area_lower_bound() and the min-power wire refinement.
  void fill_bound_floors(const std::vector<int>& core_to_slot,
                         EvalScratch& scratch) const;
  /// power_lower_bound with the floor fill optionally skipped:
  /// `floors_filled` true means the scratch already holds this candidate's
  /// band floors (prunable() just ran area_lower_bound on it), so the
  /// refinement reuses them instead of deriving them a second time.
  [[nodiscard]] double power_lower_bound_impl(
      const std::vector<int>& core_to_slot, EvalScratch& scratch,
      bool floors_filled) const;

  // ---- Mapping-invariant state (per app + topology, never rebuilt). ----
  const CoreGraph& app_;
  const topo::Topology& topology_;
  /// Process-unique id of this context (from the construction counter), so
  /// a scratch can tell a recycled context address from the context its
  /// floorplan session was built for.
  std::uint64_t context_id_ = 0;
  /// Bumped whenever a bind changes the floorplan options or technology
  /// point: scratch sessions from older epochs are stale and are rebuilt.
  std::uint64_t session_epoch_ = 0;
  /// Bumped whenever a bind changes the evaluation class (anything that
  /// alters routes): scratch routing sessions from older epochs hold a
  /// trace of a different routing configuration and are rebuilt.
  std::uint64_t routing_epoch_ = 0;
  std::vector<Commodity> commodities_;
  double total_value_ = 0.0;
  topo::RelativePlacement placement_;
  /// Core index -> shape-equivalence class (cores with bit-identical
  /// BlockShapes share a class); basis of the floorplan cache key.
  std::vector<std::uint16_t> core_shape_class_;
  /// One representative BlockShape per shape class, for the bound envelope.
  std::vector<fplan::BlockShape> class_shapes_;
  std::optional<route::QuadrantTable> quadrant_table_;
  /// Per-routing-kind complete route tables for the load-independent
  /// functions, built on first use by a config of that kind and kept across
  /// rebinds (their routes depend only on the topology).
  std::optional<std::vector<route::RouteSet>> static_routes_do_;
  std::optional<std::vector<route::RouteSet>> static_routes_sm_;

  // ---- Configuration-bound state (replaced by rebind()). ----
  MapperConfig config_;  // by value: the context must not dangle on the mapper
  model::ResolvedSwitchTable switch_table_;
  std::vector<fplan::BlockShape> switch_shapes_;
  std::optional<route::RoutingEngine> engine_;
  const std::vector<route::RouteSet>* static_routes_ = nullptr;
  bool static_routing_ = false;
  bool adaptive_routing_ = false;

  /// Fault state, rebuilt by bind() when the configuration's FaultSet moved:
  /// the scenarios materialized against this topology, their aliveness
  /// masks, and the per-(scenario, ingress switch) BFS tables, indexed
  /// [scenario * num_switches + ingress] (entries for switches no slot
  /// injects from stay empty). All immutable between binds, so concurrent
  /// search workers share them lock-free.
  std::vector<fault::FaultScenario> fault_scenarios_;
  std::vector<fault::ScenarioMask> fault_masks_;
  std::vector<fault::MaskedBfs> fault_bfs_;

  /// Precomputed geometry of the area/power lower bounds, derived from the
  /// relative placement, the shape classes, and the resolved switch shapes
  /// (so it is rebuilt whenever the technology point or floorplan options
  /// change). All "min_w"/"min_h" entries are minimal block dimensions:
  /// exact for hard blocks, the extreme admissible aspects for soft ones.
  struct BoundEnvelope {
    bool valid = false;
    bool grid = true;
    double spacing = 0.0;
    int ncols = 0, nrows = 0;
    /// Minimal dimensions per core shape class (class_shapes_ order), and
    /// their minimum over all classes (what a slot that must host *some*
    /// core contributes before the mapping says which).
    std::vector<double> class_min_w, class_min_h;
    double min_any_class_w = 0.0, min_any_class_h = 0.0;
    /// Placement coordinates of each slot's core item.
    std::vector<int> slot_col, slot_row, slot_sub;
    /// Core-slot counts per column/row — the pigeonhole floors: a region
    /// holding k slots is guaranteed a core whenever the application has
    /// more cores than fit outside it.
    std::vector<int> col_slot_count, row_slot_count;
    /// Grid mode: the core slot sharing each cell (-1 when none).
    std::vector<int> cell_slot;
    /// Per-column width floor from switch items; whether switches occupy it.
    std::vector<double> col_base_w;
    std::vector<char> col_has_items;
    /// Grid mode: per-cell (row * ncols + col) switch-stack minimal height
    /// and item count, and the per-row switch-only band floor.
    std::vector<double> cell_base_h;
    std::vector<int> cell_base_n;
    std::vector<double> row_base_h;
    std::vector<char> row_has_items;
    /// Columns mode: per-column switch-stack totals.
    std::vector<double> col_base_h;
    std::vector<int> col_base_n;
    /// Minimal switch dimensions and placement coordinates, by NodeId.
    std::vector<double> switch_min_w, switch_min_h;
    std::vector<int> switch_col, switch_row, switch_sub;
    /// Per-slot minimum core-attachment wire parts: spacing plus half the
    /// ingress/egress switch's minimal extent along the separating axis;
    /// the core's own half-extent is added per candidate from its class.
    std::vector<double> attach_in_base, attach_out_base;
    std::vector<char> attach_in_vertical, attach_out_vertical;
    /// Per-slot ingress/egress switch NodeIds (the wire refinement reads
    /// the switches' band coordinates per commodity).
    std::vector<int> slot_in_sw, slot_out_sw;
  };
  BoundEnvelope envelope_;
  /// Minimum switch-energy + wire-energy (pJ/bit) between the ingress
  /// switch of slot src and the egress switch of slot dst, indexed
  /// [src * num_slots + dst]. Valid only while power_bound_valid_.
  std::vector<double> pair_energy_lb_;
  /// Switch-energy-only companion table (no wire term): the admissible
  /// base the per-candidate occupied-band wire refinement adds its
  /// geometric floor to.
  std::vector<double> pair_switch_energy_lb_;
  bool power_bound_valid_ = false;
  /// Exact-geometry mode: the floorplan is mapping-invariant (single core
  /// shape class filling every slot), so pair_energy_lb_ was built from
  /// actual placed wire lengths and the attachment terms below are exact.
  bool power_bound_exact_ = false;
  std::vector<double> exact_attach_in_, exact_attach_out_;

  // ---- Memoisation caches (guarded by cache_mutex_, bounded). ----
  // Reader-writer lock: concurrent search workers mostly hit, and hits only
  // take the shared side, so the parallel neighborhood search does not
  // serialize on the caches once they are warm.
  static constexpr std::size_t kFloorplanCacheCap = 8192;
  static constexpr std::size_t kMetricsCacheCap = 8192;
  mutable std::shared_mutex cache_mutex_;
  /// Per-slot shape assignment -> floorplan. Survives rebind() while the
  /// floorplan options and technology point are unchanged.
  mutable std::map<std::vector<std::uint16_t>, fplan::Floorplan>
      floorplan_cache_;
  /// Mapping -> config-independent evaluation metrics. The stored
  /// Evaluation carries no routes, loads, or floorplan (the aspect ratio —
  /// all the flag re-derivation needs — is kept as a scalar, so entries
  /// stay a few hundred bytes and the locked copy on a hit is cheap).
  /// Valid for one evaluation class; cleared by rebind() when the new
  /// config routes differently.
  struct CachedMetrics {
    Evaluation metrics;
    double floorplan_aspect = 0.0;
  };
  mutable std::map<std::vector<int>, CachedMetrics> metrics_cache_;
};

}  // namespace sunmap::mapping
