#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "fplan/floorplanner.h"
#include "mapping/mapper.h"
#include "model/library.h"
#include "route/routing.h"
#include "topo/topology.h"

namespace sunmap::mapping {

/// Reusable per-thread buffers for EvalContext::evaluate(), so the mapping
/// search stops allocating in its inner loop. One scratch must not be shared
/// between concurrent evaluations; the parallel neighborhood search gives
/// each worker its own.
struct EvalScratch {
  std::vector<int> slot_to_core;
  route::LoadMap loads{0};
  /// Per-commodity routes computed by the adaptive routing functions; the
  /// deterministic functions point into the context's static route cache
  /// instead.
  std::vector<route::RouteSet> routes;
  /// Per-commodity route reference, aligned with EvalContext::commodities().
  std::vector<const route::RouteSet*> route_refs;
  std::vector<std::optional<fplan::BlockShape>> core_shapes;
  /// Block centres extracted from the candidate floorplan, indexed by SlotId
  /// (cores) and switch NodeId, so the power loop's wire lengths are O(1)
  /// lookups instead of linear scans over the placed blocks.
  std::vector<double> core_cx, core_cy, switch_cx, switch_cy;
  /// Per-slot shape-class ids (0 = empty slot) — the floorplan cache key.
  std::vector<std::uint16_t> floor_key;
};

/// The incremental mapping-evaluation engine: everything about one
/// (application, topology) pair that is invariant across candidate mappings,
/// precomputed once so that Mapper's search loops evaluate thousands of
/// candidates without redoing it.
///
/// The context's state is split in two layers:
///
///  *Mapping-invariant, configuration-independent* — owned by the (app,
///  topology) pair and never rebuilt: the commodity list sorted by
///  decreasing value (Fig 5 step 2), the topology's relative placement, the
///  quadrant-graph admission masks of §4.3 (built once on first use by a
///  minimum-path configuration, then shared lock-free by search workers),
///  and the complete route tables per slot pair for the load-independent
///  routing functions (dimension-ordered, split-across-minimum-paths) —
///  one table per routing kind, built on first use and kept.
///
///  *Configuration-bound* — derived from one MapperConfig and replaced by
///  rebind(): the routing engine, the active objective/constraints, the
///  floorplanner, and the switch area/power rows resolved for the config's
///  technology point.
///
/// rebind() is what makes batched design-space exploration cheap: a
/// DesignSpaceExplorer builds one context per (app, topology) pair and
/// re-binds it across every configuration of a sweep, so the per-topology
/// precomputation above is paid once per topology instead of once per
/// design point.
///
/// Two bounded memoisation caches accelerate repeated evaluations and are
/// entirely transparent (hits return bit-identical results to a fresh
/// computation, because the cached functions are deterministic):
///
///  * a floorplan cache keyed by the per-slot shape assignment. Floorplans
///    depend only on which block shapes occupy which slots — not on the
///    routing function, objective, or bandwidth — so the cache survives
///    every rebind() that keeps the floorplan options and technology point,
///    and it also merges candidate mappings that permute identically-shaped
///    cores. Floorplanning dominates evaluation cost, which makes this the
///    main source of the explorer's cross-configuration speedup.
///  * an evaluation-metrics cache keyed by the mapping, valid for one
///    "evaluation class" (routing function plus the config fields that
///    influence routes). Objective, area cap, and bandwidth threshold only
///    affect the cost and feasibility flags, which are re-derived from the
///    cached metrics per configuration.
///
/// evaluate() is a drop-in replacement for Mapper::evaluate() and produces
/// bit-identical Evaluations (asserted by the equivalence regression tests);
/// it is thread-safe given per-thread scratch (the caches are internally
/// synchronised). rebind() must not run concurrently with evaluations.
///
/// The context borrows the application and topology; both must outlive it.
class EvalContext {
 public:
  EvalContext(const CoreGraph& app, const topo::Topology& topology,
              const MapperConfig& config,
              const model::AreaPowerLibrary& library);

  EvalContext(const EvalContext&) = delete;
  EvalContext& operator=(const EvalContext&) = delete;

  /// Re-binds the context to a new mapper configuration without rebuilding
  /// the per-topology state: quadrant masks and static route tables are
  /// kept (and lazily extended when the new routing kind needs a table that
  /// was not built yet), the switch table is re-resolved only when the
  /// technology point changed, and the floorplan cache survives whenever
  /// the floorplan options and technology are unchanged. `library` must be
  /// resolved for `config.tech` (Mapper::library() provides this).
  ///
  /// After rebind(), evaluate()/map() behave exactly as if the context had
  /// been freshly constructed with `config`.
  void rebind(const MapperConfig& config,
              const model::AreaPowerLibrary& library);

  [[nodiscard]] const CoreGraph& app() const { return app_; }
  [[nodiscard]] const topo::Topology& topology() const { return topology_; }
  [[nodiscard]] const MapperConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<Commodity>& commodities() const {
    return commodities_;
  }

  /// Evaluates one mapping (Fig 5 steps 2-8) using the cached data. With
  /// `materialize` false the returned Evaluation carries every metric but
  /// leaves `routes`/`link_loads` empty — the search loops compare
  /// candidates by metrics only, and skipping the per-copy of the route
  /// sets keeps rejected candidates cheap. A metrics-cache hit additionally
  /// leaves `floorplan` empty (the cache stores scalars, not geometry);
  /// materialized evaluations always carry the full floorplan and routes.
  ///
  /// Throws std::invalid_argument on a malformed mapping, mirroring
  /// Mapper::evaluate().
  [[nodiscard]] Evaluation evaluate(const std::vector<int>& core_to_slot,
                                    EvalScratch& scratch,
                                    bool materialize = true) const;

  /// True when candidate mappings can be pruned by the hop-distance cost
  /// bound: the objective must be pure delay (for any other objective the
  /// bound does not dominate the cost) and the caller must not be collecting
  /// every explored mapping's area/power.
  [[nodiscard]] bool supports_pruning() const;

  /// Lower bound on the mapping's communication-weighted average switch
  /// hops: every commodity needs at least min_switch_hops between its
  /// mapped slots, whatever the routing function does. For minimal routing
  /// functions the bound is exact when every route is minimal, and it is
  /// computed with the same summation order as evaluate(), so comparing it
  /// against an evaluated cost is floating-point safe.
  [[nodiscard]] double hop_cost_lower_bound(
      const std::vector<int>& core_to_slot) const;

  /// Phase 1 of the two-phase evaluation: true when the bound proves the
  /// candidate cannot rank strictly better than the incumbent, so the full
  /// routing + floorplanning evaluation can be skipped without changing the
  /// search result.
  [[nodiscard]] bool prunable(const std::vector<int>& core_to_slot,
                              const Evaluation& incumbent) const;

  /// Total EvalContext constructions since process start. The batched
  /// exploration tests assert on deltas of this counter to prove the
  /// explorer builds exactly one context per (app, topology) pair.
  [[nodiscard]] static std::uint64_t contexts_built();

  /// Process-wide memoisation-cache counters (relaxed atomics), for the
  /// benches' cache-effectiveness reporting.
  struct CacheStats {
    std::uint64_t metrics_hits = 0;
    std::uint64_t metrics_misses = 0;
    std::uint64_t floorplan_hits = 0;
    std::uint64_t floorplan_misses = 0;
  };
  [[nodiscard]] static CacheStats cache_stats();

 private:
  void bind(const MapperConfig& config,
            const model::AreaPowerLibrary& library, bool first_bind);
  void build_static_routes(std::vector<route::RouteSet>& table) const;
  [[nodiscard]] const route::RouteSet& static_route(int src_slot,
                                                    int dst_slot) const {
    return (*static_routes_)[static_cast<std::size_t>(src_slot) *
                                 static_cast<std::size_t>(
                                     topology_.num_slots()) +
                             static_cast<std::size_t>(dst_slot)];
  }
  /// Sets the config-dependent fields of an evaluation (feasibility flags
  /// and objective cost) from its config-independent metrics and the
  /// floorplan's aspect ratio. Shared by the fresh-computation and
  /// cache-hit paths so their arithmetic is literally the same code.
  void apply_config_dependent(Evaluation& eval,
                              double floorplan_aspect) const;

  // ---- Mapping-invariant state (per app + topology, never rebuilt). ----
  const CoreGraph& app_;
  const topo::Topology& topology_;
  std::vector<Commodity> commodities_;
  double total_value_ = 0.0;
  topo::RelativePlacement placement_;
  /// Core index -> shape-equivalence class (cores with bit-identical
  /// BlockShapes share a class); basis of the floorplan cache key.
  std::vector<std::uint16_t> core_shape_class_;
  std::optional<route::QuadrantTable> quadrant_table_;
  /// Per-routing-kind complete route tables for the load-independent
  /// functions, built on first use by a config of that kind and kept across
  /// rebinds (their routes depend only on the topology).
  std::optional<std::vector<route::RouteSet>> static_routes_do_;
  std::optional<std::vector<route::RouteSet>> static_routes_sm_;

  // ---- Configuration-bound state (replaced by rebind()). ----
  MapperConfig config_;  // by value: the context must not dangle on the mapper
  model::ResolvedSwitchTable switch_table_;
  std::vector<fplan::BlockShape> switch_shapes_;
  fplan::Floorplanner planner_;
  std::optional<route::RoutingEngine> engine_;
  const std::vector<route::RouteSet>* static_routes_ = nullptr;
  bool static_routing_ = false;
  bool adaptive_routing_ = false;

  // ---- Memoisation caches (guarded by cache_mutex_, bounded). ----
  // Reader-writer lock: concurrent search workers mostly hit, and hits only
  // take the shared side, so the parallel neighborhood search does not
  // serialize on the caches once they are warm.
  static constexpr std::size_t kFloorplanCacheCap = 8192;
  static constexpr std::size_t kMetricsCacheCap = 8192;
  mutable std::shared_mutex cache_mutex_;
  /// Per-slot shape assignment -> floorplan. Survives rebind() while the
  /// floorplan options and technology point are unchanged.
  mutable std::map<std::vector<std::uint16_t>, fplan::Floorplan>
      floorplan_cache_;
  /// Mapping -> config-independent evaluation metrics. The stored
  /// Evaluation carries no routes, loads, or floorplan (the aspect ratio —
  /// all the flag re-derivation needs — is kept as a scalar, so entries
  /// stay a few hundred bytes and the locked copy on a hit is cheap).
  /// Valid for one evaluation class; cleared by rebind() when the new
  /// config routes differently.
  struct CachedMetrics {
    Evaluation metrics;
    double floorplan_aspect = 0.0;
  };
  mutable std::map<std::vector<int>, CachedMetrics> metrics_cache_;
};

}  // namespace sunmap::mapping
