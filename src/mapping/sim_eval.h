#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "mapping/core_graph.h"
#include "mapping/mapper.h"
#include "sim/simulator.h"

namespace sunmap::mapping {

/// Flit-level simulation verdict on one mapped design, reported alongside
/// the analytical evaluation it validates: the analytical model prices
/// delay as hops + wire latency with no contention, the simulator measures
/// it with wormhole blocking, credit stalls, and allocation conflicts
/// included.
struct SimScore {
  sim::SimStats stats;  ///< Full simulation statistics (trace traffic).
  /// Zero-load pipeline prediction in cycles, traffic-weighted over the
  /// mapping's commodities: F + (S-1)*L per commodity of S switches with
  /// F flits/packet and L-cycle links — what the analytical hop model
  /// implies when contention is free.
  double analytical_latency_cycles = 0.0;
  /// stats.avg_latency_cycles, duplicated for symmetric column naming.
  double simulated_latency_cycles = 0.0;
  /// Relative contention error the analytical model misses:
  /// (simulated - analytical) / simulated; 0 when nothing was delivered.
  [[nodiscard]] double model_error() const {
    return simulated_latency_cycles > 0.0
               ? (simulated_latency_cycles - analytical_latency_cycles) /
                     simulated_latency_cycles
               : 0.0;
  }
};

/// Configuration of the simulator-backed evaluation tier.
struct SimTierOptions {
  /// Engine + windows + buffering. Distance-class VCs default on: finalist
  /// routes include split-traffic and wraparound path sets that deadlock
  /// under a single VC, and a deadlocked score validates nothing.
  sim::SimConfig config;
  /// MB/s -> flits/cycle conversion for trace traffic (matches
  /// sim::TraceTraffic's scaling knob).
  double flits_per_cycle_per_gbps = 0.05;
  /// Traffic model the tier replays the mapped commodities under: the
  /// plain trace or BurstyTraffic's per-flow on/off modulation (see
  /// mapping::SimTraffic). The burst shape mirrors MapperConfig's
  /// sim_burst_* knobs.
  SimTraffic traffic = SimTraffic::kTrace;
  double burst_len = 50.0;
  double burst_duty = 0.3;
  /// Capacity of the per-topology layout/simulator LRU cache. A sweep
  /// library is usually a handful of topologies, but nothing bounds it in
  /// principle, so the cache evicts least-recently-scored entries beyond
  /// this (like the floorplan/metrics memo caches, which cap at a fixed
  /// size; unlike them this cache is tiny and recency-ordered, so true LRU
  /// is affordable).
  std::size_t cache_capacity = 16;

  SimTierOptions() { config.distance_class_vcs = true; }
};

/// Maps a MapperConfig's sim_* knobs (engine choice, simulator seed,
/// traffic model, trace scaling) onto the simulation tier's options — the
/// one translation the explorer and the CLI both need.
[[nodiscard]] SimTierOptions sim_tier_options(const MapperConfig& config);

/// Simulator-backed evaluation of mapped designs: binds a MappingResult's
/// per-commodity routes and rates into the flit-level simulator and scores
/// contention-aware delay. The entry point the explorer's finalist tier and
/// the CLI's --sim-validate both use.
///
/// Per-topology network layouts and simulator instances are cached across
/// calls in a bounded LRU (repeated finalist scoring pays route-table
/// binding only, never network construction; least-recently-scored
/// topologies are evicted beyond cache_capacity), so one evaluator should
/// be reused across a whole report. Scoring is deterministic and
/// assignment-independent: every score() call reseeds the simulator from
/// the configured seed, so the same (app, topology, result) triple produces
/// the identical SimScore no matter which evaluator instance computes it or
/// what was scored before — this is what lets the explorer's parallel
/// finalist tier hand cells to per-thread evaluators and still merge
/// bit-identical reports. A single instance is still not thread-safe; use
/// one evaluator per thread.
class SimEvaluator {
 public:
  explicit SimEvaluator(SimTierOptions options = SimTierOptions());

  /// Simulates `result` (a mapping of `app` onto `topology`) under its own
  /// application trace. The result must carry materialized routes aligned
  /// with commodities_by_value(app) — every Mapper::map result does.
  [[nodiscard]] SimScore score(const CoreGraph& app,
                               const topo::Topology& topology,
                               const MappingResult& result);

  [[nodiscard]] const SimTierOptions& options() const { return options_; }

  /// Cached per-topology network layouts (exposed for tests).
  [[nodiscard]] std::size_t cached_layouts() const { return cache_.size(); }

 private:
  struct Entry {
    std::shared_ptr<const sim::NetworkLayout> layout;
    std::unique_ptr<sim::Simulator> simulator;
    std::uint64_t last_used = 0;  ///< Recency tick for LRU eviction.
  };

  SimTierOptions options_;
  std::map<const topo::Topology*, Entry> cache_;
  std::uint64_t use_tick_ = 0;
};

}  // namespace sunmap::mapping
