#pragma once

#include <map>
#include <memory>

#include "mapping/core_graph.h"
#include "mapping/mapper.h"
#include "sim/simulator.h"

namespace sunmap::mapping {

/// Flit-level simulation verdict on one mapped design, reported alongside
/// the analytical evaluation it validates: the analytical model prices
/// delay as hops + wire latency with no contention, the simulator measures
/// it with wormhole blocking, credit stalls, and allocation conflicts
/// included.
struct SimScore {
  sim::SimStats stats;  ///< Full simulation statistics (trace traffic).
  /// Zero-load pipeline prediction in cycles, traffic-weighted over the
  /// mapping's commodities: F + (S-1)*L per commodity of S switches with
  /// F flits/packet and L-cycle links — what the analytical hop model
  /// implies when contention is free.
  double analytical_latency_cycles = 0.0;
  /// stats.avg_latency_cycles, duplicated for symmetric column naming.
  double simulated_latency_cycles = 0.0;
  /// Relative contention error the analytical model misses:
  /// (simulated - analytical) / simulated; 0 when nothing was delivered.
  [[nodiscard]] double model_error() const {
    return simulated_latency_cycles > 0.0
               ? (simulated_latency_cycles - analytical_latency_cycles) /
                     simulated_latency_cycles
               : 0.0;
  }
};

/// Configuration of the simulator-backed evaluation tier.
struct SimTierOptions {
  /// Engine + windows + buffering. Distance-class VCs default on: finalist
  /// routes include split-traffic and wraparound path sets that deadlock
  /// under a single VC, and a deadlocked score validates nothing.
  sim::SimConfig config;
  /// MB/s -> flits/cycle conversion for trace traffic (matches
  /// sim::TraceTraffic's scaling knob).
  double flits_per_cycle_per_gbps = 0.05;

  SimTierOptions() { config.distance_class_vcs = true; }
};

/// Maps a MapperConfig's sim_* knobs (engine choice, trace scaling) onto
/// the simulation tier's options — the one translation the explorer and the
/// CLI both need.
[[nodiscard]] SimTierOptions sim_tier_options(const MapperConfig& config);

/// Simulator-backed evaluation of mapped designs: binds a MappingResult's
/// per-commodity routes and rates into the flit-level simulator and scores
/// contention-aware delay. The entry point the explorer's finalist tier and
/// the CLI's --sim-validate both use.
///
/// Per-topology network layouts and simulator instances are cached across
/// calls (satellite of the event-engine PR: repeated finalist scoring pays
/// route-table binding only, never network construction), so one evaluator
/// should be reused across a whole report. Not thread-safe; score
/// sequentially.
class SimEvaluator {
 public:
  explicit SimEvaluator(SimTierOptions options = SimTierOptions());

  /// Simulates `result` (a mapping of `app` onto `topology`) under its own
  /// application trace. The result must carry materialized routes aligned
  /// with commodities_by_value(app) — every Mapper::map result does.
  [[nodiscard]] SimScore score(const CoreGraph& app,
                               const topo::Topology& topology,
                               const MappingResult& result);

  [[nodiscard]] const SimTierOptions& options() const { return options_; }

  /// Cached per-topology network layouts (exposed for tests).
  [[nodiscard]] std::size_t cached_layouts() const { return cache_.size(); }

 private:
  struct Entry {
    std::shared_ptr<const sim::NetworkLayout> layout;
    std::unique_ptr<sim::Simulator> simulator;
  };

  SimTierOptions options_;
  std::map<const topo::Topology*, Entry> cache_;
};

}  // namespace sunmap::mapping
