#include "mapping/core_graph.h"

#include <algorithm>
#include <stdexcept>

namespace sunmap::mapping {

CoreGraph::CoreGraph(std::string name) : name_(std::move(name)) {}

int CoreGraph::add_core(std::string name, fplan::BlockShape shape) {
  for (const auto& c : cores_) {
    if (c.name == name) {
      throw std::invalid_argument("CoreGraph: duplicate core name " + name);
    }
  }
  cores_.push_back(Core{std::move(name), shape});
  return graph_.add_node();
}

int CoreGraph::add_core(std::string name, double area_mm2) {
  return add_core(std::move(name), fplan::BlockShape::soft_block(area_mm2));
}

void CoreGraph::add_flow(int src_core, int dst_core, double bandwidth_mbps) {
  if (bandwidth_mbps <= 0.0) {
    throw std::invalid_argument("CoreGraph: bandwidth must be positive");
  }
  if (graph_.has_edge(src_core, dst_core)) {
    throw std::invalid_argument("CoreGraph: duplicate flow");
  }
  graph_.add_edge(src_core, dst_core, bandwidth_mbps);
}

int CoreGraph::core_index(std::string_view name) const {
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i].name == name) return static_cast<int>(i);
  }
  throw std::out_of_range("CoreGraph: no core named " + std::string(name));
}

double CoreGraph::total_core_area_mm2() const {
  double area = 0.0;
  for (const auto& c : cores_) area += c.shape.area_mm2;
  return area;
}

double CoreGraph::core_traffic_mbps(int index) const {
  double total = 0.0;
  for (graph::EdgeId e : graph_.out_edges(index)) {
    total += graph_.edge(e).weight;
  }
  for (graph::EdgeId e : graph_.in_edges(index)) {
    total += graph_.edge(e).weight;
  }
  return total;
}

std::vector<Commodity> commodities_by_value(const CoreGraph& app) {
  std::vector<Commodity> commodities;
  commodities.reserve(static_cast<std::size_t>(app.num_flows()));
  for (const auto& e : app.graph().edges()) {
    commodities.push_back(Commodity{e.src, e.dst, e.weight});
  }
  std::sort(commodities.begin(), commodities.end(),
            [](const Commodity& a, const Commodity& b) {
              if (a.value_mbps != b.value_mbps) {
                return a.value_mbps > b.value_mbps;
              }
              if (a.src_core != b.src_core) return a.src_core < b.src_core;
              return a.dst_core < b.dst_core;
            });
  return commodities;
}

}  // namespace sunmap::mapping
