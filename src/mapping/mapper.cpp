#include "mapping/mapper.h"

#include "mapping/eval_context.h"
#include "mapping/search_strategy.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace sunmap::mapping {

const char* to_string(Objective objective) {
  switch (objective) {
    case Objective::kMinDelay:
      return "min-delay";
    case Objective::kMinArea:
      return "min-area";
    case Objective::kMinPower:
      return "min-power";
    case Objective::kWeighted:
      return "weighted";
  }
  return "?";
}

const char* to_string(SearchKind kind) {
  switch (kind) {
    case SearchKind::kGreedySwaps:
      return "greedy-swaps";
    case SearchKind::kAnnealing:
      return "annealing";
    case SearchKind::kRestartAnnealing:
      return "restart-annealing";
  }
  return "?";
}

const char* to_string(SimTraffic traffic) {
  switch (traffic) {
    case SimTraffic::kTrace:
      return "trace";
    case SimTraffic::kBursty:
      return "bursty";
  }
  return "?";
}

bool better_than(const Evaluation& a, const Evaluation& b) {
  if (a.feasible() != b.feasible()) return a.feasible();
  if (a.feasible()) return a.cost < b.cost;
  // Both infeasible: prefer the one closer to satisfying bandwidth, then
  // the cheaper one.
  if (a.max_link_load_mbps != b.max_link_load_mbps) {
    return a.max_link_load_mbps < b.max_link_load_mbps;
  }
  return a.cost < b.cost;
}

void apply_fault_objective(Evaluation& eval, const MapperConfig& config) {
  eval.worst_fault_cost = 0.0;
  eval.infeasible_fault_scenarios = 0;
  if (eval.fault_outcomes.empty()) return;

  // Admissibility: every path below keeps the aggregate >= the fault-free
  // lower bounds prunable() uses. Degraded routes live on a subgraph of the
  // pristine topology, so degraded hops >= the minimal-hop bound and
  // degraded power (same wire arithmetic) >= the energy bound; the area is
  // fault-invariant; a disconnected scenario contributes penalty x base
  // with penalty >= 1 (validated); and both max() and a weighted mean of
  // terms each >= the bound stay >= the bound.
  const double base_cost = eval.cost;
  double worst = base_cost;
  double worst_scenario = 0.0;
  double weighted_sum = config.faults.fault_free_weight * base_cost;
  double weight_total = config.faults.fault_free_weight;
  for (auto& outcome : eval.fault_outcomes) {
    double cost = 0.0;
    if (!outcome.connected) {
      ++eval.infeasible_fault_scenarios;
      cost = config.faults.infeasible_penalty * base_cost;
    } else {
      switch (config.objective) {
        case Objective::kMinDelay:
          cost = outcome.avg_switch_hops;
          break;
        case Objective::kMinArea:
          cost = eval.design_area_mm2;  // faults do not move the floorplan
          break;
        case Objective::kMinPower:
          cost = outcome.dynamic_power_mw + eval.static_power_mw;
          break;
        case Objective::kWeighted: {
          const auto& w = config.weights;
          cost = w.delay * outcome.avg_switch_hops / w.ref_hops +
                 w.area * eval.design_area_mm2 / w.ref_area_mm2 +
                 w.power * (outcome.dynamic_power_mw + eval.static_power_mw) /
                     w.ref_power_mw;
          break;
        }
      }
    }
    outcome.cost = cost;
    worst_scenario = std::max(worst_scenario, cost);
    worst = std::max(worst, cost);
    weighted_sum += outcome.weight * cost;
    weight_total += outcome.weight;
  }
  eval.worst_fault_cost = worst_scenario;
  if (config.faults.aggregation == fault::Aggregation::kWeighted &&
      weight_total > 0.0) {
    eval.cost = weighted_sum / weight_total;
  } else {
    eval.cost = worst;
  }
}

void MapperConfig::validate() const {
  // Every message carries the offending value: a sweep rejects one design
  // point out of hundreds, and "swap_passes must be >= 0" without the value
  // forces the caller to reconstruct which axis produced it.
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("MapperConfig: " + what);
  };
  const auto num = [](double value) { return std::to_string(value); };
  if (!(link_bandwidth_mbps > 0.0)) {
    fail("link bandwidth must be positive, got " + num(link_bandwidth_mbps));
  }
  if (!(max_area_mm2 > 0.0)) {
    fail("max_area_mm2 must be positive, got " + num(max_area_mm2));
  }
  if (!(max_design_aspect >= 1.0)) {
    fail("max_design_aspect must be >= 1, got " + num(max_design_aspect));
  }
  if (swap_passes < 0) {
    fail("swap_passes must be >= 0, got " + std::to_string(swap_passes));
  }
  if (reroute_passes < 0) {
    fail("reroute_passes must be >= 0, got " + std::to_string(reroute_passes));
  }
  if (split_chunks < 1) {
    fail("split_chunks must be >= 1, got " + std::to_string(split_chunks));
  }
  if (annealing_iterations < 0) {
    fail("annealing_iterations must be >= 0, got " +
         std::to_string(annealing_iterations));
  }
  if (!(annealing_t0 >= 0.0)) {
    fail("annealing_t0 must be >= 0, got " + num(annealing_t0));
  }
  if (!(annealing_cooling > 0.0 && annealing_cooling <= 1.0)) {
    fail("annealing_cooling must be in (0, 1], got " + num(annealing_cooling));
  }
  if (annealing_restarts < 1) {
    fail("annealing_restarts must be >= 1, got " +
         std::to_string(annealing_restarts));
  }
  if (annealing_reheats < 0) {
    fail("annealing_reheats must be >= 0, got " +
         std::to_string(annealing_reheats));
  }
  if (!(annealing_chain_move_prob >= 0.0 && annealing_chain_move_prob <= 1.0)) {
    fail("annealing_chain_move_prob must be in [0, 1], got " +
         num(annealing_chain_move_prob));
  }
  if (num_threads < 1) {
    fail("num_threads must be >= 1, got " + std::to_string(num_threads));
  }
  if (sim_finalists < 0) {
    fail("sim_finalists must be >= 0, got " + std::to_string(sim_finalists));
  }
  if (!(sim_flits_per_cycle_per_gbps > 0.0)) {
    fail("sim_flits_per_cycle_per_gbps must be positive, got " +
         num(sim_flits_per_cycle_per_gbps));
  }
  if (sim_rank && sim_finalists < 1) {
    fail("sim_rank requires sim_finalists >= 1 (the analytical prefilter "
         "that picks the cells to re-rank), got sim_finalists=" +
         std::to_string(sim_finalists));
  }
  if (sim_seed == 0) {
    fail("sim_seed must be >= 1 (0 is reserved as \"not a seed\"), got 0");
  }
  if (!(sim_burst_len >= 1.0)) {
    fail("sim_burst_len must be >= 1 cycle, got " + num(sim_burst_len));
  }
  if (!(sim_burst_duty > 0.0 && sim_burst_duty < 1.0)) {
    fail("sim_burst_duty must be in (0, 1), got " + num(sim_burst_duty));
  }
  if (floorplan.sizing_passes < 0) {
    fail("floorplan sizing_passes must be >= 0, got " +
         std::to_string(floorplan.sizing_passes));
  }
  if (!(floorplan.spacing_mm >= 0.0)) {
    fail("floorplan spacing_mm must be >= 0, got " +
         num(floorplan.spacing_mm));
  }
  if (!(weights.delay >= 0.0 && weights.area >= 0.0 && weights.power >= 0.0)) {
    fail("objective weights must be >= 0, got delay=" + num(weights.delay) +
         " area=" + num(weights.area) + " power=" + num(weights.power));
  }
  if (!(weights.ref_hops > 0.0 && weights.ref_area_mm2 > 0.0 &&
        weights.ref_power_mw > 0.0)) {
    fail("objective weight reference scales must be positive, got ref_hops=" +
         num(weights.ref_hops) + " ref_area_mm2=" + num(weights.ref_area_mm2) +
         " ref_power_mw=" + num(weights.ref_power_mw));
  }
  faults.validate();
}

Mapper::Mapper(MapperConfig config)
    : config_(std::move(config)), library_(config_.tech) {
  config_.validate();
}

EvalContext Mapper::make_context(const CoreGraph& app,
                                 const topo::Topology& topology) const {
  return EvalContext(app, topology, config_, library_);
}

Evaluation Mapper::evaluate(const CoreGraph& app,
                            const topo::Topology& topology,
                            const std::vector<int>& core_to_slot) const {
  if (static_cast<int>(core_to_slot.size()) != app.num_cores()) {
    throw std::invalid_argument("Mapper::evaluate: mapping size mismatch");
  }
  std::vector<int> slot_to_core(static_cast<std::size_t>(topology.num_slots()),
                                -1);
  for (int core = 0; core < app.num_cores(); ++core) {
    const int slot = core_to_slot[static_cast<std::size_t>(core)];
    if (slot < 0 || slot >= topology.num_slots()) {
      throw std::invalid_argument("Mapper::evaluate: slot out of range");
    }
    if (slot_to_core[static_cast<std::size_t>(slot)] != -1) {
      throw std::invalid_argument("Mapper::evaluate: mapping not injective");
    }
    slot_to_core[static_cast<std::size_t>(slot)] = core;
  }

  Evaluation eval;

  // ---- Fig 5 steps 2-6: route commodities in decreasing value order. ----
  const auto commodities = commodities_by_value(app);
  route::RoutingEngine::Options engine_options;
  engine_options.split_chunks = config_.split_chunks;
  engine_options.capacity_hint_mbps = config_.link_bandwidth_mbps;
  route::RoutingEngine engine(topology, config_.routing, engine_options);
  route::LoadMap loads(topology.switch_graph().num_edges());
  eval.routes.reserve(commodities.size());

  for (const auto& commodity : commodities) {
    const int src_slot =
        core_to_slot[static_cast<std::size_t>(commodity.src_core)];
    const int dst_slot =
        core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
    route::RouteSet& routes = eval.routes.emplace_back();
    engine.route(src_slot, dst_slot, commodity.value_mbps, loads, routes);
    loads.add_route(routes, commodity.value_mbps);
  }

  // Rip-up-and-reroute refinement for the load-adaptive routing functions:
  // re-routing against the traffic that stays spreads the heavy flows far
  // better than one greedy sequential pass.
  const bool adaptive = config_.routing == route::RoutingKind::kMinPath ||
                        config_.routing == route::RoutingKind::kSplitAll;
  if (adaptive) {
    for (int pass = 0; pass < config_.reroute_passes; ++pass) {
      for (std::size_t k = 0; k < commodities.size(); ++k) {
        const auto& commodity = commodities[k];
        const int src_slot =
            core_to_slot[static_cast<std::size_t>(commodity.src_core)];
        const int dst_slot =
            core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
        loads.remove_route(eval.routes[k], commodity.value_mbps);
        engine.route(src_slot, dst_slot, commodity.value_mbps, loads,
                     eval.routes[k]);
        loads.add_route(eval.routes[k], commodity.value_mbps);
      }
    }
  }

  double weighted_hops = 0.0;
  double total_value = 0.0;
  for (std::size_t k = 0; k < commodities.size(); ++k) {
    weighted_hops +=
        commodities[k].value_mbps * eval.routes[k].weighted_switch_hops();
    total_value += commodities[k].value_mbps;
  }
  eval.avg_switch_hops = total_value > 0.0 ? weighted_hops / total_value : 0.0;
  eval.max_link_load_mbps = loads.max_load();
  eval.link_loads = loads.values();
  eval.bandwidth_feasible =
      eval.max_link_load_mbps <= config_.link_bandwidth_mbps + 1e-9;

  // ---- Fig 5 step 7: floorplan and area/power estimation. ----
  std::vector<std::optional<fplan::BlockShape>> core_shapes(
      static_cast<std::size_t>(topology.num_slots()));
  for (int slot = 0; slot < topology.num_slots(); ++slot) {
    const int core = slot_to_core[static_cast<std::size_t>(slot)];
    if (core >= 0) core_shapes[static_cast<std::size_t>(slot)] =
        app.core(core).shape;
  }
  std::vector<fplan::BlockShape> switch_shapes;
  switch_shapes.reserve(static_cast<std::size_t>(topology.num_switches()));
  eval.switch_area_mm2 = 0.0;
  eval.static_power_mw = 0.0;
  for (graph::NodeId sw = 0; sw < topology.num_switches(); ++sw) {
    const auto& entry = library_.lookup(topology.switch_in_ports(sw),
                                        topology.switch_out_ports(sw));
    eval.switch_area_mm2 += entry.area_mm2;
    eval.static_power_mw += entry.static_power_mw;
    auto shape = fplan::BlockShape::soft_block(entry.area_mm2);
    shape.min_aspect = 0.5;
    shape.max_aspect = 2.0;
    switch_shapes.push_back(shape);
  }

  fplan::Floorplanner planner(config_.floorplan);
  eval.floorplan = planner.place(topology.relative_placement(), core_shapes,
                                 switch_shapes);
  eval.design_area_mm2 = eval.floorplan.area_mm2();
  eval.area_feasible =
      eval.design_area_mm2 <= config_.max_area_mm2 + 1e-9 &&
      eval.floorplan.aspect() <= config_.max_design_aspect + 1e-9;

  // Power: every commodity contributes rate x (switch energies + link wire
  // energies) along each of its weighted paths, including the core-to-switch
  // attachment links whose lengths come from the floorplan.
  const auto& g = topology.switch_graph();
  const double link_e = library_.link_energy_pj_per_bit_mm();
  const double wire_ps_per_mm = config_.tech.link_delay_ps_per_mm;
  const double cycle_ps = config_.tech.clock_period_ps;
  using Kind = fplan::PlacedBlock::Kind;
  double power_mw = 0.0;
  double weighted_latency_ps = 0.0;
  for (std::size_t k = 0; k < commodities.size(); ++k) {
    const auto& commodity = commodities[k];
    const int src_slot =
        core_to_slot[static_cast<std::size_t>(commodity.src_core)];
    const int dst_slot =
        core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
    double energy_pj = 0.0;   // fraction-weighted energy per bit
    double latency_ps = 0.0;  // fraction-weighted head latency
    for (const auto& wp : eval.routes[k].paths) {
      double path_pj = 0.0;
      double wire_mm = 0.0;
      for (graph::NodeId sw : wp.path.nodes) {
        path_pj += library_
                       .lookup(topology.switch_in_ports(sw),
                               topology.switch_out_ports(sw))
                       .energy_pj_per_bit;
      }
      for (graph::EdgeId e : wp.path.edges) {
        wire_mm += eval.floorplan.center_distance_mm(
            Kind::kSwitch, g.edge(e).src, Kind::kSwitch, g.edge(e).dst);
      }
      wire_mm += eval.floorplan.center_distance_mm(
          Kind::kCore, src_slot, Kind::kSwitch,
          topology.ingress_switch(src_slot));
      wire_mm += eval.floorplan.center_distance_mm(
          Kind::kCore, dst_slot, Kind::kSwitch,
          topology.egress_switch(dst_slot));
      path_pj += link_e * wire_mm;
      energy_pj += wp.fraction * path_pj;
      // One pipeline cycle per switch plus repeated-wire delay.
      latency_ps += wp.fraction *
                    (static_cast<double>(wp.path.nodes.size()) * cycle_ps +
                     wire_mm * wire_ps_per_mm);
    }
    // MB/s * pJ/bit -> mW (1e6 * 8 * 1e-12 * 1e3).
    power_mw += commodity.value_mbps * 8e-3 * energy_pj;
    weighted_latency_ps += commodity.value_mbps * latency_ps;
  }
  eval.dynamic_power_mw = power_mw;
  eval.design_power_mw = eval.dynamic_power_mw + eval.static_power_mw;
  eval.avg_path_latency_ns =
      total_value > 0.0 ? weighted_latency_ps / total_value / 1000.0 : 0.0;

  // ---- Degraded modes: re-route every commodity under each fault scenario.
  // This is the from-scratch reference of the fault evaluation: scenarios
  // materialized per call, one masked BFS per (scenario, commodity). The
  // cached EvalContext path prebuilds the BFS tables but extracts paths
  // through the same fault:: code, so both are bit-identical.
  const auto fault_scenarios =
      fault::materialize(config_.faults.spec, topology);
  if (!fault_scenarios.empty()) {
    fault::ScenarioMask mask;
    fault::MaskedBfs bfs;
    graph::Path fpath;
    std::vector<double> fault_loads;
    eval.fault_outcomes.resize(fault_scenarios.size());
    for (std::size_t s = 0; s < fault_scenarios.size(); ++s) {
      fault::make_mask(g, fault_scenarios[s], mask);
      auto& outcome = eval.fault_outcomes[s];
      outcome = Evaluation::FaultScenarioOutcome{};
      outcome.weight = fault_scenarios[s].weight;
      fault_loads.assign(static_cast<std::size_t>(g.num_edges()), 0.0);
      double fault_hops = 0.0;
      double fault_power_mw = 0.0;
      for (const auto& commodity : commodities) {
        const int src_slot =
            core_to_slot[static_cast<std::size_t>(commodity.src_core)];
        const int dst_slot =
            core_to_slot[static_cast<std::size_t>(commodity.dst_core)];
        const graph::NodeId ingress = topology.ingress_switch(src_slot);
        const graph::NodeId egress = topology.egress_switch(dst_slot);
        fault::masked_bfs(g, ingress, mask, bfs);
        if (!fault::extract_path(g, bfs, ingress, egress, fpath)) {
          // Disconnected (or a dead attachment switch): the scenario is
          // infeasible — documented graceful degradation, never a throw.
          outcome.connected = false;
          continue;
        }
        fault_hops += commodity.value_mbps *
                      static_cast<double>(fpath.nodes.size());
        double path_pj = 0.0;
        double wire_mm = 0.0;
        for (const graph::NodeId sw : fpath.nodes) {
          path_pj += library_
                         .lookup(topology.switch_in_ports(sw),
                                 topology.switch_out_ports(sw))
                         .energy_pj_per_bit;
        }
        for (const graph::EdgeId e : fpath.edges) {
          wire_mm += eval.floorplan.center_distance_mm(
              Kind::kSwitch, g.edge(e).src, Kind::kSwitch, g.edge(e).dst);
          fault_loads[static_cast<std::size_t>(e)] += commodity.value_mbps;
        }
        wire_mm += eval.floorplan.center_distance_mm(Kind::kCore, src_slot,
                                                     Kind::kSwitch, ingress);
        wire_mm += eval.floorplan.center_distance_mm(Kind::kCore, dst_slot,
                                                     Kind::kSwitch, egress);
        path_pj += link_e * wire_mm;
        fault_power_mw += commodity.value_mbps * 8e-3 * path_pj;
      }
      outcome.avg_switch_hops =
          total_value > 0.0 ? fault_hops / total_value : 0.0;
      outcome.dynamic_power_mw = fault_power_mw;
      outcome.max_link_load_mbps =
          fault_loads.empty()
              ? 0.0
              : *std::max_element(fault_loads.begin(), fault_loads.end());
    }
  }

  // ---- Fig 5 step 8: objective cost. ----
  switch (config_.objective) {
    case Objective::kMinDelay:
      eval.cost = eval.avg_switch_hops;
      break;
    case Objective::kMinArea:
      eval.cost = eval.design_area_mm2;
      break;
    case Objective::kMinPower:
      eval.cost = eval.design_power_mw;
      break;
    case Objective::kWeighted: {
      const auto& w = config_.weights;
      eval.cost = w.delay * eval.avg_switch_hops / w.ref_hops +
                  w.area * eval.design_area_mm2 / w.ref_area_mm2 +
                  w.power * eval.design_power_mw / w.ref_power_mw;
      break;
    }
  }
  apply_fault_objective(eval, config_);
  return eval;
}

std::vector<int> Mapper::greedy_initial_mapping(
    const CoreGraph& app, const topo::Topology& topology) const {
  const int num_cores = app.num_cores();
  const int num_slots = topology.num_slots();
  std::vector<int> core_to_slot(static_cast<std::size_t>(num_cores), -1);
  std::vector<bool> slot_used(static_cast<std::size_t>(num_slots), false);
  std::vector<bool> placed(static_cast<std::size_t>(num_cores), false);

  // Core with the maximum communication goes first...
  int first_core = 0;
  for (int c = 1; c < num_cores; ++c) {
    if (app.core_traffic_mbps(c) > app.core_traffic_mbps(first_core)) {
      first_core = c;
    }
  }
  // ...onto the slot whose ingress switch has the most neighbours.
  int first_slot = 0;
  for (int s = 1; s < num_slots; ++s) {
    if (topology.switch_graph().degree(topology.ingress_switch(s)) >
        topology.switch_graph().degree(topology.ingress_switch(first_slot))) {
      first_slot = s;
    }
  }
  core_to_slot[static_cast<std::size_t>(first_core)] = first_slot;
  slot_used[static_cast<std::size_t>(first_slot)] = true;
  placed[static_cast<std::size_t>(first_core)] = true;

  const auto& cg = app.graph();
  for (int step = 1; step < num_cores; ++step) {
    // Unplaced core communicating the most with the placed set.
    int best_core = -1;
    double best_comm = -1.0;
    for (int c = 0; c < num_cores; ++c) {
      if (placed[static_cast<std::size_t>(c)]) continue;
      double comm = 0.0;
      for (graph::EdgeId e : cg.out_edges(c)) {
        if (placed[static_cast<std::size_t>(cg.edge(e).dst)]) {
          comm += cg.edge(e).weight;
        }
      }
      for (graph::EdgeId e : cg.in_edges(c)) {
        if (placed[static_cast<std::size_t>(cg.edge(e).src)]) {
          comm += cg.edge(e).weight;
        }
      }
      if (comm > best_comm) {
        best_comm = comm;
        best_core = c;
      }
    }

    // Slot minimising communication-weighted hop distance to placed cores.
    int best_slot = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int s = 0; s < num_slots; ++s) {
      if (slot_used[static_cast<std::size_t>(s)]) continue;
      double cost = 0.0;
      for (graph::EdgeId e : cg.out_edges(best_core)) {
        const int other = cg.edge(e).dst;
        if (!placed[static_cast<std::size_t>(other)]) continue;
        cost += cg.edge(e).weight *
                topology.min_switch_hops(
                    s, core_to_slot[static_cast<std::size_t>(other)]);
      }
      for (graph::EdgeId e : cg.in_edges(best_core)) {
        const int other = cg.edge(e).src;
        if (!placed[static_cast<std::size_t>(other)]) continue;
        cost += cg.edge(e).weight *
                topology.min_switch_hops(
                    core_to_slot[static_cast<std::size_t>(other)], s);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_slot = s;
      }
    }

    core_to_slot[static_cast<std::size_t>(best_core)] = best_slot;
    slot_used[static_cast<std::size_t>(best_slot)] = true;
    placed[static_cast<std::size_t>(best_core)] = true;
  }
  return core_to_slot;
}

MappingResult Mapper::map(const CoreGraph& app,
                          const topo::Topology& topology) const {
  const EvalContext ctx = make_context(app, topology);
  EvalScratch scratch;
  return map(ctx, scratch);
}

MappingResult Mapper::map(const EvalContext& ctx) const {
  EvalScratch scratch;
  return map(ctx, scratch);
}

MappingResult Mapper::map(const EvalContext& ctx, EvalScratch& scratch) const {
  const CoreGraph& app = ctx.app();
  const topo::Topology& topology = ctx.topology();
  // The context's config copy governs the whole run — evaluation *and*
  // search — so a context built from a differently-configured mapper cannot
  // end up half-evaluated under one config and half-searched under another
  // (pruning and explored-mapping collection must agree, for one).
  const MapperConfig& cfg = ctx.config();
  if (app.num_cores() > topology.num_slots()) {
    throw std::invalid_argument(
        "Mapper: application has more cores than the topology has slots");
  }
  if (app.num_cores() < 2) {
    throw std::invalid_argument("Mapper: need at least two cores");
  }

  MappingResult result;
  result.core_to_slot = greedy_initial_mapping(app, topology);
  result.eval = ctx.evaluate(result.core_to_slot, scratch);
  result.evaluated_mappings = 1;
  if (cfg.collect_explored) {
    result.explored_area_power.emplace_back(result.eval.design_area_mm2,
                                            result.eval.design_power_mw);
  }

  make_search_strategy(cfg.search)->improve(ctx, result, scratch);

  // The search loops keep incumbent evaluations light (no per-commodity
  // routes, link loads, or floorplan geometry); materialize the winning
  // mapping's full Evaluation once at the end. All three emptiness checks
  // matter: an application with no flows still gets its per-edge
  // (all-zero) link loads, and a flowless app on an edgeless topology is
  // only caught by its missing floorplan blocks.
  if (result.eval.routes.size() != ctx.commodities().size() ||
      result.eval.link_loads.size() !=
          static_cast<std::size_t>(topology.switch_graph().num_edges()) ||
      result.eval.floorplan.blocks().empty()) {
    result.eval = ctx.evaluate(result.core_to_slot, scratch);
  }

  result.slot_to_core.assign(static_cast<std::size_t>(topology.num_slots()),
                             -1);
  for (int c = 0; c < app.num_cores(); ++c) {
    result.slot_to_core[static_cast<std::size_t>(
        result.core_to_slot[static_cast<std::size_t>(c)])] = c;
  }
  return result;
}

}  // namespace sunmap::mapping
