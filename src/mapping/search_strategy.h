#pragma once

#include <memory>

#include "mapping/mapper.h"

namespace sunmap::mapping {

class EvalContext;
struct EvalScratch;

/// A pluggable mapping-search strategy: given an evaluation context and a
/// MappingResult primed with the initial mapping and its evaluation,
/// improve() explores the mapping space and leaves the best mapping found in
/// `result` (core_to_slot + eval, plus the evaluated/pruned counters and the
/// explored-mapping trace when the context's config collects it).
///
/// Strategies are stateless: every knob is read from the context's bound
/// MapperConfig, so one strategy instance can serve any number of searches
/// and a context rebind() is all a design-space sweep needs to switch
/// schedules. Implementations must be deterministic for a fixed config —
/// including config.num_threads > 1, where any thread count must return the
/// bit-identical result of the sequential run.
///
/// Candidate speculation goes through the shared transactional protocol
/// (mapping::DeltaTxn, delta_txn.h): begin_moves (or the begin_swap sugar)
/// -> prunable/evaluate -> commit | rollback. The transaction keeps the
/// mapping arrays, the scratch's incremental floorplan and routing
/// sessions, and the memo caches in lock step, so a strategy that opts in
/// gets incremental floorplan and routing re-solves on both accepted and
/// rejected candidates for free — see the DeltaTxn docs for how a new
/// strategy adopts it.
class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;

  /// Stable strategy name, matching to_string(SearchKind).
  [[nodiscard]] virtual const char* name() const = 0;

  /// Improves result.core_to_slot / result.eval in place. On entry `result`
  /// holds the initial mapping and its (materialized) evaluation; on exit it
  /// holds the best mapping found, whose evaluation may be lightweight
  /// (Mapper::map() re-materializes the winner). `scratch` is the caller's
  /// per-thread evaluation scratch — it carries the incremental floorplan
  /// session, so sequential search paths must evaluate through it; parallel
  /// paths give each extra worker its own scratch.
  virtual void improve(const EvalContext& ctx, MappingResult& result,
                       EvalScratch& scratch) const = 0;
};

/// Fig 5 steps 9-10: hill climbing over all pairwise slot swaps with
/// two-phase (bound-pruned) candidate evaluation; parallel speculative
/// neighborhood search when the config asks for worker threads.
class GreedySwapSearch final : public SearchStrategy {
 public:
  [[nodiscard]] const char* name() const override { return "greedy-swaps"; }
  void improve(const EvalContext& ctx, MappingResult& result,
               EvalScratch& scratch) const override;
};

/// Single-chain simulated annealing: random pairwise swaps accepted with the
/// Metropolis criterion under geometric cooling (optionally re-heated), the
/// best feasible-ranked mapping seen kept.
class AnnealingSearch final : public SearchStrategy {
 public:
  [[nodiscard]] const char* name() const override { return "annealing"; }
  void improve(const EvalContext& ctx, MappingResult& result,
               EvalScratch& scratch) const override;
};

/// Multi-restart simulated annealing: config.annealing_restarts independent
/// chains (seed annealing_seed + r), each starting from the initial mapping
/// and running an equal share of the total iteration budget under a
/// compressed cooling schedule, best-of-restarts kept. Restarts run on
/// config.num_threads workers and are committed in seed order, so any
/// thread count produces the bit-identical result.
class RestartAnnealingSearch final : public SearchStrategy {
 public:
  [[nodiscard]] const char* name() const override {
    return "restart-annealing";
  }
  void improve(const EvalContext& ctx, MappingResult& result,
               EvalScratch& scratch) const override;
};

/// The strategy implementing config.search. The returned strategy is
/// stateless and may outlive `config`.
[[nodiscard]] std::unique_ptr<SearchStrategy> make_search_strategy(
    SearchKind kind);

}  // namespace sunmap::mapping
