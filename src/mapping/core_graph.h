#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "fplan/floorplan.h"
#include "graph/graph.h"

namespace sunmap::mapping {

/// A core (vertex of the core graph, Definition 1) together with its
/// physical block shape. The paper assumes "the area-power values of the
/// cores are an input to our tool"; the shape carries that input for the
/// floorplanner (hard blocks for memories, soft blocks with an aspect-ratio
/// range for synthesised logic).
struct Core {
  std::string name;
  fplan::BlockShape shape;
};

/// The core graph G(V, E) of Definition 1: a directed graph whose vertices
/// are cores and whose edge weights comm_{i,j} are the communication
/// bandwidth in MB/s from core i to core j.
class CoreGraph {
 public:
  explicit CoreGraph(std::string name);

  /// Adds a core with an explicit block shape; returns its index.
  int add_core(std::string name, fplan::BlockShape shape);
  /// Adds a soft-block core with the given area.
  int add_core(std::string name, double area_mm2);

  /// Adds the directed communication edge e_{i,j} with bandwidth comm_{i,j}
  /// (MB/s). Throws if an edge between the pair already exists in this
  /// direction or the bandwidth is not positive.
  void add_flow(int src_core, int dst_core, double bandwidth_mbps);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const graph::DirectedGraph& graph() const { return graph_; }
  [[nodiscard]] int num_cores() const { return graph_.num_nodes(); }
  [[nodiscard]] int num_flows() const { return graph_.num_edges(); }

  [[nodiscard]] const Core& core(int index) const {
    return cores_.at(static_cast<std::size_t>(index));
  }
  /// Index of the core with the given name; throws std::out_of_range if
  /// absent.
  [[nodiscard]] int core_index(std::string_view name) const;

  /// Total application bandwidth (sum of all comm_{i,j}).
  [[nodiscard]] double total_bandwidth_mbps() const {
    return graph_.total_weight();
  }
  /// Sum of core block areas.
  [[nodiscard]] double total_core_area_mm2() const;

  /// Total bandwidth entering plus leaving one core — the "amount of
  /// communication" ordering used by the greedy initial mapping.
  [[nodiscard]] double core_traffic_mbps(int index) const;

 private:
  std::string name_;
  graph::DirectedGraph graph_;
  std::vector<Core> cores_;
};

/// Commodity d_k (paper equation 2): one core-graph edge treated as a
/// single-commodity flow with value vl(d_k) = comm_{i,j}.
struct Commodity {
  int src_core = 0;
  int dst_core = 0;
  double value_mbps = 0.0;
};

/// All commodities of the application sorted by decreasing value — the
/// routing order of Fig 5 step 2. Ties break by (src, dst) for determinism.
std::vector<Commodity> commodities_by_value(const CoreGraph& app);

}  // namespace sunmap::mapping
