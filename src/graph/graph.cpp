#include "graph/graph.h"

namespace sunmap::graph {

DirectedGraph::DirectedGraph(int num_nodes) {
  if (num_nodes < 0) {
    throw std::invalid_argument("DirectedGraph: negative node count");
  }
  out_.resize(static_cast<std::size_t>(num_nodes));
  in_.resize(static_cast<std::size_t>(num_nodes));
}

NodeId DirectedGraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

EdgeId DirectedGraph::add_edge(NodeId u, NodeId v, double weight) {
  check_node(u);
  check_node(v);
  if (u == v) {
    throw std::invalid_argument("DirectedGraph: self-loops are not allowed");
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, weight});
  out_[static_cast<std::size_t>(u)].push_back(id);
  in_[static_cast<std::size_t>(v)].push_back(id);
  return id;
}

std::optional<EdgeId> DirectedGraph::find_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  for (EdgeId e : out_[static_cast<std::size_t>(u)]) {
    if (edges_[static_cast<std::size_t>(e)].dst == v) return e;
  }
  return std::nullopt;
}

double DirectedGraph::total_weight() const {
  double sum = 0.0;
  for (const Edge& e : edges_) sum += e.weight;
  return sum;
}

void DirectedGraph::check_node(NodeId u) const {
  if (u < 0 || u >= num_nodes()) {
    throw std::out_of_range("DirectedGraph: node id out of range");
  }
}

}  // namespace sunmap::graph
