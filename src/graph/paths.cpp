#include "graph/paths.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <utility>

namespace sunmap::graph {

namespace {

bool admitted(const NodeFilterFn& filter, NodeId u) {
  return !filter || filter(u);
}

std::vector<int> bfs_impl(const DirectedGraph& g, NodeId start, bool reverse,
                          const NodeFilterFn& filter) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  if (!admitted(filter, start)) return dist;
  std::deque<NodeId> frontier;
  dist[static_cast<std::size_t>(start)] = 0;
  frontier.push_back(start);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const auto edges = reverse ? g.in_edges(u) : g.out_edges(u);
    for (EdgeId e : edges) {
      const NodeId v = reverse ? g.edge(e).src : g.edge(e).dst;
      if (!admitted(filter, v)) continue;
      if (dist[static_cast<std::size_t>(v)] != -1) continue;
      dist[static_cast<std::size_t>(v)] =
          dist[static_cast<std::size_t>(u)] + 1;
      frontier.push_back(v);
    }
  }
  return dist;
}

}  // namespace

namespace detail {

DijkstraWorkspace& dijkstra_workspace() {
  static thread_local DijkstraWorkspace ws;
  return ws;
}

}  // namespace detail

std::optional<Path> shortest_path(const DirectedGraph& g, NodeId src,
                                  NodeId dst, const EdgeCostFn& cost,
                                  const NodeFilterFn& filter) {
  if (!filter) {
    return shortest_path_with(g, src, dst, cost, AdmitAll{});
  }
  return shortest_path_with(g, src, dst, cost,
                            [&](NodeId u) { return filter(u); });
}

std::vector<int> bfs_distances(const DirectedGraph& g, NodeId src,
                               const NodeFilterFn& filter) {
  return bfs_impl(g, src, /*reverse=*/false, filter);
}

std::vector<int> bfs_distances_to(const DirectedGraph& g, NodeId dst,
                                  const NodeFilterFn& filter) {
  return bfs_impl(g, dst, /*reverse=*/true, filter);
}

int hop_distance(const DirectedGraph& g, NodeId src, NodeId dst) {
  return bfs_distances(g, src)[static_cast<std::size_t>(dst)];
}

std::vector<std::vector<int>> all_pairs_hops(const DirectedGraph& g) {
  std::vector<std::vector<int>> dist;
  dist.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    dist.push_back(bfs_distances(g, u));
  }
  return dist;
}

bool strongly_connected(const DirectedGraph& g) {
  if (g.num_nodes() == 0) return true;
  const auto fwd = bfs_distances(g, 0);
  const auto bwd = bfs_distances_to(g, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (fwd[static_cast<std::size_t>(u)] == -1 ||
        bwd[static_cast<std::size_t>(u)] == -1) {
      return false;
    }
  }
  return true;
}

std::vector<EdgeId> min_path_dag(const DirectedGraph& g, NodeId src,
                                 NodeId dst, const NodeFilterFn& filter) {
  std::vector<EdgeId> dag;
  const auto from_src = bfs_impl(g, src, /*reverse=*/false, filter);
  const auto to_dst = bfs_impl(g, dst, /*reverse=*/true, filter);
  const int total = from_src[static_cast<std::size_t>(dst)];
  if (total == -1) return dag;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (!admitted(filter, edge.src) || !admitted(filter, edge.dst)) continue;
    const int du = from_src[static_cast<std::size_t>(edge.src)];
    const int dv = to_dst[static_cast<std::size_t>(edge.dst)];
    if (du != -1 && dv != -1 && du + 1 + dv == total) dag.push_back(e);
  }
  return dag;
}

std::vector<NodeId> min_path_nodes(const DirectedGraph& g, NodeId src,
                                   NodeId dst) {
  std::vector<NodeId> nodes;
  const auto from_src = bfs_distances(g, src);
  const auto to_dst = bfs_distances_to(g, dst);
  const int total = from_src[static_cast<std::size_t>(dst)];
  if (total == -1) return nodes;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const int du = from_src[static_cast<std::size_t>(u)];
    const int dv = to_dst[static_cast<std::size_t>(u)];
    if (du != -1 && dv != -1 && du + dv == total) nodes.push_back(u);
  }
  return nodes;
}

std::int64_t count_min_paths(const DirectedGraph& g, NodeId src, NodeId dst,
                             std::int64_t cap) {
  if (src == dst) return 1;
  const auto from_src = bfs_distances(g, src);
  const auto to_dst = bfs_distances_to(g, dst);
  const int total = from_src[static_cast<std::size_t>(dst)];
  if (total == -1) return 0;

  // Count paths by dynamic programming over nodes sorted by distance from
  // src, following only min-path DAG edges.
  std::vector<NodeId> order;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const int du = from_src[static_cast<std::size_t>(u)];
    const int dv = to_dst[static_cast<std::size_t>(u)];
    if (du != -1 && dv != -1 && du + dv == total) order.push_back(u);
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return from_src[static_cast<std::size_t>(a)] <
           from_src[static_cast<std::size_t>(b)];
  });

  std::vector<std::int64_t> count(static_cast<std::size_t>(g.num_nodes()), 0);
  count[static_cast<std::size_t>(src)] = 1;
  for (NodeId u : order) {
    const std::int64_t cu = count[static_cast<std::size_t>(u)];
    if (cu == 0) continue;
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.edge(e).dst;
      const int du = from_src[static_cast<std::size_t>(u)];
      const int dv = to_dst[static_cast<std::size_t>(v)];
      if (dv == -1) continue;
      if (du + 1 + dv != total) continue;
      auto& cv = count[static_cast<std::size_t>(v)];
      cv = std::min<std::int64_t>(cap, cv + cu);
    }
  }
  return count[static_cast<std::size_t>(dst)];
}

}  // namespace sunmap::graph
