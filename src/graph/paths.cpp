#include "graph/paths.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <utility>

namespace sunmap::graph {

namespace {

bool admitted(const NodeFilterFn& filter, NodeId u) {
  return !filter || filter(u);
}

std::vector<int> bfs_impl(const DirectedGraph& g, NodeId start, bool reverse,
                          const NodeFilterFn& filter) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  if (!admitted(filter, start)) return dist;
  std::deque<NodeId> frontier;
  dist[static_cast<std::size_t>(start)] = 0;
  frontier.push_back(start);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const auto edges = reverse ? g.in_edges(u) : g.out_edges(u);
    for (EdgeId e : edges) {
      const NodeId v = reverse ? g.edge(e).src : g.edge(e).dst;
      if (!admitted(filter, v)) continue;
      if (dist[static_cast<std::size_t>(v)] != -1) continue;
      dist[static_cast<std::size_t>(v)] =
          dist[static_cast<std::size_t>(u)] + 1;
      frontier.push_back(v);
    }
  }
  return dist;
}

}  // namespace

std::optional<Path> shortest_path(const DirectedGraph& g, NodeId src,
                                  NodeId dst, const EdgeCostFn& cost,
                                  const NodeFilterFn& filter) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (src < 0 || dst < 0 || src >= g.num_nodes() || dst >= g.num_nodes()) {
    throw std::out_of_range("shortest_path: endpoint out of range");
  }
  if (!admitted(filter, src) || !admitted(filter, dst)) return std::nullopt;

  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Reusable per-thread workspace: the mapping search calls this function
  // hundreds of thousands of times over small graphs, where the per-call
  // vector allocations would dominate the relaxations themselves. The heap
  // is driven with push_heap/pop_heap under the same comparator that
  // std::priority_queue uses, so the settle order — and therefore the
  // tie-breaking among equal-cost paths — is unchanged.
  using Item = std::pair<double, NodeId>;
  struct Workspace {
    std::vector<double> dist;
    std::vector<EdgeId> via;
    std::vector<char> done;
    std::vector<Item> heap;
  };
  static thread_local Workspace ws;
  ws.dist.assign(n, kInf);
  ws.via.assign(n, kInvalidEdge);
  ws.done.assign(n, 0);
  ws.heap.clear();

  auto& dist = ws.dist;
  auto& via = ws.via;
  auto& done = ws.done;
  auto& heap = ws.heap;

  dist[static_cast<std::size_t>(src)] = 0.0;
  heap.emplace_back(0.0, src);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const auto [d, u] = heap.back();
    heap.pop_back();
    if (done[static_cast<std::size_t>(u)] != 0) continue;
    done[static_cast<std::size_t>(u)] = 1;
    if (u == dst) break;
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.edge(e).dst;
      if (!admitted(filter, v) || done[static_cast<std::size_t>(v)] != 0) {
        continue;
      }
      const double w = cost(e);
      if (w < 0.0) {
        throw std::invalid_argument("shortest_path: negative edge cost");
      }
      const double nd = d + w;
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        via[static_cast<std::size_t>(v)] = e;
        heap.emplace_back(nd, v);
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
      }
    }
  }

  if (dist[static_cast<std::size_t>(dst)] == kInf) return std::nullopt;

  Path path;
  path.cost = dist[static_cast<std::size_t>(dst)];
  NodeId cur = dst;
  while (cur != src) {
    const EdgeId e = via[static_cast<std::size_t>(cur)];
    path.edges.push_back(e);
    path.nodes.push_back(cur);
    cur = g.edge(e).src;
  }
  path.nodes.push_back(src);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

std::vector<int> bfs_distances(const DirectedGraph& g, NodeId src,
                               const NodeFilterFn& filter) {
  return bfs_impl(g, src, /*reverse=*/false, filter);
}

std::vector<int> bfs_distances_to(const DirectedGraph& g, NodeId dst,
                                  const NodeFilterFn& filter) {
  return bfs_impl(g, dst, /*reverse=*/true, filter);
}

int hop_distance(const DirectedGraph& g, NodeId src, NodeId dst) {
  return bfs_distances(g, src)[static_cast<std::size_t>(dst)];
}

std::vector<std::vector<int>> all_pairs_hops(const DirectedGraph& g) {
  std::vector<std::vector<int>> dist;
  dist.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    dist.push_back(bfs_distances(g, u));
  }
  return dist;
}

bool strongly_connected(const DirectedGraph& g) {
  if (g.num_nodes() == 0) return true;
  const auto fwd = bfs_distances(g, 0);
  const auto bwd = bfs_distances_to(g, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (fwd[static_cast<std::size_t>(u)] == -1 ||
        bwd[static_cast<std::size_t>(u)] == -1) {
      return false;
    }
  }
  return true;
}

std::vector<EdgeId> min_path_dag(const DirectedGraph& g, NodeId src,
                                 NodeId dst, const NodeFilterFn& filter) {
  std::vector<EdgeId> dag;
  const auto from_src = bfs_impl(g, src, /*reverse=*/false, filter);
  const auto to_dst = bfs_impl(g, dst, /*reverse=*/true, filter);
  const int total = from_src[static_cast<std::size_t>(dst)];
  if (total == -1) return dag;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    if (!admitted(filter, edge.src) || !admitted(filter, edge.dst)) continue;
    const int du = from_src[static_cast<std::size_t>(edge.src)];
    const int dv = to_dst[static_cast<std::size_t>(edge.dst)];
    if (du != -1 && dv != -1 && du + 1 + dv == total) dag.push_back(e);
  }
  return dag;
}

std::vector<NodeId> min_path_nodes(const DirectedGraph& g, NodeId src,
                                   NodeId dst) {
  std::vector<NodeId> nodes;
  const auto from_src = bfs_distances(g, src);
  const auto to_dst = bfs_distances_to(g, dst);
  const int total = from_src[static_cast<std::size_t>(dst)];
  if (total == -1) return nodes;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const int du = from_src[static_cast<std::size_t>(u)];
    const int dv = to_dst[static_cast<std::size_t>(u)];
    if (du != -1 && dv != -1 && du + dv == total) nodes.push_back(u);
  }
  return nodes;
}

std::int64_t count_min_paths(const DirectedGraph& g, NodeId src, NodeId dst,
                             std::int64_t cap) {
  if (src == dst) return 1;
  const auto from_src = bfs_distances(g, src);
  const auto to_dst = bfs_distances_to(g, dst);
  const int total = from_src[static_cast<std::size_t>(dst)];
  if (total == -1) return 0;

  // Count paths by dynamic programming over nodes sorted by distance from
  // src, following only min-path DAG edges.
  std::vector<NodeId> order;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const int du = from_src[static_cast<std::size_t>(u)];
    const int dv = to_dst[static_cast<std::size_t>(u)];
    if (du != -1 && dv != -1 && du + dv == total) order.push_back(u);
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return from_src[static_cast<std::size_t>(a)] <
           from_src[static_cast<std::size_t>(b)];
  });

  std::vector<std::int64_t> count(static_cast<std::size_t>(g.num_nodes()), 0);
  count[static_cast<std::size_t>(src)] = 1;
  for (NodeId u : order) {
    const std::int64_t cu = count[static_cast<std::size_t>(u)];
    if (cu == 0) continue;
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.edge(e).dst;
      const int du = from_src[static_cast<std::size_t>(u)];
      const int dv = to_dst[static_cast<std::size_t>(v)];
      if (dv == -1) continue;
      if (du + 1 + dv != total) continue;
      auto& cv = count[static_cast<std::size_t>(v)];
      cv = std::min<std::int64_t>(cap, cv + cu);
    }
  }
  return count[static_cast<std::size_t>(dst)];
}

}  // namespace sunmap::graph
