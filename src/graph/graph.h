#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

namespace sunmap::graph {

/// Index of a vertex within a DirectedGraph.
using NodeId = std::int32_t;
/// Index of an edge within a DirectedGraph.
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// A directed edge with a mutable double weight.
///
/// In a core graph (paper Definition 1) the weight is the communication
/// bandwidth in MB/s; in a NoC topology graph (Definition 2) it is the link
/// capacity. The mapping algorithm additionally uses per-edge *load*
/// accumulators kept outside the graph (see route::LoadMap).
struct Edge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double weight = 1.0;
};

/// Compact adjacency-list directed graph.
///
/// Node and edge ids are dense integers assigned in insertion order, which
/// lets clients keep parallel arrays (loads, labels, positions) indexed by
/// id. Parallel edges are allowed; self-loops are rejected because neither
/// core graphs nor topology graphs contain them.
class DirectedGraph {
 public:
  DirectedGraph() = default;
  explicit DirectedGraph(int num_nodes);

  /// Appends a node and returns its id.
  NodeId add_node();

  /// Appends a directed edge u->v. Throws std::invalid_argument on a
  /// self-loop or out-of-range endpoint.
  EdgeId add_edge(NodeId u, NodeId v, double weight = 1.0);

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(out_.size());
  }
  [[nodiscard]] int num_edges() const {
    return static_cast<int>(edges_.size());
  }

  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_.at(e); }
  [[nodiscard]] Edge& edge(EdgeId e) { return edges_.at(e); }

  /// Outgoing edge ids of node u, in insertion order.
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId u) const {
    return out_.at(u);
  }
  /// Incoming edge ids of node u, in insertion order.
  [[nodiscard]] std::span<const EdgeId> in_edges(NodeId u) const {
    return in_.at(u);
  }

  [[nodiscard]] int out_degree(NodeId u) const {
    return static_cast<int>(out_.at(u).size());
  }
  [[nodiscard]] int in_degree(NodeId u) const {
    return static_cast<int>(in_.at(u).size());
  }
  /// Number of incident edges in either direction.
  [[nodiscard]] int degree(NodeId u) const {
    return out_degree(u) + in_degree(u);
  }

  /// First edge u->v if one exists.
  [[nodiscard]] std::optional<EdgeId> find_edge(NodeId u, NodeId v) const;

  /// True if there is an edge u->v.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    return find_edge(u, v).has_value();
  }

  /// All edges, indexable by EdgeId.
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Sum of all edge weights (e.g. total application bandwidth).
  [[nodiscard]] double total_weight() const;

 private:
  void check_node(NodeId u) const;

  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace sunmap::graph
