#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace sunmap::graph {

/// A concrete path through a graph: node sequence plus the edges that join
/// consecutive nodes, and the total cost under the weight function used to
/// find it. nodes.size() == edges.size() + 1 and nodes.front()/back() are the
/// endpoints. A single-node path (source == target) has no edges.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;
  double cost = 0.0;

  [[nodiscard]] int hops() const { return static_cast<int>(edges.size()); }
};

/// Per-edge cost callback for Dijkstra. Must return a non-negative cost.
using EdgeCostFn = std::function<double(EdgeId)>;

/// Node admission callback; nodes for which this returns false are never
/// relaxed (used to restrict searches to a quadrant graph).
using NodeFilterFn = std::function<bool(NodeId)>;

/// Dijkstra shortest path from src to dst under `cost`, optionally restricted
/// to nodes admitted by `filter` (src and dst must themselves be admitted).
/// Returns std::nullopt if dst is unreachable.
std::optional<Path> shortest_path(const DirectedGraph& g, NodeId src,
                                  NodeId dst, const EdgeCostFn& cost,
                                  const NodeFilterFn& filter = nullptr);

/// Unweighted (hop-count) BFS distances from src to every node; unreachable
/// nodes get -1. Optionally restricted by `filter`.
std::vector<int> bfs_distances(const DirectedGraph& g, NodeId src,
                               const NodeFilterFn& filter = nullptr);

/// Unweighted BFS distances *to* dst (i.e. along reversed edges).
std::vector<int> bfs_distances_to(const DirectedGraph& g, NodeId dst,
                                  const NodeFilterFn& filter = nullptr);

/// Hop distance src->dst, or -1 if unreachable.
int hop_distance(const DirectedGraph& g, NodeId src, NodeId dst);

/// All-pairs hop-distance matrix (BFS from every node); dist[u][v] == -1 for
/// unreachable pairs.
std::vector<std::vector<int>> all_pairs_hops(const DirectedGraph& g);

/// True if every node can reach every other node (strong connectivity).
bool strongly_connected(const DirectedGraph& g);

/// The minimum-path DAG between src and dst: the set of edges (u,v) with
/// d(src,u) + 1 + d(v,dst) == d(src,dst), optionally restricted by `filter`.
/// This is the structure over which split-traffic-across-minimum-paths (SM)
/// routing distributes flow. Returns an empty vector when dst is unreachable.
std::vector<EdgeId> min_path_dag(const DirectedGraph& g, NodeId src,
                                 NodeId dst,
                                 const NodeFilterFn& filter = nullptr);

/// Nodes u lying on at least one minimum-hop path src->dst, i.e. satisfying
/// d(src,u) + d(u,dst) == d(src,dst). This is the generic quadrant-graph
/// construction; the structural per-topology constructions in src/topo must
/// agree with it (asserted by property tests).
std::vector<NodeId> min_path_nodes(const DirectedGraph& g, NodeId src,
                                   NodeId dst);

/// Counts distinct minimum-hop paths src->dst (capped at `cap` to avoid
/// overflow on very diverse graphs). Used to characterise path diversity,
/// e.g. butterfly == 1 for all pairs.
std::int64_t count_min_paths(const DirectedGraph& g, NodeId src, NodeId dst,
                             std::int64_t cap = 1'000'000'000);

}  // namespace sunmap::graph
