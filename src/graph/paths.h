#pragma once

#include <algorithm>
#include <functional>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace sunmap::graph {

/// A concrete path through a graph: node sequence plus the edges that join
/// consecutive nodes, and the total cost under the weight function used to
/// find it. nodes.size() == edges.size() + 1 and nodes.front()/back() are the
/// endpoints. A single-node path (source == target) has no edges.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;
  double cost = 0.0;

  [[nodiscard]] int hops() const { return static_cast<int>(edges.size()); }
};

/// Per-edge cost callback for Dijkstra. Must return a non-negative cost.
using EdgeCostFn = std::function<double(EdgeId)>;

/// Node admission callback; nodes for which this returns false are never
/// relaxed (used to restrict searches to a quadrant graph).
using NodeFilterFn = std::function<bool(NodeId)>;

namespace detail {

/// Reusable per-thread Dijkstra workspace: the mapping search runs this
/// algorithm hundreds of thousands of times over small graphs, where the
/// per-call vector allocations would dominate the relaxations themselves.
struct DijkstraWorkspace {
  std::vector<double> dist;
  std::vector<EdgeId> via;
  std::vector<char> done;
  std::vector<std::pair<double, NodeId>> heap;
};

/// The calling thread's workspace (one instance shared by every
/// instantiation of shortest_path_with, so template callers and the
/// std::function wrapper reuse the same buffers).
DijkstraWorkspace& dijkstra_workspace();

}  // namespace detail

/// Dijkstra shortest path from src to dst, templated over the cost and
/// admission functors so hot callers (the routing engine's inner loops) pay
/// direct calls instead of std::function dispatch. The heap is driven with
/// push_heap/pop_heap under the same comparator that std::priority_queue
/// uses, so the settle order — and therefore the tie-breaking among
/// equal-cost paths — matches the historical implementation exactly; the
/// std::function-based shortest_path() below delegates here and is
/// bit-identical by construction.
template <typename CostFn, typename FilterFn>
std::optional<Path> shortest_path_with(const DirectedGraph& g, NodeId src,
                                       NodeId dst, const CostFn& cost,
                                       const FilterFn& filter) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (src < 0 || dst < 0 || src >= g.num_nodes() || dst >= g.num_nodes()) {
    throw std::out_of_range("shortest_path: endpoint out of range");
  }
  if (!filter(src) || !filter(dst)) return std::nullopt;

  constexpr double kInf = std::numeric_limits<double>::infinity();

  detail::DijkstraWorkspace& ws = detail::dijkstra_workspace();
  ws.dist.assign(n, kInf);
  ws.via.assign(n, kInvalidEdge);
  ws.done.assign(n, 0);
  ws.heap.clear();

  auto& dist = ws.dist;
  auto& via = ws.via;
  auto& done = ws.done;
  auto& heap = ws.heap;

  dist[static_cast<std::size_t>(src)] = 0.0;
  heap.emplace_back(0.0, src);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const auto [d, u] = heap.back();
    heap.pop_back();
    if (done[static_cast<std::size_t>(u)] != 0) continue;
    done[static_cast<std::size_t>(u)] = 1;
    if (u == dst) break;
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.edge(e).dst;
      if (!filter(v) || done[static_cast<std::size_t>(v)] != 0) {
        continue;
      }
      const double w = cost(e);
      if (w < 0.0) {
        throw std::invalid_argument("shortest_path: negative edge cost");
      }
      const double nd = d + w;
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        via[static_cast<std::size_t>(v)] = e;
        heap.emplace_back(nd, v);
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
      }
    }
  }

  if (dist[static_cast<std::size_t>(dst)] == kInf) return std::nullopt;

  Path path;
  path.cost = dist[static_cast<std::size_t>(dst)];
  NodeId cur = dst;
  while (cur != src) {
    const EdgeId e = via[static_cast<std::size_t>(cur)];
    path.edges.push_back(e);
    path.nodes.push_back(cur);
    cur = g.edge(e).src;
  }
  path.nodes.push_back(src);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

/// Admission functor admitting every node (the unfiltered template case).
struct AdmitAll {
  bool operator()(NodeId) const { return true; }
};

/// Dijkstra shortest path from src to dst under `cost`, optionally restricted
/// to nodes admitted by `filter` (src and dst must themselves be admitted).
/// Returns std::nullopt if dst is unreachable. Type-erased convenience
/// wrapper over shortest_path_with().
std::optional<Path> shortest_path(const DirectedGraph& g, NodeId src,
                                  NodeId dst, const EdgeCostFn& cost,
                                  const NodeFilterFn& filter = nullptr);

/// Unweighted (hop-count) BFS distances from src to every node; unreachable
/// nodes get -1. Optionally restricted by `filter`.
std::vector<int> bfs_distances(const DirectedGraph& g, NodeId src,
                               const NodeFilterFn& filter = nullptr);

/// Unweighted BFS distances *to* dst (i.e. along reversed edges).
std::vector<int> bfs_distances_to(const DirectedGraph& g, NodeId dst,
                                  const NodeFilterFn& filter = nullptr);

/// Hop distance src->dst, or -1 if unreachable.
int hop_distance(const DirectedGraph& g, NodeId src, NodeId dst);

/// All-pairs hop-distance matrix (BFS from every node); dist[u][v] == -1 for
/// unreachable pairs.
std::vector<std::vector<int>> all_pairs_hops(const DirectedGraph& g);

/// True if every node can reach every other node (strong connectivity).
bool strongly_connected(const DirectedGraph& g);

/// The minimum-path DAG between src and dst: the set of edges (u,v) with
/// d(src,u) + 1 + d(v,dst) == d(src,dst), optionally restricted by `filter`.
/// This is the structure over which split-traffic-across-minimum-paths (SM)
/// routing distributes flow. Returns an empty vector when dst is unreachable.
std::vector<EdgeId> min_path_dag(const DirectedGraph& g, NodeId src,
                                 NodeId dst,
                                 const NodeFilterFn& filter = nullptr);

/// Nodes u lying on at least one minimum-hop path src->dst, i.e. satisfying
/// d(src,u) + d(u,dst) == d(src,dst). This is the generic quadrant-graph
/// construction; the structural per-topology constructions in src/topo must
/// agree with it (asserted by property tests).
std::vector<NodeId> min_path_nodes(const DirectedGraph& g, NodeId src,
                                   NodeId dst);

/// Counts distinct minimum-hop paths src->dst (capped at `cap` to avoid
/// overflow on very diverse graphs). Used to characterise path diversity,
/// e.g. butterfly == 1 for all pairs.
std::int64_t count_min_paths(const DirectedGraph& g, NodeId src, NodeId dst,
                             std::int64_t cap = 1'000'000'000);

}  // namespace sunmap::graph
