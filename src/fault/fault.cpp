#include "fault/fault.h"

#include <algorithm>
#include <stdexcept>

#include "util/prng.h"

namespace sunmap::fault {

const char* to_string(Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kWorstCase:
      return "worst-case";
    case Aggregation::kWeighted:
      return "weighted";
  }
  return "?";
}

void FaultSet::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("FaultSet: " + what);
  };
  if (!(infeasible_penalty >= 1.0)) {
    fail("infeasible_penalty must be >= 1, got " +
         std::to_string(infeasible_penalty));
  }
  if (!(fault_free_weight >= 0.0)) {
    fail("fault_free_weight must be >= 0, got " +
         std::to_string(fault_free_weight));
  }
  if (spec.kind == FaultSpec::Kind::kRandom) {
    if (spec.num_scenarios < 1) {
      fail("random num_scenarios must be >= 1, got " +
           std::to_string(spec.num_scenarios));
    }
    if (spec.faults_per_scenario < 1) {
      fail("random faults_per_scenario must be >= 1, got " +
           std::to_string(spec.faults_per_scenario));
    }
  }
  if (spec.kind == FaultSpec::Kind::kExplicit) {
    double weight_total = fault_free_weight;
    for (const auto& scenario : spec.scenarios) {
      if (!(scenario.weight >= 0.0)) {
        fail("scenario weight must be >= 0, got " +
             std::to_string(scenario.weight));
      }
      weight_total += scenario.weight;
      for (const auto& link : scenario.links) {
        if (link.a < 0 || link.b < 0) {
          fail("link fault endpoints must be >= 0, got " +
               std::to_string(link.a) + "-" + std::to_string(link.b));
        }
      }
      for (const graph::NodeId sw : scenario.switches) {
        if (sw < 0) {
          fail("switch fault id must be >= 0, got " + std::to_string(sw));
        }
      }
    }
    if (aggregation == Aggregation::kWeighted && !spec.scenarios.empty() &&
        !(weight_total > 0.0)) {
      fail("weighted aggregation needs a positive total weight, got " +
           std::to_string(weight_total));
    }
  }
}

std::string describe(const FaultSet& faults) {
  std::string tag;
  switch (faults.spec.kind) {
    case FaultSpec::Kind::kNone:
      return "none";
    case FaultSpec::Kind::kEveryLink:
      tag = "n1";
      break;
    case FaultSpec::Kind::kRandom:
      tag = "rand" + std::to_string(faults.spec.num_scenarios) + "x" +
            std::to_string(faults.spec.faults_per_scenario) + "@" +
            std::to_string(faults.spec.seed);
      break;
    case FaultSpec::Kind::kExplicit:
      tag = "list" + std::to_string(faults.spec.scenarios.size());
      break;
  }
  if (faults.aggregation == Aggregation::kWeighted) tag += "-w";
  return tag;
}

std::vector<LinkFault> physical_links(const topo::Topology& topology) {
  const auto& g = topology.switch_graph();
  std::vector<LinkFault> links;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    if (g.has_edge(edge.dst, edge.src)) {
      // Bidirectional channel: count the pair once, from its lower endpoint.
      if (edge.src < edge.dst) links.push_back({edge.src, edge.dst});
    } else {
      links.push_back({edge.src, edge.dst});
    }
  }
  return links;
}

namespace {

/// Appends every directed edge between the fault's endpoints (both
/// directions when both exist) to the scenario.
void add_link_edges(const topo::Topology& topology, const LinkFault& link,
                    FaultScenario& scenario) {
  const auto& g = topology.switch_graph();
  if (link.a >= g.num_nodes() || link.b >= g.num_nodes()) {
    throw std::invalid_argument(
        "FaultSpec: link fault " + std::to_string(link.a) + "-" +
        std::to_string(link.b) + " is out of range for topology '" +
        topology.name() + "' with " + std::to_string(g.num_nodes()) +
        " switches");
  }
  if (const auto fwd = g.find_edge(link.a, link.b)) {
    scenario.failed_edges.push_back(*fwd);
  }
  if (const auto rev = g.find_edge(link.b, link.a)) {
    scenario.failed_edges.push_back(*rev);
  }
}

}  // namespace

std::vector<FaultScenario> materialize(const FaultSpec& spec,
                                       const topo::Topology& topology) {
  std::vector<FaultScenario> scenarios;
  switch (spec.kind) {
    case FaultSpec::Kind::kNone:
      break;
    case FaultSpec::Kind::kEveryLink: {
      const auto links = physical_links(topology);
      scenarios.reserve(links.size());
      for (const auto& link : links) {
        FaultScenario scenario;
        scenario.name = "L" + std::to_string(link.a) + "-" +
                        std::to_string(link.b);
        add_link_edges(topology, link, scenario);
        scenarios.push_back(std::move(scenario));
      }
      break;
    }
    case FaultSpec::Kind::kRandom: {
      const auto links = physical_links(topology);
      util::Prng prng(spec.seed);
      std::vector<std::size_t> order(links.size());
      scenarios.reserve(static_cast<std::size_t>(spec.num_scenarios));
      for (int i = 0; i < spec.num_scenarios; ++i) {
        // Partial Fisher-Yates: the first `picks` entries of `order` become
        // a uniform sample of distinct physical links.
        for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
        const std::size_t picks =
            std::min(order.size(),
                     static_cast<std::size_t>(spec.faults_per_scenario));
        FaultScenario scenario;
        scenario.name = "rnd" + std::to_string(i);
        for (std::size_t t = 0; t < picks; ++t) {
          const std::size_t j =
              t + static_cast<std::size_t>(
                      prng.next_below(order.size() - t));
          std::swap(order[t], order[j]);
          add_link_edges(topology, links[order[t]], scenario);
        }
        scenarios.push_back(std::move(scenario));
      }
      break;
    }
    case FaultSpec::Kind::kExplicit: {
      scenarios.reserve(spec.scenarios.size());
      for (std::size_t i = 0; i < spec.scenarios.size(); ++i) {
        const auto& user = spec.scenarios[i];
        FaultScenario scenario;
        scenario.name = "user" + std::to_string(i);
        scenario.weight = user.weight;
        for (const auto& link : user.links) {
          add_link_edges(topology, link, scenario);
        }
        for (const graph::NodeId sw : user.switches) {
          if (sw < 0 || sw >= topology.num_switches()) {
            throw std::invalid_argument(
                "FaultSpec: switch fault " + std::to_string(sw) +
                " is out of range for topology '" + topology.name() +
                "' with " + std::to_string(topology.num_switches()) +
                " switches");
          }
          scenario.failed_switches.push_back(sw);
        }
        scenarios.push_back(std::move(scenario));
      }
      break;
    }
  }
  return scenarios;
}

void make_mask(const graph::DirectedGraph& g, const FaultScenario& scenario,
               ScenarioMask& out) {
  out.edge_alive.assign(static_cast<std::size_t>(g.num_edges()), 1);
  out.switch_alive.assign(static_cast<std::size_t>(g.num_nodes()), 1);
  for (const graph::EdgeId e : scenario.failed_edges) {
    out.edge_alive.at(static_cast<std::size_t>(e)) = 0;
  }
  for (const graph::NodeId sw : scenario.failed_switches) {
    out.switch_alive.at(static_cast<std::size_t>(sw)) = 0;
  }
  // A dead switch takes every incident channel with it, so the edge mask
  // alone answers "does this path use failed hardware" edge-by-edge.
  if (!scenario.failed_switches.empty()) {
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& edge = g.edge(e);
      if (out.switch_alive[static_cast<std::size_t>(edge.src)] == 0 ||
          out.switch_alive[static_cast<std::size_t>(edge.dst)] == 0) {
        out.edge_alive[static_cast<std::size_t>(e)] = 0;
      }
    }
  }
}

void masked_bfs(const graph::DirectedGraph& g, graph::NodeId src,
                const ScenarioMask& mask, MaskedBfs& out) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (src < 0 || src >= g.num_nodes()) {
    throw std::out_of_range("masked_bfs: source out of range");
  }
  out.parent_edge.assign(n, graph::kInvalidEdge);
  out.dist.assign(n, -1);
  out.queue.clear();
  if (mask.switch_alive[static_cast<std::size_t>(src)] == 0) return;
  out.dist[static_cast<std::size_t>(src)] = 0;
  out.queue.push_back(src);
  for (std::size_t head = 0; head < out.queue.size(); ++head) {
    const graph::NodeId u = out.queue[head];
    for (const graph::EdgeId e : g.out_edges(u)) {
      if (mask.edge_alive[static_cast<std::size_t>(e)] == 0) continue;
      const graph::NodeId v = g.edge(e).dst;
      if (mask.switch_alive[static_cast<std::size_t>(v)] == 0 ||
          out.dist[static_cast<std::size_t>(v)] >= 0) {
        continue;
      }
      out.dist[static_cast<std::size_t>(v)] =
          out.dist[static_cast<std::size_t>(u)] + 1;
      out.parent_edge[static_cast<std::size_t>(v)] = e;
      out.queue.push_back(v);
    }
  }
}

bool extract_path(const graph::DirectedGraph& g, const MaskedBfs& bfs,
                  graph::NodeId src, graph::NodeId dst, graph::Path& out) {
  if (dst < 0 || dst >= g.num_nodes()) {
    throw std::out_of_range("extract_path: destination out of range");
  }
  out.nodes.clear();
  out.edges.clear();
  out.cost = 0.0;
  if (bfs.dist[static_cast<std::size_t>(dst)] < 0) return false;
  graph::NodeId cur = dst;
  while (cur != src) {
    const graph::EdgeId e = bfs.parent_edge[static_cast<std::size_t>(cur)];
    out.edges.push_back(e);
    out.nodes.push_back(cur);
    cur = g.edge(e).src;
  }
  out.nodes.push_back(src);
  std::reverse(out.nodes.begin(), out.nodes.end());
  std::reverse(out.edges.begin(), out.edges.end());
  out.cost = static_cast<double>(out.edges.size());
  return true;
}

}  // namespace sunmap::fault
