#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/paths.h"
#include "topo/topology.h"

namespace sunmap::fault {

/// One physical switch-to-switch channel named by its endpoint switches.
/// On direct topologies the channel is bidirectional, so failing it removes
/// both directed edges; on the unidirectional stage links of indirect
/// topologies only the existing direction is removed.
struct LinkFault {
  graph::NodeId a = 0;
  graph::NodeId b = 0;
  [[nodiscard]] bool operator==(const LinkFault&) const = default;
};

/// One user-listed fault scenario, described independently of any concrete
/// topology: links by endpoint switch ids, dead switches by id, plus the
/// scenario's weight under the weighted-across-scenarios aggregation.
struct ScenarioSpec {
  std::vector<LinkFault> links;
  std::vector<graph::NodeId> switches;
  double weight = 1.0;
  [[nodiscard]] bool operator==(const ScenarioSpec&) const = default;
};

/// Topology-independent description of a whole fault-scenario family. The
/// spec — not a list of concrete edge ids — is what MapperConfig carries,
/// because one configuration is applied across every topology of a library
/// sweep and edge ids differ per topology; EvalContext materializes the spec
/// against its own topology at bind time (see materialize()).
struct FaultSpec {
  enum class Kind {
    kNone,       ///< No fault scenarios: evaluation is exactly fault-free.
    kEveryLink,  ///< Exhaustive N-1: one scenario per physical channel.
    kRandom,     ///< num_scenarios seeded samples of faults_per_scenario
                 ///< distinct channels each.
    kExplicit,   ///< The user-listed scenarios below.
  };
  Kind kind = Kind::kNone;
  int num_scenarios = 4;        ///< kRandom only.
  int faults_per_scenario = 1;  ///< kRandom only.
  std::uint64_t seed = 1;       ///< kRandom only.
  std::vector<ScenarioSpec> scenarios;  ///< kExplicit only.
  [[nodiscard]] bool operator==(const FaultSpec&) const = default;
};

/// How per-scenario degraded costs fold into the one scalar the search
/// minimises.
enum class Aggregation {
  kWorstCase,  ///< max(fault-free cost, every scenario cost).
  kWeighted,   ///< Weight-normalised mean of fault-free + scenario costs.
};

const char* to_string(Aggregation aggregation);

/// The complete robustness configuration of one mapping run: which fault
/// scenarios to evaluate and how their degraded costs aggregate into the
/// search objective. empty() (the default) keeps every code path
/// bit-identical to a fault-unaware evaluation.
struct FaultSet {
  FaultSpec spec;
  Aggregation aggregation = Aggregation::kWorstCase;
  /// Weight of the fault-free cost under Aggregation::kWeighted.
  double fault_free_weight = 1.0;
  /// Cost multiplier applied to the fault-free cost when a scenario
  /// disconnects a commodity (or kills an attachment switch). Must be >= 1
  /// so the aggregate can never drop below the fault-free cost's admissible
  /// lower bound — that is what keeps the pruning bounds valid.
  double infeasible_penalty = 10.0;

  [[nodiscard]] bool empty() const {
    return spec.kind == FaultSpec::Kind::kNone;
  }
  [[nodiscard]] bool operator==(const FaultSet&) const = default;

  /// Topology-independent sanity checks (penalty/weight ranges, random
  /// generator parameters). Throws std::invalid_argument naming the
  /// offending value. Called from MapperConfig::validate().
  void validate() const;
};

/// Compact human-readable tag for sweep labels and CSV ("none", "n1",
/// "rand4x2@7", "list3"; weighted aggregation appends "-w").
std::string describe(const FaultSet& faults);

/// One concrete scenario against one topology: the directed switch-graph
/// edges removed and the switches considered dead. Produced by
/// materialize(); scenarios are deterministic functions of (spec, topology).
struct FaultScenario {
  std::vector<graph::EdgeId> failed_edges;
  std::vector<graph::NodeId> failed_switches;
  std::string name;
  double weight = 1.0;
};

/// The physical channel list faults quantify over: each bidirectional
/// channel pair of a direct topology once (a < b by construction), each
/// unidirectional stage link of an indirect topology once.
std::vector<LinkFault> physical_links(const topo::Topology& topology);

/// Materializes a spec against one topology. Deterministic; an explicit
/// LinkFault whose endpoints carry no edge on this topology simply removes
/// nothing (so one explicit spec can sweep a whole library), but an
/// out-of-range switch id throws std::invalid_argument.
std::vector<FaultScenario> materialize(const FaultSpec& spec,
                                       const topo::Topology& topology);

/// Aliveness masks of one scenario over one switch graph: a path survives
/// iff every edge has edge_alive and every node has switch_alive.
struct ScenarioMask {
  std::vector<char> edge_alive;
  std::vector<char> switch_alive;
};

void make_mask(const graph::DirectedGraph& g, const FaultScenario& scenario,
               ScenarioMask& out);

/// Parent arrays of one deterministic BFS over the surviving subgraph,
/// reusable across every commodity sharing the source switch. dist == -1
/// marks unreachable nodes (everything, if the source itself is dead).
struct MaskedBfs {
  std::vector<graph::EdgeId> parent_edge;
  std::vector<int> dist;
  std::vector<graph::NodeId> queue;  ///< Internal scratch.
};

/// Breadth-first search from src over the edges and switches the mask keeps
/// alive. Neighbours expand in out_edges insertion order, so the parent
/// choice — and therefore every extracted path — is deterministic and
/// identical wherever the same (graph, mask, src) is searched. This is what
/// makes the incremental (tables prebuilt at bind) and reference (BFS re-run
/// per evaluation) fault paths bit-identical by construction.
void masked_bfs(const graph::DirectedGraph& g, graph::NodeId src,
                const ScenarioMask& mask, MaskedBfs& out);

/// Walks the parent arrays into a concrete path src -> dst (cost = hops).
/// Returns false when dst is unreachable under the mask; src == dst yields
/// the single-node path when src is alive.
bool extract_path(const graph::DirectedGraph& g, const MaskedBfs& bfs,
                  graph::NodeId src, graph::NodeId dst, graph::Path& out);

}  // namespace sunmap::fault
