#include "sim/route_table.h"

#include <algorithm>
#include <stdexcept>

namespace sunmap::sim {

RouteTable::RouteTable(int num_slots) : num_slots_(num_slots) {
  if (num_slots < 2) {
    throw std::invalid_argument("RouteTable: need at least two slots");
  }
  const auto n = static_cast<std::size_t>(num_slots) *
                 static_cast<std::size_t>(num_slots);
  table_.assign(n, nullptr);
}

std::size_t RouteTable::index(int src_slot, int dst_slot) const {
  if (src_slot < 0 || dst_slot < 0 || src_slot >= num_slots_ ||
      dst_slot >= num_slots_) {
    throw std::out_of_range("RouteTable: slot out of range");
  }
  return static_cast<std::size_t>(src_slot) *
             static_cast<std::size_t>(num_slots_) +
         static_cast<std::size_t>(dst_slot);
}

void RouteTable::set(int src_slot, int dst_slot, route::RouteSet routes) {
  if (routes.paths.empty()) {
    throw std::invalid_argument("RouteTable: empty route set");
  }
  const auto i = index(src_slot, dst_slot);
  owned_.push_back(std::move(routes));
  table_[i] = &owned_.back();
}

void RouteTable::set_ref(int src_slot, int dst_slot,
                         const route::RouteSet& routes) {
  if (routes.paths.empty()) {
    throw std::invalid_argument("RouteTable: empty route set");
  }
  table_[index(src_slot, dst_slot)] = &routes;
}

bool RouteTable::has(int src_slot, int dst_slot) const {
  return table_[index(src_slot, dst_slot)] != nullptr;
}

const route::RouteSet& RouteTable::at(int src_slot, int dst_slot) const {
  const auto i = index(src_slot, dst_slot);
  if (table_[i] == nullptr) {
    throw std::out_of_range("RouteTable: no route installed for pair");
  }
  return *table_[i];
}

int RouteTable::max_path_switches() const {
  int longest = 0;
  for (const auto* set : table_) {
    if (set == nullptr) continue;
    for (const auto& wp : set->paths) {
      longest = std::max(longest, static_cast<int>(wp.path.nodes.size()));
    }
  }
  return longest;
}

RouteTable RouteTable::all_pairs(const topo::Topology& topology,
                                 route::RoutingKind kind, int split_chunks) {
  RouteTable table(topology.num_slots());
  route::RoutingEngine::Options engine_options;
  engine_options.split_chunks = split_chunks;
  route::RoutingEngine engine(topology, kind, engine_options);
  route::LoadMap loads(topology.switch_graph().num_edges());
  route::RouteSet routes;
  for (int src = 0; src < topology.num_slots(); ++src) {
    for (int dst = 0; dst < topology.num_slots(); ++dst) {
      if (src == dst) continue;
      engine.route(src, dst, 1.0, loads, routes);
      loads.add_route(routes, 1.0);
      table.set(src, dst, std::move(routes));
    }
  }
  return table;
}

}  // namespace sunmap::sim
