#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/route_table.h"
#include "sim/traffic.h"
#include "topo/topology.h"
#include "util/prng.h"

namespace sunmap::sim {

/// Which execution engine drives the simulation. Both engines implement the
/// identical router model and produce bit-identical SimStats for the same
/// config and traffic (asserted by tests/sim_event_test.cpp and gated by
/// bench_sim_throughput); the cycle-stepped loop is retained as the
/// reference the event-driven engine is checked against.
enum class SimEngine {
  /// Event-queue core: routers are scanned only on cycles where they hold
  /// flits or receive one; quiescent spans cost one traffic poll per cycle
  /// and nothing else. The default.
  kEventDriven,
  /// Reference implementation: every router, FIFO, and output port is
  /// scanned on every cycle.
  kCycleStepped,
};

const char* to_string(SimEngine engine);

/// Simulator configuration. The router model is the cycle-accurate stand-in
/// for the generated ×pipes SystemC macros (see DESIGN.md §2): wormhole
/// switching, a single virtual channel, credit-based flow control over
/// point-to-point links, input FIFO buffers, round-robin output allocation
/// and source routing.
struct SimConfig {
  int flits_per_packet = 4;
  int buffer_depth_flits = 4;  ///< Input FIFO capacity per port (per VC).
  int link_latency_cycles = 1;

  /// Distance-class virtual channels: a flit at hop h travels in VC h, so
  /// VC indices strictly increase along any path and the channel dependency
  /// graph is acyclic — wormhole deadlock freedom for *any* source-routed
  /// path set (including split-traffic routes on meshes and wraparound
  /// torus routes, which deadlock under a single VC). The number of VCs is
  /// sized automatically to the longest route in the table. Costs buffer
  /// area in a real design, which is why it is an option and not the
  /// default.
  bool distance_class_vcs = false;

  std::uint64_t warmup_cycles = 2000;   ///< Not measured.
  std::uint64_t measure_cycles = 10000; ///< Packets generated here count.
  std::uint64_t drain_cycles = 30000;   ///< Extra budget to deliver them.

  /// Declare saturation when no flit moves for this many cycles (also the
  /// guard against single-VC wormhole deadlock on wraparound channels).
  std::uint64_t stall_limit_cycles = 2000;

  std::uint64_t seed = 1;

  SimEngine engine = SimEngine::kEventDriven;
};

/// Structured verdict on how a run terminated, from healthiest to most
/// pathological. Exactly one applies; SimStats::saturated stays the derived
/// "anything but kDrained" summary for callers that only need a boolean.
enum class RunStatus {
  kDrained,      ///< Every measured packet was delivered within the budget.
  kSaturatedThroughput,  ///< Drained, but accepted meaningfully less
                         ///< traffic than was offered (acceptance < 90%).
  kUndelivered,  ///< The drain budget expired with measured packets still
                 ///< in flight.
  kStalled,      ///< No flit moved for stall_limit_cycles — congestion
                 ///< collapse or single-VC wormhole deadlock.
};

const char* to_string(RunStatus status);

/// Aggregate results of one simulation run.
struct SimStats {
  std::uint64_t cycles = 0;
  std::uint64_t packets_generated = 0;  ///< During the measurement window.
  std::uint64_t packets_delivered = 0;  ///< Measured packets delivered.
  double avg_latency_cycles = 0.0;      ///< Generation to tail ejection.
  double max_latency_cycles = 0.0;
  double p50_latency_cycles = 0.0;      ///< Median measured latency.
  double p95_latency_cycles = 0.0;
  double p99_latency_cycles = 0.0;
  /// Delivered flits per cycle per slot over the measurement+drain window.
  double throughput_flits_per_cycle_per_slot = 0.0;
  /// Injected flits per cycle per slot over the same window.
  double offered_flits_per_cycle_per_slot = 0.0;
  /// True when the network could not keep up with the offered load: the run
  /// hit the stall limit, failed to drain the measured packets, or accepted
  /// meaningfully less traffic than was offered. Latencies reported for a
  /// saturated run are lower bounds. Always equal to
  /// (status != RunStatus::kDrained).
  bool saturated = false;
  /// Which of the saturation conditions (if any) ended the run; kStalled
  /// wins over kUndelivered wins over kSaturatedThroughput when several
  /// hold at once.
  RunStatus status = RunStatus::kDrained;
  /// Cycles in which no flit moved while the network held flits, summed
  /// over the whole run (not just the final stall streak).
  std::uint64_t stalled_cycles = 0;
  /// Measured packets generated but never delivered.
  std::uint64_t undelivered_packets = 0;
  /// Flit traversals granted over the whole run (warmup + measurement +
  /// drain, link hops and ejections alike). Identical between engines; the
  /// numerator of the events/sec throughput metric in bench_sim_throughput.
  std::uint64_t flit_events = 0;
};

/// Static wiring of the simulated network for one topology: per-router port
/// shapes, edge -> port maps, injection and sink attachments. A pure
/// function of the topology — build it once with make_network_layout() and
/// share it across Simulator instances (finalist scoring, load sweeps) so
/// repeated runs don't pay network construction each time.
struct NetworkLayout {
  struct Output {
    bool is_sink = false;
    int dst_router = -1;   ///< Link destination router (non-sink).
    int dst_in_port = -1;  ///< Input port index at dst_router (non-sink).
    int sink_slot = -1;    ///< Ejection slot (sink only).
  };
  struct RouterShape {
    /// One flag per input port, in port order: true for the unbounded
    /// per-slot source queues appended after the network inputs.
    std::vector<char> input_is_source;
    std::vector<Output> outputs;
  };

  std::vector<RouterShape> routers;
  std::vector<int> out_port_of_edge;     ///< EdgeId -> output port at src.
  std::vector<int> in_port_of_edge;      ///< EdgeId -> input port at dst.
  std::vector<int> inject_port_of_slot;  ///< SlotId -> ingress input port.
  /// SlotId -> ejection (sink) output port at the slot's egress switch, so
  /// the per-flit ejection lookup is O(1) instead of a scan over the
  /// router's output ports.
  std::vector<int> sink_port_of_slot;
};

[[nodiscard]] std::shared_ptr<const NetworkLayout> make_network_layout(
    const topo::Topology& topology);

/// Cycle-accurate NoC simulator over one topology and routing table.
///
/// Packets are source-routed: at injection each packet samples one weighted
/// path from the route table. A flit granted an output port at cycle t
/// arrives at the downstream input at t + link_latency; with everything
/// idle, a packet of F flits over a path of S switches is delivered in
/// F + link_latency*(S-1) cycles from generation (asserted by the zero-load
/// latency tests).
///
/// A Simulator is reusable: run() resets all dynamic state (including the
/// PRNG, reseeded from the config) before simulating, so repeated runs with
/// the same traffic are identical, and bind() rebinds a different route
/// table over the same network. Pass a cached NetworkLayout to skip port
/// construction entirely.
class Simulator {
 public:
  Simulator(const topo::Topology& topology, const RouteTable& routes,
            SimConfig config,
            std::shared_ptr<const NetworkLayout> layout = nullptr);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Rebinds the route table (same topology). The table is borrowed: it
  /// must outlive the next run() call.
  void bind(const RouteTable& routes);

  /// Runs warmup + measurement + drain and returns the statistics. Resets
  /// all dynamic state first; callable repeatedly.
  [[nodiscard]] SimStats run(TrafficModel& traffic);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: average measured packet latency for a synthetic pattern at
/// one injection rate (one point of Fig 8(b)). An optional cached layout
/// skips network construction.
SimStats simulate_pattern(const topo::Topology& topology,
                          const RouteTable& routes, Pattern pattern,
                          double injection_rate, const SimConfig& config,
                          std::shared_ptr<const NetworkLayout> layout =
                              nullptr);

}  // namespace sunmap::sim
