#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/route_table.h"
#include "sim/traffic.h"
#include "topo/topology.h"
#include "util/prng.h"

namespace sunmap::sim {

/// Simulator configuration. The router model is the cycle-accurate stand-in
/// for the generated ×pipes SystemC macros (see DESIGN.md §2): wormhole
/// switching, a single virtual channel, credit-based flow control over
/// point-to-point links, input FIFO buffers, round-robin output allocation
/// and source routing.
struct SimConfig {
  int flits_per_packet = 4;
  int buffer_depth_flits = 4;  ///< Input FIFO capacity per port (per VC).
  int link_latency_cycles = 1;

  /// Distance-class virtual channels: a flit at hop h travels in VC h, so
  /// VC indices strictly increase along any path and the channel dependency
  /// graph is acyclic — wormhole deadlock freedom for *any* source-routed
  /// path set (including split-traffic routes on meshes and wraparound
  /// torus routes, which deadlock under a single VC). The number of VCs is
  /// sized automatically to the longest route in the table. Costs buffer
  /// area in a real design, which is why it is an option and not the
  /// default.
  bool distance_class_vcs = false;

  std::uint64_t warmup_cycles = 2000;   ///< Not measured.
  std::uint64_t measure_cycles = 10000; ///< Packets generated here count.
  std::uint64_t drain_cycles = 30000;   ///< Extra budget to deliver them.

  /// Declare saturation when no flit moves for this many cycles (also the
  /// guard against single-VC wormhole deadlock on wraparound channels).
  std::uint64_t stall_limit_cycles = 2000;

  std::uint64_t seed = 1;
};

/// Structured verdict on how a run terminated, from healthiest to most
/// pathological. Exactly one applies; SimStats::saturated stays the derived
/// "anything but kDrained" summary for callers that only need a boolean.
enum class RunStatus {
  kDrained,      ///< Every measured packet was delivered within the budget.
  kSaturatedThroughput,  ///< Drained, but accepted meaningfully less
                         ///< traffic than was offered (acceptance < 90%).
  kUndelivered,  ///< The drain budget expired with measured packets still
                 ///< in flight.
  kStalled,      ///< No flit moved for stall_limit_cycles — congestion
                 ///< collapse or single-VC wormhole deadlock.
};

const char* to_string(RunStatus status);

/// Aggregate results of one simulation run.
struct SimStats {
  std::uint64_t cycles = 0;
  std::uint64_t packets_generated = 0;  ///< During the measurement window.
  std::uint64_t packets_delivered = 0;  ///< Measured packets delivered.
  double avg_latency_cycles = 0.0;      ///< Generation to tail ejection.
  double max_latency_cycles = 0.0;
  double p50_latency_cycles = 0.0;      ///< Median measured latency.
  double p95_latency_cycles = 0.0;
  double p99_latency_cycles = 0.0;
  /// Delivered flits per cycle per slot over the measurement+drain window.
  double throughput_flits_per_cycle_per_slot = 0.0;
  /// Injected flits per cycle per slot over the same window.
  double offered_flits_per_cycle_per_slot = 0.0;
  /// True when the network could not keep up with the offered load: the run
  /// hit the stall limit, failed to drain the measured packets, or accepted
  /// meaningfully less traffic than was offered. Latencies reported for a
  /// saturated run are lower bounds. Always equal to
  /// (status != RunStatus::kDrained).
  bool saturated = false;
  /// Which of the saturation conditions (if any) ended the run; kStalled
  /// wins over kUndelivered wins over kSaturatedThroughput when several
  /// hold at once.
  RunStatus status = RunStatus::kDrained;
  /// Cycles in which no flit moved while the network held flits, summed
  /// over the whole run (not just the final stall streak).
  std::uint64_t stalled_cycles = 0;
  /// Measured packets generated but never delivered.
  std::uint64_t undelivered_packets = 0;
};

/// Cycle-accurate NoC simulator over one topology and routing table.
///
/// Packets are source-routed: at injection each packet samples one weighted
/// path from the route table. A flit granted an output port at cycle t
/// arrives at the downstream input at t + link_latency; with everything
/// idle, a packet of F flits over a path of S switches is delivered in
/// S + link_latency*(S-1) + F - 1 + 1 cycles from generation (asserted by
/// the zero-load latency tests).
class Simulator {
 public:
  Simulator(const topo::Topology& topology, const RouteTable& routes,
            SimConfig config);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Runs warmup + measurement + drain and returns the statistics.
  [[nodiscard]] SimStats run(TrafficModel& traffic);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: average measured packet latency for a synthetic pattern at
/// one injection rate (one point of Fig 8(b)).
SimStats simulate_pattern(const topo::Topology& topology,
                          const RouteTable& routes, Pattern pattern,
                          double injection_rate, const SimConfig& config);

}  // namespace sunmap::sim
