#pragma once

#include <memory>

#include "sim/simulator.h"

namespace sunmap::sim {

/// Frozen reference copy of the simulator as it stood before the hot-path
/// storage overhaul (per-VC std::deque flit FIFOs, per-run packet deque,
/// deque-backed event queue). It implements the identical router model and
/// produces bit-identical SimStats for the same config and traffic — the
/// overhaul changed storage, never behavior.
///
/// Kept for the same reason the cycle-stepped engine is kept behind
/// SimConfig::engine: it is the in-binary baseline `bench_sim_throughput`
/// gates the pooled/SoA hot path against (full-SimStats bit-identity on
/// every leg plus the >= 1.3x single-thread speedup bar), so the gate stays
/// meaningful on any machine. Do not optimize this class.
class BaselineSimulator {
 public:
  BaselineSimulator(const topo::Topology& topology, const RouteTable& routes,
                    SimConfig config,
                    std::shared_ptr<const NetworkLayout> layout = nullptr);
  ~BaselineSimulator();

  BaselineSimulator(const BaselineSimulator&) = delete;
  BaselineSimulator& operator=(const BaselineSimulator&) = delete;

  /// Rebinds the route table (same topology); borrowed like Simulator's.
  void bind(const RouteTable& routes);

  /// Runs warmup + measurement + drain and returns the statistics.
  [[nodiscard]] SimStats run(TrafficModel& traffic);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sunmap::sim
