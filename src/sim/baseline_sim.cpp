// Frozen pre-overhaul simulator implementation (see baseline_sim.h). This
// is the storage layout the hot-path overhaul replaced — per-VC std::deque
// flit FIFOs, a per-run std::deque<Packet>, a deque-backed event queue, and
// a linear sink-port scan on ejection — retained verbatim as the perf and
// bit-identity baseline. Do not optimize; behavioral fixes must land in
// simulator.cpp first and be mirrored here only if the router model itself
// (not its storage) changes.

#include "sim/baseline_sim.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <stdexcept>

#include "sim/event_queue.h"  // for the Event record

namespace sunmap::sim {

namespace {

constexpr std::uint64_t kNeverPopped =
    std::numeric_limits<std::uint64_t>::max();

/// The deque-backed FIFO event queue the overhaul replaced with a ring
/// arena; kept private here so the baseline keeps its original allocation
/// behavior.
class BaselineEventQueue {
 public:
  void schedule(std::uint64_t cycle, int payload) {
    assert(events_.empty() || cycle >= events_.back().cycle);
    if (!events_.empty() && events_.back().cycle == cycle &&
        events_.back().payload == payload) {
      return;
    }
    events_.push_back(Event{cycle, payload});
  }

  [[nodiscard]] bool due(std::uint64_t now) const {
    return !events_.empty() && events_.front().cycle <= now;
  }

  [[nodiscard]] const Event& front() const { return events_.front(); }
  void pop() { events_.pop_front(); }
  void clear() { events_.clear(); }

 private:
  std::deque<Event> events_;
};

struct Packet {
  int src = 0;
  int dst = 0;
  const graph::Path* path = nullptr;  // owned by the route table
  std::uint64_t gen_cycle = 0;
  bool measured = false;
};

struct Flit {
  Packet* packet = nullptr;
  bool head = false;
  bool tail = false;
  int hop = 0;  ///< Index of the router currently holding the flit.
};

struct InFlight {
  std::uint64_t arrival = 0;
  Flit flit;
};

struct InputState {
  /// One FIFO per virtual channel. A flit at hop h sits in VC h
  /// (distance-class assignment); with a single VC everything is queues[0].
  std::vector<std::deque<Flit>> queues;
  std::vector<int> pending;        ///< In-flight flits headed to each VC.
  std::deque<InFlight> in_flight;  ///< On the upstream link, FIFO.
  int capacity = 4;                ///< Per VC; INT_MAX for source queues.
  /// Cycle of the last pop (input speedup is 1 flit/cycle).
  std::uint64_t popped_cycle = kNeverPopped;

  [[nodiscard]] bool has_space(int vc) const {
    return static_cast<int>(queues[static_cast<std::size_t>(vc)].size()) +
               pending[static_cast<std::size_t>(vc)] <
           capacity;
  }
};

struct OutputState {
  // Per-VC wormhole state: the packet owning this output VC and the input
  // it is draining from.
  std::vector<Packet*> locked;
  std::vector<int> locked_in;
  std::vector<int> rr_next;  ///< Per-VC round-robin over inputs.
  int vc_rr = 0;             ///< Round-robin over VCs for the physical link.
};

struct RouterState {
  std::vector<InputState> inputs;
  std::vector<OutputState> outputs;
  /// Flits sitting in this router's input queues (any port, any VC).
  int queued_flits = 0;
};

}  // namespace

struct BaselineSimulator::Impl {
  const topo::Topology& topology;
  const RouteTable* routes;
  SimConfig config;
  util::Prng prng;
  std::shared_ptr<const NetworkLayout> layout;

  std::vector<RouterState> routers;
  std::deque<Packet> packets;

  BaselineEventQueue arrivals;
  std::vector<char> armed;
  std::vector<int> armed_ids;  // ascending — allocation order must match
                               // the cycle-stepped router sweep

  std::vector<std::pair<int, int>> injections_buf;

  std::uint64_t now = 0;
  std::uint64_t flits_in_network = 0;
  std::uint64_t delivered_flits_since_warmup = 0;
  std::uint64_t injected_flits_since_warmup = 0;
  std::uint64_t total_flit_events = 0;

  // Measurement accumulators.
  std::uint64_t measured_generated = 0;
  std::uint64_t measured_delivered = 0;
  double latency_sum = 0.0;
  double latency_max = 0.0;
  std::vector<double> latencies;  // per measured packet, for percentiles

  int num_vcs = 0;  // 0 = router state not built yet

  Impl(const topo::Topology& topo, const RouteTable& table, SimConfig cfg,
       std::shared_ptr<const NetworkLayout> net)
      : topology(topo), routes(&table), config(cfg), prng(cfg.seed) {
    if (cfg.flits_per_packet < 1 || cfg.buffer_depth_flits < 1 ||
        cfg.link_latency_cycles < 1) {
      throw std::invalid_argument("SimConfig: invalid parameters");
    }
    layout = net != nullptr ? std::move(net) : make_network_layout(topo);
  }

  /// VC a queued flit occupies: its hop index under distance-class VCs.
  [[nodiscard]] int vc_of(const Flit& flit) const {
    return num_vcs == 1 ? 0 : std::min(flit.hop, num_vcs - 1);
  }

  void build_state() {
    routers.assign(layout->routers.size(), RouterState{});
    for (std::size_t r = 0; r < routers.size(); ++r) {
      const auto& shape = layout->routers[r];
      auto& router = routers[r];
      router.inputs.resize(shape.input_is_source.size());
      for (std::size_t i = 0; i < router.inputs.size(); ++i) {
        auto& in = router.inputs[i];
        in.capacity = shape.input_is_source[i]
                          ? std::numeric_limits<int>::max()
                          : config.buffer_depth_flits;
        in.queues.resize(static_cast<std::size_t>(num_vcs));
        in.pending.assign(static_cast<std::size_t>(num_vcs), 0);
      }
      router.outputs.resize(shape.outputs.size());
      for (auto& out : router.outputs) {
        out.locked.assign(static_cast<std::size_t>(num_vcs), nullptr);
        out.locked_in.assign(static_cast<std::size_t>(num_vcs), -1);
        out.rr_next.assign(static_cast<std::size_t>(num_vcs), 0);
      }
    }
  }

  void reset() {
    prng = util::Prng(config.seed);
    const int vcs =
        config.distance_class_vcs ? std::max(1, routes->max_path_switches())
                                  : 1;
    if (vcs != num_vcs) {
      num_vcs = vcs;
      build_state();
    } else {
      for (auto& router : routers) {
        for (auto& in : router.inputs) {
          for (auto& q : in.queues) q.clear();
          std::fill(in.pending.begin(), in.pending.end(), 0);
          in.in_flight.clear();
          in.popped_cycle = kNeverPopped;
        }
        for (auto& out : router.outputs) {
          std::fill(out.locked.begin(), out.locked.end(), nullptr);
          std::fill(out.locked_in.begin(), out.locked_in.end(), -1);
          std::fill(out.rr_next.begin(), out.rr_next.end(), 0);
          out.vc_rr = 0;
        }
        router.queued_flits = 0;
      }
    }
    packets.clear();
    arrivals.clear();
    armed.assign(routers.size(), 0);
    armed_ids.clear();
    now = 0;
    flits_in_network = 0;
    delivered_flits_since_warmup = 0;
    injected_flits_since_warmup = 0;
    total_flit_events = 0;
    measured_generated = 0;
    measured_delivered = 0;
    latency_sum = 0.0;
    latency_max = 0.0;
    latencies.clear();
  }

  /// Marks a router as holding queued flits; keeps armed_ids ascending.
  void arm(int r) {
    if (armed[static_cast<std::size_t>(r)]) return;
    armed[static_cast<std::size_t>(r)] = 1;
    armed_ids.insert(std::lower_bound(armed_ids.begin(), armed_ids.end(), r),
                     r);
  }

  /// Samples one weighted path for a new packet.
  const graph::Path* sample_path(int src, int dst) {
    const auto& set = routes->at(src, dst);
    double r = prng.next_double();
    for (const auto& wp : set.paths) {
      r -= wp.fraction;
      if (r <= 0.0) return &wp.path;
    }
    return &set.paths.back().path;
  }

  void inject(int src, int dst, bool measured) {
    packets.push_back(Packet{src, dst, sample_path(src, dst), now, measured});
    Packet* pkt = &packets.back();
    if (measured) ++measured_generated;
    const int r = topology.ingress_switch(src);
    auto& router = routers[static_cast<std::size_t>(r)];
    auto& port = router.inputs[static_cast<std::size_t>(
        layout->inject_port_of_slot[static_cast<std::size_t>(src)])];
    for (int f = 0; f < config.flits_per_packet; ++f) {
      port.queues[0].push_back(Flit{pkt, f == 0,
                                    f == config.flits_per_packet - 1, 0});
      ++flits_in_network;
      ++router.queued_flits;
      if (now >= config.warmup_cycles) ++injected_flits_since_warmup;
    }
    arm(r);
  }

  /// Link arrivals at router `r` become visible input-queue flits.
  void promote_arrivals(int r) {
    auto& router = routers[static_cast<std::size_t>(r)];
    bool promoted = false;
    for (auto& in : router.inputs) {
      while (!in.in_flight.empty() && in.in_flight.front().arrival <= now) {
        const Flit& flit = in.in_flight.front().flit;
        const int vc = vc_of(flit);
        in.queues[static_cast<std::size_t>(vc)].push_back(flit);
        --in.pending[static_cast<std::size_t>(vc)];
        in.in_flight.pop_front();
        ++router.queued_flits;
        promoted = true;
      }
    }
    if (promoted) arm(r);
  }

  /// Output port a flit at router `r` wants next (head flits only).
  int output_for(const Flit& flit, graph::NodeId r) const {
    const auto& path = *flit.packet->path;
    if (flit.hop + 1 < static_cast<int>(path.nodes.size())) {
      const graph::EdgeId e =
          path.edges[static_cast<std::size_t>(flit.hop)];
      return layout->out_port_of_edge[static_cast<std::size_t>(e)];
    }
    // Last switch: eject to the destination slot's sink port.
    const int dst = flit.packet->dst;
    const auto& shape = layout->routers[static_cast<std::size_t>(r)];
    for (std::size_t p = 0; p < shape.outputs.size(); ++p) {
      if (shape.outputs[p].is_sink && shape.outputs[p].sink_slot == dst) {
        return static_cast<int>(p);
      }
    }
    throw std::logic_error("Simulator: no ejection port for destination");
  }

  void deliver(const Flit& flit) {
    --flits_in_network;
    if (now >= config.warmup_cycles) ++delivered_flits_since_warmup;
    if (!flit.tail) return;
    Packet* pkt = flit.packet;
    if (!pkt->measured) return;
    const double latency =
        static_cast<double>(now + 1 - pkt->gen_cycle);
    ++measured_delivered;
    latency_sum += latency;
    latency_max = std::max(latency_max, latency);
    latencies.push_back(latency);
  }

  /// Switch allocation and traversal for one router (identical model to
  /// Simulator::Impl::allocate_router; see simulator.cpp for commentary).
  int allocate_router(std::size_t r) {
    int moved = 0;
    auto& router = routers[r];
    const auto& shape = layout->routers[r];
    for (std::size_t o = 0; o < router.outputs.size(); ++o) {
      auto& out = router.outputs[o];
      const auto& out_shape = shape.outputs[o];
      bool granted = false;
      for (int kv = 0; kv < num_vcs && !granted; ++kv) {
        const int vc = (out.vc_rr + kv) % num_vcs;
        const auto vcz = static_cast<std::size_t>(vc);

        int grant_in = -1;
        if (out.locked[vcz] != nullptr) {
          // Wormhole: the owning packet keeps this output VC until tail.
          auto& in = router.inputs[static_cast<std::size_t>(
              out.locked_in[vcz])];
          if (in.popped_cycle != now && !in.queues[vcz].empty() &&
              in.queues[vcz].front().packet == out.locked[vcz]) {
            grant_in = out.locked_in[vcz];
          }
        } else {
          // Round-robin over head flits in this VC requesting this output.
          const int n = static_cast<int>(router.inputs.size());
          for (int k = 0; k < n; ++k) {
            const int i = (out.rr_next[vcz] + k) % n;
            auto& in = router.inputs[static_cast<std::size_t>(i)];
            if (in.popped_cycle == now || in.queues[vcz].empty()) continue;
            const Flit& flit = in.queues[vcz].front();
            if (!flit.head) continue;
            if (output_for(flit, static_cast<graph::NodeId>(r)) !=
                static_cast<int>(o)) {
              continue;
            }
            grant_in = i;
            out.rr_next[vcz] = (i + 1) % n;
            break;
          }
        }
        if (grant_in < 0) continue;

        auto& in = router.inputs[static_cast<std::size_t>(grant_in)];
        const Flit& head = in.queues[vcz].front();

        // Flow control: space in the downstream VC this flit will occupy
        // (its hop increments across the link); sinks always accept.
        if (!out_shape.is_sink) {
          Flit next = head;
          ++next.hop;
          const auto& dst_port =
              routers[static_cast<std::size_t>(out_shape.dst_router)]
                  .inputs[static_cast<std::size_t>(out_shape.dst_in_port)];
          if (!dst_port.has_space(vc_of(next))) continue;
        }

        Flit flit = head;
        in.queues[vcz].pop_front();
        in.popped_cycle = now;
        --router.queued_flits;
        ++moved;
        granted = true;
        out.vc_rr = (vc + 1) % num_vcs;

        if (flit.head && !flit.tail) {
          out.locked[vcz] = flit.packet;
          out.locked_in[vcz] = grant_in;
        }
        if (flit.tail) {
          out.locked[vcz] = nullptr;
          out.locked_in[vcz] = -1;
        }

        if (out_shape.is_sink) {
          deliver(flit);
        } else {
          Flit next = flit;
          ++next.hop;
          auto& dst_port =
              routers[static_cast<std::size_t>(out_shape.dst_router)]
                  .inputs[static_cast<std::size_t>(out_shape.dst_in_port)];
          ++dst_port.pending[static_cast<std::size_t>(vc_of(next))];
          const std::uint64_t when =
              now + static_cast<std::uint64_t>(config.link_latency_cycles);
          dst_port.in_flight.push_back(InFlight{when, next});
          arrivals.schedule(when, out_shape.dst_router);
        }
      }
    }
    return moved;
  }

  SimStats run(TrafficModel& traffic) {
    reset();
    SimStats stats;
    const bool event_driven = config.engine == SimEngine::kEventDriven;
    const std::uint64_t measure_end =
        config.warmup_cycles + config.measure_cycles;
    const std::uint64_t hard_end = measure_end + config.drain_cycles;
    std::uint64_t stall = 0;

    while (now < hard_end) {
      const bool measure_window =
          now >= config.warmup_cycles && now < measure_end;

      // 1. Link arrivals become visible.
      if (event_driven) {
        while (arrivals.due(now)) {
          promote_arrivals(arrivals.front().payload);
          arrivals.pop();
        }
      } else {
        for (std::size_t r = 0; r < routers.size(); ++r) {
          promote_arrivals(static_cast<int>(r));
        }
      }

      // 2. New packets.
      injections_buf.clear();
      traffic.injections(now, prng, injections_buf);
      for (const auto& [src, dst] : injections_buf) {
        if (src == dst) continue;
        inject(src, dst, measure_window);
      }

      // 3. Switch allocation and traversal.
      int moved = 0;
      if (event_driven) {
        for (std::size_t idx = 0; idx < armed_ids.size(); ++idx) {
          moved += allocate_router(
              static_cast<std::size_t>(armed_ids[idx]));
        }
        std::size_t w = 0;
        for (const int id : armed_ids) {
          if (routers[static_cast<std::size_t>(id)].queued_flits > 0) {
            armed_ids[w++] = id;
          } else {
            armed[static_cast<std::size_t>(id)] = 0;
          }
        }
        armed_ids.resize(w);
      } else {
        for (std::size_t r = 0; r < routers.size(); ++r) {
          moved += allocate_router(r);
        }
      }
      total_flit_events += static_cast<std::uint64_t>(moved);

      if (moved == 0 && flits_in_network > 0) {
        ++stats.stalled_cycles;
        if (++stall >= config.stall_limit_cycles) {
          stats.saturated = true;
          stats.status = RunStatus::kStalled;
          break;
        }
      } else {
        stall = 0;
      }
      ++now;
      if (now >= measure_end && measured_delivered == measured_generated) {
        break;  // fully drained
      }
    }

    stats.cycles = now;
    stats.packets_generated = measured_generated;
    stats.packets_delivered = measured_delivered;
    stats.flit_events = total_flit_events;
    if (measured_delivered > 0) {
      stats.avg_latency_cycles =
          latency_sum / static_cast<double>(measured_delivered);
      stats.max_latency_cycles = latency_max;
      std::sort(latencies.begin(), latencies.end());
      auto percentile = [&](double p) {
        const auto rank = static_cast<std::size_t>(
            p * static_cast<double>(latencies.size() - 1));
        return latencies[rank];
      };
      stats.p50_latency_cycles = percentile(0.50);
      stats.p95_latency_cycles = percentile(0.95);
      stats.p99_latency_cycles = percentile(0.99);
    }
    stats.undelivered_packets = measured_generated - measured_delivered;
    if (measured_delivered < measured_generated) {
      stats.saturated = true;
      if (stats.status == RunStatus::kDrained) {
        stats.status = RunStatus::kUndelivered;
      }
    }
    const std::uint64_t span = now > config.warmup_cycles
                                   ? now - config.warmup_cycles
                                   : 1;
    stats.throughput_flits_per_cycle_per_slot =
        static_cast<double>(delivered_flits_since_warmup) /
        static_cast<double>(span) /
        static_cast<double>(topology.num_slots());
    stats.offered_flits_per_cycle_per_slot =
        static_cast<double>(injected_flits_since_warmup) /
        static_cast<double>(span) /
        static_cast<double>(topology.num_slots());
    if (stats.offered_flits_per_cycle_per_slot > 0.0 &&
        stats.throughput_flits_per_cycle_per_slot <
            0.9 * stats.offered_flits_per_cycle_per_slot) {
      stats.saturated = true;
      if (stats.status == RunStatus::kDrained) {
        stats.status = RunStatus::kSaturatedThroughput;
      }
    }
    return stats;
  }
};

BaselineSimulator::BaselineSimulator(
    const topo::Topology& topology, const RouteTable& routes, SimConfig config,
    std::shared_ptr<const NetworkLayout> layout)
    : impl_(std::make_unique<Impl>(topology, routes, config,
                                   std::move(layout))) {}

BaselineSimulator::~BaselineSimulator() = default;

void BaselineSimulator::bind(const RouteTable& routes) {
  impl_->routes = &routes;
}

SimStats BaselineSimulator::run(TrafficModel& traffic) {
  return impl_->run(traffic);
}

}  // namespace sunmap::sim
