#include "sim/traffic.h"

#include <cmath>
#include <stdexcept>

namespace sunmap::sim {

const char* to_string(Pattern pattern) {
  switch (pattern) {
    case Pattern::kUniform:
      return "uniform";
    case Pattern::kTranspose:
      return "transpose";
    case Pattern::kBitComplement:
      return "bit-complement";
    case Pattern::kBitReverse:
      return "bit-reverse";
    case Pattern::kTornado:
      return "tornado";
    case Pattern::kShuffle:
      return "shuffle";
    case Pattern::kHotspot:
      return "hotspot";
  }
  return "?";
}

namespace {

int bits_for(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

}  // namespace

PatternTraffic::PatternTraffic(int num_slots, Pattern pattern,
                               double injection_rate, int flits_per_packet)
    : num_slots_(num_slots),
      pattern_(pattern),
      packet_rate_(injection_rate / static_cast<double>(flits_per_packet)) {
  if (num_slots < 2) {
    throw std::invalid_argument("PatternTraffic: need at least two slots");
  }
  if (injection_rate < 0.0 || flits_per_packet < 1) {
    throw std::invalid_argument("PatternTraffic: invalid rate or size");
  }
}

void PatternTraffic::set_hotspot(int slot, double fraction) {
  if (slot < 0 || slot >= num_slots_ || fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("PatternTraffic: invalid hotspot");
  }
  hotspot_slot_ = slot;
  hotspot_fraction_ = fraction;
}

int PatternTraffic::destination(int src, util::Prng& prng) const {
  const int n = num_slots_;
  switch (pattern_) {
    case Pattern::kUniform: {
      const int dst = static_cast<int>(
          prng.next_below(static_cast<std::uint64_t>(n - 1)));
      return dst >= src ? dst + 1 : dst;
    }
    case Pattern::kTranspose: {
      const int side = static_cast<int>(std::lround(std::sqrt(n)));
      if (side * side == n) {
        return (src % side) * side + src / side;
      }
      return (n - src) % n;  // degenerate grids fall back to reversal
    }
    case Pattern::kBitComplement: {
      const int bits = bits_for(n);
      return (~src) & ((1 << bits) - 1) & (n - 1);
    }
    case Pattern::kBitReverse: {
      const int bits = bits_for(n);
      int rev = 0;
      for (int b = 0; b < bits; ++b) {
        if ((src >> b) & 1) rev |= 1 << (bits - 1 - b);
      }
      return rev % n;
    }
    case Pattern::kTornado:
      return (src + (n + 1) / 2 - 1) % n;
    case Pattern::kShuffle: {
      const int bits = bits_for(n);
      return ((src << 1) | (src >> (bits - 1))) & ((1 << bits) - 1) & (n - 1);
    }
    case Pattern::kHotspot: {
      if (prng.chance(hotspot_fraction_) && src != hotspot_slot_) {
        return hotspot_slot_;
      }
      const int dst = static_cast<int>(
          prng.next_below(static_cast<std::uint64_t>(n - 1)));
      return dst >= src ? dst + 1 : dst;
    }
  }
  throw std::logic_error("PatternTraffic: unknown pattern");
}

void PatternTraffic::injections(std::uint64_t /*cycle*/, util::Prng& prng,
                                std::vector<std::pair<int, int>>& out) {
  for (int src = 0; src < num_slots_; ++src) {
    if (!prng.chance(packet_rate_)) continue;
    const int dst = destination(src, prng);
    if (dst == src || dst < 0 || dst >= num_slots_) continue;
    out.emplace_back(src, dst);
  }
}

void BurstyTraffic::shape_burst(double burst_len, double duty) {
  if (burst_len < 1.0 || duty <= 0.0 || duty >= 1.0) {
    throw std::invalid_argument("BurstyTraffic: invalid burst shape");
  }
  // Geometric state holding times: mean burst of `burst_len` cycles, and an
  // idle mean sized so bursts cover `duty` of the timeline in steady state.
  p_exit_burst_ = 1.0 / burst_len;
  const double idle_len = burst_len * (1.0 - duty) / duty;
  p_enter_burst_ = 1.0 / std::max(1.0, idle_len);
}

BurstyTraffic::BurstyTraffic(int num_slots, Pattern pattern,
                             double burst_rate, int flits_per_packet,
                             double burst_len, double duty)
    : pattern_(std::in_place, num_slots, pattern, burst_rate,
               flits_per_packet),
      packet_rate_(burst_rate / static_cast<double>(flits_per_packet)),
      bursting_(static_cast<std::size_t>(num_slots), 0) {
  shape_burst(burst_len, duty);
}

BurstyTraffic::BurstyTraffic(std::vector<TrafficFlow> flows,
                             int flits_per_packet,
                             double flits_per_cycle_per_gbps,
                             double burst_len, double duty)
    : flows_(std::move(flows)),
      bursting_(flows_.size(), 0) {
  if (flits_per_packet < 1 || flits_per_cycle_per_gbps <= 0.0) {
    throw std::invalid_argument("BurstyTraffic: invalid scaling");
  }
  shape_burst(burst_len, duty);
  // In-burst rate = trace rate / duty: the long-run offered load matches
  // the plain trace while bursts concentrate it.
  flow_prob_.reserve(flows_.size());
  for (const auto& flow : flows_) {
    if (flow.rate_mbps <= 0.0) {
      throw std::invalid_argument("BurstyTraffic: flow rate must be positive");
    }
    const double flits_per_cycle =
        flow.rate_mbps / 1000.0 * flits_per_cycle_per_gbps;
    const double prob = flits_per_cycle / flits_per_packet / duty;
    if (prob > 1.0) {
      throw std::invalid_argument(
          "BurstyTraffic: in-burst flow rate exceeds one packet per cycle "
          "(lower the trace scaling or raise the duty cycle)");
    }
    flow_prob_.push_back(prob);
  }
}

void BurstyTraffic::injections(std::uint64_t /*cycle*/, util::Prng& prng,
                               std::vector<std::pair<int, int>>& out) {
  for (std::size_t s = 0; s < bursting_.size(); ++s) {
    // One transition draw per source per cycle, then the usual Bernoulli
    // injection while bursting — a fixed per-cycle draw order, so both
    // simulation engines consume the PRNG identically.
    if (bursting_[s] != 0) {
      if (prng.chance(p_exit_burst_)) bursting_[s] = 0;
    } else {
      if (prng.chance(p_enter_burst_)) bursting_[s] = 1;
    }
    if (bursting_[s] == 0) continue;
    if (!pattern_.has_value()) {
      // Trace mode: one on/off process per flow.
      if (prng.chance(flow_prob_[s])) {
        out.emplace_back(flows_[s].src_slot, flows_[s].dst_slot);
      }
      continue;
    }
    if (!prng.chance(packet_rate_)) continue;
    const int src = static_cast<int>(s);
    const int dst = pattern_->destination(src, prng);
    if (dst == src || dst < 0 ||
        dst >= static_cast<int>(bursting_.size())) {
      continue;
    }
    out.emplace_back(src, dst);
  }
}

TraceTraffic::TraceTraffic(std::vector<TrafficFlow> flows,
                           int flits_per_packet,
                           double flits_per_cycle_per_gbps)
    : flows_(std::move(flows)), flits_per_packet_(flits_per_packet) {
  if (flits_per_packet < 1 || flits_per_cycle_per_gbps <= 0.0) {
    throw std::invalid_argument("TraceTraffic: invalid scaling");
  }
  packet_prob_.reserve(flows_.size());
  for (const auto& flow : flows_) {
    if (flow.rate_mbps <= 0.0) {
      throw std::invalid_argument("TraceTraffic: flow rate must be positive");
    }
    const double flits_per_cycle =
        flow.rate_mbps / 1000.0 * flits_per_cycle_per_gbps;
    const double prob = flits_per_cycle / flits_per_packet;
    if (prob > 1.0) {
      throw std::invalid_argument(
          "TraceTraffic: flow rate exceeds one packet per cycle");
    }
    packet_prob_.push_back(prob);
  }
}

double TraceTraffic::offered_flits_per_cycle() const {
  double total = 0.0;
  for (double prob : packet_prob_) {
    total += prob * flits_per_packet_;
  }
  return total;
}

void TraceTraffic::injections(std::uint64_t /*cycle*/, util::Prng& prng,
                              std::vector<std::pair<int, int>>& out) {
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (prng.chance(packet_prob_[i])) {
      out.emplace_back(flows_[i].src_slot, flows_[i].dst_slot);
    }
  }
}

}  // namespace sunmap::sim
