#pragma once

#include <cassert>
#include <cstdint>
#include <deque>

namespace sunmap::sim {

/// One scheduled wakeup: at `cycle`, the consumer identified by `payload`
/// (a router index in the simulator) has work to do.
struct Event {
  std::uint64_t cycle = 0;
  int payload = 0;
};

/// Monotonic, cycle-keyed event queue for the event-driven simulation
/// engine.
///
/// The engine only ever schedules into the future at a fixed horizon
/// (`now + link_latency`), so event cycles are nondecreasing in schedule
/// order and a plain FIFO is a complete priority queue: events pop in
/// (cycle, schedule-order) order with no heap and no comparator. The
/// schedule-order tie-break within a cycle is what makes replays
/// deterministic — two flits sent on the same cycle always wake their
/// destination routers in the order the grants happened.
///
/// Consecutive duplicate (cycle, payload) pairs are coalesced on insert;
/// non-adjacent duplicates are allowed and must be harmless to process
/// twice (the simulator's wakeups are idempotent drains).
class EventQueue {
 public:
  void schedule(std::uint64_t cycle, int payload) {
    assert(events_.empty() || cycle >= events_.back().cycle);
    if (!events_.empty() && events_.back().cycle == cycle &&
        events_.back().payload == payload) {
      return;
    }
    events_.push_back(Event{cycle, payload});
  }

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// True when the earliest event is due at or before `now`.
  [[nodiscard]] bool due(std::uint64_t now) const {
    return !events_.empty() && events_.front().cycle <= now;
  }

  [[nodiscard]] const Event& front() const { return events_.front(); }
  void pop() { events_.pop_front(); }
  void clear() { events_.clear(); }

 private:
  std::deque<Event> events_;
};

}  // namespace sunmap::sim
