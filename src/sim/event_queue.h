#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace sunmap::sim {

/// One scheduled wakeup: at `cycle`, the consumer identified by `payload`
/// (a router index in the simulator) has work to do.
struct Event {
  std::uint64_t cycle = 0;
  int payload = 0;
};

/// Monotonic, cycle-keyed event queue for the event-driven simulation
/// engine.
///
/// The engine only ever schedules into the future at a fixed horizon
/// (`now + link_latency`), so event cycles are nondecreasing in schedule
/// order and a plain FIFO is a complete priority queue: events pop in
/// (cycle, schedule-order) order with no heap and no comparator. The
/// schedule-order tie-break within a cycle is what makes replays
/// deterministic — two flits sent on the same cycle always wake their
/// destination routers in the order the grants happened.
///
/// Consecutive duplicate (cycle, payload) pairs are coalesced on insert;
/// non-adjacent duplicates are allowed and must be harmless to process
/// twice (the simulator's wakeups are idempotent drains).
///
/// Events live in one growable power-of-two ring arena: the queue grows to
/// its high-water mark once and then recycles slots, so the steady-state
/// schedule/pop cycle performs no allocation (a std::deque frees and
/// re-acquires chunk nodes as events stream through it). clear() keeps the
/// arena, so repeated runs over the same binding reuse the same storage.
class EventQueue {
 public:
  void schedule(std::uint64_t cycle, int payload) {
    assert(count_ == 0 || cycle >= back().cycle);
    if (count_ != 0 && back().cycle == cycle && back().payload == payload) {
      return;
    }
    if (count_ == arena_.size()) grow();
    arena_[(head_ + count_) & mask_] = Event{cycle, payload};
    ++count_;
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// True when the earliest event is due at or before `now`.
  [[nodiscard]] bool due(std::uint64_t now) const {
    return count_ != 0 && arena_[head_].cycle <= now;
  }

  [[nodiscard]] const Event& front() const { return arena_[head_]; }
  void pop() {
    head_ = (head_ + 1) & mask_;
    --count_;
  }
  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  [[nodiscard]] const Event& back() const {
    return arena_[(head_ + count_ - 1) & mask_];
  }

  void grow() {
    const std::size_t cap = arena_.empty() ? 64 : arena_.size() * 2;
    std::vector<Event> next(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = arena_[(head_ + i) & mask_];
    }
    arena_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<Event> arena_;
  std::size_t mask_ = 0;  // arena_.size() - 1 (power of two), 0 when empty
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace sunmap::sim
