#include "sim/simulator.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace sunmap::sim {

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kDrained:
      return "drained";
    case RunStatus::kSaturatedThroughput:
      return "saturated-throughput";
    case RunStatus::kUndelivered:
      return "undelivered";
    case RunStatus::kStalled:
      return "stalled";
  }
  return "?";
}

namespace {

struct Packet {
  int src = 0;
  int dst = 0;
  const graph::Path* path = nullptr;  // owned by the route table
  std::uint64_t gen_cycle = 0;
  bool measured = false;
};

struct Flit {
  Packet* packet = nullptr;
  bool head = false;
  bool tail = false;
  int hop = 0;  ///< Index of the router currently holding the flit.
};

struct InFlight {
  std::uint64_t arrival = 0;
  Flit flit;
};

struct InputPort {
  /// One FIFO per virtual channel. A flit at hop h sits in VC h
  /// (distance-class assignment); with a single VC everything is queues[0].
  std::vector<std::deque<Flit>> queues;
  std::vector<int> pending;        ///< In-flight flits headed to each VC.
  std::deque<InFlight> in_flight;  ///< On the upstream link, FIFO.
  int capacity = 4;                ///< Per VC; INT_MAX for source queues.
  bool popped_this_cycle = false;  ///< Input speedup is 1 flit/cycle.

  [[nodiscard]] bool has_space(int vc) const {
    return static_cast<int>(queues[static_cast<std::size_t>(vc)].size()) +
               pending[static_cast<std::size_t>(vc)] <
           capacity;
  }
};

struct OutputPort {
  // Destination: either a network link to (router, input port) or a sink.
  bool is_sink = false;
  int dst_router = -1;
  int dst_in_port = -1;
  int sink_slot = -1;

  // Per-VC wormhole state: the packet owning this output VC and the input
  // it is draining from.
  std::vector<Packet*> locked;
  std::vector<int> locked_in;
  std::vector<int> rr_next;  ///< Per-VC round-robin over inputs.
  int vc_rr = 0;             ///< Round-robin over VCs for the physical link.
};

struct Router {
  std::vector<InputPort> inputs;
  std::vector<OutputPort> outputs;
};

}  // namespace

struct Simulator::Impl {
  const topo::Topology& topology;
  const RouteTable& routes;
  SimConfig config;
  util::Prng prng;

  std::vector<Router> routers;
  std::vector<int> out_port_of_edge;    // EdgeId -> output port at edge.src
  std::vector<int> in_port_of_edge;     // EdgeId -> input port at edge.dst
  std::vector<int> inject_port_of_slot; // SlotId -> input port at ingress
  std::deque<Packet> packets;

  std::uint64_t now = 0;
  std::uint64_t flits_in_network = 0;
  std::uint64_t delivered_flits_since_warmup = 0;
  std::uint64_t injected_flits_since_warmup = 0;

  // Measurement accumulators.
  std::uint64_t measured_generated = 0;
  std::uint64_t measured_delivered = 0;
  double latency_sum = 0.0;
  double latency_max = 0.0;
  std::vector<double> latencies;  // per measured packet, for percentiles

  int num_vcs = 1;

  Impl(const topo::Topology& topo, const RouteTable& table, SimConfig cfg)
      : topology(topo), routes(table), config(cfg), prng(cfg.seed) {
    if (cfg.flits_per_packet < 1 || cfg.buffer_depth_flits < 1 ||
        cfg.link_latency_cycles < 1) {
      throw std::invalid_argument("SimConfig: invalid parameters");
    }
    if (cfg.distance_class_vcs) {
      num_vcs = std::max(1, routes.max_path_switches());
    }
    build_network();
  }

  /// VC a queued flit occupies: its hop index under distance-class VCs.
  [[nodiscard]] int vc_of(const Flit& flit) const {
    return num_vcs == 1 ? 0 : std::min(flit.hop, num_vcs - 1);
  }

  void build_network() {
    const auto& g = topology.switch_graph();
    routers.resize(static_cast<std::size_t>(g.num_nodes()));
    out_port_of_edge.assign(static_cast<std::size_t>(g.num_edges()), -1);
    in_port_of_edge.assign(static_cast<std::size_t>(g.num_edges()), -1);
    inject_port_of_slot.assign(static_cast<std::size_t>(topology.num_slots()),
                               -1);

    auto make_input = [&](int capacity) {
      InputPort port;
      port.capacity = capacity;
      port.queues.resize(static_cast<std::size_t>(num_vcs));
      port.pending.assign(static_cast<std::size_t>(num_vcs), 0);
      return port;
    };
    auto make_output = [&]() {
      OutputPort port;
      port.locked.assign(static_cast<std::size_t>(num_vcs), nullptr);
      port.locked_in.assign(static_cast<std::size_t>(num_vcs), -1);
      port.rr_next.assign(static_cast<std::size_t>(num_vcs), 0);
      return port;
    };

    // Network input/output ports follow edge order, then core attachments.
    for (graph::NodeId r = 0; r < g.num_nodes(); ++r) {
      auto& router = routers[static_cast<std::size_t>(r)];
      for (graph::EdgeId e : g.in_edges(r)) {
        in_port_of_edge[static_cast<std::size_t>(e)] =
            static_cast<int>(router.inputs.size());
        router.inputs.push_back(make_input(config.buffer_depth_flits));
      }
      for (graph::EdgeId e : g.out_edges(r)) {
        out_port_of_edge[static_cast<std::size_t>(e)] =
            static_cast<int>(router.outputs.size());
        router.outputs.push_back(make_output());
      }
    }
    for (int s = 0; s < topology.num_slots(); ++s) {
      auto& in_router =
          routers[static_cast<std::size_t>(topology.ingress_switch(s))];
      inject_port_of_slot[static_cast<std::size_t>(s)] =
          static_cast<int>(in_router.inputs.size());
      in_router.inputs.push_back(
          make_input(std::numeric_limits<int>::max()));

      auto& out_router =
          routers[static_cast<std::size_t>(topology.egress_switch(s))];
      auto sink = make_output();
      sink.is_sink = true;
      sink.sink_slot = s;
      out_router.outputs.push_back(std::move(sink));
    }
    // Wire up link destinations.
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& edge = g.edge(e);
      auto& out =
          routers[static_cast<std::size_t>(edge.src)]
              .outputs[static_cast<std::size_t>(
                  out_port_of_edge[static_cast<std::size_t>(e)])];
      out.dst_router = edge.dst;
      out.dst_in_port = in_port_of_edge[static_cast<std::size_t>(e)];
    }
  }

  /// Samples one weighted path for a new packet.
  const graph::Path* sample_path(int src, int dst) {
    const auto& set = routes.at(src, dst);
    double r = prng.next_double();
    for (const auto& wp : set.paths) {
      r -= wp.fraction;
      if (r <= 0.0) return &wp.path;
    }
    return &set.paths.back().path;
  }

  void inject(int src, int dst, bool measured) {
    packets.push_back(Packet{src, dst, sample_path(src, dst), now, measured});
    Packet* pkt = &packets.back();
    if (measured) ++measured_generated;
    auto& port =
        routers[static_cast<std::size_t>(topology.ingress_switch(src))]
            .inputs[static_cast<std::size_t>(
                inject_port_of_slot[static_cast<std::size_t>(src)])];
    for (int f = 0; f < config.flits_per_packet; ++f) {
      port.queues[0].push_back(Flit{pkt, f == 0,
                                    f == config.flits_per_packet - 1, 0});
      ++flits_in_network;
      if (now >= config.warmup_cycles) ++injected_flits_since_warmup;
    }
  }

  /// Output port a flit at router `r` wants next (head flits only).
  int output_for(const Flit& flit, graph::NodeId r) const {
    const auto& path = *flit.packet->path;
    if (flit.hop + 1 < static_cast<int>(path.nodes.size())) {
      const graph::EdgeId e =
          path.edges[static_cast<std::size_t>(flit.hop)];
      return out_port_of_edge[static_cast<std::size_t>(e)];
    }
    // Last switch: eject to the destination slot's sink port.
    const int dst = flit.packet->dst;
    const auto& router = routers[static_cast<std::size_t>(r)];
    for (std::size_t p = 0; p < router.outputs.size(); ++p) {
      if (router.outputs[p].is_sink && router.outputs[p].sink_slot == dst) {
        return static_cast<int>(p);
      }
    }
    throw std::logic_error("Simulator: no ejection port for destination");
  }

  void deliver(const Flit& flit) {
    --flits_in_network;
    if (now >= config.warmup_cycles) ++delivered_flits_since_warmup;
    if (!flit.tail) return;
    Packet* pkt = flit.packet;
    if (!pkt->measured) return;
    const double latency =
        static_cast<double>(now + 1 - pkt->gen_cycle);
    ++measured_delivered;
    latency_sum += latency;
    latency_max = std::max(latency_max, latency);
    latencies.push_back(latency);
  }

  /// One simulation cycle; returns the number of flits that moved.
  int step(TrafficModel& traffic, bool measure_window) {
    // 1. Link arrivals become visible; reset per-cycle state.
    for (auto& router : routers) {
      for (auto& in : router.inputs) {
        in.popped_this_cycle = false;
        while (!in.in_flight.empty() && in.in_flight.front().arrival <= now) {
          const Flit& flit = in.in_flight.front().flit;
          const int vc = vc_of(flit);
          in.queues[static_cast<std::size_t>(vc)].push_back(flit);
          --in.pending[static_cast<std::size_t>(vc)];
          in.in_flight.pop_front();
        }
      }
    }

    // 2. New packets.
    static thread_local std::vector<std::pair<int, int>> injections;
    injections.clear();
    traffic.injections(now, prng, injections);
    for (const auto& [src, dst] : injections) {
      if (src == dst) continue;
      inject(src, dst, measure_window);
    }

    // 3. Switch allocation and traversal: each output port (physical link)
    // moves at most one flit per cycle, round-robining over its virtual
    // channels, each of which holds its own wormhole lock.
    int moved = 0;
    for (std::size_t r = 0; r < routers.size(); ++r) {
      auto& router = routers[r];
      for (auto& out : router.outputs) {
        bool granted = false;
        for (int kv = 0; kv < num_vcs && !granted; ++kv) {
          const int vc = (out.vc_rr + kv) % num_vcs;
          const auto vcz = static_cast<std::size_t>(vc);

          int grant_in = -1;
          if (out.locked[vcz] != nullptr) {
            // Wormhole: the owning packet keeps this output VC until tail.
            auto& in = router.inputs[static_cast<std::size_t>(
                out.locked_in[vcz])];
            if (!in.popped_this_cycle && !in.queues[vcz].empty() &&
                in.queues[vcz].front().packet == out.locked[vcz]) {
              grant_in = out.locked_in[vcz];
            }
          } else {
            // Round-robin over head flits in this VC requesting this output.
            const int n = static_cast<int>(router.inputs.size());
            for (int k = 0; k < n; ++k) {
              const int i = (out.rr_next[vcz] + k) % n;
              auto& in = router.inputs[static_cast<std::size_t>(i)];
              if (in.popped_this_cycle || in.queues[vcz].empty()) continue;
              const Flit& flit = in.queues[vcz].front();
              if (!flit.head) continue;
              if (output_for(flit, static_cast<graph::NodeId>(r)) !=
                  static_cast<int>(&out - router.outputs.data())) {
                continue;
              }
              grant_in = i;
              out.rr_next[vcz] = (i + 1) % n;
              break;
            }
          }
          if (grant_in < 0) continue;

          auto& in = router.inputs[static_cast<std::size_t>(grant_in)];
          const Flit& head = in.queues[vcz].front();

          // Flow control: space in the downstream VC this flit will occupy
          // (its hop increments across the link); sinks always accept.
          if (!out.is_sink) {
            Flit next = head;
            ++next.hop;
            const auto& dst_port =
                routers[static_cast<std::size_t>(out.dst_router)]
                    .inputs[static_cast<std::size_t>(out.dst_in_port)];
            if (!dst_port.has_space(vc_of(next))) continue;
          }

          Flit flit = head;
          in.queues[vcz].pop_front();
          in.popped_this_cycle = true;
          ++moved;
          granted = true;
          out.vc_rr = (vc + 1) % num_vcs;

          if (flit.head && !flit.tail) {
            out.locked[vcz] = flit.packet;
            out.locked_in[vcz] = grant_in;
          }
          if (flit.tail) {
            out.locked[vcz] = nullptr;
            out.locked_in[vcz] = -1;
          }

          if (out.is_sink) {
            deliver(flit);
          } else {
            Flit next = flit;
            ++next.hop;
            auto& dst_port =
                routers[static_cast<std::size_t>(out.dst_router)]
                    .inputs[static_cast<std::size_t>(out.dst_in_port)];
            ++dst_port.pending[static_cast<std::size_t>(vc_of(next))];
            dst_port.in_flight.push_back(InFlight{
                now + static_cast<std::uint64_t>(config.link_latency_cycles),
                next});
          }
        }
      }
    }
    return moved;
  }

  SimStats run(TrafficModel& traffic) {
    SimStats stats;
    const std::uint64_t measure_end =
        config.warmup_cycles + config.measure_cycles;
    const std::uint64_t hard_end = measure_end + config.drain_cycles;
    std::uint64_t stall = 0;

    while (now < hard_end) {
      const bool measure_window =
          now >= config.warmup_cycles && now < measure_end;
      const int moved = step(traffic, measure_window);
      if (moved == 0 && flits_in_network > 0) {
        ++stats.stalled_cycles;
        if (++stall >= config.stall_limit_cycles) {
          stats.saturated = true;
          stats.status = RunStatus::kStalled;
          break;
        }
      } else {
        stall = 0;
      }
      ++now;
      if (now >= measure_end && measured_delivered == measured_generated) {
        break;  // fully drained
      }
    }

    stats.cycles = now;
    stats.packets_generated = measured_generated;
    stats.packets_delivered = measured_delivered;
    if (measured_delivered > 0) {
      stats.avg_latency_cycles =
          latency_sum / static_cast<double>(measured_delivered);
      stats.max_latency_cycles = latency_max;
      std::sort(latencies.begin(), latencies.end());
      auto percentile = [&](double p) {
        const auto rank = static_cast<std::size_t>(
            p * static_cast<double>(latencies.size() - 1));
        return latencies[rank];
      };
      stats.p50_latency_cycles = percentile(0.50);
      stats.p95_latency_cycles = percentile(0.95);
      stats.p99_latency_cycles = percentile(0.99);
    }
    stats.undelivered_packets = measured_generated - measured_delivered;
    if (measured_delivered < measured_generated) {
      stats.saturated = true;
      if (stats.status == RunStatus::kDrained) {
        stats.status = RunStatus::kUndelivered;
      }
    }
    const std::uint64_t span = now > config.warmup_cycles
                                   ? now - config.warmup_cycles
                                   : 1;
    stats.throughput_flits_per_cycle_per_slot =
        static_cast<double>(delivered_flits_since_warmup) /
        static_cast<double>(span) /
        static_cast<double>(topology.num_slots());
    stats.offered_flits_per_cycle_per_slot =
        static_cast<double>(injected_flits_since_warmup) /
        static_cast<double>(span) /
        static_cast<double>(topology.num_slots());
    // Acceptance meaningfully below the offered rate means the network is
    // past its saturation throughput even if the measured packets drained.
    if (stats.offered_flits_per_cycle_per_slot > 0.0 &&
        stats.throughput_flits_per_cycle_per_slot <
            0.9 * stats.offered_flits_per_cycle_per_slot) {
      stats.saturated = true;
      if (stats.status == RunStatus::kDrained) {
        stats.status = RunStatus::kSaturatedThroughput;
      }
    }
    return stats;
  }
};

Simulator::Simulator(const topo::Topology& topology, const RouteTable& routes,
                     SimConfig config)
    : impl_(std::make_unique<Impl>(topology, routes, config)) {}

Simulator::~Simulator() = default;

SimStats Simulator::run(TrafficModel& traffic) { return impl_->run(traffic); }

SimStats simulate_pattern(const topo::Topology& topology,
                          const RouteTable& routes, Pattern pattern,
                          double injection_rate, const SimConfig& config) {
  PatternTraffic traffic(topology.num_slots(), pattern, injection_rate,
                         config.flits_per_packet);
  Simulator simulator(topology, routes, config);
  return simulator.run(traffic);
}

}  // namespace sunmap::sim
