#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/event_queue.h"

namespace sunmap::sim {

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kDrained:
      return "drained";
    case RunStatus::kSaturatedThroughput:
      return "saturated-throughput";
    case RunStatus::kUndelivered:
      return "undelivered";
    case RunStatus::kStalled:
      return "stalled";
  }
  return "?";
}

const char* to_string(SimEngine engine) {
  switch (engine) {
    case SimEngine::kEventDriven:
      return "event";
    case SimEngine::kCycleStepped:
      return "cycle";
  }
  return "?";
}

std::shared_ptr<const NetworkLayout> make_network_layout(
    const topo::Topology& topology) {
  auto layout = std::make_shared<NetworkLayout>();
  const auto& g = topology.switch_graph();
  layout->routers.resize(static_cast<std::size_t>(g.num_nodes()));
  layout->out_port_of_edge.assign(static_cast<std::size_t>(g.num_edges()),
                                  -1);
  layout->in_port_of_edge.assign(static_cast<std::size_t>(g.num_edges()), -1);
  layout->inject_port_of_slot.assign(
      static_cast<std::size_t>(topology.num_slots()), -1);
  layout->sink_port_of_slot.assign(
      static_cast<std::size_t>(topology.num_slots()), -1);

  // Network input/output ports follow edge order, then core attachments.
  for (graph::NodeId r = 0; r < g.num_nodes(); ++r) {
    auto& shape = layout->routers[static_cast<std::size_t>(r)];
    for (graph::EdgeId e : g.in_edges(r)) {
      layout->in_port_of_edge[static_cast<std::size_t>(e)] =
          static_cast<int>(shape.input_is_source.size());
      shape.input_is_source.push_back(0);
    }
    for (graph::EdgeId e : g.out_edges(r)) {
      layout->out_port_of_edge[static_cast<std::size_t>(e)] =
          static_cast<int>(shape.outputs.size());
      shape.outputs.emplace_back();
    }
  }
  for (int s = 0; s < topology.num_slots(); ++s) {
    auto& in_shape = layout->routers[static_cast<std::size_t>(
        topology.ingress_switch(s))];
    layout->inject_port_of_slot[static_cast<std::size_t>(s)] =
        static_cast<int>(in_shape.input_is_source.size());
    in_shape.input_is_source.push_back(1);

    auto& out_shape = layout->routers[static_cast<std::size_t>(
        topology.egress_switch(s))];
    NetworkLayout::Output sink;
    sink.is_sink = true;
    sink.sink_slot = s;
    layout->sink_port_of_slot[static_cast<std::size_t>(s)] =
        static_cast<int>(out_shape.outputs.size());
    out_shape.outputs.push_back(sink);
  }
  // Wire up link destinations.
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    auto& out = layout->routers[static_cast<std::size_t>(edge.src)]
                    .outputs[static_cast<std::size_t>(
                        layout->out_port_of_edge[static_cast<std::size_t>(e)])];
    out.dst_router = edge.dst;
    out.dst_in_port = layout->in_port_of_edge[static_cast<std::size_t>(e)];
  }
  return layout;
}

namespace {

constexpr std::uint64_t kNeverPopped =
    std::numeric_limits<std::uint64_t>::max();

/// A packet in flight, stored in the simulator's pooled packet arena and
/// referenced by index from flits. Slots are recycled when the tail flit
/// ejects, so steady state allocates nothing per packet.
struct Packet {
  int src = 0;
  int dst = 0;
  const graph::Path* path = nullptr;  // owned by the route table
  std::uint64_t gen_cycle = 0;
  bool measured = false;
};

/// An 8-byte value flit: the packet arena index plus head/tail flags and
/// the hop the flit currently sits at. Flits live in flat ring buffers
/// (FlitRing), not node-based containers.
struct Flit {
  std::int32_t packet = -1;
  std::uint16_t hop = 0;
  std::uint8_t head = 0;
  std::uint8_t tail = 0;
};

/// One in-flight flit on a link, keyed by its arrival cycle.
struct InFlightRec {
  std::uint64_t arrival = 0;
  Flit flit;
};

/// Growable power-of-two ring buffer of value elements. Grows to its
/// high-water mark once (geometric, re-linearized on grow) and then
/// recycles slots; clear() keeps the storage. The FIFO primitive behind the
/// per-VC flit queues and per-input link queues — the std::deque
/// replacement that removes per-flit chunk churn from the hot path.
template <typename T>
class Ring {
 public:
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] const T& front() const { return buf_[head_]; }

  void push_back(const T& value) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask_] = value;
    ++count_;
  }
  void pop_front() {
    head_ = (head_ + 1) & mask_;
    --count_;
  }
  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = buf_[(head_ + i) & mask_];
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> buf_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

using FlitRing = Ring<Flit>;
using LinkRing = Ring<InFlightRec>;

/// Per-router state in flat SoA form: all per-(input, VC) and
/// per-(output, VC) quantities are flat arrays indexed input*num_vcs + vc
/// (resp. output*num_vcs + vc) instead of nested vectors of structs, so
/// allocation happens per router at build time and the allocator walks
/// contiguous memory.
struct RouterState {
  int num_inputs = 0;
  int num_outputs = 0;

  // Per (input, VC), flat: the visible FIFO and the credit count of flits
  // in flight toward it.
  std::vector<FlitRing> queues;
  std::vector<int> pending;

  // Per input.
  std::vector<int> capacity;  ///< Per VC; INT_MAX for source queues.
  std::vector<std::uint64_t> popped_cycle;  ///< Cycle of the last pop.
  std::vector<LinkRing> in_flight;          ///< On the upstream link, FIFO.

  // Per (output, VC), flat: wormhole lock owner (packet arena index, -1
  // free), the input it drains from, and the round-robin cursor.
  std::vector<std::int32_t> locked;
  std::vector<std::int32_t> locked_in;
  std::vector<std::int32_t> rr_next;

  // Per output: round-robin over VCs for the physical link.
  std::vector<std::int32_t> vc_rr;

  /// Flits sitting in this router's input queues (any port, any VC). The
  /// event engine's wakeup predicate: a router with zero queued flits can
  /// neither move a flit nor mutate allocator state, so it is skipped.
  int queued_flits = 0;
};

}  // namespace

struct Simulator::Impl {
  const topo::Topology& topology;
  const RouteTable* routes;
  SimConfig config;
  util::Prng prng;
  std::shared_ptr<const NetworkLayout> layout;

  std::vector<RouterState> routers;

  // Pooled packet arena: slots are recycled through the free list when a
  // tail flit ejects (every flit of the packet has passed every router by
  // then), so a long run touches a bounded working set instead of an
  // ever-growing deque.
  std::vector<Packet> packets;
  std::vector<std::int32_t> free_packets;

  // Event-driven engine state: link-arrival wakeups plus the sorted set of
  // routers holding queued flits (scanned each cycle until they drain).
  EventQueue arrivals;
  std::vector<char> armed;
  std::vector<int> armed_ids;  // ascending — allocation order must match
                               // the cycle-stepped router sweep

  std::vector<std::pair<int, int>> injections_buf;
  std::vector<std::int32_t> head_out_;  // allocator scratch, see build_state

  std::uint64_t now = 0;
  std::uint64_t flits_in_network = 0;
  std::uint64_t delivered_flits_since_warmup = 0;
  std::uint64_t injected_flits_since_warmup = 0;
  std::uint64_t total_flit_events = 0;

  // Measurement accumulators.
  std::uint64_t measured_generated = 0;
  std::uint64_t measured_delivered = 0;
  double latency_sum = 0.0;
  double latency_max = 0.0;
  std::vector<double> latencies;  // per measured packet, for percentiles

  int num_vcs = 0;  // 0 = router state not built yet

  Impl(const topo::Topology& topo, const RouteTable& table, SimConfig cfg,
       std::shared_ptr<const NetworkLayout> net)
      : topology(topo), routes(&table), config(cfg), prng(cfg.seed) {
    if (cfg.flits_per_packet < 1 || cfg.buffer_depth_flits < 1 ||
        cfg.link_latency_cycles < 1) {
      throw std::invalid_argument("SimConfig: invalid parameters");
    }
    layout = net != nullptr ? std::move(net) : make_network_layout(topo);
  }

  /// VC a queued flit occupies: its hop index under distance-class VCs.
  [[nodiscard]] int vc_of(const Flit& flit) const {
    return num_vcs == 1 ? 0
                        : std::min(static_cast<int>(flit.hop), num_vcs - 1);
  }

  /// Sizes per-router state from the layout (only when the VC count
  /// changes; otherwise reset() clears in place).
  void build_state() {
    routers.assign(layout->routers.size(), RouterState{});
    const auto vcs = static_cast<std::size_t>(num_vcs);
    for (std::size_t r = 0; r < routers.size(); ++r) {
      const auto& shape = layout->routers[r];
      auto& router = routers[r];
      router.num_inputs = static_cast<int>(shape.input_is_source.size());
      router.num_outputs = static_cast<int>(shape.outputs.size());
      const auto ni = static_cast<std::size_t>(router.num_inputs);
      const auto no = static_cast<std::size_t>(router.num_outputs);
      router.queues.assign(ni * vcs, FlitRing{});
      router.pending.assign(ni * vcs, 0);
      router.capacity.resize(ni);
      for (std::size_t i = 0; i < ni; ++i) {
        router.capacity[i] = shape.input_is_source[i]
                                 ? std::numeric_limits<int>::max()
                                 : config.buffer_depth_flits;
      }
      router.popped_cycle.assign(ni, kNeverPopped);
      router.in_flight.assign(ni, LinkRing{});
      router.locked.assign(no * vcs, -1);
      router.locked_in.assign(no * vcs, -1);
      router.rr_next.assign(no * vcs, 0);
      router.vc_rr.assign(no, 0);
    }
    // Shared allocator scratch: the hoisted head-flit output per input VC
    // (allocate_router rewrites its router's slots on entry).
    std::size_t max_slots = 0;
    for (const auto& router : routers) {
      max_slots = std::max(
          max_slots, static_cast<std::size_t>(router.num_inputs) * vcs);
    }
    head_out_.assign(max_slots, -1);
  }

  /// Clears dynamic state so run() starts from cycle 0. Keeps every ring
  /// and flat array allocated: repeated runs over the same binding pay no
  /// construction and — past each ring's high-water mark — no allocation.
  void reset() {
    prng = util::Prng(config.seed);
    const int vcs =
        config.distance_class_vcs ? std::max(1, routes->max_path_switches())
                                  : 1;
    if (vcs != num_vcs) {
      num_vcs = vcs;
      build_state();
    } else {
      for (auto& router : routers) {
        for (auto& q : router.queues) q.clear();
        std::fill(router.pending.begin(), router.pending.end(), 0);
        for (auto& link : router.in_flight) link.clear();
        std::fill(router.popped_cycle.begin(), router.popped_cycle.end(),
                  kNeverPopped);
        std::fill(router.locked.begin(), router.locked.end(), -1);
        std::fill(router.locked_in.begin(), router.locked_in.end(), -1);
        std::fill(router.rr_next.begin(), router.rr_next.end(), 0);
        std::fill(router.vc_rr.begin(), router.vc_rr.end(), 0);
        router.queued_flits = 0;
      }
    }
    packets.clear();
    free_packets.clear();
    arrivals.clear();
    armed.assign(routers.size(), 0);
    armed_ids.clear();
    now = 0;
    flits_in_network = 0;
    delivered_flits_since_warmup = 0;
    injected_flits_since_warmup = 0;
    total_flit_events = 0;
    measured_generated = 0;
    measured_delivered = 0;
    latency_sum = 0.0;
    latency_max = 0.0;
    latencies.clear();
  }

  /// Marks a router as holding queued flits; keeps armed_ids ascending.
  void arm(int r) {
    if (armed[static_cast<std::size_t>(r)]) return;
    armed[static_cast<std::size_t>(r)] = 1;
    armed_ids.insert(std::lower_bound(armed_ids.begin(), armed_ids.end(), r),
                     r);
  }

  /// Samples one weighted path for a new packet.
  const graph::Path* sample_path(int src, int dst) {
    const auto& set = routes->at(src, dst);
    double r = prng.next_double();
    for (const auto& wp : set.paths) {
      r -= wp.fraction;
      if (r <= 0.0) return &wp.path;
    }
    return &set.paths.back().path;
  }

  std::int32_t alloc_packet(int src, int dst, const graph::Path* path,
                            bool measured) {
    if (!free_packets.empty()) {
      const std::int32_t id = free_packets.back();
      free_packets.pop_back();
      packets[static_cast<std::size_t>(id)] =
          Packet{src, dst, path, now, measured};
      return id;
    }
    packets.push_back(Packet{src, dst, path, now, measured});
    return static_cast<std::int32_t>(packets.size() - 1);
  }

  void inject(int src, int dst, bool measured) {
    const std::int32_t pkt = alloc_packet(src, dst, sample_path(src, dst),
                                          measured);
    if (measured) ++measured_generated;
    const int r = topology.ingress_switch(src);
    auto& router = routers[static_cast<std::size_t>(r)];
    // Injected flits sit at hop 0, so always VC 0 of the source queue.
    auto& queue = router.queues[static_cast<std::size_t>(
        layout->inject_port_of_slot[static_cast<std::size_t>(src)] *
        num_vcs)];
    for (int f = 0; f < config.flits_per_packet; ++f) {
      Flit flit;
      flit.packet = pkt;
      flit.head = f == 0;
      flit.tail = f == config.flits_per_packet - 1;
      queue.push_back(flit);
      ++flits_in_network;
      ++router.queued_flits;
      if (now >= config.warmup_cycles) ++injected_flits_since_warmup;
    }
    arm(r);
  }

  /// Link arrivals at router `r` become visible input-queue flits.
  void promote_arrivals(int r) {
    auto& router = routers[static_cast<std::size_t>(r)];
    bool promoted = false;
    for (int i = 0; i < router.num_inputs; ++i) {
      auto& link = router.in_flight[static_cast<std::size_t>(i)];
      while (!link.empty() && link.front().arrival <= now) {
        const Flit flit = link.front().flit;
        const int vc = vc_of(flit);
        router.queues[static_cast<std::size_t>(i * num_vcs + vc)].push_back(
            flit);
        --router.pending[static_cast<std::size_t>(i * num_vcs + vc)];
        link.pop_front();
        ++router.queued_flits;
        promoted = true;
      }
    }
    if (promoted) arm(r);
  }

  /// Output port a flit at router `r` wants next (head flits only).
  int output_for(const Flit& flit) const {
    const Packet& pkt = packets[static_cast<std::size_t>(flit.packet)];
    const auto& path = *pkt.path;
    if (flit.hop + 1 < static_cast<int>(path.nodes.size())) {
      const graph::EdgeId e =
          path.edges[static_cast<std::size_t>(flit.hop)];
      return layout->out_port_of_edge[static_cast<std::size_t>(e)];
    }
    // Last switch: eject to the destination slot's precomputed sink port.
    return layout->sink_port_of_slot[static_cast<std::size_t>(pkt.dst)];
  }

  void deliver(const Flit& flit) {
    --flits_in_network;
    if (now >= config.warmup_cycles) ++delivered_flits_since_warmup;
    if (!flit.tail) return;
    // Tail ejection: every flit of the packet has cleared the network (they
    // traverse in order behind the head), so the arena slot is recyclable.
    const Packet& pkt = packets[static_cast<std::size_t>(flit.packet)];
    if (pkt.measured) {
      const double latency =
          static_cast<double>(now + 1 - pkt.gen_cycle);
      ++measured_delivered;
      latency_sum += latency;
      latency_max = std::max(latency_max, latency);
      latencies.push_back(latency);
    }
    free_packets.push_back(flit.packet);
  }

  /// Switch allocation and traversal for one router: each output port
  /// (physical link) moves at most one flit per cycle, round-robining over
  /// its virtual channels, each of which holds its own wormhole lock.
  /// Shared verbatim by both engines — a router with no queued flits makes
  /// no grants and mutates nothing, which is what lets the event engine
  /// skip it.
  int allocate_router(std::size_t r) {
    int moved = 0;
    auto& router = routers[r];
    const auto& shape = layout->routers[r];

    // Hoisted routing: the output a head flit requests is a pure function
    // of the flit, and a queue front only changes when its input pops — an
    // input that popped is skipped for the rest of the cycle — so one pass
    // per input VC replaces the per-(output, VC, input) output_for() chase
    // in the scan below with an integer compare. -1 marks "no head flit
    // fronting this VC" (empty queue or a body/tail flit, which only moves
    // through its wormhole lock).
    for (int i = 0; i < router.num_inputs; ++i) {
      if (router.popped_cycle[static_cast<std::size_t>(i)] == now) continue;
      for (int vc = 0; vc < num_vcs; ++vc) {
        const auto slot = static_cast<std::size_t>(i * num_vcs + vc);
        const auto& queue = router.queues[slot];
        head_out_[slot] = !queue.empty() && queue.front().head
                              ? output_for(queue.front())
                              : -1;
      }
    }

    for (int o = 0; o < router.num_outputs; ++o) {
      const auto& out_shape = shape.outputs[static_cast<std::size_t>(o)];
      bool granted = false;
      int vc = router.vc_rr[static_cast<std::size_t>(o)];
      for (int kv = 0; kv < num_vcs && !granted;
           ++kv, vc = vc + 1 < num_vcs ? vc + 1 : 0) {
        const auto ovc = static_cast<std::size_t>(o * num_vcs + vc);

        int grant_in = -1;
        if (router.locked[ovc] >= 0) {
          // Wormhole: the owning packet keeps this output VC until tail.
          const int li = router.locked_in[ovc];
          const auto& queue =
              router.queues[static_cast<std::size_t>(li * num_vcs + vc)];
          if (router.popped_cycle[static_cast<std::size_t>(li)] != now &&
              !queue.empty() && queue.front().packet == router.locked[ovc]) {
            grant_in = li;
          }
        } else {
          // Round-robin over head flits in this VC requesting this output.
          const int n = router.num_inputs;
          int i = router.rr_next[ovc];
          for (int k = 0; k < n; ++k, i = i + 1 < n ? i + 1 : 0) {
            if (router.popped_cycle[static_cast<std::size_t>(i)] == now) {
              continue;
            }
            if (head_out_[static_cast<std::size_t>(i * num_vcs + vc)] != o) {
              continue;
            }
            grant_in = i;
            router.rr_next[ovc] = i + 1 < n ? i + 1 : 0;
            break;
          }
        }
        if (grant_in < 0) continue;

        auto& queue = router.queues[static_cast<std::size_t>(
            grant_in * num_vcs + vc)];
        const Flit& head = queue.front();

        // Flow control: space in the downstream VC this flit will occupy
        // (its hop increments across the link); sinks always accept.
        if (!out_shape.is_sink) {
          Flit next = head;
          ++next.hop;
          const int nvc = vc_of(next);
          const auto& dst =
              routers[static_cast<std::size_t>(out_shape.dst_router)];
          const auto slot = static_cast<std::size_t>(
              out_shape.dst_in_port * num_vcs + nvc);
          if (static_cast<int>(dst.queues[slot].size()) +
                  dst.pending[slot] >=
              dst.capacity[static_cast<std::size_t>(out_shape.dst_in_port)]) {
            continue;
          }
        }

        Flit flit = head;
        queue.pop_front();
        router.popped_cycle[static_cast<std::size_t>(grant_in)] = now;
        --router.queued_flits;
        ++moved;
        granted = true;
        router.vc_rr[static_cast<std::size_t>(o)] = (vc + 1) % num_vcs;

        if (flit.head && !flit.tail) {
          router.locked[ovc] = flit.packet;
          router.locked_in[ovc] = grant_in;
        }
        if (flit.tail) {
          router.locked[ovc] = -1;
          router.locked_in[ovc] = -1;
        }

        if (out_shape.is_sink) {
          deliver(flit);
        } else {
          Flit next = flit;
          ++next.hop;
          auto& dst =
              routers[static_cast<std::size_t>(out_shape.dst_router)];
          ++dst.pending[static_cast<std::size_t>(
              out_shape.dst_in_port * num_vcs + vc_of(next))];
          const std::uint64_t when =
              now + static_cast<std::uint64_t>(config.link_latency_cycles);
          dst.in_flight[static_cast<std::size_t>(out_shape.dst_in_port)]
              .push_back(InFlightRec{when, next});
          arrivals.schedule(when, out_shape.dst_router);
        }
      }
    }
    return moved;
  }

  SimStats run(TrafficModel& traffic) {
    reset();
    SimStats stats;
    const bool event_driven = config.engine == SimEngine::kEventDriven;
    const std::uint64_t measure_end =
        config.warmup_cycles + config.measure_cycles;
    const std::uint64_t hard_end = measure_end + config.drain_cycles;
    std::uint64_t stall = 0;

    // Both engines execute the identical per-cycle phase order — arrivals,
    // injections, allocation — and share all state-mutating code; the event
    // engine differs only in visiting the routers that can act instead of
    // all of them. Injection sampling runs every cycle regardless (the
    // traffic models draw from the PRNG per cycle, and the draw sequence is
    // part of the bit-identity contract), so a quiescent span costs one
    // traffic poll per cycle and no router work at all.
    while (now < hard_end) {
      const bool measure_window =
          now >= config.warmup_cycles && now < measure_end;

      // 1. Link arrivals become visible.
      if (event_driven) {
        while (arrivals.due(now)) {
          promote_arrivals(arrivals.front().payload);
          arrivals.pop();
        }
      } else {
        for (std::size_t r = 0; r < routers.size(); ++r) {
          promote_arrivals(static_cast<int>(r));
        }
      }

      // 2. New packets.
      injections_buf.clear();
      traffic.injections(now, prng, injections_buf);
      for (const auto& [src, dst] : injections_buf) {
        if (src == dst) continue;
        inject(src, dst, measure_window);
      }

      // 3. Switch allocation and traversal.
      int moved = 0;
      if (event_driven) {
        // Routers never join armed_ids mid-allocation (grants only park
        // flits on links, to surface at now + link_latency), so iterating
        // the ascending list reproduces the full router sweep exactly.
        for (std::size_t idx = 0; idx < armed_ids.size(); ++idx) {
          moved += allocate_router(
              static_cast<std::size_t>(armed_ids[idx]));
        }
        std::size_t w = 0;
        for (const int id : armed_ids) {
          if (routers[static_cast<std::size_t>(id)].queued_flits > 0) {
            armed_ids[w++] = id;
          } else {
            armed[static_cast<std::size_t>(id)] = 0;
          }
        }
        armed_ids.resize(w);
      } else {
        for (std::size_t r = 0; r < routers.size(); ++r) {
          moved += allocate_router(r);
        }
      }
      total_flit_events += static_cast<std::uint64_t>(moved);

      if (moved == 0 && flits_in_network > 0) {
        ++stats.stalled_cycles;
        if (++stall >= config.stall_limit_cycles) {
          stats.saturated = true;
          stats.status = RunStatus::kStalled;
          break;
        }
      } else {
        stall = 0;
      }
      ++now;
      if (now >= measure_end && measured_delivered == measured_generated) {
        break;  // fully drained
      }
    }

    stats.cycles = now;
    stats.packets_generated = measured_generated;
    stats.packets_delivered = measured_delivered;
    stats.flit_events = total_flit_events;
    if (measured_delivered > 0) {
      stats.avg_latency_cycles =
          latency_sum / static_cast<double>(measured_delivered);
      stats.max_latency_cycles = latency_max;
      std::sort(latencies.begin(), latencies.end());
      auto percentile = [&](double p) {
        const auto rank = static_cast<std::size_t>(
            p * static_cast<double>(latencies.size() - 1));
        return latencies[rank];
      };
      stats.p50_latency_cycles = percentile(0.50);
      stats.p95_latency_cycles = percentile(0.95);
      stats.p99_latency_cycles = percentile(0.99);
    }
    stats.undelivered_packets = measured_generated - measured_delivered;
    if (measured_delivered < measured_generated) {
      stats.saturated = true;
      if (stats.status == RunStatus::kDrained) {
        stats.status = RunStatus::kUndelivered;
      }
    }
    const std::uint64_t span = now > config.warmup_cycles
                                   ? now - config.warmup_cycles
                                   : 1;
    stats.throughput_flits_per_cycle_per_slot =
        static_cast<double>(delivered_flits_since_warmup) /
        static_cast<double>(span) /
        static_cast<double>(topology.num_slots());
    stats.offered_flits_per_cycle_per_slot =
        static_cast<double>(injected_flits_since_warmup) /
        static_cast<double>(span) /
        static_cast<double>(topology.num_slots());
    // Acceptance meaningfully below the offered rate means the network is
    // past its saturation throughput even if the measured packets drained.
    if (stats.offered_flits_per_cycle_per_slot > 0.0 &&
        stats.throughput_flits_per_cycle_per_slot <
            0.9 * stats.offered_flits_per_cycle_per_slot) {
      stats.saturated = true;
      if (stats.status == RunStatus::kDrained) {
        stats.status = RunStatus::kSaturatedThroughput;
      }
    }
    return stats;
  }
};

Simulator::Simulator(const topo::Topology& topology, const RouteTable& routes,
                     SimConfig config,
                     std::shared_ptr<const NetworkLayout> layout)
    : impl_(std::make_unique<Impl>(topology, routes, config,
                                   std::move(layout))) {}

Simulator::~Simulator() = default;

void Simulator::bind(const RouteTable& routes) { impl_->routes = &routes; }

SimStats Simulator::run(TrafficModel& traffic) { return impl_->run(traffic); }

SimStats simulate_pattern(const topo::Topology& topology,
                          const RouteTable& routes, Pattern pattern,
                          double injection_rate, const SimConfig& config,
                          std::shared_ptr<const NetworkLayout> layout) {
  PatternTraffic traffic(topology.num_slots(), pattern, injection_rate,
                         config.flits_per_packet);
  Simulator simulator(topology, routes, config, std::move(layout));
  return simulator.run(traffic);
}

}  // namespace sunmap::sim
