#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/prng.h"

namespace sunmap::sim {

/// Source of packet injections for the simulator. Each cycle the simulator
/// asks the model which (source slot, destination slot) packets to create.
class TrafficModel {
 public:
  virtual ~TrafficModel() = default;

  /// Appends this cycle's injections as (src_slot, dst_slot) pairs.
  virtual void injections(std::uint64_t cycle, util::Prng& prng,
                          std::vector<std::pair<int, int>>& out) = 0;
};

/// Classic synthetic patterns (Dally & Towles) used for the network-
/// processor study (§6.2): the paper's "adversarial traffic pattern for each
/// topology" is realised with permutations that concentrate load on the
/// weakest links of each topology.
enum class Pattern {
  kUniform,        ///< Uniform random destination.
  kTranspose,      ///< (r, c) -> (c, r) on the square slot grid.
  kBitComplement,  ///< dst = ~src (mod slots).
  kBitReverse,     ///< dst = bit-reversed src.
  kTornado,        ///< dst = src + ceil(n/2) - 1 (mod n).
  kShuffle,        ///< dst = rotate-left(src).
  kHotspot,        ///< A fraction of traffic targets one hot slot.
};

const char* to_string(Pattern pattern);

/// Open-loop Bernoulli injection of a synthetic pattern: every slot starts a
/// new packet with probability injection_rate / flits_per_packet per cycle,
/// so `injection_rate` is the offered load in flits/cycle/node as plotted in
/// Fig 8(b).
class PatternTraffic : public TrafficModel {
 public:
  PatternTraffic(int num_slots, Pattern pattern, double injection_rate,
                 int flits_per_packet);

  /// Hotspot configuration (only used by Pattern::kHotspot).
  void set_hotspot(int slot, double fraction);

  void injections(std::uint64_t cycle, util::Prng& prng,
                  std::vector<std::pair<int, int>>& out) override;

  /// The pattern's destination for a source slot (self-addressed results are
  /// redrawn for random patterns and skipped for permutations). Exposed for
  /// tests.
  [[nodiscard]] int destination(int src, util::Prng& prng) const;

 private:
  int num_slots_;
  Pattern pattern_;
  double packet_rate_;
  int hotspot_slot_ = 0;
  double hotspot_fraction_ = 0.5;
};

/// One application flow for trace-driven simulation.
struct TrafficFlow {
  int src_slot = 0;
  int dst_slot = 0;
  double rate_mbps = 0.0;
};

/// On/off modulated Bernoulli injection: each source alternates between a
/// burst state (injecting at its burst rate) and an idle state (injecting
/// nothing), with geometrically distributed state durations. Mean burst
/// length `burst_len` and a long-run duty cycle of `duty` reproduce the
/// bursty phases of real SoC traffic that uniform Bernoulli smooths away;
/// the long idle spans are exactly the regime the event-driven engine
/// skips.
///
/// Two source shapes share the same on/off machinery:
/// - Synthetic: one on/off process per slot, destinations drawn from a
///   PatternTraffic (the original constructor).
/// - Trace: one on/off process per application flow, so a mapped design's
///   commodity rates can be replayed with bursts — while a flow bursts it
///   injects at rate/duty, keeping the long-run offered load equal to the
///   plain trace but concentrating it into contention-heavy phases. This is
///   the finalist-tier traffic model behind --sim-traffic bursty.
class BurstyTraffic : public TrafficModel {
 public:
  BurstyTraffic(int num_slots, Pattern pattern, double burst_rate,
                int flits_per_packet, double burst_len, double duty);

  /// Trace-driven bursts over application flows. Throws when a flow's
  /// in-burst rate (rate / duty) exceeds one packet per cycle, like
  /// TraceTraffic does for the plain rate.
  BurstyTraffic(std::vector<TrafficFlow> flows, int flits_per_packet,
                double flits_per_cycle_per_gbps, double burst_len,
                double duty);

  void injections(std::uint64_t cycle, util::Prng& prng,
                  std::vector<std::pair<int, int>>& out) override;

 private:
  void shape_burst(double burst_len, double duty);

  /// Destination pattern of the synthetic shape; empty in trace mode.
  std::optional<PatternTraffic> pattern_;
  double packet_rate_ = 0.0;  ///< Packets/cycle per slot while bursting.
  /// Trace mode: the flows and each flow's in-burst packet probability.
  std::vector<TrafficFlow> flows_;
  std::vector<double> flow_prob_;
  double p_exit_burst_ = 0.0;  ///< Per-cycle chance a burst ends.
  double p_enter_burst_ = 0.0; ///< Per-cycle chance an idle source bursts.
  std::vector<char> bursting_; ///< Per slot (synthetic) or per flow (trace).
};

/// Trace-driven injection reproducing a mapped application's core-graph
/// rates (the DSP SystemC study of §6.4): each flow independently starts a
/// packet with probability proportional to its bandwidth. `mbps_per_flit`
/// converts MB/s into expected flits/cycle (it folds together flit width and
/// clock frequency, and doubles as the knob for stressing the network).
class TraceTraffic : public TrafficModel {
 public:
  TraceTraffic(std::vector<TrafficFlow> flows, int flits_per_packet,
               double flits_per_cycle_per_gbps);

  void injections(std::uint64_t cycle, util::Prng& prng,
                  std::vector<std::pair<int, int>>& out) override;

  [[nodiscard]] const std::vector<TrafficFlow>& flows() const {
    return flows_;
  }
  /// Total offered load in flits/cycle summed over all flows.
  [[nodiscard]] double offered_flits_per_cycle() const;

 private:
  std::vector<TrafficFlow> flows_;
  std::vector<double> packet_prob_;
  int flits_per_packet_ = 1;
};

}  // namespace sunmap::sim
