#pragma once

#include <deque>
#include <vector>

#include "route/routing.h"
#include "topo/topology.h"

namespace sunmap::sim {

/// Per-source/destination routing table consumed by the cycle-accurate
/// simulator. The simulator is source-routed: each packet samples one of the
/// weighted paths computed offline by the routing engine (split-traffic
/// routing becomes a per-packet weighted path choice), so all four routing
/// functions run on the same router model.
class RouteTable {
 public:
  explicit RouteTable(int num_slots);

  // Movable but not copyable: entries are pointers (possibly into caller
  // storage via set_ref), and a copy would alias the source's owned paths.
  RouteTable(const RouteTable&) = delete;
  RouteTable& operator=(const RouteTable&) = delete;
  RouteTable(RouteTable&&) = default;
  RouteTable& operator=(RouteTable&&) = default;

  /// Installs the routes for an ordered slot pair (the table owns a copy).
  void set(int src_slot, int dst_slot, route::RouteSet routes);

  /// Installs borrowed routes for an ordered slot pair without copying the
  /// paths: the caller guarantees `routes` outlives every use of the table.
  /// This is how the explorer's finalist tier binds a mapping's
  /// per-commodity Evaluation routes straight into the simulator.
  void set_ref(int src_slot, int dst_slot, const route::RouteSet& routes);

  [[nodiscard]] bool has(int src_slot, int dst_slot) const;
  /// Routes for the pair; throws std::out_of_range if none are installed.
  [[nodiscard]] const route::RouteSet& at(int src_slot, int dst_slot) const;

  [[nodiscard]] int num_slots() const { return num_slots_; }

  /// Longest installed route in switches; sizes the simulator's
  /// distance-class virtual channels. 0 when nothing is installed.
  [[nodiscard]] int max_path_switches() const;

  /// Builds routes for every ordered slot pair under the given routing
  /// function. Pairs are routed in slot order with loads accumulated (unit
  /// demand), so congestion-aware functions still spread traffic.
  static RouteTable all_pairs(const topo::Topology& topology,
                              route::RoutingKind kind, int split_chunks = 8);

 private:
  [[nodiscard]] std::size_t index(int src_slot, int dst_slot) const;

  int num_slots_;
  /// Entry per ordered pair; null when nothing is installed. Owned entries
  /// point into owned_ (a deque for pointer stability), borrowed entries
  /// point at caller storage.
  std::vector<const route::RouteSet*> table_;
  std::deque<route::RouteSet> owned_;
};

}  // namespace sunmap::sim
