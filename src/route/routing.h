#pragma once

#include <cassert>
#include <limits>
#include <vector>

#include "graph/paths.h"
#include "topo/topology.h"

namespace sunmap::route {

/// The routing functions SUNMAP supports (§1, §6.3).
enum class RoutingKind {
  kDimensionOrdered,  ///< DO — deterministic, oblivious single path.
  kMinPath,           ///< MP — congestion-aware Dijkstra on the quadrant.
  kSplitMin,          ///< SM — traffic split across all minimum paths.
  kSplitAll,          ///< SA — traffic split across all paths.
};

/// Short label as used in Fig 9(a): "DO", "MP", "SM", "SA".
const char* to_string(RoutingKind kind);

/// All four routing functions, in paper order.
inline constexpr RoutingKind kAllRoutingKinds[] = {
    RoutingKind::kDimensionOrdered,
    RoutingKind::kMinPath,
    RoutingKind::kSplitMin,
    RoutingKind::kSplitAll,
};

/// A path carrying a fraction of one commodity's bandwidth.
struct WeightedPath {
  graph::Path path;
  double fraction = 1.0;
};

/// The set of weighted paths one commodity is routed over. Fractions sum to
/// 1 (single-path functions produce exactly one path with fraction 1).
struct RouteSet {
  std::vector<WeightedPath> paths;

  /// Fraction-weighted number of switches traversed (link hops + 1) — the
  /// per-commodity contribution to the paper's average-hop-delay metric.
  [[nodiscard]] double weighted_switch_hops() const;

  /// Fraction-weighted number of link traversals.
  [[nodiscard]] double weighted_link_hops() const;
};

/// True when the two route sets take exactly the same paths with exactly the
/// same fractions (bit-wise double comparison; used by the routing session to
/// detect whether a re-route actually displaced anything).
[[nodiscard]] bool same_routes(const RouteSet& a, const RouteSet& b);

/// Per-link traffic accumulator, indexed by switch-graph EdgeId, in the same
/// MB/s units as core-graph edge weights. The mapping algorithm routes
/// commodities in decreasing order and accumulates their bandwidth here
/// (Fig 5 step 6); bandwidth constraints compare max_load() against the
/// link capacity.
class LoadMap {
 public:
  explicit LoadMap(int num_edges)
      : loads_(static_cast<std::size_t>(num_edges), 0.0) {}

  void add(graph::EdgeId e, double amount) {
    // Unchecked indexing: edge ids come straight from the switch graph in
    // every caller, and this sits inside the mapping search's hottest loop.
    double& value = loads_[static_cast<std::size_t>(e)];
    value += amount;
    // Rip-up-and-reroute removes a commodity by adding its routes with
    // negative demand; floating-point cancellation can leave a tiny negative
    // residue that would perturb max_load() and feasibility checks. Link
    // loads are physically non-negative, so snap near-zero negatives back to
    // exactly zero. The clamp window is kNegativeResidueTolerance: residues
    // inside (-tolerance, 0) are cancellation noise (they are bounded by a
    // few ulps of the peak accumulated load, orders of magnitude below the
    // tolerance for realistic MB/s traffic); anything at or beyond the
    // tolerance indicates a real accounting bug — a rip-up of routes that
    // were never added — so it trips the debug assert below and stays
    // visible as a negative load in release builds.
    assert(value > -kNegativeResidueTolerance &&
           "LoadMap: negative residue beyond tolerance (rip-up mismatch)");
    if (value < 0.0 && value > -kNegativeResidueTolerance) value = 0.0;
  }

  /// Adds `demand` scaled by each path fraction along every routed path.
  void add_route(const RouteSet& routes, double demand);

  /// Rip-up: removes a previously added route set by adding the IEEE-negated
  /// per-edge amounts in the same edge order. On a link whose load was zero
  /// before the matching add_route, the round trip restores exact zero
  /// (0 + v = v and v - v = 0 are both exact); over a nonzero background
  /// load the cancellation can drift by an ulp per cycle, which is why
  /// consumers that need bit-identical loads (the routing session, the
  /// reference re-route loop) always rebuild from a cleared map by replaying
  /// the same add/remove sequence rather than round-tripping in place.
  void remove_route(const RouteSet& routes, double demand);

  [[nodiscard]] double load(graph::EdgeId e) const {
    return loads_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] double max_load() const;
  [[nodiscard]] const std::vector<double>& values() const { return loads_; }
  [[nodiscard]] int num_edges() const {
    return static_cast<int>(loads_.size());
  }

  void clear() { loads_.assign(loads_.size(), 0.0); }

  /// Largest negative residue magnitude silently clamped to zero by add().
  /// Residues at or beyond this are treated as accounting bugs (asserted in
  /// debug builds, left visible in release builds).
  static constexpr double kNegativeResidueTolerance = 1e-6;

 private:
  std::vector<double> loads_;
};

/// Precomputed quadrant-graph admission masks for every ordered slot pair of
/// one topology. Building the table once per topology lets the routing
/// engine's inner Dijkstra loop read a plain byte array instead of
/// recomputing (or even lock-protecting) the quadrant sets — and, unlike the
/// memoized Topology::quadrant_mask(), the table is immutable after
/// construction, so concurrent mapping-search workers share it without
/// synchronisation.
class QuadrantTable {
 public:
  explicit QuadrantTable(const topo::Topology& topology);

  /// Byte mask over switch NodeIds for the (src, dst) slot pair: non-zero
  /// entries are the switches on at least one minimum path.
  [[nodiscard]] const char* mask(topo::SlotId src, topo::SlotId dst) const {
    return masks_.data() +
           (static_cast<std::size_t>(src) * static_cast<std::size_t>(num_slots_) +
            static_cast<std::size_t>(dst)) *
               static_cast<std::size_t>(num_switches_);
  }

 private:
  int num_slots_ = 0;
  int num_switches_ = 0;
  std::vector<char> masks_;
};

/// Computes routes for commodities over one topology under one routing
/// function. Stateless with respect to traffic: current link loads are
/// passed in, so the mapper owns ordering and accumulation. Fully configured
/// at construction (Options) — there is no post-construction mutation, so a
/// const engine is safe to share across concurrent search workers.
class RoutingEngine {
 public:
  struct Options {
    /// Granularity of split-across-all-paths routing (the commodity is
    /// divided into that many equal sub-flows).
    int split_chunks = 16;
    /// Link capacity the engine tries not to exceed when spreading
    /// sub-flows (a soft bound — the bandwidth *constraint* is checked by
    /// the mapper).
    double capacity_hint_mbps = std::numeric_limits<double>::infinity();
    /// Optional precomputed quadrant table (not owned; must outlive the
    /// engine). With a table, minimum-path routing reads admission masks
    /// lock-free; without one it falls back to the topology's memoized
    /// quadrant cache.
    const QuadrantTable* quadrant_table = nullptr;
  };

  // Two overloads rather than `Options options = {}`: a default argument
  // may not use the nested aggregate's member initializers before the
  // enclosing class is complete.
  RoutingEngine(const topo::Topology& topology, RoutingKind kind);
  RoutingEngine(const topo::Topology& topology, RoutingKind kind,
                Options options);

  [[nodiscard]] RoutingKind kind() const { return kind_; }
  [[nodiscard]] const topo::Topology& topology() const { return topology_; }
  [[nodiscard]] int split_chunks() const { return options_.split_chunks; }

  /// The switch admission mask minimum-path routing would use for this slot
  /// pair (the attached table or the topology's memoized cache) — exposed so
  /// the routing session can reason about which link-load changes are
  /// visible to a commodity's Dijkstra.
  [[nodiscard]] const char* min_path_admission(topo::SlotId src,
                                               topo::SlotId dst) const {
    return options_.quadrant_table != nullptr
               ? options_.quadrant_table->mask(src, dst)
               : topology_.quadrant_mask(src, dst).data();
  }

  /// Routes `demand` MB/s from slot src to slot dst given the traffic
  /// already routed (`loads`), writing the result into `out` (cleared
  /// first). The out-param keeps the hot path allocation-free once the
  /// caller's RouteSet capacity has warmed up. Does not modify `loads`; the
  /// caller accumulates via LoadMap::add_route, matching Fig 5 steps 4-6.
  void route(topo::SlotId src, topo::SlotId dst, double demand,
             const LoadMap& loads, RouteSet& out) const;

 private:
  void route_dimension_ordered(topo::SlotId src, topo::SlotId dst,
                               RouteSet& out) const;
  void route_min_path(topo::SlotId src, topo::SlotId dst,
                      const LoadMap& loads, RouteSet& out) const;
  void route_split_min(topo::SlotId src, topo::SlotId dst,
                       RouteSet& out) const;
  void route_split_all(topo::SlotId src, topo::SlotId dst, double demand,
                       const LoadMap& loads, RouteSet& out) const;

  const topo::Topology& topology_;
  RoutingKind kind_;
  Options options_;
};

}  // namespace sunmap::route
