#pragma once

#include <limits>
#include <vector>

#include "graph/paths.h"
#include "topo/topology.h"

namespace sunmap::route {

/// The routing functions SUNMAP supports (§1, §6.3).
enum class RoutingKind {
  kDimensionOrdered,  ///< DO — deterministic, oblivious single path.
  kMinPath,           ///< MP — congestion-aware Dijkstra on the quadrant.
  kSplitMin,          ///< SM — traffic split across all minimum paths.
  kSplitAll,          ///< SA — traffic split across all paths.
};

/// Short label as used in Fig 9(a): "DO", "MP", "SM", "SA".
const char* to_string(RoutingKind kind);

/// All four routing functions, in paper order.
inline constexpr RoutingKind kAllRoutingKinds[] = {
    RoutingKind::kDimensionOrdered,
    RoutingKind::kMinPath,
    RoutingKind::kSplitMin,
    RoutingKind::kSplitAll,
};

/// A path carrying a fraction of one commodity's bandwidth.
struct WeightedPath {
  graph::Path path;
  double fraction = 1.0;
};

/// The set of weighted paths one commodity is routed over. Fractions sum to
/// 1 (single-path functions produce exactly one path with fraction 1).
struct RouteSet {
  std::vector<WeightedPath> paths;

  /// Fraction-weighted number of switches traversed (link hops + 1) — the
  /// per-commodity contribution to the paper's average-hop-delay metric.
  [[nodiscard]] double weighted_switch_hops() const;

  /// Fraction-weighted number of link traversals.
  [[nodiscard]] double weighted_link_hops() const;
};

/// Per-link traffic accumulator, indexed by switch-graph EdgeId, in the same
/// MB/s units as core-graph edge weights. The mapping algorithm routes
/// commodities in decreasing order and accumulates their bandwidth here
/// (Fig 5 step 6); bandwidth constraints compare max_load() against the
/// link capacity.
class LoadMap {
 public:
  explicit LoadMap(int num_edges)
      : loads_(static_cast<std::size_t>(num_edges), 0.0) {}

  void add(graph::EdgeId e, double amount) {
    loads_.at(static_cast<std::size_t>(e)) += amount;
  }

  /// Adds `demand` scaled by each path fraction along every routed path.
  void add_route(const RouteSet& routes, double demand);

  [[nodiscard]] double load(graph::EdgeId e) const {
    return loads_.at(static_cast<std::size_t>(e));
  }
  [[nodiscard]] double max_load() const;
  [[nodiscard]] const std::vector<double>& values() const { return loads_; }

  void clear() { loads_.assign(loads_.size(), 0.0); }

 private:
  std::vector<double> loads_;
};

/// Computes routes for commodities over one topology under one routing
/// function. Stateless with respect to traffic: current link loads are
/// passed in, so the mapper owns ordering and accumulation.
class RoutingEngine {
 public:
  /// `split_chunks` controls the granularity of split-across-all-paths
  /// routing (the commodity is divided into that many equal sub-flows).
  /// `capacity_hint_mbps` is the link capacity the engine tries not to
  /// exceed when spreading sub-flows (it is a soft bound — the bandwidth
  /// *constraint* is checked by the mapper).
  RoutingEngine(const topo::Topology& topology, RoutingKind kind,
                int split_chunks = 16,
                double capacity_hint_mbps =
                    std::numeric_limits<double>::infinity());

  [[nodiscard]] RoutingKind kind() const { return kind_; }
  [[nodiscard]] const topo::Topology& topology() const { return topology_; }

  /// Routes `demand` MB/s from slot src to slot dst given the traffic
  /// already routed (`loads`). Does not modify `loads`; the caller
  /// accumulates via LoadMap::add_route, matching Fig 5 steps 4-6.
  [[nodiscard]] RouteSet route(topo::SlotId src, topo::SlotId dst,
                               double demand, const LoadMap& loads) const;

 private:
  [[nodiscard]] RouteSet route_dimension_ordered(topo::SlotId src,
                                                 topo::SlotId dst) const;
  [[nodiscard]] RouteSet route_min_path(topo::SlotId src, topo::SlotId dst,
                                        const LoadMap& loads) const;
  [[nodiscard]] RouteSet route_split_min(topo::SlotId src,
                                         topo::SlotId dst) const;
  [[nodiscard]] RouteSet route_split_all(topo::SlotId src, topo::SlotId dst,
                                         double demand,
                                         const LoadMap& loads) const;

  const topo::Topology& topology_;
  RoutingKind kind_;
  int split_chunks_;
  double capacity_hint_mbps_;
};

}  // namespace sunmap::route
