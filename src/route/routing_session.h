#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "route/routing.h"

namespace sunmap::route {

/// One commodity's endpoint slots under the current mapping.
struct CommodityEndpoints {
  topo::SlotId src = -1;
  topo::SlotId dst = -1;

  friend bool operator==(const CommodityEndpoints&,
                         const CommodityEndpoints&) = default;
};

/// Incremental, transactional driver for the adaptive routing loop (the
/// load-dependent MP and split-all kinds; DO/SM read static route tables and
/// never touch a session).
///
/// The from-scratch evaluation routes all commodities in canonical
/// (decreasing-bandwidth) order, then runs `reroute_passes` rip-up rounds —
/// a deterministic trace whose every Dijkstra depends on the link loads at
/// that point of the trace. solve() replays that exact trace against the
/// previous solve's recorded per-pass routes: a commodity's Dijkstra is
/// skipped and its cached route reused only when that is *provably*
/// bit-identical — its endpoints did not move (the dirty-commodity rule) and
/// no link whose load differs from the cached trace is visible to its
/// search (for MP, visibility is the §4.3 quadrant admission mask;
/// split-all admits every link, so any live divergence forces the
/// Dijkstra). Divergence is exact, not conservative: alongside the live
/// LoadMap the session replays the *cached* trace's add/remove sequence
/// into a shadow LoadMap (LoadMap arithmetic is deterministic, so the
/// shadow is bit-identical to what the previous solve saw at the same trace
/// point) and tracks the set of edges whose two loads differ bitwise. A
/// reused Dijkstra therefore has provably identical inputs — overlapping
/// old/new corridors cancel out of the divergence set, and one-ulp rip-up
/// residues are detected rather than assumed away. The result is
/// bit-identical to the from-scratch loop for every routing kind, with most
/// Dijkstras skipped on swap-local traffic.
///
/// When a speculative solve displaces too many commodities (more than
/// kFallbackDirtyNumerator/kFallbackDirtyDenominator of them are dirty) or
/// the session has no valid base, it degrades gracefully to a full re-route
/// that still records the trace for the next solve.
///
/// Transactional discipline mirrors fplan::FloorplanSession: a speculative
/// solve opens an undo frame journaling every displaced route and endpoint
/// verbatim; pop() restores them in O(frame), commit() folds all open frames
/// into the base, frames nest, and destroying nothing is ever required —
/// frames are pooled and reused. A destructive solve under open frames
/// throws (protocol misuse).
class RoutingSession {
 public:
  struct Stats {
    std::int64_t solves = 0;             ///< solve() calls
    std::int64_t full_solves = 0;        ///< invalid base or dirty fallback
    std::int64_t incremental_solves = 0; ///< replays with reuse enabled
    std::int64_t snapshot_solves = 0;    ///< zero-dirty O(1) snapshot returns
    std::int64_t rerouted = 0;           ///< Dijkstra-backed (pass, k) steps
    std::int64_t reused = 0;             ///< provably identical reuses
  };

  /// Full re-route fallback threshold: incremental replay is abandoned when
  /// more than one quarter of the commodities changed endpoints (the reuse
  /// bookkeeping would only add overhead to a near-global re-route).
  static constexpr int kFallbackDirtyNumerator = 1;
  static constexpr int kFallbackDirtyDenominator = 4;

  RoutingSession() = default;

  /// (Re)binds the session to a commodity list: demands[k] is commodity k's
  /// bandwidth in canonical order. Drops all cached routes and open frames.
  void reset(std::vector<double> demands, int reroute_passes);

  /// True once a solve has recorded a complete trace to replay against.
  [[nodiscard]] bool valid() const { return valid_; }
  [[nodiscard]] int num_commodities() const {
    return static_cast<int>(demands_.size());
  }
  [[nodiscard]] int reroute_passes() const { return passes_; }
  [[nodiscard]] int open_frames() const { return frame_depth_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Routes every commodity through `engine` for the endpoint assignment
  /// `endpoints`, bit-identical to the from-scratch canonical loop, writing
  /// the accumulated final link loads into `loads` (cleared first). With
  /// `speculative`, the displaced state is journaled in a new undo frame;
  /// otherwise the new trace destructively becomes the base (throws
  /// std::logic_error if frames are open).
  void solve(const RoutingEngine& engine,
             const std::vector<CommodityEndpoints>& endpoints, LoadMap& loads,
             bool speculative);

  /// Final route of commodity k after the most recent solve. The reference
  /// is invalidated by the next solve/pop/commit/reset.
  [[nodiscard]] const RouteSet& route(int k) const {
    return pass_routes_[static_cast<std::size_t>(passes_ * num_commodities() +
                                                 k)];
  }

  /// Pops the newest undo frame, restoring every displaced route and
  /// endpoint verbatim in O(frame). Throws std::logic_error when no frame
  /// is open.
  void pop();

  /// Folds every open frame into the base (the speculated traces stay).
  void commit();

 private:
  struct UndoEntry {
    int pass = 0;
    int commodity = 0;
    RouteSet old_route;
  };
  struct KeyUndo {
    int commodity = 0;
    CommodityEndpoints old_key;
  };
  // deque keeps journaled old routes address-stable: during the replay the
  // deviation bookkeeping points at them as the cached-side current routes.
  // Entries are pooled (routes_used high-water mark, swap in/swap out) so the
  // speculate/pop churn of an annealing walk never frees a route buffer.
  struct Frame {
    std::deque<UndoEntry> routes;
    std::size_t routes_used = 0;
    std::vector<KeyUndo> keys;
    LoadMap old_final{0};  ///< displaced final-loads snapshot (buffer pooled)
    bool has_old_final = false;
    bool base_valid = true;
    void reset() {
      routes_used = 0;
      keys.clear();
      has_old_final = false;
      base_valid = true;
    }
  };

  [[nodiscard]] RouteSet& pass_route(int pass, int k) {
    return pass_routes_[static_cast<std::size_t>(pass * num_commodities() +
                                                 k)];
  }
  void refresh_equality(const LoadMap& live, const RouteSet& routes);
  [[nodiscard]] bool divergence_visible(const RoutingEngine& engine,
                                        const CommodityEndpoints& key);
  [[nodiscard]] std::uint64_t quadrant_tiles(const RoutingEngine& engine,
                                             const CommodityEndpoints& key);
  void note_saturation(const RoutingEngine& engine);

  int passes_ = 0;
  bool valid_ = false;
  std::vector<double> demands_;
  std::vector<CommodityEndpoints> key_;
  std::vector<RouteSet> pass_routes_;  ///< (passes_+1) x N, pass-major

  // Replay-transient state (reset by every solve).
  std::vector<char> dirty_;
  LoadMap cached_loads_{0};            ///< shadow replay of the cached trace
  std::vector<char> unequal_;          ///< per-edge: live != cached (bitwise)
  std::vector<graph::EdgeId> unequal_edges_;  ///< set flags, for O(set) reset
  int unequal_count_ = 0;
  std::vector<const RouteSet*> cached_ptr_;  ///< cached route per trace slot
  std::deque<RouteSet> replay_stash_;  ///< old routes, destructive solves
  std::size_t stash_used_ = 0;         ///< pooled, like Frame::routes
  RouteSet tmp_route_;

  // Final link loads of the most recent solve. When no endpoint moved at
  // all (e.g. a swap of two unoccupied slots), the canonical trace is the
  // cached trace verbatim, so solve() returns this snapshot in O(edges)
  // without touching a single route.
  LoadMap final_loads_{0};
  bool final_snapshot_ = false;

  // O(1) visibility: switches hash onto 64 tiles (tile = id * 64 / count);
  // unequal_tiles_ accumulates the tile of each divergent edge's source
  // switch, and a commodity provably sees no divergence when its quadrant's
  // tile mask misses every divergent tile. Once every edge-bearing tile
  // (all_tiles_) is divergent — or any divergence exists under split-all —
  // no remaining commodity can prove invisibility, so the solve flips to
  // saturated mode and drops the shadow bookkeeping for its remainder,
  // degrading to exactly the from-scratch loop.
  std::uint64_t unequal_tiles_ = 0;
  std::uint64_t all_tiles_ = 0;  ///< tiles holding >= 1 edge source switch
  std::vector<std::uint64_t> edge_tile_;  ///< tile bit of each edge's source
  bool saturated_ = false;
  std::vector<std::uint64_t> quad_tiles_;   ///< per (src, dst) slot pair
  std::vector<char> quad_tiles_ready_;
  int quad_slots_ = 0;

  std::vector<Frame> frames_;  ///< pooled; frame_depth_ are open
  int frame_depth_ = 0;
  Stats stats_;
};

}  // namespace sunmap::route
