#include "route/routing_session.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace sunmap::route {

void RoutingSession::reset(std::vector<double> demands, int reroute_passes) {
  demands_ = std::move(demands);
  passes_ = reroute_passes;
  valid_ = false;
  const std::size_t n = demands_.size();
  key_.assign(n, CommodityEndpoints{});
  pass_routes_.assign(static_cast<std::size_t>(passes_ + 1) * n, RouteSet{});
  dirty_.assign(n, 0);
  cached_loads_ = LoadMap(0);
  unequal_.clear();
  unequal_edges_.clear();
  unequal_count_ = 0;
  cached_ptr_.clear();
  unequal_tiles_ = 0;
  all_tiles_ = 0;
  edge_tile_.clear();
  saturated_ = false;
  quad_tiles_.clear();
  quad_tiles_ready_.clear();
  quad_slots_ = 0;
  final_loads_ = LoadMap(0);
  final_snapshot_ = false;
  replay_stash_.clear();
  stash_used_ = 0;
  for (auto& frame : frames_) frame.reset();
  frame_depth_ = 0;
}

namespace {

/// 64-bucket hash of a switch id; locality-preserving for row-major meshes.
inline std::uint64_t tile_bit(graph::NodeId node, int num_switches) {
  const int tile = static_cast<int>(
      static_cast<std::int64_t>(node) * 64 / num_switches);
  return std::uint64_t{1} << tile;
}

}  // namespace

void RoutingSession::refresh_equality(const LoadMap& live,
                                      const RouteSet& routes) {
  const std::vector<double>& a = live.values();
  const std::vector<double>& b = cached_loads_.values();
  for (const auto& wp : routes.paths) {
    for (graph::EdgeId e : wp.path.edges) {
      const std::size_t i = static_cast<std::size_t>(e);
      // Numeric (not bitwise) comparison: +0.0 and -0.0 can legitimately
      // differ between the two replays, and no downstream comparison or
      // accumulation distinguishes them.
      const bool equal = a[i] == b[i];
      char& flag = unequal_[i];
      if (!equal && flag == 0) {
        flag = 1;
        unequal_edges_.push_back(e);
        unequal_tiles_ |= edge_tile_[i];
        ++unequal_count_;
      } else if (equal && flag != 0) {
        flag = 0;
        --unequal_count_;  // tiles stay set (conservative) until count hits 0
      }
    }
  }
}

std::uint64_t RoutingSession::quadrant_tiles(const RoutingEngine& engine,
                                             const CommodityEndpoints& key) {
  const int slots = engine.topology().num_slots();
  if (quad_slots_ != slots) {
    quad_slots_ = slots;
    const std::size_t pairs =
        static_cast<std::size_t>(slots) * static_cast<std::size_t>(slots);
    quad_tiles_.assign(pairs, 0);
    quad_tiles_ready_.assign(pairs, 0);
  }
  const std::size_t idx = static_cast<std::size_t>(key.src) *
                              static_cast<std::size_t>(slots) +
                          static_cast<std::size_t>(key.dst);
  if (quad_tiles_ready_[idx] == 0) {
    const char* admitted = engine.min_path_admission(key.src, key.dst);
    const int num_switches = engine.topology().switch_graph().num_nodes();
    std::uint64_t mask = 0;
    for (int node = 0; node < num_switches; ++node) {
      if (admitted[static_cast<std::size_t>(node)] != 0) {
        mask |= tile_bit(node, num_switches);
      }
    }
    quad_tiles_[idx] = mask;
    quad_tiles_ready_[idx] = 1;
  }
  return quad_tiles_[idx];
}

bool RoutingSession::divergence_visible(const RoutingEngine& engine,
                                        const CommodityEndpoints& key) {
  if (unequal_count_ == 0) {
    // Everything healed (or never diverged): flags of listed edges are all
    // zero already, so the tile accumulator can restart exact.
    unequal_edges_.clear();
    unequal_tiles_ = 0;
    return false;
  }
  switch (engine.kind()) {
    case RoutingKind::kMinPath: {
      // A load difference is visible to MP's Dijkstra only if the link joins
      // two switches admitted by the commodity's quadrant mask (§4.3). The
      // O(1) conservative test: if the quadrant's tiles miss every tile
      // holding a divergent edge's source switch, no divergent edge can have
      // both endpoints admitted.
      if ((quadrant_tiles(engine, key) & unequal_tiles_) == 0) return false;
      // While the divergent set is small (the common case right after a
      // swap, when most reuse decisions are made), confirm with the exact
      // per-edge admission test; once it grows, trust the tile test.
      constexpr std::size_t kExactScanLimit = 64;
      if (unequal_edges_.size() > kExactScanLimit) return true;
      const char* admitted = engine.min_path_admission(key.src, key.dst);
      const auto& g = engine.topology().switch_graph();
      bool visible = false;
      std::size_t kept = 0;
      for (graph::EdgeId e : unequal_edges_) {
        if (unequal_[static_cast<std::size_t>(e)] == 0) continue;
        unequal_edges_[kept++] = e;  // compact entries that healed to equal
        const auto& edge = g.edge(e);
        if (admitted[static_cast<std::size_t>(edge.src)] != 0 &&
            admitted[static_cast<std::size_t>(edge.dst)] != 0) {
          visible = true;
        }
      }
      unequal_edges_.resize(kept);
      return visible;
    }
    case RoutingKind::kSplitAll:
      // Split-all admits every link, so any live divergence is visible.
      return true;
    default:
      // Static kinds never route through a session; if one ever does, stay
      // conservative and never reuse.
      return true;
  }
}

void RoutingSession::note_saturation(const RoutingEngine& engine) {
  if (saturated_ || unequal_count_ == 0) return;
  if (engine.kind() == RoutingKind::kMinPath) {
    // Once divergence covers 7/8 of the edge-bearing tiles, only the rare
    // quadrant squeezed into the remaining sliver could still prove
    // invisibility — forfeit that residual reuse and stop paying for the
    // shadow replay (the solve degrades to the plain from-scratch loop).
    const int covered = std::popcount(unequal_tiles_ & all_tiles_);
    const int total = std::popcount(all_tiles_);
    if (covered * 8 >= total * 7) saturated_ = true;
  } else {
    // Split-all (and any conservative kind): one divergent edge already
    // forces every remaining commodity to re-route.
    saturated_ = true;
  }
}

void RoutingSession::solve(const RoutingEngine& engine,
                           const std::vector<CommodityEndpoints>& endpoints,
                           LoadMap& loads, bool speculative) {
  const int n = num_commodities();
  if (static_cast<int>(endpoints.size()) != n) {
    throw std::invalid_argument(
        "RoutingSession: endpoint count does not match the bound demands");
  }
  if (!speculative && frame_depth_ > 0) {
    throw std::logic_error(
        "RoutingSession: destructive solve under open frames; commit or pop "
        "first");
  }
  ++stats_.solves;

  // Dirty-commodity rule: a commodity re-routes through a Dijkstra if its
  // endpoints moved; everything else is a reuse candidate. When too many
  // moved (or there is no valid base trace), fall back to a full re-route.
  bool full = !valid_;
  int dirty_count = 0;
  for (int k = 0; k < n; ++k) {
    dirty_[k] = (!valid_ || !(endpoints[static_cast<std::size_t>(k)] ==
                              key_[static_cast<std::size_t>(k)]))
                    ? 1
                    : 0;
    dirty_count += dirty_[static_cast<std::size_t>(k)];
  }
  if (!full &&
      dirty_count * kFallbackDirtyDenominator > n * kFallbackDirtyNumerator) {
    full = true;
  }
  const auto open_frame = [&]() -> Frame* {
    if (frame_depth_ == static_cast<int>(frames_.size())) {
      frames_.emplace_back();
    }
    Frame* opened = &frames_[static_cast<std::size_t>(frame_depth_)];
    opened->reset();
    opened->base_valid = valid_;
    ++frame_depth_;
    return opened;
  };

  // Zero-dirty fast path: no endpoint moved, so the canonical trace is the
  // cached trace verbatim and the final loads are the stored snapshot. The
  // (empty) frame keeps speculative pop/commit balanced.
  if (!full && dirty_count == 0 && final_snapshot_ &&
      final_loads_.num_edges() ==
          engine.topology().switch_graph().num_edges()) {
    ++stats_.snapshot_solves;
    stats_.reused += static_cast<std::int64_t>(passes_ + 1) * n;
    if (speculative) open_frame();
    loads = final_loads_;
    return;
  }

  if (full) {
    ++stats_.full_solves;
  } else {
    ++stats_.incremental_solves;
  }

  Frame* frame = nullptr;
  if (speculative) {
    frame = open_frame();
  } else {
    stash_used_ = 0;
  }

  loads.clear();
  if (!full) {
    // Both replays start from cleared maps (all edges equal); the shadow map
    // then re-applies the cached trace's own add/remove sequence, which is
    // deterministic and therefore reproduces the previous solve's loads
    // bit-for-bit at every trace point.
    const auto& g = engine.topology().switch_graph();
    const int num_edges = g.num_edges();
    if (cached_loads_.num_edges() != num_edges) {
      cached_loads_ = LoadMap(num_edges);
      unequal_.assign(static_cast<std::size_t>(num_edges), 0);
      const int num_switches = g.num_nodes();
      edge_tile_.resize(static_cast<std::size_t>(num_edges));
      all_tiles_ = 0;
      for (int e = 0; e < num_edges; ++e) {
        edge_tile_[static_cast<std::size_t>(e)] =
            tile_bit(g.edge(e).src, num_switches);
        all_tiles_ |= edge_tile_[static_cast<std::size_t>(e)];
      }
    } else {
      cached_loads_.clear();
      for (graph::EdgeId e : unequal_edges_) {
        unequal_[static_cast<std::size_t>(e)] = 0;
      }
    }
    unequal_edges_.clear();
    unequal_count_ = 0;
    unequal_tiles_ = 0;
    saturated_ = false;
    cached_ptr_.assign(pass_routes_.size(), nullptr);
  }

  // Installs the freshly computed route sitting in tmp_route_, journaling
  // the displaced one, and returns the cached-trace route for this
  // (pass, commodity) slot: the displaced original, or the slot itself when
  // the fresh route landed on exactly the cached one. Swap discipline keeps
  // every RouteSet buffer pooled — nothing is freed on the hot path.
  const auto install_route = [&](int pass, int k) -> const RouteSet* {
    RouteSet& slot = pass_route(pass, k);
    if (same_routes(tmp_route_, slot)) return &slot;
    RouteSet* displaced = nullptr;
    if (frame != nullptr) {
      if (frame->base_valid) {
        if (frame->routes_used == frame->routes.size()) {
          frame->routes.emplace_back();
        }
        UndoEntry& entry = frame->routes[frame->routes_used++];
        entry.pass = pass;
        entry.commodity = k;
        displaced = &entry.old_route;
      }
    } else if (!full) {
      if (stash_used_ == replay_stash_.size()) replay_stash_.emplace_back();
      displaced = &replay_stash_[stash_used_++];
    }
    if (displaced != nullptr) std::swap(*displaced, slot);
    std::swap(slot, tmp_route_);  // tmp_route_ inherits a warmed buffer
    return displaced;
  };

  const auto slot_index = [&](int pass, int k) {
    return static_cast<std::size_t>(pass * n + k);
  };

  // Pass 0: route in canonical (decreasing-bandwidth) order. This replays
  // the from-scratch loop exactly — a cached route is reused only when its
  // commodity is clean and no admitted link's load differs from the cached
  // trace, which makes the reused Dijkstra's inputs provably identical.
  for (int k = 0; k < n; ++k) {
    const auto& key = endpoints[static_cast<std::size_t>(k)];
    const double demand = demands_[static_cast<std::size_t>(k)];
    if (!full && !saturated_ && dirty_[static_cast<std::size_t>(k)] == 0 &&
        !divergence_visible(engine, key)) {
      ++stats_.reused;
      // Both sides add the same route: equal edge loads see identical
      // arithmetic and stay equal, so no equality refresh is needed.
      const RouteSet& kept = pass_route(0, k);
      cached_ptr_[slot_index(0, k)] = &kept;
      loads.add_route(kept, demand);
      cached_loads_.add_route(kept, demand);
    } else {
      ++stats_.rerouted;
      engine.route(key.src, key.dst, demand, loads, tmp_route_);
      const RouteSet* cached = install_route(0, k);
      const RouteSet& live = pass_route(0, k);
      loads.add_route(live, demand);
      if (!full && !saturated_) {
        cached_ptr_[slot_index(0, k)] = cached;
        cached_loads_.add_route(*cached, demand);
        if (cached != &live) refresh_equality(loads, *cached);
        refresh_equality(loads, live);
        note_saturation(engine);
      }
    }
  }

  // Rip-up rounds: remove the commodity's current route, re-route against
  // everyone else's load, and add the (possibly unchanged) result back —
  // same arithmetic, same order as the from-scratch loop, mirrored on the
  // shadow map with the cached trace's own routes.
  for (int pass = 1; pass <= passes_; ++pass) {
    for (int k = 0; k < n; ++k) {
      const auto& key = endpoints[static_cast<std::size_t>(k)];
      const double demand = demands_[static_cast<std::size_t>(k)];
      const RouteSet& current = pass_route(pass - 1, k);
      loads.remove_route(current, demand);
      if (!full && !saturated_) {
        const RouteSet* cached_prev = cached_ptr_[slot_index(pass - 1, k)];
        cached_loads_.remove_route(*cached_prev, demand);
        refresh_equality(loads, current);
        if (cached_prev != &current) refresh_equality(loads, *cached_prev);
      }
      if (!full && !saturated_ && dirty_[static_cast<std::size_t>(k)] == 0 &&
          !divergence_visible(engine, key)) {
        ++stats_.reused;
        const RouteSet& kept = pass_route(pass, k);
        cached_ptr_[slot_index(pass, k)] = &kept;
        loads.add_route(kept, demand);
        cached_loads_.add_route(kept, demand);
      } else {
        ++stats_.rerouted;
        engine.route(key.src, key.dst, demand, loads, tmp_route_);
        const RouteSet* cached = install_route(pass, k);
        const RouteSet& live = pass_route(pass, k);
        loads.add_route(live, demand);
        if (!full && !saturated_) {
          cached_ptr_[slot_index(pass, k)] = cached;
          cached_loads_.add_route(*cached, demand);
          if (cached != &live) refresh_equality(loads, *cached);
          refresh_equality(loads, live);
          note_saturation(engine);
        }
      }
    }
  }

  for (int k = 0; k < n; ++k) {
    auto& key = key_[static_cast<std::size_t>(k)];
    const auto& fresh = endpoints[static_cast<std::size_t>(k)];
    if (key == fresh) continue;
    if (frame != nullptr && frame->base_valid) {
      frame->keys.push_back(KeyUndo{k, key});
    }
    key = fresh;
  }
  if (frame != nullptr && frame->base_valid) {
    // Journal the displaced snapshot; the swap pools its buffer so the
    // copy below reuses warmed capacity.
    std::swap(frame->old_final, final_loads_);
    frame->has_old_final = final_snapshot_;
  }
  final_loads_ = loads;
  final_snapshot_ = true;
  valid_ = true;
}

void RoutingSession::pop() {
  if (frame_depth_ <= 0) {
    throw std::logic_error("RoutingSession: pop without an open frame");
  }
  Frame& frame = frames_[static_cast<std::size_t>(--frame_depth_)];
  if (!frame.base_valid) {
    // The speculation solved on top of an invalid base; there is no trace
    // to restore — the next solve re-routes from scratch.
    valid_ = false;
    final_snapshot_ = false;
    frame.reset();
    return;
  }
  for (std::size_t i = frame.routes_used; i-- > 0;) {
    UndoEntry& entry = frame.routes[i];
    // Swap (not move) so the discarded speculative route's buffer stays
    // pooled in the journal entry for the next speculation.
    std::swap(pass_route(entry.pass, entry.commodity), entry.old_route);
  }
  for (auto it = frame.keys.rbegin(); it != frame.keys.rend(); ++it) {
    key_[static_cast<std::size_t>(it->commodity)] = it->old_key;
  }
  // A zero-dirty fast-path frame never displaced the snapshot; anything
  // else journaled it above.
  if (frame.has_old_final) std::swap(final_loads_, frame.old_final);
  frame.reset();
}

void RoutingSession::commit() {
  while (frame_depth_ > 0) {
    frames_[static_cast<std::size_t>(--frame_depth_)].reset();
  }
}

}  // namespace sunmap::route
