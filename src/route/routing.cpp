#include "route/routing.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sunmap::route {

namespace {

/// Hop-cost base that dominates any realistic accumulated load (MB/s), so
/// minimum-path Dijkstra is lexicographic: fewest hops first, then least
/// congested (Fig 5 steps 3-6 route commodities over edge weights that grow
/// with already-routed traffic).
constexpr double kHopCost = 1e9;

}  // namespace

const char* to_string(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kDimensionOrdered:
      return "DO";
    case RoutingKind::kMinPath:
      return "MP";
    case RoutingKind::kSplitMin:
      return "SM";
    case RoutingKind::kSplitAll:
      return "SA";
  }
  return "?";
}

double RouteSet::weighted_switch_hops() const {
  double hops = 0.0;
  for (const auto& wp : paths) {
    hops += wp.fraction * static_cast<double>(wp.path.nodes.size());
  }
  return hops;
}

double RouteSet::weighted_link_hops() const {
  double hops = 0.0;
  for (const auto& wp : paths) {
    hops += wp.fraction * static_cast<double>(wp.path.edges.size());
  }
  return hops;
}

bool same_routes(const RouteSet& a, const RouteSet& b) {
  if (a.paths.size() != b.paths.size()) return false;
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    if (a.paths[i].fraction != b.paths[i].fraction) return false;
    if (a.paths[i].path.nodes != b.paths[i].path.nodes) return false;
    if (a.paths[i].path.edges != b.paths[i].path.edges) return false;
  }
  return true;
}

void LoadMap::add_route(const RouteSet& routes, double demand) {
  for (const auto& wp : routes.paths) {
    for (graph::EdgeId e : wp.path.edges) add(e, demand * wp.fraction);
  }
}

void LoadMap::remove_route(const RouteSet& routes, double demand) {
  // IEEE negation is exact, so this adds exactly the negated amounts of the
  // corresponding add_route in the same edge order — the bit-exact inverse.
  add_route(routes, -demand);
}

double LoadMap::max_load() const {
  double mx = 0.0;
  for (double v : loads_) mx = std::max(mx, v);
  return mx;
}

QuadrantTable::QuadrantTable(const topo::Topology& topology)
    : num_slots_(topology.num_slots()),
      num_switches_(topology.num_switches()) {
  masks_.assign(static_cast<std::size_t>(num_slots_) *
                    static_cast<std::size_t>(num_slots_) *
                    static_cast<std::size_t>(num_switches_),
                0);
  // Build directly from quadrant_nodes() rather than the topology's
  // memoized quadrant_mask(): the engine prefers this table once attached,
  // so filling the per-topology memo here would just duplicate every mask
  // for the topology's lifetime.
  for (topo::SlotId src = 0; src < num_slots_; ++src) {
    for (topo::SlotId dst = 0; dst < num_slots_; ++dst) {
      if (src == dst) continue;
      char* mask = masks_.data() +
                   (static_cast<std::size_t>(src) *
                        static_cast<std::size_t>(num_slots_) +
                    static_cast<std::size_t>(dst)) *
                       static_cast<std::size_t>(num_switches_);
      for (const graph::NodeId u : topology.quadrant_nodes(src, dst)) {
        mask[static_cast<std::size_t>(u)] = 1;
      }
    }
  }
}

RoutingEngine::RoutingEngine(const topo::Topology& topology, RoutingKind kind)
    : RoutingEngine(topology, kind, Options()) {}

RoutingEngine::RoutingEngine(const topo::Topology& topology, RoutingKind kind,
                             Options options)
    : topology_(topology), kind_(kind), options_(options) {
  if (options_.split_chunks < 1) {
    throw std::invalid_argument("RoutingEngine: split_chunks must be >= 1");
  }
  if (options_.capacity_hint_mbps <= 0.0) {
    throw std::invalid_argument("RoutingEngine: capacity hint must be > 0");
  }
}

void RoutingEngine::route(topo::SlotId src, topo::SlotId dst, double demand,
                          const LoadMap& loads, RouteSet& out) const {
  out.paths.clear();
  if (src == dst) {
    throw std::invalid_argument("RoutingEngine: src and dst slots coincide");
  }
  switch (kind_) {
    case RoutingKind::kDimensionOrdered:
      route_dimension_ordered(src, dst, out);
      return;
    case RoutingKind::kMinPath:
      route_min_path(src, dst, loads, out);
      return;
    case RoutingKind::kSplitMin:
      route_split_min(src, dst, out);
      return;
    case RoutingKind::kSplitAll:
      route_split_all(src, dst, demand, loads, out);
      return;
  }
  throw std::logic_error("RoutingEngine: unknown routing kind");
}

void RoutingEngine::route_dimension_ordered(topo::SlotId src,
                                            topo::SlotId dst,
                                            RouteSet& out) const {
  out.paths.push_back(WeightedPath{
      topology_.make_path(topology_.dimension_ordered_path(src, dst)), 1.0});
}

void RoutingEngine::route_min_path(topo::SlotId src, topo::SlotId dst,
                                   const LoadMap& loads, RouteSet& out) const {
  // Quadrant graph of §4.3: restrict the Dijkstra search to the switches
  // that can lie on a minimum path, which both guarantees minimality and
  // gives the computational savings the paper reports. The admission mask
  // comes from the per-topology table configured at construction (lock-free,
  // shared by concurrent search workers) or the topology's memoized cache.
  const char* admitted = min_path_admission(src, dst);

  // Direct template instantiation: this is the hottest loop of the whole
  // mapping search (every adaptive-routing evaluation runs one Dijkstra per
  // commodity per pass), so the cost/admission callbacks must inline rather
  // than go through std::function dispatch.
  const auto path = graph::shortest_path_with(
      topology_.switch_graph(), topology_.ingress_switch(src),
      topology_.egress_switch(dst),
      [&](graph::EdgeId e) { return kHopCost + loads.load(e); },
      [&](graph::NodeId u) { return admitted[static_cast<std::size_t>(u)] != 0; });
  if (!path) {
    throw std::logic_error(
        "RoutingEngine: quadrant graph disconnected (topology bug)");
  }
  out.paths.push_back(WeightedPath{*path, 1.0});
}

void RoutingEngine::route_split_min(topo::SlotId src, topo::SlotId dst,
                                    RouteSet& out) const {
  const auto& g = topology_.switch_graph();
  const graph::NodeId from = topology_.ingress_switch(src);
  const graph::NodeId to = topology_.egress_switch(dst);

  if (from == to) {
    graph::Path path;
    path.nodes = {from};
    out.paths.push_back(WeightedPath{path, 1.0});
    return;
  }

  // Even flow split over the minimum-path DAG: each node forwards its
  // incoming fraction equally over its DAG out-edges, then the fractional
  // edge flow is decomposed into at most |DAG edges| weighted paths (needed
  // by the cycle-accurate simulator, which is source-routed).
  const auto dag_edges = graph::min_path_dag(g, from, to);
  std::vector<double> edge_flow(static_cast<std::size_t>(g.num_edges()), 0.0);
  std::vector<std::vector<graph::EdgeId>> dag_out(
      static_cast<std::size_t>(g.num_nodes()));
  for (graph::EdgeId e : dag_edges) {
    dag_out[static_cast<std::size_t>(g.edge(e).src)].push_back(e);
  }

  const auto dist = graph::bfs_distances(g, from);
  std::vector<graph::NodeId> order;
  order.push_back(from);
  for (graph::EdgeId e : dag_edges) order.push_back(g.edge(e).dst);
  std::sort(order.begin(), order.end(), [&](graph::NodeId a, graph::NodeId b) {
    return dist[static_cast<std::size_t>(a)] < dist[static_cast<std::size_t>(b)];
  });
  order.erase(std::unique(order.begin(), order.end()), order.end());

  std::vector<double> node_flow(static_cast<std::size_t>(g.num_nodes()), 0.0);
  node_flow[static_cast<std::size_t>(from)] = 1.0;
  for (graph::NodeId u : order) {
    const double flow = node_flow[static_cast<std::size_t>(u)];
    const auto& outs = dag_out[static_cast<std::size_t>(u)];
    if (flow <= 0.0 || outs.empty()) continue;
    const double share = flow / static_cast<double>(outs.size());
    for (graph::EdgeId e : outs) {
      edge_flow[static_cast<std::size_t>(e)] += share;
      node_flow[static_cast<std::size_t>(g.edge(e).dst)] += share;
    }
  }

  // Path decomposition: repeatedly follow the remaining positive-flow edges
  // from source to destination, peel off the bottleneck fraction.
  constexpr double kEps = 1e-12;
  double remaining = 1.0;
  while (remaining > kEps) {
    graph::Path path;
    path.nodes.push_back(from);
    double bottleneck = remaining;
    graph::NodeId cur = from;
    while (cur != to) {
      graph::EdgeId best = graph::kInvalidEdge;
      double best_flow = kEps;
      for (graph::EdgeId e : dag_out[static_cast<std::size_t>(cur)]) {
        if (edge_flow[static_cast<std::size_t>(e)] > best_flow) {
          best_flow = edge_flow[static_cast<std::size_t>(e)];
          best = e;
        }
      }
      if (best == graph::kInvalidEdge) {
        throw std::logic_error("RoutingEngine: flow decomposition stuck");
      }
      bottleneck = std::min(bottleneck, best_flow);
      path.edges.push_back(best);
      cur = g.edge(best).dst;
      path.nodes.push_back(cur);
    }
    for (graph::EdgeId e : path.edges) {
      edge_flow[static_cast<std::size_t>(e)] -= bottleneck;
    }
    path.cost = static_cast<double>(path.edges.size());
    out.paths.push_back(WeightedPath{std::move(path), bottleneck});
    remaining -= bottleneck;
  }

  // Normalise tiny floating-point residue so fractions sum to exactly 1.
  double total = 0.0;
  for (const auto& wp : out.paths) total += wp.fraction;
  for (auto& wp : out.paths) wp.fraction /= total;
}

void RoutingEngine::route_split_all(topo::SlotId src, topo::SlotId dst,
                                    double demand, const LoadMap& loads,
                                    RouteSet& out) const {
  // Split-across-all-paths: divide the commodity into equal chunks and route
  // each chunk with congestion-aware Dijkstra over the full switch graph
  // (non-minimal paths allowed), accounting for the chunks already placed.
  // A small per-hop bias keeps zero-load routes minimal.
  const auto& g = topology_.switch_graph();
  const graph::NodeId from = topology_.ingress_switch(src);
  const graph::NodeId to = topology_.egress_switch(dst);
  const int split_chunks = options_.split_chunks;
  const double chunk =
      demand > 0.0 ? demand / static_cast<double>(split_chunks) : 0.0;
  const double hop_bias = std::max(1.0, demand * 0.01);

  // Soft capacity: a sub-flow strongly avoids links it would push past the
  // capacity hint, which is what lets the heavy MPEG4 SDRAM flows spread
  // around already-loaded links instead of stacking onto them.
  constexpr double kOverloadPenalty = 1e7;
  std::vector<double> extra(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (int c = 0; c < split_chunks; ++c) {
    auto path = graph::shortest_path_with(
        g, from, to,
        [&](graph::EdgeId e) {
          const double current =
              loads.load(e) + extra[static_cast<std::size_t>(e)];
          double cost = hop_bias + current + chunk * 0.5;
          if (current + chunk > options_.capacity_hint_mbps + 1e-9) {
            cost += kOverloadPenalty;
          }
          return cost;
        },
        graph::AdmitAll{});
    if (!path) {
      throw std::logic_error("RoutingEngine: topology disconnected");
    }
    for (graph::EdgeId e : path->edges) {
      extra[static_cast<std::size_t>(e)] += chunk;
    }
    // Merge identical consecutive chunk paths to keep the set small.
    bool merged = false;
    for (auto& wp : out.paths) {
      if (wp.path.nodes == path->nodes) {
        wp.fraction += 1.0 / static_cast<double>(split_chunks);
        merged = true;
        break;
      }
    }
    if (!merged) {
      out.paths.push_back(
          WeightedPath{*path, 1.0 / static_cast<double>(split_chunks)});
    }
  }
}

}  // namespace sunmap::route
