#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gen/netlist.h"
#include "mapping/mapper.h"
#include "select/selector.h"
#include "topo/library.h"

namespace sunmap::core {

/// Configuration of a full SUNMAP run (all three phases of Fig 4).
struct SunmapConfig {
  mapping::MapperConfig mapper;
  /// Also try the octagon (when it fits) and star extension topologies.
  bool include_extension_topologies = false;
  /// When set, generated SystemC-style sources are written here (the
  /// directory must exist); otherwise generation stays in memory.
  std::string output_directory;
};

/// Result of a full run: the phase-2 selection report plus the phase-3
/// network generation for the winning topology (absent when no feasible
/// mapping exists, as for MPEG4 on a butterfly).
struct SunmapResult {
  select::SelectionReport report;
  std::optional<gen::Netlist> netlist;
  std::optional<gen::SystemCWriter::Output> generated;
  std::vector<std::string> written_files;
  /// Keeps the topologies the report points into alive when SUNMAP built
  /// the library itself; empty when the caller supplied the library.
  std::vector<std::unique_ptr<topo::Topology>> owned_library;

  [[nodiscard]] const select::TopologyCandidate* best() const {
    return report.best();
  }
};

/// The SUNMAP tool: phase 1 maps the application onto every topology in the
/// library under the configured routing function and objective; phase 2
/// picks the best feasible topology; phase 3 generates the network
/// description for it.
class Sunmap {
 public:
  explicit Sunmap(SunmapConfig config = {});

  /// Runs all three phases against the standard library sized for the
  /// application.
  [[nodiscard]] SunmapResult run(const mapping::CoreGraph& app) const;

  /// Runs against a caller-supplied topology library (the extension hook the
  /// paper describes: "other topologies can be easily added").
  [[nodiscard]] SunmapResult run(
      const mapping::CoreGraph& app,
      const std::vector<std::unique_ptr<topo::Topology>>& library) const;

  [[nodiscard]] const SunmapConfig& config() const { return config_; }

  /// Formats a selection report as the paper-style comparison table
  /// (topology, feasibility, avg hops, design area, design power, cost).
  static std::string report_table(const select::SelectionReport& report);

 private:
  SunmapConfig config_;
  select::TopologySelector selector_;
};

}  // namespace sunmap::core
