#include "core/sunmap.h"

#include "util/table.h"

namespace sunmap::core {

Sunmap::Sunmap(SunmapConfig config)
    : config_(std::move(config)), selector_(config_.mapper) {}

SunmapResult Sunmap::run(const mapping::CoreGraph& app) const {
  auto library = topo::standard_library(app.num_cores(),
                                        config_.include_extension_topologies);
  auto result = run(app, library);
  result.owned_library = std::move(library);
  return result;
}

SunmapResult Sunmap::run(
    const mapping::CoreGraph& app,
    const std::vector<std::unique_ptr<topo::Topology>>& library) const {
  SunmapResult result;
  result.report = selector_.select(app, library);

  if (const auto* best = result.report.best()) {
    result.netlist = gen::Netlist::build(*best->topology, app,
                                         best->result.core_to_slot,
                                         &best->result.eval.floorplan);
    gen::SystemCWriter writer;
    result.generated = writer.emit(*result.netlist);
    if (!config_.output_directory.empty()) {
      result.written_files =
          writer.write_to(*result.netlist, config_.output_directory);
    }
  }
  return result;
}

std::string Sunmap::report_table(const select::SelectionReport& report) {
  util::Table table({"topology", "feasible", "avg hops", "area (mm2)",
                     "power (mW)", "min BW (MB/s)", "cost"});
  for (std::size_t i = 0; i < report.candidates.size(); ++i) {
    const auto& candidate = report.candidates[i];
    const auto& eval = candidate.result.eval;
    std::string name = candidate.topology->name();
    if (static_cast<int>(i) == report.best_index) name += " *";
    table.add_row({name, eval.feasible() ? "yes" : "no",
                   util::Table::num(eval.avg_switch_hops),
                   util::Table::num(eval.design_area_mm2),
                   util::Table::num(eval.design_power_mw, 1),
                   util::Table::num(eval.max_link_load_mbps, 1),
                   util::Table::num(eval.cost)});
  }
  return table.to_string();
}

}  // namespace sunmap::core
