#pragma once

#include "topo/topology.h"

namespace sunmap::topo {

/// Octagon topology (Karim et al., paper ref [6]): 8 switches on a ring with
/// bidirectional channels to both ring neighbours plus a cross channel to the
/// diametrically opposite switch, giving a diameter of two link hops. One of
/// the extension topologies the paper notes "can be easily added" to the
/// library.
class Octagon : public Topology {
 public:
  Octagon();

  /// Standard octagon routing on the relative address rel = (dst - src) mod
  /// 8: rel in {1,2} go clockwise, rel in {6,7} go counter-clockwise,
  /// otherwise take the cross link, repeating until arrival (at most two
  /// link hops).
  [[nodiscard]] std::vector<NodeId> dimension_ordered_path(
      SlotId src, SlotId dst) const override;

  [[nodiscard]] RelativePlacement relative_placement() const override;
};

/// Star topology (paper ref [10]): a central hub switch with a dedicated
/// bidirectional channel to each of the N leaf switches, one core per leaf.
/// Every route is core -> leaf -> hub -> leaf -> core (3 switch hops).
class Star : public Topology {
 public:
  explicit Star(int leaves);

  [[nodiscard]] int leaves() const { return leaves_; }
  [[nodiscard]] NodeId hub() const { return 0; }
  [[nodiscard]] NodeId leaf_node(int i) const { return i + 1; }

  [[nodiscard]] std::vector<NodeId> dimension_ordered_path(
      SlotId src, SlotId dst) const override;

  [[nodiscard]] RelativePlacement relative_placement() const override;

 private:
  int leaves_;
};

}  // namespace sunmap::topo
