#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/paths.h"

namespace sunmap::topo {

using graph::EdgeId;
using graph::NodeId;

/// Index of a core attachment point ("slot") on a topology. The mapping
/// function of the paper (Definition: map &#58; V -> U) assigns each core of the
/// application to one slot; |V| <= |U| must hold.
using SlotId = int;

/// The standard topologies in the SUNMAP library (paper §1/§4) plus the two
/// extension topologies the paper calls out as easy additions (octagon [6]
/// and star [10]).
enum class TopologyKind {
  kMesh,
  kTorus,
  kHypercube,
  kClos,
  kButterfly,
  kOctagon,
  kStar,
  kCustom,  ///< User-defined heterogeneous topology (topo/custom.h).
};

/// Human-readable name ("mesh", "torus", ...).
const char* to_string(TopologyKind kind);

/// Relative block placement used by the floorplanner (§5: "for a particular
/// mapping ... the relative positions of the cores and switches are known").
///
/// Two layout modes:
///  * kGrid    — direct topologies: switches live on a row x col grid and
///               each slot's core block is stacked with its switch in the
///               same cell (sub 0 = core, sub 1 = switch).
///  * kColumns — indirect topologies: vertical columns of blocks; cores on
///               the outer columns, switch stages in between (cf. the
///               butterfly floorplan of Fig 10(b)).
struct RelativePlacement {
  enum class Mode { kGrid, kColumns };
  struct Item {
    enum class Kind { kCore, kSwitch };
    Kind kind = Kind::kSwitch;
    int index = 0;  ///< SlotId for cores, switch NodeId for switches.
    int row = 0;    ///< Grid row / position within column.
    int col = 0;    ///< Grid column / column index.
    int sub = 0;    ///< Stacking order within a grid cell.
  };
  Mode mode = Mode::kGrid;
  int num_rows = 0;
  int num_cols = 0;
  std::vector<Item> items;
};

/// Abstract NoC topology: the NoC topology graph P(U,F) of Definition 2 plus
/// everything SUNMAP needs around it — core attachment points, per-topology
/// quadrant graphs (§4.3), dimension-ordered routes, switch port counts for
/// the area/power models, and a relative placement for the floorplanner.
///
/// The switch graph is directed. Direct topologies (mesh/torus/hypercube/
/// octagon/star) model each bidirectional physical channel as two directed
/// edges; indirect topologies (clos/butterfly) are inherently unidirectional
/// left-to-right. Every slot has an ingress switch (where its core injects)
/// and an egress switch (where traffic addressed to it is delivered); the two
/// coincide for direct topologies.
class Topology {
 public:
  virtual ~Topology() = default;

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] TopologyKind kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// The NoC topology graph over switches.
  [[nodiscard]] const graph::DirectedGraph& switch_graph() const {
    return graph_;
  }
  [[nodiscard]] int num_switches() const { return graph_.num_nodes(); }
  [[nodiscard]] int num_slots() const {
    return static_cast<int>(ingress_.size());
  }

  /// Switch into which the core in slot s injects traffic.
  [[nodiscard]] NodeId ingress_switch(SlotId s) const {
    return ingress_.at(static_cast<std::size_t>(s));
  }
  /// Switch from which traffic addressed to slot s is delivered.
  [[nodiscard]] NodeId egress_switch(SlotId s) const {
    return egress_.at(static_cast<std::size_t>(s));
  }

  /// True when each slot's ingress and egress switch coincide (one core per
  /// switch — Fig 1); false for the multistage networks of Fig 2.
  [[nodiscard]] bool is_direct() const { return direct_; }

  /// Number of input ports of a switch, network links plus attached cores.
  /// Feeds the crossbar/buffer area model (a mesh-interior switch is 5x5).
  [[nodiscard]] int switch_in_ports(NodeId sw) const;
  /// Number of output ports of a switch, network links plus attached cores.
  [[nodiscard]] int switch_out_ports(NodeId sw) const;
  /// max(in_ports, out_ports) — the radix used for the area/power library.
  [[nodiscard]] int switch_radix(NodeId sw) const;

  /// Physical switch-to-switch channel count: bidirectional channel pairs of
  /// direct topologies count once, unidirectional stage links count once.
  [[nodiscard]] int num_network_links() const;
  /// Core-to-switch attachment link count (ingress + distinct egress).
  [[nodiscard]] int num_core_links() const;

  /// Switches traversed on a minimum path from slot a's core to slot b's
  /// core (graph hop distance + 1, so adjacent mesh nodes = 2, butterfly
  /// with n stages = n, clos = 3). This is the paper's "hop delay" metric.
  [[nodiscard]] int min_switch_hops(SlotId a, SlotId b) const;

  /// Quadrant graph of §4.3 for a commodity from slot src to slot dst: the
  /// switches that can lie on a minimum path. The base implementation is the
  /// generic closure {u : d(s,u) + d(u,t) == d(s,t)}; mesh/torus/hypercube
  /// override it with the paper's structural constructions (bounding box,
  /// minimal wrap box, matched-digit subcube) which must agree with the
  /// closure (verified by property tests).
  [[nodiscard]] virtual std::vector<NodeId> quadrant_nodes(SlotId src,
                                                           SlotId dst) const;

  /// Memoized byte-mask form of quadrant_nodes(): mask[u] != 0 iff switch u
  /// lies on a minimum path for the (src, dst) slot pair (src != dst).
  /// Computed on first use and cached for the lifetime of the topology, so
  /// repeated routing over the same topology — the mapper's inner loop —
  /// stops recomputing quadrant sets. Thread-safe; the returned reference
  /// stays valid and immutable once filled.
  [[nodiscard]] const std::vector<char>& quadrant_mask(SlotId src,
                                                       SlotId dst) const;

  /// Dimension-ordered (deterministic, oblivious) route as a switch
  /// sequence from ingress_switch(src) to egress_switch(dst).
  [[nodiscard]] virtual std::vector<NodeId> dimension_ordered_path(
      SlotId src, SlotId dst) const = 0;

  /// Relative placement of slot core blocks and switch blocks for the
  /// floorplanner.
  [[nodiscard]] virtual RelativePlacement relative_placement() const = 0;

  /// Converts a switch node sequence into a Path (filling edge ids); throws
  /// std::logic_error if consecutive switches are not linked.
  [[nodiscard]] graph::Path make_path(const std::vector<NodeId>& nodes) const;

 protected:
  Topology(TopologyKind kind, std::string name, bool direct)
      : kind_(kind), name_(std::move(name)), direct_(direct) {}

  /// Must be called by subclass constructors once graph_/ingress_/egress_
  /// are populated; validates the invariants and precomputes hop distances.
  void finalize();

  graph::DirectedGraph graph_;
  std::vector<NodeId> ingress_;
  std::vector<NodeId> egress_;

 private:
  TopologyKind kind_;
  std::string name_;
  bool direct_;
  std::vector<std::vector<int>> hops_;  // all-pairs switch-graph distances
  std::vector<int> slots_in_at_;        // #slots whose ingress is this switch
  std::vector<int> slots_out_at_;       // #slots whose egress is this switch

  // Lazily-filled quadrant_mask() cache, indexed src * num_slots + dst. The
  // outer vector is sized once in finalize() and never resized, so a filled
  // entry can be handed out by reference without holding the mutex.
  mutable std::mutex quadrant_mutex_;
  mutable std::vector<std::vector<char>> quadrant_mask_cache_;
};

}  // namespace sunmap::topo
