#include "topo/topology.h"

#include <algorithm>
#include <stdexcept>

namespace sunmap::topo {

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kMesh:
      return "mesh";
    case TopologyKind::kTorus:
      return "torus";
    case TopologyKind::kHypercube:
      return "hypercube";
    case TopologyKind::kClos:
      return "clos";
    case TopologyKind::kButterfly:
      return "butterfly";
    case TopologyKind::kOctagon:
      return "octagon";
    case TopologyKind::kStar:
      return "star";
    case TopologyKind::kCustom:
      return "custom";
  }
  return "unknown";
}

void Topology::finalize() {
  if (ingress_.size() != egress_.size()) {
    throw std::logic_error("Topology: ingress/egress size mismatch");
  }
  if (ingress_.empty()) {
    throw std::logic_error("Topology: no core slots");
  }
  for (std::size_t s = 0; s < ingress_.size(); ++s) {
    if (ingress_[s] < 0 || ingress_[s] >= graph_.num_nodes() ||
        egress_[s] < 0 || egress_[s] >= graph_.num_nodes()) {
      throw std::logic_error("Topology: slot attached to invalid switch");
    }
  }

  hops_ = graph::all_pairs_hops(graph_);

  // Every slot pair must be routable.
  for (std::size_t a = 0; a < ingress_.size(); ++a) {
    for (std::size_t b = 0; b < ingress_.size(); ++b) {
      if (a == b) continue;
      if (hops_[static_cast<std::size_t>(ingress_[a])]
               [static_cast<std::size_t>(egress_[b])] < 0) {
        throw std::logic_error("Topology: unroutable slot pair");
      }
    }
  }

  slots_in_at_.assign(static_cast<std::size_t>(graph_.num_nodes()), 0);
  slots_out_at_.assign(static_cast<std::size_t>(graph_.num_nodes()), 0);
  for (std::size_t s = 0; s < ingress_.size(); ++s) {
    ++slots_in_at_[static_cast<std::size_t>(ingress_[s])];
    ++slots_out_at_[static_cast<std::size_t>(egress_[s])];
  }

  quadrant_mask_cache_.assign(ingress_.size() * ingress_.size(), {});
}

int Topology::switch_in_ports(NodeId sw) const {
  return graph_.in_degree(sw) +
         slots_in_at_.at(static_cast<std::size_t>(sw));
}

int Topology::switch_out_ports(NodeId sw) const {
  return graph_.out_degree(sw) +
         slots_out_at_.at(static_cast<std::size_t>(sw));
}

int Topology::switch_radix(NodeId sw) const {
  return std::max(switch_in_ports(sw), switch_out_ports(sw));
}

int Topology::num_network_links() const {
  if (!direct_) return graph_.num_edges();
  // Direct topologies store each bidirectional channel as two directed
  // edges; count each physical channel once.
  int count = 0;
  for (const auto& e : graph_.edges()) {
    if (e.src < e.dst) ++count;
  }
  return count;
}

int Topology::num_core_links() const {
  int count = 0;
  for (std::size_t s = 0; s < ingress_.size(); ++s) {
    // A direct-topology core has one bidirectional attachment; an indirect
    // one attaches separately to its ingress and egress switch.
    count += (ingress_[s] == egress_[s]) ? 1 : 2;
  }
  return count;
}

int Topology::min_switch_hops(SlotId a, SlotId b) const {
  const NodeId from = ingress_switch(a);
  const NodeId to = egress_switch(b);
  return hops_[static_cast<std::size_t>(from)]
              [static_cast<std::size_t>(to)] +
         1;
}

std::vector<NodeId> Topology::quadrant_nodes(SlotId src, SlotId dst) const {
  return graph::min_path_nodes(graph_, ingress_switch(src),
                               egress_switch(dst));
}

const std::vector<char>& Topology::quadrant_mask(SlotId src,
                                                 SlotId dst) const {
  const std::size_t key =
      static_cast<std::size_t>(src) * ingress_.size() +
      static_cast<std::size_t>(dst);
  const std::lock_guard<std::mutex> lock(quadrant_mutex_);
  auto& entry = quadrant_mask_cache_.at(key);
  if (entry.empty()) {
    entry.assign(static_cast<std::size_t>(graph_.num_nodes()), 0);
    for (const NodeId u : quadrant_nodes(src, dst)) {
      entry[static_cast<std::size_t>(u)] = 1;
    }
  }
  return entry;
}

graph::Path Topology::make_path(const std::vector<NodeId>& nodes) const {
  graph::Path path;
  path.nodes = nodes;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const auto e = graph_.find_edge(nodes[i], nodes[i + 1]);
    if (!e) {
      throw std::logic_error("Topology: route uses a non-existent link");
    }
    path.edges.push_back(*e);
  }
  path.cost = static_cast<double>(path.edges.size());
  return path;
}

}  // namespace sunmap::topo
