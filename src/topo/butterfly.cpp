#include "topo/butterfly.h"

#include <cmath>
#include <stdexcept>

namespace sunmap::topo {

Butterfly::Butterfly(int k, int n)
    : Topology(TopologyKind::kButterfly,
               std::to_string(k) + "-ary " + std::to_string(n) + "-fly",
               /*direct=*/false),
      k_(k),
      n_(n) {
  if (k < 2 || n < 1 || n > 16) {
    throw std::invalid_argument("Butterfly: need k >= 2 and 1 <= n <= 16");
  }
  pow_.resize(static_cast<std::size_t>(n + 1));
  pow_[0] = 1;
  for (int i = 1; i <= n; ++i) {
    if (pow_[static_cast<std::size_t>(i - 1)] > (1 << 24) / k) {
      throw std::invalid_argument("Butterfly: network too large");
    }
    pow_[static_cast<std::size_t>(i)] =
        pow_[static_cast<std::size_t>(i - 1)] * k;
  }
  per_stage_ = pow_[static_cast<std::size_t>(n - 1)];

  graph_ = graph::DirectedGraph(n * per_stage_);
  for (int s = 0; s + 1 < n; ++s) {
    const int pos = n - 2 - s;
    for (int j = 0; j < per_stage_; ++j) {
      for (int v = 0; v < k; ++v) {
        graph_.add_edge(switch_at(s, j), switch_at(s + 1, with_digit(j, pos, v)));
      }
    }
  }

  const int terminals = pow_[static_cast<std::size_t>(n)];
  ingress_.resize(static_cast<std::size_t>(terminals));
  egress_.resize(static_cast<std::size_t>(terminals));
  for (SlotId t = 0; t < terminals; ++t) {
    ingress_[static_cast<std::size_t>(t)] = switch_at(0, t / k);
    egress_[static_cast<std::size_t>(t)] = switch_at(n - 1, t / k);
  }
  finalize();
}

int Butterfly::digit(int index, int pos) const {
  return (index / pow_[static_cast<std::size_t>(pos)]) % k_;
}

int Butterfly::with_digit(int index, int pos, int value) const {
  const int base = pow_[static_cast<std::size_t>(pos)];
  return index - digit(index, pos) * base + value * base;
}

std::vector<NodeId> Butterfly::dimension_ordered_path(SlotId src,
                                                      SlotId dst) const {
  int cur = src / k_;
  const int target = dst / k_;
  std::vector<NodeId> path{switch_at(0, cur)};
  for (int s = 0; s + 1 < n_; ++s) {
    const int pos = n_ - 2 - s;
    cur = with_digit(cur, pos, digit(target, pos));
    path.push_back(switch_at(s + 1, cur));
  }
  return path;
}

RelativePlacement Butterfly::relative_placement() const {
  // Cores flank the switch stages (cf. the butterfly floorplan of
  // Fig 10(b)); each side is wrapped into columns of at most `rows` blocks
  // so the chip stays roughly square instead of one tall strip.
  RelativePlacement placement;
  placement.mode = RelativePlacement::Mode::kColumns;
  const int slots = num_slots();
  const int left = (slots + 1) / 2;
  const int right = slots - left;
  const int rows = std::max(
      per_stage_,
      static_cast<int>(std::ceil(std::sqrt(static_cast<double>(slots) / 2.0))));
  const int left_cols = (left + rows - 1) / rows;
  const int right_cols = (right + rows - 1) / rows;

  using Item = RelativePlacement::Item;
  for (SlotId t = 0; t < left; ++t) {
    placement.items.push_back(
        Item{Item::Kind::kCore, t, t % rows, t / rows, 0});
  }
  for (int s = 0; s < n_; ++s) {
    for (int j = 0; j < per_stage_; ++j) {
      placement.items.push_back(
          Item{Item::Kind::kSwitch, switch_at(s, j), j, left_cols + s, 0});
    }
  }
  for (SlotId t = left; t < slots; ++t) {
    const int i = t - left;
    placement.items.push_back(Item{Item::Kind::kCore, t, i % rows,
                                   left_cols + n_ + i / rows, 0});
  }
  placement.num_rows = rows;
  placement.num_cols = left_cols + n_ + right_cols;
  return placement;
}

}  // namespace sunmap::topo
