#include "topo/hypercube.h"

#include <stdexcept>

namespace sunmap::topo {

namespace {

/// Rank of a Gray codeword within the Gray sequence (the inverse of
/// i -> i ^ (i >> 1)); adjacent ranks differ in exactly one address bit.
int gray_rank(int gray) {
  int rank = 0;
  for (int g = gray; g != 0; g >>= 1) rank ^= g;
  return rank;
}

}  // namespace

Hypercube::Hypercube(int dimensions)
    : Topology(TopologyKind::kHypercube,
               "hypercube" + std::to_string(dimensions) + "d",
               /*direct=*/true),
      dims_(dimensions) {
  if (dimensions < 1 || dimensions > 20) {
    throw std::invalid_argument("Hypercube: dimensions must be in [1, 20]");
  }
  const int n = 1 << dimensions;
  graph_ = graph::DirectedGraph(n);
  for (NodeId u = 0; u < n; ++u) {
    for (int d = 0; d < dimensions; ++d) {
      const NodeId v = u ^ (1 << d);
      if (u < v) {
        graph_.add_edge(u, v);
        graph_.add_edge(v, u);
      }
    }
  }
  ingress_.resize(static_cast<std::size_t>(n));
  egress_.resize(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    ingress_[static_cast<std::size_t>(u)] = u;
    egress_[static_cast<std::size_t>(u)] = u;
  }
  finalize();
}

std::vector<NodeId> Hypercube::quadrant_nodes(SlotId src, SlotId dst) const {
  const NodeId s = ingress_switch(src);
  const NodeId t = egress_switch(dst);
  const int differing = s ^ t;
  std::vector<NodeId> nodes;
  // Enumerate the subcube: every combination of the differing bits, with the
  // agreeing bits fixed to their shared value.
  const int fixed = s & ~differing;
  // Iterate over subsets of `differing` via the standard subset-walk trick.
  int subset = 0;
  do {
    nodes.push_back(fixed | subset);
    subset = (subset - differing) & differing;
  } while (subset != 0);
  return nodes;
}

std::vector<NodeId> Hypercube::dimension_ordered_path(SlotId src,
                                                      SlotId dst) const {
  NodeId cur = ingress_switch(src);
  const NodeId to = egress_switch(dst);
  std::vector<NodeId> path{cur};
  for (int d = 0; d < dims_; ++d) {
    if (((cur ^ to) >> d) & 1) {
      cur ^= (1 << d);
      path.push_back(cur);
    }
  }
  return path;
}

RelativePlacement Hypercube::relative_placement() const {
  const int row_bits = dims_ / 2;
  const int col_bits = dims_ - row_bits;
  RelativePlacement placement;
  placement.mode = RelativePlacement::Mode::kGrid;
  placement.num_rows = 1 << row_bits;
  placement.num_cols = 1 << col_bits;
  for (NodeId u = 0; u < (1 << dims_); ++u) {
    const int high = u >> col_bits;
    const int low = u & ((1 << col_bits) - 1);
    const int row = gray_rank(high);
    const int col = gray_rank(low);
    using Item = RelativePlacement::Item;
    placement.items.push_back(Item{Item::Kind::kCore, u, row, col, 0});
    placement.items.push_back(Item{Item::Kind::kSwitch, u, row, col, 1});
  }
  return placement;
}

}  // namespace sunmap::topo
