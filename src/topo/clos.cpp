#include "topo/clos.h"

#include <cmath>
#include <stdexcept>

namespace sunmap::topo {

Clos::Clos(int m, int n, int r)
    : Topology(TopologyKind::kClos,
               "clos" + std::to_string(m) + "." + std::to_string(n) + "." +
                   std::to_string(r),
               /*direct=*/false),
      m_(m),
      n_(n),
      r_(r) {
  if (m < 1 || n < 1 || r < 1) {
    throw std::invalid_argument("Clos: m, n, r must be positive");
  }
  graph_ = graph::DirectedGraph(r + m + r);
  for (int i = 0; i < r_; ++i) {
    for (int j = 0; j < m_; ++j) {
      graph_.add_edge(ingress_node(i), middle_node(j));
    }
  }
  for (int j = 0; j < m_; ++j) {
    for (int k = 0; k < r_; ++k) {
      graph_.add_edge(middle_node(j), egress_node(k));
    }
  }
  const int slots = n_ * r_;
  ingress_.resize(static_cast<std::size_t>(slots));
  egress_.resize(static_cast<std::size_t>(slots));
  for (SlotId s = 0; s < slots; ++s) {
    ingress_[static_cast<std::size_t>(s)] = ingress_node(s / n_);
    egress_[static_cast<std::size_t>(s)] = egress_node(s / n_);
  }
  finalize();
}

std::vector<NodeId> Clos::dimension_ordered_path(SlotId src,
                                                 SlotId dst) const {
  const int i = src / n_;
  const int k = dst / n_;
  const int j = (i + k) % m_;
  return {ingress_node(i), middle_node(j), egress_node(k)};
}

RelativePlacement Clos::relative_placement() const {
  // Cores flank the three switch stages; each side is wrapped into columns
  // of at most `rows` blocks so the chip stays roughly square.
  RelativePlacement placement;
  placement.mode = RelativePlacement::Mode::kColumns;
  const int slots = num_slots();
  const int left = (slots + 1) / 2;
  const int right = slots - left;
  const int rows = std::max(
      std::max(r_, m_),
      static_cast<int>(std::ceil(std::sqrt(static_cast<double>(slots) / 2.0))));
  const int left_cols = (left + rows - 1) / rows;
  const int right_cols = (right + rows - 1) / rows;

  using Item = RelativePlacement::Item;
  for (SlotId s = 0; s < left; ++s) {
    placement.items.push_back(
        Item{Item::Kind::kCore, s, s % rows, s / rows, 0});
  }
  for (int i = 0; i < r_; ++i) {
    placement.items.push_back(
        Item{Item::Kind::kSwitch, ingress_node(i), i, left_cols, 0});
  }
  for (int j = 0; j < m_; ++j) {
    placement.items.push_back(
        Item{Item::Kind::kSwitch, middle_node(j), j, left_cols + 1, 0});
  }
  for (int k = 0; k < r_; ++k) {
    placement.items.push_back(
        Item{Item::Kind::kSwitch, egress_node(k), k, left_cols + 2, 0});
  }
  for (SlotId s = left; s < slots; ++s) {
    const int i = s - left;
    placement.items.push_back(Item{Item::Kind::kCore, s, i % rows,
                                   left_cols + 3 + i / rows, 0});
  }
  placement.num_rows = rows;
  placement.num_cols = left_cols + 3 + right_cols;
  return placement;
}

}  // namespace sunmap::topo
