#include "topo/library.h"

#include <cmath>
#include <stdexcept>

namespace sunmap::topo {

namespace {

std::pair<int, int> grid_shape(int cores) {
  if (cores < 2) {
    throw std::invalid_argument("topology factory: need at least two cores");
  }
  int rows = static_cast<int>(std::floor(std::sqrt(cores)));
  rows = std::max(rows, 1);
  int cols = (cores + rows - 1) / rows;
  // A 1xN strip is a degenerate mesh; prefer at least two rows when possible.
  if (rows == 1 && cols > 2) {
    rows = 2;
    cols = (cores + 1) / 2;
  }
  return {rows, cols};
}

}  // namespace

std::unique_ptr<Topology> make_mesh_for(int cores) {
  const auto [rows, cols] = grid_shape(cores);
  return std::make_unique<Mesh>(rows, cols);
}

std::unique_ptr<Topology> make_torus_for(int cores) {
  const auto [rows, cols] = grid_shape(cores);
  return std::make_unique<Torus>(rows, cols);
}

std::unique_ptr<Topology> make_hypercube_for(int cores) {
  int dims = 1;
  while ((1 << dims) < cores) ++dims;
  return std::make_unique<Hypercube>(dims);
}

std::unique_ptr<Topology> make_clos_for(int cores) {
  const int n = static_cast<int>(std::ceil(std::sqrt(cores)));
  const int r = (cores + n - 1) / n;
  const int m = std::max(n, r);
  return std::make_unique<Clos>(m, n, r);
}

std::unique_ptr<Topology> make_butterfly_for(int cores, int max_radix) {
  if (max_radix < 2) {
    throw std::invalid_argument("make_butterfly_for: max_radix < 2");
  }
  for (int n = 2; n <= 16; ++n) {
    for (int k = 2; k <= max_radix; ++k) {
      double terminals = std::pow(k, n);
      if (terminals >= cores) return std::make_unique<Butterfly>(k, n);
    }
  }
  throw std::invalid_argument("make_butterfly_for: core count too large");
}

std::vector<std::unique_ptr<Topology>> standard_library(
    int cores, bool include_extensions) {
  std::vector<std::unique_ptr<Topology>> library;
  library.push_back(make_mesh_for(cores));
  library.push_back(make_torus_for(cores));
  library.push_back(make_hypercube_for(cores));
  library.push_back(make_clos_for(cores));
  library.push_back(make_butterfly_for(cores));
  if (include_extensions) {
    if (cores <= 8) library.push_back(std::make_unique<Octagon>());
    library.push_back(std::make_unique<Star>(cores));
  }
  return library;
}

}  // namespace sunmap::topo
