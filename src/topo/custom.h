#pragma once

#include <memory>

#include "topo/topology.h"

namespace sunmap::topo {

/// User-defined (heterogeneous) topology — the paper's stated future work:
/// "we plan to enhance the tool with automatic heterogeneous topology
/// modeling". A CustomTopology is built from an arbitrary switch graph and
/// arbitrary core attachment points through the Builder; quadrant graphs
/// fall back to the generic minimum-path closure, the deterministic route
/// is a lowest-cost shortest path, and the floorplan placement is a
/// near-square grid of switches with their attached cores.
class CustomTopology : public Topology {
 public:
  class Builder;

  [[nodiscard]] std::vector<NodeId> dimension_ordered_path(
      SlotId src, SlotId dst) const override;

  [[nodiscard]] RelativePlacement relative_placement() const override;

 private:
  friend class Builder;
  CustomTopology(std::string name, bool direct)
      : Topology(TopologyKind::kCustom, std::move(name), direct) {}
};

/// Incremental construction of a CustomTopology. Usage:
///
///   CustomTopology::Builder builder("ring4");
///   auto s0 = builder.add_switch();  ... add_switch() x3 ...
///   builder.add_bidirectional_link(s0, s1); ...
///   builder.attach_core(s0); ...  // one slot per call
///   auto topology = builder.build();
///
/// build() validates that every slot pair is routable and throws
/// std::logic_error otherwise.
class CustomTopology::Builder {
 public:
  explicit Builder(std::string name);

  /// Adds a switch; returns its NodeId.
  NodeId add_switch();

  /// Adds a directed channel between existing switches.
  Builder& add_link(NodeId from, NodeId to);

  /// Adds a channel pair in both directions.
  Builder& add_bidirectional_link(NodeId a, NodeId b);

  /// Attaches a core slot whose ingress and egress are the same switch
  /// (direct style). Returns the SlotId.
  SlotId attach_core(NodeId sw);

  /// Attaches a core slot with distinct ingress/egress switches (indirect
  /// style). Returns the SlotId.
  SlotId attach_core(NodeId ingress, NodeId egress);

  /// Finalises and validates the topology. The builder is left empty.
  std::unique_ptr<CustomTopology> build();

 private:
  std::string name_;
  graph::DirectedGraph graph_;
  std::vector<NodeId> ingress_;
  std::vector<NodeId> egress_;
  bool direct_ = true;
};

}  // namespace sunmap::topo
