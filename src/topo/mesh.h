#pragma once

#include "topo/topology.h"

namespace sunmap::topo {

/// 2-D mesh (Fig 1(a)): rows x cols switches, one core per switch,
/// bidirectional channels between grid neighbours. Slot / switch id of the
/// node at (row r, col c) is r * cols + c.
class Mesh : public Topology {
 public:
  Mesh(int rows, int cols);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int row_of(NodeId sw) const { return sw / cols_; }
  [[nodiscard]] int col_of(NodeId sw) const { return sw % cols_; }
  [[nodiscard]] NodeId at(int row, int col) const {
    return row * cols_ + col;
  }

  /// Structural quadrant graph (§4.3): the nodes within the bounding box
  /// formed by the row and column boundaries of source and destination.
  [[nodiscard]] std::vector<NodeId> quadrant_nodes(SlotId src,
                                                   SlotId dst) const override;

  /// XY dimension-ordered routing: route along the row (X/columns) first,
  /// then along the column (Y/rows).
  [[nodiscard]] std::vector<NodeId> dimension_ordered_path(
      SlotId src, SlotId dst) const override;

  [[nodiscard]] RelativePlacement relative_placement() const override;

 protected:
  /// Shared constructor for Torus, which adds wraparound channels.
  Mesh(TopologyKind kind, std::string name, int rows, int cols);

  int rows_;
  int cols_;
};

/// 2-D torus (Fig 1(b)): a mesh plus wraparound channels between opposite
/// edge nodes of every row and column (omitted for dimensions of size <= 2,
/// where the wrap would duplicate an existing channel).
class Torus : public Mesh {
 public:
  Torus(int rows, int cols);

  /// Structural quadrant graph: the smallest bounding box between source and
  /// destination considering the wraparound channels (§4.3).
  [[nodiscard]] std::vector<NodeId> quadrant_nodes(SlotId src,
                                                   SlotId dst) const override;

  /// XY dimension-ordered routing taking the shorter wrap direction in each
  /// dimension (positive direction on ties).
  [[nodiscard]] std::vector<NodeId> dimension_ordered_path(
      SlotId src, SlotId dst) const override;

 private:
  /// Signed step (+1/-1) and distance along one dimension of size `size`
  /// from `from` to `to`, taking the shorter way around.
  static std::pair<int, int> wrap_step(int from, int to, int size);
};

}  // namespace sunmap::topo
