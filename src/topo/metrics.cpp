#include "topo/metrics.h"

#include <algorithm>
#include <limits>

#include "graph/paths.h"

namespace sunmap::topo {

TopologyMetrics compute_metrics(const Topology& topology) {
  TopologyMetrics metrics;
  metrics.num_switches = topology.num_switches();
  metrics.num_slots = topology.num_slots();
  metrics.num_network_links = topology.num_network_links();
  metrics.num_core_links = topology.num_core_links();

  const auto& g = topology.switch_graph();
  double hop_sum = 0.0;
  double link_hop_sum = 0.0;
  double diversity_sum = 0.0;
  std::int64_t pairs = 0;
  metrics.min_path_diversity = std::numeric_limits<std::int64_t>::max();
  for (SlotId a = 0; a < topology.num_slots(); ++a) {
    for (SlotId b = 0; b < topology.num_slots(); ++b) {
      if (a == b) continue;
      const int hops = topology.min_switch_hops(a, b);
      metrics.diameter_switch_hops =
          std::max(metrics.diameter_switch_hops, hops);
      hop_sum += hops;
      link_hop_sum += hops - 1;
      const auto diversity = graph::count_min_paths(
          g, topology.ingress_switch(a), topology.egress_switch(b));
      metrics.min_path_diversity =
          std::min(metrics.min_path_diversity, diversity);
      metrics.max_path_diversity =
          std::max(metrics.max_path_diversity, diversity);
      diversity_sum += static_cast<double>(diversity);
      ++pairs;
    }
  }
  if (pairs > 0) {
    metrics.avg_switch_hops = hop_sum / static_cast<double>(pairs);
    metrics.avg_path_diversity = diversity_sum / static_cast<double>(pairs);
    const double avg_link_hops = link_hop_sum / static_cast<double>(pairs);
    if (avg_link_hops > 0.0) {
      metrics.uniform_capacity_flits_per_slot =
          static_cast<double>(g.num_edges()) /
          (avg_link_hops * static_cast<double>(topology.num_slots()));
    }
  } else {
    metrics.min_path_diversity = 0;
  }

  for (graph::NodeId sw = 0; sw < topology.num_switches(); ++sw) {
    const int radix = topology.switch_radix(sw);
    metrics.total_switch_radix += radix;
    metrics.max_switch_radix = std::max(metrics.max_switch_radix, radix);
  }
  return metrics;
}

}  // namespace sunmap::topo
