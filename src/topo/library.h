#pragma once

#include <memory>
#include <vector>

#include "topo/butterfly.h"
#include "topo/clos.h"
#include "topo/hypercube.h"
#include "topo/mesh.h"
#include "topo/octagon.h"
#include "topo/topology.h"

namespace sunmap::topo {

/// Factory helpers that size each standard topology for a given core count
/// (|V| <= |U| per the mapping definition) plus the library container SUNMAP
/// iterates over in phase 1.

/// Near-square mesh with rows*cols >= cores (12 cores -> 3x4, 16 -> 4x4).
std::unique_ptr<Topology> make_mesh_for(int cores);

/// Near-square torus with rows*cols >= cores.
std::unique_ptr<Topology> make_torus_for(int cores);

/// Smallest hypercube with 2^n >= cores.
std::unique_ptr<Topology> make_hypercube_for(int cores);

/// Balanced 3-stage Clos: n = ceil(sqrt(cores)) cores per edge switch,
/// r = ceil(cores/n) edge switches, m = max(n, r) middle switches (m >= n
/// keeps the network rearrangeably non-blocking).
std::unique_ptr<Topology> make_clos_for(int cores);

/// k-ary n-fly with k^n >= cores: smallest stage count n >= 2 reachable with
/// radix <= max_radix, then the smallest such radix (12 cores -> the paper's
/// 4-ary 2-fly).
std::unique_ptr<Topology> make_butterfly_for(int cores, int max_radix = 8);

/// The standard SUNMAP library (mesh, torus, hypercube, clos, butterfly),
/// each sized for `cores`. When `include_extensions` is set and the octagon/
/// star fit the core count they are appended, mirroring the paper's remark
/// that further topologies are easily added.
std::vector<std::unique_ptr<Topology>> standard_library(
    int cores, bool include_extensions = false);

}  // namespace sunmap::topo
