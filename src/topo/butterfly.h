#pragma once

#include "topo/topology.h"

namespace sunmap::topo {

/// Butterfly / k-ary n-fly network (Fig 2(b)): k^n terminals served by n
/// stages of k^(n-1) switches with radix k. Switch (s, j) at stage s
/// connects to the k switches of stage s+1 whose index agrees with j in
/// every k-ary digit except position n-2-s (so stage 1 spans the largest
/// index distance and each later stage halves it, as in the paper's
/// description of the 2-ary 3-fly). There is exactly one path between any
/// source and destination terminal — the butterfly trades path diversity for
/// switch count and hop delay (§6.1).
class Butterfly : public Topology {
 public:
  /// radix k >= 2, stages n >= 1.
  Butterfly(int k, int n);

  [[nodiscard]] int radix() const { return k_; }
  [[nodiscard]] int stages() const { return n_; }
  [[nodiscard]] int switches_per_stage() const { return per_stage_; }

  [[nodiscard]] NodeId switch_at(int stage, int index) const {
    return stage * per_stage_ + index;
  }
  [[nodiscard]] int stage_of(NodeId sw) const { return sw / per_stage_; }
  [[nodiscard]] int index_of(NodeId sw) const { return sw % per_stage_; }

  /// The unique destination-tag route (also the dimension-ordered route).
  [[nodiscard]] std::vector<NodeId> dimension_ordered_path(
      SlotId src, SlotId dst) const override;

  [[nodiscard]] RelativePlacement relative_placement() const override;

 private:
  /// Replaces the k-ary digit of `index` at `pos` with `value`.
  [[nodiscard]] int with_digit(int index, int pos, int value) const;
  /// Extracts the k-ary digit of `index` at `pos`.
  [[nodiscard]] int digit(int index, int pos) const;

  int k_;
  int n_;
  int per_stage_;  // k^(n-1)
  std::vector<int> pow_;
};

}  // namespace sunmap::topo
