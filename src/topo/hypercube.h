#pragma once

#include "topo/topology.h"

namespace sunmap::topo {

/// Hypercube / 2-ary n-cube (Fig 1(c)): 2^n switches, one core each; node i
/// is identified with the n-tuple of its binary digits and is adjacent to
/// every node whose tuple is Hamming distance 1 away.
class Hypercube : public Topology {
 public:
  explicit Hypercube(int dimensions);

  [[nodiscard]] int dimensions() const { return dims_; }

  /// Structural quadrant graph (§4.3): all nodes whose tuple matches source
  /// and destination in every dimension where those two agree (the subcube
  /// spanned by the differing dimensions).
  [[nodiscard]] std::vector<NodeId> quadrant_nodes(SlotId src,
                                                   SlotId dst) const override;

  /// E-cube dimension-ordered routing: correct differing bits from least to
  /// most significant dimension.
  [[nodiscard]] std::vector<NodeId> dimension_ordered_path(
      SlotId src, SlotId dst) const override;

  /// Grid embedding via Gray-code ordering of the row/column halves of the
  /// address bits, which keeps most hypercube neighbours physically adjacent.
  [[nodiscard]] RelativePlacement relative_placement() const override;

 private:
  int dims_;
};

}  // namespace sunmap::topo
