#include "topo/mesh.h"

#include <stdexcept>

namespace sunmap::topo {

Mesh::Mesh(int rows, int cols)
    : Mesh(TopologyKind::kMesh,
           "mesh" + std::to_string(rows) + "x" + std::to_string(cols), rows,
           cols) {
  finalize();
}

Mesh::Mesh(TopologyKind kind, std::string name, int rows, int cols)
    : Topology(kind, std::move(name), /*direct=*/true),
      rows_(rows),
      cols_(cols) {
  if (rows < 1 || cols < 1 || rows * cols < 2) {
    throw std::invalid_argument("Mesh: need at least two nodes");
  }
  graph_ = graph::DirectedGraph(rows * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const NodeId u = at(r, c);
      if (c + 1 < cols) {
        graph_.add_edge(u, at(r, c + 1));
        graph_.add_edge(at(r, c + 1), u);
      }
      if (r + 1 < rows) {
        graph_.add_edge(u, at(r + 1, c));
        graph_.add_edge(at(r + 1, c), u);
      }
    }
  }
  ingress_.resize(static_cast<std::size_t>(rows * cols));
  egress_.resize(static_cast<std::size_t>(rows * cols));
  for (NodeId u = 0; u < rows * cols; ++u) {
    ingress_[static_cast<std::size_t>(u)] = u;
    egress_[static_cast<std::size_t>(u)] = u;
  }
}

std::vector<NodeId> Mesh::quadrant_nodes(SlotId src, SlotId dst) const {
  const NodeId s = ingress_switch(src);
  const NodeId t = egress_switch(dst);
  const int r0 = std::min(row_of(s), row_of(t));
  const int r1 = std::max(row_of(s), row_of(t));
  const int c0 = std::min(col_of(s), col_of(t));
  const int c1 = std::max(col_of(s), col_of(t));
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>((r1 - r0 + 1) * (c1 - c0 + 1)));
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) nodes.push_back(at(r, c));
  }
  return nodes;
}

std::vector<NodeId> Mesh::dimension_ordered_path(SlotId src,
                                                 SlotId dst) const {
  NodeId cur = ingress_switch(src);
  const NodeId to = egress_switch(dst);
  std::vector<NodeId> path{cur};
  while (col_of(cur) != col_of(to)) {
    cur = at(row_of(cur), col_of(cur) + (col_of(to) > col_of(cur) ? 1 : -1));
    path.push_back(cur);
  }
  while (row_of(cur) != row_of(to)) {
    cur = at(row_of(cur) + (row_of(to) > row_of(cur) ? 1 : -1), col_of(cur));
    path.push_back(cur);
  }
  return path;
}

RelativePlacement Mesh::relative_placement() const {
  RelativePlacement placement;
  placement.mode = RelativePlacement::Mode::kGrid;
  placement.num_rows = rows_;
  placement.num_cols = cols_;
  for (NodeId u = 0; u < rows_ * cols_; ++u) {
    using Item = RelativePlacement::Item;
    placement.items.push_back(
        Item{Item::Kind::kCore, u, row_of(u), col_of(u), 0});
    placement.items.push_back(
        Item{Item::Kind::kSwitch, u, row_of(u), col_of(u), 1});
  }
  return placement;
}

Torus::Torus(int rows, int cols)
    : Mesh(TopologyKind::kTorus,
           "torus" + std::to_string(rows) + "x" + std::to_string(cols), rows,
           cols) {
  // Wraparound channels (only meaningful for dimension size > 2).
  if (cols > 2) {
    for (int r = 0; r < rows; ++r) {
      graph_.add_edge(at(r, cols - 1), at(r, 0));
      graph_.add_edge(at(r, 0), at(r, cols - 1));
    }
  }
  if (rows > 2) {
    for (int c = 0; c < cols; ++c) {
      graph_.add_edge(at(rows - 1, c), at(0, c));
      graph_.add_edge(at(0, c), at(rows - 1, c));
    }
  }
  finalize();
}

std::pair<int, int> Torus::wrap_step(int from, int to, int size) {
  if (from == to) return {0, 0};
  const int fwd = ((to - from) % size + size) % size;
  const int bwd = size - fwd;
  if (fwd <= bwd) return {+1, fwd};
  return {-1, bwd};
}

std::vector<NodeId> Torus::quadrant_nodes(SlotId src, SlotId dst) const {
  const NodeId s = ingress_switch(src);
  const NodeId t = egress_switch(dst);

  // Walk each dimension in its shorter wrap direction and collect the
  // coordinates passed through: the smallest bounding box between source and
  // destination considering wraparound channels. On ties both directions are
  // equally short; include both so the quadrant keeps every minimum path.
  auto axis_coords = [](int from, int to, int size, bool wrap_allowed) {
    std::vector<int> coords;
    if (from == to) {
      coords.push_back(from);
      return coords;
    }
    if (!wrap_allowed) {
      const int lo = std::min(from, to);
      const int hi = std::max(from, to);
      for (int x = lo; x <= hi; ++x) coords.push_back(x);
      return coords;
    }
    const auto [step, dist] = wrap_step(from, to, size);
    const int other = size - dist;
    for (int i = 0, x = from; i <= dist; ++i, x = (x + step + size) % size) {
      coords.push_back(x);
    }
    if (dist == other) {  // tie: both directions are minimal
      for (int i = 1, x = from; i < other; ++i) {
        x = (x - step + size) % size;
        coords.push_back(x);
      }
    }
    return coords;
  };

  const auto rows = axis_coords(row_of(s), row_of(t), rows_, rows_ > 2);
  const auto cols = axis_coords(col_of(s), col_of(t), cols_, cols_ > 2);
  std::vector<NodeId> nodes;
  nodes.reserve(rows.size() * cols.size());
  for (int r : rows) {
    for (int c : cols) nodes.push_back(at(r, c));
  }
  return nodes;
}

std::vector<NodeId> Torus::dimension_ordered_path(SlotId src,
                                                  SlotId dst) const {
  NodeId cur = ingress_switch(src);
  const NodeId to = egress_switch(dst);
  std::vector<NodeId> path{cur};

  auto advance = [&](bool along_cols) {
    const int size = along_cols ? cols_ : rows_;
    const int from = along_cols ? col_of(cur) : row_of(cur);
    const int target = along_cols ? col_of(to) : row_of(to);
    const bool wrap = size > 2;
    int step;
    int dist;
    if (wrap) {
      std::tie(step, dist) = wrap_step(from, target, size);
    } else {
      step = target > from ? 1 : -1;
      dist = std::abs(target - from);
    }
    for (int i = 0, x = from; i < dist; ++i) {
      x = wrap ? (x + step + size) % size : x + step;
      cur = along_cols ? at(row_of(cur), x) : at(x, col_of(cur));
      path.push_back(cur);
    }
  };

  advance(/*along_cols=*/true);
  advance(/*along_cols=*/false);
  return path;
}

}  // namespace sunmap::topo
