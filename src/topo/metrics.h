#pragma once

#include "topo/topology.h"

namespace sunmap::topo {

/// Graph-theoretic characterisation of a topology, independent of any
/// application. These are the structural quantities behind the paper's
/// arguments: hop counts (Fig 6(a)), switch/link resources (Fig 6(b)),
/// path diversity ("butterfly network trades-off path diversity for network
/// switches", "clos networks have maximum path diversity").
struct TopologyMetrics {
  int num_switches = 0;
  int num_slots = 0;
  int num_network_links = 0;
  int num_core_links = 0;

  /// Maximum over slot pairs of the minimum switch-hop count.
  int diameter_switch_hops = 0;
  /// Average over ordered slot pairs of the minimum switch-hop count.
  double avg_switch_hops = 0.0;

  /// Minimum/average/maximum number of distinct minimum paths over ordered
  /// slot pairs (butterfly: all 1; Clos(m,n,r): all m).
  std::int64_t min_path_diversity = 0;
  double avg_path_diversity = 0.0;
  std::int64_t max_path_diversity = 0;

  /// Total switch radix (sum of max(in, out) ports) — a proxy for network
  /// silicon cost before the area library is applied.
  int total_switch_radix = 0;
  int max_switch_radix = 0;

  /// Channel-count lower bound on uniform-traffic capacity: directed
  /// switch-to-switch channels divided by (slots x average link hops).
  /// An ideal-routing estimate; the simulator measures the real thing.
  double uniform_capacity_flits_per_slot = 0.0;
};

/// Computes the metrics (exhaustive over slot pairs; fine for library-sized
/// networks).
TopologyMetrics compute_metrics(const Topology& topology);

}  // namespace sunmap::topo
