#include "topo/custom.h"

#include <cmath>
#include <stdexcept>

#include "graph/paths.h"

namespace sunmap::topo {

std::vector<NodeId> CustomTopology::dimension_ordered_path(
    SlotId src, SlotId dst) const {
  // Deterministic oblivious route: unit-cost Dijkstra (stable given the
  // construction order of the graph).
  const auto path = graph::shortest_path(
      switch_graph(), ingress_switch(src), egress_switch(dst),
      [](graph::EdgeId) { return 1.0; });
  if (!path) {
    throw std::logic_error("CustomTopology: unroutable pair");
  }
  return path->nodes;
}

RelativePlacement CustomTopology::relative_placement() const {
  // Near-square grid of switches in id order; each slot's core block is
  // stacked in its ingress switch's cell.
  const int switches = num_switches();
  const int cols = static_cast<int>(std::ceil(std::sqrt(switches)));
  const int rows = (switches + cols - 1) / cols;

  RelativePlacement placement;
  placement.mode = RelativePlacement::Mode::kGrid;
  placement.num_rows = rows;
  placement.num_cols = cols;
  using Item = RelativePlacement::Item;
  std::vector<int> stack_depth(static_cast<std::size_t>(switches), 0);
  for (NodeId sw = 0; sw < switches; ++sw) {
    placement.items.push_back(
        Item{Item::Kind::kSwitch, sw, sw / cols, sw % cols, 0});
  }
  for (SlotId s = 0; s < num_slots(); ++s) {
    const NodeId sw = ingress_switch(s);
    const int sub = ++stack_depth[static_cast<std::size_t>(sw)];
    placement.items.push_back(
        Item{Item::Kind::kCore, s, sw / cols, sw % cols, sub});
  }
  return placement;
}

CustomTopology::Builder::Builder(std::string name) : name_(std::move(name)) {}

NodeId CustomTopology::Builder::add_switch() { return graph_.add_node(); }

CustomTopology::Builder& CustomTopology::Builder::add_link(NodeId from,
                                                           NodeId to) {
  graph_.add_edge(from, to);
  return *this;
}

CustomTopology::Builder& CustomTopology::Builder::add_bidirectional_link(
    NodeId a, NodeId b) {
  graph_.add_edge(a, b);
  graph_.add_edge(b, a);
  return *this;
}

SlotId CustomTopology::Builder::attach_core(NodeId sw) {
  return attach_core(sw, sw);
}

SlotId CustomTopology::Builder::attach_core(NodeId ingress, NodeId egress) {
  if (ingress < 0 || ingress >= graph_.num_nodes() || egress < 0 ||
      egress >= graph_.num_nodes()) {
    throw std::out_of_range("CustomTopology: attach to unknown switch");
  }
  if (ingress != egress) direct_ = false;
  ingress_.push_back(ingress);
  egress_.push_back(egress);
  return static_cast<SlotId>(ingress_.size() - 1);
}

std::unique_ptr<CustomTopology> CustomTopology::Builder::build() {
  auto topology = std::unique_ptr<CustomTopology>(
      new CustomTopology(std::move(name_), direct_));
  topology->graph_ = std::move(graph_);
  topology->ingress_ = std::move(ingress_);
  topology->egress_ = std::move(egress_);
  topology->finalize();  // validates routability
  graph_ = graph::DirectedGraph();
  ingress_.clear();
  egress_.clear();
  return topology;
}

}  // namespace sunmap::topo
