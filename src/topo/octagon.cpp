#include "topo/octagon.h"

#include <cmath>
#include <stdexcept>

namespace sunmap::topo {

Octagon::Octagon()
    : Topology(TopologyKind::kOctagon, "octagon", /*direct=*/true) {
  graph_ = graph::DirectedGraph(8);
  for (NodeId u = 0; u < 8; ++u) {
    const NodeId next = (u + 1) % 8;
    graph_.add_edge(u, next);
    graph_.add_edge(next, u);
  }
  for (NodeId u = 0; u < 4; ++u) {
    graph_.add_edge(u, u + 4);
    graph_.add_edge(u + 4, u);
  }
  ingress_.resize(8);
  egress_.resize(8);
  for (NodeId u = 0; u < 8; ++u) {
    ingress_[static_cast<std::size_t>(u)] = u;
    egress_[static_cast<std::size_t>(u)] = u;
  }
  finalize();
}

std::vector<NodeId> Octagon::dimension_ordered_path(SlotId src,
                                                    SlotId dst) const {
  NodeId cur = ingress_switch(src);
  const NodeId to = egress_switch(dst);
  std::vector<NodeId> path{cur};
  while (cur != to) {
    const int rel = ((to - cur) % 8 + 8) % 8;
    if (rel == 1 || rel == 2) {
      cur = (cur + 1) % 8;
    } else if (rel == 6 || rel == 7) {
      cur = (cur + 7) % 8;
    } else {
      cur = (cur + 4) % 8;
    }
    path.push_back(cur);
  }
  return path;
}

RelativePlacement Octagon::relative_placement() const {
  // Ring laid out on the perimeter of a 3x3 grid.
  static constexpr int kRow[8] = {0, 0, 0, 1, 2, 2, 2, 1};
  static constexpr int kCol[8] = {0, 1, 2, 2, 2, 1, 0, 0};
  RelativePlacement placement;
  placement.mode = RelativePlacement::Mode::kGrid;
  placement.num_rows = 3;
  placement.num_cols = 3;
  using Item = RelativePlacement::Item;
  for (NodeId u = 0; u < 8; ++u) {
    placement.items.push_back(Item{Item::Kind::kCore, u, kRow[u], kCol[u], 0});
    placement.items.push_back(
        Item{Item::Kind::kSwitch, u, kRow[u], kCol[u], 1});
  }
  return placement;
}

Star::Star(int leaves)
    : Topology(TopologyKind::kStar, "star" + std::to_string(leaves),
               /*direct=*/true),
      leaves_(leaves) {
  if (leaves < 2) {
    throw std::invalid_argument("Star: need at least two leaves");
  }
  graph_ = graph::DirectedGraph(leaves + 1);
  for (int i = 0; i < leaves; ++i) {
    graph_.add_edge(hub(), leaf_node(i));
    graph_.add_edge(leaf_node(i), hub());
  }
  ingress_.resize(static_cast<std::size_t>(leaves));
  egress_.resize(static_cast<std::size_t>(leaves));
  for (int i = 0; i < leaves; ++i) {
    ingress_[static_cast<std::size_t>(i)] = leaf_node(i);
    egress_[static_cast<std::size_t>(i)] = leaf_node(i);
  }
  finalize();
}

std::vector<NodeId> Star::dimension_ordered_path(SlotId src,
                                                 SlotId dst) const {
  return {leaf_node(src), hub(), leaf_node(dst)};
}

RelativePlacement Star::relative_placement() const {
  const int total = leaves_ + 1;
  const int cols = static_cast<int>(std::ceil(std::sqrt(total)));
  const int rows = (total + cols - 1) / cols;
  const int hub_cell = (rows / 2) * cols + cols / 2;

  RelativePlacement placement;
  placement.mode = RelativePlacement::Mode::kGrid;
  placement.num_rows = rows;
  placement.num_cols = cols;
  using Item = RelativePlacement::Item;
  placement.items.push_back(Item{Item::Kind::kSwitch, hub(),
                                 hub_cell / cols, hub_cell % cols, 0});
  int cell = 0;
  for (int i = 0; i < leaves_; ++i, ++cell) {
    if (cell == hub_cell) ++cell;
    placement.items.push_back(
        Item{Item::Kind::kCore, i, cell / cols, cell % cols, 0});
    placement.items.push_back(
        Item{Item::Kind::kSwitch, leaf_node(i), cell / cols, cell % cols, 1});
  }
  return placement;
}

}  // namespace sunmap::topo
