#pragma once

#include "topo/topology.h"

namespace sunmap::topo {

/// 3-stage Clos network (Fig 2(a)): r ingress switches of n x m, m middle
/// switches of r x r, r egress switches of m x n, with a full interconnection
/// pattern between adjacent stages. Each of the n*r slots attaches its core
/// to ingress switch slot/n and egress switch slot/n; every route traverses
/// exactly three switches, and the m middle switches provide the maximum
/// path diversity the paper exploits for network-processing traffic (§6.2).
class Clos : public Topology {
 public:
  /// m = number of middle switches, n = cores per ingress/egress switch,
  /// r = number of ingress (and egress) switches.
  Clos(int m, int n, int r);

  [[nodiscard]] int middle_switches() const { return m_; }
  [[nodiscard]] int cores_per_edge_switch() const { return n_; }
  [[nodiscard]] int edge_switches() const { return r_; }

  [[nodiscard]] NodeId ingress_node(int i) const { return i; }
  [[nodiscard]] NodeId middle_node(int j) const { return r_ + j; }
  [[nodiscard]] NodeId egress_node(int k) const { return r_ + m_ + k; }

  /// Deterministic single-path route through middle switch
  /// (ingress_index + egress_index) mod m — the "dimension-ordered"
  /// equivalent for a Clos.
  [[nodiscard]] std::vector<NodeId> dimension_ordered_path(
      SlotId src, SlotId dst) const override;

  [[nodiscard]] RelativePlacement relative_placement() const override;

 private:
  int m_;
  int n_;
  int r_;
};

}  // namespace sunmap::topo
