#include "fplan/floorplan.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sunmap::fplan {

BlockShape BlockShape::soft_block(double area_mm2) {
  BlockShape shape;
  shape.area_mm2 = area_mm2;
  shape.soft = true;
  return shape;
}

BlockShape BlockShape::hard_block(double width_mm, double height_mm) {
  BlockShape shape;
  shape.area_mm2 = width_mm * height_mm;
  shape.soft = false;
  shape.width_mm = width_mm;
  shape.height_mm = height_mm;
  return shape;
}

Floorplan::Floorplan(std::vector<PlacedBlock> blocks, double width_mm,
                     double height_mm)
    : blocks_(std::move(blocks)), width_(width_mm), height_(height_mm) {}

double Floorplan::aspect() const {
  if (width_ <= 0.0 || height_ <= 0.0) return 1.0;
  return std::max(width_ / height_, height_ / width_);
}

std::optional<PlacedBlock> Floorplan::find(PlacedBlock::Kind kind,
                                           int index) const {
  for (const auto& b : blocks_) {
    if (b.kind == kind && b.index == index) return b;
  }
  return std::nullopt;
}

double Floorplan::center_distance_mm(PlacedBlock::Kind kind_a, int index_a,
                                     PlacedBlock::Kind kind_b,
                                     int index_b) const {
  const auto a = find(kind_a, index_a);
  const auto b = find(kind_b, index_b);
  if (!a || !b) {
    throw std::out_of_range("Floorplan: item not placed");
  }
  return std::abs(a->cx() - b->cx()) + std::abs(a->cy() - b->cy());
}

bool Floorplan::overlap_free(double tolerance) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks_.size(); ++j) {
      const auto& a = blocks_[i];
      const auto& b = blocks_[j];
      const bool x_sep =
          a.x + a.w <= b.x + tolerance || b.x + b.w <= a.x + tolerance;
      const bool y_sep =
          a.y + a.h <= b.y + tolerance || b.y + b.h <= a.y + tolerance;
      if (!x_sep && !y_sep) return false;
    }
  }
  return true;
}

bool Floorplan::within_bounds(double tolerance) const {
  for (const auto& b : blocks_) {
    if (b.x < -tolerance || b.y < -tolerance ||
        b.x + b.w > width_ + tolerance || b.y + b.h > height_ + tolerance) {
      return false;
    }
  }
  return true;
}

}  // namespace sunmap::fplan
