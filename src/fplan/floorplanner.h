#pragma once

#include <optional>
#include <vector>

#include "fplan/floorplan.h"
#include "topo/topology.h"

namespace sunmap::fplan {

/// LP-based floorplanner of §5: given the relative block positions implied
/// by a topology and a mapping, it finds exact positions and sizes. The
/// general floorplanning problem's first step (finding relative positions)
/// is already solved — "for a particular mapping ... the relative positions
/// of the cores and switches are known" — so only the second step remains.
///
/// The solve is staged — item resolution, soft-block sizing, column/row
/// constraint-graph build, longest-path (or simplex) solve — and the stages
/// live in fplan::FloorplanSession (session.h), which keeps them alive
/// across a *sequence* of related solves and accepts shape deltas.
/// Floorplanner::place is the stateless one-shot entry point: it runs a
/// fresh session once, so its results are bit-identical to any session
/// reaching the same shape assignment through updates.
///
/// Two exact-position engines are provided:
///  * kLongestPath — column/row constraint-graph longest path; optimal for
///    the separable relative-position structure and fast enough to run on
///    every candidate mapping inside the pairwise-swap loop.
///  * kSimplexLp — the literal LP formulation (minimise W + H subject to
///    ordering and boundary constraints over non-negative positions),
///    solved with the from-scratch two-phase simplex in lp.h. Produces the
///    same chip dimensions as kLongestPath (asserted by tests); used for
///    final floorplans to mirror the paper's method.
///
/// Soft blocks are sized by discrete aspect-ratio coordinate descent before
/// positions are computed.
class Floorplanner {
 public:
  enum class Engine { kLongestPath, kSimplexLp };

  struct Options {
    Engine engine = Engine::kLongestPath;
    /// Coordinate-descent passes over all soft blocks.
    int sizing_passes = 2;
    /// Candidate aspect ratios (w/h) tried for each soft block, clipped to
    /// the block's own [min_aspect, max_aspect] range.
    std::vector<double> aspect_candidates = {1.0 / 3.0, 0.5,  2.0 / 3.0, 1.0,
                                             1.5,       2.0,  3.0};
    /// Clearance inserted between neighbouring blocks (routing channels).
    double spacing_mm = 0.1;

    /// Memberwise equality — what EvalContext::rebind uses to decide
    /// whether the floorplan cache survives a config change, so it cannot
    /// drift from the fields.
    bool operator==(const Options&) const = default;
  };

  Floorplanner();
  explicit Floorplanner(Options options);

  /// Floorplans one mapped design.
  ///
  /// `core_shapes` is indexed by SlotId; a nullopt entry means the slot is
  /// unused (no core mapped there) and contributes no block. `switch_shapes`
  /// is indexed by switch NodeId and must cover every switch in the
  /// placement.
  [[nodiscard]] Floorplan place(
      const topo::RelativePlacement& placement,
      const std::vector<std::optional<BlockShape>>& core_shapes,
      const std::vector<BlockShape>& switch_shapes) const;

  [[nodiscard]] const Options& options() const { return options_; }

  /// A block with its relative grid coordinates and resolved dimensions —
  /// the unit the session's stages exchange.
  struct Item {
    PlacedBlock::Kind kind;
    int index;
    int row, col, sub;
    const BlockShape* shape;
    double w, h;  // resolved dimensions
  };

 private:
  Options options_;
};

/// Short stable engine names ("lp" for the longest-path band engine,
/// "simplex" for the literal simplex LP), shared by the CLI flags and the
/// exploration-report columns.
const char* to_string(Floorplanner::Engine engine);

}  // namespace sunmap::fplan
