#pragma once

#include <optional>
#include <vector>

namespace sunmap::fplan {

/// Physical shape of a block to place. Hard blocks (fixed silicon, e.g.
/// memories) have fixed width x height; soft blocks have a fixed area but a
/// flexible aspect ratio within [min_aspect, max_aspect] (aspect = w/h),
/// matching §5's "blocks that have flexible sizes".
struct BlockShape {
  double area_mm2 = 1.0;
  bool soft = true;
  double min_aspect = 1.0 / 3.0;
  double max_aspect = 3.0;
  /// For hard blocks: fixed dimensions (width * height should equal area).
  double width_mm = 0.0;
  double height_mm = 0.0;

  /// A soft block with the given area and default aspect flexibility.
  static BlockShape soft_block(double area_mm2);
  /// A hard block with fixed dimensions.
  static BlockShape hard_block(double width_mm, double height_mm);

  /// Memberwise equality — what the evaluation engine's shape-class grouping
  /// and cache invalidation compare, so it cannot drift from the fields.
  bool operator==(const BlockShape&) const = default;
};

/// A placed rectangle. (x, y) is the lower-left corner.
struct PlacedBlock {
  enum class Kind { kCore, kSwitch };
  Kind kind = Kind::kSwitch;
  int index = 0;  ///< SlotId for cores, switch NodeId for switches.
  double x = 0.0;
  double y = 0.0;
  double w = 0.0;
  double h = 0.0;

  [[nodiscard]] double cx() const { return x + w / 2.0; }
  [[nodiscard]] double cy() const { return y + h / 2.0; }
};

/// The result of floorplanning one mapping: exact block positions and the
/// chip bounding box. Link lengths for the power model are Manhattan
/// distances between block centres.
class Floorplan {
 public:
  Floorplan() = default;
  Floorplan(std::vector<PlacedBlock> blocks, double width_mm,
            double height_mm);

  [[nodiscard]] const std::vector<PlacedBlock>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] double width_mm() const { return width_; }
  [[nodiscard]] double height_mm() const { return height_; }
  /// Chip (bounding-box) area — the paper's "design area".
  [[nodiscard]] double area_mm2() const { return width_ * height_; }
  /// Aspect ratio >= 1 (max of W/H and H/W).
  [[nodiscard]] double aspect() const;

  /// Placed block for the given item, if it exists in this floorplan.
  [[nodiscard]] std::optional<PlacedBlock> find(PlacedBlock::Kind kind,
                                                int index) const;

  /// Manhattan distance between the centres of two placed items; throws
  /// std::out_of_range if either is missing.
  [[nodiscard]] double center_distance_mm(PlacedBlock::Kind kind_a,
                                          int index_a,
                                          PlacedBlock::Kind kind_b,
                                          int index_b) const;

  /// True if no two blocks overlap (beyond `tolerance`).
  [[nodiscard]] bool overlap_free(double tolerance = 1e-9) const;
  /// True if every block lies inside the chip bounding box.
  [[nodiscard]] bool within_bounds(double tolerance = 1e-9) const;

 private:
  std::vector<PlacedBlock> blocks_;
  double width_ = 0.0;
  double height_ = 0.0;
};

}  // namespace sunmap::fplan
