#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fplan/floorplan.h"
#include "fplan/floorplanner.h"
#include "topo/topology.h"

namespace sunmap::fplan {

/// One slot's shape change for FloorplanSession::update_shapes: the core
/// shape now occupying the slot, or nullopt to empty it. Switch shapes are
/// placement-invariant and fixed at session construction.
struct SlotShapeUpdate {
  int slot = 0;
  std::optional<BlockShape> shape;
};

/// Session-based incremental floorplanner: the stateful counterpart of
/// Floorplanner::place for callers that solve a *sequence* of closely
/// related shape assignments (the mapping search's pairwise-swap loop, the
/// explorer's per-topology sweeps).
///
/// The one-shot place() pays, on every call, for (1) resolving placement
/// items against the shape tables, (2) building the column/row constraint
/// graphs — per-column member lists, per-cell stacks sorted by stacking
/// order, per-row cell lists — and (3) a soft-block sizing descent whose
/// every candidate trial re-derives the chip extents from scratch. A
/// session splits those stages apart and keeps (1) and (2) alive across
/// solves:
///
///  * update_shapes() applies a delta (a pairwise swap touches <= 2 slots):
///    only the touched items are re-resolved and only their columns, cells,
///    and rows have their longest-path aggregates re-derived; everything
///    downstream of a dirty column/row (the chip-extent prefix sums) is
///    re-run at the next solve. When the dirty set covers most of the
///    design the patching is abandoned and the next solve re-derives every
///    aggregate (the full-solve fallback).
///  * solve() runs the sizing descent over the persistent structure; each
///    candidate trial re-solves only the candidate's own column/row
///    constraint chains (a max per column, a stack sum per cell) plus the
///    downstream extent sums, instead of rebuilding the whole layout.
///  * push_shapes()/pop_shapes()/commit_shapes() are the speculative
///    (transactional) form of update_shapes(): a push journals what it
///    displaces, a pop restores it in O(frame) — the protocol
///    mapping::DeltaTxn drives so annealing accept/reject pairs solve
///    incrementally in both directions.
///
/// Incremental solves are bit-identical to from-scratch ones: every
/// aggregate a delta dirties is recomputed with the same loop, in the same
/// order, as the full derivation, and max/assignment carry no accumulated
/// state — so Floorplanner::place (itself a one-shot session) and a session
/// driven through any update history agree on every block position, chip
/// dimension, and area to the last bit (asserted by the randomized
/// swap-sequence property tests and by bench_floorplan --json).
///
/// Sessions are single-threaded; concurrent searches give each worker its
/// own (mapping::EvalScratch owns one per thread).
class FloorplanSession {
 public:
  using Options = Floorplanner::Options;

  /// Captures the placement structure and the initial shape assignment.
  /// `core_shapes` is indexed by SlotId (nullopt = empty slot) and
  /// `switch_shapes` by switch NodeId, exactly as Floorplanner::place takes
  /// them; the shapes are resolved into the session's own items and the
  /// placement is copied, so neither argument needs to outlive the call.
  FloorplanSession(Options options, const topo::RelativePlacement& placement,
                   const std::vector<std::optional<BlockShape>>& core_shapes,
                   const std::vector<BlockShape>& switch_shapes);

  /// Applies a shape delta. Updates whose shape equals the slot's current
  /// one are no-ops; updates for slots the placement does not position are
  /// ignored (place() never sees their shapes either). Must not be called
  /// while speculative frames are open (throws std::logic_error) — an
  /// untracked mutation would make pop_shapes() restore the wrong base.
  void update_shapes(const SlotShapeUpdate* updates, std::size_t count);
  void update_shapes(const std::vector<SlotShapeUpdate>& updates) {
    update_shapes(updates.data(), updates.size());
  }

  // ---- Speculative frames (the transactional half of the API). ----
  //
  // push_shapes() applies a delta like update_shapes() but opens an undo
  // frame first, journaling everything the delta displaces: the touched
  // nodes' occupancy and shapes, and — because a solve() between push and
  // pop patches them — the per-column/cell/row longest-path aggregates the
  // delta dirties, plus the pending-delta bookkeeping and the solved flag.
  // pop_shapes() restores the journaled state in O(frame) time: node shapes
  // are re-resolved, displaced aggregates are written back verbatim (no
  // re-derivation), and the pre-push dirty set returns, so the session is
  // bit-identically the session it was before the push — including a still
  // -valid cached solve when none ran in between. commit_shapes() keeps the
  // current state and drops every open frame.
  //
  // Frames nest (push/push/pop/pop); mapping::DeltaTxn drives one frame per
  // speculative evaluation inside it. When a push trips the ¼-dirty
  // full-solve fallback, or a solve() under an open frame re-derives every
  // aggregate, the frame degrades gracefully: pop_shapes() restores the
  // node states and schedules a full re-derivation instead of surgically
  // restoring aggregates (rollback-after-fallback stays exact, it just
  // pays a full solve next).

  /// Applies a delta under a new undo frame. Same no-op/unplaced-slot
  /// semantics as update_shapes().
  void push_shapes(const SlotShapeUpdate* updates, std::size_t count);
  void push_shapes(const std::vector<SlotShapeUpdate>& updates) {
    push_shapes(updates.data(), updates.size());
  }

  /// Rolls back the most recent open frame. Throws std::logic_error when no
  /// frame is open.
  void pop_shapes();

  /// Accepts the current state: drops every open frame without restoring.
  void commit_shapes();

  /// Open speculative frames (0 outside a transaction).
  [[nodiscard]] int journal_depth() const {
    return static_cast<int>(journal_depth_);
  }

  /// Solves the current assignment and returns the floorplan, bit-identical
  /// to Floorplanner(options()).place(placement, core_shapes,
  /// switch_shapes). The result is cached: a solve with no intervening
  /// effective update is free.
  [[nodiscard]] const Floorplan& solve();

  [[nodiscard]] const Options& options() const { return options_; }

  /// Solve-path counters, for the tests' and benches' reuse assertions.
  struct Stats {
    std::uint64_t solves = 0;             ///< Solves that did any work.
    std::uint64_t cached_solves = 0;      ///< No effective delta since last.
    std::uint64_t incremental_solves = 0; ///< Dirty aggregates patched.
    std::uint64_t full_solves = 0;        ///< Every aggregate re-derived.
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// One distinct block shape's resolution against the session options: the
  /// stage-1 (pre-sizing) dimensions and, for soft blocks, the candidate
  /// (w, h) pairs of the sizing descent — the option aspects clipped to the
  /// shape's range, duplicates dropped (a duplicate re-derives an identical
  /// chip and can never pass the strict improvement test). Depends only on
  /// (shape, options), so the session interns one entry per distinct shape
  /// it ever sees: a delta that moves a shape onto a slot — and a journal
  /// pop that moves it back off — costs an index assignment, not a
  /// re-derivation of the candidate list.
  struct ResolvedShape {
    BlockShape shape;
    double init_w = 0.0, init_h = 0.0;
    std::vector<std::pair<double, double>> candidate_dims;
  };

  /// One placement item with its resolved shape. `init_w/init_h` mirror the
  /// interned resolution (hot-loop locality); `w/h` are the working
  /// dimensions the sizing descent iterates on; `resolved` indexes
  /// resolved_shapes_ (-1 while absent).
  struct Node {
    PlacedBlock::Kind kind = PlacedBlock::Kind::kSwitch;
    int index = 0;  ///< SlotId for cores, switch NodeId for switches.
    int row = 0, col = 0, sub = 0;
    bool present = false;
    BlockShape shape;
    int resolved = -1;
    double init_w = 0.0, init_h = 0.0;
    double w = 0.0, h = 0.0;
  };

  /// One speculative frame of the undo journal. `nodes` records the
  /// pre-push occupancy/shape of every effectively-changed node;
  /// `col_w`/`cell_h`/`row_h`/`col_h` record the init longest-path
  /// aggregates the pushed nodes dirty, as they stood at push time (a
  /// solve() while the frame is open patches exactly those). Frames are
  /// pooled: pop/commit only move `journal_depth_`, so steady-state
  /// annealing pushes allocate nothing.
  struct JournalFrame {
    struct NodeUndo {
      int id = 0;
      bool present = false;
      BlockShape shape;
      int resolved = -1;
      double init_w = 0.0, init_h = 0.0;
    };
    std::vector<NodeUndo> nodes;
    std::vector<std::pair<int, double>> col_w;
    std::vector<std::pair<int, double>> cell_h;
    std::vector<std::pair<int, double>> row_h;
    std::vector<std::pair<int, double>> col_h;
    std::vector<int> base_dirty_nodes;  ///< dirty_nodes_ at push time.
    bool base_all_dirty = false;
    bool base_solved = false;
    bool solved_through = false;  ///< A solve ran while the frame was open.
    bool solved_full = false;     ///< ...and it re-derived every aggregate.

    void reset() {
      nodes.clear();
      col_w.clear();
      cell_h.clear();
      row_h.clear();
      col_h.clear();
      base_dirty_nodes.clear();
      base_all_dirty = base_solved = solved_through = solved_full = false;
    }
  };

  /// Shared body of update_shapes/push_shapes; journals into `frame` when
  /// one is given.
  void apply_updates(const SlotShapeUpdate* updates, std::size_t count,
                     JournalFrame* frame);

  /// Find-or-intern `shape` in resolved_shapes_; returns its index.
  [[nodiscard]] int resolve_shape(const BlockShape& shape);
  void resolve_node(Node& node);
  void build_structure(const std::vector<std::optional<BlockShape>>& cores,
                       const std::vector<BlockShape>& switches);
  void rederive_all_init_aggregates();
  void patch_init_aggregates();
  /// Re-derives one column's / one cell's / one row's init aggregate with
  /// the exact arithmetic of the full derivation.
  void rederive_col(int col);
  void rederive_cell(int cell);
  void rederive_row(int row);

  // ---- Sizing-descent helpers over the working aggregates. ----
  void set_dims(int node_id, double w, double h);
  void run_sizing_descent();
  [[nodiscard]] Floorplan place_band();
  [[nodiscard]] Floorplan place_simplex() const;

  Options options_;
  topo::RelativePlacement placement_;
  bool grid_ = true;
  int ncols_ = 0, nrows_ = 0;
  double spacing_ = 0.0;

  std::vector<Node> nodes_;    ///< Placement order.
  std::vector<int> slot_node_; ///< SlotId -> node id, -1 when unplaced.
  /// Interned per-shape resolutions (a design has a handful of distinct
  /// shapes; linear find-or-insert by exact equality).
  std::vector<ResolvedShape> resolved_shapes_;

  // ---- Constraint-graph structure (placement-only, built once). ----
  std::vector<std::vector<int>> col_members_; ///< Width-max members per col.
  std::vector<int> node_cell_;                ///< Grid: node -> cell id.
  std::vector<std::vector<int>> cell_stack_;  ///< Grid: stack order per cell.
  std::vector<std::vector<int>> row_cells_;   ///< Grid: cell ids per row.
  std::vector<std::vector<int>> col_stack_;   ///< Columns: stack per col.

  // ---- Presence counts (maintained by update_shapes). ----
  std::vector<int> col_present_;
  std::vector<int> row_present_;  ///< Grid mode only.
  std::vector<int> cell_present_; ///< Grid mode only.

  // ---- Longest-path aggregates of the init dims (delta-patched). ----
  std::vector<double> init_col_width_;
  std::vector<double> init_cell_height_; ///< Grid mode.
  std::vector<double> init_row_height_;  ///< Grid mode.
  std::vector<double> init_col_height_;  ///< Columns mode.

  // ---- Working aggregates of the sizing descent. ----
  std::vector<double> col_width_;
  std::vector<double> cell_height_;
  std::vector<double> row_height_;
  std::vector<double> col_height_;

  // ---- Delta bookkeeping. ----
  std::vector<JournalFrame> journal_;  ///< Pooled frames; depth_ are open.
  std::size_t journal_depth_ = 0;
  std::vector<int> dirty_nodes_;
  std::vector<int> dirty_cols_scratch_;
  std::vector<int> dirty_cells_scratch_;
  std::vector<int> dirty_rows_scratch_;
  bool all_dirty_ = true;
  bool solved_ = false;
  Floorplan last_;
  Stats stats_;

  // Reusable position scratch of place_band (sized in build_structure, so
  // incremental solves allocate nothing but the returned blocks).
  std::vector<double> col_x_scratch_;
  std::vector<double> row_y_scratch_;
  std::vector<std::pair<double, double>> pos_scratch_;

};

}  // namespace sunmap::fplan
