#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fplan/floorplan.h"
#include "fplan/floorplanner.h"
#include "topo/topology.h"

namespace sunmap::fplan {

/// One slot's shape change for FloorplanSession::update_shapes: the core
/// shape now occupying the slot, or nullopt to empty it. Switch shapes are
/// placement-invariant and fixed at session construction.
struct SlotShapeUpdate {
  int slot = 0;
  std::optional<BlockShape> shape;
};

/// Session-based incremental floorplanner: the stateful counterpart of
/// Floorplanner::place for callers that solve a *sequence* of closely
/// related shape assignments (the mapping search's pairwise-swap loop, the
/// explorer's per-topology sweeps).
///
/// The one-shot place() pays, on every call, for (1) resolving placement
/// items against the shape tables, (2) building the column/row constraint
/// graphs — per-column member lists, per-cell stacks sorted by stacking
/// order, per-row cell lists — and (3) a soft-block sizing descent whose
/// every candidate trial re-derives the chip extents from scratch. A
/// session splits those stages apart and keeps (1) and (2) alive across
/// solves:
///
///  * update_shapes() applies a delta (a pairwise swap touches <= 2 slots):
///    only the touched items are re-resolved and only their columns, cells,
///    and rows have their longest-path aggregates re-derived; everything
///    downstream of a dirty column/row (the chip-extent prefix sums) is
///    re-run at the next solve. When the dirty set covers most of the
///    design the patching is abandoned and the next solve re-derives every
///    aggregate (the full-solve fallback).
///  * solve() runs the sizing descent over the persistent structure; each
///    candidate trial re-solves only the candidate's own column/row
///    constraint chains (a max per column, a stack sum per cell) plus the
///    downstream extent sums, instead of rebuilding the whole layout.
///
/// Incremental solves are bit-identical to from-scratch ones: every
/// aggregate a delta dirties is recomputed with the same loop, in the same
/// order, as the full derivation, and max/assignment carry no accumulated
/// state — so Floorplanner::place (itself a one-shot session) and a session
/// driven through any update history agree on every block position, chip
/// dimension, and area to the last bit (asserted by the randomized
/// swap-sequence property tests and by bench_floorplan --json).
///
/// Sessions are single-threaded; concurrent searches give each worker its
/// own (mapping::EvalScratch owns one per thread).
class FloorplanSession {
 public:
  using Options = Floorplanner::Options;

  /// Captures the placement structure and the initial shape assignment.
  /// `core_shapes` is indexed by SlotId (nullopt = empty slot) and
  /// `switch_shapes` by switch NodeId, exactly as Floorplanner::place takes
  /// them; the shapes are resolved into the session's own items and the
  /// placement is copied, so neither argument needs to outlive the call.
  FloorplanSession(Options options, const topo::RelativePlacement& placement,
                   const std::vector<std::optional<BlockShape>>& core_shapes,
                   const std::vector<BlockShape>& switch_shapes);

  /// Applies a shape delta. Updates whose shape equals the slot's current
  /// one are no-ops; updates for slots the placement does not position are
  /// ignored (place() never sees their shapes either).
  void update_shapes(const SlotShapeUpdate* updates, std::size_t count);
  void update_shapes(const std::vector<SlotShapeUpdate>& updates) {
    update_shapes(updates.data(), updates.size());
  }

  /// Solves the current assignment and returns the floorplan, bit-identical
  /// to Floorplanner(options()).place(placement, core_shapes,
  /// switch_shapes). The result is cached: a solve with no intervening
  /// effective update is free.
  [[nodiscard]] const Floorplan& solve();

  [[nodiscard]] const Options& options() const { return options_; }

  /// Solve-path counters, for the tests' and benches' reuse assertions.
  struct Stats {
    std::uint64_t solves = 0;             ///< Solves that did any work.
    std::uint64_t cached_solves = 0;      ///< No effective delta since last.
    std::uint64_t incremental_solves = 0; ///< Dirty aggregates patched.
    std::uint64_t full_solves = 0;        ///< Every aggregate re-derived.
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// One placement item with its resolved shape. `init_w/init_h` are the
  /// stage-1 dimensions (pre-sizing); `w/h` are the working dimensions the
  /// sizing descent iterates on.
  struct Node {
    PlacedBlock::Kind kind = PlacedBlock::Kind::kSwitch;
    int index = 0;  ///< SlotId for cores, switch NodeId for switches.
    int row = 0, col = 0, sub = 0;
    bool present = false;
    BlockShape shape;
    double init_w = 0.0, init_h = 0.0;
    double w = 0.0, h = 0.0;
    /// Soft blocks: the candidate (w, h) pairs of the sizing descent, from
    /// the option aspects clipped to the shape's range, duplicates dropped
    /// (a duplicate re-derives an identical chip and can never pass the
    /// strict improvement test). Depends only on shape + options, so it is
    /// resolved once per shape change instead of once per trial.
    std::vector<std::pair<double, double>> candidate_dims;
  };

  void resolve_node(Node& node) const;
  void build_structure(const std::vector<std::optional<BlockShape>>& cores,
                       const std::vector<BlockShape>& switches);
  void rederive_all_init_aggregates();
  void patch_init_aggregates();
  /// Re-derives one column's / one cell's / one row's init aggregate with
  /// the exact arithmetic of the full derivation.
  void rederive_col(int col);
  void rederive_cell(int cell);
  void rederive_row(int row);

  // ---- Sizing-descent helpers over the working aggregates. ----
  void set_dims(int node_id, double w, double h);
  void run_sizing_descent();
  [[nodiscard]] Floorplan place_band();
  [[nodiscard]] Floorplan place_simplex() const;

  Options options_;
  topo::RelativePlacement placement_;
  bool grid_ = true;
  int ncols_ = 0, nrows_ = 0;
  double spacing_ = 0.0;

  std::vector<Node> nodes_;    ///< Placement order.
  std::vector<int> slot_node_; ///< SlotId -> node id, -1 when unplaced.

  // ---- Constraint-graph structure (placement-only, built once). ----
  std::vector<std::vector<int>> col_members_; ///< Width-max members per col.
  std::vector<int> node_cell_;                ///< Grid: node -> cell id.
  std::vector<std::vector<int>> cell_stack_;  ///< Grid: stack order per cell.
  std::vector<std::vector<int>> row_cells_;   ///< Grid: cell ids per row.
  std::vector<std::vector<int>> col_stack_;   ///< Columns: stack per col.

  // ---- Presence counts (maintained by update_shapes). ----
  std::vector<int> col_present_;
  std::vector<int> row_present_;  ///< Grid mode only.
  std::vector<int> cell_present_; ///< Grid mode only.

  // ---- Longest-path aggregates of the init dims (delta-patched). ----
  std::vector<double> init_col_width_;
  std::vector<double> init_cell_height_; ///< Grid mode.
  std::vector<double> init_row_height_;  ///< Grid mode.
  std::vector<double> init_col_height_;  ///< Columns mode.

  // ---- Working aggregates of the sizing descent. ----
  std::vector<double> col_width_;
  std::vector<double> cell_height_;
  std::vector<double> row_height_;
  std::vector<double> col_height_;

  // ---- Delta bookkeeping. ----
  std::vector<int> dirty_nodes_;
  std::vector<int> dirty_cols_scratch_;
  std::vector<int> dirty_cells_scratch_;
  std::vector<int> dirty_rows_scratch_;
  bool all_dirty_ = true;
  bool solved_ = false;
  Floorplan last_;
  Stats stats_;

  // Reusable position scratch of place_band (sized in build_structure, so
  // incremental solves allocate nothing but the returned blocks).
  std::vector<double> col_x_scratch_;
  std::vector<double> row_y_scratch_;
  std::vector<std::pair<double, double>> pos_scratch_;

};

}  // namespace sunmap::fplan
