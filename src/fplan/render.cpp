#include "fplan/render.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace sunmap::fplan {

std::string render_ascii(
    const Floorplan& floorplan,
    const std::function<std::string(const PlacedBlock&)>& label,
    int width_chars) {
  if (floorplan.blocks().empty() || floorplan.width_mm() <= 0.0 ||
      floorplan.height_mm() <= 0.0 || width_chars < 10) {
    return "(empty floorplan)\n";
  }

  // Terminal cells are ~2x taller than wide; halve the row resolution.
  const double scale_x = width_chars / floorplan.width_mm();
  const double scale_y = scale_x * 0.5;
  const int rows = std::max(
      3, static_cast<int>(std::lround(floorplan.height_mm() * scale_y)) + 1);
  const int cols = width_chars + 1;

  std::vector<std::string> canvas(static_cast<std::size_t>(rows),
                                  std::string(static_cast<std::size_t>(cols),
                                              ' '));

  auto to_col = [&](double x) {
    return std::clamp(static_cast<int>(std::lround(x * scale_x)), 0,
                      cols - 1);
  };
  auto to_row = [&](double y) {
    // Flip: floorplan origin is bottom-left, canvas row 0 is the top.
    return std::clamp(rows - 1 - static_cast<int>(std::lround(y * scale_y)),
                      0, rows - 1);
  };

  for (const auto& block : floorplan.blocks()) {
    const int c0 = to_col(block.x);
    const int c1 = std::max(c0 + 1, to_col(block.x + block.w));
    const int r1 = to_row(block.y);
    const int r0 = std::min(r1 - 1, to_row(block.y + block.h));
    for (int r = r0; r <= r1; ++r) {
      for (int c = c0; c <= c1; ++c) {
        const bool border = r == r0 || r == r1 || c == c0 || c == c1;
        char& cell = canvas[static_cast<std::size_t>(r)]
                           [static_cast<std::size_t>(c)];
        if (border) {
          cell = (r == r0 || r == r1) ? '-' : '|';
          if ((r == r0 || r == r1) && (c == c0 || c == c1)) cell = '+';
        }
      }
    }
    const std::string name = label(block);
    const int mid_row = (r0 + r1) / 2;
    const int space = c1 - c0 - 1;
    if (space > 0 && mid_row > r0 && mid_row < r1) {
      const int len = std::min<int>(static_cast<int>(name.size()), space);
      const int start = c0 + 1 + (space - len) / 2;
      for (int i = 0; i < len; ++i) {
        canvas[static_cast<std::size_t>(mid_row)]
              [static_cast<std::size_t>(start + i)] =
            name[static_cast<std::size_t>(i)];
      }
    }
  }

  std::string out;
  for (const auto& line : canvas) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string render_ascii(const Floorplan& floorplan, int width_chars) {
  return render_ascii(
      floorplan,
      [](const PlacedBlock& block) {
        return (block.kind == PlacedBlock::Kind::kCore ? "c" : "S") +
               std::to_string(block.index);
      },
      width_chars);
}

}  // namespace sunmap::fplan
