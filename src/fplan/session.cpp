#include "fplan/session.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "fplan/lp.h"

namespace sunmap::fplan {

namespace {

using Mode = topo::RelativePlacement::Mode;

/// The literal LP engine over already-sized items (the paper's formulation
/// [21]): minimise W + H subject to the relative-position ordering and
/// boundary constraints. Shared by every session regardless of how the item
/// dimensions were derived, so the simplex engine benefits from the
/// incremental sizing stages unchanged.
Floorplan solve_simplex_lp(const topo::RelativePlacement& placement,
                           const std::vector<Floorplanner::Item>& items,
                           double spacing) {
  const int n = static_cast<int>(items.size());
  if (n == 0) return Floorplan({}, 0.0, 0.0);
  LinearProgram lp(2 * n + 2);
  const int var_w = 2 * n;
  const int var_h = 2 * n + 1;
  lp.set_objective(var_w, 1.0);
  lp.set_objective(var_h, 1.0);

  auto var_x = [](int i) { return 2 * i; };
  auto var_y = [](int i) { return 2 * i + 1; };

  // Boundary constraints: x_i + w_i <= W, y_i + h_i <= H.
  for (int i = 0; i < n; ++i) {
    lp.add_constraint({{var_x(i), 1.0}, {var_w, -1.0}},
                      LinearProgram::Relation::kLe,
                      -items[static_cast<std::size_t>(i)].w);
    lp.add_constraint({{var_y(i), 1.0}, {var_h, -1.0}},
                      LinearProgram::Relation::kLe,
                      -items[static_cast<std::size_t>(i)].h);
  }

  // Ordering constraints between consecutive non-empty columns.
  const int ncols = std::max(placement.num_cols, 1);
  std::vector<std::vector<int>> by_col(static_cast<std::size_t>(ncols));
  for (int i = 0; i < n; ++i) {
    by_col.at(static_cast<std::size_t>(items[static_cast<std::size_t>(i)].col))
        .push_back(i);
  }
  int prev_col = -1;
  for (int c = 0; c < ncols; ++c) {
    if (by_col[static_cast<std::size_t>(c)].empty()) continue;
    if (prev_col >= 0) {
      for (int a : by_col[static_cast<std::size_t>(prev_col)]) {
        for (int b : by_col[static_cast<std::size_t>(c)]) {
          // x_b - x_a >= w_a + spacing
          lp.add_constraint({{var_x(b), 1.0}, {var_x(a), -1.0}},
                            LinearProgram::Relation::kGe,
                            items[static_cast<std::size_t>(a)].w + spacing);
        }
      }
    }
    prev_col = c;
  }

  if (placement.mode == Mode::kGrid) {
    // Row ordering plus intra-cell stacking.
    const int nrows = std::max(placement.num_rows, 1);
    std::vector<std::vector<int>> by_row(static_cast<std::size_t>(nrows));
    for (int i = 0; i < n; ++i) {
      by_row
          .at(static_cast<std::size_t>(items[static_cast<std::size_t>(i)].row))
          .push_back(i);
    }
    int prev_row = -1;
    for (int r = 0; r < nrows; ++r) {
      if (by_row[static_cast<std::size_t>(r)].empty()) continue;
      if (prev_row >= 0) {
        for (int a : by_row[static_cast<std::size_t>(prev_row)]) {
          for (int b : by_row[static_cast<std::size_t>(r)]) {
            lp.add_constraint({{var_y(b), 1.0}, {var_y(a), -1.0}},
                              LinearProgram::Relation::kGe,
                              items[static_cast<std::size_t>(a)].h + spacing);
          }
        }
      }
      prev_row = r;
      // Stacking within each cell of this row.
      for (int a : by_row[static_cast<std::size_t>(r)]) {
        for (int b : by_row[static_cast<std::size_t>(r)]) {
          const auto& ia = items[static_cast<std::size_t>(a)];
          const auto& ib = items[static_cast<std::size_t>(b)];
          if (ia.col == ib.col && ia.sub < ib.sub) {
            lp.add_constraint({{var_y(b), 1.0}, {var_y(a), -1.0}},
                              LinearProgram::Relation::kGe, ia.h + spacing);
          }
        }
      }
    }
  } else {
    // Columns mode: stacking within each column by row order.
    for (int c = 0; c < ncols; ++c) {
      auto column = by_col[static_cast<std::size_t>(c)];
      std::sort(column.begin(), column.end(), [&](int a, int b) {
        return items[static_cast<std::size_t>(a)].row <
               items[static_cast<std::size_t>(b)].row;
      });
      for (std::size_t k = 0; k + 1 < column.size(); ++k) {
        lp.add_constraint(
            {{var_y(column[k + 1]), 1.0}, {var_y(column[k]), -1.0}},
            LinearProgram::Relation::kGe,
            items[static_cast<std::size_t>(column[k])].h + spacing);
      }
    }
  }

  const auto solution = solve(lp);
  if (solution.status != LpStatus::kOptimal) {
    throw std::logic_error("FloorplanSession: LP did not reach optimality");
  }

  std::vector<PlacedBlock> blocks;
  blocks.reserve(items.size());
  for (int i = 0; i < n; ++i) {
    blocks.push_back(
        PlacedBlock{items[static_cast<std::size_t>(i)].kind,
                    items[static_cast<std::size_t>(i)].index,
                    solution.values[static_cast<std::size_t>(var_x(i))],
                    solution.values[static_cast<std::size_t>(var_y(i))],
                    items[static_cast<std::size_t>(i)].w,
                    items[static_cast<std::size_t>(i)].h});
  }
  return Floorplan(std::move(blocks),
                   solution.values[static_cast<std::size_t>(var_w)],
                   solution.values[static_cast<std::size_t>(var_h)]);
}

}  // namespace

FloorplanSession::FloorplanSession(
    Options options, const topo::RelativePlacement& placement,
    const std::vector<std::optional<BlockShape>>& core_shapes,
    const std::vector<BlockShape>& switch_shapes)
    : options_(std::move(options)), placement_(placement) {
  grid_ = placement_.mode == Mode::kGrid;
  ncols_ = std::max(placement_.num_cols, 1);
  nrows_ = std::max(placement_.num_rows, 1);
  spacing_ = options_.spacing_mm;
  build_structure(core_shapes, switch_shapes);
}

int FloorplanSession::resolve_shape(const BlockShape& shape) {
  for (std::size_t i = 0; i < resolved_shapes_.size(); ++i) {
    if (resolved_shapes_[i].shape == shape) return static_cast<int>(i);
  }
  ResolvedShape resolved;
  resolved.shape = shape;
  if (shape.soft) {
    resolved.init_w = std::sqrt(shape.area_mm2);
    resolved.init_h = resolved.init_w;
    // The descent's candidate dims in trial order: the option aspects, then
    // the shape's own min and max, each clipped to the shape's range;
    // clip-collapsed duplicates dropped (an identical (w, h) re-derives an
    // identical chip, which can never pass the strict improvement test).
    resolved.candidate_dims.reserve(options_.aspect_candidates.size() + 2);
    const auto try_aspect = [&](double aspect) {
      const double clipped =
          std::clamp(aspect, shape.min_aspect, shape.max_aspect);
      const double w = std::sqrt(shape.area_mm2 * clipped);
      const double h = std::sqrt(shape.area_mm2 / clipped);
      for (const auto& [tw, th] : resolved.candidate_dims) {
        if (tw == w && th == h) return;
      }
      resolved.candidate_dims.emplace_back(w, h);
    };
    for (double aspect : options_.aspect_candidates) try_aspect(aspect);
    try_aspect(shape.min_aspect);
    try_aspect(shape.max_aspect);
  } else {
    resolved.init_w = shape.width_mm;
    resolved.init_h = shape.height_mm;
  }
  resolved_shapes_.push_back(std::move(resolved));
  return static_cast<int>(resolved_shapes_.size() - 1);
}

void FloorplanSession::resolve_node(Node& node) {
  node.resolved = resolve_shape(node.shape);
  node.init_w = resolved_shapes_[static_cast<std::size_t>(node.resolved)].init_w;
  node.init_h = resolved_shapes_[static_cast<std::size_t>(node.resolved)].init_h;
}

void FloorplanSession::build_structure(
    const std::vector<std::optional<BlockShape>>& cores,
    const std::vector<BlockShape>& switches) {
  using Kind = topo::RelativePlacement::Item::Kind;
  nodes_.clear();
  nodes_.reserve(placement_.items.size());
  resolved_shapes_.clear();
  int max_slot = -1;
  for (const auto& item : placement_.items) {
    if (item.col < 0 || item.col >= ncols_) {
      throw std::out_of_range("FloorplanSession: item column out of range");
    }
    if (grid_ && (item.row < 0 || item.row >= nrows_)) {
      throw std::out_of_range("FloorplanSession: item row out of range");
    }
    Node node;
    node.index = item.index;
    node.row = item.row;
    node.col = item.col;
    node.sub = item.sub;
    if (item.kind == Kind::kCore) {
      node.kind = PlacedBlock::Kind::kCore;
      max_slot = std::max(max_slot, item.index);
      const auto& maybe = cores.at(static_cast<std::size_t>(item.index));
      node.present = maybe.has_value();
      if (node.present) node.shape = *maybe;
    } else {
      node.kind = PlacedBlock::Kind::kSwitch;
      node.present = true;
      node.shape = switches.at(static_cast<std::size_t>(item.index));
    }
    if (node.present) resolve_node(node);
    nodes_.push_back(node);
  }

  slot_node_.assign(static_cast<std::size_t>(max_slot + 1), -1);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == PlacedBlock::Kind::kCore) {
      slot_node_[static_cast<std::size_t>(nodes_[i].index)] =
          static_cast<int>(i);
    }
  }

  // Constraint-graph structure: who shares a column band, a grid cell, a
  // row band. Ordering inside a stack is by (sub | row, placement order) —
  // a total order, so it is independent of which items are present and
  // matches what the one-shot layout's sort produced.
  col_members_.assign(static_cast<std::size_t>(ncols_), {});
  if (grid_) {
    node_cell_.assign(nodes_.size(), 0);
    cell_stack_.assign(
        static_cast<std::size_t>(nrows_) * static_cast<std::size_t>(ncols_),
        {});
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const auto& node = nodes_[i];
      const int cell = node.row * ncols_ + node.col;
      node_cell_[i] = cell;
      cell_stack_[static_cast<std::size_t>(cell)].push_back(
          static_cast<int>(i));
      col_members_[static_cast<std::size_t>(node.col)].push_back(
          static_cast<int>(i));
    }
    for (auto& stack : cell_stack_) {
      std::sort(stack.begin(), stack.end(), [&](int a, int b) {
        const auto& na = nodes_[static_cast<std::size_t>(a)];
        const auto& nb = nodes_[static_cast<std::size_t>(b)];
        if (na.sub != nb.sub) return na.sub < nb.sub;
        return a < b;
      });
    }
    row_cells_.assign(static_cast<std::size_t>(nrows_), {});
    for (int r = 0; r < nrows_; ++r) {
      for (int c = 0; c < ncols_; ++c) {
        const int cell = r * ncols_ + c;
        if (!cell_stack_[static_cast<std::size_t>(cell)].empty()) {
          row_cells_[static_cast<std::size_t>(r)].push_back(cell);
        }
      }
    }
  } else {
    col_stack_.assign(static_cast<std::size_t>(ncols_), {});
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      col_stack_[static_cast<std::size_t>(nodes_[i].col)].push_back(
          static_cast<int>(i));
      col_members_[static_cast<std::size_t>(nodes_[i].col)].push_back(
          static_cast<int>(i));
    }
    for (auto& stack : col_stack_) {
      std::sort(stack.begin(), stack.end(), [&](int a, int b) {
        const auto& na = nodes_[static_cast<std::size_t>(a)];
        const auto& nb = nodes_[static_cast<std::size_t>(b)];
        if (na.row != nb.row) return na.row < nb.row;
        return a < b;
      });
    }
  }

  col_present_.assign(static_cast<std::size_t>(ncols_), 0);
  if (grid_) {
    row_present_.assign(static_cast<std::size_t>(nrows_), 0);
    cell_present_.assign(cell_stack_.size(), 0);
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].present) continue;
    ++col_present_[static_cast<std::size_t>(nodes_[i].col)];
    if (grid_) {
      ++row_present_[static_cast<std::size_t>(nodes_[i].row)];
      ++cell_present_[static_cast<std::size_t>(node_cell_[i])];
    }
  }

  init_col_width_.assign(static_cast<std::size_t>(ncols_), 0.0);
  col_width_.assign(static_cast<std::size_t>(ncols_), 0.0);
  if (grid_) {
    init_cell_height_.assign(cell_stack_.size(), 0.0);
    cell_height_.assign(cell_stack_.size(), 0.0);
    init_row_height_.assign(static_cast<std::size_t>(nrows_), 0.0);
    row_height_.assign(static_cast<std::size_t>(nrows_), 0.0);
  } else {
    init_col_height_.assign(static_cast<std::size_t>(ncols_), 0.0);
    col_height_.assign(static_cast<std::size_t>(ncols_), 0.0);
  }

  col_x_scratch_.assign(static_cast<std::size_t>(ncols_), 0.0);
  row_y_scratch_.assign(static_cast<std::size_t>(nrows_), 0.0);
  pos_scratch_.assign(nodes_.size(), {0.0, 0.0});

  all_dirty_ = true;
  dirty_nodes_.clear();
  journal_depth_ = 0;
  for (auto& frame : journal_) frame.reset();
  solved_ = false;
}

void FloorplanSession::update_shapes(const SlotShapeUpdate* updates,
                                     std::size_t count) {
  if (journal_depth_ > 0) {
    throw std::logic_error(
        "FloorplanSession::update_shapes: speculative frames are open; use "
        "push_shapes or settle them with pop_shapes/commit_shapes first");
  }
  apply_updates(updates, count, /*frame=*/nullptr);
}

void FloorplanSession::push_shapes(const SlotShapeUpdate* updates,
                                   std::size_t count) {
  if (journal_.size() <= journal_depth_) journal_.emplace_back();
  JournalFrame& frame = journal_[journal_depth_];
  frame.reset();
  frame.base_all_dirty = all_dirty_;
  frame.base_solved = solved_;
  frame.base_dirty_nodes = dirty_nodes_;
  ++journal_depth_;
  apply_updates(updates, count, &frame);
}

void FloorplanSession::pop_shapes() {
  if (journal_depth_ == 0) {
    throw std::logic_error("FloorplanSession::pop_shapes: no frame is open");
  }
  JournalFrame& frame = journal_[--journal_depth_];

  // Restore the displaced node states in reverse push order, so a slot the
  // frame touched twice lands back on its original occupancy and shape.
  // The journaled resolution (interned-shape index + init dims) is written
  // back verbatim — the interned entry it points at never moves — so the
  // restored node is bit-identical to its pre-push self without touching
  // the resolver.
  for (auto it = frame.nodes.rbegin(); it != frame.nodes.rend(); ++it) {
    Node& node = nodes_[static_cast<std::size_t>(it->id)];
    if (node.present != it->present) {
      const int delta = it->present ? 1 : -1;
      col_present_[static_cast<std::size_t>(node.col)] += delta;
      if (grid_) {
        row_present_[static_cast<std::size_t>(node.row)] += delta;
        cell_present_[static_cast<std::size_t>(
            node_cell_[static_cast<std::size_t>(it->id)])] += delta;
      }
    }
    node.present = it->present;
    node.shape = it->shape;
    node.resolved = it->resolved;
    node.init_w = it->init_w;
    node.init_h = it->init_h;
  }

  if (frame.base_all_dirty || frame.solved_full) {
    // The frame's base already needed (or a solve under the frame performed)
    // a full re-derivation: surgical aggregate restoration has nothing valid
    // to write back, so the next solve re-derives everything from the
    // restored node states — exact, just not O(dirty).
    all_dirty_ = true;
    dirty_nodes_.clear();
  } else {
    // Write the displaced longest-path aggregates back verbatim (reverse
    // record order, so overlapping records end on the oldest value) and
    // restore the pre-push pending-delta set; aggregates a solve patched
    // for those pending nodes are re-patched at the next solve.
    for (auto it = frame.col_w.rbegin(); it != frame.col_w.rend(); ++it) {
      init_col_width_[static_cast<std::size_t>(it->first)] = it->second;
    }
    for (auto it = frame.cell_h.rbegin(); it != frame.cell_h.rend(); ++it) {
      init_cell_height_[static_cast<std::size_t>(it->first)] = it->second;
    }
    for (auto it = frame.row_h.rbegin(); it != frame.row_h.rend(); ++it) {
      init_row_height_[static_cast<std::size_t>(it->first)] = it->second;
    }
    for (auto it = frame.col_h.rbegin(); it != frame.col_h.rend(); ++it) {
      init_col_height_[static_cast<std::size_t>(it->first)] = it->second;
    }
    all_dirty_ = false;
    dirty_nodes_ = frame.base_dirty_nodes;
  }
  // A solve while the frame was open left last_ holding the speculative
  // floorplan; without one, the pre-push cached solve (if any) is still
  // exactly the restored state's solution.
  solved_ = frame.solved_through ? false : frame.base_solved;
  frame.reset();
}

void FloorplanSession::commit_shapes() {
  while (journal_depth_ > 0) journal_[--journal_depth_].reset();
}

void FloorplanSession::apply_updates(const SlotShapeUpdate* updates,
                                     std::size_t count, JournalFrame* frame) {
  for (std::size_t i = 0; i < count; ++i) {
    const auto& update = updates[i];
    if (update.slot < 0 ||
        update.slot >= static_cast<int>(slot_node_.size())) {
      continue;  // the placement never positions this slot
    }
    const int id = slot_node_[static_cast<std::size_t>(update.slot)];
    if (id < 0) continue;
    Node& node = nodes_[static_cast<std::size_t>(id)];
    const bool want_present = update.shape.has_value();
    if (want_present == node.present &&
        (!want_present || *update.shape == node.shape)) {
      continue;  // no-op: same occupancy, same shape
    }
    if (frame != nullptr) {
      frame->nodes.push_back(JournalFrame::NodeUndo{
          id, node.present, node.shape, node.resolved, node.init_w,
          node.init_h});
      frame->col_w.emplace_back(
          node.col, init_col_width_[static_cast<std::size_t>(node.col)]);
      if (grid_) {
        const int cell = node_cell_[static_cast<std::size_t>(id)];
        frame->cell_h.emplace_back(
            cell, init_cell_height_[static_cast<std::size_t>(cell)]);
        frame->row_h.emplace_back(
            node.row, init_row_height_[static_cast<std::size_t>(node.row)]);
      } else {
        frame->col_h.emplace_back(
            node.col, init_col_height_[static_cast<std::size_t>(node.col)]);
      }
    }
    if (want_present != node.present) {
      const int delta = want_present ? 1 : -1;
      col_present_[static_cast<std::size_t>(node.col)] += delta;
      if (grid_) {
        row_present_[static_cast<std::size_t>(node.row)] += delta;
        cell_present_[static_cast<std::size_t>(
            node_cell_[static_cast<std::size_t>(id)])] += delta;
      }
    }
    node.present = want_present;
    if (want_present) {
      node.shape = *update.shape;
      resolve_node(node);
    }
    if (!all_dirty_) dirty_nodes_.push_back(id);
    solved_ = false;
  }
  // Large dirty sets lose the point of patching (each dirty node re-derives
  // its whole column/cell/row): fall back to re-deriving every aggregate at
  // the next solve once a quarter of the design is dirty.
  if (!all_dirty_ && 4 * dirty_nodes_.size() >= nodes_.size()) {
    all_dirty_ = true;
    dirty_nodes_.clear();
  }
}

void FloorplanSession::rederive_col(int col) {
  double width = 0.0;
  for (int id : col_members_[static_cast<std::size_t>(col)]) {
    const auto& node = nodes_[static_cast<std::size_t>(id)];
    if (node.present) width = std::max(width, node.init_w);
  }
  init_col_width_[static_cast<std::size_t>(col)] = width;
  if (!grid_) {
    double height = 0.0;
    bool first = true;
    for (int id : col_stack_[static_cast<std::size_t>(col)]) {
      const auto& node = nodes_[static_cast<std::size_t>(id)];
      if (!node.present) continue;
      if (!first) height += spacing_;
      height += node.init_h;
      first = false;
    }
    init_col_height_[static_cast<std::size_t>(col)] = height;
  }
}

void FloorplanSession::rederive_cell(int cell) {
  double height = 0.0;
  bool first = true;
  for (int id : cell_stack_[static_cast<std::size_t>(cell)]) {
    const auto& node = nodes_[static_cast<std::size_t>(id)];
    if (!node.present) continue;
    if (!first) height += spacing_;
    height += node.init_h;
    first = false;
  }
  init_cell_height_[static_cast<std::size_t>(cell)] = height;
}

void FloorplanSession::rederive_row(int row) {
  double height = 0.0;
  for (int cell : row_cells_[static_cast<std::size_t>(row)]) {
    if (cell_present_[static_cast<std::size_t>(cell)] > 0) {
      height =
          std::max(height, init_cell_height_[static_cast<std::size_t>(cell)]);
    }
  }
  init_row_height_[static_cast<std::size_t>(row)] = height;
}

void FloorplanSession::rederive_all_init_aggregates() {
  for (int c = 0; c < ncols_; ++c) rederive_col(c);
  if (grid_) {
    for (int cell = 0; cell < static_cast<int>(cell_stack_.size()); ++cell) {
      rederive_cell(cell);
    }
    for (int r = 0; r < nrows_; ++r) rederive_row(r);
  }
}

void FloorplanSession::patch_init_aggregates() {
  // Re-derive only the columns / cells / rows a dirty node sits in; cells
  // feed rows, so the grid's row pass runs after every dirty cell. The
  // dirty set is tiny (a pairwise swap touches two slots), so linear dedup
  // over reusable member buffers suffices — no allocation per solve.
  const auto insert_unique = [](std::vector<int>& list, int value) {
    for (int v : list) {
      if (v == value) return false;
    }
    list.push_back(value);
    return true;
  };
  dirty_cols_scratch_.clear();
  dirty_cells_scratch_.clear();
  dirty_rows_scratch_.clear();
  for (int id : dirty_nodes_) {
    const auto& node = nodes_[static_cast<std::size_t>(id)];
    if (insert_unique(dirty_cols_scratch_, node.col)) rederive_col(node.col);
    if (grid_) {
      const int cell = node_cell_[static_cast<std::size_t>(id)];
      if (insert_unique(dirty_cells_scratch_, cell)) rederive_cell(cell);
      insert_unique(dirty_rows_scratch_, node.row);
    }
  }
  for (int row : dirty_rows_scratch_) rederive_row(row);
}

void FloorplanSession::set_dims(int node_id, double w, double h) {
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  if (node.w == w && node.h == h) return;  // aggregates cannot move
  const double old_w = node.w;
  const double old_h = node.h;
  node.w = w;
  node.h = h;

  // Column width: max over the column's present members. One element moved,
  // so the max only needs a rescan when the former maximum shrank; max is
  // exact arithmetic, so every branch lands on the value a full
  // re-derivation would produce.
  {
    auto& width = col_width_[static_cast<std::size_t>(node.col)];
    if (w >= width) {
      width = w;
    } else if (old_w >= width) {
      double rescan = 0.0;
      for (int id : col_members_[static_cast<std::size_t>(node.col)]) {
        const auto& member = nodes_[static_cast<std::size_t>(id)];
        if (member.present) rescan = std::max(rescan, member.w);
      }
      width = rescan;
    }
    // else: another member still holds the max — nothing moved.
  }

  if (grid_) {
    const int cell = node_cell_[static_cast<std::size_t>(node_id)];
    if (h != old_h) {
      double stack = 0.0;
      bool first = true;
      for (int id : cell_stack_[static_cast<std::size_t>(cell)]) {
        const auto& member = nodes_[static_cast<std::size_t>(id)];
        if (!member.present) continue;
        if (!first) stack += spacing_;
        stack += member.h;
        first = false;
      }
      auto& cell_h = cell_height_[static_cast<std::size_t>(cell)];
      if (stack != cell_h) {
        const double old_stack = cell_h;
        cell_h = stack;
        auto& row = row_height_[static_cast<std::size_t>(node.row)];
        if (stack >= row) {
          row = stack;
        } else if (old_stack >= row) {
          double rescan = 0.0;
          for (int other : row_cells_[static_cast<std::size_t>(node.row)]) {
            if (cell_present_[static_cast<std::size_t>(other)] > 0) {
              rescan = std::max(
                  rescan, cell_height_[static_cast<std::size_t>(other)]);
            }
          }
          row = rescan;
        }
      }
    }
  } else if (h != old_h) {
    double stack = 0.0;
    bool first = true;
    for (int id : col_stack_[static_cast<std::size_t>(node.col)]) {
      const auto& member = nodes_[static_cast<std::size_t>(id)];
      if (!member.present) continue;
      if (!first) stack += spacing_;
      stack += member.h;
      first = false;
    }
    col_height_[static_cast<std::size_t>(node.col)] = stack;
  }
}

void FloorplanSession::run_sizing_descent() {
  // Coordinate descent over the soft blocks in placement order. For each
  // item, everything except its own dimensions is frozen while its
  // candidates are tried, so the trial loop works against a precomputed
  // environment — the other members' column max, the stack fold up to the
  // item, the other cells' row max, and the chip-extent prefix folds — and
  // each trial re-solves only the item's own column/row constraint chains
  // plus the downstream prefix sums. Every fold replays the one-shot
  // layout's additions in its exact order (max re-association is exact),
  // so the chosen dims are bit-identical to re-deriving the whole layout
  // per trial. The working aggregate arrays are only patched when an
  // item's best candidate is committed.
  for (int pass = 0; pass < options_.sizing_passes; ++pass) {
    bool changed = false;
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      Node& node = nodes_[id];
      if (!node.present || !node.shape.soft) continue;
      const int col = node.col;

      // Widest other present member of the item's column.
      double col_others = 0.0;
      for (int m : col_members_[static_cast<std::size_t>(col)]) {
        if (m == static_cast<int>(id)) continue;
        const auto& member = nodes_[static_cast<std::size_t>(m)];
        if (member.present) col_others = std::max(col_others, member.w);
      }

      // Stack fold of the item's cell (grid) / column (columns mode) up to
      // the item, plus its position for the per-trial tail walk.
      const auto& stack =
          grid_ ? cell_stack_[static_cast<std::size_t>(
                      node_cell_[static_cast<std::size_t>(id)])]
                : col_stack_[static_cast<std::size_t>(col)];
      double stack_prefix = 0.0;
      bool stack_any = false;
      std::size_t pos = 0;
      for (; stack[pos] != static_cast<int>(id); ++pos) {
        const auto& member = nodes_[static_cast<std::size_t>(stack[pos])];
        if (!member.present) continue;
        if (stack_any) stack_prefix += spacing_;
        stack_prefix += member.h;
        stack_any = true;
      }

      // Row competition: the tallest other stack of the item's row band
      // (grid) / the tallest other column (columns mode, empty columns
      // contribute 0 exactly as the one-shot max over all columns does).
      double row_others = 0.0;
      if (grid_) {
        const int cell = node_cell_[static_cast<std::size_t>(id)];
        for (int other : row_cells_[static_cast<std::size_t>(node.row)]) {
          if (other == cell) continue;
          if (cell_present_[static_cast<std::size_t>(other)] > 0) {
            row_others = std::max(
                row_others, cell_height_[static_cast<std::size_t>(other)]);
          }
        }
      } else {
        for (int c = 0; c < ncols_; ++c) {
          if (c == col) continue;
          row_others =
              std::max(row_others, col_height_[static_cast<std::size_t>(c)]);
        }
      }

      // Chip-extent prefix folds up to the item's column/row.
      double width_prefix = 0.0;
      bool width_any = false;
      for (int c = 0; c < col; ++c) {
        if (col_present_[static_cast<std::size_t>(c)] == 0) continue;
        if (width_any) width_prefix += spacing_;
        width_prefix += col_width_[static_cast<std::size_t>(c)];
        width_any = true;
      }
      double height_prefix = 0.0;
      bool height_any = false;
      if (grid_) {
        for (int r = 0; r < node.row; ++r) {
          if (row_present_[static_cast<std::size_t>(r)] == 0) continue;
          if (height_any) height_prefix += spacing_;
          height_prefix += row_height_[static_cast<std::size_t>(r)];
          height_any = true;
        }
      }

      double best_area = std::numeric_limits<double>::infinity();
      double best_w = node.w;
      double best_h = node.h;
      const double start_w = node.w;
      const double start_h = node.h;
      const auto& candidate_dims =
          resolved_shapes_[static_cast<std::size_t>(node.resolved)]
              .candidate_dims;
      for (const auto& [w, h] : candidate_dims) {
        const double col_w = std::max(col_others, w);

        double stack_h = stack_prefix;
        if (stack_any) stack_h += spacing_;
        stack_h += h;
        for (std::size_t k = pos + 1; k < stack.size(); ++k) {
          const auto& member = nodes_[static_cast<std::size_t>(stack[k])];
          if (!member.present) continue;
          stack_h += spacing_;
          stack_h += member.h;
        }
        const double band_h = std::max(row_others, stack_h);

        double width = width_prefix;
        if (width_any) width += spacing_;
        width += col_w;
        for (int c = col + 1; c < ncols_; ++c) {
          if (col_present_[static_cast<std::size_t>(c)] == 0) continue;
          width += spacing_;
          width += col_width_[static_cast<std::size_t>(c)];
        }

        double height;
        if (grid_) {
          height = height_prefix;
          if (height_any) height += spacing_;
          height += band_h;
          for (int r = node.row + 1; r < nrows_; ++r) {
            if (row_present_[static_cast<std::size_t>(r)] == 0) continue;
            height += spacing_;
            height += row_height_[static_cast<std::size_t>(r)];
          }
        } else {
          height = band_h;
        }

        const double chip = width * height;
        if (chip < best_area - 1e-12) {
          best_area = chip;
          best_w = w;
          best_h = h;
        }
      }
      set_dims(static_cast<int>(id), best_w, best_h);
      if (best_w != start_w || best_h != start_h) changed = true;
    }
    // Fixed point: a pass that moved nothing replays bit-identically, so
    // the remaining passes are no-ops.
    if (!changed) break;
  }
}

Floorplan FloorplanSession::place_band() {
  // The longest-path positions over the final aggregates, with the exact
  // accumulation order of the one-shot band layout. Scratch buffers are
  // pre-sized members: only absent nodes' entries stay stale, and those are
  // never emitted.
  auto& col_x = col_x_scratch_;
  double x = 0.0;
  bool first_col = true;
  for (int c = 0; c < ncols_; ++c) {
    if (col_present_[static_cast<std::size_t>(c)] == 0) continue;
    if (!first_col) x += spacing_;
    first_col = false;
    col_x[static_cast<std::size_t>(c)] = x;
    x += col_width_[static_cast<std::size_t>(c)];
  }
  const double width = x;

  auto& pos = pos_scratch_;
  double height = 0.0;
  if (grid_) {
    auto& row_y = row_y_scratch_;
    double y = 0.0;
    bool first_row = true;
    for (int r = 0; r < nrows_; ++r) {
      if (row_present_[static_cast<std::size_t>(r)] == 0) continue;
      if (!first_row) y += spacing_;
      first_row = false;
      row_y[static_cast<std::size_t>(r)] = y;
      y += row_height_[static_cast<std::size_t>(r)];
    }
    height = y;

    for (std::size_t cell = 0; cell < cell_stack_.size(); ++cell) {
      if (cell_present_[cell] == 0) continue;
      const int row = static_cast<int>(cell) / ncols_;
      double cy = row_y[static_cast<std::size_t>(row)];
      for (int id : cell_stack_[cell]) {
        const auto& node = nodes_[static_cast<std::size_t>(id)];
        if (!node.present) continue;
        const double cx =
            col_x[static_cast<std::size_t>(node.col)] +
            (col_width_[static_cast<std::size_t>(node.col)] - node.w) / 2.0;
        pos[static_cast<std::size_t>(id)] = {cx, cy};
        cy += node.h + spacing_;
      }
    }
  } else {
    double max_height = 0.0;
    for (int c = 0; c < ncols_; ++c) {
      max_height = std::max(max_height, col_height_[static_cast<std::size_t>(c)]);
    }
    height = max_height;
    for (int c = 0; c < ncols_; ++c) {
      double cy =
          (max_height - col_height_[static_cast<std::size_t>(c)]) / 2.0;
      for (int id : col_stack_[static_cast<std::size_t>(c)]) {
        const auto& node = nodes_[static_cast<std::size_t>(id)];
        if (!node.present) continue;
        const double cx =
            col_x[static_cast<std::size_t>(c)] +
            (col_width_[static_cast<std::size_t>(c)] - node.w) / 2.0;
        pos[static_cast<std::size_t>(id)] = {cx, cy};
        cy += node.h + spacing_;
      }
    }
  }

  std::vector<PlacedBlock> blocks;
  blocks.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& node = nodes_[i];
    if (!node.present) continue;
    blocks.push_back(PlacedBlock{node.kind, node.index, pos[i].first,
                                 pos[i].second, node.w, node.h});
  }
  return Floorplan(std::move(blocks), width, height);
}

Floorplan FloorplanSession::place_simplex() const {
  std::vector<Floorplanner::Item> items;
  items.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    if (!node.present) continue;
    items.push_back(Floorplanner::Item{node.kind, node.index, node.row,
                                       node.col, node.sub, &node.shape, node.w,
                                       node.h});
  }
  return solve_simplex_lp(placement_, items, spacing_);
}

const Floorplan& FloorplanSession::solve() {
  if (solved_) {
    ++stats_.cached_solves;
    return last_;
  }
  ++stats_.solves;
  // A solve under open speculative frames patches (or fully re-derives) the
  // aggregates those frames journaled; mark them so pop_shapes() knows the
  // cached solve is stale and whether surgical restoration is still valid.
  for (std::size_t i = 0; i < journal_depth_; ++i) {
    journal_[i].solved_through = true;
    if (all_dirty_) journal_[i].solved_full = true;
  }
  if (all_dirty_) {
    rederive_all_init_aggregates();
    ++stats_.full_solves;
  } else {
    patch_init_aggregates();
    ++stats_.incremental_solves;
  }
  all_dirty_ = false;
  dirty_nodes_.clear();

  // Working state for this assignment: sizing starts every present block
  // from its stage-1 dimensions, exactly like a one-shot solve.
  for (auto& node : nodes_) {
    node.w = node.init_w;
    node.h = node.init_h;
  }
  col_width_ = init_col_width_;
  if (grid_) {
    cell_height_ = init_cell_height_;
    row_height_ = init_row_height_;
  } else {
    col_height_ = init_col_height_;
  }
  if (options_.sizing_passes > 0) run_sizing_descent();

  last_ = options_.engine == Floorplanner::Engine::kSimplexLp
              ? place_simplex()
              : place_band();
  solved_ = true;
  return last_;
}

}  // namespace sunmap::fplan
