#include "fplan/lp.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace sunmap::fplan {

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
  }
  return "?";
}

LinearProgram::LinearProgram(int num_vars) : num_vars_(num_vars) {
  if (num_vars < 1) {
    throw std::invalid_argument("LinearProgram: need at least one variable");
  }
  objective_.assign(static_cast<std::size_t>(num_vars), 0.0);
}

void LinearProgram::set_objective(int var, double coefficient) {
  objective_.at(static_cast<std::size_t>(var)) = coefficient;
}

void LinearProgram::add_constraint(std::vector<std::pair<int, double>> terms,
                                   Relation relation, double rhs) {
  for (const auto& [var, coeff] : terms) {
    if (var < 0 || var >= num_vars_) {
      throw std::out_of_range("LinearProgram: constraint variable index");
    }
    (void)coeff;
  }
  constraints_.push_back(Constraint{std::move(terms), relation, rhs});
}

namespace {

/// Dense simplex tableau. Columns: structural vars, then slack/surplus vars,
/// then artificial vars, then RHS. One row per constraint plus the objective
/// row kept implicitly via reduced costs.
class Tableau {
 public:
  Tableau(const LinearProgram& lp, double eps) : eps_(eps) {
    const int m = lp.num_constraints();
    const int n = lp.num_vars();

    // Count slack/surplus and artificial columns.
    int num_slack = 0;
    for (const auto& c : lp.constraints()) {
      if (c.relation != LinearProgram::Relation::kEq) ++num_slack;
    }
    num_structural_ = n;
    slack_begin_ = n;
    art_begin_ = n + num_slack;
    cols_ = art_begin_ + m;  // at most one artificial per row
    rows_ = m;

    a_.assign(static_cast<std::size_t>(rows_),
              std::vector<double>(static_cast<std::size_t>(cols_ + 1), 0.0));
    basis_.assign(static_cast<std::size_t>(rows_), -1);

    int slack_idx = slack_begin_;
    num_artificials_ = 0;
    for (int i = 0; i < m; ++i) {
      const auto& c = lp.constraints()[static_cast<std::size_t>(i)];
      auto& row = a_[static_cast<std::size_t>(i)];
      for (const auto& [var, coeff] : c.terms) {
        row[static_cast<std::size_t>(var)] += coeff;
      }
      row[static_cast<std::size_t>(cols_)] = c.rhs;

      // Normalise to rhs >= 0 (flips the relation).
      auto rel = c.relation;
      if (row[static_cast<std::size_t>(cols_)] < 0.0) {
        for (int j = 0; j <= cols_; ++j) {
          row[static_cast<std::size_t>(j)] = -row[static_cast<std::size_t>(j)];
        }
        if (rel == LinearProgram::Relation::kLe) {
          rel = LinearProgram::Relation::kGe;
        } else if (rel == LinearProgram::Relation::kGe) {
          rel = LinearProgram::Relation::kLe;
        }
      }

      switch (rel) {
        case LinearProgram::Relation::kLe:
          row[static_cast<std::size_t>(slack_idx)] = 1.0;
          basis_[static_cast<std::size_t>(i)] = slack_idx;
          ++slack_idx;
          break;
        case LinearProgram::Relation::kGe:
          row[static_cast<std::size_t>(slack_idx)] = -1.0;
          ++slack_idx;
          [[fallthrough]];
        case LinearProgram::Relation::kEq: {
          const int art = art_begin_ + i;
          row[static_cast<std::size_t>(art)] = 1.0;
          basis_[static_cast<std::size_t>(i)] = art;
          ++num_artificials_;
          break;
        }
      }
    }
  }

  /// Minimises the given full-length cost vector (size cols_) from the
  /// current basis. Returns false if unbounded.
  bool optimize(const std::vector<double>& cost, bool forbid_artificials) {
    for (;;) {
      // Reduced costs: c_j - c_B * B^-1 A_j, computed directly from the
      // tableau (which is already B^-1 A).
      int entering = -1;
      for (int j = 0; j < cols_; ++j) {
        if (forbid_artificials && j >= art_begin_) continue;
        if (is_basic(j)) continue;
        double rc = cost[static_cast<std::size_t>(j)];
        for (int i = 0; i < rows_; ++i) {
          rc -= cost[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] *
                a_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        }
        if (rc < -eps_) {
          entering = j;  // Bland: first improving column.
          break;
        }
      }
      if (entering < 0) return true;  // optimal

      // Ratio test, Bland's rule on ties (smallest basis variable index).
      int leaving = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < rows_; ++i) {
        const double aij =
            a_[static_cast<std::size_t>(i)][static_cast<std::size_t>(entering)];
        if (aij > eps_) {
          const double ratio =
              a_[static_cast<std::size_t>(i)][static_cast<std::size_t>(cols_)] /
              aij;
          if (ratio < best_ratio - eps_ ||
              (std::abs(ratio - best_ratio) <= eps_ &&
               (leaving < 0 ||
                basis_[static_cast<std::size_t>(i)] <
                    basis_[static_cast<std::size_t>(leaving)]))) {
            best_ratio = ratio;
            leaving = i;
          }
        }
      }
      if (leaving < 0) return false;  // unbounded
      pivot(leaving, entering);
    }
  }

  void pivot(int row, int col) {
    auto& prow = a_[static_cast<std::size_t>(row)];
    const double p = prow[static_cast<std::size_t>(col)];
    for (int j = 0; j <= cols_; ++j) {
      prow[static_cast<std::size_t>(j)] /= p;
    }
    for (int i = 0; i < rows_; ++i) {
      if (i == row) continue;
      auto& r = a_[static_cast<std::size_t>(i)];
      const double f = r[static_cast<std::size_t>(col)];
      if (std::abs(f) <= 0.0) continue;
      for (int j = 0; j <= cols_; ++j) {
        r[static_cast<std::size_t>(j)] -= f * prow[static_cast<std::size_t>(j)];
      }
    }
    basis_[static_cast<std::size_t>(row)] = col;
  }

  [[nodiscard]] bool is_basic(int col) const {
    for (int b : basis_) {
      if (b == col) return true;
    }
    return false;
  }

  /// Drives artificial variables out of the basis after phase 1 where
  /// possible (degenerate rows); rows that cannot pivot are redundant.
  void expel_artificials() {
    for (int i = 0; i < rows_; ++i) {
      if (basis_[static_cast<std::size_t>(i)] < art_begin_) continue;
      for (int j = 0; j < art_begin_; ++j) {
        if (std::abs(a_[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(j)]) > eps_) {
          pivot(i, j);
          break;
        }
      }
    }
  }

  [[nodiscard]] double value_of(int col) const {
    for (int i = 0; i < rows_; ++i) {
      if (basis_[static_cast<std::size_t>(i)] == col) {
        return a_[static_cast<std::size_t>(i)][static_cast<std::size_t>(cols_)];
      }
    }
    return 0.0;
  }

  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int art_begin() const { return art_begin_; }
  [[nodiscard]] int num_structural() const { return num_structural_; }
  [[nodiscard]] int num_artificials() const { return num_artificials_; }

 private:
  double eps_;
  int rows_ = 0;
  int cols_ = 0;
  int num_structural_ = 0;
  int slack_begin_ = 0;
  int art_begin_ = 0;
  int num_artificials_ = 0;
  std::vector<std::vector<double>> a_;
  std::vector<int> basis_;
};

}  // namespace

LpSolution solve(const LinearProgram& lp, double eps) {
  LpSolution solution;

  Tableau tableau(lp, eps);

  // Phase 1: minimise the sum of artificial variables.
  if (tableau.num_artificials() > 0) {
    std::vector<double> phase1(static_cast<std::size_t>(tableau.cols()), 0.0);
    for (int j = tableau.art_begin(); j < tableau.cols(); ++j) {
      phase1[static_cast<std::size_t>(j)] = 1.0;
    }
    if (!tableau.optimize(phase1, /*forbid_artificials=*/false)) {
      // Phase-1 objective is bounded below by 0; unbounded cannot happen.
      throw std::logic_error("simplex: phase 1 reported unbounded");
    }
    double infeas = 0.0;
    for (int j = tableau.art_begin(); j < tableau.cols(); ++j) {
      infeas += tableau.value_of(j);
    }
    if (infeas > 1e-6) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    tableau.expel_artificials();
  }

  // Phase 2: original objective, artificials locked out.
  std::vector<double> cost(static_cast<std::size_t>(tableau.cols()), 0.0);
  for (int j = 0; j < lp.num_vars(); ++j) {
    cost[static_cast<std::size_t>(j)] = lp.objective()[static_cast<std::size_t>(j)];
  }
  if (!tableau.optimize(cost, /*forbid_artificials=*/true)) {
    solution.status = LpStatus::kUnbounded;
    return solution;
  }

  solution.status = LpStatus::kOptimal;
  solution.values.resize(static_cast<std::size_t>(lp.num_vars()));
  for (int j = 0; j < lp.num_vars(); ++j) {
    solution.values[static_cast<std::size_t>(j)] = tableau.value_of(j);
  }
  solution.objective = 0.0;
  for (int j = 0; j < lp.num_vars(); ++j) {
    solution.objective += lp.objective()[static_cast<std::size_t>(j)] *
                          solution.values[static_cast<std::size_t>(j)];
  }
  return solution;
}

}  // namespace sunmap::fplan
