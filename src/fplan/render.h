#pragma once

#include <functional>
#include <string>

#include "fplan/floorplan.h"

namespace sunmap::fplan {

/// Renders a floorplan as ASCII art (cf. the butterfly floorplan sketch of
/// Fig 10(b)): each block is drawn as a box containing its label, scaled to
/// `width_chars` characters across the chip width.
///
/// `label` maps a placed block to a short name (e.g. the core name or
/// "sw3"); labels are clipped to the box width.
std::string render_ascii(
    const Floorplan& floorplan,
    const std::function<std::string(const PlacedBlock&)>& label,
    int width_chars = 72);

/// Convenience renderer labelling cores "c<index>" and switches "S<index>".
std::string render_ascii(const Floorplan& floorplan, int width_chars = 72);

}  // namespace sunmap::fplan
