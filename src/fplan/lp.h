#pragma once

#include <utility>
#include <vector>

namespace sunmap::fplan {

/// Status of a linear-program solve.
enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

const char* to_string(LpStatus status);

/// Result of solving a LinearProgram: variable values and objective are only
/// meaningful when status == kOptimal.
struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
};

/// A linear program over non-negative variables:
///
///   minimize    c^T x
///   subject to  a_i^T x (<= | >= | ==) b_i   for each constraint i
///               x >= 0
///
/// This is the solver behind the LP-based floorplanner of §5 (paper ref
/// [21]); block positions and chip width/height are naturally non-negative,
/// so the x >= 0 restriction costs nothing there.
class LinearProgram {
 public:
  enum class Relation { kLe, kGe, kEq };

  /// Sparse constraint row: (variable index, coefficient) terms.
  struct Constraint {
    std::vector<std::pair<int, double>> terms;
    Relation relation = Relation::kLe;
    double rhs = 0.0;
  };

  explicit LinearProgram(int num_vars);

  /// Sets the objective coefficient of one variable (default 0).
  void set_objective(int var, double coefficient);

  /// Adds a constraint; variable indices must be in range.
  void add_constraint(std::vector<std::pair<int, double>> terms,
                      Relation relation, double rhs);

  [[nodiscard]] int num_vars() const { return num_vars_; }
  [[nodiscard]] int num_constraints() const {
    return static_cast<int>(constraints_.size());
  }
  [[nodiscard]] const std::vector<double>& objective() const {
    return objective_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }

 private:
  int num_vars_;
  std::vector<double> objective_;
  std::vector<Constraint> constraints_;
};

/// Solves the program with the two-phase (primal) simplex method using
/// Bland's rule, so it terminates on degenerate programs. Suitable for the
/// small dense programs floorplanning produces (tens of variables, hundreds
/// of constraints).
LpSolution solve(const LinearProgram& lp, double eps = 1e-9);

}  // namespace sunmap::fplan
