#include "fplan/floorplanner.h"

#include <utility>

#include "fplan/session.h"

namespace sunmap::fplan {

Floorplanner::Floorplanner() : options_{} {}

Floorplanner::Floorplanner(Options options) : options_(std::move(options)) {}

Floorplan Floorplanner::place(
    const topo::RelativePlacement& placement,
    const std::vector<std::optional<BlockShape>>& core_shapes,
    const std::vector<BlockShape>& switch_shapes) const {
  // A one-shot place is a session solved once with its construction-time
  // shapes: the same staged code path the incremental callers drive, which
  // is what makes incremental results bit-identical to from-scratch ones.
  FloorplanSession session(options_, placement, core_shapes, switch_shapes);
  return session.solve();
}

const char* to_string(Floorplanner::Engine engine) {
  switch (engine) {
    case Floorplanner::Engine::kLongestPath:
      return "lp";
    case Floorplanner::Engine::kSimplexLp:
      return "simplex";
  }
  return "?";
}

}  // namespace sunmap::fplan
