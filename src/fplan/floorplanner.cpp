#include "fplan/floorplanner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "fplan/lp.h"

namespace sunmap::fplan {

namespace {

using Mode = topo::RelativePlacement::Mode;

}  // namespace

Floorplanner::Floorplanner() : options_{} {}

Floorplanner::Floorplanner(Options options) : options_(std::move(options)) {}

std::vector<Floorplanner::Item> Floorplanner::resolve_items(
    const topo::RelativePlacement& placement,
    const std::vector<std::optional<BlockShape>>& core_shapes,
    const std::vector<BlockShape>& switch_shapes) const {
  std::vector<Item> items;
  items.reserve(placement.items.size());
  for (const auto& it : placement.items) {
    const BlockShape* shape = nullptr;
    PlacedBlock::Kind kind;
    if (it.kind == topo::RelativePlacement::Item::Kind::kCore) {
      kind = PlacedBlock::Kind::kCore;
      const auto& maybe =
          core_shapes.at(static_cast<std::size_t>(it.index));
      if (!maybe) continue;  // unused slot: no block
      shape = &*maybe;
    } else {
      kind = PlacedBlock::Kind::kSwitch;
      shape = &switch_shapes.at(static_cast<std::size_t>(it.index));
    }
    Item item{kind, it.index, it.row, it.col, it.sub, shape, 0.0, 0.0};
    if (shape->soft) {
      item.w = std::sqrt(shape->area_mm2);
      item.h = item.w;
    } else {
      item.w = shape->width_mm;
      item.h = shape->height_mm;
    }
    items.push_back(item);
  }
  return items;
}

namespace {

/// Band-based layout shared by both engines' geometry: column bands along x
/// and, for grid mode, row bands along y with per-cell stacking. Equivalent
/// to the longest-path solution of the relative-position constraint graph.
struct Layout {
  std::vector<std::pair<double, double>> pos;  // (x, y) per item
  double width = 0.0;
  double height = 0.0;
};

Layout compute_layout(const topo::RelativePlacement& placement,
                      const std::vector<Floorplanner::Item>& items,
                      double spacing) {
  Layout layout;
  layout.pos.resize(items.size());

  const int ncols = std::max(placement.num_cols, 1);
  const int nrows = std::max(placement.num_rows, 1);

  // Group item indices per (col) and per (row, col) cell.
  std::vector<std::vector<std::size_t>> by_col(
      static_cast<std::size_t>(ncols));
  for (std::size_t i = 0; i < items.size(); ++i) {
    by_col.at(static_cast<std::size_t>(items[i].col)).push_back(i);
  }

  // Column widths.
  std::vector<double> col_width(static_cast<std::size_t>(ncols), 0.0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    auto& w = col_width[static_cast<std::size_t>(items[i].col)];
    w = std::max(w, items[i].w);
  }

  // Column x origins; spacing only between non-empty columns.
  std::vector<double> col_x(static_cast<std::size_t>(ncols), 0.0);
  double x = 0.0;
  bool first_col = true;
  for (int c = 0; c < ncols; ++c) {
    if (by_col[static_cast<std::size_t>(c)].empty()) continue;
    if (!first_col) x += spacing;
    first_col = false;
    col_x[static_cast<std::size_t>(c)] = x;
    x += col_width[static_cast<std::size_t>(c)];
  }
  layout.width = x;

  if (placement.mode == Mode::kGrid) {
    // Cell stack heights -> row band heights.
    std::map<std::pair<int, int>, std::vector<std::size_t>> cells;
    for (std::size_t i = 0; i < items.size(); ++i) {
      cells[{items[i].row, items[i].col}].push_back(i);
    }
    for (auto& [key, stack] : cells) {
      std::sort(stack.begin(), stack.end(), [&](std::size_t a, std::size_t b) {
        return items[a].sub < items[b].sub;
      });
    }
    std::vector<double> row_height(static_cast<std::size_t>(nrows), 0.0);
    for (const auto& [key, stack] : cells) {
      double h = 0.0;
      for (std::size_t k = 0; k < stack.size(); ++k) {
        if (k > 0) h += spacing;
        h += items[stack[k]].h;
      }
      auto& rh = row_height[static_cast<std::size_t>(key.first)];
      rh = std::max(rh, h);
    }
    std::vector<double> row_y(static_cast<std::size_t>(nrows), 0.0);
    double y = 0.0;
    bool first_row = true;
    for (int r = 0; r < nrows; ++r) {
      bool used = false;
      for (const auto& [key, stack] : cells) {
        if (key.first == r && !stack.empty()) {
          used = true;
          break;
        }
      }
      if (!used) continue;
      if (!first_row) y += spacing;
      first_row = false;
      row_y[static_cast<std::size_t>(r)] = y;
      y += row_height[static_cast<std::size_t>(r)];
    }
    layout.height = y;

    for (const auto& [key, stack] : cells) {
      double cy = row_y[static_cast<std::size_t>(key.first)];
      for (std::size_t idx : stack) {
        const auto& item = items[idx];
        const double cx =
            col_x[static_cast<std::size_t>(item.col)] +
            (col_width[static_cast<std::size_t>(item.col)] - item.w) / 2.0;
        layout.pos[idx] = {cx, cy};
        cy += item.h + spacing;
      }
    }
  } else {
    // Columns mode: stack each column bottom-up, then centre it vertically.
    double max_height = 0.0;
    std::vector<double> col_height(static_cast<std::size_t>(ncols), 0.0);
    for (int c = 0; c < ncols; ++c) {
      auto& column = by_col[static_cast<std::size_t>(c)];
      std::sort(column.begin(), column.end(),
                [&](std::size_t a, std::size_t b) {
                  return items[a].row < items[b].row;
                });
      double h = 0.0;
      for (std::size_t k = 0; k < column.size(); ++k) {
        if (k > 0) h += spacing;
        h += items[column[k]].h;
      }
      col_height[static_cast<std::size_t>(c)] = h;
      max_height = std::max(max_height, h);
    }
    layout.height = max_height;
    for (int c = 0; c < ncols; ++c) {
      const auto& column = by_col[static_cast<std::size_t>(c)];
      double cy =
          (max_height - col_height[static_cast<std::size_t>(c)]) / 2.0;
      for (std::size_t idx : column) {
        const auto& item = items[idx];
        const double cx =
            col_x[static_cast<std::size_t>(item.col)] +
            (col_width[static_cast<std::size_t>(item.col)] - item.w) / 2.0;
        layout.pos[idx] = {cx, cy};
        cy += item.h + spacing;
      }
    }
  }
  return layout;
}

}  // namespace

std::pair<double, double> Floorplanner::extents(
    const topo::RelativePlacement& placement,
    const std::vector<Item>& items) const {
  const auto layout = compute_layout(placement, items, options_.spacing_mm);
  return {layout.width, layout.height};
}

void Floorplanner::size_soft_blocks(const topo::RelativePlacement& placement,
                                    std::vector<Item>& items) const {
  for (int pass = 0; pass < options_.sizing_passes; ++pass) {
    for (auto& item : items) {
      if (!item.shape->soft) continue;
      double best_area = std::numeric_limits<double>::infinity();
      double best_w = item.w;
      double best_h = item.h;
      std::vector<double> candidates = options_.aspect_candidates;
      candidates.push_back(item.shape->min_aspect);
      candidates.push_back(item.shape->max_aspect);
      for (double aspect : candidates) {
        const double clipped = std::clamp(aspect, item.shape->min_aspect,
                                          item.shape->max_aspect);
        item.w = std::sqrt(item.shape->area_mm2 * clipped);
        item.h = std::sqrt(item.shape->area_mm2 / clipped);
        const auto [w, h] = extents(placement, items);
        const double chip = w * h;
        if (chip < best_area - 1e-12) {
          best_area = chip;
          best_w = item.w;
          best_h = item.h;
        }
      }
      item.w = best_w;
      item.h = best_h;
    }
  }
}

Floorplan Floorplanner::place_longest_path(
    const topo::RelativePlacement& placement,
    const std::vector<Item>& items) const {
  const auto layout = compute_layout(placement, items, options_.spacing_mm);
  std::vector<PlacedBlock> blocks;
  blocks.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    blocks.push_back(PlacedBlock{items[i].kind, items[i].index,
                                 layout.pos[i].first, layout.pos[i].second,
                                 items[i].w, items[i].h});
  }
  return Floorplan(std::move(blocks), layout.width, layout.height);
}

Floorplan Floorplanner::place_simplex(
    const topo::RelativePlacement& placement,
    const std::vector<Item>& items) const {
  // Variables: x_i, y_i per item, then W, H. Minimise W + H subject to the
  // relative-position ordering constraints. This is the paper's LP
  // formulation [21]; it attains the same chip extents as the band layout.
  const int n = static_cast<int>(items.size());
  if (n == 0) return Floorplan({}, 0.0, 0.0);
  const double spacing = options_.spacing_mm;
  LinearProgram lp(2 * n + 2);
  const int var_w = 2 * n;
  const int var_h = 2 * n + 1;
  lp.set_objective(var_w, 1.0);
  lp.set_objective(var_h, 1.0);

  auto var_x = [](int i) { return 2 * i; };
  auto var_y = [](int i) { return 2 * i + 1; };

  // Boundary constraints: x_i + w_i <= W, y_i + h_i <= H.
  for (int i = 0; i < n; ++i) {
    lp.add_constraint({{var_x(i), 1.0}, {var_w, -1.0}},
                      LinearProgram::Relation::kLe,
                      -items[static_cast<std::size_t>(i)].w);
    lp.add_constraint({{var_y(i), 1.0}, {var_h, -1.0}},
                      LinearProgram::Relation::kLe,
                      -items[static_cast<std::size_t>(i)].h);
  }

  // Ordering constraints between consecutive non-empty columns.
  const int ncols = std::max(placement.num_cols, 1);
  std::vector<std::vector<int>> by_col(static_cast<std::size_t>(ncols));
  for (int i = 0; i < n; ++i) {
    by_col.at(static_cast<std::size_t>(items[static_cast<std::size_t>(i)].col))
        .push_back(i);
  }
  int prev_col = -1;
  for (int c = 0; c < ncols; ++c) {
    if (by_col[static_cast<std::size_t>(c)].empty()) continue;
    if (prev_col >= 0) {
      for (int a : by_col[static_cast<std::size_t>(prev_col)]) {
        for (int b : by_col[static_cast<std::size_t>(c)]) {
          // x_b - x_a >= w_a + spacing
          lp.add_constraint({{var_x(b), 1.0}, {var_x(a), -1.0}},
                            LinearProgram::Relation::kGe,
                            items[static_cast<std::size_t>(a)].w + spacing);
        }
      }
    }
    prev_col = c;
  }

  if (placement.mode == Mode::kGrid) {
    // Row ordering plus intra-cell stacking.
    const int nrows = std::max(placement.num_rows, 1);
    std::vector<std::vector<int>> by_row(static_cast<std::size_t>(nrows));
    for (int i = 0; i < n; ++i) {
      by_row
          .at(static_cast<std::size_t>(items[static_cast<std::size_t>(i)].row))
          .push_back(i);
    }
    int prev_row = -1;
    for (int r = 0; r < nrows; ++r) {
      if (by_row[static_cast<std::size_t>(r)].empty()) continue;
      if (prev_row >= 0) {
        for (int a : by_row[static_cast<std::size_t>(prev_row)]) {
          for (int b : by_row[static_cast<std::size_t>(r)]) {
            lp.add_constraint({{var_y(b), 1.0}, {var_y(a), -1.0}},
                              LinearProgram::Relation::kGe,
                              items[static_cast<std::size_t>(a)].h + spacing);
          }
        }
      }
      prev_row = r;
      // Stacking within each cell of this row.
      for (int a : by_row[static_cast<std::size_t>(r)]) {
        for (int b : by_row[static_cast<std::size_t>(r)]) {
          const auto& ia = items[static_cast<std::size_t>(a)];
          const auto& ib = items[static_cast<std::size_t>(b)];
          if (ia.col == ib.col && ia.sub < ib.sub) {
            lp.add_constraint({{var_y(b), 1.0}, {var_y(a), -1.0}},
                              LinearProgram::Relation::kGe, ia.h + spacing);
          }
        }
      }
    }
  } else {
    // Columns mode: stacking within each column by row order.
    for (int c = 0; c < ncols; ++c) {
      auto column = by_col[static_cast<std::size_t>(c)];
      std::sort(column.begin(), column.end(), [&](int a, int b) {
        return items[static_cast<std::size_t>(a)].row <
               items[static_cast<std::size_t>(b)].row;
      });
      for (std::size_t k = 0; k + 1 < column.size(); ++k) {
        lp.add_constraint(
            {{var_y(column[k + 1]), 1.0}, {var_y(column[k]), -1.0}},
            LinearProgram::Relation::kGe,
            items[static_cast<std::size_t>(column[k])].h + spacing);
      }
    }
  }

  const auto solution = solve(lp);
  if (solution.status != LpStatus::kOptimal) {
    throw std::logic_error("Floorplanner: LP did not reach optimality");
  }

  std::vector<PlacedBlock> blocks;
  blocks.reserve(items.size());
  for (int i = 0; i < n; ++i) {
    blocks.push_back(
        PlacedBlock{items[static_cast<std::size_t>(i)].kind,
                    items[static_cast<std::size_t>(i)].index,
                    solution.values[static_cast<std::size_t>(var_x(i))],
                    solution.values[static_cast<std::size_t>(var_y(i))],
                    items[static_cast<std::size_t>(i)].w,
                    items[static_cast<std::size_t>(i)].h});
  }
  return Floorplan(std::move(blocks),
                   solution.values[static_cast<std::size_t>(var_w)],
                   solution.values[static_cast<std::size_t>(var_h)]);
}

Floorplan Floorplanner::place(
    const topo::RelativePlacement& placement,
    const std::vector<std::optional<BlockShape>>& core_shapes,
    const std::vector<BlockShape>& switch_shapes) const {
  auto items = resolve_items(placement, core_shapes, switch_shapes);
  size_soft_blocks(placement, items);
  if (options_.engine == Engine::kSimplexLp) {
    return place_simplex(placement, items);
  }
  return place_longest_path(placement, items);
}

}  // namespace sunmap::fplan
