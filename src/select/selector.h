#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mapping/mapper.h"
#include "mapping/sim_eval.h"
#include "topo/library.h"

namespace sunmap::select {

/// One topology's outcome in a selection run: the mapping produced by phase
/// 1 and its evaluation — one row of the tables in Figs 3(d), 6, 7(b).
struct TopologyCandidate {
  const topo::Topology* topology = nullptr;
  mapping::MappingResult result;
  /// Flit-level simulation of this candidate under its application trace —
  /// contention-aware delay next to the analytical number. Only the
  /// finalist tier fills this (ExplorationRequest::sim_finalists / CLI
  /// --sim-finalists); nullopt means the cell was not simulated.
  std::optional<mapping::SimScore> sim;

  [[nodiscard]] bool feasible() const { return result.eval.feasible(); }
};

/// Outcome of phase 2: all candidates plus the index of the chosen one
/// (-1 when no topology yields a feasible mapping).
struct SelectionReport {
  std::vector<TopologyCandidate> candidates;
  int best_index = -1;

  [[nodiscard]] const TopologyCandidate* best() const {
    return best_index >= 0
               ? &candidates[static_cast<std::size_t>(best_index)]
               : nullptr;
  }
};

/// Phase 1 + 2 of the SUNMAP flow: maps the application onto every topology
/// in the library under the configured routing function and objective, then
/// selects the best feasible mapping by objective cost.
///
/// A thin single-point wrapper over select::DesignSpaceExplorer — sweeps
/// across objectives/routings/constraints go through the explorer directly
/// (see select/explorer.h), which reuses one evaluation context per
/// topology across the whole grid.
class TopologySelector {
 public:
  explicit TopologySelector(mapping::MapperConfig config = {})
      : mapper_(std::move(config)) {}

  /// Maps onto every provided topology and picks the best feasible one.
  [[nodiscard]] SelectionReport select(
      const mapping::CoreGraph& app,
      const std::vector<std::unique_ptr<topo::Topology>>& library) const;

  [[nodiscard]] const mapping::Mapper& mapper() const { return mapper_; }

 private:
  mapping::Mapper mapper_;
};

/// A point in the area/power plane (Fig 9(b)).
struct ParetoPoint {
  double area_mm2 = 0.0;
  double power_mw = 0.0;
};

/// Extracts the Pareto frontier (minimising both coordinates) from a set of
/// explored mappings, sorted by increasing area. Dominated and duplicate
/// points are dropped.
std::vector<ParetoPoint> pareto_frontier(
    const std::vector<std::pair<double, double>>& area_power);

}  // namespace sunmap::select
