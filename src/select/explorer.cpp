#include "select/explorer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include "fault/fault.h"
#include "mapping/eval_context.h"
#include "mapping/sim_eval.h"

namespace sunmap::select {

namespace {

std::string format_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

/// Runs `worker` on this thread plus num_workers - 1 spawned ones and
/// joins — the shared scaffold of the buffered and streaming sweep paths
/// (the worker captures its own work queue and error slot).
void run_worker_pool(int num_workers, const std::function<void()>& worker) {
  if (num_workers <= 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(num_workers - 1));
  for (int i = 1; i < num_workers; ++i) pool.emplace_back(worker);
  worker();
  for (auto& thread : pool) thread.join();
}

/// The distinct (objective, weights_index) groups of a request, in axis
/// order — the single grouping rule shared by WinnerTracker, the finalist
/// tier, and the sim re-rank: a swept kWeighted objective splits per weight
/// set (costs under different weight vectors are not comparable), the plain
/// objectives pool across weight sets (weights_index == -1).
std::vector<std::pair<mapping::Objective, int>> objective_groups(
    const ExplorationRequest& request) {
  const auto objectives_axis =
      request.objectives.empty()
          ? std::vector<mapping::Objective>{request.base.objective}
          : request.objectives;
  const int num_weight_sets =
      static_cast<int>(std::max<std::size_t>(1, request.weight_sets.size()));
  std::vector<std::pair<mapping::Objective, int>> groups;
  for (const auto objective : objectives_axis) {
    const int splits =
        objective == mapping::Objective::kWeighted ? num_weight_sets : 1;
    for (int w = 0; w < splits; ++w) {
      const int weights_index =
          objective == mapping::Objective::kWeighted && num_weight_sets > 1
              ? w
              : -1;
      const auto group = std::make_pair(objective, weights_index);
      if (std::find(groups.begin(), groups.end(), group) == groups.end()) {
        groups.push_back(group);
      }
    }
  }
  return groups;
}

/// One finalist cell: a feasible (point, topology) coordinate with its
/// analytical mapping cost (the prefilter key).
struct FinalistCell {
  double cost = 0.0;
  std::size_t point = 0;
  std::size_t topology = 0;
};

/// The analytical prefilter: the top-K feasible cells of one objective
/// group by mapping cost, ties to the earlier grid coordinate.
std::vector<FinalistCell> group_finalists(
    const ExplorationRequest& request, const ExplorationReport& report,
    mapping::Objective objective, int weights_index) {
  std::vector<FinalistCell> cells;
  for (std::size_t p = 0; p < report.results.size(); ++p) {
    const auto& result = report.results[p];
    if (result.point.config.objective != objective) continue;
    if (weights_index >= 0 && result.point.weights_index != weights_index) {
      continue;
    }
    for (std::size_t t = 0; t < result.selection.candidates.size(); ++t) {
      const auto& candidate = result.selection.candidates[t];
      if (!candidate.feasible()) continue;
      cells.push_back(FinalistCell{candidate.result.eval.cost, p, t});
    }
  }
  std::sort(cells.begin(), cells.end(),
            [](const FinalistCell& a, const FinalistCell& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              if (a.point != b.point) return a.point < b.point;
              return a.topology < b.topology;
            });
  cells.resize(std::min(cells.size(),
                        static_cast<std::size_t>(request.sim_finalists)));
  return cells;
}

}  // namespace

void simulate_finalists(const ExplorationRequest& request,
                        ExplorationReport& report) {
  if (request.app == nullptr) {
    throw std::invalid_argument("simulate_finalists: request has no app");
  }
  if (request.sim_finalists <= 0) return;
  const mapping::CoreGraph& app = *request.app;

  // Union of every group's top-K, in ascending (point, topology) order —
  // the deterministic work list. std::set both dedups cells shared between
  // groups and fixes the order.
  std::set<std::pair<std::size_t, std::size_t>> finalist_set;
  for (const auto& [objective, weights_index] : objective_groups(request)) {
    for (const auto& cell :
         group_finalists(request, report, objective, weights_index)) {
      finalist_set.emplace(cell.point, cell.topology);
    }
  }
  const std::vector<std::pair<std::size_t, std::size_t>> finalists(
      finalist_set.begin(), finalist_set.end());
  if (finalists.empty()) return;

  // Deterministic worker pool: each worker owns a SimEvaluator (per-thread
  // layout/simulator caches — a SimEvaluator instance is not thread-safe)
  // and pulls cells off a shared cursor. Every score() is reseeded and
  // assignment-independent, and every result lands in its own slot, so the
  // merge below — ascending cell order — is bit-identical to the serial
  // tier no matter how cells were interleaved across threads.
  const int num_workers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(std::max(1, request.num_threads)),
      finalists.size()));
  std::vector<std::optional<mapping::SimScore>> scores(finalists.size());
  std::atomic<std::size_t> next_cell{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const auto worker = [&]() {
    mapping::SimEvaluator evaluator(mapping::sim_tier_options(request.base));
    for (;;) {
      const std::size_t i = next_cell.fetch_add(1);
      if (i >= finalists.size()) break;
      const auto& [p, t] = finalists[i];
      try {
        const auto& candidate = report.results[p].selection.candidates[t];
        scores[i] =
            evaluator.score(app, *candidate.topology, candidate.result);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        break;
      }
    }
  };
  run_worker_pool(num_workers, worker);
  if (first_error) std::rethrow_exception(first_error);

  for (std::size_t i = 0; i < finalists.size(); ++i) {
    const auto& [p, t] = finalists[i];
    report.results[p].selection.candidates[t].sim = std::move(scores[i]);
  }
}

std::vector<ObjectiveBest> rank_sim_winners(const ExplorationRequest& request,
                                            const ExplorationReport& report) {
  std::vector<ObjectiveBest> winners;
  for (const auto& [objective, weights_index] : objective_groups(request)) {
    ObjectiveBest best;
    best.objective = objective;
    best.weights_index = weights_index;
    // Re-rank the group's own finalists (the analytical prefilter) by
    // simulated delay: drained runs outrank saturated ones (a saturated
    // latency is only a lower bound), then lower simulated latency, then
    // the analytical cost and grid coordinate as deterministic ties.
    bool have = false;
    double best_latency = 0.0;
    bool best_drained = false;
    double best_cost = 0.0;
    for (const auto& cell :
         group_finalists(request, report, objective, weights_index)) {
      const auto& candidate =
          report.results[cell.point].selection.candidates[cell.topology];
      if (!candidate.sim.has_value()) continue;
      const bool drained =
          candidate.sim->stats.status == sim::RunStatus::kDrained;
      const double latency = candidate.sim->simulated_latency_cycles;
      const bool better =
          !have ||
          (drained != best_drained
               ? drained
               : (latency != best_latency ? latency < best_latency
                                          : cell.cost < best_cost));
      if (better) {
        have = true;
        best_drained = drained;
        best_latency = latency;
        best_cost = cell.cost;
        best.point_index = static_cast<int>(cell.point);
        best.topology_index = static_cast<int>(cell.topology);
      }
    }
    winners.push_back(best);
  }
  return winners;
}

int best_feasible_index(const std::vector<TopologyCandidate>& candidates) {
  int best = -1;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& candidate = candidates[i];
    if (!candidate.feasible()) continue;
    if (best < 0 ||
        candidate.result.eval.cost <
            candidates[static_cast<std::size_t>(best)].result.eval.cost) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

WinnerTracker::WinnerTracker(const ExplorationRequest& request) {
  for (const auto& [objective, weights_index] : objective_groups(request)) {
    ObjectiveBest best;
    best.objective = objective;
    best.weights_index = weights_index;
    winners_.push_back(best);
    best_costs_.push_back(0.0);
  }
}

void WinnerTracker::consider(const PointResult& result, int point_index) {
  for (std::size_t g = 0; g < winners_.size(); ++g) {
    auto& best = winners_[g];
    if (result.point.config.objective != best.objective) continue;
    if (best.weights_index >= 0 &&
        result.point.weights_index != best.weights_index) {
      continue;
    }
    for (std::size_t t = 0; t < result.selection.candidates.size(); ++t) {
      const auto& candidate = result.selection.candidates[t];
      if (!candidate.feasible()) continue;
      if (!best.found() || candidate.result.eval.cost < best_costs_[g]) {
        best.point_index = point_index;
        best.topology_index = static_cast<int>(t);
        best_costs_[g] = candidate.result.eval.cost;
      }
    }
  }
}

std::vector<ObjectiveBest> WinnerTracker::take() {
  return std::move(winners_);
}

std::size_t ExplorationRequest::num_points() const {
  const auto axis = [](std::size_t n) { return n == 0 ? 1 : n; };
  return axis(floorplan_options.size()) * axis(fault_sets.size()) *
         axis(routings.size()) *
         axis(link_bandwidths_mbps.size()) * axis(max_areas_mm2.size()) *
         axis(weight_sets.size()) * axis(searches.size()) *
         axis(restart_counts.size()) * axis(swap_passes.size()) *
         axis(objectives.size());
}

std::string DesignPoint::label() const {
  std::string label = route::to_string(config.routing);
  label += "/";
  label += mapping::to_string(config.objective);
  label += "/bw";
  label += format_number(config.link_bandwidth_mbps);
  if (std::isfinite(config.max_area_mm2)) {
    label += "/area<=";
    label += format_number(config.max_area_mm2);
  }
  if (weights_index > 0) {
    label += "/w";
    label += std::to_string(weights_index);
  }
  if (config.search != mapping::SearchKind::kGreedySwaps) {
    label += "/";
    label += mapping::to_string(config.search);
    if (config.search == mapping::SearchKind::kRestartAnnealing) {
      label += "-x";
      label += std::to_string(config.annealing_restarts);
    }
  }
  if (swap_passes_index > 0) {
    label += "/sp";
    label += std::to_string(config.swap_passes);
  }
  if (fplan_index > 0) {
    label += "/fp-";
    label += fplan::to_string(config.floorplan.engine);
    label += "-sz";
    label += std::to_string(config.floorplan.sizing_passes);
  }
  if (!config.faults.empty()) {
    label += "/flt-";
    label += fault::describe(config.faults);
  }
  return label;
}

const TopologyCandidate* ExplorationReport::winner(
    mapping::Objective objective) const {
  for (const auto& best : winners) {
    if (best.objective != objective) continue;
    if (!best.found()) return nullptr;
    // A streamed report (ExplorationRequest::on_point) retains no per-point
    // results to point into; the winner coordinates in `winners` are still
    // valid grid coordinates for the caller's own bookkeeping.
    if (static_cast<std::size_t>(best.point_index) >= results.size()) {
      return nullptr;
    }
    return &results[static_cast<std::size_t>(best.point_index)]
                .selection
                .candidates[static_cast<std::size_t>(best.topology_index)];
  }
  return nullptr;
}

std::vector<DesignPoint> DesignSpaceExplorer::expand(
    const ExplorationRequest& request) {
  // Objective varies fastest: consecutive points then differ only in the
  // cost function, which keeps the per-topology context's evaluation class
  // stable and its metrics cache warm across the inner loop. Floorplan
  // options vary slowest: they are the one axis whose move clears the
  // floorplan cache and incremental sessions on rebind. Fault sets sit
  // just inside them: a fault-spec move clears the metrics cache and the
  // per-scenario BFS tables, the second-costliest rebind.
  std::vector<DesignPoint> points;
  points.reserve(request.num_points());
  const std::size_t nf =
      std::max<std::size_t>(1, request.floorplan_options.size());
  const std::size_t nx = std::max<std::size_t>(1, request.fault_sets.size());
  const std::size_t nr = std::max<std::size_t>(1, request.routings.size());
  const std::size_t nb =
      std::max<std::size_t>(1, request.link_bandwidths_mbps.size());
  const std::size_t na = std::max<std::size_t>(1, request.max_areas_mm2.size());
  const std::size_t nw = std::max<std::size_t>(1, request.weight_sets.size());
  const std::size_t ns = std::max<std::size_t>(1, request.searches.size());
  const std::size_t nc =
      std::max<std::size_t>(1, request.restart_counts.size());
  const std::size_t np = std::max<std::size_t>(1, request.swap_passes.size());
  const std::size_t no = std::max<std::size_t>(1, request.objectives.size());
  for (std::size_t f = 0; f < nf; ++f) {
   for (std::size_t x = 0; x < nx; ++x) {
    for (std::size_t r = 0; r < nr; ++r) {
      for (std::size_t b = 0; b < nb; ++b) {
        for (std::size_t a = 0; a < na; ++a) {
          for (std::size_t w = 0; w < nw; ++w) {
            for (std::size_t s = 0; s < ns; ++s) {
              for (std::size_t c = 0; c < nc; ++c) {
                for (std::size_t p = 0; p < np; ++p) {
                  for (std::size_t o = 0; o < no; ++o) {
                    DesignPoint point;
                    point.config = request.base;
                    if (!request.floorplan_options.empty()) {
                      point.config.floorplan = request.floorplan_options[f];
                    }
                    if (!request.fault_sets.empty()) {
                      point.config.faults = request.fault_sets[x];
                    }
                    if (!request.routings.empty()) {
                      point.config.routing = request.routings[r];
                    }
                    if (!request.link_bandwidths_mbps.empty()) {
                      point.config.link_bandwidth_mbps =
                          request.link_bandwidths_mbps[b];
                    }
                    if (!request.max_areas_mm2.empty()) {
                      point.config.max_area_mm2 = request.max_areas_mm2[a];
                    }
                    if (!request.weight_sets.empty()) {
                      point.config.weights = request.weight_sets[w];
                    }
                    if (!request.searches.empty()) {
                      point.config.search = request.searches[s];
                    }
                    if (!request.restart_counts.empty()) {
                      point.config.annealing_restarts =
                          request.restart_counts[c];
                    }
                    if (!request.swap_passes.empty()) {
                      point.config.swap_passes = request.swap_passes[p];
                    }
                    if (!request.objectives.empty()) {
                      point.config.objective = request.objectives[o];
                    }
                    point.fplan_index = static_cast<int>(f);
                    point.fault_index = static_cast<int>(x);
                    point.routing_index = static_cast<int>(r);
                    point.bandwidth_index = static_cast<int>(b);
                    point.area_index = static_cast<int>(a);
                    point.weights_index = static_cast<int>(w);
                    point.search_index = static_cast<int>(s);
                    point.restarts_index = static_cast<int>(c);
                    point.swap_passes_index = static_cast<int>(p);
                    point.objective_index = static_cast<int>(o);
                    points.push_back(std::move(point));
                  }
                }
              }
            }
          }
        }
      }
    }
   }
  }
  return points;
}

ExplorationReport DesignSpaceExplorer::explore(
    const ExplorationRequest& request) const {
  if (request.app == nullptr) {
    throw std::invalid_argument("DesignSpaceExplorer: request has no app");
  }
  if (request.library == nullptr) {
    throw std::invalid_argument("DesignSpaceExplorer: request has no library");
  }
  if (request.num_threads < 1) {
    throw std::invalid_argument(
        "DesignSpaceExplorer: num_threads must be >= 1");
  }
  const bool sub_range =
      request.point_begin != 0 ||
      request.point_end != std::numeric_limits<std::size_t>::max();
  if (sub_range && !request.on_point) {
    throw std::invalid_argument(
        "DesignSpaceExplorer: point sub-ranges require on_point streaming");
  }
  if (request.point_begin > request.point_end) {
    throw std::invalid_argument(
        "DesignSpaceExplorer: point_begin exceeds point_end");
  }
  if (request.sim_finalists < 0) {
    throw std::invalid_argument(
        "DesignSpaceExplorer: sim_finalists must be >= 0");
  }
  if (request.sim_finalists > 0 && request.on_point) {
    throw std::invalid_argument(
        "DesignSpaceExplorer: sim_finalists requires the buffered path "
        "(incompatible with on_point streaming)");
  }
  if (request.sim_rank && request.sim_finalists < 1) {
    throw std::invalid_argument(
        "DesignSpaceExplorer: sim_rank requires sim_finalists >= 1 (the "
        "analytical prefilter that picks the cells to re-rank)");
  }

  const mapping::CoreGraph& app = *request.app;
  const auto& library = *request.library;
  auto points = expand(request);

  // Bind (or verify) the externally-owned context pool. The pool's
  // contexts borrow the app and library, so serving a different pair with
  // them would evaluate the wrong problem; fail loudly instead.
  ExplorerContextPool local_pool;
  ExplorerContextPool& pool =
      request.context_pool != nullptr ? *request.context_pool : local_pool;
  if (pool.bound_app == nullptr) {
    pool.bound_app = &app;
    pool.bound_topologies.clear();
    for (const auto& topology : library) {
      pool.bound_topologies.push_back(topology.get());
    }
  } else {
    bool same = pool.bound_app == &app &&
                pool.bound_topologies.size() == library.size();
    for (std::size_t t = 0; same && t < library.size(); ++t) {
      same = pool.bound_topologies[t] == library[t].get();
    }
    if (!same) {
      throw std::invalid_argument(
          "DesignSpaceExplorer: context pool is bound to a different "
          "app/library");
    }
  }
  pool.contexts.resize(library.size());
  pool.scratches.resize(library.size());

  // Centralised validation of every expanded configuration before any work
  // runs, so a bad axis value fails the whole request up front.
  for (const auto& point : points) point.config.validate();

  // One shared mapper for the whole grid: Mapper::map(ctx) takes every
  // setting from the context's bound config, and the technology point is
  // not a sweep axis, so all points share one resolved area/power library.
  mapping::Mapper mapper(points.front().config);

  // Winner/Pareto accumulation is incremental and scalar-only, so the
  // streaming path can drop each PointResult right after the callback.
  WinnerTracker tracker(request);
  std::vector<std::pair<double, double>> area_power;
  const auto absorb = [&](const PointResult& result, int point_index) {
    tracker.consider(result, point_index);
    for (const auto& candidate : result.selection.candidates) {
      if (!candidate.feasible()) continue;
      area_power.emplace_back(candidate.result.eval.design_area_mm2,
                              candidate.result.eval.design_power_mw);
    }
  };

  ExplorationReport report;

  if (request.on_point) {
    // ---- Request-level result streaming (point-major). ----
    // One context and one scratch per topology, all alive at once and
    // re-bound per design point; a barrier per point lets the callback fire
    // in exact grid order with only O(|library|) results in memory. Each
    // context still experiences the identical build-then-rebind sequence of
    // the buffered path, so streamed results are bit-identical to it. The
    // contexts/scratches live in the (possibly caller-owned) pool.
    const std::size_t num_topologies = library.size();
    const std::size_t begin = std::min(request.point_begin, points.size());
    const std::size_t end = std::min(request.point_end, points.size());
    PointResult current;
    current.selection.candidates.resize(num_topologies);
    for (std::size_t t = 0; t < num_topologies; ++t) {
      current.selection.candidates[t].topology = library[t].get();
    }
    for (std::size_t p = begin; p < end; ++p) {
      current.point = points[p];
      if (num_topologies > 0) {
        std::atomic<std::size_t> next_topology{0};
        std::mutex error_mutex;
        std::exception_ptr first_error;
        const auto worker = [&]() {
          for (;;) {
            const std::size_t t = next_topology.fetch_add(1);
            if (t >= num_topologies) break;
            try {
              if (pool.contexts[t] == nullptr) {
                pool.contexts[t] = std::make_unique<mapping::EvalContext>(
                    app, *library[t], points[p].config, mapper.library());
              } else {
                pool.contexts[t]->rebind(points[p].config, mapper.library());
              }
              current.selection.candidates[t].result =
                  mapper.map(*pool.contexts[t], pool.scratches[t]);
            } catch (...) {
              std::lock_guard<std::mutex> lock(error_mutex);
              if (!first_error) first_error = std::current_exception();
              break;
            }
          }
        };
        run_worker_pool(
            static_cast<int>(std::min<std::size_t>(
                static_cast<std::size_t>(request.num_threads),
                num_topologies)),
            worker);
        if (first_error) std::rethrow_exception(first_error);
      }
      current.selection.best_index =
          best_feasible_index(current.selection.candidates);
      absorb(current, static_cast<int>(p));
      request.on_point(current);
    }
    report.winners = tracker.take();
    report.pareto = pareto_frontier(area_power);
    return report;
  }

  report.results.resize(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    report.results[p].point = points[p];
    report.results[p].selection.candidates.resize(library.size());
    for (std::size_t t = 0; t < library.size(); ++t) {
      report.results[p].selection.candidates[t].topology = library[t].get();
    }
  }

  if (!points.empty() && !library.empty()) {
    // Work unit = one topology: its context is built once and re-bound
    // across every design point, so rebinding (not rebuilding) is what a
    // sweep pays per configuration. Cells are written to fixed (point,
    // topology) slots, making the report order independent of scheduling.
    std::atomic<std::size_t> next_topology{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    const auto worker = [&]() {
      for (;;) {
        const std::size_t t = next_topology.fetch_add(1);
        if (t >= library.size()) break;
        try {
          if (pool.contexts[t] == nullptr) {
            pool.contexts[t] = std::make_unique<mapping::EvalContext>(
                app, *library[t], points.front().config, mapper.library());
          } else {
            pool.contexts[t]->rebind(points.front().config, mapper.library());
          }
          mapping::EvalContext& ctx = *pool.contexts[t];
          // One scratch per topology, surviving the whole grid: it carries
          // the incremental floorplan session, which rebind() keeps alive
          // across every design point that shares the floorplan options and
          // technology (the session epoch only moves when those do).
          mapping::EvalScratch& scratch = pool.scratches[t];
          for (std::size_t p = 0; p < points.size(); ++p) {
            if (p > 0) ctx.rebind(points[p].config, mapper.library());
            report.results[p].selection.candidates[t].result =
                mapper.map(ctx, scratch);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          break;
        }
      }
    };

    run_worker_pool(
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(request.num_threads), library.size())),
        worker);
    if (first_error) std::rethrow_exception(first_error);
  }

  // Per-objective winners (best feasible cell in report order, ties to the
  // earliest grid coordinate) and the area/power Pareto frontier, via the
  // same accumulator the streaming path feeds point by point.
  for (std::size_t p = 0; p < report.results.size(); ++p) {
    auto& result = report.results[p];
    result.selection.best_index =
        best_feasible_index(result.selection.candidates);
    absorb(result, static_cast<int>(p));
  }
  report.winners = tracker.take();
  report.pareto = pareto_frontier(area_power);

  // High-fidelity finalist tier (opt-in): simulate the top-K cells of each
  // objective group. Purely additive — nothing above reads the scores.
  if (request.sim_finalists > 0) {
    simulate_finalists(request, report);
    if (request.sim_rank) report.sim_winners = rank_sim_winners(request, report);
  }

  return report;
}

}  // namespace sunmap::select
