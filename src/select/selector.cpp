#include "select/selector.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "select/explorer.h"

namespace sunmap::select {

SelectionReport TopologySelector::select(
    const mapping::CoreGraph& app,
    const std::vector<std::unique_ptr<topo::Topology>>& library) const {
  // A selection run is the single-design-point case of a batched
  // exploration: delegate to the explorer (empty axes — the grid collapses
  // to the mapper's own configuration) and unwrap the one point's report.
  ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.base = mapper_.config();
  DesignSpaceExplorer explorer;
  auto report = explorer.explore(request);
  return std::move(report.results.front().selection);
}

std::vector<ParetoPoint> pareto_frontier(
    const std::vector<std::pair<double, double>>& area_power) {
  std::vector<ParetoPoint> points;
  points.reserve(area_power.size());
  for (const auto& [area, power] : area_power) {
    points.push_back(ParetoPoint{area, power});
  }
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.area_mm2 != b.area_mm2) return a.area_mm2 < b.area_mm2;
              return a.power_mw < b.power_mw;
            });
  std::vector<ParetoPoint> frontier;
  double best_power = std::numeric_limits<double>::infinity();
  for (const auto& p : points) {
    if (p.power_mw < best_power - 1e-12) {
      frontier.push_back(p);
      best_power = p.power_mw;
    }
  }
  return frontier;
}

}  // namespace sunmap::select
