#include "select/selector.h"

#include <algorithm>

#include "mapping/eval_context.h"

namespace sunmap::select {

SelectionReport TopologySelector::select(
    const mapping::CoreGraph& app,
    const std::vector<std::unique_ptr<topo::Topology>>& library) const {
  SelectionReport report;
  report.candidates.reserve(library.size());
  for (const auto& topology : library) {
    TopologyCandidate candidate;
    candidate.topology = topology.get();
    // One evaluation context per library topology: the per-topology caches
    // (quadrant masks, resolved switch rows, static routes) are built once
    // here and shared by every candidate mapping the search evaluates.
    const auto ctx = mapper_.make_context(app, *topology);
    candidate.result = mapper_.map(ctx);
    report.candidates.push_back(std::move(candidate));
  }
  for (std::size_t i = 0; i < report.candidates.size(); ++i) {
    const auto& candidate = report.candidates[i];
    if (!candidate.feasible()) continue;
    if (report.best_index < 0 ||
        candidate.result.eval.cost <
            report.candidates[static_cast<std::size_t>(report.best_index)]
                .result.eval.cost) {
      report.best_index = static_cast<int>(i);
    }
  }
  return report;
}

std::vector<ParetoPoint> pareto_frontier(
    const std::vector<std::pair<double, double>>& area_power) {
  std::vector<ParetoPoint> points;
  points.reserve(area_power.size());
  for (const auto& [area, power] : area_power) {
    points.push_back(ParetoPoint{area, power});
  }
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.area_mm2 != b.area_mm2) return a.area_mm2 < b.area_mm2;
              return a.power_mw < b.power_mw;
            });
  std::vector<ParetoPoint> frontier;
  double best_power = std::numeric_limits<double>::infinity();
  for (const auto& p : points) {
    if (p.power_mw < best_power - 1e-12) {
      frontier.push_back(p);
      best_power = p.power_mw;
    }
  }
  return frontier;
}

}  // namespace sunmap::select
