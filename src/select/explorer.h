#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "mapping/eval_context.h"
#include "mapping/mapper.h"
#include "select/selector.h"
#include "topo/library.h"

namespace sunmap::select {

struct PointResult;

/// Externally-owned per-topology evaluation contexts and scratches, indexed
/// like the request's library. When a request carries one, explore() draws
/// its contexts from the pool instead of building fresh ones — contexts
/// found in the pool are rebind()-ed, missing entries are built and left in
/// the pool — so consecutive explore() calls over the same (app, library)
/// skip the per-topology construction entirely. This is what the sweep
/// daemon keeps alive across submitted requests and what a sweep worker
/// reuses across its assigned shards.
///
/// A pool is bound to the first (app, library) it serves; handing it to a
/// request over a different app or library is an error (the contexts
/// borrow both). The pool must not be shared between concurrent explore()
/// calls.
struct ExplorerContextPool {
  std::vector<std::unique_ptr<mapping::EvalContext>> contexts;
  std::vector<mapping::EvalScratch> scratches;
  /// Identity of the (app, library) the pool's contexts were built for;
  /// set on first use, verified on every subsequent one.
  const mapping::CoreGraph* bound_app = nullptr;
  std::vector<const topo::Topology*> bound_topologies;
};

/// A batched design-space exploration: one application, one topology
/// library, and a grid of mapper-configuration variations. Every non-empty
/// axis below replaces the corresponding field of `base`; empty axes fall
/// back to the single value already in `base`. The cross product of all
/// axes is the set of design points explored.
///
/// The request borrows `app` and `library`; both must outlive the explore()
/// call and the report it returns (the report points into the library).
struct ExplorationRequest {
  const mapping::CoreGraph* app = nullptr;
  const std::vector<std::unique_ptr<topo::Topology>>* library = nullptr;

  /// Defaults for every field the axes do not sweep (search strategy,
  /// swap passes, technology point, ...).
  mapping::MapperConfig base;

  std::vector<mapping::Objective> objectives;
  std::vector<route::RoutingKind> routings;
  std::vector<double> link_bandwidths_mbps;
  std::vector<double> max_areas_mm2;
  std::vector<mapping::ObjectiveWeights> weight_sets;
  /// Search-schedule axes (ROADMAP follow-on): which strategy runs each
  /// point's mapping search, and — for the restart annealer — how many
  /// restarts split the annealing budget. Like every other axis, empty
  /// means "whatever `base` says". The grid stays a plain cross product:
  /// points whose search kind ignores annealing_restarts repeat per
  /// restart count (keeping num_points() and report coordinates regular);
  /// the per-topology metrics cache makes such repeats near-free.
  std::vector<mapping::SearchKind> searches;
  std::vector<int> restart_counts;
  /// Floorplanner-option variations (engine, sizing passes, spacing, ...)
  /// and the swap-pass schedule of the greedy search — the remaining
  /// ROADMAP sweep axes. Floorplan options vary SLOWEST in the grid: a
  /// floorplan-option move is the one axis step that invalidates the
  /// per-topology floorplan cache and incremental floorplan sessions on
  /// rebind, so the grid exhausts every other axis before paying it.
  std::vector<fplan::Floorplanner::Options> floorplan_options;
  std::vector<int> swap_passes;
  /// Fault-scenario variations (robustness axis): each entry is a full
  /// fault set — injection spec plus aggregation mode and penalty. The
  /// axis sits just inside floorplan options in the grid (second slowest):
  /// changing the fault spec changes the evaluation class, clearing the
  /// metrics cache and the per-scenario BFS tables on rebind, so the grid
  /// exhausts every faster axis before paying that rebuild.
  std::vector<fault::FaultSet> fault_sets;

  /// Worker threads the explorer spreads topologies over. Each worker owns
  /// one topology's evaluation context at a time, so any thread count
  /// returns bit-identical reports in identical order. Independent of
  /// base.num_threads (the per-search swap workers).
  int num_threads = 1;

  /// Request-level result streaming: when set, every design point's
  /// PointResult is handed to this callback in deterministic grid order
  /// (exactly the order ExplorationReport::results would have) as soon as
  /// the point completes, and the report keeps NO per-point results — so a
  /// very large sweep never buffers every SelectionReport. Winners and the
  /// Pareto frontier are still accumulated (from scalars) and returned;
  /// ExplorationReport::winner() returns nullptr in this mode because the
  /// buffered results it would point into were never retained.
  ///
  /// Streaming flips the iteration point-major (contexts for every
  /// topology stay alive simultaneously and are re-bound per point, with a
  /// barrier per point so the callback order is exact); each context still
  /// sees the identical rebind sequence, so the streamed PointResults are
  /// bit-identical to a buffered explore(). The callback runs on the
  /// explore() caller's thread.
  std::function<void(const PointResult&)> on_point;

  /// Half-open sub-range [point_begin, point_end) of the expanded grid to
  /// evaluate — the unit a sweep shard hands a worker process. The grid
  /// coordinates and rebind sequence of the covered points are identical to
  /// a full run (rebind() is equivalent to fresh construction by contract),
  /// so the streamed results of a sub-range are bit-identical to the same
  /// points of a whole-grid explore(). Only the streaming (on_point) path
  /// supports sub-ranges; explore() throws otherwise. point_end is clamped
  /// to num_points().
  std::size_t point_begin = 0;
  std::size_t point_end = std::numeric_limits<std::size_t>::max();

  /// Optional externally-owned context/scratch pool (see
  /// ExplorerContextPool). nullptr — the default — keeps the contexts
  /// internal to the explore() call, exactly as before.
  ExplorerContextPool* context_pool = nullptr;

  /// Opt-in high-fidelity finalist tier: after the (analytically pruned and
  /// scored) grid completes, the flit-level simulator re-scores the top-K
  /// feasible (point, topology) cells of each objective group under the
  /// application's own traffic (plain trace or BurstyTraffic, per the base
  /// config's sim_traffic), attaching a mapping::SimScore to those
  /// candidates (TopologyCandidate::sim) — contention-aware delay reported
  /// alongside the analytical number. Mapping results and winner selection
  /// are untouched (the tier is purely additive; reports are bit-identical
  /// with it on or off). Engine, simulator seed, and trace scaling come
  /// from the base config's sim_* fields. 0 disables. Requires the
  /// buffered path: combining this with on_point streaming throws
  /// (streamed reports retain no candidates to attach scores to).
  ///
  /// Finalist cells are simulated by a deterministic worker pool of
  /// `num_threads` threads (one SimEvaluator per worker, results written
  /// to fixed cells), so reports are bit-identical to the serial tier at
  /// any thread count.
  int sim_finalists = 0;

  /// Two-phase simulated-delay ranking: the analytical search prefilters
  /// each objective group to its top-K finalists (sim_finalists), the
  /// simulator re-ranks those by contention-aware delay, and the per-group
  /// sim winners land in ExplorationReport::sim_winners. Deterministic and
  /// purely additive — analytical results, winners, and the Pareto
  /// frontier are bit-identical with this on or off. Requires
  /// sim_finalists >= 1 (throws otherwise).
  bool sim_rank = false;

  /// Number of design points the grid expands to.
  [[nodiscard]] std::size_t num_points() const;
};

/// One fully-resolved configuration of the grid, with its coordinates along
/// each request axis (indices into the request's vectors, 0 for an axis
/// left empty).
struct DesignPoint {
  mapping::MapperConfig config;
  int fplan_index = 0;
  int fault_index = 0;
  int routing_index = 0;
  int bandwidth_index = 0;
  int area_index = 0;
  int weights_index = 0;
  int search_index = 0;
  int restarts_index = 0;
  int swap_passes_index = 0;
  int objective_index = 0;

  /// Compact human-readable tag, e.g. "MP/delay/bw500" (non-default search
  /// strategies append themselves, e.g. ".../restart-annealing-x8"; swept
  /// swap-pass and floorplan coordinates append "/spN" and
  /// "/fp-<engine>-szN"; a non-empty fault set appends "/flt-<describe>").
  [[nodiscard]] std::string label() const;
};

/// One design point's outcome over the whole library: the same shape
/// TopologySelector::select() returns, so per-point results are drop-in
/// comparable with single-point runs.
struct PointResult {
  DesignPoint point;
  SelectionReport selection;
  /// Provenance of a distributed sweep (sweep/coordinator.h): which shard
  /// the point belonged to and which worker process produced it. -1 — the
  /// default — marks a point evaluated in-process by the explorer itself;
  /// io::exploration_report_csv/json render that as an empty/null cell.
  int shard_index = -1;
  int worker_id = -1;
};

/// Best feasible candidate of one point by strict cost comparison, in
/// candidate order — the exact rule TopologySelector::select() applies
/// (and SelectionReport::best_index holds), exposed so the sweep merge
/// layer re-derives best indices from streamed scalars bit-identically.
/// -1 when no candidate is feasible.
[[nodiscard]] int best_feasible_index(
    const std::vector<TopologyCandidate>& candidates);

/// The best feasible (point, topology) cell for one swept objective;
/// point_index < 0 when no cell under that objective was feasible. Costs
/// computed under different weight vectors are not on a common scale, so a
/// swept kWeighted objective yields one entry per weight set
/// (weights_index >= 0); the plain objectives pool across weight sets
/// (weights_index == -1, their costs ignore the weights).
struct ObjectiveBest {
  mapping::Objective objective = mapping::Objective::kMinDelay;
  int weights_index = -1;
  int point_index = -1;
  int topology_index = -1;

  [[nodiscard]] bool found() const { return point_index >= 0; }
};

/// Incremental per-objective winner accumulation, shared by the buffered
/// explore() path, the streaming path, and the distributed sweep merge
/// layer: points must be fed in report (grid) order, so ties resolve to the
/// earliest grid coordinate exactly as a buffered scan would. Weighted
/// costs are only comparable under one weight vector, so kWeighted gets one
/// winner per swept weight set; the plain objectives pool across weight
/// sets.
class WinnerTracker {
 public:
  explicit WinnerTracker(const ExplorationRequest& request);

  /// Folds one point's candidates in, by its grid index. Feed strictly in
  /// increasing point_index order for buffered-identical tie-breaking.
  void consider(const PointResult& result, int point_index);

  /// The accumulated winners, one entry per distinct objective group.
  [[nodiscard]] std::vector<ObjectiveBest> take();

 private:
  std::vector<ObjectiveBest> winners_;
  std::vector<double> best_costs_;
};

/// Outcome of a batched exploration. `results` is ordered deterministically
/// by grid coordinates — floorplan options outermost, then fault sets,
/// routing, bandwidth, area cap, weight set, search strategy, restart
/// count, swap passes, and objective innermost — regardless of how many
/// worker threads ran the sweep. (Objective varies fastest so that consecutive points
/// share the evaluation-metrics cache of the per-topology context;
/// floorplan options vary slowest so the floorplan cache and sessions are
/// invalidated as rarely as the grid allows.)
struct ExplorationReport {
  std::vector<PointResult> results;
  /// One entry per distinct objective swept, in axis order.
  std::vector<ObjectiveBest> winners;
  /// Area/power Pareto frontier over every feasible (point, topology) cell
  /// of the sweep (Fig 9(b) generalised across the grid).
  std::vector<ParetoPoint> pareto;
  /// Simulated-delay winners (ExplorationRequest::sim_rank): per objective
  /// group, the finalist cell with the best simulated delay — drained runs
  /// first, then lower simulated latency, ties to lower analytical cost
  /// and the earlier grid coordinate. Parallel to `winners` (same group
  /// order); empty unless sim_rank was set.
  std::vector<ObjectiveBest> sim_winners;

  /// The winning candidate for `objective`, or nullptr when no feasible
  /// cell exists (or the objective was not swept). For a kWeighted sweep
  /// over several weight sets this is the first weight set's winner; use
  /// `winners` directly for the per-weight-set breakdown.
  [[nodiscard]] const TopologyCandidate* winner(
      mapping::Objective objective) const;
};

/// Phase 1 + 2 of the SUNMAP flow generalised to a configuration grid: maps
/// the application onto every topology under every design point, building
/// one evaluation context per topology and re-binding it across the grid so
/// the per-topology precomputation (quadrant masks, static route tables,
/// resolved switch rows, floorplan cache) is paid once per topology instead
/// of once per design point. Results are bit-identical to running
/// TopologySelector::select() once per configuration.
class DesignSpaceExplorer {
 public:
  /// Runs the sweep. Throws std::invalid_argument when the request lacks an
  /// app or library or any expanded configuration fails validation, and
  /// propagates mapping errors (e.g. an application with more cores than a
  /// topology has slots) exactly as the per-config loop would.
  [[nodiscard]] ExplorationReport explore(
      const ExplorationRequest& request) const;

  /// The expanded design-point grid, in report order, without running
  /// anything — what the CLI prints headers from and the tests enumerate.
  [[nodiscard]] static std::vector<DesignPoint> expand(
      const ExplorationRequest& request);
};

/// The finalist simulation pass on an already-evaluated (buffered) report:
/// picks the top-K feasible cells of each objective group by mapping cost
/// (K = request.sim_finalists; the same grouping WinnerTracker uses) and
/// attaches a mapping::SimScore to each. Cells are distributed over a
/// deterministic worker pool of request.num_threads threads — one
/// SimEvaluator per worker, every score written to its fixed (point,
/// topology) cell, merged in ascending cell order — so the scored report is
/// bit-identical to a serial pass at any thread count. explore() calls this
/// when sim_finalists > 0; exposed so the bench probe (and tests) can time
/// and compare the tier in isolation on a prepared report.
void simulate_finalists(const ExplorationRequest& request,
                        ExplorationReport& report);

/// The simulated-delay re-rank over a finalist-scored report: for each
/// objective group, re-derives the group's finalist cells and ranks them by
/// (drained first, simulated latency, analytical cost, grid coordinate),
/// returning one ObjectiveBest per group in `winners` group order. Pure —
/// reads the report, mutates nothing. explore() stores the result in
/// ExplorationReport::sim_winners when request.sim_rank is set.
[[nodiscard]] std::vector<ObjectiveBest> rank_sim_winners(
    const ExplorationRequest& request, const ExplorationReport& report);

}  // namespace sunmap::select
