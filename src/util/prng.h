#pragma once

#include <cstdint>
#include <limits>

namespace sunmap::util {

/// Deterministic, seedable pseudo-random number generator (xoshiro256**).
///
/// The whole tool chain (mapper tie-breaking, traffic generators, synthetic
/// workloads) must be reproducible run-to-run, so everything draws randomness
/// from an explicitly seeded Prng rather than global std:: engines.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialises the state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work too.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int next_int(int lo, int hi) {
    return lo + static_cast<int>(next_below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace sunmap::util
