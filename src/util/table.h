#pragma once

#include <string>
#include <vector>

namespace sunmap::util {

/// Minimal ASCII table builder used by the benchmark harnesses and examples
/// to print paper-style result tables (e.g. Fig 3(d), Fig 7(b)).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);

  /// Renders the table with aligned columns and a separator under the header.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sunmap::util
