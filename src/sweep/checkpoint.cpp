#include "sweep/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "fault/fault.h"
#include "fplan/floorplanner.h"

namespace sunmap::sweep {

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error("sweep checkpoint: " + what + " " + path + ": " +
                           std::strerror(errno));
}

std::size_t read_exact(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(
          std::string("sweep checkpoint: read failed: ") +
          std::strerror(errno));
    }
    if (n == 0) break;
    done += static_cast<std::size_t>(n);
  }
  return done;
}

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(
          std::string("sweep checkpoint: write failed: ") +
          std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

/// Incremental 64-bit FNV-1a over heterogeneous inputs.
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ull;
    }
  }
  void str(const std::string& text) {
    u64(text.size());
    bytes(text.data(), text.size());
  }
  void u64(std::uint64_t value) { bytes(&value, sizeof(value)); }
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }
  void f64(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
  }
  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

void hash_floorplan_options(Fnv1a& fnv,
                            const fplan::Floorplanner::Options& options);
void hash_fault_set(Fnv1a& fnv, const fault::FaultSet& faults);

void hash_config(Fnv1a& fnv, const mapping::MapperConfig& config) {
  fnv.str(mapping::to_string(config.objective));
  fnv.str(route::to_string(config.routing));
  fnv.str(mapping::to_string(config.search));
  fnv.f64(config.weights.delay);
  fnv.f64(config.weights.area);
  fnv.f64(config.weights.power);
  fnv.f64(config.weights.ref_hops);
  fnv.f64(config.weights.ref_area_mm2);
  fnv.f64(config.weights.ref_power_mw);
  fnv.f64(config.link_bandwidth_mbps);
  fnv.f64(config.max_area_mm2);
  fnv.f64(config.max_design_aspect);
  fnv.i64(config.swap_passes);
  fnv.i64(config.annealing_iterations);
  fnv.f64(config.annealing_t0);
  fnv.f64(config.annealing_cooling);
  fnv.u64(config.annealing_seed);
  fnv.i64(config.annealing_restarts);
  fnv.i64(config.annealing_reheats);
  fnv.i64(config.reroute_passes);
  hash_floorplan_options(fnv, config.floorplan);
  hash_fault_set(fnv, config.faults);
}

void hash_floorplan_options(Fnv1a& fnv,
                            const fplan::Floorplanner::Options& options) {
  fnv.str(fplan::to_string(options.engine));
  fnv.i64(options.sizing_passes);
  fnv.u64(options.aspect_candidates.size());
  for (const double aspect : options.aspect_candidates) fnv.f64(aspect);
  fnv.f64(options.spacing_mm);
}

void hash_fault_set(Fnv1a& fnv, const fault::FaultSet& faults) {
  fnv.str(fault::describe(faults));
  fnv.i64(static_cast<std::int64_t>(faults.spec.kind));
  fnv.i64(faults.spec.num_scenarios);
  fnv.i64(faults.spec.faults_per_scenario);
  fnv.u64(faults.spec.seed);
  fnv.u64(faults.spec.scenarios.size());
  for (const auto& scenario : faults.spec.scenarios) {
    fnv.u64(scenario.links.size());
    for (const auto& link : scenario.links) {
      fnv.i64(link.a);
      fnv.i64(link.b);
    }
    fnv.u64(scenario.switches.size());
    for (const auto dead : scenario.switches) fnv.i64(dead);
    fnv.f64(scenario.weight);
  }
  fnv.str(fault::to_string(faults.aggregation));
  fnv.f64(faults.fault_free_weight);
  fnv.f64(faults.infeasible_penalty);
}

std::vector<std::uint8_t> encode_header(const JournalHeader& header) {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kJournalMagic, kJournalMagic + sizeof(kJournalMagic));
  put_u32(out, header.version);
  put_u64(out, header.fingerprint);
  put_u32(out, static_cast<std::uint32_t>(header.description.size()));
  out.insert(out.end(), header.description.begin(),
             header.description.end());
  return out;
}

}  // namespace

JournalContents read_journal(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("cannot open", path);
  JournalContents contents;
  try {
    std::uint8_t fixed[8 + 4 + 8 + 4];
    if (read_exact(fd, fixed, sizeof(fixed)) != sizeof(fixed)) {
      throw std::runtime_error("sweep checkpoint: " + path +
                               " is too short to be a sweep journal");
    }
    if (std::memcmp(fixed, kJournalMagic, sizeof(kJournalMagic)) != 0) {
      throw std::runtime_error("sweep checkpoint: " + path +
                               " is not a sweep journal (bad magic)");
    }
    PayloadReader reader(fixed + sizeof(kJournalMagic),
                         sizeof(fixed) - sizeof(kJournalMagic));
    contents.header.version = reader.get_u32();
    if (contents.header.version != kJournalVersion) {
      throw std::runtime_error(
          "sweep checkpoint: " + path + " has journal version " +
          std::to_string(contents.header.version) + "; this build reads " +
          std::to_string(kJournalVersion));
    }
    contents.header.fingerprint = reader.get_u64();
    const std::uint32_t desc_len = reader.get_u32();
    if (desc_len > kMaxFrameBytes) {
      throw std::runtime_error("sweep checkpoint: " + path +
                               " has an implausible description length");
    }
    contents.header.description.resize(desc_len);
    if (desc_len != 0 &&
        read_exact(fd,
                   reinterpret_cast<std::uint8_t*>(
                       contents.header.description.data()),
                   desc_len) != desc_len) {
      throw std::runtime_error("sweep checkpoint: " + path +
                               " ends inside its header");
    }
    contents.valid_bytes = sizeof(fixed) + desc_len;

    // Records: absorb whole frames until EOF; any mid-frame EOF or CRC
    // failure marks a crash-torn tail, recovered by stopping at the last
    // whole record.
    for (;;) {
      MsgType type{};
      std::vector<std::uint8_t> body;
      bool ok = false;
      try {
        ok = read_frame(fd, &type, &body);
      } catch (const std::exception&) {
        contents.tail_truncated = true;
        break;
      }
      if (!ok) break;
      if (type != MsgType::kPoint) {
        contents.tail_truncated = true;
        break;
      }
      try {
        contents.records.push_back(
            decode_point_record(body.data(), body.size()));
      } catch (const std::exception&) {
        contents.tail_truncated = true;
        break;
      }
      contents.valid_bytes += 8 + 1 + body.size();
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return contents;
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

JournalWriter::~JournalWriter() { close(); }

JournalWriter JournalWriter::create(const std::string& path,
                                    const JournalHeader& header) {
  JournalWriter writer;
  writer.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                      0644);
  if (writer.fd_ < 0) throw_errno("cannot create", path);
  const auto bytes = encode_header(header);
  write_all(writer.fd_, bytes.data(), bytes.size());
  writer.sync();
  return writer;
}

JournalWriter JournalWriter::open_for_append(const std::string& path,
                                             std::uint64_t valid_bytes) {
  JournalWriter writer;
  writer.fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (writer.fd_ < 0) throw_errno("cannot open", path);
  if (::ftruncate(writer.fd_, static_cast<off_t>(valid_bytes)) != 0) {
    throw_errno("cannot truncate damaged tail of", path);
  }
  if (::lseek(writer.fd_, 0, SEEK_END) < 0) {
    throw_errno("cannot seek", path);
  }
  return writer;
}

void JournalWriter::append(const PointRecord& record) {
  if (fd_ < 0) return;
  if (!write_frame(fd_, MsgType::kPoint, encode_point_record(record))) {
    throw std::runtime_error("sweep checkpoint: journal pipe closed");
  }
  sync();
}

void JournalWriter::sync() {
  if (fd_ >= 0) ::fsync(fd_);
}

void JournalWriter::close() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t request_fingerprint(
    const select::ExplorationRequest& request) {
  Fnv1a fnv;
  fnv.str("sunmap-sweep-v1");
  if (request.app != nullptr) {
    const auto& app = *request.app;
    fnv.str(app.name());
    fnv.i64(app.num_cores());
    fnv.i64(app.num_flows());
    for (const auto& commodity : mapping::commodities_by_value(app)) {
      fnv.i64(commodity.src_core);
      fnv.i64(commodity.dst_core);
      fnv.f64(commodity.value_mbps);
    }
  }
  if (request.library != nullptr) {
    fnv.u64(request.library->size());
    for (const auto& topology : *request.library) {
      fnv.str(topology->name());
    }
  }
  hash_config(fnv, request.base);
  fnv.u64(request.objectives.size());
  for (const auto objective : request.objectives) {
    fnv.str(mapping::to_string(objective));
  }
  fnv.u64(request.routings.size());
  for (const auto routing : request.routings) {
    fnv.str(route::to_string(routing));
  }
  fnv.u64(request.link_bandwidths_mbps.size());
  for (const double bw : request.link_bandwidths_mbps) fnv.f64(bw);
  fnv.u64(request.max_areas_mm2.size());
  for (const double area : request.max_areas_mm2) fnv.f64(area);
  fnv.u64(request.weight_sets.size());
  for (const auto& weights : request.weight_sets) {
    fnv.f64(weights.delay);
    fnv.f64(weights.area);
    fnv.f64(weights.power);
    fnv.f64(weights.ref_hops);
    fnv.f64(weights.ref_area_mm2);
    fnv.f64(weights.ref_power_mw);
  }
  fnv.u64(request.searches.size());
  for (const auto search : request.searches) {
    fnv.str(mapping::to_string(search));
  }
  fnv.u64(request.restart_counts.size());
  for (const int restarts : request.restart_counts) fnv.i64(restarts);
  fnv.u64(request.floorplan_options.size());
  for (const auto& options : request.floorplan_options) {
    hash_floorplan_options(fnv, options);
  }
  fnv.u64(request.swap_passes.size());
  for (const int passes : request.swap_passes) fnv.i64(passes);
  fnv.u64(request.fault_sets.size());
  for (const auto& faults : request.fault_sets) {
    hash_fault_set(fnv, faults);
  }
  return fnv.digest();
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

}  // namespace sunmap::sweep
