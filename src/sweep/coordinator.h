#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "select/explorer.h"
#include "sweep/worker.h"

namespace sunmap::sweep {

/// How run_sweep() distributes one exploration request.
struct SweepOptions {
  /// Worker child processes forked off the coordinator. Each binds its own
  /// per-topology context pool; results stream back over pipes.
  int num_workers = 2;
  /// Shards the grid is partitioned into; 0 (default) means one per
  /// worker. More shards than workers gives finer-grained work stealing
  /// and smaller re-queued ranges after a crash.
  int num_shards = 0;
  /// Append-only journal of completed points (see checkpoint.h). Empty
  /// disables checkpointing.
  std::string checkpoint_path;
  /// Resume from checkpoint_path instead of starting fresh: completed
  /// points are folded in from the journal and only the remainder is
  /// assigned to workers. The journal's request fingerprint must match.
  bool resume = false;
  /// Periodic progress lines on stderr (points done/total, rate, ETA,
  /// per-worker throughput).
  bool progress = false;
  /// Seconds between progress lines.
  double progress_interval_s = 1.0;
  /// Free-form tag recorded in a fresh journal's header.
  std::string description;
  /// Failure-injection knobs for the crash/kill tests (inherited by the
  /// workers at fork time).
  WorkerHooks hooks;
};

/// What a sweep did, alongside the merged report.
struct SweepStats {
  std::size_t total_points = 0;
  /// Points evaluated by workers in THIS run — a resumed sweep evaluates
  /// only total_points - points_from_checkpoint of them, which is how the
  /// kill/resume test asserts completed points were not re-evaluated.
  std::size_t points_evaluated = 0;
  std::size_t points_from_checkpoint = 0;
  int workers_spawned = 0;
  int worker_crashes = 0;
  int shards_requeued = 0;
  /// True when request_stop() ended the sweep early; the report then only
  /// covers the absorbed prefix and the checkpoint holds every completed
  /// point.
  bool interrupted = false;
  std::uint64_t fingerprint = 0;
};

struct SweepResult {
  select::ExplorationReport report;
  SweepStats stats;
};

/// Runs `request` across worker processes and merges the streamed scalars
/// into a report that is bit-identical (winners, Pareto frontier, per-point
/// scalars in grid order) to single-process DesignSpaceExplorer::explore()
/// at any shard count and worker interleaving. Merged evaluations carry
/// scalars and mappings only — floorplan geometry and route sets stay in
/// the workers — so ExplorationReport::winner() floorplan rendering is a
/// single-process-mode feature.
///
/// Worker crashes re-queue the lost remainder of the shard once; a second
/// death on the same range throws std::runtime_error naming the shard and
/// point range. A checkpoint fingerprint mismatch throws std::runtime_error
/// naming both fingerprints. request.on_point, when set, fires in strict
/// grid order as the merge cursor advances.
[[nodiscard]] SweepResult run_sweep(const select::ExplorationRequest& request,
                                    const SweepOptions& options);

/// Async-signal-safe stop request: the coordinator finishes absorbing what
/// already arrived, flushes the checkpoint journal, reaps its workers, and
/// returns with stats.interrupted set. Wire it to SIGINT in a CLI handler.
void request_stop();
[[nodiscard]] bool stop_requested();
void reset_stop();

}  // namespace sunmap::sweep
