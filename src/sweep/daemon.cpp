#include "sweep/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "apps/apps.h"
#include "io/exploration_io.h"
#include "select/explorer.h"
#include "sweep/coordinator.h"
#include "topo/library.h"

namespace sunmap::sweep {

namespace {

std::optional<mapping::CoreGraph> builtin_app(const std::string& name) {
  if (name == "vopd") return apps::vopd();
  if (name == "mpeg4") return apps::mpeg4();
  if (name == "dsp") return apps::dsp_filter();
  if (name == "netproc16") return apps::netproc16();
  if (name == "pip") return apps::pip();
  if (name == "mwd") return apps::mwd();
  return std::nullopt;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

std::optional<mapping::Objective> parse_objective(const std::string& text) {
  if (text == "delay") return mapping::Objective::kMinDelay;
  if (text == "area") return mapping::Objective::kMinArea;
  if (text == "power") return mapping::Objective::kMinPower;
  if (text == "weighted") return mapping::Objective::kWeighted;
  return std::nullopt;
}

std::optional<route::RoutingKind> parse_routing(const std::string& text) {
  for (route::RoutingKind kind : route::kAllRoutingKinds) {
    if (text == route::to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<mapping::SearchKind> parse_search(const std::string& text) {
  if (text == "greedy") return mapping::SearchKind::kGreedySwaps;
  if (text == "sa") return mapping::SearchKind::kAnnealing;
  if (text == "rsa") return mapping::SearchKind::kRestartAnnealing;
  return std::nullopt;
}

/// One resident (application, library) pair with its live context pool.
/// The app and library are heap-stable, so the pool's identity binding
/// (ExplorerContextPool::bound_app/bound_topologies) holds across requests.
struct PoolEntry {
  std::unique_ptr<mapping::CoreGraph> app;
  std::vector<std::unique_ptr<topo::Topology>> library;
  select::ExplorerContextPool pool;
};

/// Serves one parsed request against the resident pools; throws
/// std::runtime_error with a client-facing message on bad input.
std::string handle_request(
    const std::map<std::string, std::string>& fields,
    std::map<std::string, PoolEntry>& pools) {
  const auto app_it = fields.find("app");
  if (app_it == fields.end()) {
    throw std::runtime_error("request needs app=<name>");
  }
  const bool extensions =
      fields.count("extensions") != 0 && fields.at("extensions") == "1";
  const std::string pool_key =
      app_it->second + (extensions ? "+ext" : "");
  auto entry_it = pools.find(pool_key);
  if (entry_it == pools.end()) {
    auto app = builtin_app(app_it->second);
    if (!app) {
      throw std::runtime_error("unknown app " + app_it->second);
    }
    PoolEntry entry;
    entry.app = std::make_unique<mapping::CoreGraph>(std::move(*app));
    entry.library =
        topo::standard_library(entry.app->num_cores(), extensions);
    entry_it = pools.emplace(pool_key, std::move(entry)).first;
  }
  PoolEntry& entry = entry_it->second;

  select::ExplorationRequest request;
  request.app = entry.app.get();
  request.library = &entry.library;
  request.context_pool = &entry.pool;
  const auto field = [&](const char* key) -> std::string {
    const auto it = fields.find(key);
    return it != fields.end() ? it->second : std::string();
  };
  for (const auto& text : split_list(field("objectives"))) {
    const auto objective = parse_objective(text);
    if (!objective) throw std::runtime_error("unknown objective " + text);
    request.objectives.push_back(*objective);
  }
  for (const auto& text : split_list(field("routings"))) {
    const auto kind = parse_routing(text);
    if (!kind) throw std::runtime_error("unknown routing " + text);
    request.routings.push_back(*kind);
  }
  for (const auto& text : split_list(field("searches"))) {
    const auto kind = parse_search(text);
    if (!kind) throw std::runtime_error("unknown search " + text);
    request.searches.push_back(*kind);
  }
  try {
    for (const auto& text : split_list(field("bandwidths"))) {
      request.link_bandwidths_mbps.push_back(std::stod(text));
    }
    for (const auto& text : split_list(field("areas"))) {
      request.max_areas_mm2.push_back(std::stod(text));
    }
    for (const auto& text : split_list(field("restarts"))) {
      request.restart_counts.push_back(std::stoi(text));
    }
    for (const auto& text : split_list(field("swap_passes"))) {
      request.swap_passes.push_back(std::stoi(text));
    }
    if (!field("threads").empty()) {
      request.num_threads = std::stoi(field("threads"));
    }
  } catch (const std::invalid_argument&) {
    throw std::runtime_error("bad numeric list value");
  } catch (const std::out_of_range&) {
    throw std::runtime_error("bad numeric list value");
  }

  select::DesignSpaceExplorer explorer;
  return io::exploration_report_json(explorer.explore(request));
}

std::map<std::string, std::string> parse_fields(const std::string& text) {
  std::map<std::string, std::string> fields;
  std::stringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("bad request line (want key=value): " + line);
    }
    fields[line.substr(0, eq)] = line.substr(eq + 1);
  }
  if (fields.empty()) throw std::runtime_error("empty request");
  return fields;
}

void write_all_fd(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // Client gone; nothing useful left to do with this conn.
    }
    done += static_cast<std::size_t>(n);
  }
}

/// Reads the whole request: until a blank line terminator or EOF.
std::string read_request(int fd) {
  std::string text;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    text.append(buffer, static_cast<std::size_t>(n));
    if (text.find("\n\n") != std::string::npos) break;
  }
  return text;
}

}  // namespace

DaemonStats serve(const DaemonOptions& options) {
  if (options.socket_path.empty()) {
    throw std::runtime_error("sweep daemon: socket path is empty");
  }
  sockaddr_un address{};
  if (options.socket_path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("sweep daemon: socket path too long: " +
                             options.socket_path);
  }
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) {
    throw std::runtime_error("sweep daemon: socket() failed");
  }
  address.sun_family = AF_UNIX;
  std::strncpy(address.sun_path, options.socket_path.c_str(),
               sizeof(address.sun_path) - 1);
  ::unlink(options.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd, 8) != 0) {
    ::close(listen_fd);
    throw std::runtime_error("sweep daemon: cannot bind " +
                             options.socket_path + ": " +
                             std::strerror(errno));
  }

  DaemonStats stats;
  std::map<std::string, PoolEntry> pools;
  while (!stop_requested() &&
         (options.max_requests < 0 ||
          stats.requests_served + stats.requests_failed <
              options.max_requests)) {
    pollfd listener{listen_fd, POLLIN, 0};
    const int ready = ::poll(&listener, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    std::string response;
    try {
      const auto fields = parse_fields(read_request(conn));
      const std::string json = handle_request(fields, pools);
      response = "OK " + std::to_string(json.size()) + "\n" + json;
      ++stats.requests_served;
      if (options.verbose) {
        std::fprintf(stderr, "sweep daemon: served request %d (%zu bytes)\n",
                     stats.requests_served, json.size());
      }
    } catch (const std::exception& e) {
      response = std::string("ERR ") + e.what() + "\n";
      ++stats.requests_failed;
      if (options.verbose) {
        std::fprintf(stderr, "sweep daemon: request failed: %s\n", e.what());
      }
    }
    write_all_fd(conn, response.data(), response.size());
    ::close(conn);
  }
  ::close(listen_fd);
  ::unlink(options.socket_path.c_str());
  return stats;
}

std::string call_daemon(const std::string& socket_path,
                        const std::string& request_text) {
  sockaddr_un address{};
  if (socket_path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("sweep daemon: socket path too long: " +
                             socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("sweep daemon: socket() failed");
  address.sun_family = AF_UNIX;
  std::strncpy(address.sun_path, socket_path.c_str(),
               sizeof(address.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    throw std::runtime_error("sweep daemon: cannot connect to " +
                             socket_path + ": " + std::strerror(errno));
  }
  std::string text = request_text;
  if (text.size() < 2 || text.substr(text.size() - 2) != "\n\n") {
    if (!text.empty() && text.back() != '\n') text += '\n';
    text += '\n';
  }
  write_all_fd(fd, text.data(), text.size());
  ::shutdown(fd, SHUT_WR);

  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (response.rfind("OK ", 0) == 0) {
    const auto newline = response.find('\n');
    if (newline == std::string::npos) {
      throw std::runtime_error("sweep daemon: malformed OK response");
    }
    return response.substr(newline + 1);
  }
  if (response.rfind("ERR ", 0) == 0) {
    auto message = response.substr(4);
    while (!message.empty() &&
           (message.back() == '\n' || message.back() == '\r')) {
      message.pop_back();
    }
    throw std::runtime_error("sweep daemon: " + message);
  }
  throw std::runtime_error("sweep daemon: malformed response");
}

}  // namespace sunmap::sweep
