#include "sweep/daemon.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "io/exploration_io.h"
#include "select/explorer.h"
#include "sweep/coordinator.h"
#include "topo/library.h"

namespace sunmap::sweep {

namespace {

std::optional<mapping::CoreGraph> builtin_app(const std::string& name) {
  if (name == "vopd") return apps::vopd();
  if (name == "mpeg4") return apps::mpeg4();
  if (name == "dsp") return apps::dsp_filter();
  if (name == "netproc16") return apps::netproc16();
  if (name == "pip") return apps::pip();
  if (name == "mwd") return apps::mwd();
  return std::nullopt;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

std::optional<mapping::Objective> parse_objective(const std::string& text) {
  if (text == "delay") return mapping::Objective::kMinDelay;
  if (text == "area") return mapping::Objective::kMinArea;
  if (text == "power") return mapping::Objective::kMinPower;
  if (text == "weighted") return mapping::Objective::kWeighted;
  return std::nullopt;
}

std::optional<route::RoutingKind> parse_routing(const std::string& text) {
  for (route::RoutingKind kind : route::kAllRoutingKinds) {
    if (text == route::to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<mapping::SearchKind> parse_search(const std::string& text) {
  if (text == "greedy") return mapping::SearchKind::kGreedySwaps;
  if (text == "sa") return mapping::SearchKind::kAnnealing;
  if (text == "rsa") return mapping::SearchKind::kRestartAnnealing;
  return std::nullopt;
}

/// One resident (application, library) pair with its live context pool.
/// The app and library are heap-stable, so the pool's identity binding
/// (ExplorerContextPool::bound_app/bound_topologies) holds across requests.
/// The mutex serializes explore() calls over this entry: a context pool is
/// single-consumer, so requests sharing a pool queue on it while requests
/// over other (app, library) pairs run on other accept threads in parallel.
struct PoolEntry {
  std::unique_ptr<mapping::CoreGraph> app;
  std::vector<std::unique_ptr<topo::Topology>> library;
  select::ExplorerContextPool pool;
  std::mutex mutex;
};

/// Finds or creates the resident pool entry a request addresses. The map
/// mutex covers lookup and creation (app + library construction is cheap
/// next to an explore), so two threads never build the same key twice;
/// entries are never erased once created, so the returned reference stays
/// valid after the lock is released (std::map nodes are address-stable).
PoolEntry& resolve_pool(const std::map<std::string, std::string>& fields,
                        std::map<std::string, PoolEntry>& pools,
                        std::mutex& pools_mutex) {
  const auto app_it = fields.find("app");
  if (app_it == fields.end()) {
    throw std::runtime_error("request needs app=<name>");
  }
  const bool extensions =
      fields.count("extensions") != 0 && fields.at("extensions") == "1";
  const std::string pool_key = app_it->second + (extensions ? "+ext" : "");
  std::lock_guard<std::mutex> lock(pools_mutex);
  const auto [entry_it, inserted] = pools.try_emplace(pool_key);
  if (inserted) {
    auto app = builtin_app(app_it->second);
    if (!app) {
      pools.erase(entry_it);
      throw std::runtime_error("unknown app " + app_it->second);
    }
    entry_it->second.app =
        std::make_unique<mapping::CoreGraph>(std::move(*app));
    entry_it->second.library =
        topo::standard_library(entry_it->second.app->num_cores(), extensions);
  }
  return entry_it->second;
}

/// Serves one parsed request against its resolved pool entry; throws
/// std::runtime_error with a client-facing message on bad input. The
/// caller must hold entry.mutex.
std::string handle_request(const std::map<std::string, std::string>& fields,
                           PoolEntry& entry) {
  select::ExplorationRequest request;
  request.app = entry.app.get();
  request.library = &entry.library;
  request.context_pool = &entry.pool;
  const auto field = [&](const char* key) -> std::string {
    const auto it = fields.find(key);
    return it != fields.end() ? it->second : std::string();
  };
  for (const auto& text : split_list(field("objectives"))) {
    const auto objective = parse_objective(text);
    if (!objective) throw std::runtime_error("unknown objective " + text);
    request.objectives.push_back(*objective);
  }
  for (const auto& text : split_list(field("routings"))) {
    const auto kind = parse_routing(text);
    if (!kind) throw std::runtime_error("unknown routing " + text);
    request.routings.push_back(*kind);
  }
  for (const auto& text : split_list(field("searches"))) {
    const auto kind = parse_search(text);
    if (!kind) throw std::runtime_error("unknown search " + text);
    request.searches.push_back(*kind);
  }
  try {
    for (const auto& text : split_list(field("bandwidths"))) {
      request.link_bandwidths_mbps.push_back(std::stod(text));
    }
    for (const auto& text : split_list(field("areas"))) {
      request.max_areas_mm2.push_back(std::stod(text));
    }
    for (const auto& text : split_list(field("restarts"))) {
      request.restart_counts.push_back(std::stoi(text));
    }
    for (const auto& text : split_list(field("swap_passes"))) {
      request.swap_passes.push_back(std::stoi(text));
    }
    if (!field("threads").empty()) {
      request.num_threads = std::stoi(field("threads"));
    }
  } catch (const std::invalid_argument&) {
    throw std::runtime_error("bad numeric list value");
  } catch (const std::out_of_range&) {
    throw std::runtime_error("bad numeric list value");
  }

  select::DesignSpaceExplorer explorer;
  return io::exploration_report_json(explorer.explore(request));
}

std::map<std::string, std::string> parse_fields(const std::string& text) {
  std::map<std::string, std::string> fields;
  std::stringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("bad request line (want key=value): " + line);
    }
    fields[line.substr(0, eq)] = line.substr(eq + 1);
  }
  if (fields.empty()) throw std::runtime_error("empty request");
  return fields;
}

void write_all_fd(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // Client gone; nothing useful left to do with this conn.
    }
    done += static_cast<std::size_t>(n);
  }
}

/// Reads the whole request: until a blank line terminator or EOF.
std::string read_request(int fd) {
  std::string text;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    text.append(buffer, static_cast<std::size_t>(n));
    if (text.find("\n\n") != std::string::npos) break;
  }
  return text;
}

}  // namespace

DaemonStats serve(const DaemonOptions& options) {
  if (options.socket_path.empty()) {
    throw std::runtime_error("sweep daemon: socket path is empty");
  }
  sockaddr_un address{};
  if (options.socket_path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("sweep daemon: socket path too long: " +
                             options.socket_path);
  }
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) {
    throw std::runtime_error("sweep daemon: socket() failed");
  }
  address.sun_family = AF_UNIX;
  std::strncpy(address.sun_path, options.socket_path.c_str(),
               sizeof(address.sun_path) - 1);
  ::unlink(options.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd, 8) != 0) {
    ::close(listen_fd);
    throw std::runtime_error("sweep daemon: cannot bind " +
                             options.socket_path + ": " +
                             std::strerror(errno));
  }

  if (options.accept_threads < 1) {
    ::close(listen_fd);
    ::unlink(options.socket_path.c_str());
    throw std::runtime_error("sweep daemon: accept_threads must be >= 1");
  }
  // Nonblocking listener: every accept worker polls the same fd, so all of
  // them wake on a connection but only one accept() wins — the losers get
  // EAGAIN and return to poll instead of blocking.
  const int flags = ::fcntl(listen_fd, F_GETFL, 0);
  ::fcntl(listen_fd, F_SETFL, flags | O_NONBLOCK);

  std::map<std::string, PoolEntry> pools;
  std::mutex pools_mutex;
  std::atomic<int> served{0};
  std::atomic<int> failed{0};
  // Remaining request budget. A worker takes one ticket BEFORE accepting,
  // so at most max_requests connections are ever handled no matter how
  // many workers race on the listener; an unused ticket (stop while
  // polling) is returned.
  const bool bounded = options.max_requests >= 0;
  std::atomic<int> tickets{options.max_requests};

  const auto worker = [&]() {
    for (;;) {
      if (stop_requested()) break;
      if (bounded && tickets.fetch_sub(1) <= 0) {
        tickets.fetch_add(1);
        break;
      }
      int conn = -1;
      while (!stop_requested()) {
        pollfd listener{listen_fd, POLLIN, 0};
        const int ready = ::poll(&listener, 1, 200);
        if (ready < 0 && errno != EINTR) break;
        if (ready <= 0) continue;
        conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn >= 0) break;  // EAGAIN: another worker won this one.
      }
      if (conn < 0) {
        if (bounded) tickets.fetch_add(1);
        break;
      }
      std::string response;
      try {
        const auto fields = parse_fields(read_request(conn));
        PoolEntry& entry = resolve_pool(fields, pools, pools_mutex);
        std::lock_guard<std::mutex> lock(entry.mutex);
        const std::string json = handle_request(fields, entry);
        response = "OK " + std::to_string(json.size()) + "\n" + json;
        const int count = served.fetch_add(1) + 1;
        if (options.verbose) {
          std::fprintf(stderr, "sweep daemon: served request %d (%zu bytes)\n",
                       count, json.size());
        }
      } catch (const std::exception& e) {
        response = std::string("ERR ") + e.what() + "\n";
        failed.fetch_add(1);
        if (options.verbose) {
          std::fprintf(stderr, "sweep daemon: request failed: %s\n", e.what());
        }
      }
      write_all_fd(conn, response.data(), response.size());
      ::close(conn);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(
      static_cast<std::size_t>(options.accept_threads - 1));
  for (int i = 1; i < options.accept_threads; ++i) threads.emplace_back(worker);
  worker();
  for (auto& thread : threads) thread.join();

  ::close(listen_fd);
  ::unlink(options.socket_path.c_str());
  DaemonStats stats;
  stats.requests_served = served.load();
  stats.requests_failed = failed.load();
  return stats;
}

std::string call_daemon(const std::string& socket_path,
                        const std::string& request_text) {
  sockaddr_un address{};
  if (socket_path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("sweep daemon: socket path too long: " +
                             socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("sweep daemon: socket() failed");
  address.sun_family = AF_UNIX;
  std::strncpy(address.sun_path, socket_path.c_str(),
               sizeof(address.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    throw std::runtime_error("sweep daemon: cannot connect to " +
                             socket_path + ": " + std::strerror(errno));
  }
  std::string text = request_text;
  if (text.size() < 2 || text.substr(text.size() - 2) != "\n\n") {
    if (!text.empty() && text.back() != '\n') text += '\n';
    text += '\n';
  }
  write_all_fd(fd, text.data(), text.size());
  ::shutdown(fd, SHUT_WR);

  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (response.rfind("OK ", 0) == 0) {
    const auto newline = response.find('\n');
    if (newline == std::string::npos) {
      throw std::runtime_error("sweep daemon: malformed OK response");
    }
    return response.substr(newline + 1);
  }
  if (response.rfind("ERR ", 0) == 0) {
    auto message = response.substr(4);
    while (!message.empty() &&
           (message.back() == '\n' || message.back() == '\r')) {
      message.pop_back();
    }
    throw std::runtime_error("sweep daemon: " + message);
  }
  throw std::runtime_error("sweep daemon: malformed response");
}

}  // namespace sunmap::sweep
