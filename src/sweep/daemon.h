#pragma once

#include <string>

namespace sunmap::sweep {

/// Persistent sweep service over a unix-domain stream socket. The daemon
/// keeps one evaluation-context pool per (application, library) pair alive
/// across every request it serves, so repeat sweeps over the same topology
/// library skip per-topology context construction entirely (they rebind —
/// see select::ExplorerContextPool and EvalContext::rebind).
///
/// Request protocol: newline-separated `key=value` lines terminated by a
/// blank line (or EOF). Keys:
///
///   app=<vopd|mpeg4|dsp|netproc16|pip|mwd>      (required)
///   objectives=delay,area,power,weighted
///   routings=DO,MP,SM,SA
///   bandwidths=<MBps,...>    areas=<mm2,...>
///   searches=greedy,sa,rsa   restarts=<n,...>   swap_passes=<n,...>
///   extensions=0|1           threads=<n>
///
/// Response: `OK <byte count>\n` followed by exactly that many bytes of
/// io::exploration_report_json, or `ERR <message>\n`.
struct DaemonOptions {
  std::string socket_path;
  /// Return after serving this many requests; -1 serves until
  /// request_stop() (the CLI wires that to SIGINT). Exact at any
  /// accept_threads count: each accepted connection consumes one ticket of
  /// the budget before it is handled.
  int max_requests = -1;
  /// Accept-loop worker threads. Each worker accepts, parses, and serves
  /// whole requests; a context pool is locked per (app, library) pair, so
  /// concurrent requests over DIFFERENT pairs evaluate in parallel while
  /// requests sharing a pool serialize on its entry (the contexts are not
  /// shareable mid-explore). 1 — the default — reproduces the original
  /// single-threaded loop.
  int accept_threads = 1;
  /// Log one stderr line per request.
  bool verbose = false;
};

struct DaemonStats {
  int requests_served = 0;
  int requests_failed = 0;
};

/// Runs the daemon loop; returns when max_requests were served or
/// request_stop() was raised. Throws std::runtime_error when the socket
/// cannot be created or bound. The socket file is unlinked on return.
DaemonStats serve(const DaemonOptions& options);

/// Client side: connects to a daemon socket, submits one request (a blank
/// terminator line is appended if missing) and returns the JSON report
/// body. Throws std::runtime_error on connection failure or an ERR
/// response.
[[nodiscard]] std::string call_daemon(const std::string& socket_path,
                                      const std::string& request_text);

}  // namespace sunmap::sweep
