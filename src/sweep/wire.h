#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "select/explorer.h"

namespace sunmap::sweep {

/// Message types of the coordinator <-> worker pipe protocol and the
/// checkpoint journal. Every message travels as one frame:
///
///   [u32 payload_len][u32 crc32(payload)][payload]
///
/// little-endian, payload starting with the u8 message type. Doubles cross
/// the wire as their raw IEEE-754 bit patterns, so a streamed scalar is the
/// exact double the worker computed — the bit-identity invariant of the
/// merge layer depends on this.
enum class MsgType : std::uint8_t {
  // coordinator -> worker
  kAssignShard = 1,  ///< u32 shard_index, u64 begin, u64 end (grid range).
  kShutdown = 2,     ///< No payload; worker exits 0.
  // worker -> coordinator
  kPoint = 16,      ///< PointRecord (below).
  kShardDone = 17,  ///< u32 shard_index: the assignment finished.
  kError = 18,      ///< UTF-8 what() of the worker's fatal exception.
};

/// The result scalars of one (point, topology) cell — everything the merge
/// layer needs to reconstruct the cell's Evaluation for winner/Pareto/report
/// purposes (floorplan geometry and route sets stay worker-local; see
/// README "Distributed sweeps").
struct CandidateScalars {
  bool bandwidth_feasible = false;
  bool area_feasible = false;
  double max_link_load_mbps = 0.0;
  double avg_switch_hops = 0.0;
  double avg_path_latency_ns = 0.0;
  double design_area_mm2 = 0.0;
  double design_power_mw = 0.0;
  double dynamic_power_mw = 0.0;
  double static_power_mw = 0.0;
  double switch_area_mm2 = 0.0;
  double cost = 0.0;
  double worst_fault_cost = 0.0;
  std::int32_t infeasible_fault_scenarios = 0;
  std::int32_t fault_scenarios = 0;
  std::int32_t evaluated_mappings = 0;
  std::int32_t pruned_mappings = 0;
  std::vector<std::int32_t> core_to_slot;
};

/// One completed design point: its grid index, distributed provenance, and
/// the scalars of every library candidate (in library order). This is both
/// the kPoint payload and the checkpoint journal record.
struct PointRecord {
  std::uint64_t point_index = 0;
  std::int32_t shard_index = -1;
  std::int32_t worker_id = -1;
  std::vector<CandidateScalars> candidates;
};

/// CRC-32 (IEEE 802.3 polynomial) over a byte range.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

// ---- Payload encoding -----------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value);
void put_f64(std::vector<std::uint8_t>& out, double value);

/// Bounds-checked little-endian reader over a payload; every get_* throws
/// std::runtime_error on underrun, so a corrupt payload can never read past
/// its buffer.
class PayloadReader {
 public:
  PayloadReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::size_t remaining() const { return size_ - offset_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

/// Serializes a PointRecord (without the leading message-type byte).
[[nodiscard]] std::vector<std::uint8_t> encode_point_record(
    const PointRecord& record);

/// Parses the encode_point_record layout; throws std::runtime_error on a
/// malformed payload.
[[nodiscard]] PointRecord decode_point_record(const std::uint8_t* data,
                                              std::size_t size);

/// Extracts the streamed scalars of one explorer result (point `index` of
/// the grid) into a wire record.
[[nodiscard]] PointRecord record_from_result(
    const select::PointResult& result, std::size_t index);

/// Writes a record's scalars back into a PointResult whose candidates are
/// already sized and topology-bound (the merge layer prepares those from
/// the coordinator's own library). best_index is NOT set here — the merge
/// layer re-derives it with select::best_feasible_index so the rule lives
/// in exactly one place.
void apply_record(const PointRecord& record, select::PointResult* out);

// ---- Framed pipe I/O ------------------------------------------------------

/// Writes one frame to fd, retrying on EINTR and partial writes. Returns
/// false when the reader is gone (EPIPE) — how an orphaned worker learns
/// its coordinator died — and throws std::runtime_error on any other error.
bool write_frame(int fd, MsgType type, const std::vector<std::uint8_t>& body);

/// Reads one whole frame from fd (blocking). Returns false on clean EOF
/// before any byte of a frame; throws std::runtime_error on mid-frame EOF,
/// CRC mismatch, or an oversized length prefix. On success *type holds the
/// leading message type and *body the rest of the payload.
bool read_frame(int fd, MsgType* type, std::vector<std::uint8_t>* body);

/// Frame length-prefix sanity bound: no legitimate message approaches this.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

}  // namespace sunmap::sweep
