#include "sweep/wire.h"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace sunmap::sweep {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// read()/write() wrappers that finish the whole count, retrying EINTR.
/// read_exact returns the bytes actually read (short only at EOF).
std::size_t read_exact(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("sweep wire: read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) break;
    done += static_cast<std::size_t>(n);
  }
  return done;
}

/// Returns false on EPIPE (reader gone), throws on other errors.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE) return false;
      throw std::runtime_error(std::string("sweep wire: write failed: ") +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const auto table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value) {
  out.push_back(value);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  put_u64(out, bits);
}

std::uint8_t PayloadReader::get_u8() {
  if (offset_ + 1 > size_) {
    throw std::runtime_error("sweep wire: payload underrun");
  }
  return data_[offset_++];
}

std::uint32_t PayloadReader::get_u32() {
  if (offset_ + 4 > size_) {
    throw std::runtime_error("sweep wire: payload underrun");
  }
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 4;
  return value;
}

std::uint64_t PayloadReader::get_u64() {
  if (offset_ + 8 > size_) {
    throw std::runtime_error("sweep wire: payload underrun");
  }
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return value;
}

double PayloadReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::vector<std::uint8_t> encode_point_record(const PointRecord& record) {
  std::vector<std::uint8_t> out;
  put_u64(out, record.point_index);
  put_u32(out, static_cast<std::uint32_t>(record.shard_index));
  put_u32(out, static_cast<std::uint32_t>(record.worker_id));
  put_u32(out, static_cast<std::uint32_t>(record.candidates.size()));
  for (const auto& candidate : record.candidates) {
    put_u8(out, candidate.bandwidth_feasible ? 1 : 0);
    put_u8(out, candidate.area_feasible ? 1 : 0);
    put_f64(out, candidate.max_link_load_mbps);
    put_f64(out, candidate.avg_switch_hops);
    put_f64(out, candidate.avg_path_latency_ns);
    put_f64(out, candidate.design_area_mm2);
    put_f64(out, candidate.design_power_mw);
    put_f64(out, candidate.dynamic_power_mw);
    put_f64(out, candidate.static_power_mw);
    put_f64(out, candidate.switch_area_mm2);
    put_f64(out, candidate.cost);
    put_f64(out, candidate.worst_fault_cost);
    put_u32(out, static_cast<std::uint32_t>(
                     candidate.infeasible_fault_scenarios));
    put_u32(out, static_cast<std::uint32_t>(candidate.fault_scenarios));
    put_u32(out, static_cast<std::uint32_t>(candidate.evaluated_mappings));
    put_u32(out, static_cast<std::uint32_t>(candidate.pruned_mappings));
    put_u32(out, static_cast<std::uint32_t>(candidate.core_to_slot.size()));
    for (const std::int32_t slot : candidate.core_to_slot) {
      put_u32(out, static_cast<std::uint32_t>(slot));
    }
  }
  return out;
}

PointRecord decode_point_record(const std::uint8_t* data, std::size_t size) {
  PayloadReader reader(data, size);
  PointRecord record;
  record.point_index = reader.get_u64();
  record.shard_index = static_cast<std::int32_t>(reader.get_u32());
  record.worker_id = static_cast<std::int32_t>(reader.get_u32());
  const std::uint32_t num_candidates = reader.get_u32();
  if (num_candidates > kMaxFrameBytes / 8) {
    throw std::runtime_error("sweep wire: implausible candidate count");
  }
  record.candidates.resize(num_candidates);
  for (auto& candidate : record.candidates) {
    candidate.bandwidth_feasible = reader.get_u8() != 0;
    candidate.area_feasible = reader.get_u8() != 0;
    candidate.max_link_load_mbps = reader.get_f64();
    candidate.avg_switch_hops = reader.get_f64();
    candidate.avg_path_latency_ns = reader.get_f64();
    candidate.design_area_mm2 = reader.get_f64();
    candidate.design_power_mw = reader.get_f64();
    candidate.dynamic_power_mw = reader.get_f64();
    candidate.static_power_mw = reader.get_f64();
    candidate.switch_area_mm2 = reader.get_f64();
    candidate.cost = reader.get_f64();
    candidate.worst_fault_cost = reader.get_f64();
    candidate.infeasible_fault_scenarios =
        static_cast<std::int32_t>(reader.get_u32());
    candidate.fault_scenarios = static_cast<std::int32_t>(reader.get_u32());
    candidate.evaluated_mappings = static_cast<std::int32_t>(reader.get_u32());
    candidate.pruned_mappings = static_cast<std::int32_t>(reader.get_u32());
    const std::uint32_t cores = reader.get_u32();
    if (cores > kMaxFrameBytes / 4) {
      throw std::runtime_error("sweep wire: implausible mapping size");
    }
    candidate.core_to_slot.resize(cores);
    for (auto& slot : candidate.core_to_slot) {
      slot = static_cast<std::int32_t>(reader.get_u32());
    }
  }
  if (reader.remaining() != 0) {
    throw std::runtime_error("sweep wire: trailing bytes in point record");
  }
  return record;
}

PointRecord record_from_result(const select::PointResult& result,
                               std::size_t index) {
  PointRecord record;
  record.point_index = index;
  record.shard_index = result.shard_index;
  record.worker_id = result.worker_id;
  record.candidates.reserve(result.selection.candidates.size());
  for (const auto& candidate : result.selection.candidates) {
    const auto& eval = candidate.result.eval;
    CandidateScalars scalars;
    scalars.bandwidth_feasible = eval.bandwidth_feasible;
    scalars.area_feasible = eval.area_feasible;
    scalars.max_link_load_mbps = eval.max_link_load_mbps;
    scalars.avg_switch_hops = eval.avg_switch_hops;
    scalars.avg_path_latency_ns = eval.avg_path_latency_ns;
    scalars.design_area_mm2 = eval.design_area_mm2;
    scalars.design_power_mw = eval.design_power_mw;
    scalars.dynamic_power_mw = eval.dynamic_power_mw;
    scalars.static_power_mw = eval.static_power_mw;
    scalars.switch_area_mm2 = eval.switch_area_mm2;
    scalars.cost = eval.cost;
    scalars.worst_fault_cost = eval.worst_fault_cost;
    scalars.infeasible_fault_scenarios = eval.infeasible_fault_scenarios;
    scalars.fault_scenarios =
        static_cast<std::int32_t>(eval.fault_outcomes.size());
    scalars.evaluated_mappings = candidate.result.evaluated_mappings;
    scalars.pruned_mappings = candidate.result.pruned_mappings;
    scalars.core_to_slot.assign(candidate.result.core_to_slot.begin(),
                                candidate.result.core_to_slot.end());
    record.candidates.push_back(std::move(scalars));
  }
  return record;
}

void apply_record(const PointRecord& record, select::PointResult* out) {
  if (record.candidates.size() != out->selection.candidates.size()) {
    throw std::runtime_error(
        "sweep wire: record candidate count does not match the library");
  }
  out->shard_index = record.shard_index;
  out->worker_id = record.worker_id;
  for (std::size_t t = 0; t < record.candidates.size(); ++t) {
    const auto& scalars = record.candidates[t];
    auto& candidate = out->selection.candidates[t];
    auto& eval = candidate.result.eval;
    eval.bandwidth_feasible = scalars.bandwidth_feasible;
    eval.area_feasible = scalars.area_feasible;
    eval.max_link_load_mbps = scalars.max_link_load_mbps;
    eval.avg_switch_hops = scalars.avg_switch_hops;
    eval.avg_path_latency_ns = scalars.avg_path_latency_ns;
    eval.design_area_mm2 = scalars.design_area_mm2;
    eval.design_power_mw = scalars.design_power_mw;
    eval.dynamic_power_mw = scalars.dynamic_power_mw;
    eval.static_power_mw = scalars.static_power_mw;
    eval.switch_area_mm2 = scalars.switch_area_mm2;
    eval.cost = scalars.cost;
    eval.worst_fault_cost = scalars.worst_fault_cost;
    eval.infeasible_fault_scenarios = scalars.infeasible_fault_scenarios;
    // The merged report records the scenario count (the CSV/JSON column)
    // without the per-scenario outcomes themselves: resize with
    // default-constructed entries so fault_outcomes.size() round-trips.
    eval.fault_outcomes.resize(
        static_cast<std::size_t>(scalars.fault_scenarios));
    candidate.result.evaluated_mappings = scalars.evaluated_mappings;
    candidate.result.pruned_mappings = scalars.pruned_mappings;
    candidate.result.core_to_slot.assign(scalars.core_to_slot.begin(),
                                         scalars.core_to_slot.end());
  }
}

bool write_frame(int fd, MsgType type,
                 const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> payload;
  payload.reserve(1 + body.size());
  put_u8(payload, static_cast<std::uint8_t>(type));
  payload.insert(payload.end(), body.begin(), body.end());

  std::vector<std::uint8_t> frame;
  frame.reserve(8 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return write_all(fd, frame.data(), frame.size());
}

bool read_frame(int fd, MsgType* type, std::vector<std::uint8_t>* body) {
  std::uint8_t header[8];
  const std::size_t got = read_exact(fd, header, sizeof(header));
  if (got == 0) return false;
  if (got < sizeof(header)) {
    throw std::runtime_error("sweep wire: EOF inside frame header");
  }
  PayloadReader reader(header, sizeof(header));
  const std::uint32_t length = reader.get_u32();
  const std::uint32_t expected_crc = reader.get_u32();
  if (length == 0 || length > kMaxFrameBytes) {
    throw std::runtime_error("sweep wire: implausible frame length");
  }
  std::vector<std::uint8_t> payload(length);
  if (read_exact(fd, payload.data(), payload.size()) != payload.size()) {
    throw std::runtime_error("sweep wire: EOF inside frame payload");
  }
  if (crc32(payload.data(), payload.size()) != expected_crc) {
    throw std::runtime_error("sweep wire: frame CRC mismatch");
  }
  *type = static_cast<MsgType>(payload.front());
  body->assign(payload.begin() + 1, payload.end());
  return true;
}

}  // namespace sunmap::sweep
