#pragma once

#include "select/explorer.h"

namespace sunmap::sweep {

/// Deterministic failure-injection and pacing knobs threaded through
/// SweepOptions into the worker child processes — how the crash-recovery
/// and kill/resume tests stage their scenarios without timing races.
struct WorkerHooks {
  /// Global grid index at which a worker calls _exit(42) instead of
  /// sending the point — a mid-shard crash. -1 disables.
  int crash_at_point = -1;
  /// When false (default) the coordinator clears crash_at_point before
  /// spawning the replacement worker, so the retried shard succeeds; true
  /// keeps the bomb armed and the retry dies too (the named-error path).
  bool crash_persistent = false;
  /// Sleep this long before sending each point — widens the window a
  /// kill/resume test needs to SIGKILL a sweep that is provably mid-grid.
  int sleep_ms_per_point = 0;
};

/// Body of a sweep worker child process; never returns (every exit path is
/// _exit, so the child skips the parent's static destructors). Reads
/// kAssignShard frames from cmd_fd, evaluates each assigned [begin, end)
/// range of the request's grid via ExplorationRequest::on_point streaming —
/// with one ExplorerContextPool persisting across every assignment this
/// worker serves — and writes kPoint/kShardDone frames to res_fd.
/// Exits 0 on kShutdown or cmd EOF, 1 after sending kError for a fatal
/// exception, 3 when the coordinator vanished mid-write (EPIPE).
[[noreturn]] void run_worker_loop(const select::ExplorationRequest& request,
                                  int worker_id, int cmd_fd, int res_fd,
                                  const WorkerHooks& hooks);

}  // namespace sunmap::sweep
