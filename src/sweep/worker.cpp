#include "sweep/worker.h"

#include <unistd.h>

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "sweep/wire.h"

namespace sunmap::sweep {

namespace {

/// Best-effort kError to the coordinator; the worker is about to _exit, so
/// a vanished reader (EPIPE) is simply ignored.
void send_error(int res_fd, const std::string& message) {
  std::vector<std::uint8_t> body;
  body.reserve(message.size());
  for (const char c : message) {
    body.push_back(static_cast<std::uint8_t>(c));
  }
  (void)write_frame(res_fd, MsgType::kError, body);
}

}  // namespace

void run_worker_loop(const select::ExplorationRequest& request,
                     int worker_id, int cmd_fd, int res_fd,
                     const WorkerHooks& hooks) {
  // One pool for the worker's lifetime: every assignment this worker serves
  // rebinds the same per-topology contexts instead of rebuilding them.
  select::ExplorerContextPool pool;
  select::DesignSpaceExplorer explorer;
  try {
    for (;;) {
      MsgType type{};
      std::vector<std::uint8_t> body;
      if (!read_frame(cmd_fd, &type, &body)) _exit(0);
      if (type == MsgType::kShutdown) _exit(0);
      if (type != MsgType::kAssignShard) {
        send_error(res_fd, "sweep worker: unexpected message type " +
                               std::to_string(static_cast<int>(type)));
        _exit(1);
      }
      PayloadReader reader(body.data(), body.size());
      const std::int32_t shard_index =
          static_cast<std::int32_t>(reader.get_u32());
      const std::uint64_t begin = reader.get_u64();
      const std::uint64_t end = reader.get_u64();

      select::ExplorationRequest sub = request;
      sub.point_begin = static_cast<std::size_t>(begin);
      sub.point_end = static_cast<std::size_t>(end);
      sub.context_pool = &pool;
      std::uint64_t next_index = begin;
      sub.on_point = [&](const select::PointResult& result) {
        const std::uint64_t index = next_index++;
        if (hooks.sleep_ms_per_point > 0) {
          ::usleep(static_cast<useconds_t>(hooks.sleep_ms_per_point) * 1000);
        }
        if (hooks.crash_at_point >= 0 &&
            index == static_cast<std::uint64_t>(hooks.crash_at_point)) {
          _exit(42);
        }
        PointRecord record =
            record_from_result(result, static_cast<std::size_t>(index));
        record.shard_index = shard_index;
        record.worker_id = worker_id;
        if (!write_frame(res_fd, MsgType::kPoint,
                         encode_point_record(record))) {
          // Coordinator is gone; an orphaned worker must not keep burning
          // CPU on a sweep nobody will merge.
          _exit(3);
        }
      };
      (void)explorer.explore(sub);

      std::vector<std::uint8_t> done;
      put_u32(done, static_cast<std::uint32_t>(shard_index));
      if (!write_frame(res_fd, MsgType::kShardDone, done)) _exit(3);
    }
  } catch (const std::exception& e) {
    send_error(res_fd, e.what());
    _exit(1);
  } catch (...) {
    send_error(res_fd, "sweep worker: unknown fatal error");
    _exit(1);
  }
  _exit(1);
}

}  // namespace sunmap::sweep
