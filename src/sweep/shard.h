#pragma once

#include <cstddef>
#include <vector>

namespace sunmap::sweep {

/// One contiguous slice [begin, end) of the deterministic design-point
/// grid — the unit of work a coordinator hands a worker process. Shards
/// partition the grid by point index, so the set of shards is a function of
/// (num_points, num_shards) alone and independent of the axis sizes that
/// produced the grid.
struct Shard {
  int index = 0;
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Partitions [0, num_points) into at most `num_shards` contiguous,
/// non-empty shards covering every point exactly once. Sizes differ by at
/// most one (the first `num_points % num_shards` shards get the extra
/// point), so any shard count balances within a point. Fewer shards than
/// requested come back when the grid has fewer points than shards; an empty
/// grid yields no shards. Throws std::invalid_argument for num_shards < 1.
[[nodiscard]] std::vector<Shard> plan_shards(std::size_t num_points,
                                             int num_shards);

}  // namespace sunmap::sweep
