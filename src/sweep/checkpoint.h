#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "select/explorer.h"
#include "sweep/wire.h"

namespace sunmap::sweep {

/// Checkpoint journal format (version 1):
///
///   [8B magic "SWEEPJNL"][u32 version][u64 request fingerprint]
///   [u32 description length][description bytes]
///   then zero or more kPoint frames (wire.h framing), one per completed
///   design point, appended and fsync'd as the coordinator receives them.
///
/// The journal is append-only: resume reads every whole frame, stops at the
/// first truncated or corrupt one (a crash mid-append), truncates the file
/// back to the last whole record, and continues appending. The fingerprint
/// binds the journal to one exploration request; a resume against a
/// different request is rejected, never silently merged.
inline constexpr char kJournalMagic[8] = {'S', 'W', 'E', 'E',
                                          'P', 'J', 'N', 'L'};
inline constexpr std::uint32_t kJournalVersion = 1;

struct JournalHeader {
  std::uint32_t version = kJournalVersion;
  std::uint64_t fingerprint = 0;
  std::string description;
};

/// Everything read_journal() recovers from an existing checkpoint.
struct JournalContents {
  JournalHeader header;
  std::vector<PointRecord> records;
  /// Offset of the first byte past the last whole record — where appending
  /// resumes after truncating a damaged tail.
  std::uint64_t valid_bytes = 0;
  /// True when a partial or corrupt trailing record was dropped.
  bool tail_truncated = false;
};

/// Parses a checkpoint journal. Throws std::runtime_error when the file
/// cannot be opened or its header is not a supported sweep journal; a
/// damaged record tail is NOT an error (tail_truncated reports it).
[[nodiscard]] JournalContents read_journal(const std::string& path);

/// Append-only journal writer; every append() writes one frame and fsyncs,
/// so a completed point survives any later crash.
class JournalWriter {
 public:
  JournalWriter() = default;
  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Creates (truncating any previous file) a fresh journal with the given
  /// header. Throws std::runtime_error on I/O errors.
  static JournalWriter create(const std::string& path,
                              const JournalHeader& header);

  /// Re-opens an existing journal for appending, first truncating it to
  /// `valid_bytes` (from read_journal) so a damaged tail never precedes new
  /// records. Throws std::runtime_error on I/O errors.
  static JournalWriter open_for_append(const std::string& path,
                                       std::uint64_t valid_bytes);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  /// Raw descriptor — what a forked worker closes so the journal has
  /// exactly one writer.
  [[nodiscard]] int fd() const { return fd_; }
  void append(const PointRecord& record);
  /// fsync; append() already syncs per record, this is for explicit
  /// flush-on-interrupt call sites that want to state the intent.
  void sync();
  void close();

 private:
  int fd_ = -1;
};

/// FNV-1a digest of every result-affecting field of an exploration request:
/// the application (name, cores, commodities), the topology library, every
/// sweep axis, and the base configuration (objective/routing/search,
/// constraints, weights, annealing schedule, floorplan options, fault set).
/// Deliberately excluded: thread counts, streaming callbacks, point
/// sub-ranges, and context pools — none change any result bit, so a resume
/// may vary them freely.
[[nodiscard]] std::uint64_t request_fingerprint(
    const select::ExplorationRequest& request);

/// Fixed-width lowercase hex of a fingerprint, for error messages and the
/// resume command line.
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fingerprint);

}  // namespace sunmap::sweep
