#include "sweep/coordinator.h"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <deque>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sweep/checkpoint.h"
#include "sweep/shard.h"
#include "sweep/wire.h"

namespace sunmap::sweep {

namespace {

volatile std::sig_atomic_t g_stop = 0;

/// One contiguous range of grid points handed to a worker. Initially the
/// whole shard; after a crash, the unfinished remainder (retried == true).
struct Assignment {
  int shard_index = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  bool retried = false;
};

struct WorkerProc {
  pid_t pid = -1;
  int id = -1;
  int cmd_fd = -1;  ///< Coordinator writes assignments here.
  int res_fd = -1;  ///< Coordinator reads results here.
  bool alive = false;
  bool shutdown_sent = false;
  bool has_assignment = false;
  Assignment assignment;
  /// Next grid index this worker's current assignment should stream — the
  /// crash-recovery cut: everything before it already reached the journal.
  std::size_t next_expected = 0;
  std::size_t points_done = 0;
};

/// run_sweep ignores SIGPIPE for its duration (workers can die with frames
/// in flight; write() must return EPIPE, not kill the coordinator). The
/// previous disposition is restored on every exit path.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &previous_);
  }
  ~ScopedSigpipeIgnore() { ::sigaction(SIGPIPE, &previous_, nullptr); }
  ScopedSigpipeIgnore(const ScopedSigpipeIgnore&) = delete;
  ScopedSigpipeIgnore& operator=(const ScopedSigpipeIgnore&) = delete;

 private:
  struct sigaction previous_ {};
};

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

void request_stop() { g_stop = 1; }
bool stop_requested() { return g_stop != 0; }
void reset_stop() { g_stop = 0; }

SweepResult run_sweep(const select::ExplorationRequest& request,
                      const SweepOptions& options) {
  if (options.num_workers < 1) {
    throw std::invalid_argument("run_sweep: num_workers must be >= 1");
  }
  if (options.num_shards < 0) {
    throw std::invalid_argument("run_sweep: num_shards must be >= 0");
  }
  if (options.resume && options.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "run_sweep: --resume requires a checkpoint path");
  }
  if (request.app == nullptr || request.library == nullptr) {
    throw std::invalid_argument("run_sweep: request has no app or library");
  }
  if (request.sim_finalists > 0 || request.sim_rank) {
    throw std::invalid_argument(
        "run_sweep: --sim-finalists/--sim-rank are incompatible with a "
        "distributed sweep (merged reports carry no routes to simulate); "
        "run the simulation tier in-process");
  }

  const auto& library = *request.library;
  const auto points = select::DesignSpaceExplorer::expand(request);
  const std::size_t total = points.size();

  SweepResult out;
  SweepStats& stats = out.stats;
  stats.total_points = total;
  stats.fingerprint = request_fingerprint(request);

  // ---- Merge scaffolding: the full report skeleton in grid order. ----
  select::ExplorationReport& report = out.report;
  report.results.resize(total);
  for (std::size_t p = 0; p < total; ++p) {
    report.results[p].point = points[p];
    report.results[p].selection.candidates.resize(library.size());
    for (std::size_t t = 0; t < library.size(); ++t) {
      report.results[p].selection.candidates[t].topology = library[t].get();
    }
  }
  std::vector<char> have(total, 0);
  std::size_t have_count = 0;
  std::size_t cursor = 0;
  select::WinnerTracker tracker(request);
  std::vector<std::pair<double, double>> area_power;
  // Strict-order absorption: winners/Pareto/on_point see points exactly as
  // the single-process explorer would, whatever order records arrived in.
  const auto absorb_ready = [&]() {
    while (cursor < total && have[cursor] != 0) {
      auto& result = report.results[cursor];
      result.selection.best_index =
          select::best_feasible_index(result.selection.candidates);
      tracker.consider(result, static_cast<int>(cursor));
      for (const auto& candidate : result.selection.candidates) {
        if (!candidate.feasible()) continue;
        area_power.emplace_back(candidate.result.eval.design_area_mm2,
                                candidate.result.eval.design_power_mw);
      }
      if (request.on_point) request.on_point(result);
      ++cursor;
    }
  };

  // ---- Checkpoint: load (resume) or create, then keep appending. ----
  JournalWriter journal;
  if (!options.checkpoint_path.empty()) {
    if (options.resume) {
      auto contents = read_journal(options.checkpoint_path);
      if (contents.header.fingerprint != stats.fingerprint) {
        throw std::runtime_error(
            "run_sweep: checkpoint " + options.checkpoint_path +
            " was written for request fingerprint " +
            fingerprint_hex(contents.header.fingerprint) +
            " but the current request fingerprints to " +
            fingerprint_hex(stats.fingerprint) + "; refusing to resume");
      }
      for (const auto& record : contents.records) {
        const auto index = static_cast<std::size_t>(record.point_index);
        if (index >= total || have[index] != 0) continue;
        apply_record(record, &report.results[index]);
        have[index] = 1;
        ++have_count;
      }
      stats.points_from_checkpoint = have_count;
      journal = JournalWriter::open_for_append(options.checkpoint_path,
                                               contents.valid_bytes);
    } else {
      JournalHeader header;
      header.fingerprint = stats.fingerprint;
      header.description = options.description;
      journal = JournalWriter::create(options.checkpoint_path, header);
    }
  }
  absorb_ready();

  // ---- Work queue: per shard, the contiguous runs of missing points. ----
  const int shard_count =
      options.num_shards > 0 ? options.num_shards : options.num_workers;
  std::deque<Assignment> queue;
  for (const Shard& shard : plan_shards(total, shard_count)) {
    std::size_t i = shard.begin;
    while (i < shard.end) {
      while (i < shard.end && have[i] != 0) ++i;
      if (i >= shard.end) break;
      std::size_t j = i;
      while (j < shard.end && have[j] == 0) ++j;
      queue.push_back(Assignment{shard.index, i, j, false});
      i = j;
    }
  }

  ScopedSigpipeIgnore sigpipe_guard;
  std::deque<WorkerProc> workers;
  WorkerHooks hooks = options.hooks;
  int next_worker_id = 0;

  const auto kill_all = [&]() {
    for (auto& worker : workers) {
      if (!worker.alive) continue;
      ::kill(worker.pid, SIGKILL);
      close_fd(worker.cmd_fd);
      close_fd(worker.res_fd);
      int status = 0;
      ::waitpid(worker.pid, &status, 0);
      worker.alive = false;
    }
  };

  const auto spawn_worker = [&]() -> WorkerProc& {
    int cmd[2] = {-1, -1};
    int res[2] = {-1, -1};
    if (::pipe(cmd) != 0 || ::pipe(res) != 0) {
      throw std::runtime_error("run_sweep: pipe() failed");
    }
    const int id = next_worker_id++;
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw std::runtime_error("run_sweep: fork() failed");
    }
    if (pid == 0) {
      // Child: drop every descriptor that is not its own pipe ends, so a
      // sibling's EOF detection and the journal's single-writer property
      // survive any interleaving of spawns and crashes.
      ::close(cmd[1]);
      ::close(res[0]);
      if (journal.fd() >= 0) ::close(journal.fd());
      for (const auto& other : workers) {
        if (other.cmd_fd >= 0) ::close(other.cmd_fd);
        if (other.res_fd >= 0) ::close(other.res_fd);
      }
      run_worker_loop(request, id, cmd[0], res[1], hooks);
    }
    ::close(cmd[0]);
    ::close(res[1]);
    WorkerProc worker;
    worker.pid = pid;
    worker.id = id;
    worker.cmd_fd = cmd[1];
    worker.res_fd = res[0];
    worker.alive = true;
    workers.push_back(worker);
    ++stats.workers_spawned;
    return workers.back();
  };

  const auto send_shutdown = [&](WorkerProc& worker) {
    if (!worker.alive || worker.shutdown_sent) return;
    worker.shutdown_sent = true;
    (void)write_frame(worker.cmd_fd, MsgType::kShutdown, {});
    close_fd(worker.cmd_fd);
  };

  // Forward declaration dance: dispatch and the death handler recurse into
  // each other (a dead worker's replacement gets dispatched immediately).
  std::function<void(WorkerProc&)> dispatch;
  std::function<void(WorkerProc&)> on_worker_death;

  dispatch = [&](WorkerProc& worker) {
    if (!worker.alive || worker.has_assignment) return;
    if (queue.empty()) {
      send_shutdown(worker);
      return;
    }
    const Assignment assignment = queue.front();
    queue.pop_front();
    worker.assignment = assignment;
    worker.has_assignment = true;
    worker.next_expected = assignment.begin;
    std::vector<std::uint8_t> body;
    put_u32(body, static_cast<std::uint32_t>(assignment.shard_index));
    put_u64(body, assignment.begin);
    put_u64(body, assignment.end);
    if (!write_frame(worker.cmd_fd, MsgType::kAssignShard, body)) {
      on_worker_death(worker);
    }
  };

  on_worker_death = [&](WorkerProc& worker) {
    if (!worker.alive) return;
    worker.alive = false;
    close_fd(worker.cmd_fd);
    close_fd(worker.res_fd);
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    if (!worker.has_assignment) return;  // Retired after shutdown: benign.
    worker.has_assignment = false;
    ++stats.worker_crashes;
    const Assignment& assignment = worker.assignment;
    if (worker.next_expected < assignment.end) {
      std::fprintf(stderr,
                   "sweep: worker %d died (status %d) on shard %d points "
                   "[%zu, %zu); re-queueing [%zu, %zu)\n",
                   worker.id, status, assignment.shard_index,
                   assignment.begin, assignment.end, worker.next_expected,
                   assignment.end);
      if (assignment.retried) {
        throw std::runtime_error(
            "run_sweep: worker died twice on shard " +
            std::to_string(assignment.shard_index) + " points [" +
            std::to_string(worker.next_expected) + ", " +
            std::to_string(assignment.end) + "); giving up");
      }
      Assignment retry = assignment;
      retry.begin = worker.next_expected;
      retry.retried = true;
      queue.push_front(retry);
      ++stats.shards_requeued;
    }
    // One recovery knob: unless the test asked for a persistent crash, the
    // re-queued range must succeed on the replacement worker.
    if (!hooks.crash_persistent) hooks.crash_at_point = -1;
    dispatch(spawn_worker());
  };

  const auto any_assignment_pending = [&]() {
    if (!queue.empty()) return true;
    for (const auto& worker : workers) {
      if (worker.alive && worker.has_assignment) return true;
    }
    return false;
  };

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  auto last_progress = start;
  const auto print_progress = [&](bool final_line) {
    if (!options.progress) return;
    const auto now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - start).count();
    if (!final_line &&
        std::chrono::duration<double>(now - last_progress).count() <
            options.progress_interval_s) {
      return;
    }
    last_progress = now;
    const double rate =
        elapsed > 0.0 ? static_cast<double>(stats.points_evaluated) / elapsed
                      : 0.0;
    const std::size_t remaining = total - have_count;
    std::string workers_text;
    for (const auto& worker : workers) {
      if (!worker.alive && worker.points_done == 0) continue;
      if (!workers_text.empty()) workers_text += ", ";
      char cell[64];
      std::snprintf(cell, sizeof(cell), "w%d: %.1f p/s", worker.id,
                    elapsed > 0.0
                        ? static_cast<double>(worker.points_done) / elapsed
                        : 0.0);
      workers_text += cell;
    }
    std::fprintf(stderr,
                 "sweep: %zu/%zu points (%.1f%%), %.1f points/s, ETA %.1fs, "
                 "workers [%s]\n",
                 have_count, total,
                 total != 0
                     ? 100.0 * static_cast<double>(have_count) /
                           static_cast<double>(total)
                     : 100.0,
                 rate,
                 rate > 0.0 ? static_cast<double>(remaining) / rate : 0.0,
                 workers_text.c_str());
  };

  try {
    const int initial =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(options.num_workers), queue.size()));
    for (int i = 0; i < initial; ++i) dispatch(spawn_worker());

    while (any_assignment_pending()) {
      if (g_stop != 0) {
        stats.interrupted = true;
        break;
      }
      std::vector<pollfd> fds;
      std::vector<WorkerProc*> fd_workers;
      for (auto& worker : workers) {
        if (!worker.alive || worker.res_fd < 0) continue;
        fds.push_back(pollfd{worker.res_fd, POLLIN, 0});
        fd_workers.push_back(&worker);
      }
      if (fds.empty()) break;
      const int ready = ::poll(fds.data(), fds.size(), 200);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("run_sweep: poll() failed");
      }
      for (std::size_t f = 0; f < fds.size(); ++f) {
        if ((fds[f].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        WorkerProc& worker = *fd_workers[f];
        if (!worker.alive) continue;
        MsgType type{};
        std::vector<std::uint8_t> body;
        bool ok = false;
        try {
          ok = read_frame(worker.res_fd, &type, &body);
        } catch (const std::exception&) {
          on_worker_death(worker);  // Torn frame == dying worker.
          continue;
        }
        if (!ok) {
          on_worker_death(worker);
          continue;
        }
        switch (type) {
          case MsgType::kPoint: {
            const PointRecord record =
                decode_point_record(body.data(), body.size());
            const auto index =
                static_cast<std::size_t>(record.point_index);
            if (index < total && have[index] == 0) {
              if (journal.is_open()) journal.append(record);
              apply_record(record, &report.results[index]);
              have[index] = 1;
              ++have_count;
              ++stats.points_evaluated;
              absorb_ready();
            }
            worker.next_expected = index + 1;
            ++worker.points_done;
            print_progress(false);
            break;
          }
          case MsgType::kShardDone: {
            worker.has_assignment = false;
            dispatch(worker);
            break;
          }
          case MsgType::kError: {
            const std::string message(body.begin(), body.end());
            throw std::runtime_error("run_sweep: worker " +
                                     std::to_string(worker.id) +
                                     " failed: " + message);
          }
          default:
            throw std::runtime_error(
                "run_sweep: unexpected message type from worker " +
                std::to_string(worker.id));
        }
      }
    }

    if (stats.interrupted) {
      // Completed points are already journaled and fsync'd; cut the
      // workers loose and surface the partial state to the caller.
      journal.sync();
      kill_all();
    } else {
      for (auto& worker : workers) send_shutdown(worker);
      for (auto& worker : workers) {
        if (!worker.alive) continue;
        close_fd(worker.res_fd);
        int status = 0;
        ::waitpid(worker.pid, &status, 0);
        worker.alive = false;
      }
    }
  } catch (...) {
    journal.sync();
    kill_all();
    throw;
  }

  print_progress(true);
  if (!stats.interrupted) {
    report.winners = tracker.take();
    report.pareto = select::pareto_frontier(area_power);
  }
  journal.close();
  return out;
}

}  // namespace sunmap::sweep
