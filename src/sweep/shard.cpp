#include "sweep/shard.h"

#include <algorithm>
#include <stdexcept>

namespace sunmap::sweep {

std::vector<Shard> plan_shards(std::size_t num_points, int num_shards) {
  if (num_shards < 1) {
    throw std::invalid_argument("plan_shards: num_shards must be >= 1");
  }
  std::vector<Shard> shards;
  if (num_points == 0) return shards;
  const std::size_t count =
      std::min<std::size_t>(static_cast<std::size_t>(num_shards), num_points);
  const std::size_t base = num_points / count;
  const std::size_t extra = num_points % count;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < count; ++s) {
    Shard shard;
    shard.index = static_cast<int>(s);
    shard.begin = begin;
    shard.end = begin + base + (s < extra ? 1 : 0);
    begin = shard.end;
    shards.push_back(shard);
  }
  return shards;
}

}  // namespace sunmap::sweep
