#pragma once

#include <string>
#include <vector>

#include "fplan/floorplan.h"
#include "mapping/core_graph.h"
#include "topo/topology.h"

namespace sunmap::gen {

/// Instantiated switch of the chosen topology.
struct NetlistSwitch {
  int id = 0;  ///< Switch NodeId in the topology.
  std::string instance_name;
  int in_ports = 0;
  int out_ports = 0;
};

/// Switch-to-switch channel.
struct NetlistLink {
  int src_switch = 0;
  int dst_switch = 0;
  double length_mm = 0.0;  ///< 0 when no floorplan was supplied.
};

/// Network interface binding a core to its ingress/egress switches.
struct NetlistNi {
  int slot = 0;
  std::string core_name;
  int ingress_switch = 0;
  int egress_switch = 0;
};

/// Structural description of the selected NoC — the intermediate form the
/// generator (phase 3, the ×pipesCompiler substitute) renders into
/// SystemC-style source. Built from a topology plus a mapping; link lengths
/// are annotated from a floorplan when one is available.
class Netlist {
 public:
  /// `core_to_slot[i]` is the slot of core i (as produced by the mapper).
  static Netlist build(const topo::Topology& topology,
                       const mapping::CoreGraph& app,
                       const std::vector<int>& core_to_slot,
                       const fplan::Floorplan* floorplan = nullptr);

  [[nodiscard]] const std::string& design_name() const { return name_; }
  [[nodiscard]] const std::string& topology_name() const {
    return topology_name_;
  }
  [[nodiscard]] const std::vector<NetlistSwitch>& switches() const {
    return switches_;
  }
  [[nodiscard]] const std::vector<NetlistLink>& links() const {
    return links_;
  }
  [[nodiscard]] const std::vector<NetlistNi>& interfaces() const {
    return interfaces_;
  }

  /// Human-readable summary (switch/link/NI counts and bindings).
  [[nodiscard]] std::string summary() const;

 private:
  std::string name_;
  std::string topology_name_;
  std::vector<NetlistSwitch> switches_;
  std::vector<NetlistLink> links_;
  std::vector<NetlistNi> interfaces_;
};

/// Renders a Netlist as SystemC-style C++ source, standing in for the
/// ×pipes soft-macro instantiation of the paper (SystemC itself is not
/// available offline; the cycle-accurate executable model lives in
/// src/sim — see DESIGN.md §2).
class SystemCWriter {
 public:
  struct Output {
    std::string header;  ///< Parameterised switch/NI module declarations.
    std::string top;     ///< Top-level instantiation and signal binding.
  };

  [[nodiscard]] Output emit(const Netlist& netlist) const;

  /// Writes <design>_noc.h and <design>_top.cpp into `directory` (which
  /// must exist). Returns the two file paths.
  std::vector<std::string> write_to(const Netlist& netlist,
                                    const std::string& directory) const;
};

}  // namespace sunmap::gen
