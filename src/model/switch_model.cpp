#include "model/switch_model.h"

#include <cmath>
#include <stdexcept>

namespace sunmap::model {

namespace {

void check_ports(int in_ports, int out_ports) {
  if (in_ports < 1 || out_ports < 1 || in_ports > 1024 || out_ports > 1024) {
    throw std::invalid_argument("SwitchModel: port count out of range");
  }
}

}  // namespace

double SwitchModel::crossbar_area_mm2(int in_ports, int out_ports) const {
  check_ports(in_ports, out_ports);
  const double w = static_cast<double>(tech_.flit_width_bits);
  return tech_.area_crossbar_per_bit2 * in_ports * out_ports * w * w;
}

double SwitchModel::buffer_area_mm2(int in_ports) const {
  check_ports(in_ports, 1);
  return tech_.area_buffer_per_bit * in_ports * tech_.buffer_depth_flits *
         tech_.flit_width_bits;
}

double SwitchModel::logic_area_mm2(int in_ports, int out_ports) const {
  check_ports(in_ports, out_ports);
  return tech_.area_logic_per_port * (in_ports + out_ports) +
         tech_.area_fixed;
}

double SwitchModel::area_mm2(int in_ports, int out_ports) const {
  return crossbar_area_mm2(in_ports, out_ports) + buffer_area_mm2(in_ports) +
         logic_area_mm2(in_ports, out_ports);
}

double SwitchModel::energy_pj_per_bit(int in_ports, int out_ports) const {
  check_ports(in_ports, out_ports);
  const double radix =
      0.5 * (static_cast<double>(in_ports) + static_cast<double>(out_ports));
  return tech_.energy_fixed_pj + tech_.energy_per_port_pj * radix +
         tech_.energy_port2_pj * radix * radix;
}

double SwitchModel::static_power_mw(int in_ports, int out_ports) const {
  check_ports(in_ports, out_ports);
  const double radix =
      0.5 * (static_cast<double>(in_ports) + static_cast<double>(out_ports));
  return tech_.static_fixed_mw + tech_.static_per_port2_mw * radix * radix;
}

double LinkModel::power_mw(double load_mbps, double length_mm) const {
  if (load_mbps < 0.0 || length_mm < 0.0) {
    throw std::invalid_argument("LinkModel: negative load or length");
  }
  // MB/s -> bits/s, pJ -> mW: 1e6 * 8 * 1e-12 * 1e3 = 8e-3.
  return load_mbps * 8e-3 * energy_pj_per_bit(length_mm);
}

int LinkModel::latency_cycles(double length_mm) const {
  if (length_mm < 0.0) {
    throw std::invalid_argument("LinkModel: negative length");
  }
  const double delay_ps = tech_.link_delay_ps_per_mm * length_mm;
  return std::max(1, static_cast<int>(std::ceil(delay_ps /
                                                tech_.clock_period_ps)));
}

}  // namespace sunmap::model
