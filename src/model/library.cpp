#include "model/library.h"

#include <stdexcept>

namespace sunmap::model {

AreaPowerLibrary::AreaPowerLibrary(const TechParams& tech, int max_radix)
    : tech_(tech), switches_(tech), links_(tech), max_radix_(max_radix) {
  if (max_radix < 1) {
    throw std::invalid_argument("AreaPowerLibrary: max_radix < 1");
  }
  entries_.reserve(static_cast<std::size_t>(max_radix) *
                   static_cast<std::size_t>(max_radix));
  for (int in = 1; in <= max_radix; ++in) {
    for (int out = 1; out <= max_radix; ++out) {
      entries_.push_back(SwitchConfigEntry{
          in, out, switches_.area_mm2(in, out),
          switches_.energy_pj_per_bit(in, out),
          switches_.static_power_mw(in, out)});
    }
  }
}

const SwitchConfigEntry& AreaPowerLibrary::lookup(int in_ports,
                                                  int out_ports) const {
  if (in_ports < 1 || out_ports < 1 || in_ports > max_radix_ ||
      out_ports > max_radix_) {
    throw std::out_of_range("AreaPowerLibrary: configuration not in library");
  }
  return entries_[static_cast<std::size_t>(in_ports - 1) *
                      static_cast<std::size_t>(max_radix_) +
                  static_cast<std::size_t>(out_ports - 1)];
}

std::vector<SwitchConfigEntry> AreaPowerLibrary::all_entries() const {
  return entries_;
}

ResolvedSwitchTable::ResolvedSwitchTable(
    const AreaPowerLibrary& library,
    const std::vector<std::pair<int, int>>& switch_ports) {
  entries_.reserve(switch_ports.size());
  // Accumulate in switch-index order so the totals are bit-identical to a
  // caller summing lookup() results over switches 0..n-1.
  for (const auto& [in_ports, out_ports] : switch_ports) {
    entries_.push_back(library.lookup(in_ports, out_ports));
    total_area_mm2_ += entries_.back().area_mm2;
    total_static_power_mw_ += entries_.back().static_power_mw;
  }
}

}  // namespace sunmap::model
