#pragma once

#include <utility>
#include <vector>

#include "model/switch_model.h"
#include "model/tech.h"

namespace sunmap::model {

/// One row of the generated area-power library: a switch configuration with
/// its area and per-bit energy.
struct SwitchConfigEntry {
  int in_ports = 0;
  int out_ports = 0;
  double area_mm2 = 0.0;
  double energy_pj_per_bit = 0.0;
  double static_power_mw = 0.0;
};

/// Precomputed area-power library over switch configurations for one
/// technology point (§5: "The area-power models are used to generate
/// area-power libraries for various switch configurations for different
/// technology parameters"). The mapper and selector look configurations up
/// here instead of re-evaluating the analytical models in their inner loops.
class AreaPowerLibrary {
 public:
  explicit AreaPowerLibrary(const TechParams& tech = TechParams::um100(),
                            int max_radix = 33);

  /// Entry for an in_ports x out_ports switch; throws std::out_of_range for
  /// configurations beyond max_radix.
  [[nodiscard]] const SwitchConfigEntry& lookup(int in_ports,
                                                int out_ports) const;

  [[nodiscard]] double link_energy_pj_per_bit_mm() const {
    return tech_.link_energy_pj_per_bit_mm;
  }

  [[nodiscard]] const TechParams& tech() const { return tech_; }
  [[nodiscard]] const SwitchModel& switch_model() const { return switches_; }
  [[nodiscard]] const LinkModel& link_model() const { return links_; }
  [[nodiscard]] int max_radix() const { return max_radix_; }

  /// All entries, e.g. for dumping the library.
  [[nodiscard]] std::vector<SwitchConfigEntry> all_entries() const;

 private:
  TechParams tech_;
  SwitchModel switches_;
  LinkModel links_;
  int max_radix_;
  std::vector<SwitchConfigEntry> entries_;  // (in-1) * max_radix + (out-1)
};

/// Library rows resolved once for the concrete switches of one topology:
/// entry(sw) is the area/power/energy row for switch sw's port
/// configuration, fetched by plain array index instead of the per-call
/// bounds checks and index arithmetic of AreaPowerLibrary::lookup(). The
/// mapping-invariant aggregates (total silicon area, total static power) are
/// precomputed so the mapping evaluator never re-sums them per candidate.
///
/// Entries are copied by value, so the table stays valid independently of
/// the AreaPowerLibrary it was resolved from.
class ResolvedSwitchTable {
 public:
  ResolvedSwitchTable() = default;

  /// `switch_ports[sw]` is the (in_ports, out_ports) pair of switch sw.
  /// Throws std::out_of_range if any configuration is beyond the library's
  /// max radix.
  ResolvedSwitchTable(const AreaPowerLibrary& library,
                      const std::vector<std::pair<int, int>>& switch_ports);

  [[nodiscard]] const SwitchConfigEntry& entry(int sw) const {
    return entries_[static_cast<std::size_t>(sw)];
  }
  [[nodiscard]] double energy_pj_per_bit(int sw) const {
    return entries_[static_cast<std::size_t>(sw)].energy_pj_per_bit;
  }
  [[nodiscard]] int num_switches() const {
    return static_cast<int>(entries_.size());
  }
  [[nodiscard]] double total_area_mm2() const { return total_area_mm2_; }
  [[nodiscard]] double total_static_power_mw() const {
    return total_static_power_mw_;
  }

 private:
  std::vector<SwitchConfigEntry> entries_;
  double total_area_mm2_ = 0.0;
  double total_static_power_mw_ = 0.0;
};

}  // namespace sunmap::model
