#pragma once

namespace sunmap::model {

/// Technology and microarchitecture parameters for the area/power libraries
/// (§5). The paper generates its libraries for a 0.1 µm process from the
/// ×pipes switch architecture [17], ORION bit-energy models [22] and the
/// wiring parameters of "The Future of Wires" [23]; since none of those are
/// available offline, the constants below are calibrated so the resulting
/// design areas and powers land in the ranges the paper reports (VOPD mesh
/// ~55 mm^2 / ~370 mW; switches a few tenths of a mm^2). The *structure* of
/// the models (crossbar quadratic in ports, buffers linear in ports x depth,
/// energy superlinear in radix, link energy linear in length) follows the
/// cited sources.
struct TechParams {
  // Process.
  double feature_um = 0.1;  ///< Drawn feature size (0.1 µm in the paper).
  double vdd = 1.2;         ///< Supply voltage at 0.1 µm.

  // Switch microarchitecture (×pipes-style: input FIFOs, matrix crossbar,
  // round-robin allocator, pipeline registers).
  int flit_width_bits = 32;    ///< Flit/phit width.
  int buffer_depth_flits = 8;  ///< FIFO depth per input port.

  // Area coefficients (mm^2), fitted at 0.1 µm.
  double area_crossbar_per_bit2 = 2.2e-6;  ///< x in*out*flit^2 (crosspoints).
  double area_buffer_per_bit = 28.0e-6;    ///< x ports*depth*flit (FIFO bit).
  double area_logic_per_port = 6.5e-3;     ///< allocator/control per port.
  double area_fixed = 8.0e-3;              ///< clocking, pipeline registers.

  // Switch dynamic energy coefficients (pJ per bit traversing the switch).
  double energy_fixed_pj = 0.3;      ///< buffer read+write baseline.
  double energy_per_port_pj = 0.10;  ///< arbiter/control, linear in radix.
  double energy_port2_pj = 0.22;     ///< crossbar+allocator, quadratic term.

  // Switch static power (leakage + clock tree, mW per instantiated switch).
  // ORION models both; this is what makes topologies with fewer, smaller
  // switches (the butterfly) win on power in §6.1 even at similar hop
  // counts.
  double static_fixed_mw = 2.0;
  double static_per_port2_mw = 0.5;

  // Link energy (pJ per bit per mm), from repeated global wires at 0.1 µm.
  // Kept well below the switch energies: "the link power dissipation is
  // much lower than the switch power dissipation" (§6.1).
  double link_energy_pj_per_bit_mm = 0.15;

  // Link delay (ps per mm) for repeated wires; used by the simulator to
  // derive multi-cycle links for very long floorplanned channels.
  double link_delay_ps_per_mm = 70.0;
  double clock_period_ps = 1000.0;  ///< 1 GHz network clock.

  /// The paper's 0.1 µm technology point (also the default constructor).
  static TechParams um100() { return TechParams{}; }

  /// Memberwise equality — what EvalContext::rebind uses to decide whether
  /// the resolved switch tables and floorplan cache survive a config change,
  /// so it cannot drift from the fields.
  bool operator==(const TechParams&) const = default;
};

}  // namespace sunmap::model
