#pragma once

#include "model/tech.h"

namespace sunmap::model {

/// Analytical area and bit-energy model of a ×pipes-style switch (§5: "The
/// area calculations include the crossbar area, buffer area, logic
/// (including control) area ... fine granularity of details"). All methods
/// are pure functions of the port configuration and the technology point.
class SwitchModel {
 public:
  explicit SwitchModel(const TechParams& tech) : tech_(tech) {}

  /// Matrix crossbar: in x out crosspoints, each flit_width^2 bits wide.
  [[nodiscard]] double crossbar_area_mm2(int in_ports, int out_ports) const;

  /// Input FIFO buffers: one per input port, buffer_depth flits deep.
  [[nodiscard]] double buffer_area_mm2(int in_ports) const;

  /// Allocator, routing and flow-control logic plus pipeline registers.
  [[nodiscard]] double logic_area_mm2(int in_ports, int out_ports) const;

  /// Total switch area for the given configuration.
  [[nodiscard]] double area_mm2(int in_ports, int out_ports) const;

  /// ORION-style average energy for one bit traversing the switch
  /// (buffer write + read, crossbar, allocator). Grows superlinearly with
  /// the radix, which is why the butterfly's 4x4 switches beat the direct
  /// topologies' 5x5 switches on power (§6.1).
  [[nodiscard]] double energy_pj_per_bit(int in_ports, int out_ports) const;

  /// Always-on power of one instantiated switch (leakage + clock tree, mW);
  /// grows quadratically with the radix like the crossbar and allocator.
  [[nodiscard]] double static_power_mw(int in_ports, int out_ports) const;

  [[nodiscard]] const TechParams& tech() const { return tech_; }

 private:
  TechParams tech_;
};

/// Repeated-global-wire link model (paper ref [23]).
class LinkModel {
 public:
  explicit LinkModel(const TechParams& tech) : tech_(tech) {}

  /// Energy to move one bit across a link of the given length.
  [[nodiscard]] double energy_pj_per_bit(double length_mm) const {
    return tech_.link_energy_pj_per_bit_mm * length_mm;
  }

  /// Power in mW for a sustained load (MB/s) over the given length.
  [[nodiscard]] double power_mw(double load_mbps, double length_mm) const;

  /// Pipeline cycles a flit needs to traverse the link (>= 1).
  [[nodiscard]] int latency_cycles(double length_mm) const;

  [[nodiscard]] const TechParams& tech() const { return tech_; }

 private:
  TechParams tech_;
};

}  // namespace sunmap::model
