#include "apps/apps.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/prng.h"

namespace sunmap::apps {

using fplan::BlockShape;
using mapping::CoreGraph;

CoreGraph vopd() {
  CoreGraph app("vopd");
  app.add_core("vld", 3.0);
  app.add_core("run_le_dec", 2.5);
  app.add_core("inv_scan", 2.5);
  app.add_core("acdc_pred", 3.5);
  app.add_core("stripe_mem", BlockShape::hard_block(2.0, 2.0));
  app.add_core("iquant", 3.0);
  app.add_core("idct", 4.5);
  app.add_core("up_samp", 4.0);
  app.add_core("vop_rec", 4.0);
  app.add_core("pad", 3.5);
  app.add_core("vop_mem", BlockShape::hard_block(2.5, 2.6));
  app.add_core("arm", 6.0);

  auto flow = [&](const char* a, const char* b, double mbps) {
    app.add_flow(app.core_index(a), app.core_index(b), mbps);
  };
  flow("vld", "run_le_dec", 70);
  flow("run_le_dec", "inv_scan", 362);
  flow("inv_scan", "acdc_pred", 362);
  flow("acdc_pred", "stripe_mem", 49);
  flow("stripe_mem", "iquant", 27);
  flow("acdc_pred", "iquant", 362);
  flow("iquant", "idct", 357);
  flow("idct", "up_samp", 353);
  flow("up_samp", "vop_rec", 300);
  flow("vop_rec", "vop_mem", 313);
  flow("vop_mem", "up_samp", 500);
  flow("pad", "vop_mem", 313);
  flow("arm", "pad", 16);
  flow("pad", "arm", 94);
  return app;
}

CoreGraph mpeg4() {
  CoreGraph app("mpeg4");
  app.add_core("vu", 4.5);
  app.add_core("au", 3.0);
  app.add_core("med_cpu", 6.0);
  app.add_core("rast", 3.5);
  app.add_core("adsp", 4.0);
  app.add_core("idct_etc", 5.0);
  app.add_core("up_samp", 4.0);
  app.add_core("bab", 3.5);
  app.add_core("risc", 5.5);
  app.add_core("sram1", BlockShape::hard_block(2.2, 2.3));
  app.add_core("sram2", BlockShape::hard_block(2.2, 2.3));
  app.add_core("sdram", BlockShape::hard_block(3.0, 3.0));

  auto flow = [&](const char* a, const char* b, double mbps) {
    app.add_flow(app.core_index(a), app.core_index(b), mbps);
  };
  // The shared SDRAM is the hotspot: several flows individually approach or
  // exceed a 500 MB/s link, so single-path routing cannot be feasible.
  flow("med_cpu", "sdram", 600);
  flow("sdram", "idct_etc", 600);
  flow("sdram", "up_samp", 910);
  flow("risc", "sdram", 670);
  flow("vu", "sdram", 190);
  flow("rast", "sdram", 40);
  flow("adsp", "sdram", 40);
  flow("au", "sdram", 0.5);
  flow("bab", "sdram", 32);
  flow("risc", "sram1", 500);
  flow("risc", "sram2", 250);
  flow("bab", "sram2", 173);
  return app;
}

CoreGraph dsp_filter() {
  CoreGraph app("dsp_filter");
  app.add_core("arm", 6.0);
  app.add_core("memory", BlockShape::hard_block(2.2, 2.3));
  app.add_core("display", 4.0);
  app.add_core("fft", 4.5);
  app.add_core("ifft", 4.5);
  app.add_core("filter", 4.0);

  auto flow = [&](const char* a, const char* b, double mbps) {
    app.add_flow(app.core_index(a), app.core_index(b), mbps);
  };
  flow("arm", "memory", 200);
  flow("memory", "arm", 200);
  flow("arm", "display", 200);
  flow("memory", "fft", 200);
  flow("fft", "filter", 600);
  flow("filter", "ifft", 600);
  flow("ifft", "memory", 200);
  flow("memory", "display", 200);
  return app;
}

CoreGraph netproc16() {
  CoreGraph app("netproc16");
  for (int i = 0; i < 16; ++i) {
    app.add_core("node" + std::to_string(i), 3.0);
  }
  // Uniform pattern: every node talks to its ring successor, a mid-range
  // node, and the node halfway across, like packets fanning out of each
  // request generator (Fig 8(a)).
  for (int i = 0; i < 16; ++i) {
    app.add_flow(i, (i + 1) % 16, 400.0);
    app.add_flow(i, (i + 5) % 16, 300.0);
    app.add_flow(i, (i + 8) % 16, 200.0);
  }
  return app;
}

CoreGraph pip() {
  CoreGraph app("pip");
  app.add_core("inp_mem", BlockShape::hard_block(2.0, 2.0));
  app.add_core("hs", 2.5);
  app.add_core("vs", 2.5);
  app.add_core("jug1", 2.0);
  app.add_core("jug2", 2.0);
  app.add_core("mem", BlockShape::hard_block(2.2, 2.2));
  app.add_core("hvs", 3.0);
  app.add_core("op_disp", 3.5);

  auto flow = [&](const char* a, const char* b, double mbps) {
    app.add_flow(app.core_index(a), app.core_index(b), mbps);
  };
  flow("inp_mem", "hs", 128);
  flow("hs", "vs", 64);
  flow("vs", "jug1", 64);
  flow("jug1", "mem", 64);
  flow("inp_mem", "jug2", 64);
  flow("jug2", "mem", 64);
  flow("mem", "hvs", 128);
  flow("hvs", "op_disp", 64);
  return app;
}

CoreGraph mwd() {
  CoreGraph app("mwd");
  app.add_core("in", 2.5);
  app.add_core("nr", 3.0);
  app.add_core("hs", 2.5);
  app.add_core("vs", 2.5);
  app.add_core("hvs", 3.0);
  app.add_core("jug1", 2.0);
  app.add_core("jug2", 2.0);
  app.add_core("mem1", BlockShape::hard_block(2.0, 2.0));
  app.add_core("mem2", BlockShape::hard_block(2.0, 2.0));
  app.add_core("mem3", BlockShape::hard_block(2.0, 2.0));
  app.add_core("se", 2.5);
  app.add_core("blend", 3.0);

  auto flow = [&](const char* a, const char* b, double mbps) {
    app.add_flow(app.core_index(a), app.core_index(b), mbps);
  };
  flow("in", "nr", 128);
  flow("in", "hs", 64);
  flow("nr", "mem1", 64);
  flow("nr", "mem2", 64);
  flow("mem1", "hs", 64);
  flow("hs", "vs", 96);
  flow("vs", "mem3", 96);
  flow("mem3", "hvs", 96);
  flow("hvs", "jug1", 96);
  flow("mem2", "jug2", 96);
  flow("jug1", "blend", 96);
  flow("jug2", "se", 96);
  flow("se", "blend", 64);
  return app;
}

CoreGraph synthetic(const SyntheticSpec& spec) {
  if (spec.num_cores < 2) {
    throw std::invalid_argument("synthetic: need at least two cores");
  }
  if (spec.edge_density < 0.0 || spec.edge_density > 1.0) {
    throw std::invalid_argument("synthetic: edge_density must be in [0, 1]");
  }
  if (spec.min_bandwidth_mbps <= 0.0 ||
      spec.max_bandwidth_mbps < spec.min_bandwidth_mbps) {
    throw std::invalid_argument("synthetic: invalid bandwidth range");
  }

  util::Prng prng(spec.seed);
  CoreGraph app("synthetic" + std::to_string(spec.num_cores) + "_" +
                std::to_string(spec.seed));
  for (int i = 0; i < spec.num_cores; ++i) {
    const double area =
        spec.min_core_area_mm2 +
        prng.next_double() * (spec.max_core_area_mm2 - spec.min_core_area_mm2);
    app.add_core("core" + std::to_string(i), area);
  }

  auto bandwidth = [&]() {
    return spec.min_bandwidth_mbps +
           prng.next_double() *
               (spec.max_bandwidth_mbps - spec.min_bandwidth_mbps);
  };

  // Random spanning chain keeps the graph weakly connected.
  std::vector<int> order(static_cast<std::size_t>(spec.num_cores));
  for (int i = 0; i < spec.num_cores; ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  std::shuffle(order.begin(), order.end(), prng);
  for (int i = 0; i + 1 < spec.num_cores; ++i) {
    app.add_flow(order[static_cast<std::size_t>(i)],
                 order[static_cast<std::size_t>(i + 1)], bandwidth());
  }
  for (int i = 0; i < spec.num_cores; ++i) {
    for (int j = 0; j < spec.num_cores; ++j) {
      if (i == j || app.graph().has_edge(i, j)) continue;
      if (prng.chance(spec.edge_density)) {
        app.add_flow(i, j, bandwidth());
      }
    }
  }
  return app;
}

}  // namespace sunmap::apps
