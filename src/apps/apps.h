#pragma once

#include <cstdint>

#include "mapping/core_graph.h"

namespace sunmap::apps {

/// The benchmark applications of §6, encoded from the published core graphs.
/// Bandwidths are MB/s as annotated in the paper's figures; core areas are
/// plausible 0.1 µm block sizes chosen so the floorplanned design areas land
/// in the ranges the paper reports (the paper takes core area/power values
/// as tool inputs and does not list them). See DESIGN.md §2 for the
/// substitution notes.

/// Video Object Plane Decoder, 12 cores (Fig 3(a)); the motivating example
/// and the subject of Figs 3(d) and 6. Total traffic ~3.5 GB/s with a
/// dominant pipeline vld -> run-length decode -> inverse scan -> AC/DC
/// prediction -> iquant -> idct -> upsampling -> VOP reconstruction.
mapping::CoreGraph vopd();

/// MPEG4 decoder, 12 cores around a shared SDRAM (Fig 7(a)); the SDRAM
/// edges (910/670/600 MB/s) exceed a 500 MB/s link, which is why only
/// split-traffic routing produces feasible mappings (§6.1, Fig 9(a)).
mapping::CoreGraph mpeg4();

/// Six-core DSP filter (Fig 10(a)): ARM + memory + display control path at
/// 200 MB/s and an FFT -> filter -> IFFT data path at 600 MB/s.
mapping::CoreGraph dsp_filter();

/// 16-node network processor (§6.2, Fig 8). The paper drives this design
/// with traffic generators and relaxes bandwidth constraints for the
/// mapping; this core graph mirrors that with a uniform communication
/// pattern (ring + mid-range + across flows per node).
mapping::CoreGraph netproc16();

/// Picture-in-picture application, 8 cores — a standard companion workload
/// in the NoC mapping literature (same family as VOPD/MPEG4), with two
/// scaler pipelines joining in a shared memory. Useful as an octagon-sized
/// benchmark.
mapping::CoreGraph pip();

/// Multi-window display application, 12 cores — another standard workload
/// from the same literature, a noise-reduction + scaling pipeline with
/// three memories and a blender.
mapping::CoreGraph mwd();

/// Parameters for the synthetic workload generator.
struct SyntheticSpec {
  int num_cores = 16;
  /// Expected fraction of ordered core pairs connected by a flow.
  double edge_density = 0.2;
  double min_bandwidth_mbps = 10.0;
  double max_bandwidth_mbps = 500.0;
  double min_core_area_mm2 = 2.0;
  double max_core_area_mm2 = 6.0;
  std::uint64_t seed = 1;
};

/// Deterministic random core graph (TGFF-style) used by property tests and
/// the scaling benchmark. The generated graph is always weakly connected.
mapping::CoreGraph synthetic(const SyntheticSpec& spec);

}  // namespace sunmap::apps
