#include "io/core_graph_io.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace sunmap::io {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("core graph line " + std::to_string(line) + ": " +
                           message);
}

double parse_number(const std::string& token, int line) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) fail(line, "trailing junk in number " + token);
    return value;
  } catch (const std::logic_error&) {
    fail(line, "expected a number, got '" + token + "'");
  }
}

}  // namespace

mapping::CoreGraph read_core_graph(std::istream& in) {
  std::optional<mapping::CoreGraph> app;
  struct PendingFlow {
    std::string src, dst;
    double mbps;
    int line;
  };
  std::vector<PendingFlow> flows;

  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream tokens(raw);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank line

    if (keyword == "app") {
      std::string name;
      if (!(tokens >> name)) fail(line, "app needs a name");
      if (app.has_value()) fail(line, "duplicate app statement");
      app.emplace(name);
    } else if (keyword == "core") {
      if (!app.has_value()) fail(line, "core before app statement");
      std::string name;
      std::string second;
      if (!(tokens >> name >> second)) fail(line, "core needs a name and shape");
      if (second == "hard") {
        std::string w, h;
        if (!(tokens >> w >> h)) fail(line, "hard core needs width height");
        app->add_core(name, fplan::BlockShape::hard_block(
                                parse_number(w, line),
                                parse_number(h, line)));
      } else if (second == "soft") {
        std::string area, lo, hi;
        if (!(tokens >> area >> lo >> hi)) {
          fail(line, "soft core needs area min_aspect max_aspect");
        }
        auto shape =
            fplan::BlockShape::soft_block(parse_number(area, line));
        shape.min_aspect = parse_number(lo, line);
        shape.max_aspect = parse_number(hi, line);
        if (shape.min_aspect <= 0.0 || shape.max_aspect < shape.min_aspect) {
          fail(line, "invalid aspect range");
        }
        app->add_core(name, shape);
      } else {
        app->add_core(name, parse_number(second, line));
      }
    } else if (keyword == "flow") {
      if (!app.has_value()) fail(line, "flow before app statement");
      std::string src, dst, mbps;
      if (!(tokens >> src >> dst >> mbps)) {
        fail(line, "flow needs src dst bandwidth");
      }
      flows.push_back(PendingFlow{src, dst, parse_number(mbps, line), line});
    } else {
      fail(line, "unknown keyword '" + keyword + "'");
    }
    std::string extra;
    if (tokens >> extra) fail(line, "unexpected token '" + extra + "'");
  }

  if (!app.has_value()) {
    throw std::runtime_error("core graph: missing app statement");
  }
  for (const auto& flow : flows) {
    try {
      app->add_flow(app->core_index(flow.src), app->core_index(flow.dst),
                    flow.mbps);
    } catch (const std::exception& e) {
      fail(flow.line, e.what());
    }
  }
  return *std::move(app);
}

mapping::CoreGraph read_core_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("core graph: cannot open " + path);
  }
  return read_core_graph(in);
}

void write_core_graph(const mapping::CoreGraph& app, std::ostream& out) {
  out << "app " << app.name() << "\n";
  for (int c = 0; c < app.num_cores(); ++c) {
    const auto& core = app.core(c);
    out << "core " << core.name << " ";
    if (core.shape.soft) {
      out << "soft " << core.shape.area_mm2 << " " << core.shape.min_aspect
          << " " << core.shape.max_aspect << "\n";
    } else {
      out << "hard " << core.shape.width_mm << " " << core.shape.height_mm
          << "\n";
    }
  }
  for (const auto& e : app.graph().edges()) {
    out << "flow " << app.core(e.src).name << " " << app.core(e.dst).name
        << " " << e.weight << "\n";
  }
}

std::string core_graph_to_string(const mapping::CoreGraph& app) {
  std::ostringstream out;
  write_core_graph(app, out);
  return out.str();
}

}  // namespace sunmap::io
