#include "io/exploration_io.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <utility>

#include "fault/fault.h"
#include "io/csv.h"
#include "sim/simulator.h"

namespace sunmap::io {

namespace {

/// Shortest round-trippable decimal rendering of a double.
std::string number(double value) {
  char buffer[40];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  double parsed = 0.0;
  std::sscanf(buffer, "%lf", &parsed);
  if (parsed == value) {
    for (int precision = 1; precision < 17; ++precision) {
      char shorter[40];
      std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
      std::sscanf(shorter, "%lf", &parsed);
      if (parsed == value) return shorter;
    }
  }
  return buffer;
}

/// JSON number, or null for non-finite values (RFC 8259 has no infinity).
std::string json_number(double value) {
  return std::isfinite(value) ? number(value) : "null";
}

std::string json_string(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char escaped[8];
          std::snprintf(escaped, sizeof(escaped), "\\u%04x",
                        static_cast<unsigned>(c));
          out += escaped;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string exploration_report_csv(const select::ExplorationReport& report) {
  std::ostringstream out;
  out << "point,shard,worker,routing,objective,search,restarts,swap_passes,"
         "fplan_engine,"
         "fplan_sizing_passes,faults,link_bandwidth_mbps,"
         "max_area_mm2,topology,"
         "feasible,best,avg_hops,avg_latency_ns,design_area_mm2,"
         "design_power_mw,dynamic_power_mw,static_power_mw,"
         "min_bandwidth_mbps,cost,"
         "fault_scenarios,worst_fault_cost,fault_disconnected,"
         "sim_latency_cycles,sim_analytical_cycles,sim_model_error,"
         "sim_status,sim_best\n";
  // Cells the sim re-rank crowned (--sim-rank): the sim_best column marks
  // them with 1 and every other simulator-scored cell with 0.
  std::set<std::pair<int, int>> sim_best;
  for (const auto& best : report.sim_winners) {
    if (best.found()) sim_best.emplace(best.point_index, best.topology_index);
  }
  for (std::size_t p = 0; p < report.results.size(); ++p) {
    const auto& result = report.results[p];
    const auto& config = result.point.config;
    for (std::size_t t = 0; t < result.selection.candidates.size(); ++t) {
      const auto& candidate = result.selection.candidates[t];
      const auto& eval = candidate.result.eval;
      out << p << ",";
      if (result.shard_index >= 0) out << result.shard_index;
      out << ",";
      if (result.worker_id >= 0) out << result.worker_id;
      out << "," << route::to_string(config.routing) << ","
          << mapping::to_string(config.objective) << ","
          << mapping::to_string(config.search) << ","
          << (config.search == mapping::SearchKind::kRestartAnnealing
                  ? std::to_string(config.annealing_restarts)
                  : std::string())
          << "," << config.swap_passes << ","
          << fplan::to_string(config.floorplan.engine) << ","
          << config.floorplan.sizing_passes << ","
          << fault::describe(config.faults) << ","
          << number(config.link_bandwidth_mbps) << ",";
      if (std::isfinite(config.max_area_mm2)) {
        out << number(config.max_area_mm2);
      }
      out << "," << csv_field(candidate.topology->name()) << ","
          << (eval.feasible() ? 1 : 0) << ","
          << (static_cast<int>(t) == result.selection.best_index ? 1 : 0)
          << "," << number(eval.avg_switch_hops) << ","
          << number(eval.avg_path_latency_ns) << ","
          << number(eval.design_area_mm2) << ","
          << number(eval.design_power_mw) << ","
          << number(eval.dynamic_power_mw) << ","
          << number(eval.static_power_mw) << ","
          << number(eval.max_link_load_mbps) << "," << number(eval.cost)
          << "," << eval.fault_outcomes.size() << ","
          << number(eval.worst_fault_cost) << ","
          << eval.infeasible_fault_scenarios << ",";
      // Finalist-tier simulation columns: empty unless the simulator scored
      // this cell (--sim-finalists / ExplorationRequest::sim_finalists).
      if (candidate.sim.has_value()) {
        out << number(candidate.sim->simulated_latency_cycles) << ","
            << number(candidate.sim->analytical_latency_cycles) << ","
            << number(candidate.sim->model_error()) << ","
            << sim::to_string(candidate.sim->stats.status) << ","
            << (sim_best.count({static_cast<int>(p), static_cast<int>(t)})
                    ? 1
                    : 0);
      } else {
        out << ",,,,";
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string exploration_report_json(const select::ExplorationReport& report) {
  std::ostringstream out;
  out << "{\n  \"points\": [\n";
  for (std::size_t p = 0; p < report.results.size(); ++p) {
    const auto& result = report.results[p];
    const auto& config = result.point.config;
    out << "    {\"label\": " << json_string(result.point.label())
        << ", \"shard\": "
        << (result.shard_index >= 0 ? std::to_string(result.shard_index)
                                    : std::string("null"))
        << ", \"worker\": "
        << (result.worker_id >= 0 ? std::to_string(result.worker_id)
                                  : std::string("null"))
        << ", \"routing\": " << json_string(route::to_string(config.routing))
        << ", \"objective\": "
        << json_string(mapping::to_string(config.objective))
        << ", \"search\": " << json_string(mapping::to_string(config.search))
        << ", \"restarts\": "
        << (config.search == mapping::SearchKind::kRestartAnnealing
                ? std::to_string(config.annealing_restarts)
                : std::string("null"))
        << ", \"swap_passes\": " << config.swap_passes
        << ", \"fplan_engine\": "
        << json_string(fplan::to_string(config.floorplan.engine))
        << ", \"fplan_sizing_passes\": " << config.floorplan.sizing_passes
        << ", \"faults\": " << json_string(fault::describe(config.faults))
        << ", \"link_bandwidth_mbps\": "
        << json_number(config.link_bandwidth_mbps)
        << ", \"max_area_mm2\": " << json_number(config.max_area_mm2)
        << ",\n     \"best\": ";
    const auto* best = result.selection.best();
    out << (best != nullptr ? json_string(best->topology->name()) : "null");
    out << ", \"candidates\": [\n";
    for (std::size_t t = 0; t < result.selection.candidates.size(); ++t) {
      const auto& candidate = result.selection.candidates[t];
      const auto& eval = candidate.result.eval;
      out << "      {\"topology\": " << json_string(candidate.topology->name())
          << ", \"feasible\": " << (eval.feasible() ? "true" : "false")
          << ", \"avg_hops\": " << json_number(eval.avg_switch_hops)
          << ", \"avg_latency_ns\": " << json_number(eval.avg_path_latency_ns)
          << ", \"design_area_mm2\": " << json_number(eval.design_area_mm2)
          << ", \"design_power_mw\": " << json_number(eval.design_power_mw)
          << ", \"min_bandwidth_mbps\": "
          << json_number(eval.max_link_load_mbps)
          << ", \"cost\": " << json_number(eval.cost)
          << ", \"fault_scenarios\": " << eval.fault_outcomes.size()
          << ", \"worst_fault_cost\": " << json_number(eval.worst_fault_cost)
          << ", \"fault_disconnected\": " << eval.infeasible_fault_scenarios
          << ", \"sim\": ";
      if (candidate.sim.has_value()) {
        const auto& sim = *candidate.sim;
        out << "{\"latency_cycles\": "
            << json_number(sim.simulated_latency_cycles)
            << ", \"analytical_cycles\": "
            << json_number(sim.analytical_latency_cycles)
            << ", \"model_error\": " << json_number(sim.model_error())
            << ", \"status\": "
            << json_string(sim::to_string(sim.stats.status))
            << ", \"delivered\": " << sim.stats.packets_delivered
            << ", \"flit_events\": " << sim.stats.flit_events << "}";
      } else {
        out << "null";
      }
      out << "}" << (t + 1 < result.selection.candidates.size() ? "," : "")
          << "\n";
    }
    out << "    ]}" << (p + 1 < report.results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"winners\": [\n";
  for (std::size_t w = 0; w < report.winners.size(); ++w) {
    const auto& best = report.winners[w];
    out << "    {\"objective\": "
        << json_string(mapping::to_string(best.objective));
    if (best.found()) {
      const auto& result =
          report.results[static_cast<std::size_t>(best.point_index)];
      const auto& candidate =
          result.selection
              .candidates[static_cast<std::size_t>(best.topology_index)];
      out << ", \"point\": " << best.point_index
          << ", \"label\": " << json_string(result.point.label())
          << ", \"topology\": " << json_string(candidate.topology->name())
          << ", \"cost\": " << json_number(candidate.result.eval.cost);
    } else {
      out << ", \"point\": null, \"topology\": null, \"cost\": null";
    }
    out << "}" << (w + 1 < report.winners.size() ? "," : "") << "\n";
  }
  // Simulated-delay winners (--sim-rank): one entry per objective group,
  // parallel to "winners"; the array is empty when the re-rank was off.
  out << "  ],\n  \"sim_winners\": [\n";
  for (std::size_t w = 0; w < report.sim_winners.size(); ++w) {
    const auto& best = report.sim_winners[w];
    out << "    {\"objective\": "
        << json_string(mapping::to_string(best.objective));
    if (best.found()) {
      const auto& result =
          report.results[static_cast<std::size_t>(best.point_index)];
      const auto& candidate =
          result.selection
              .candidates[static_cast<std::size_t>(best.topology_index)];
      out << ", \"point\": " << best.point_index
          << ", \"label\": " << json_string(result.point.label())
          << ", \"topology\": " << json_string(candidate.topology->name())
          << ", \"sim_latency_cycles\": "
          << (candidate.sim.has_value()
                  ? json_number(candidate.sim->simulated_latency_cycles)
                  : std::string("null"))
          << ", \"cost\": " << json_number(candidate.result.eval.cost);
    } else {
      out << ", \"point\": null, \"topology\": null, "
             "\"sim_latency_cycles\": null, \"cost\": null";
    }
    out << "}" << (w + 1 < report.sim_winners.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"pareto\": [\n";
  for (std::size_t i = 0; i < report.pareto.size(); ++i) {
    out << "    {\"area_mm2\": " << json_number(report.pareto[i].area_mm2)
        << ", \"power_mw\": " << json_number(report.pareto[i].power_mw) << "}"
        << (i + 1 < report.pareto.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace sunmap::io
