#pragma once

#include <iosfwd>
#include <string>

#include "mapping/core_graph.h"

namespace sunmap::io {

/// Plain-text core-graph format for driving SUNMAP from files. Grammar
/// (one statement per line, '#' starts a comment):
///
///   app <name>
///   core <name> <area_mm2>                      # soft block
///   core <name> hard <width_mm> <height_mm>     # hard block
///   core <name> soft <area_mm2> <min_aspect> <max_aspect>
///   flow <src_core> <dst_core> <bandwidth_MBps>
///
/// Example (the paper's Fig 10(a) DSP filter):
///
///   app dsp_filter
///   core arm 6.0
///   core memory hard 2.2 2.3
///   flow arm memory 200
///
/// Parse errors throw std::runtime_error with the offending line number.
mapping::CoreGraph read_core_graph(std::istream& in);

/// Reads a core graph from a file path.
mapping::CoreGraph read_core_graph_file(const std::string& path);

/// Writes the graph in the same format; read_core_graph round-trips it.
void write_core_graph(const mapping::CoreGraph& app, std::ostream& out);

/// Serialises to a string (convenience for tests and tools).
std::string core_graph_to_string(const mapping::CoreGraph& app);

}  // namespace sunmap::io
