#pragma once

#include <string>
#include <vector>

#include "select/selector.h"

namespace sunmap::io {

/// CSV renderings of SUNMAP results, for spreadsheets/plotting scripts.
/// Columns are stable and documented here rather than inferred, so the
/// files are safe to consume programmatically.

/// topology,feasible,avg_hops,avg_latency_ns,design_area_mm2,
/// design_power_mw,dynamic_power_mw,static_power_mw,min_bandwidth_mbps,cost
std::string selection_report_csv(const select::SelectionReport& report);

/// area_mm2,power_mw — one row per Pareto point.
std::string pareto_csv(const std::vector<select::ParetoPoint>& frontier);

/// Generic numeric series: first column x, then one column per named
/// series. Series must all have the same length as xs.
struct CsvSeries {
  std::string name;
  std::vector<double> values;
};
std::string series_csv(const std::string& x_name,
                       const std::vector<double>& xs,
                       const std::vector<CsvSeries>& series);

/// Quotes a CSV field when needed (commas, quotes, or newlines inside),
/// per RFC 4180. Shared by every CSV writer so user-supplied names (custom
/// topologies, core names) cannot shift columns.
std::string csv_field(const std::string& text);

/// Writes content to path, throwing std::runtime_error on failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace sunmap::io
