#include "io/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sunmap::io {

std::string csv_field(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) return text;
  std::string quoted = "\"";
  for (char c : text) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string selection_report_csv(const select::SelectionReport& report) {
  std::ostringstream out;
  out << "topology,feasible,avg_hops,avg_latency_ns,design_area_mm2,"
         "design_power_mw,dynamic_power_mw,static_power_mw,"
         "min_bandwidth_mbps,cost\n";
  for (const auto& candidate : report.candidates) {
    const auto& eval = candidate.result.eval;
    out << csv_field(candidate.topology->name()) << ","
        << (eval.feasible() ? 1 : 0) << "," << eval.avg_switch_hops << ","
        << eval.avg_path_latency_ns << "," << eval.design_area_mm2 << ","
        << eval.design_power_mw << "," << eval.dynamic_power_mw << ","
        << eval.static_power_mw << "," << eval.max_link_load_mbps << ","
        << eval.cost << "\n";
  }
  return out.str();
}

std::string pareto_csv(const std::vector<select::ParetoPoint>& frontier) {
  std::ostringstream out;
  out << "area_mm2,power_mw\n";
  for (const auto& point : frontier) {
    out << point.area_mm2 << "," << point.power_mw << "\n";
  }
  return out.str();
}

std::string series_csv(const std::string& x_name,
                       const std::vector<double>& xs,
                       const std::vector<CsvSeries>& series) {
  for (const auto& s : series) {
    if (s.values.size() != xs.size()) {
      throw std::invalid_argument("series_csv: length mismatch in " + s.name);
    }
  }
  std::ostringstream out;
  out << csv_field(x_name);
  for (const auto& s : series) out << "," << csv_field(s.name);
  out << "\n";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out << xs[i];
    for (const auto& s : series) out << "," << s.values[i];
    out << "\n";
  }
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("csv: cannot open " + path);
  }
  out << content;
  if (!out) {
    throw std::runtime_error("csv: write failed for " + path);
  }
}

}  // namespace sunmap::io
