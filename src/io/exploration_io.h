#pragma once

#include <string>

#include "select/explorer.h"

namespace sunmap::io {

/// Flat CSV of a batched exploration, one row per (design point, topology)
/// cell. Columns are stable and documented here rather than inferred, so
/// the files are safe to consume programmatically:
///
/// point,shard,worker,routing,objective,search,restarts,swap_passes,
/// fplan_engine,fplan_sizing_passes,faults,link_bandwidth_mbps,
/// max_area_mm2,topology,feasible,best,avg_hops,avg_latency_ns,
/// design_area_mm2,design_power_mw,dynamic_power_mw,static_power_mw,
/// min_bandwidth_mbps,cost,fault_scenarios,worst_fault_cost,
/// fault_disconnected,sim_latency_cycles,sim_analytical_cycles,
/// sim_model_error,sim_status
///
/// `best` marks the point's selected topology; an unconstrained area cap is
/// written as the empty field. `shard`/`worker` are the distributed-sweep
/// provenance of the point (which shard it belonged to, which worker
/// process evaluated it); a point evaluated in-process leaves both empty.
/// `faults` is the compact fault-set tag ("none" when the point injects no
/// faults); `fault_scenarios` counts the materialised scenarios for that
/// topology, `worst_fault_cost` is the worst degraded-scenario cost, and
/// `fault_disconnected` counts scenarios that disconnected at least one
/// commodity. The four sim_* columns carry the flit-level finalist tier's
/// verdict (simulated vs analytical delay in cycles, their relative error,
/// and the run status); all four are empty for cells the simulator did not
/// score — the tier is opt-in via --sim-finalists.
std::string exploration_report_csv(const select::ExplorationReport& report);

/// Structured JSON of the same report: the design-point grid with per-
/// topology results, the per-objective winners, and the area/power Pareto
/// frontier. Non-finite numbers (an unconstrained area cap, the infinite
/// cost of an unevaluated mapping) are emitted as null per RFC 8259.
std::string exploration_report_json(const select::ExplorationReport& report);

}  // namespace sunmap::io
