// Transactional incremental-routing tests. The RoutingSession must be
// bit-identical to the from-scratch canonical routing loop after any mix of
// speculative solves, pops, commits and nested frames — and the DeltaTxn
// protocol built on top of it (including batched multi-swap moves) must
// leave every evaluation exactly where a from-scratch stack would, over
// randomized accept/reject walks on mesh/torus/butterfly topologies under
// all four routing kinds.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "mapping/delta_txn.h"
#include "mapping/eval_context.h"
#include "mapping/mapper.h"
#include "route/routing.h"
#include "route/routing_session.h"
#include "topo/library.h"
#include "util/prng.h"

namespace sunmap::route {
namespace {

/// A small commodity list in canonical (decreasing-bandwidth) order over the
/// first `n` slots of a topology, with a deterministic endpoint pattern.
struct Workload {
  std::vector<double> demands;
  std::vector<CommodityEndpoints> endpoints;
};

Workload make_workload(const topo::Topology& topology, int commodities) {
  Workload w;
  const int slots = topology.num_slots();
  for (int k = 0; k < commodities; ++k) {
    w.demands.push_back(400.0 - 17.0 * k);
    const topo::SlotId src = (3 * k) % slots;
    topo::SlotId dst = (3 * k + 5) % slots;
    if (dst == src) dst = (dst + 1) % slots;
    w.endpoints.push_back(CommodityEndpoints{src, dst});
  }
  return w;
}

/// From-scratch reference: a throwaway session with no cached trace routes
/// the canonical loop directly.
void reference_solve(const RoutingEngine& engine, const Workload& w,
                     const std::vector<CommodityEndpoints>& endpoints,
                     LoadMap& loads, std::vector<RouteSet>& routes) {
  RoutingSession fresh;
  fresh.reset(w.demands, /*reroute_passes=*/2);
  fresh.solve(engine, endpoints, loads, /*speculative=*/false);
  routes.clear();
  for (int k = 0; k < fresh.num_commodities(); ++k) {
    routes.push_back(fresh.route(k));
  }
  EXPECT_EQ(fresh.stats().full_solves, 1);
  EXPECT_EQ(fresh.stats().incremental_solves, 0);
}

void expect_same_state(const RoutingSession& session, const LoadMap& loads,
                       const LoadMap& expected_loads,
                       const std::vector<RouteSet>& expected_routes) {
  for (std::size_t e = 0; e < expected_loads.values().size(); ++e) {
    EXPECT_EQ(loads.values()[e], expected_loads.values()[e]) << "edge " << e;
  }
  for (int k = 0; k < session.num_commodities(); ++k) {
    EXPECT_TRUE(same_routes(session.route(k),
                            expected_routes[static_cast<std::size_t>(k)]))
        << "commodity " << k;
  }
}

TEST(RoutingSession, IncrementalSolveBitIdenticalToFromScratch) {
  for (const RoutingKind kind : {RoutingKind::kMinPath,
                                 RoutingKind::kSplitAll}) {
    const auto mesh = topo::make_mesh_for(16);
    RoutingEngine engine(*mesh, kind);
    const auto w = make_workload(*mesh, 10);
    RoutingSession session;
    session.reset(w.demands, /*reroute_passes=*/2);
    const int num_edges = mesh->switch_graph().num_edges();
    LoadMap loads(num_edges);
    session.solve(engine, w.endpoints, loads, /*speculative=*/false);

    // A sequence of single-endpoint moves, each checked bitwise against a
    // from-scratch solve of the same assignment.
    auto endpoints = w.endpoints;
    util::Prng prng(7);
    for (int step = 0; step < 12; ++step) {
      const auto idx =
          static_cast<std::size_t>(prng.next_int(0, 9));
      endpoints[idx].dst =
          (endpoints[idx].dst + 1 + prng.next_int(0, mesh->num_slots() - 3)) %
          mesh->num_slots();
      if (endpoints[idx].dst == endpoints[idx].src) {
        endpoints[idx].dst = (endpoints[idx].dst + 1) % mesh->num_slots();
      }
      session.solve(engine, endpoints, loads, /*speculative=*/false);
      LoadMap expected_loads(num_edges);
      std::vector<RouteSet> expected_routes;
      reference_solve(engine, w, endpoints, expected_loads, expected_routes);
      SCOPED_TRACE(std::string(to_string(kind)) + " step " +
                   std::to_string(step));
      expect_same_state(session, loads, expected_loads, expected_routes);
      if (::testing::Test::HasFatalFailure()) return;
    }
    // One commodity moving at a time keeps the walk under the dirty
    // fallback, so the incremental path was actually exercised.
    EXPECT_GT(session.stats().incremental_solves, 0);
    EXPECT_GT(session.stats().reused, 0);
  }
}

TEST(RoutingSession, SpeculativePopRestoresDisplacedStateVerbatim) {
  const auto mesh = topo::make_mesh_for(16);
  RoutingEngine engine(*mesh, RoutingKind::kMinPath);
  const auto w = make_workload(*mesh, 10);
  RoutingSession session;
  session.reset(w.demands, /*reroute_passes=*/2);
  const int num_edges = mesh->switch_graph().num_edges();
  LoadMap loads(num_edges);
  session.solve(engine, w.endpoints, loads, /*speculative=*/false);
  LoadMap base_loads(num_edges);
  std::vector<RouteSet> base_routes;
  reference_solve(engine, w, w.endpoints, base_loads, base_routes);

  auto moved = w.endpoints;
  std::swap(moved[2].dst, moved[5].dst);
  {
    // The speculative result itself must match a from-scratch solve.
    session.solve(engine, moved, loads, /*speculative=*/true);
    EXPECT_EQ(session.open_frames(), 1);
    LoadMap expected(num_edges);
    std::vector<RouteSet> expected_routes;
    reference_solve(engine, w, moved, expected, expected_routes);
    expect_same_state(session, loads, expected, expected_routes);
  }
  session.pop();
  EXPECT_EQ(session.open_frames(), 0);
  // After the pop, replaying the base endpoints must reuse the restored
  // trace and land bit-identically on the base state.
  session.solve(engine, w.endpoints, loads, /*speculative=*/false);
  expect_same_state(session, loads, base_loads, base_routes);
}

TEST(RoutingSession, NestedFramesUnwindInOrder) {
  const auto mesh = topo::make_mesh_for(16);
  RoutingEngine engine(*mesh, RoutingKind::kSplitAll);
  const auto w = make_workload(*mesh, 8);
  RoutingSession session;
  session.reset(w.demands, /*reroute_passes=*/2);
  const int num_edges = mesh->switch_graph().num_edges();
  LoadMap loads(num_edges);
  session.solve(engine, w.endpoints, loads, /*speculative=*/false);

  auto level1 = w.endpoints;
  level1[0].dst = (level1[0].dst + 3) % mesh->num_slots();
  if (level1[0].dst == level1[0].src) {
    level1[0].dst = (level1[0].dst + 1) % mesh->num_slots();
  }
  auto level2 = level1;
  level2[7].src = (level2[7].src + 2) % mesh->num_slots();
  if (level2[7].src == level2[7].dst) {
    level2[7].src = (level2[7].src + 1) % mesh->num_slots();
  }

  session.solve(engine, level1, loads, /*speculative=*/true);
  session.solve(engine, level2, loads, /*speculative=*/true);
  EXPECT_EQ(session.open_frames(), 2);

  // Unwind to level 1: a replay of its endpoints (speculatively — the outer
  // frame is still open) must land exactly on the level-1 state.
  session.pop();
  EXPECT_EQ(session.open_frames(), 1);
  {
    session.solve(engine, level1, loads, /*speculative=*/true);
    LoadMap expected(num_edges);
    std::vector<RouteSet> expected_routes;
    reference_solve(engine, w, level1, expected, expected_routes);
    expect_same_state(session, loads, expected, expected_routes);
    session.pop();
  }
  // Unwind to the base and verify it destructively.
  session.pop();
  EXPECT_EQ(session.open_frames(), 0);
  session.solve(engine, w.endpoints, loads, /*speculative=*/false);
  LoadMap expected(num_edges);
  std::vector<RouteSet> expected_routes;
  reference_solve(engine, w, w.endpoints, expected, expected_routes);
  expect_same_state(session, loads, expected, expected_routes);
}

TEST(RoutingSession, CommitKeepsSpeculatedTrace) {
  const auto mesh = topo::make_mesh_for(16);
  RoutingEngine engine(*mesh, RoutingKind::kMinPath);
  const auto w = make_workload(*mesh, 10);
  RoutingSession session;
  session.reset(w.demands, /*reroute_passes=*/2);
  const int num_edges = mesh->switch_graph().num_edges();
  LoadMap loads(num_edges);
  session.solve(engine, w.endpoints, loads, /*speculative=*/false);
  auto moved = w.endpoints;
  moved[4].dst = (moved[4].dst + 7) % mesh->num_slots();
  if (moved[4].dst == moved[4].src) {
    moved[4].dst = (moved[4].dst + 1) % mesh->num_slots();
  }
  session.solve(engine, moved, loads, /*speculative=*/true);
  session.commit();
  EXPECT_EQ(session.open_frames(), 0);
  // The committed trace is now the base: replaying it must be pure reuse.
  const auto reused_before = session.stats().reused;
  session.solve(engine, moved, loads, /*speculative=*/false);
  EXPECT_GT(session.stats().reused, reused_before);
  LoadMap expected(num_edges);
  std::vector<RouteSet> expected_routes;
  reference_solve(engine, w, moved, expected, expected_routes);
  expect_same_state(session, loads, expected, expected_routes);
}

TEST(RoutingSession, DirtyFallbackStillBitIdentical) {
  const auto mesh = topo::make_mesh_for(16);
  RoutingEngine engine(*mesh, RoutingKind::kMinPath);
  const auto w = make_workload(*mesh, 8);
  RoutingSession session;
  session.reset(w.demands, /*reroute_passes=*/2);
  const int num_edges = mesh->switch_graph().num_edges();
  LoadMap loads(num_edges);
  session.solve(engine, w.endpoints, loads, /*speculative=*/false);

  // Move more than a quarter of the commodities: the session must abandon
  // the replay (full_solves ticks) and still match from scratch.
  auto moved = w.endpoints;
  for (int k = 0; k < 4; ++k) {
    moved[static_cast<std::size_t>(k)].dst =
        (moved[static_cast<std::size_t>(k)].dst + 4) % mesh->num_slots();
    if (moved[static_cast<std::size_t>(k)].dst ==
        moved[static_cast<std::size_t>(k)].src) {
      moved[static_cast<std::size_t>(k)].dst =
          (moved[static_cast<std::size_t>(k)].dst + 1) % mesh->num_slots();
    }
  }
  const auto full_before = session.stats().full_solves;
  session.solve(engine, moved, loads, /*speculative=*/true);
  EXPECT_EQ(session.stats().full_solves, full_before + 1);
  LoadMap expected(num_edges);
  std::vector<RouteSet> expected_routes;
  reference_solve(engine, w, moved, expected, expected_routes);
  expect_same_state(session, loads, expected, expected_routes);
  session.pop();
}

TEST(RoutingSession, ProtocolMisuseThrows) {
  const auto mesh = topo::make_mesh_for(9);
  RoutingEngine engine(*mesh, RoutingKind::kMinPath);
  const auto w = make_workload(*mesh, 5);
  RoutingSession session;
  session.reset(w.demands, /*reroute_passes=*/1);
  LoadMap loads(mesh->switch_graph().num_edges());

  EXPECT_THROW(session.pop(), std::logic_error);
  std::vector<CommodityEndpoints> short_list(3);
  EXPECT_THROW(
      session.solve(engine, short_list, loads, /*speculative=*/false),
      std::invalid_argument);

  session.solve(engine, w.endpoints, loads, /*speculative=*/false);
  session.solve(engine, w.endpoints, loads, /*speculative=*/true);
  // A destructive solve under an open frame would corrupt the journal.
  EXPECT_THROW(
      session.solve(engine, w.endpoints, loads, /*speculative=*/false),
      std::logic_error);
  session.pop();
  EXPECT_THROW(session.pop(), std::logic_error);
}

TEST(RoutingSession, SpeculationOnInvalidBasePopsToInvalid) {
  const auto mesh = topo::make_mesh_for(9);
  RoutingEngine engine(*mesh, RoutingKind::kSplitAll);
  const auto w = make_workload(*mesh, 5);
  RoutingSession session;
  session.reset(w.demands, /*reroute_passes=*/1);
  LoadMap loads(mesh->switch_graph().num_edges());
  EXPECT_FALSE(session.valid());
  // First solve is speculative (a txn opened before any base solve): there
  // is no trace to restore, so the pop leaves the session invalid and the
  // next solve simply re-routes from scratch.
  session.solve(engine, w.endpoints, loads, /*speculative=*/true);
  EXPECT_TRUE(session.valid());
  session.pop();
  EXPECT_FALSE(session.valid());
  session.solve(engine, w.endpoints, loads, /*speculative=*/false);
  LoadMap expected(mesh->switch_graph().num_edges());
  std::vector<RouteSet> expected_routes;
  {
    RoutingSession fresh;
    fresh.reset(w.demands, /*reroute_passes=*/1);
    fresh.solve(engine, w.endpoints, expected, /*speculative=*/false);
    for (int k = 0; k < fresh.num_commodities(); ++k) {
      expected_routes.push_back(fresh.route(k));
    }
  }
  expect_same_state(session, loads, expected, expected_routes);
}

}  // namespace
}  // namespace sunmap::route

namespace sunmap::mapping {
namespace {

void expect_same_metrics(const Evaluation& a, const Evaluation& b) {
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.avg_switch_hops, b.avg_switch_hops);
  EXPECT_EQ(a.avg_path_latency_ns, b.avg_path_latency_ns);
  EXPECT_EQ(a.design_area_mm2, b.design_area_mm2);
  EXPECT_EQ(a.design_power_mw, b.design_power_mw);
  EXPECT_EQ(a.max_link_load_mbps, b.max_link_load_mbps);
  EXPECT_EQ(a.bandwidth_feasible, b.bandwidth_feasible);
  EXPECT_EQ(a.area_feasible, b.area_feasible);
}

std::vector<int> inverse_of(const std::vector<int>& core_to_slot,
                            int num_slots) {
  std::vector<int> slot_to_core(static_cast<std::size_t>(num_slots), -1);
  for (std::size_t c = 0; c < core_to_slot.size(); ++c) {
    slot_to_core[static_cast<std::size_t>(core_to_slot[c])] =
        static_cast<int>(c);
  }
  return slot_to_core;
}

/// Randomized accept/reject walk over batched multi-swap transactions:
/// every speculative evaluation is checked bitwise against a fully
/// from-scratch reference context (incremental routing AND floorplanning
/// off, fresh scratch per check) — including evaluations right after
/// rollbacks, where a stale routing frame would show.
void run_routing_txn_walk(const CoreGraph& app,
                          const topo::Topology& topology, MapperConfig config,
                          int steps, std::uint64_t seed) {
  Mapper mapper(config);
  const EvalContext ctx(app, topology, config, mapper.library());
  auto reference_config = config;
  reference_config.incremental_routing = false;
  reference_config.incremental_floorplan = false;
  const EvalContext reference(app, topology, reference_config,
                              mapper.library());

  std::vector<int> mapping(static_cast<std::size_t>(app.num_cores()));
  for (int c = 0; c < app.num_cores(); ++c) {
    mapping[static_cast<std::size_t>(c)] = c;
  }
  auto inverse = inverse_of(mapping, topology.num_slots());

  EvalScratch scratch;
  DeltaTxn txn(ctx, scratch, mapping, inverse);
  util::Prng prng(seed);
  const int slots = topology.num_slots();
  for (int step = 0; step < steps; ++step) {
    std::vector<SlotMove> moves;
    const int batch = prng.chance(0.4) ? 2 : 1;
    for (int m = 0; m < batch; ++m) {
      const int a = prng.next_int(0, slots - 1);
      int b = prng.next_int(0, slots - 2);
      if (b >= a) ++b;
      moves.emplace_back(a, b);
    }
    txn.begin_moves(moves);
    const auto eval = txn.evaluate(/*materialize=*/false);
    {
      EvalScratch fresh;
      const auto expected =
          reference.evaluate(mapping, fresh, /*materialize=*/false);
      SCOPED_TRACE(topology.name() + " step " + std::to_string(step) +
                   " batch " + std::to_string(batch));
      expect_same_metrics(eval, expected);
    }
    if (prng.chance(0.5)) {
      txn.commit();
    } else {
      txn.rollback();
      EXPECT_EQ(inverse, inverse_of(mapping, topology.num_slots()));
      const auto back = txn.evaluate(/*materialize=*/false);
      EvalScratch fresh;
      const auto expected =
          reference.evaluate(mapping, fresh, /*materialize=*/false);
      SCOPED_TRACE(topology.name() + " rollback " + std::to_string(step));
      expect_same_metrics(back, expected);
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

void run_walk_all_kinds(const topo::Topology& topology, int steps,
                        std::uint64_t seed) {
  const auto app = apps::vopd();
  for (route::RoutingKind kind : route::kAllRoutingKinds) {
    MapperConfig config;
    config.routing = kind;
    SCOPED_TRACE(route::to_string(kind));
    run_routing_txn_walk(app, topology, config, steps, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(RoutingTxnWalk, AllKindsOnMesh) {
  const auto mesh = topo::make_mesh_for(16);  // 12 cores, 4 empty slots
  run_walk_all_kinds(*mesh, 20, 61);
}

TEST(RoutingTxnWalk, AllKindsOnTorus) {
  const auto torus = topo::make_torus_for(apps::vopd().num_cores());
  run_walk_all_kinds(*torus, 20, 62);
}

TEST(RoutingTxnWalk, AllKindsOnButterfly) {
  const auto butterfly = topo::make_butterfly_for(apps::vopd().num_cores());
  run_walk_all_kinds(*butterfly, 20, 63);
}

TEST(RoutingTxnWalk, MaterializedRoutesMatchFromScratch) {
  // Materialized evaluations copy the session's route sets out; those must
  // be the exact routes a from-scratch stack computes.
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(16);
  MapperConfig config;
  config.routing = route::RoutingKind::kMinPath;
  Mapper mapper(config);
  const EvalContext ctx(app, *mesh, config, mapper.library());
  auto reference_config = config;
  reference_config.incremental_routing = false;
  const EvalContext reference(app, *mesh, reference_config,
                              mapper.library());

  std::vector<int> mapping(static_cast<std::size_t>(app.num_cores()));
  for (int c = 0; c < app.num_cores(); ++c) {
    mapping[static_cast<std::size_t>(c)] = c;
  }
  auto inverse = inverse_of(mapping, mesh->num_slots());
  EvalScratch scratch;
  DeltaTxn txn(ctx, scratch, mapping, inverse);
  util::Prng prng(77);
  for (int step = 0; step < 10; ++step) {
    const int a = prng.next_int(0, mesh->num_slots() - 1);
    int b = prng.next_int(0, mesh->num_slots() - 2);
    if (b >= a) ++b;
    txn.begin_swap(a, b);
    const auto eval = txn.evaluate(/*materialize=*/true);
    EvalScratch fresh;
    const auto expected =
        reference.evaluate(mapping, fresh, /*materialize=*/true);
    ASSERT_EQ(eval.routes.size(), expected.routes.size());
    for (std::size_t k = 0; k < eval.routes.size(); ++k) {
      EXPECT_TRUE(route::same_routes(eval.routes[k], expected.routes[k]))
          << "commodity " << k << " step " << step;
    }
    expect_same_metrics(eval, expected);
    if (prng.chance(0.5)) {
      txn.commit();
    } else {
      txn.rollback();
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(RoutingTxn, EmptyMoveBatchThrows) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  Mapper mapper{MapperConfig{}};
  const EvalContext ctx(app, *mesh, MapperConfig{}, mapper.library());
  std::vector<int> mapping(static_cast<std::size_t>(app.num_cores()));
  for (int c = 0; c < app.num_cores(); ++c) {
    mapping[static_cast<std::size_t>(c)] = c;
  }
  auto inverse = inverse_of(mapping, mesh->num_slots());
  EvalScratch scratch;
  DeltaTxn txn(ctx, scratch, mapping, inverse);
  EXPECT_THROW(txn.begin_moves({}), std::invalid_argument);
  txn.begin_moves({{0, 1}, {1, 2}});
  EXPECT_THROW(txn.begin_moves({{2, 3}}), std::logic_error);
  txn.rollback();
  EXPECT_EQ(inverse, inverse_of(mapping, mesh->num_slots()));
}

/// The full search stack must be bit-identical with incremental routing on
/// and off — the session may only change how routes are computed, never
/// what any search sees — including with the 2-opt chain move generator
/// exercising batched multi-swap transactions.
void expect_search_identical(SearchKind kind, route::RoutingKind routing,
                             double chain_move_prob) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(16);
  MapperConfig config;
  config.search = kind;
  config.routing = routing;
  config.annealing_iterations = 300;
  config.annealing_chain_move_prob = chain_move_prob;
  const MappingResult incremental = Mapper(config).map(app, *mesh);
  auto reference_config = config;
  reference_config.incremental_routing = false;
  const MappingResult reference = Mapper(reference_config).map(app, *mesh);
  EXPECT_EQ(incremental.core_to_slot, reference.core_to_slot);
  EXPECT_EQ(incremental.eval.cost, reference.eval.cost);
  EXPECT_EQ(incremental.eval.max_link_load_mbps,
            reference.eval.max_link_load_mbps);
  EXPECT_EQ(incremental.eval.design_power_mw,
            reference.eval.design_power_mw);
  EXPECT_EQ(incremental.evaluated_mappings, reference.evaluated_mappings);
  EXPECT_EQ(incremental.pruned_mappings, reference.pruned_mappings);
}

TEST(TransactionalRoutingSearch, GreedyBitIdenticalUnderMinPath) {
  expect_search_identical(SearchKind::kGreedySwaps,
                          route::RoutingKind::kMinPath, 0.0);
}

TEST(TransactionalRoutingSearch, AnnealingBitIdenticalUnderMinPath) {
  expect_search_identical(SearchKind::kAnnealing,
                          route::RoutingKind::kMinPath, 0.0);
}

TEST(TransactionalRoutingSearch, AnnealingChainMovesBitIdenticalUnderMinPath) {
  expect_search_identical(SearchKind::kAnnealing,
                          route::RoutingKind::kMinPath, 0.35);
}

TEST(TransactionalRoutingSearch, AnnealingChainMovesBitIdenticalUnderSplitAll) {
  expect_search_identical(SearchKind::kAnnealing,
                          route::RoutingKind::kSplitAll, 0.35);
}

TEST(TransactionalRoutingSearch, RestartAnnealingBitIdenticalUnderSplitAll) {
  expect_search_identical(SearchKind::kRestartAnnealing,
                          route::RoutingKind::kSplitAll, 0.0);
}

TEST(TransactionalRoutingSearch, ChainMoveProbabilityValidated) {
  MapperConfig config;
  config.annealing_chain_move_prob = 1.5;
  EXPECT_THROW(Mapper{config}, std::invalid_argument);
  config.annealing_chain_move_prob = -0.1;
  EXPECT_THROW(Mapper{config}, std::invalid_argument);
}

}  // namespace
}  // namespace sunmap::mapping
