#include <gtest/gtest.h>

#include <algorithm>

#include "graph/paths.h"
#include "topo/hypercube.h"
#include "topo/mesh.h"

namespace sunmap::topo {
namespace {

bool contains(const std::vector<graph::NodeId>& nodes, graph::NodeId u) {
  return std::find(nodes.begin(), nodes.end(), u) != nodes.end();
}

TEST(Mesh, StructureOf3x4) {
  Mesh mesh(3, 4);
  EXPECT_EQ(mesh.num_switches(), 12);
  EXPECT_EQ(mesh.num_slots(), 12);
  EXPECT_TRUE(mesh.is_direct());
  // 3*(4-1) + 4*(3-1) = 17 bidirectional channels.
  EXPECT_EQ(mesh.num_network_links(), 17);
  EXPECT_EQ(mesh.num_core_links(), 12);
  EXPECT_TRUE(graph::strongly_connected(mesh.switch_graph()));
}

TEST(Mesh, PortCountsMatchFigure1) {
  Mesh mesh(3, 3);
  // Corner node 0: two neighbours + core = 3x3 switch.
  EXPECT_EQ(mesh.switch_radix(0), 3);
  // Edge node 1: three neighbours + core = 4x4.
  EXPECT_EQ(mesh.switch_radix(1), 4);
  // Centre node 4: four neighbours + core = 5x5 (the paper's 5x5 claim).
  EXPECT_EQ(mesh.switch_radix(4), 5);
}

TEST(Mesh, MinSwitchHopsCountsSwitches) {
  Mesh mesh(3, 3);
  EXPECT_EQ(mesh.min_switch_hops(0, 1), 2);  // adjacent: 2 switches
  EXPECT_EQ(mesh.min_switch_hops(0, 8), 5);  // corner to corner
}

TEST(Mesh, DimensionOrderedPathIsXThenY) {
  Mesh mesh(3, 4);
  const auto path = mesh.dimension_ordered_path(0, 10);  // (0,0) -> (2,2)
  const std::vector<graph::NodeId> expected{0, 1, 2, 6, 10};
  EXPECT_EQ(path, expected);
}

TEST(Mesh, DimensionOrderedPathIsMinimal) {
  Mesh mesh(4, 4);
  for (SlotId a = 0; a < 16; ++a) {
    for (SlotId b = 0; b < 16; ++b) {
      if (a == b) continue;
      const auto path = mesh.dimension_ordered_path(a, b);
      EXPECT_EQ(static_cast<int>(path.size()), mesh.min_switch_hops(a, b));
      EXPECT_NO_THROW(mesh.make_path(path));
    }
  }
}

TEST(Mesh, QuadrantIsBoundingBox) {
  Mesh mesh(3, 4);
  // From (0,0) to (1,2): 2x3 bounding box.
  const auto quadrant = mesh.quadrant_nodes(0, 6);
  EXPECT_EQ(quadrant.size(), 6u);
  for (graph::NodeId u : {0, 1, 2, 4, 5, 6}) {
    EXPECT_TRUE(contains(quadrant, u)) << u;
  }
}

TEST(Mesh, QuadrantOfAlignedPairIsALine) {
  Mesh mesh(3, 4);
  const auto quadrant = mesh.quadrant_nodes(0, 3);  // same row
  EXPECT_EQ(quadrant.size(), 4u);
}

TEST(Mesh, RejectsDegenerate) {
  EXPECT_THROW(Mesh(1, 1), std::invalid_argument);
  EXPECT_THROW(Mesh(0, 5), std::invalid_argument);
}

TEST(Mesh, RelativePlacementCoversEverything) {
  Mesh mesh(3, 4);
  const auto placement = mesh.relative_placement();
  EXPECT_EQ(placement.mode, RelativePlacement::Mode::kGrid);
  int cores = 0;
  int switches = 0;
  for (const auto& item : placement.items) {
    if (item.kind == RelativePlacement::Item::Kind::kCore) ++cores;
    if (item.kind == RelativePlacement::Item::Kind::kSwitch) ++switches;
    EXPECT_GE(item.row, 0);
    EXPECT_LT(item.row, placement.num_rows);
    EXPECT_GE(item.col, 0);
    EXPECT_LT(item.col, placement.num_cols);
  }
  EXPECT_EQ(cores, 12);
  EXPECT_EQ(switches, 12);
}

TEST(Torus, WraparoundAddsChannels) {
  Torus torus(3, 4);
  // Mesh has 17; wraps add 3 row wraps (cols=4>2) + 4 col wraps (rows=3>2).
  EXPECT_EQ(torus.num_network_links(), 17 + 3 + 4);
  EXPECT_TRUE(graph::strongly_connected(torus.switch_graph()));
}

TEST(Torus, NoDuplicateChannelsForSize2) {
  Torus torus(2, 3);
  // rows == 2: no row-direction wrap; cols == 3: wrap per row.
  EXPECT_EQ(torus.num_network_links(), 2 * 2 + 3 * 1 + 2);
}

TEST(Torus, AllSwitchesAre5x5On3x4) {
  Torus torus(3, 4);
  for (graph::NodeId sw = 0; sw < torus.num_switches(); ++sw) {
    EXPECT_EQ(torus.switch_radix(sw), 5) << sw;
  }
}

TEST(Torus, WrapReducesHops) {
  Mesh mesh(3, 4);
  Torus torus(3, 4);
  // Corner to corner: mesh needs 5 switches, torus wraps both dimensions.
  EXPECT_EQ(mesh.min_switch_hops(0, 11), 6);
  EXPECT_EQ(torus.min_switch_hops(0, 11), 3);
}

TEST(Torus, DimensionOrderedUsesShorterWay) {
  Torus torus(3, 4);
  // (0,0) -> (0,3): wrap is 1 hop instead of 3.
  const auto path = torus.dimension_ordered_path(0, 3);
  EXPECT_EQ(path.size(), 2u);
  EXPECT_NO_THROW(torus.make_path(path));
}

TEST(Torus, DimensionOrderedPathIsMinimal) {
  Torus torus(4, 4);
  for (SlotId a = 0; a < 16; ++a) {
    for (SlotId b = 0; b < 16; ++b) {
      if (a == b) continue;
      const auto path = torus.dimension_ordered_path(a, b);
      EXPECT_EQ(static_cast<int>(path.size()), torus.min_switch_hops(a, b));
      EXPECT_NO_THROW(torus.make_path(path));
    }
  }
}

TEST(Hypercube, StructureOf3Cube) {
  Hypercube cube(3);
  EXPECT_EQ(cube.num_switches(), 8);
  EXPECT_EQ(cube.num_slots(), 8);
  // Each node has 3 neighbours: 8*3/2 = 12 channels.
  EXPECT_EQ(cube.num_network_links(), 12);
  for (graph::NodeId sw = 0; sw < 8; ++sw) {
    EXPECT_EQ(cube.switch_radix(sw), 4);  // 3 links + core
  }
}

TEST(Hypercube, HopsAreHammingDistancePlusOne) {
  Hypercube cube(3);
  EXPECT_EQ(cube.min_switch_hops(0, 7), 4);  // 3 differing bits
  EXPECT_EQ(cube.min_switch_hops(2, 6), 2);  // paper's example: adjacent
  EXPECT_EQ(cube.min_switch_hops(0, 3), 3);
}

TEST(Hypercube, QuadrantIsMatchedSubcube) {
  Hypercube cube(3);
  // Paper's example: source 0 (0,0,0), destination 3 (0,1,1) -> nodes with
  // tuples (0,*,*) = {0, 1, 2, 3}.
  auto quadrant = cube.quadrant_nodes(0, 3);
  std::sort(quadrant.begin(), quadrant.end());
  EXPECT_EQ(quadrant, (std::vector<graph::NodeId>{0, 1, 2, 3}));
}

TEST(Hypercube, DimensionOrderedFixesBitsLsbFirst) {
  Hypercube cube(3);
  const auto path = cube.dimension_ordered_path(0, 6);  // flip bits 1 then 2
  EXPECT_EQ(path, (std::vector<graph::NodeId>{0, 2, 6}));
}

TEST(Hypercube, DimensionOrderedIsMinimal) {
  Hypercube cube(4);
  for (SlotId a = 0; a < 16; ++a) {
    for (SlotId b = 0; b < 16; ++b) {
      if (a == b) continue;
      const auto path = cube.dimension_ordered_path(a, b);
      EXPECT_EQ(static_cast<int>(path.size()), cube.min_switch_hops(a, b));
      EXPECT_NO_THROW(cube.make_path(path));
    }
  }
}

TEST(Hypercube, RejectsBadDimensions) {
  EXPECT_THROW(Hypercube(0), std::invalid_argument);
  EXPECT_THROW(Hypercube(21), std::invalid_argument);
}

}  // namespace
}  // namespace sunmap::topo
