// Transactional delta-evaluation tests: a DeltaTxn speculation
// (begin_swap -> evaluate/prunable -> commit | rollback) must leave every
// piece of coordinated state — mapping arrays, the scratch's incremental
// floorplan session, the session shape key — bit-identically where a
// from-scratch evaluation stack would have it, over randomized
// accept/reject sequences on grid- and columns-mode topologies under both
// floorplan engines; and the search strategies ported onto the protocol
// must return bit-identical results with incremental floorplanning on and
// off.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "apps/apps.h"
#include "mapping/delta_txn.h"
#include "mapping/eval_context.h"
#include "mapping/mapper.h"
#include "topo/library.h"
#include "util/prng.h"

namespace sunmap::mapping {
namespace {

void expect_same_metrics(const Evaluation& a, const Evaluation& b) {
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.avg_switch_hops, b.avg_switch_hops);
  EXPECT_EQ(a.design_area_mm2, b.design_area_mm2);
  EXPECT_EQ(a.design_power_mw, b.design_power_mw);
  EXPECT_EQ(a.max_link_load_mbps, b.max_link_load_mbps);
  EXPECT_EQ(a.bandwidth_feasible, b.bandwidth_feasible);
  EXPECT_EQ(a.area_feasible, b.area_feasible);
}

std::vector<int> inverse_of(const std::vector<int>& core_to_slot,
                            int num_slots) {
  std::vector<int> slot_to_core(static_cast<std::size_t>(num_slots), -1);
  for (std::size_t c = 0; c < core_to_slot.size(); ++c) {
    slot_to_core[static_cast<std::size_t>(core_to_slot[c])] =
        static_cast<int>(c);
  }
  return slot_to_core;
}

/// Randomized accept/reject walk: every speculative evaluation through the
/// transaction is checked bitwise against a reference context that pays
/// from-scratch floorplans (incremental_floorplan = false) with a fresh
/// scratch — including evaluations right after rollbacks, which is where a
/// stale session would show.
void run_txn_walk(const CoreGraph& app, const topo::Topology& topology,
                  MapperConfig config, int steps, std::uint64_t seed) {
  Mapper mapper(config);
  const EvalContext ctx(app, topology, config, mapper.library());
  auto reference_config = config;
  reference_config.incremental_floorplan = false;
  const EvalContext reference(app, topology, reference_config,
                              mapper.library());

  std::vector<int> mapping;
  {
    // Any valid initial mapping works; take the identity-ish one.
    mapping.resize(static_cast<std::size_t>(app.num_cores()));
    for (int c = 0; c < app.num_cores(); ++c) {
      mapping[static_cast<std::size_t>(c)] = c;
    }
  }
  auto inverse = inverse_of(mapping, topology.num_slots());

  EvalScratch scratch;
  DeltaTxn txn(ctx, scratch, mapping, inverse);
  util::Prng prng(seed);
  for (int step = 0; step < steps; ++step) {
    const int a = prng.next_int(0, topology.num_slots() - 1);
    int b = prng.next_int(0, topology.num_slots() - 2);
    if (b >= a) ++b;
    if (inverse[static_cast<std::size_t>(a)] < 0 &&
        inverse[static_cast<std::size_t>(b)] < 0) {
      continue;
    }
    txn.begin_swap(a, b);
    const auto eval = txn.evaluate(/*materialize=*/false);
    {
      EvalScratch fresh;
      const auto expected =
          reference.evaluate(mapping, fresh, /*materialize=*/false);
      SCOPED_TRACE(topology.name() + " step " + std::to_string(step));
      expect_same_metrics(eval, expected);
    }
    if (prng.chance(0.5)) {
      txn.commit();
    } else {
      const auto speculative = mapping;
      txn.rollback();
      EXPECT_NE(mapping, speculative);
      EXPECT_EQ(inverse, inverse_of(mapping, topology.num_slots()));
      // The rolled-back state must evaluate bit-identically too (the
      // floorplan session was popped, not left on the rejected candidate).
      const auto back = txn.evaluate(/*materialize=*/false);
      EvalScratch fresh;
      const auto expected =
          reference.evaluate(mapping, fresh, /*materialize=*/false);
      SCOPED_TRACE(topology.name() + " rollback " + std::to_string(step));
      expect_same_metrics(back, expected);
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DeltaTxn, RandomWalkMatchesFromScratchOnMesh) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(16);  // 12 cores, 4 empty slots
  run_txn_walk(app, *mesh, MapperConfig{}, 60, 51);
}

TEST(DeltaTxn, RandomWalkMatchesFromScratchOnTorus) {
  const auto app = apps::vopd();
  const auto torus = topo::make_torus_for(app.num_cores());
  run_txn_walk(app, *torus, MapperConfig{}, 60, 52);
}

TEST(DeltaTxn, RandomWalkMatchesFromScratchOnButterfly) {
  const auto app = apps::vopd();
  const auto butterfly = topo::make_butterfly_for(app.num_cores());
  run_txn_walk(app, *butterfly, MapperConfig{}, 60, 53);
}

TEST(DeltaTxn, RandomWalkMatchesUnderSimplexEngine) {
  const auto app = apps::pip();  // 8 cores: the LP stays small
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig config;
  config.floorplan.engine = fplan::Floorplanner::Engine::kSimplexLp;
  run_txn_walk(app, *mesh, config, 16, 54);
}

TEST(DeltaTxn, RandomWalkMatchesUnderMinPowerObjective) {
  // prunable() + evaluate() inside one speculation open two session frames;
  // rollback must pop both.
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(16);
  MapperConfig config;
  config.objective = Objective::kMinPower;
  run_txn_walk(app, *mesh, config, 60, 55);
}

TEST(DeltaTxn, ProtocolMisuseThrows) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  Mapper mapper{MapperConfig{}};
  const EvalContext ctx(app, *mesh, MapperConfig{}, mapper.library());
  std::vector<int> mapping(static_cast<std::size_t>(app.num_cores()));
  for (int c = 0; c < app.num_cores(); ++c) {
    mapping[static_cast<std::size_t>(c)] = c;
  }
  auto inverse = inverse_of(mapping, mesh->num_slots());
  EvalScratch scratch;
  DeltaTxn txn(ctx, scratch, mapping, inverse);
  EXPECT_THROW(txn.commit(), std::logic_error);
  EXPECT_THROW(txn.rollback(), std::logic_error);
  txn.begin_swap(0, 1);
  EXPECT_THROW(txn.begin_swap(1, 2), std::logic_error);
  txn.rollback();
  // A second transaction on a scratch already carrying a speculation is
  // rejected up front.
  txn.begin_swap(0, 1);
  EXPECT_THROW((DeltaTxn{ctx, scratch, mapping, inverse}), std::logic_error);
  txn.commit();
}

TEST(DeltaTxn, DestructionRollsBackOpenSpeculation) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  Mapper mapper{MapperConfig{}};
  const EvalContext ctx(app, *mesh, MapperConfig{}, mapper.library());
  std::vector<int> mapping(static_cast<std::size_t>(app.num_cores()));
  for (int c = 0; c < app.num_cores(); ++c) {
    mapping[static_cast<std::size_t>(c)] = c;
  }
  auto inverse = inverse_of(mapping, mesh->num_slots());
  const auto original = mapping;
  EvalScratch scratch;
  {
    DeltaTxn txn(ctx, scratch, mapping, inverse);
    txn.begin_swap(0, 1);
    (void)txn.evaluate();
    EXPECT_NE(mapping, original);
  }
  EXPECT_EQ(mapping, original);
  EXPECT_EQ(inverse, inverse_of(mapping, mesh->num_slots()));
  EXPECT_EQ(scratch.txn_depth, 0);
}

/// The full search stack (greedy / annealing / restart annealing) must be
/// bit-identical with incremental floorplanning on and off: the
/// transactional session path may only change how floorplans are computed,
/// never what any search sees.
void expect_search_identical(SearchKind kind, fplan::Floorplanner::Engine
                                                  engine) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(16);
  MapperConfig config;
  config.search = kind;
  config.annealing_iterations = 400;
  config.floorplan.engine = engine;
  const MappingResult incremental = Mapper(config).map(app, *mesh);
  auto reference_config = config;
  reference_config.incremental_floorplan = false;
  const MappingResult reference =
      Mapper(reference_config).map(app, *mesh);
  EXPECT_EQ(incremental.core_to_slot, reference.core_to_slot);
  EXPECT_EQ(incremental.eval.cost, reference.eval.cost);
  EXPECT_EQ(incremental.eval.design_area_mm2,
            reference.eval.design_area_mm2);
  EXPECT_EQ(incremental.eval.design_power_mw,
            reference.eval.design_power_mw);
  EXPECT_EQ(incremental.evaluated_mappings, reference.evaluated_mappings);
  EXPECT_EQ(incremental.pruned_mappings, reference.pruned_mappings);
}

TEST(TransactionalSearch, GreedyBitIdenticalWithIncrementalFloorplanning) {
  expect_search_identical(SearchKind::kGreedySwaps,
                          fplan::Floorplanner::Engine::kLongestPath);
}

TEST(TransactionalSearch, AnnealingBitIdenticalWithIncrementalFloorplanning) {
  expect_search_identical(SearchKind::kAnnealing,
                          fplan::Floorplanner::Engine::kLongestPath);
}

TEST(TransactionalSearch, RestartAnnealingBitIdenticalWithIncremental) {
  expect_search_identical(SearchKind::kRestartAnnealing,
                          fplan::Floorplanner::Engine::kLongestPath);
}

TEST(TransactionalSearch, ParallelSearchReusesPooledWorkerSessions) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig config;
  config.search = SearchKind::kRestartAnnealing;
  config.annealing_iterations = 200;
  config.annealing_restarts = 4;
  config.num_threads = 4;
  const Mapper mapper(config);
  const EvalContext ctx = mapper.make_context(app, *mesh);
  EvalScratch scratch;
  const auto first = mapper.map(ctx, scratch);
  ASSERT_GE(scratch.worker_pool.size(), 3u);
  // The pooled scratches own live sessions now; a second search through the
  // same caller scratch must reuse them, not rebuild.
  std::vector<const fplan::FloorplanSession*> sessions;
  for (const auto& pooled : scratch.worker_pool) {
    sessions.push_back(pooled->fplan_session.get());
  }
  const auto second = mapper.map(ctx, scratch);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    // Workers pull chains dynamically, so a pooled scratch may sit a run
    // out; every session that existed must survive untouched, though.
    if (sessions[i] != nullptr) {
      EXPECT_EQ(scratch.worker_pool[i]->fplan_session.get(), sessions[i]);
    }
  }
  EXPECT_EQ(first.eval.cost, second.eval.cost);
  EXPECT_EQ(first.core_to_slot, second.core_to_slot);

  // Thread-count invariance through the pooled path.
  auto sequential_config = config;
  sequential_config.num_threads = 1;
  const auto sequential = Mapper(sequential_config).map(app, *mesh);
  EXPECT_EQ(first.core_to_slot, sequential.core_to_slot);
  EXPECT_EQ(first.eval.cost, sequential.eval.cost);
}

TEST(TransactionalSearch, ScratchSurvivesTopologyChangeAcrossContexts) {
  // The session slot-count guard: one scratch driven across contexts whose
  // topologies disagree on slot count must transparently rebuild its
  // session (and the pooled workers') instead of feeding a stale one.
  const auto app = apps::vopd();
  const auto mesh16 = topo::make_mesh_for(16);
  const auto butterfly = topo::make_butterfly_for(app.num_cores());
  MapperConfig config;
  const Mapper mapper(config);
  EvalScratch scratch;
  const EvalContext ctx_mesh = mapper.make_context(app, *mesh16);
  const auto on_mesh = mapper.map(ctx_mesh, scratch);
  const EvalContext ctx_bfly = mapper.make_context(app, *butterfly);
  const auto on_bfly = mapper.map(ctx_bfly, scratch);
  const auto fresh = mapper.map(app, *butterfly);
  EXPECT_EQ(on_bfly.core_to_slot, fresh.core_to_slot);
  EXPECT_EQ(on_bfly.eval.cost, fresh.eval.cost);
  const auto mesh_again = mapper.map(ctx_mesh, scratch);
  EXPECT_EQ(mesh_again.core_to_slot, on_mesh.core_to_slot);
  EXPECT_EQ(mesh_again.eval.cost, on_mesh.eval.cost);
}

}  // namespace
}  // namespace sunmap::mapping
