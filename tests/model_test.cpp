#include <gtest/gtest.h>

#include "model/library.h"
#include "model/switch_model.h"
#include "model/tech.h"

namespace sunmap::model {
namespace {

TEST(SwitchModel, AreaIsSumOfComponents) {
  SwitchModel model(TechParams::um100());
  const double total = model.area_mm2(5, 5);
  EXPECT_NEAR(total,
              model.crossbar_area_mm2(5, 5) + model.buffer_area_mm2(5) +
                  model.logic_area_mm2(5, 5),
              1e-12);
}

TEST(SwitchModel, AreaGrowsWithPorts) {
  SwitchModel model(TechParams::um100());
  EXPECT_LT(model.area_mm2(3, 3), model.area_mm2(4, 4));
  EXPECT_LT(model.area_mm2(4, 4), model.area_mm2(5, 5));
  EXPECT_LT(model.area_mm2(5, 5), model.area_mm2(8, 8));
}

TEST(SwitchModel, AreaInPlausibleRangeAt100nm) {
  SwitchModel model(TechParams::um100());
  // A 5x5 xpipes-style switch is a few tenths of a mm^2 at 0.1 um.
  const double area = model.area_mm2(5, 5);
  EXPECT_GT(area, 0.05);
  EXPECT_LT(area, 1.0);
}

TEST(SwitchModel, CrossbarQuadraticInFlitWidth) {
  TechParams narrow = TechParams::um100();
  narrow.flit_width_bits = 16;
  TechParams wide = TechParams::um100();
  wide.flit_width_bits = 32;
  SwitchModel narrow_model(narrow);
  SwitchModel wide_model(wide);
  EXPECT_NEAR(wide_model.crossbar_area_mm2(4, 4),
              4.0 * narrow_model.crossbar_area_mm2(4, 4), 1e-12);
}

TEST(SwitchModel, BufferAreaLinearInDepth) {
  TechParams shallow = TechParams::um100();
  shallow.buffer_depth_flits = 4;
  TechParams deep = TechParams::um100();
  deep.buffer_depth_flits = 8;
  EXPECT_NEAR(SwitchModel(deep).buffer_area_mm2(5),
              2.0 * SwitchModel(shallow).buffer_area_mm2(5), 1e-12);
}

TEST(SwitchModel, EnergyGrowsSuperlinearlyWithRadix) {
  SwitchModel model(TechParams::um100());
  const double e3 = model.energy_pj_per_bit(3, 3);
  const double e4 = model.energy_pj_per_bit(4, 4);
  const double e5 = model.energy_pj_per_bit(5, 5);
  EXPECT_LT(e3, e4);
  EXPECT_LT(e4, e5);
  // Superlinear: marginal cost of the 5th port exceeds that of the 4th.
  EXPECT_GT(e5 - e4, e4 - e3);
}

TEST(SwitchModel, StaticPowerGrowsWithRadix) {
  SwitchModel model(TechParams::um100());
  EXPECT_LT(model.static_power_mw(4, 4), model.static_power_mw(5, 5));
  EXPECT_GT(model.static_power_mw(2, 2), 0.0);
}

TEST(SwitchModel, AsymmetricPortsUseMeanRadix) {
  SwitchModel model(TechParams::um100());
  EXPECT_NEAR(model.energy_pj_per_bit(3, 5), model.energy_pj_per_bit(4, 4),
              1e-12);
}

TEST(SwitchModel, RejectsInvalidPorts) {
  SwitchModel model(TechParams::um100());
  EXPECT_THROW(model.area_mm2(0, 4), std::invalid_argument);
  EXPECT_THROW(model.energy_pj_per_bit(4, 0), std::invalid_argument);
  EXPECT_THROW(model.area_mm2(4, 2000), std::invalid_argument);
}

TEST(LinkModel, EnergyLinearInLength) {
  LinkModel model(TechParams::um100());
  EXPECT_NEAR(model.energy_pj_per_bit(4.0), 2.0 * model.energy_pj_per_bit(2.0),
              1e-12);
}

TEST(LinkModel, PowerArithmetic) {
  TechParams tech = TechParams::um100();
  tech.link_energy_pj_per_bit_mm = 0.5;
  LinkModel model(tech);
  // 1000 MB/s over 2 mm: 8e9 bit/s * 1.0 pJ = 8 mW.
  EXPECT_NEAR(model.power_mw(1000.0, 2.0), 8.0, 1e-9);
  EXPECT_THROW(model.power_mw(-1.0, 1.0), std::invalid_argument);
}

TEST(LinkModel, LatencyAtLeastOneCycle) {
  LinkModel model(TechParams::um100());
  EXPECT_EQ(model.latency_cycles(0.5), 1);
  EXPECT_EQ(model.latency_cycles(2.0), 1);
  // 70 ps/mm at 1 GHz: > ~14 mm needs a second cycle.
  EXPECT_EQ(model.latency_cycles(20.0), 2);
}

TEST(AreaPowerLibrary, LookupMatchesDirectModel) {
  const TechParams tech = TechParams::um100();
  AreaPowerLibrary library(tech, 16);
  SwitchModel model(tech);
  for (int in : {1, 3, 5, 8, 16}) {
    for (int out : {1, 4, 7, 16}) {
      const auto& entry = library.lookup(in, out);
      EXPECT_EQ(entry.in_ports, in);
      EXPECT_EQ(entry.out_ports, out);
      EXPECT_NEAR(entry.area_mm2, model.area_mm2(in, out), 1e-12);
      EXPECT_NEAR(entry.energy_pj_per_bit, model.energy_pj_per_bit(in, out),
                  1e-12);
      EXPECT_NEAR(entry.static_power_mw, model.static_power_mw(in, out),
                  1e-12);
    }
  }
}

TEST(AreaPowerLibrary, OutOfRangeThrows) {
  AreaPowerLibrary library(TechParams::um100(), 8);
  EXPECT_THROW(library.lookup(9, 4), std::out_of_range);
  EXPECT_THROW(library.lookup(4, 0), std::out_of_range);
}

TEST(AreaPowerLibrary, AllEntriesComplete) {
  AreaPowerLibrary library(TechParams::um100(), 6);
  EXPECT_EQ(library.all_entries().size(), 36u);
}

}  // namespace
}  // namespace sunmap::model
