#include <gtest/gtest.h>

#include <sstream>

#include "apps/apps.h"
#include "io/core_graph_io.h"

namespace sunmap::io {
namespace {

TEST(CoreGraphIo, ParsesMinimalGraph) {
  std::istringstream in(R"(
app tiny
core a 2.0
core b hard 1.5 2.0
flow a b 100
)");
  const auto app = read_core_graph(in);
  EXPECT_EQ(app.name(), "tiny");
  EXPECT_EQ(app.num_cores(), 2);
  EXPECT_EQ(app.num_flows(), 1);
  EXPECT_TRUE(app.core(0).shape.soft);
  EXPECT_FALSE(app.core(1).shape.soft);
  EXPECT_DOUBLE_EQ(app.core(1).shape.width_mm, 1.5);
  EXPECT_DOUBLE_EQ(app.graph().edge(0).weight, 100.0);
}

TEST(CoreGraphIo, ParsesSoftWithAspectRange) {
  std::istringstream in(R"(
app aspects
core x soft 4.0 0.5 2.0
core y 1.0
flow x y 10
)");
  const auto app = read_core_graph(in);
  EXPECT_DOUBLE_EQ(app.core(0).shape.min_aspect, 0.5);
  EXPECT_DOUBLE_EQ(app.core(0).shape.max_aspect, 2.0);
}

TEST(CoreGraphIo, CommentsAndBlanksIgnored) {
  std::istringstream in(R"(
# a comment
app commented   # trailing comment

core a 1.0
core b 1.0  # another
flow a b 5
)");
  const auto app = read_core_graph(in);
  EXPECT_EQ(app.num_cores(), 2);
}

TEST(CoreGraphIo, FlowMayPrecedeCoreDefinitions) {
  // Flows are resolved after the whole file is read.
  std::istringstream in(R"(
app forward
flow a b 10
core a 1.0
core b 1.0
)");
  const auto app = read_core_graph(in);
  EXPECT_EQ(app.num_flows(), 1);
}

TEST(CoreGraphIo, ErrorsCarryLineNumbers) {
  std::istringstream missing_app("core a 1.0\n");
  EXPECT_THROW(
      {
        try {
          read_core_graph(missing_app);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(CoreGraphIo, RejectsMalformedInput) {
  auto parse = [](const char* text) {
    std::istringstream in(text);
    return read_core_graph(in);
  };
  EXPECT_THROW(parse("app x\ncore a notanumber\n"), std::runtime_error);
  EXPECT_THROW(parse("app x\nbogus y\n"), std::runtime_error);
  EXPECT_THROW(parse("app x\napp y\n"), std::runtime_error);
  EXPECT_THROW(parse("app x\ncore a 1.0 extra\n"), std::runtime_error);
  EXPECT_THROW(parse("app x\ncore a soft 1.0 2.0 0.5\n"),
               std::runtime_error);  // inverted aspect range
  EXPECT_THROW(parse("app x\ncore a 1.0\nflow a missing 5\n"),
               std::runtime_error);
  EXPECT_THROW(parse(""), std::runtime_error);
}

TEST(CoreGraphIo, RoundTripsBuiltinApps) {
  for (const auto& app :
       {apps::vopd(), apps::mpeg4(), apps::dsp_filter(), apps::netproc16()}) {
    std::istringstream in(core_graph_to_string(app));
    const auto parsed = read_core_graph(in);
    ASSERT_EQ(parsed.num_cores(), app.num_cores());
    ASSERT_EQ(parsed.num_flows(), app.num_flows());
    EXPECT_EQ(parsed.name(), app.name());
    for (int c = 0; c < app.num_cores(); ++c) {
      EXPECT_EQ(parsed.core(c).name, app.core(c).name);
      EXPECT_NEAR(parsed.core(c).shape.area_mm2, app.core(c).shape.area_mm2,
                  1e-9);
      EXPECT_EQ(parsed.core(c).shape.soft, app.core(c).shape.soft);
    }
    for (int e = 0; e < app.num_flows(); ++e) {
      EXPECT_EQ(parsed.graph().edge(e).src, app.graph().edge(e).src);
      EXPECT_EQ(parsed.graph().edge(e).dst, app.graph().edge(e).dst);
      EXPECT_NEAR(parsed.graph().edge(e).weight, app.graph().edge(e).weight,
                  1e-9);
    }
  }
}

TEST(CoreGraphIo, MissingFileThrows) {
  EXPECT_THROW(read_core_graph_file("/nonexistent/sunmap.cg"),
               std::runtime_error);
}

}  // namespace
}  // namespace sunmap::io
