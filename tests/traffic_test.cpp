#include <gtest/gtest.h>

#include <map>

#include "sim/traffic.h"

namespace sunmap::sim {
namespace {

TEST(Pattern, Labels) {
  EXPECT_STREQ(to_string(Pattern::kUniform), "uniform");
  EXPECT_STREQ(to_string(Pattern::kTranspose), "transpose");
  EXPECT_STREQ(to_string(Pattern::kBitComplement), "bit-complement");
  EXPECT_STREQ(to_string(Pattern::kTornado), "tornado");
}

TEST(PatternTraffic, UniformDestinationsAreValidAndNotSelf) {
  PatternTraffic traffic(16, Pattern::kUniform, 0.1, 4);
  util::Prng prng(1);
  for (int i = 0; i < 1000; ++i) {
    const int src = i % 16;
    const int dst = traffic.destination(src, prng);
    EXPECT_GE(dst, 0);
    EXPECT_LT(dst, 16);
    EXPECT_NE(dst, src);
  }
}

TEST(PatternTraffic, UniformCoversAllDestinations) {
  PatternTraffic traffic(8, Pattern::kUniform, 0.1, 4);
  util::Prng prng(2);
  std::map<int, int> seen;
  for (int i = 0; i < 2000; ++i) ++seen[traffic.destination(0, prng)];
  EXPECT_EQ(seen.size(), 7u);  // all but the source itself
}

TEST(PatternTraffic, TransposeIsSelfInverseOnSquareGrid) {
  PatternTraffic traffic(16, Pattern::kTranspose, 0.1, 4);
  util::Prng prng(3);
  for (int src = 0; src < 16; ++src) {
    const int once = traffic.destination(src, prng);
    const int twice = traffic.destination(once, prng);
    EXPECT_EQ(twice, src);
  }
}

TEST(PatternTraffic, BitComplementIsSelfInverse) {
  PatternTraffic traffic(16, Pattern::kBitComplement, 0.1, 4);
  util::Prng prng(4);
  for (int src = 0; src < 16; ++src) {
    const int dst = traffic.destination(src, prng);
    EXPECT_EQ(traffic.destination(dst, prng), src);
    EXPECT_NE(dst, src);
  }
}

TEST(PatternTraffic, TornadoShiftsHalfway) {
  PatternTraffic traffic(16, Pattern::kTornado, 0.1, 4);
  util::Prng prng(5);
  EXPECT_EQ(traffic.destination(0, prng), 7);
  EXPECT_EQ(traffic.destination(10, prng), 1);
}

TEST(PatternTraffic, HotspotBiasesDestination) {
  PatternTraffic traffic(16, Pattern::kHotspot, 0.1, 4);
  traffic.set_hotspot(5, 0.8);
  util::Prng prng(6);
  int hits = 0;
  for (int i = 0; i < 5000; ++i) {
    if (traffic.destination(0, prng) == 5) ++hits;
  }
  EXPECT_GT(hits, 3500);
}

TEST(PatternTraffic, InjectionRateMatchesOfferedLoad) {
  // 0.2 flits/cycle/node with 4-flit packets -> 0.05 packets/cycle/node.
  PatternTraffic traffic(16, Pattern::kUniform, 0.2, 4);
  util::Prng prng(7);
  std::vector<std::pair<int, int>> out;
  const int cycles = 20000;
  for (int c = 0; c < cycles; ++c) traffic.injections(c, prng, out);
  const double per_node =
      static_cast<double>(out.size()) / (16.0 * cycles);
  EXPECT_NEAR(per_node, 0.05, 0.005);
}

TEST(PatternTraffic, ValidatesArguments) {
  EXPECT_THROW(PatternTraffic(1, Pattern::kUniform, 0.1, 4),
               std::invalid_argument);
  EXPECT_THROW(PatternTraffic(8, Pattern::kUniform, -0.1, 4),
               std::invalid_argument);
  EXPECT_THROW(PatternTraffic(8, Pattern::kUniform, 0.1, 0),
               std::invalid_argument);
  PatternTraffic traffic(8, Pattern::kHotspot, 0.1, 4);
  EXPECT_THROW(traffic.set_hotspot(9, 0.5), std::invalid_argument);
  EXPECT_THROW(traffic.set_hotspot(0, 1.5), std::invalid_argument);
}

TEST(TraceTraffic, RatesScaleWithBandwidth) {
  std::vector<TrafficFlow> flows{{0, 1, 1000.0}, {2, 3, 500.0}};
  TraceTraffic traffic(flows, 4, 0.4);  // 1 GB/s == 0.4 flits/cycle
  util::Prng prng(8);
  std::vector<std::pair<int, int>> out;
  const int cycles = 40000;
  for (int c = 0; c < cycles; ++c) traffic.injections(c, prng, out);
  int first = 0;
  int second = 0;
  for (const auto& [src, dst] : out) {
    if (src == 0) ++first;
    if (src == 2) ++second;
  }
  EXPECT_NEAR(static_cast<double>(first) / second, 2.0, 0.3);
  EXPECT_NEAR(traffic.offered_flits_per_cycle(), 0.4 + 0.2, 1e-9);
}

TEST(TraceTraffic, ValidatesFlows) {
  EXPECT_THROW(TraceTraffic({{0, 1, -5.0}}, 4, 0.1), std::invalid_argument);
  EXPECT_THROW(TraceTraffic({{0, 1, 100.0}}, 0, 0.1), std::invalid_argument);
  // A flow needing more than one packet per cycle cannot be modelled.
  EXPECT_THROW(TraceTraffic({{0, 1, 100000.0}}, 4, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace sunmap::sim
