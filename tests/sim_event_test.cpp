// Event-driven vs cycle-stepped engine equivalence: the two engines share
// the router model but differ completely in how time advances, so every
// field of SimStats must match bit-for-bit across the full (topology x
// routing kind x VC config x traffic model) matrix, including the stall /
// saturation / undelivered verdict paths.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "topo/library.h"

namespace sunmap::sim {
namespace {

void expect_identical(const SimStats& event, const SimStats& cycle,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(event.cycles, cycle.cycles);
  EXPECT_EQ(event.packets_generated, cycle.packets_generated);
  EXPECT_EQ(event.packets_delivered, cycle.packets_delivered);
  // Exact equality on purpose: the engines must accumulate the same
  // latencies in the same order, not merely agree to within rounding.
  EXPECT_EQ(event.avg_latency_cycles, cycle.avg_latency_cycles);
  EXPECT_EQ(event.max_latency_cycles, cycle.max_latency_cycles);
  EXPECT_EQ(event.p50_latency_cycles, cycle.p50_latency_cycles);
  EXPECT_EQ(event.p95_latency_cycles, cycle.p95_latency_cycles);
  EXPECT_EQ(event.p99_latency_cycles, cycle.p99_latency_cycles);
  EXPECT_EQ(event.throughput_flits_per_cycle_per_slot,
            cycle.throughput_flits_per_cycle_per_slot);
  EXPECT_EQ(event.offered_flits_per_cycle_per_slot,
            cycle.offered_flits_per_cycle_per_slot);
  EXPECT_EQ(event.saturated, cycle.saturated);
  EXPECT_EQ(event.status, cycle.status);
  EXPECT_EQ(event.stalled_cycles, cycle.stalled_cycles);
  EXPECT_EQ(event.undelivered_packets, cycle.undelivered_packets);
  EXPECT_EQ(event.flit_events, cycle.flit_events);
}

SimConfig matrix_config(std::uint64_t seed) {
  SimConfig config;
  config.warmup_cycles = 300;
  config.measure_cycles = 1500;
  config.drain_cycles = 6000;
  config.stall_limit_cycles = 400;
  config.seed = seed;
  return config;
}

/// Runs the same traffic spec under both engines and asserts identity.
/// Traffic models are stateful, so each engine gets a fresh instance.
template <typename MakeTraffic>
void run_both(const topo::Topology& topology, const RouteTable& routes,
              SimConfig config, MakeTraffic make_traffic,
              const std::string& label) {
  config.engine = SimEngine::kEventDriven;
  Simulator event_sim(topology, routes, config);
  auto event_traffic = make_traffic();
  const auto event_stats = event_sim.run(*event_traffic);

  config.engine = SimEngine::kCycleStepped;
  Simulator cycle_sim(topology, routes, config);
  auto cycle_traffic = make_traffic();
  const auto cycle_stats = cycle_sim.run(*cycle_traffic);

  expect_identical(event_stats, cycle_stats, label);
}

TEST(SimEventEquivalence, FullMatrixIsBitIdentical) {
  struct TopoCase {
    const char* name;
    std::unique_ptr<topo::Topology> topology;
  };
  std::vector<TopoCase> topologies;
  topologies.push_back({"mesh16", topo::make_mesh_for(16)});
  topologies.push_back({"torus16", topo::make_torus_for(16)});
  topologies.push_back({"butterfly16", topo::make_butterfly_for(16)});

  std::uint64_t seed = 1;
  for (const auto& tc : topologies) {
    for (const auto kind : route::kAllRoutingKinds) {
      const auto routes = RouteTable::all_pairs(*tc.topology, kind);
      for (const bool vcs : {false, true}) {
        for (const bool bursty : {false, true}) {
          SimConfig config = matrix_config(seed++);
          config.distance_class_vcs = vcs;
          const int slots = tc.topology->num_slots();
          auto make_traffic = [&]() -> std::unique_ptr<TrafficModel> {
            if (bursty) {
              return std::make_unique<BurstyTraffic>(
                  slots, Pattern::kUniform, 0.3, config.flits_per_packet,
                  30.0, 0.3);
            }
            return std::make_unique<PatternTraffic>(
                slots, Pattern::kUniform, 0.10, config.flits_per_packet);
          };
          const std::string label =
              std::string(tc.name) + "/" + route::to_string(kind) +
              (vcs ? "/dvc" : "/vc1") + (bursty ? "/bursty" : "/uniform");
          run_both(*tc.topology, routes, config, make_traffic, label);
        }
      }
    }
  }
}

TEST(SimEventEquivalence, DeadlockStallVerdictIsBitIdentical) {
  // Split-traffic routes on a single-VC mesh under heavy adversarial load:
  // the cyclic channel dependencies wedge the wormholes and both engines
  // must hit the stall limit on the same cycle with the same stall count.
  const auto mesh = topo::make_mesh_for(16);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kSplitAll);
  SimConfig config = matrix_config(7);
  config.stall_limit_cycles = 300;
  run_both(*mesh, routes, config, [&] {
    return std::make_unique<PatternTraffic>(mesh->num_slots(),
                                            Pattern::kBitComplement, 0.5,
                                            config.flits_per_packet);
  }, "deadlock-stall");
}

TEST(SimEventEquivalence, SaturationVerdictIsBitIdentical) {
  // Offered load far past capacity, distance-class VCs so it congests
  // without deadlocking: the acceptance check must fire identically.
  const auto mesh = topo::make_mesh_for(16);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  SimConfig config = matrix_config(11);
  config.distance_class_vcs = true;
  config.drain_cycles = 3000;
  run_both(*mesh, routes, config, [&] {
    return std::make_unique<PatternTraffic>(mesh->num_slots(),
                                            Pattern::kBitComplement, 0.8,
                                            config.flits_per_packet);
  }, "saturation");
}

TEST(SimEventEquivalence, UndeliveredVerdictIsBitIdentical) {
  // A drain budget too small to flush the measured packets: the run ends
  // with undelivered packets (not a stall) in both engines.
  const auto mesh = topo::make_mesh_for(16);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  SimConfig config = matrix_config(13);
  config.distance_class_vcs = true;
  config.drain_cycles = 5;
  run_both(*mesh, routes, config, [&] {
    return std::make_unique<PatternTraffic>(mesh->num_slots(),
                                            Pattern::kUniform, 0.3,
                                            config.flits_per_packet);
  }, "undelivered");
}

TEST(SimEventEquivalence, HighLinkLatencyAndDeepBuffersMatch) {
  const auto torus = topo::make_torus_for(16);
  const auto routes =
      RouteTable::all_pairs(*torus, route::RoutingKind::kMinPath);
  SimConfig config = matrix_config(17);
  config.link_latency_cycles = 4;
  config.buffer_depth_flits = 8;
  config.flits_per_packet = 6;
  config.distance_class_vcs = true;
  run_both(*torus, routes, config, [&] {
    return std::make_unique<PatternTraffic>(torus->num_slots(),
                                            Pattern::kTornado, 0.2,
                                            config.flits_per_packet);
  }, "latency4-depth8");
}

TEST(SimEventEquivalence, TraceTrafficMatches) {
  const auto mesh = topo::make_mesh_for(16);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kSplitMin);
  SimConfig config = matrix_config(19);
  config.distance_class_vcs = true;
  run_both(*mesh, routes, config, [&] {
    std::vector<TrafficFlow> flows{
        {0, 15, 400.0}, {15, 0, 400.0}, {3, 12, 250.0}, {5, 10, 150.0}};
    return std::make_unique<TraceTraffic>(flows, config.flits_per_packet,
                                          0.5);
  }, "trace");
}

TEST(Simulator, RunIsRepeatable) {
  // run() resets all dynamic state including the PRNG: the same Simulator
  // rerun with fresh traffic produces the same stats as a new instance.
  const auto mesh = topo::make_mesh_for(16);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  const SimConfig config = matrix_config(23);
  Simulator reused(*mesh, routes, config);
  PatternTraffic first(mesh->num_slots(), Pattern::kUniform, 0.15, 4);
  const auto run1 = reused.run(first);
  PatternTraffic second(mesh->num_slots(), Pattern::kUniform, 0.15, 4);
  const auto run2 = reused.run(second);
  expect_identical(run1, run2, "reuse");

  Simulator fresh(*mesh, routes, config);
  PatternTraffic third(mesh->num_slots(), Pattern::kUniform, 0.15, 4);
  expect_identical(run1, fresh.run(third), "reuse-vs-fresh");
}

TEST(Simulator, SharedLayoutMatchesPrivateLayout) {
  const auto mesh = topo::make_mesh_for(16);
  const auto layout = make_network_layout(*mesh);
  const auto routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kMinPath);
  const SimConfig config = matrix_config(29);
  PatternTraffic a(mesh->num_slots(), Pattern::kTranspose, 0.2, 4);
  Simulator with_layout(*mesh, routes, config, layout);
  const auto shared_stats = with_layout.run(a);
  PatternTraffic b(mesh->num_slots(), Pattern::kTranspose, 0.2, 4);
  Simulator without(*mesh, routes, config);
  expect_identical(shared_stats, without.run(b), "shared-layout");
}

TEST(Simulator, BindRebindsRoutesOnSameNetwork) {
  // One Simulator scores two different route tables over one topology —
  // the finalist-scoring reuse pattern. Each binding must match a fresh
  // simulator built directly on that table.
  const auto mesh = topo::make_mesh_for(16);
  const auto do_routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  const auto sa_routes =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kSplitAll);
  SimConfig config = matrix_config(31);
  config.distance_class_vcs = true;

  Simulator reused(*mesh, do_routes, config);
  PatternTraffic a(mesh->num_slots(), Pattern::kUniform, 0.1, 4);
  const auto do_stats = reused.run(a);
  reused.bind(sa_routes);
  PatternTraffic b(mesh->num_slots(), Pattern::kUniform, 0.1, 4);
  const auto sa_stats = reused.run(b);

  Simulator fresh_do(*mesh, do_routes, config);
  PatternTraffic c(mesh->num_slots(), Pattern::kUniform, 0.1, 4);
  expect_identical(do_stats, fresh_do.run(c), "bind-do");
  Simulator fresh_sa(*mesh, sa_routes, config);
  PatternTraffic d(mesh->num_slots(), Pattern::kUniform, 0.1, 4);
  expect_identical(sa_stats, fresh_sa.run(d), "bind-sa");
}

TEST(RouteTable, BorrowedRoutesBehaveLikeOwned) {
  const auto mesh = topo::make_mesh_for(9);
  const auto owned =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  RouteTable borrowed(mesh->num_slots());
  for (int s = 0; s < mesh->num_slots(); ++s) {
    for (int d = 0; d < mesh->num_slots(); ++d) {
      if (s == d) continue;
      borrowed.set_ref(s, d, owned.at(s, d));
    }
  }
  EXPECT_EQ(borrowed.max_path_switches(), owned.max_path_switches());

  const SimConfig config = matrix_config(37);
  PatternTraffic a(mesh->num_slots(), Pattern::kUniform, 0.1, 4);
  Simulator on_owned(*mesh, owned, config);
  const auto owned_stats = on_owned.run(a);
  PatternTraffic b(mesh->num_slots(), Pattern::kUniform, 0.1, 4);
  Simulator on_borrowed(*mesh, borrowed, config);
  expect_identical(owned_stats, on_borrowed.run(b), "borrowed");
}

TEST(BurstyTraffic, InjectsOnlyDuringBurstsAtTheConfiguredRate) {
  util::Prng prng(5);
  BurstyTraffic traffic(16, Pattern::kUniform, 0.4, 4, 50.0, 0.25);
  std::vector<std::pair<int, int>> out;
  std::uint64_t injected = 0;
  const std::uint64_t cycles = 200000;
  for (std::uint64_t c = 0; c < cycles; ++c) {
    out.clear();
    traffic.injections(c, prng, out);
    injected += out.size();
  }
  // Long-run packet rate per slot ~= duty * burst_rate / flits_per_packet,
  // minus the self-addressed redraws (none for uniform). 25% duty at 0.1
  // packets/cycle -> 0.025; allow generous tolerance.
  const double rate =
      static_cast<double>(injected) / static_cast<double>(cycles) / 16.0;
  EXPECT_GT(rate, 0.015);
  EXPECT_LT(rate, 0.035);
}

TEST(BurstyTraffic, RejectsInvalidShape) {
  EXPECT_THROW(BurstyTraffic(16, Pattern::kUniform, 0.4, 4, 0.5, 0.25),
               std::invalid_argument);
  EXPECT_THROW(BurstyTraffic(16, Pattern::kUniform, 0.4, 4, 30.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(BurstyTraffic(16, Pattern::kUniform, 0.4, 4, 30.0, 1.0),
               std::invalid_argument);
}

TEST(EventQueue, RingWrapsAndGrowsWithoutReordering) {
  // Interleave schedules and pops so the ring's head walks away from slot 0
  // and the arena both wraps around and grows while wrapped; pop order must
  // stay (cycle, schedule-order) throughout.
  EventQueue queue;
  int scheduled = 0;
  int popped = 0;
  std::uint64_t cycle = 0;
  const auto push = [&](int n) {
    for (int i = 0; i < n; ++i) queue.schedule(++cycle, scheduled++);
  };
  const auto drain = [&](int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_FALSE(queue.empty());
      EXPECT_EQ(queue.front().payload, popped++);
      queue.pop();
    }
  };
  push(40);
  drain(30);                        // head now mid-arena
  push(50);                         // wraps within the 64-slot arena
  push(100);                        // grows past 64 while wrapped
  drain(160);
  EXPECT_TRUE(queue.empty());

  // clear() keeps the storage and resets to a pristine queue.
  push(3);
  queue.clear();
  EXPECT_TRUE(queue.empty());
  queue.schedule(cycle + 1, 7);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.front().payload, 7);
}

TEST(EventQueue, PopsInCycleThenFifoOrder) {
  EventQueue queue;
  queue.schedule(3, 1);
  queue.schedule(3, 2);
  queue.schedule(3, 2);  // adjacent duplicate coalesces
  queue.schedule(5, 0);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_FALSE(queue.due(2));
  ASSERT_TRUE(queue.due(3));
  EXPECT_EQ(queue.front().payload, 1);
  queue.pop();
  EXPECT_EQ(queue.front().payload, 2);
  queue.pop();
  EXPECT_FALSE(queue.due(4));
  ASSERT_TRUE(queue.due(5));
  EXPECT_EQ(queue.front().payload, 0);
  queue.pop();
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace sunmap::sim

// ---- The explorer's high-fidelity finalist tier and its outputs. ----

#include <algorithm>

#include "apps/apps.h"
#include "io/exploration_io.h"
#include "mapping/sim_eval.h"
#include "select/explorer.h"

namespace sunmap {
namespace {

select::ExplorationRequest tier_request(
    const mapping::CoreGraph& app,
    const std::vector<std::unique_ptr<topo::Topology>>& library) {
  select::ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.objectives = {mapping::Objective::kMinDelay,
                        mapping::Objective::kMinPower};
  request.routings = {route::RoutingKind::kDimensionOrdered,
                      route::RoutingKind::kMinPath};
  return request;
}

std::size_t count_scored(const select::ExplorationReport& report) {
  std::size_t scored = 0;
  for (const auto& result : report.results) {
    for (const auto& candidate : result.selection.candidates) {
      if (candidate.sim.has_value()) ++scored;
    }
  }
  return scored;
}

TEST(SimFinalistTier, IsPurelyAdditiveAndDeterministic) {
  const auto app = apps::pip();
  const auto library = topo::standard_library(app.num_cores());
  select::DesignSpaceExplorer explorer;
  auto request = tier_request(app, library);
  const auto reference = explorer.explore(request);
  request.sim_finalists = 2;
  const auto scored = explorer.explore(request);

  // The tier must not perturb mapping, selection, or winners.
  ASSERT_EQ(scored.results.size(), reference.results.size());
  for (std::size_t p = 0; p < reference.results.size(); ++p) {
    const auto& ref = reference.results[p].selection;
    const auto& got = scored.results[p].selection;
    EXPECT_EQ(got.best_index, ref.best_index);
    ASSERT_EQ(got.candidates.size(), ref.candidates.size());
    for (std::size_t t = 0; t < ref.candidates.size(); ++t) {
      EXPECT_EQ(got.candidates[t].result.eval.cost,
                ref.candidates[t].result.eval.cost);
      EXPECT_EQ(got.candidates[t].result.core_to_slot,
                ref.candidates[t].result.core_to_slot);
      EXPECT_FALSE(ref.candidates[t].sim.has_value());
    }
  }
  ASSERT_EQ(scored.winners.size(), reference.winners.size());
  for (std::size_t w = 0; w < reference.winners.size(); ++w) {
    EXPECT_EQ(scored.winners[w].point_index, reference.winners[w].point_index);
    EXPECT_EQ(scored.winners[w].topology_index,
              reference.winners[w].topology_index);
  }

  // Top-K per objective group: at least each group's best cell is scored,
  // never more than K per group, only feasible cells, and every winner cell
  // (each group's top-1 by definition) carries a score.
  const std::size_t groups = scored.winners.size();
  EXPECT_GE(count_scored(scored), groups);
  EXPECT_LE(count_scored(scored), groups * 2);
  for (const auto& result : scored.results) {
    for (const auto& candidate : result.selection.candidates) {
      if (candidate.sim.has_value()) {
        EXPECT_TRUE(candidate.feasible());
        // Contention can only add to the zero-load pipeline latency.
        EXPECT_GE(candidate.sim->simulated_latency_cycles,
                  candidate.sim->analytical_latency_cycles - 1e-9);
        EXPECT_GT(candidate.sim->stats.packets_delivered, 0u);
      }
    }
  }
  for (const auto& winner : scored.winners) {
    ASSERT_TRUE(winner.found());
    const auto& cell =
        scored.results[static_cast<std::size_t>(winner.point_index)]
            .selection
            .candidates[static_cast<std::size_t>(winner.topology_index)];
    EXPECT_TRUE(cell.sim.has_value());
  }

  // Re-running the identical request reproduces every score bit for bit.
  const auto again = explorer.explore(request);
  ASSERT_EQ(count_scored(again), count_scored(scored));
  for (std::size_t p = 0; p < scored.results.size(); ++p) {
    for (std::size_t t = 0;
         t < scored.results[p].selection.candidates.size(); ++t) {
      const auto& a = scored.results[p].selection.candidates[t].sim;
      const auto& b = again.results[p].selection.candidates[t].sim;
      ASSERT_EQ(a.has_value(), b.has_value());
      if (!a.has_value()) continue;
      EXPECT_EQ(a->stats.avg_latency_cycles, b->stats.avg_latency_cycles);
      EXPECT_EQ(a->stats.cycles, b->stats.cycles);
      EXPECT_EQ(a->stats.flit_events, b->stats.flit_events);
      EXPECT_EQ(a->analytical_latency_cycles, b->analytical_latency_cycles);
    }
  }
}

TEST(SimFinalistTier, EventAndCycleEnginesAgreeBitIdentically) {
  const auto app = apps::pip();
  const auto library = topo::standard_library(app.num_cores());
  select::DesignSpaceExplorer explorer;
  auto request = tier_request(app, library);
  request.sim_finalists = 2;
  request.base.sim_use_event_engine = true;
  const auto event = explorer.explore(request);
  request.base.sim_use_event_engine = false;
  const auto cycle = explorer.explore(request);

  ASSERT_EQ(count_scored(event), count_scored(cycle));
  ASSERT_GT(count_scored(event), 0u);
  for (std::size_t p = 0; p < event.results.size(); ++p) {
    for (std::size_t t = 0;
         t < event.results[p].selection.candidates.size(); ++t) {
      const auto& e = event.results[p].selection.candidates[t].sim;
      const auto& c = cycle.results[p].selection.candidates[t].sim;
      ASSERT_EQ(e.has_value(), c.has_value());
      if (!e.has_value()) continue;
      EXPECT_EQ(e->stats.cycles, c->stats.cycles);
      EXPECT_EQ(e->stats.packets_delivered, c->stats.packets_delivered);
      EXPECT_EQ(e->stats.avg_latency_cycles, c->stats.avg_latency_cycles);
      EXPECT_EQ(e->stats.flit_events, c->stats.flit_events);
      EXPECT_EQ(e->stats.status, c->stats.status);
      EXPECT_EQ(e->simulated_latency_cycles, c->simulated_latency_cycles);
    }
  }
}

TEST(SimFinalistTier, RejectsStreamingAndNegativeCounts) {
  const auto app = apps::pip();
  const auto library = topo::standard_library(app.num_cores());
  select::DesignSpaceExplorer explorer;
  auto request = tier_request(app, library);
  request.sim_finalists = -1;
  EXPECT_THROW((void)explorer.explore(request), std::invalid_argument);
  request.sim_finalists = 1;
  request.on_point = [](const select::PointResult&) {};
  EXPECT_THROW((void)explorer.explore(request), std::invalid_argument);
}

TEST(ExplorationIo, SimColumnsRenderOnlyScoredCells) {
  const auto app = apps::pip();
  const auto library = topo::standard_library(app.num_cores());
  select::DesignSpaceExplorer explorer;
  auto request = tier_request(app, library);
  request.sim_finalists = 1;
  const auto report = explorer.explore(request);
  const std::size_t scored = count_scored(report);
  const std::size_t cells = report.results.size() * library.size();
  ASSERT_GT(scored, 0u);
  ASSERT_LT(scored, cells);

  const auto csv = io::exploration_report_csv(report);
  const auto count = [](const std::string& text, const std::string& needle) {
    std::size_t n = 0;
    for (auto at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + needle.size())) {
      ++n;
    }
    return n;
  };
  EXPECT_NE(csv.find("sim_latency_cycles,sim_analytical_cycles,"
                     "sim_model_error,sim_status,sim_best"),
            std::string::npos);
  // Unscored rows leave all five sim columns empty.
  EXPECT_EQ(count(csv, ",,,,\n"), cells - scored);

  const auto json = io::exploration_report_json(report);
  EXPECT_EQ(count(json, "\"sim\": {"), scored);
  EXPECT_EQ(count(json, "\"sim\": null"), cells - scored);
  EXPECT_EQ(count(json, "\"model_error\": "), scored);
}

TEST(SimEvaluator, CachesLayoutsPerTopologyAndRejectsBareResults) {
  const auto app = apps::pip();
  const auto library = topo::standard_library(app.num_cores());
  select::TopologySelector selector;
  const auto report = selector.select(app, library);

  mapping::SimEvaluator evaluator;
  ASSERT_GE(report.candidates.size(), 2u);
  const auto& first = report.candidates[0];
  const auto& second = report.candidates[1];
  (void)evaluator.score(app, *first.topology, first.result);
  EXPECT_EQ(evaluator.cached_layouts(), 1u);
  const auto once = evaluator.score(app, *second.topology, second.result);
  EXPECT_EQ(evaluator.cached_layouts(), 2u);
  // Repeat scoring reuses the cached simulator and reproduces the result.
  const auto twice = evaluator.score(app, *second.topology, second.result);
  EXPECT_EQ(evaluator.cached_layouts(), 2u);
  EXPECT_EQ(once.stats.avg_latency_cycles, twice.stats.avg_latency_cycles);
  EXPECT_EQ(once.stats.flit_events, twice.stats.flit_events);

  // A result with no materialized routes cannot be simulated.
  mapping::MappingResult bare;
  EXPECT_THROW((void)evaluator.score(app, *first.topology, bare),
               std::invalid_argument);
}

TEST(MapperConfigValidate, ChecksSimTierFields) {
  mapping::MapperConfig config;
  config.sim_finalists = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.sim_finalists = 2;
  config.sim_flits_per_cycle_per_gbps = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.sim_flits_per_cycle_per_gbps = -0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.sim_flits_per_cycle_per_gbps = 0.05;
  EXPECT_NO_THROW(config.validate());

  // The simulated-delay re-rank needs a prefilter, the simulator seed must
  // be a seed, and the burst shape must be a valid on/off process.
  config.sim_rank = true;
  config.sim_finalists = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.sim_finalists = 2;
  EXPECT_NO_THROW(config.validate());
  config.sim_seed = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.sim_seed = 42;
  EXPECT_NO_THROW(config.validate());
  config.sim_burst_len = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.sim_burst_len = 50.0;
  config.sim_burst_duty = 1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.sim_burst_duty = 0.3;
  EXPECT_NO_THROW(config.validate());
}

void expect_same_sim_scores(const select::ExplorationReport& a,
                            const select::ExplorationReport& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t p = 0; p < a.results.size(); ++p) {
    ASSERT_EQ(a.results[p].selection.candidates.size(),
              b.results[p].selection.candidates.size());
    for (std::size_t t = 0; t < a.results[p].selection.candidates.size();
         ++t) {
      const auto& x = a.results[p].selection.candidates[t].sim;
      const auto& y = b.results[p].selection.candidates[t].sim;
      ASSERT_EQ(x.has_value(), y.has_value());
      if (!x.has_value()) continue;
      EXPECT_EQ(x->stats.cycles, y->stats.cycles);
      EXPECT_EQ(x->stats.packets_delivered, y->stats.packets_delivered);
      EXPECT_EQ(x->stats.avg_latency_cycles, y->stats.avg_latency_cycles);
      EXPECT_EQ(x->stats.p99_latency_cycles, y->stats.p99_latency_cycles);
      EXPECT_EQ(x->stats.flit_events, y->stats.flit_events);
      EXPECT_EQ(x->stats.status, y->stats.status);
      EXPECT_EQ(x->analytical_latency_cycles, y->analytical_latency_cycles);
      EXPECT_EQ(x->simulated_latency_cycles, y->simulated_latency_cycles);
    }
  }
}

TEST(SimFinalistTier, ParallelPoolIsBitIdenticalAtAnyThreadCount) {
  const auto app = apps::pip();
  const auto library = topo::standard_library(app.num_cores());
  select::DesignSpaceExplorer explorer;
  auto request = tier_request(app, library);
  request.sim_finalists = 3;

  request.num_threads = 1;
  const auto serial = explorer.explore(request);
  ASSERT_GT(count_scored(serial), 0u);
  for (const int threads : {2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    request.num_threads = threads;
    const auto parallel = explorer.explore(request);
    ASSERT_EQ(count_scored(parallel), count_scored(serial));
    expect_same_sim_scores(serial, parallel);
  }
}

TEST(SimFinalistTier, BurstyTrafficIsDeterministicAndDistinctFromTrace) {
  const auto app = apps::pip();
  const auto library = topo::standard_library(app.num_cores());
  select::DesignSpaceExplorer explorer;
  auto request = tier_request(app, library);
  request.sim_finalists = 2;
  const auto trace = explorer.explore(request);
  request.base.sim_traffic = mapping::SimTraffic::kBursty;
  const auto bursty = explorer.explore(request);
  const auto again = explorer.explore(request);

  // Repeat runs under the bursty model reproduce every score bit for bit.
  ASSERT_GT(count_scored(bursty), 0u);
  expect_same_sim_scores(bursty, again);

  // And the knob actually reaches the simulator: the on/off modulation
  // changes the delivered-traffic statistics of at least one scored cell.
  ASSERT_EQ(count_scored(trace), count_scored(bursty));
  bool differs = false;
  for (std::size_t p = 0; p < trace.results.size(); ++p) {
    for (std::size_t t = 0; t < trace.results[p].selection.candidates.size();
         ++t) {
      const auto& x = trace.results[p].selection.candidates[t].sim;
      const auto& y = bursty.results[p].selection.candidates[t].sim;
      if (!x.has_value() || !y.has_value()) continue;
      differs = differs ||
                x->stats.packets_delivered != y->stats.packets_delivered ||
                x->stats.avg_latency_cycles != y->stats.avg_latency_cycles;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(SimRank, IsAdditiveDeterministicAndCrownsAScoredFinalist) {
  const auto app = apps::pip();
  const auto library = topo::standard_library(app.num_cores());
  select::DesignSpaceExplorer explorer;
  auto request = tier_request(app, library);
  request.sim_finalists = 2;
  const auto plain = explorer.explore(request);
  EXPECT_TRUE(plain.sim_winners.empty());

  request.sim_rank = true;
  const auto ranked = explorer.explore(request);
  const auto again = explorer.explore(request);

  // Additive: the re-rank changes nothing about the analytical report or
  // the finalist scores — it only fills sim_winners.
  expect_same_sim_scores(plain, ranked);
  ASSERT_EQ(ranked.winners.size(), plain.winners.size());
  for (std::size_t w = 0; w < plain.winners.size(); ++w) {
    EXPECT_EQ(ranked.winners[w].point_index, plain.winners[w].point_index);
    EXPECT_EQ(ranked.winners[w].topology_index,
              plain.winners[w].topology_index);
  }

  // One sim winner per objective group, deterministic across runs, and
  // always a cell the simulator actually scored.
  ASSERT_EQ(ranked.sim_winners.size(), ranked.winners.size());
  ASSERT_EQ(again.sim_winners.size(), ranked.sim_winners.size());
  for (std::size_t w = 0; w < ranked.sim_winners.size(); ++w) {
    const auto& best = ranked.sim_winners[w];
    EXPECT_EQ(best.objective, ranked.winners[w].objective);
    EXPECT_EQ(best.point_index, again.sim_winners[w].point_index);
    EXPECT_EQ(best.topology_index, again.sim_winners[w].topology_index);
    ASSERT_TRUE(best.found());
    const auto& cell =
        ranked.results[static_cast<std::size_t>(best.point_index)]
            .selection
            .candidates[static_cast<std::size_t>(best.topology_index)];
    EXPECT_TRUE(cell.sim.has_value());
  }

  // The rendered outputs surface the re-rank: the CSV gains a marked
  // sim_best cell and the JSON a sim_winners array.
  const auto csv = io::exploration_report_csv(ranked);
  EXPECT_NE(csv.find(",sim_best"), std::string::npos);
  const auto json = io::exploration_report_json(ranked);
  EXPECT_NE(json.find("\"sim_winners\": ["), std::string::npos);
  EXPECT_EQ(json.find("\"sim_winners\": [\n  ],"), std::string::npos);
  // With the re-rank off the array renders empty.
  EXPECT_NE(io::exploration_report_json(plain).find("\"sim_winners\": [\n  ],"),
            std::string::npos);

  // The re-rank without its prefilter is a contract violation.
  request.sim_finalists = 0;
  EXPECT_THROW((void)explorer.explore(request), std::invalid_argument);
}

TEST(SimEvaluator, EvictsLeastRecentlyScoredBeyondCapacity) {
  const auto app = apps::pip();
  const auto library = topo::standard_library(app.num_cores());
  select::TopologySelector selector;
  const auto report = selector.select(app, library);
  ASSERT_GE(report.candidates.size(), 3u);
  const auto& a = report.candidates[0];
  const auto& b = report.candidates[1];
  const auto& c = report.candidates[2];

  mapping::SimTierOptions options;
  options.cache_capacity = 2;
  mapping::SimEvaluator evaluator(options);
  const auto first = evaluator.score(app, *a.topology, a.result);
  (void)evaluator.score(app, *b.topology, b.result);
  EXPECT_EQ(evaluator.cached_layouts(), 2u);
  // Third topology evicts the least-recently-scored entry (a).
  (void)evaluator.score(app, *c.topology, c.result);
  EXPECT_EQ(evaluator.cached_layouts(), 2u);
  // Re-scoring the evicted topology rebuilds it and reproduces the score
  // bit for bit — eviction can never change results.
  const auto rebuilt = evaluator.score(app, *a.topology, a.result);
  EXPECT_EQ(evaluator.cached_layouts(), 2u);
  EXPECT_EQ(first.stats.avg_latency_cycles, rebuilt.stats.avg_latency_cycles);
  EXPECT_EQ(first.stats.flit_events, rebuilt.stats.flit_events);
  EXPECT_EQ(first.stats.cycles, rebuilt.stats.cycles);

  // Recency, not insertion order: touching the oldest entry saves it.
  mapping::SimEvaluator lru(options);
  (void)lru.score(app, *a.topology, a.result);
  (void)lru.score(app, *b.topology, b.result);
  (void)lru.score(app, *a.topology, a.result);  // refresh a
  (void)lru.score(app, *c.topology, c.result);  // must evict b, not a
  const auto before = lru.cached_layouts();
  (void)lru.score(app, *a.topology, a.result);  // cache hit
  EXPECT_EQ(lru.cached_layouts(), before);

  mapping::SimTierOptions bad;
  bad.cache_capacity = 0;
  EXPECT_THROW(mapping::SimEvaluator{bad}, std::invalid_argument);
}

TEST(SimSeed, DecouplesSimulatorPrngFromSearchSeed) {
  // sim_tier_options carries the dedicated simulator seed (and the traffic
  // shape) into the tier; the default reproduces the historical behavior
  // of seeding the simulator with SimConfig's own default.
  mapping::MapperConfig config;
  EXPECT_EQ(mapping::sim_tier_options(config).config.seed,
            sim::SimConfig{}.seed);
  config.sim_seed = 99;
  config.sim_traffic = mapping::SimTraffic::kBursty;
  config.sim_burst_len = 20.0;
  config.sim_burst_duty = 0.5;
  const auto options = mapping::sim_tier_options(config);
  EXPECT_EQ(options.config.seed, 99u);
  EXPECT_EQ(options.traffic, mapping::SimTraffic::kBursty);
  EXPECT_EQ(options.burst_len, 20.0);
  EXPECT_EQ(options.burst_duty, 0.5);

  // Different simulator seeds change the measured statistics but never the
  // analytical prediction — the searched mapping is untouched.
  const auto app = apps::pip();
  const auto library = topo::standard_library(app.num_cores());
  select::TopologySelector selector;
  const auto report = selector.select(app, library);
  const auto& best = report.candidates[0];
  mapping::SimTierOptions seeded;
  seeded.config.seed = 1;
  mapping::SimEvaluator one(seeded);
  seeded.config.seed = 2;
  mapping::SimEvaluator two(seeded);
  const auto s1 = one.score(app, *best.topology, best.result);
  const auto s2 = two.score(app, *best.topology, best.result);
  EXPECT_EQ(s1.analytical_latency_cycles, s2.analytical_latency_cycles);
  EXPECT_NE(s1.stats.avg_latency_cycles, s2.stats.avg_latency_cycles);
}

}  // namespace
}  // namespace sunmap
