#include <gtest/gtest.h>

#include <algorithm>

#include "apps/apps.h"
#include "graph/paths.h"
#include "mapping/mapper.h"
#include "topo/custom.h"

namespace sunmap::topo {
namespace {

/// 4-switch bidirectional ring, one core per switch.
std::unique_ptr<CustomTopology> ring4() {
  CustomTopology::Builder builder("ring4");
  NodeId sw[4];
  for (auto& s : sw) s = builder.add_switch();
  for (int i = 0; i < 4; ++i) {
    builder.add_bidirectional_link(sw[i], sw[(i + 1) % 4]);
  }
  for (int i = 0; i < 4; ++i) builder.attach_core(sw[i]);
  return builder.build();
}

TEST(CustomTopology, RingStructure) {
  const auto ring = ring4();
  EXPECT_EQ(ring->kind(), TopologyKind::kCustom);
  EXPECT_EQ(ring->name(), "ring4");
  EXPECT_EQ(ring->num_switches(), 4);
  EXPECT_EQ(ring->num_slots(), 4);
  EXPECT_TRUE(ring->is_direct());
  EXPECT_EQ(ring->num_network_links(), 4);
  EXPECT_EQ(ring->min_switch_hops(0, 2), 3);
  EXPECT_EQ(ring->min_switch_hops(0, 1), 2);
}

TEST(CustomTopology, RouteIsShortest) {
  const auto ring = ring4();
  for (SlotId a = 0; a < 4; ++a) {
    for (SlotId b = 0; b < 4; ++b) {
      if (a == b) continue;
      const auto path = ring->dimension_ordered_path(a, b);
      EXPECT_EQ(static_cast<int>(path.size()), ring->min_switch_hops(a, b));
      EXPECT_NO_THROW(ring->make_path(path));
    }
  }
}

TEST(CustomTopology, QuadrantUsesGenericClosure) {
  const auto ring = ring4();
  // Opposite nodes on a 4-ring: both arcs are minimal -> all 4 switches.
  auto quadrant = ring->quadrant_nodes(0, 2);
  std::sort(quadrant.begin(), quadrant.end());
  EXPECT_EQ(quadrant, (std::vector<graph::NodeId>{0, 1, 2, 3}));
}

TEST(CustomTopology, HeterogeneousExpressRing) {
  // A ring with one express link 0 -> 4 (the kind of irregular structure
  // the paper leaves to future work).
  CustomTopology::Builder builder("express_ring");
  NodeId sw[6];
  for (auto& s : sw) s = builder.add_switch();
  for (int i = 0; i < 6; ++i) {
    builder.add_bidirectional_link(sw[i], sw[(i + 1) % 6]);
  }
  builder.add_bidirectional_link(sw[0], sw[3]);
  for (int i = 0; i < 6; ++i) builder.attach_core(sw[i]);
  const auto ring = builder.build();
  // Express link shortens 0 -> 3 from 4 switches to 2.
  EXPECT_EQ(ring->min_switch_hops(0, 3), 2);
  // The express switch has a larger radix.
  EXPECT_EQ(ring->switch_radix(0), 4);
  EXPECT_EQ(ring->switch_radix(1), 3);
}

TEST(CustomTopology, IndirectAttachments) {
  // A tiny 2-stage fabric: cores inject at stage 0 and eject at stage 1.
  CustomTopology::Builder builder("fabric");
  const NodeId in0 = builder.add_switch();
  const NodeId in1 = builder.add_switch();
  const NodeId out0 = builder.add_switch();
  const NodeId out1 = builder.add_switch();
  builder.add_link(in0, out0).add_link(in0, out1);
  builder.add_link(in1, out0).add_link(in1, out1);
  builder.attach_core(in0, out0);
  builder.attach_core(in0, out1);
  builder.attach_core(in1, out0);
  builder.attach_core(in1, out1);
  const auto fabric = builder.build();
  EXPECT_FALSE(fabric->is_direct());
  EXPECT_EQ(fabric->min_switch_hops(0, 3), 2);
  EXPECT_EQ(fabric->num_core_links(), 8);
}

TEST(CustomTopology, BuildRejectsUnroutable) {
  CustomTopology::Builder builder("broken");
  const NodeId a = builder.add_switch();
  const NodeId b = builder.add_switch();
  builder.add_link(a, b);  // no way back
  builder.attach_core(a);
  builder.attach_core(b);
  EXPECT_THROW(builder.build(), std::logic_error);
}

TEST(CustomTopology, AttachValidatesSwitch) {
  CustomTopology::Builder builder("bad_attach");
  builder.add_switch();
  EXPECT_THROW(builder.attach_core(5), std::out_of_range);
}

TEST(CustomTopology, PlacementCoversEverything) {
  const auto ring = ring4();
  const auto placement = ring->relative_placement();
  int cores = 0;
  int switches = 0;
  for (const auto& item : placement.items) {
    if (item.kind == RelativePlacement::Item::Kind::kCore) ++cores;
    if (item.kind == RelativePlacement::Item::Kind::kSwitch) ++switches;
  }
  EXPECT_EQ(cores, 4);
  EXPECT_EQ(switches, 4);
}

TEST(CustomTopology, MapperRunsOnCustomTopology) {
  const auto app = apps::dsp_filter();
  CustomTopology::Builder builder("ring6");
  NodeId sw[6];
  for (auto& s : sw) s = builder.add_switch();
  for (int i = 0; i < 6; ++i) {
    builder.add_bidirectional_link(sw[i], sw[(i + 1) % 6]);
  }
  for (int i = 0; i < 6; ++i) builder.attach_core(sw[i]);
  const auto ring = builder.build();

  mapping::MapperConfig config;
  config.link_bandwidth_mbps = 1000.0;
  mapping::Mapper mapper(config);
  const auto result = mapper.map(app, *ring);
  EXPECT_TRUE(result.eval.feasible());
  EXPECT_GE(result.eval.avg_switch_hops, 2.0);
}

}  // namespace
}  // namespace sunmap::topo
