#include <gtest/gtest.h>

#include "sim/route_table.h"
#include "topo/library.h"

namespace sunmap::sim {
namespace {

TEST(RouteTable, SetAndGet) {
  RouteTable table(4);
  EXPECT_FALSE(table.has(0, 1));
  route::RouteSet routes;
  graph::Path path;
  path.nodes = {0, 1};
  path.edges = {0};
  routes.paths.push_back(route::WeightedPath{path, 1.0});
  table.set(0, 1, routes);
  EXPECT_TRUE(table.has(0, 1));
  EXPECT_EQ(table.at(0, 1).paths.size(), 1u);
  EXPECT_THROW(table.at(1, 0), std::out_of_range);
}

TEST(RouteTable, RejectsBadInput) {
  EXPECT_THROW(RouteTable(1), std::invalid_argument);
  RouteTable table(3);
  EXPECT_THROW(table.set(0, 1, route::RouteSet{}), std::invalid_argument);
  EXPECT_THROW(table.has(0, 3), std::out_of_range);
}

TEST(RouteTable, AllPairsCoversEveryPair) {
  const auto mesh = topo::make_mesh_for(9);
  const auto table =
      RouteTable::all_pairs(*mesh, route::RoutingKind::kDimensionOrdered);
  EXPECT_EQ(table.num_slots(), 9);
  for (int a = 0; a < 9; ++a) {
    for (int b = 0; b < 9; ++b) {
      if (a == b) {
        EXPECT_FALSE(table.has(a, b));
      } else {
        ASSERT_TRUE(table.has(a, b));
        EXPECT_EQ(table.at(a, b).paths[0].path.nodes.front(),
                  mesh->ingress_switch(a));
        EXPECT_EQ(table.at(a, b).paths[0].path.nodes.back(),
                  mesh->egress_switch(b));
      }
    }
  }
}

TEST(RouteTable, AllPairsSplitMinHasDiversityOnClos) {
  const auto clos = topo::make_clos_for(8);
  const auto table =
      RouteTable::all_pairs(*clos, route::RoutingKind::kSplitMin);
  // Slots on different edge switches split over all middle switches.
  int multi_path_pairs = 0;
  for (int a = 0; a < clos->num_slots(); ++a) {
    for (int b = 0; b < clos->num_slots(); ++b) {
      if (a == b) continue;
      if (table.at(a, b).paths.size() > 1) ++multi_path_pairs;
    }
  }
  EXPECT_GT(multi_path_pairs, 0);
}

}  // namespace
}  // namespace sunmap::sim
