#include <gtest/gtest.h>

#include "graph/graph.h"

namespace sunmap::graph {
namespace {

TEST(DirectedGraph, StartsEmpty) {
  DirectedGraph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(DirectedGraph, ConstructWithNodes) {
  DirectedGraph g(5);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(DirectedGraph, NegativeNodeCountThrows) {
  EXPECT_THROW(DirectedGraph(-1), std::invalid_argument);
}

TEST(DirectedGraph, AddNodeReturnsSequentialIds) {
  DirectedGraph g;
  EXPECT_EQ(g.add_node(), 0);
  EXPECT_EQ(g.add_node(), 1);
  EXPECT_EQ(g.add_node(), 2);
}

TEST(DirectedGraph, AddEdgeUpdatesAdjacency) {
  DirectedGraph g(3);
  const EdgeId e = g.add_edge(0, 1, 2.5);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge(e).src, 0);
  EXPECT_EQ(g.edge(e).dst, 1);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 2.5);
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.in_degree(1), 1);
  EXPECT_EQ(g.out_degree(1), 0);
  EXPECT_EQ(g.in_degree(0), 0);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(DirectedGraph, EdgesAreDirected) {
  DirectedGraph g(2);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(DirectedGraph, SelfLoopThrows) {
  DirectedGraph g(2);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(DirectedGraph, OutOfRangeEndpointThrows) {
  DirectedGraph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
}

TEST(DirectedGraph, ParallelEdgesAllowed) {
  DirectedGraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.out_degree(0), 2);
}

TEST(DirectedGraph, FindEdgeReturnsFirstMatch) {
  DirectedGraph g(3);
  g.add_edge(0, 2);
  const EdgeId e = g.add_edge(0, 1);
  EXPECT_EQ(g.find_edge(0, 1), e);
  EXPECT_EQ(g.find_edge(1, 0), std::nullopt);
}

TEST(DirectedGraph, TotalWeightSumsEdges) {
  DirectedGraph g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.5);
  g.add_edge(2, 0, 3.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 7.0);
}

TEST(DirectedGraph, EdgeWeightIsMutable) {
  DirectedGraph g(2);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  g.edge(e).weight = 9.0;
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 9.0);
}

TEST(DirectedGraph, OutEdgesInInsertionOrder) {
  DirectedGraph g(4);
  const EdgeId a = g.add_edge(0, 1);
  const EdgeId b = g.add_edge(0, 2);
  const EdgeId c = g.add_edge(0, 3);
  const auto out = g.out_edges(0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], a);
  EXPECT_EQ(out[1], b);
  EXPECT_EQ(out[2], c);
}

}  // namespace
}  // namespace sunmap::graph
