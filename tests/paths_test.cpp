#include <gtest/gtest.h>

#include <algorithm>

#include "graph/paths.h"

namespace sunmap::graph {
namespace {

/// 0 -> 1 -> 3 and 0 -> 2 -> 3, with a direct slow edge 0 -> 3.
DirectedGraph diamond() {
  DirectedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(0, 3, 5.0);
  return g;
}

EdgeCostFn weight_cost(const DirectedGraph& g) {
  return [&g](EdgeId e) { return g.edge(e).weight; };
}

TEST(ShortestPath, PrefersCheaperTwoHopRoute) {
  const auto g = diamond();
  const auto path = shortest_path(g, 0, 3, weight_cost(g));
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->cost, 2.0);
  EXPECT_EQ(path->hops(), 2);
  EXPECT_EQ(path->nodes.front(), 0);
  EXPECT_EQ(path->nodes.back(), 3);
}

TEST(ShortestPath, SingleNodePath) {
  const auto g = diamond();
  const auto path = shortest_path(g, 2, 2, weight_cost(g));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 0);
  EXPECT_DOUBLE_EQ(path->cost, 0.0);
  EXPECT_EQ(path->nodes, (std::vector<NodeId>{2}));
}

TEST(ShortestPath, UnreachableReturnsNullopt) {
  DirectedGraph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(shortest_path(g, 1, 0, weight_cost(g)), std::nullopt);
  EXPECT_EQ(shortest_path(g, 0, 2, weight_cost(g)), std::nullopt);
}

TEST(ShortestPath, NodeFilterRestrictsSearch) {
  const auto g = diamond();
  // Exclude node 1: must route via 2 (or the expensive direct edge).
  const auto path = shortest_path(g, 0, 3, weight_cost(g),
                                  [](NodeId u) { return u != 1; });
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes, (std::vector<NodeId>{0, 2, 3}));
}

TEST(ShortestPath, FilterExcludingEndpointFails) {
  const auto g = diamond();
  EXPECT_EQ(shortest_path(g, 0, 3, weight_cost(g),
                          [](NodeId u) { return u != 3; }),
            std::nullopt);
}

TEST(ShortestPath, NegativeCostThrows) {
  const auto g = diamond();
  EXPECT_THROW(shortest_path(g, 0, 3, [](EdgeId) { return -1.0; }),
               std::invalid_argument);
}

TEST(ShortestPath, EdgesMatchNodes) {
  const auto g = diamond();
  const auto path = shortest_path(g, 0, 3, weight_cost(g));
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->edges.size(), path->nodes.size() - 1);
  for (std::size_t i = 0; i < path->edges.size(); ++i) {
    EXPECT_EQ(g.edge(path->edges[i]).src, path->nodes[i]);
    EXPECT_EQ(g.edge(path->edges[i]).dst, path->nodes[i + 1]);
  }
}

TEST(BfsDistances, ComputesHopCounts) {
  const auto g = diamond();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 1);
  EXPECT_EQ(dist[3], 1);  // direct edge exists
}

TEST(BfsDistances, UnreachableIsMinusOne) {
  DirectedGraph g(3);
  g.add_edge(0, 1);
  const auto dist = bfs_distances(g, 1);
  EXPECT_EQ(dist[0], -1);
  EXPECT_EQ(dist[2], -1);
}

TEST(BfsDistancesTo, FollowsReversedEdges) {
  const auto g = diamond();
  const auto dist = bfs_distances_to(g, 3);
  EXPECT_EQ(dist[3], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 1);
  EXPECT_EQ(dist[0], 1);
}

TEST(HopDistance, MatchesBfs) {
  const auto g = diamond();
  EXPECT_EQ(hop_distance(g, 0, 3), 1);
  EXPECT_EQ(hop_distance(g, 1, 2), -1);
}

TEST(AllPairsHops, MatchesPerSourceBfs) {
  const auto g = diamond();
  const auto all = all_pairs_hops(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(all[static_cast<std::size_t>(u)], bfs_distances(g, u));
  }
}

TEST(StronglyConnected, DetectsBothCases) {
  DirectedGraph ring(3);
  ring.add_edge(0, 1);
  ring.add_edge(1, 2);
  ring.add_edge(2, 0);
  EXPECT_TRUE(strongly_connected(ring));

  DirectedGraph chain(3);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);
  EXPECT_FALSE(strongly_connected(chain));
}

TEST(MinPathDag, ContainsExactlyMinimalEdges) {
  const auto g = diamond();
  // d(0,3) == 1 via the direct edge, so the DAG is just that edge.
  const auto dag = min_path_dag(g, 0, 3);
  ASSERT_EQ(dag.size(), 1u);
  EXPECT_EQ(g.edge(dag[0]).src, 0);
  EXPECT_EQ(g.edge(dag[0]).dst, 3);
}

TEST(MinPathDag, CapturesDiamondWhenDirectEdgeAbsent) {
  DirectedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  const auto dag = min_path_dag(g, 0, 3);
  EXPECT_EQ(dag.size(), 4u);
}

TEST(MinPathNodes, MatchesClosureDefinition) {
  DirectedGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const auto nodes = min_path_nodes(g, 0, 3);
  EXPECT_EQ(nodes, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(CountMinPaths, CountsDiamond) {
  DirectedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  EXPECT_EQ(count_min_paths(g, 0, 3), 2);
  EXPECT_EQ(count_min_paths(g, 0, 0), 1);
  EXPECT_EQ(count_min_paths(g, 3, 0), 0);
}

TEST(CountMinPaths, RespectsCap) {
  // A chain of diamonds has 2^k minimum paths.
  DirectedGraph g(1);
  NodeId prev = 0;
  for (int k = 0; k < 10; ++k) {
    const NodeId a = g.add_node();
    const NodeId b = g.add_node();
    const NodeId join = g.add_node();
    g.add_edge(prev, a);
    g.add_edge(prev, b);
    g.add_edge(a, join);
    g.add_edge(b, join);
    prev = join;
  }
  EXPECT_EQ(count_min_paths(g, 0, prev), 1024);
  EXPECT_EQ(count_min_paths(g, 0, prev, 100), 100);
}

}  // namespace
}  // namespace sunmap::graph
