// Tests for the pluggable search-strategy subsystem: the factory, the
// multi-restart annealer (best-of-restarts, equal-budget dominance,
// thread-count determinism), and temperature re-heating.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/apps.h"
#include "mapping/eval_context.h"
#include "mapping/search_strategy.h"
#include "topo/library.h"

namespace sunmap::mapping {
namespace {

MapperConfig restart_config(int restarts, int total_iterations) {
  MapperConfig config;
  config.search = SearchKind::kRestartAnnealing;
  config.annealing_restarts = restarts;
  config.annealing_iterations = total_iterations;
  return config;
}

TEST(SearchStrategyFactory, ImplementsEveryKind) {
  for (const auto kind :
       {SearchKind::kGreedySwaps, SearchKind::kAnnealing,
        SearchKind::kRestartAnnealing}) {
    const auto strategy = make_search_strategy(kind);
    ASSERT_NE(strategy, nullptr);
    EXPECT_STREQ(strategy->name(), to_string(kind));
  }
}

TEST(RestartAnnealing, ProducesValidMapping) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  const auto result =
      Mapper(restart_config(4, 800)).map(app, *mesh);
  std::vector<bool> used(static_cast<std::size_t>(mesh->num_slots()), false);
  for (int slot : result.core_to_slot) {
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, mesh->num_slots());
    EXPECT_FALSE(used[static_cast<std::size_t>(slot)]);
    used[static_cast<std::size_t>(slot)] = true;
  }
  EXPECT_TRUE(result.eval.feasible());
}

// The acceptance bar: at the same total iteration budget, the restart
// annealer (restarts >= 4) never returns a worse cost than the single-seed
// chain on the VOPD mesh. Both searches are deterministic, so this is a
// fixed comparison, not a statistical one.
TEST(RestartAnnealing, NeverWorseThanSingleSeedAtEqualBudgetOnVopd) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  for (const int total : {1000, 2000}) {
    for (const int restarts : {4, 8}) {
      MapperConfig single;
      single.search = SearchKind::kAnnealing;
      single.annealing_iterations = total;
      const auto single_result = Mapper(single).map(app, *mesh);

      const auto restart_result =
          Mapper(restart_config(restarts, total)).map(app, *mesh);

      SCOPED_TRACE("total=" + std::to_string(total) +
                   " restarts=" + std::to_string(restarts));
      ASSERT_TRUE(single_result.eval.feasible());
      ASSERT_TRUE(restart_result.eval.feasible());
      EXPECT_LE(restart_result.eval.cost, single_result.eval.cost);
    }
  }
}

TEST(RestartAnnealing, DeterministicAcrossThreadCounts) {
  const auto app = apps::dsp_filter();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  auto config = restart_config(5, 600);
  config.link_bandwidth_mbps = 1000.0;
  const auto sequential = Mapper(config).map(app, *mesh);
  config.num_threads = 3;
  const auto parallel = Mapper(config).map(app, *mesh);
  EXPECT_EQ(sequential.core_to_slot, parallel.core_to_slot);
  EXPECT_EQ(sequential.eval.cost, parallel.eval.cost);
  EXPECT_EQ(sequential.evaluated_mappings, parallel.evaluated_mappings);
}

TEST(RestartAnnealing, SingleRestartMatchesPlainAnnealing) {
  // One restart with the full budget runs the identical chain (same seed,
  // same uncompressed cooling) as the plain annealer.
  const auto app = apps::mwd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig single;
  single.search = SearchKind::kAnnealing;
  single.annealing_iterations = 500;
  auto restart = single;
  restart.search = SearchKind::kRestartAnnealing;
  restart.annealing_restarts = 1;
  const auto a = Mapper(single).map(app, *mesh);
  const auto b = Mapper(restart).map(app, *mesh);
  EXPECT_EQ(a.core_to_slot, b.core_to_slot);
  EXPECT_EQ(a.eval.cost, b.eval.cost);
  EXPECT_EQ(a.evaluated_mappings, b.evaluated_mappings);
}

TEST(RestartAnnealing, CollectsExploredTraceAcrossRestarts) {
  const auto app = apps::pip();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  auto config = restart_config(4, 400);
  config.collect_explored = true;
  const auto result = Mapper(config).map(app, *mesh);
  // The initial evaluation plus every chain iteration that evaluated.
  EXPECT_EQ(static_cast<int>(result.explored_area_power.size()),
            result.evaluated_mappings);
  EXPECT_GT(result.evaluated_mappings, 200);
}

TEST(Reheating, KeepsDeterminismAndValidity) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  auto config = restart_config(4, 800);
  config.annealing_reheats = 2;
  const auto a = Mapper(config).map(app, *mesh);
  const auto b = Mapper(config).map(app, *mesh);
  EXPECT_EQ(a.core_to_slot, b.core_to_slot);
  EXPECT_EQ(a.eval.cost, b.eval.cost);
  EXPECT_TRUE(a.eval.feasible());
}

TEST(Reheating, ZeroReheatsReproducesPlainSchedule) {
  const auto app = apps::dsp_filter();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig plain;
  plain.search = SearchKind::kAnnealing;
  plain.annealing_iterations = 300;
  plain.link_bandwidth_mbps = 1000.0;
  auto zero = plain;
  zero.annealing_reheats = 0;
  const auto a = Mapper(plain).map(app, *mesh);
  const auto b = Mapper(zero).map(app, *mesh);
  EXPECT_EQ(a.core_to_slot, b.core_to_slot);
  EXPECT_EQ(a.eval.cost, b.eval.cost);
}

TEST(SearchConfigValidation, RejectsBadRestartAndReheatCounts) {
  MapperConfig config;
  config.annealing_restarts = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = MapperConfig{};
  config.annealing_reheats = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = MapperConfig{};
  config.annealing_restarts = 16;
  config.annealing_reheats = 3;
  EXPECT_NO_THROW(config.validate());
}

TEST(SearchKindNames, RoundTrip) {
  EXPECT_STREQ(to_string(SearchKind::kGreedySwaps), "greedy-swaps");
  EXPECT_STREQ(to_string(SearchKind::kAnnealing), "annealing");
  EXPECT_STREQ(to_string(SearchKind::kRestartAnnealing), "restart-annealing");
}

}  // namespace
}  // namespace sunmap::mapping
