#include <gtest/gtest.h>

#include "apps/apps.h"
#include "select/selector.h"

namespace sunmap::select {
namespace {

TEST(Pareto, ExtractsFrontier) {
  const std::vector<std::pair<double, double>> points{
      {10.0, 5.0}, {8.0, 7.0}, {12.0, 4.0}, {8.0, 9.0}, {9.0, 6.0},
  };
  const auto frontier = pareto_frontier(points);
  ASSERT_EQ(frontier.size(), 4u);
  EXPECT_DOUBLE_EQ(frontier[0].area_mm2, 8.0);
  EXPECT_DOUBLE_EQ(frontier[0].power_mw, 7.0);
  EXPECT_DOUBLE_EQ(frontier[1].area_mm2, 9.0);
  EXPECT_DOUBLE_EQ(frontier[2].area_mm2, 10.0);
  EXPECT_DOUBLE_EQ(frontier[3].area_mm2, 12.0);
  EXPECT_DOUBLE_EQ(frontier[3].power_mw, 4.0);
}

TEST(Pareto, DropsDuplicates) {
  const std::vector<std::pair<double, double>> points{
      {5.0, 5.0}, {5.0, 5.0}, {5.0, 5.0}};
  EXPECT_EQ(pareto_frontier(points).size(), 1u);
}

TEST(Pareto, EmptyInput) {
  EXPECT_TRUE(pareto_frontier({}).empty());
}

TEST(Pareto, SingleDominatingPoint) {
  const std::vector<std::pair<double, double>> points{
      {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  const auto frontier = pareto_frontier(points);
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_DOUBLE_EQ(frontier[0].area_mm2, 1.0);
}

TEST(Selector, EvaluatesEveryTopology) {
  const auto app = apps::dsp_filter();
  const auto library = topo::standard_library(app.num_cores());
  TopologySelector selector;
  const auto report = selector.select(app, library);
  ASSERT_EQ(report.candidates.size(), library.size());
  for (std::size_t i = 0; i < library.size(); ++i) {
    EXPECT_EQ(report.candidates[i].topology, library[i].get());
  }
}

TEST(Selector, BestIsFeasibleWithMinimumCost) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  TopologySelector selector;
  const auto report = selector.select(app, library);
  ASSERT_NE(report.best(), nullptr);
  EXPECT_TRUE(report.best()->feasible());
  for (const auto& candidate : report.candidates) {
    if (candidate.feasible()) {
      EXPECT_LE(report.best()->result.eval.cost,
                candidate.result.eval.cost + 1e-12);
    }
  }
}

TEST(Selector, VopdSelectsButterfly) {
  // §6.1: "butterfly is the best topology for VOPD" — least delay, area and
  // power of the whole library at 500 MB/s links.
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  mapping::MapperConfig config;
  config.routing = route::RoutingKind::kMinPath;
  config.objective = mapping::Objective::kMinDelay;
  TopologySelector selector(config);
  const auto report = selector.select(app, library);
  ASSERT_NE(report.best(), nullptr);
  EXPECT_EQ(report.best()->topology->kind(), topo::TopologyKind::kButterfly);
}

TEST(Selector, NoFeasibleMappingYieldsNoBest) {
  mapping::MapperConfig config;
  config.link_bandwidth_mbps = 1.0;  // nothing fits
  TopologySelector selector(config);
  const auto app = apps::dsp_filter();
  const auto library = topo::standard_library(app.num_cores());
  const auto report = selector.select(app, library);
  EXPECT_EQ(report.best_index, -1);
  EXPECT_EQ(report.best(), nullptr);
}

TEST(Selector, Mpeg4ButterflyInfeasibleOthersFeasibleUnderSplit) {
  // §6.1: "the butterfly network ... doesn't produce any feasible mapping
  // for MPEG4. All other topologies produce feasible mappings with
  // split-traffic routing."
  const auto app = apps::mpeg4();
  const auto library = topo::standard_library(app.num_cores());
  mapping::MapperConfig config;
  config.routing = route::RoutingKind::kSplitAll;
  TopologySelector selector(config);
  const auto report = selector.select(app, library);
  for (const auto& candidate : report.candidates) {
    if (candidate.topology->kind() == topo::TopologyKind::kButterfly) {
      EXPECT_FALSE(candidate.feasible());
      // The 910 MB/s flow cannot be split on a single-path network.
      EXPECT_NEAR(candidate.result.eval.max_link_load_mbps, 910.0, 1e-6);
    } else {
      EXPECT_TRUE(candidate.feasible()) << candidate.topology->name();
    }
  }
}

TEST(Selector, Mpeg4SinglePathRoutingAllInfeasible) {
  // Fig 9(a): at 500 MB/s only the split-traffic routing functions fit.
  const auto app = apps::mpeg4();
  const auto library = topo::standard_library(app.num_cores());
  mapping::MapperConfig config;
  config.routing = route::RoutingKind::kMinPath;
  TopologySelector selector(config);
  const auto report = selector.select(app, library);
  EXPECT_EQ(report.best(), nullptr);
}

}  // namespace
}  // namespace sunmap::select
