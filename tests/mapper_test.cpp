#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "apps/apps.h"
#include "mapping/mapper.h"
#include "topo/library.h"

namespace sunmap::mapping {
namespace {

/// Four cores in a simple pipeline a -> b -> c -> d.
CoreGraph pipeline4() {
  CoreGraph app("pipeline4");
  app.add_core("a", 2.0);
  app.add_core("b", 2.0);
  app.add_core("c", 2.0);
  app.add_core("d", 2.0);
  app.add_flow(0, 1, 300.0);
  app.add_flow(1, 2, 200.0);
  app.add_flow(2, 3, 100.0);
  return app;
}

TEST(Mapper, RejectsOversizedApplication) {
  const auto mesh = topo::make_mesh_for(4);
  Mapper mapper;
  const auto app = apps::vopd();  // 12 cores onto 4 slots
  EXPECT_THROW(mapper.map(app, *mesh), std::invalid_argument);
}

TEST(Mapper, RejectsInvalidConfig) {
  MapperConfig config;
  config.link_bandwidth_mbps = 0.0;
  EXPECT_THROW(Mapper{config}, std::invalid_argument);
}

TEST(MapperConfig, ValidateRejectsEachBadField) {
  // The centralised validation behind Mapper, the explorer, and the CLI.
  EXPECT_NO_THROW(MapperConfig{}.validate());

  // Each rejection message must name the offending value ("got ..."): a
  // sweep rejects one design point out of hundreds, and without the value
  // the caller cannot tell which axis entry produced it.
  const auto rejects = [](auto&& mutate, const std::string& value) {
    MapperConfig config;
    mutate(config);
    try {
      config.validate();
      ADD_FAILURE() << "validate() accepted a config that should name "
                    << value;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(value), std::string::npos)
          << "message \"" << e.what() << "\" does not name " << value;
    }
    EXPECT_THROW(Mapper{config}, std::invalid_argument);
  };
  rejects([](MapperConfig& c) { c.link_bandwidth_mbps = -10.0; },
          "got " + std::to_string(-10.0));
  rejects([](MapperConfig& c) { c.link_bandwidth_mbps = 0.0; },
          "got " + std::to_string(0.0));
  rejects([](MapperConfig& c) { c.max_area_mm2 = -1.0; },
          "got " + std::to_string(-1.0));
  rejects([](MapperConfig& c) { c.max_design_aspect = 0.5; },
          "got " + std::to_string(0.5));
  rejects([](MapperConfig& c) { c.swap_passes = -1; }, "got -1");
  rejects([](MapperConfig& c) { c.reroute_passes = -2; }, "got -2");
  rejects([](MapperConfig& c) { c.split_chunks = 0; }, "got 0");
  rejects([](MapperConfig& c) { c.annealing_iterations = -3; }, "got -3");
  rejects([](MapperConfig& c) { c.annealing_t0 = -0.5; },
          "got " + std::to_string(-0.5));
  rejects([](MapperConfig& c) { c.annealing_cooling = 0.0; },
          "got " + std::to_string(0.0));
  rejects([](MapperConfig& c) { c.annealing_cooling = 1.5; },
          "got " + std::to_string(1.5));
  rejects([](MapperConfig& c) { c.annealing_restarts = 0; }, "got 0");
  rejects([](MapperConfig& c) { c.annealing_reheats = -4; }, "got -4");
  rejects([](MapperConfig& c) { c.num_threads = 0; }, "got 0");
  rejects([](MapperConfig& c) { c.floorplan.sizing_passes = -5; }, "got -5");
  rejects([](MapperConfig& c) { c.floorplan.spacing_mm = -0.25; },
          std::to_string(-0.25));
  rejects([](MapperConfig& c) { c.weights.delay = -1.0; },
          "delay=" + std::to_string(-1.0));
  rejects([](MapperConfig& c) { c.weights.ref_power_mw = 0.0; },
          std::to_string(0.0));
  rejects([](MapperConfig& c) { c.faults.infeasible_penalty = 0.5; },
          "got " + std::to_string(0.5));
  rejects([](MapperConfig& c) { c.faults.fault_free_weight = -2.0; },
          "got " + std::to_string(-2.0));
  rejects(
      [](MapperConfig& c) {
        c.faults.spec.kind = fault::FaultSpec::Kind::kRandom;
        c.faults.spec.num_scenarios = 0;
      },
      "got 0");
  rejects(
      [](MapperConfig& c) {
        c.faults.spec.kind = fault::FaultSpec::Kind::kRandom;
        c.faults.spec.faults_per_scenario = -1;
      },
      "got -1");
  rejects(
      [](MapperConfig& c) {
        c.faults.spec.kind = fault::FaultSpec::Kind::kExplicit;
        c.faults.spec.scenarios.push_back({{{0, 1}}, {}, -1.0});
      },
      "got " + std::to_string(-1.0));
  rejects(
      [](MapperConfig& c) {
        c.faults.spec.kind = fault::FaultSpec::Kind::kExplicit;
        c.faults.spec.scenarios.push_back({{{-1, 3}}, {}, 1.0});
      },
      "got -1-3");
  rejects(
      [](MapperConfig& c) {
        c.faults.spec.kind = fault::FaultSpec::Kind::kExplicit;
        c.faults.spec.scenarios.push_back({{}, {-7}, 1.0});
      },
      "got -7");
  rejects(
      [](MapperConfig& c) {
        c.faults.aggregation = fault::Aggregation::kWeighted;
        c.faults.fault_free_weight = 0.0;
        c.faults.spec.kind = fault::FaultSpec::Kind::kExplicit;
        c.faults.spec.scenarios.push_back({{{0, 1}}, {}, 0.0});
      },
      "got " + std::to_string(0.0));
}

TEST(Mapper, MappingIsInjective) {
  const auto app = pipeline4();
  const auto mesh = topo::make_mesh_for(4);
  Mapper mapper;
  const auto result = mapper.map(app, *mesh);
  std::set<int> slots(result.core_to_slot.begin(), result.core_to_slot.end());
  EXPECT_EQ(slots.size(), 4u);
  for (int slot : result.core_to_slot) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, mesh->num_slots());
  }
}

TEST(Mapper, InverseMappingConsistent) {
  const auto app = apps::dsp_filter();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  Mapper mapper;
  const auto result = mapper.map(app, *mesh);
  for (int core = 0; core < app.num_cores(); ++core) {
    EXPECT_EQ(result.slot_to_core[static_cast<std::size_t>(
                  result.core_to_slot[static_cast<std::size_t>(core)])],
              core);
  }
}

TEST(Mapper, EvaluateRejectsBadMappings) {
  const auto app = pipeline4();
  const auto mesh = topo::make_mesh_for(4);
  Mapper mapper;
  EXPECT_THROW(mapper.evaluate(app, *mesh, {0, 1}), std::invalid_argument);
  EXPECT_THROW(mapper.evaluate(app, *mesh, {0, 1, 2, 9}),
               std::invalid_argument);
  EXPECT_THROW(mapper.evaluate(app, *mesh, {0, 1, 2, 2}),
               std::invalid_argument);
}

TEST(Mapper, PipelineOnMeshMapsAdjacent) {
  // A pipeline fits a 2x2 mesh with every flow on neighbouring switches.
  const auto app = pipeline4();
  const auto mesh = topo::make_mesh_for(4);
  Mapper mapper;
  const auto result = mapper.map(app, *mesh);
  EXPECT_TRUE(result.eval.feasible());
  EXPECT_DOUBLE_EQ(result.eval.avg_switch_hops, 2.0);
  EXPECT_DOUBLE_EQ(result.eval.max_link_load_mbps, 300.0);
}

TEST(Mapper, ExactLoadsForKnownMapping) {
  const auto app = pipeline4();
  const auto mesh = topo::make_mesh_for(4);  // 2x2
  Mapper mapper;
  // a=slot0, b=slot1, c=slot3, d=slot2: all hops adjacent.
  const auto eval = mapper.evaluate(app, *mesh, {0, 1, 3, 2});
  EXPECT_TRUE(eval.bandwidth_feasible);
  EXPECT_DOUBLE_EQ(eval.avg_switch_hops, 2.0);
  EXPECT_DOUBLE_EQ(eval.max_link_load_mbps, 300.0);
}

TEST(Mapper, DetectsBandwidthInfeasibility) {
  MapperConfig config;
  config.link_bandwidth_mbps = 150.0;  // below the 300 MB/s flow
  Mapper mapper(config);
  const auto app = pipeline4();
  const auto mesh = topo::make_mesh_for(4);
  const auto result = mapper.map(app, *mesh);
  EXPECT_FALSE(result.eval.bandwidth_feasible);
  EXPECT_FALSE(result.eval.feasible());
  EXPECT_GT(result.eval.max_link_load_mbps, 150.0);
}

TEST(Mapper, DetectsAreaInfeasibility) {
  MapperConfig config;
  config.max_area_mm2 = 1.0;  // absurdly small chip
  Mapper mapper(config);
  const auto app = pipeline4();
  const auto mesh = topo::make_mesh_for(4);
  const auto result = mapper.map(app, *mesh);
  EXPECT_FALSE(result.eval.area_feasible);
}

TEST(Mapper, SwapSearchNeverWorsens) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());

  MapperConfig no_swaps;
  no_swaps.swap_passes = 0;
  MapperConfig with_swaps;
  with_swaps.swap_passes = 2;

  const auto initial = Mapper(no_swaps).map(app, *mesh);
  const auto improved = Mapper(with_swaps).map(app, *mesh);
  EXPECT_LE(improved.eval.cost, initial.eval.cost + 1e-12);
  EXPECT_GT(improved.evaluated_mappings, initial.evaluated_mappings);
}

TEST(Mapper, ObjectiveSelectsCostMetric) {
  const auto app = apps::dsp_filter();
  const auto mesh = topo::make_mesh_for(app.num_cores());

  MapperConfig delay;
  delay.objective = Objective::kMinDelay;
  MapperConfig area;
  area.objective = Objective::kMinArea;
  MapperConfig power;
  power.objective = Objective::kMinPower;

  const auto d = Mapper(delay).map(app, *mesh);
  EXPECT_DOUBLE_EQ(d.eval.cost, d.eval.avg_switch_hops);
  const auto a = Mapper(area).map(app, *mesh);
  EXPECT_DOUBLE_EQ(a.eval.cost, a.eval.design_area_mm2);
  const auto p = Mapper(power).map(app, *mesh);
  EXPECT_DOUBLE_EQ(p.eval.cost, p.eval.design_power_mw);
}

TEST(Mapper, PowerDecomposes) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  const auto result = Mapper().map(app, *mesh);
  EXPECT_NEAR(result.eval.design_power_mw,
              result.eval.dynamic_power_mw + result.eval.static_power_mw,
              1e-9);
  EXPECT_GT(result.eval.dynamic_power_mw, 0.0);
  EXPECT_GT(result.eval.static_power_mw, 0.0);
}

TEST(Mapper, RoutesAlignedWithCommodities) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  const auto result = Mapper().map(app, *mesh);
  const auto commodities = commodities_by_value(app);
  ASSERT_EQ(result.eval.routes.size(), commodities.size());
  for (std::size_t k = 0; k < commodities.size(); ++k) {
    const auto& routes = result.eval.routes[k];
    ASSERT_FALSE(routes.paths.empty());
    const int src_slot = result.core_to_slot[static_cast<std::size_t>(
        commodities[k].src_core)];
    EXPECT_EQ(routes.paths[0].path.nodes.front(),
              mesh->ingress_switch(src_slot));
  }
}

TEST(Mapper, CollectExploredGathersParetoRawPoints) {
  MapperConfig config;
  config.collect_explored = true;
  Mapper mapper(config);
  const auto app = apps::dsp_filter();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  const auto result = mapper.map(app, *mesh);
  EXPECT_EQ(static_cast<int>(result.explored_area_power.size()),
            result.evaluated_mappings);
  for (const auto& [area, power] : result.explored_area_power) {
    EXPECT_GT(area, 0.0);
    EXPECT_GT(power, 0.0);
  }
}

TEST(Mapper, LinkLoadsRespectCapacityWhenFeasible) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  const auto result = Mapper().map(app, *mesh);
  ASSERT_TRUE(result.eval.feasible());
  for (double load : result.eval.link_loads) {
    EXPECT_LE(load, 500.0 + 1e-6);
  }
}

TEST(BetterThan, OrdersByFeasibilityThenCost) {
  Evaluation feasible_cheap;
  feasible_cheap.bandwidth_feasible = true;
  feasible_cheap.area_feasible = true;
  feasible_cheap.cost = 1.0;
  Evaluation feasible_pricey = feasible_cheap;
  feasible_pricey.cost = 2.0;
  Evaluation infeasible;
  infeasible.bandwidth_feasible = false;
  infeasible.area_feasible = true;
  infeasible.cost = 0.5;
  infeasible.max_link_load_mbps = 900.0;

  EXPECT_TRUE(better_than(feasible_cheap, feasible_pricey));
  EXPECT_FALSE(better_than(feasible_pricey, feasible_cheap));
  EXPECT_TRUE(better_than(feasible_pricey, infeasible));

  Evaluation less_overloaded = infeasible;
  less_overloaded.max_link_load_mbps = 600.0;
  EXPECT_TRUE(better_than(less_overloaded, infeasible));
}

TEST(Mapper, GreedyInitialPlacesHottestCoreOnBestSwitch) {
  // With swaps disabled the initial mapping shows through: the core with
  // maximum traffic must sit on a maximum-degree switch.
  MapperConfig config;
  config.swap_passes = 0;
  Mapper mapper(config);
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());

  int hottest = 0;
  for (int c = 1; c < app.num_cores(); ++c) {
    if (app.core_traffic_mbps(c) > app.core_traffic_mbps(hottest)) {
      hottest = c;
    }
  }
  const auto result = mapper.map(app, *mesh);
  const int slot = result.core_to_slot[static_cast<std::size_t>(hottest)];
  int max_degree = 0;
  for (graph::NodeId sw = 0; sw < mesh->num_switches(); ++sw) {
    max_degree = std::max(max_degree, mesh->switch_graph().degree(sw));
  }
  EXPECT_EQ(mesh->switch_graph().degree(mesh->ingress_switch(slot)),
            max_degree);
}

TEST(Objective, ToStringNames) {
  EXPECT_STREQ(to_string(Objective::kMinDelay), "min-delay");
  EXPECT_STREQ(to_string(Objective::kMinArea), "min-area");
  EXPECT_STREQ(to_string(Objective::kMinPower), "min-power");
}

}  // namespace
}  // namespace sunmap::mapping
