// Tests for the mapper extensions: the weighted multi-objective, the
// floorplan-aware path-latency metric, and the simulated-annealing search.

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "mapping/mapper.h"
#include "topo/library.h"

namespace sunmap::mapping {
namespace {

TEST(WeightedObjective, CombinesNormalisedTerms) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig config;
  config.objective = Objective::kWeighted;
  config.weights.delay = 2.0;
  config.weights.area = 1.0;
  config.weights.power = 0.5;
  Mapper mapper(config);
  const auto result = mapper.map(app, *mesh);
  const auto& w = config.weights;
  const auto& e = result.eval;
  EXPECT_NEAR(e.cost,
              w.delay * e.avg_switch_hops / w.ref_hops +
                  w.area * e.design_area_mm2 / w.ref_area_mm2 +
                  w.power * e.design_power_mw / w.ref_power_mw,
              1e-9);
}

TEST(WeightedObjective, PureDelayWeightMatchesDelayRanking) {
  const auto app = apps::dsp_filter();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig weighted;
  weighted.objective = Objective::kWeighted;
  weighted.weights.delay = 1.0;
  weighted.weights.area = 0.0;
  weighted.weights.power = 0.0;
  weighted.link_bandwidth_mbps = 1000.0;
  MapperConfig delay;
  delay.objective = Objective::kMinDelay;
  delay.link_bandwidth_mbps = 1000.0;

  const auto weighted_result = Mapper(weighted).map(app, *mesh);
  const auto delay_result = Mapper(delay).map(app, *mesh);
  EXPECT_NEAR(weighted_result.eval.avg_switch_hops,
              delay_result.eval.avg_switch_hops, 1e-9);
}

TEST(PathLatency, PositiveAndConsistentWithHops) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  const auto result = Mapper().map(app, *mesh);
  // At 1 GHz, one cycle per switch alone puts the average latency above
  // hops x 1 ns; wire delay adds more.
  EXPECT_GT(result.eval.avg_path_latency_ns, result.eval.avg_switch_hops);
  EXPECT_LT(result.eval.avg_path_latency_ns,
            result.eval.avg_switch_hops + 10.0);
}

TEST(PathLatency, GrowsWithSlowerClock) {
  const auto app = apps::dsp_filter();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig fast;
  fast.link_bandwidth_mbps = 1000.0;
  MapperConfig slow = fast;
  slow.tech.clock_period_ps = 2000.0;  // 500 MHz
  const auto fast_result = Mapper(fast).map(app, *mesh);
  const auto slow_result = Mapper(slow).map(app, *mesh);
  EXPECT_GT(slow_result.eval.avg_path_latency_ns,
            fast_result.eval.avg_path_latency_ns);
}

TEST(Annealing, ProducesValidMapping) {
  const auto app = apps::vopd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig config;
  config.search = SearchKind::kAnnealing;
  config.annealing_iterations = 400;
  Mapper mapper(config);
  const auto result = mapper.map(app, *mesh);
  std::vector<bool> used(static_cast<std::size_t>(mesh->num_slots()), false);
  for (int slot : result.core_to_slot) {
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, mesh->num_slots());
    EXPECT_FALSE(used[static_cast<std::size_t>(slot)]);
    used[static_cast<std::size_t>(slot)] = true;
  }
  EXPECT_TRUE(result.eval.feasible());
}

TEST(Annealing, DeterministicForSameSeed) {
  const auto app = apps::dsp_filter();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig config;
  config.search = SearchKind::kAnnealing;
  config.annealing_iterations = 300;
  config.annealing_seed = 5;
  config.link_bandwidth_mbps = 1000.0;
  const auto a = Mapper(config).map(app, *mesh);
  const auto b = Mapper(config).map(app, *mesh);
  EXPECT_EQ(a.core_to_slot, b.core_to_slot);
  EXPECT_DOUBLE_EQ(a.eval.cost, b.eval.cost);
}

TEST(Annealing, NeverWorseThanGreedyInitial) {
  const auto app = apps::mwd();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig initial_only;
  initial_only.swap_passes = 0;
  MapperConfig annealing;
  annealing.search = SearchKind::kAnnealing;
  annealing.annealing_iterations = 600;
  const auto base = Mapper(initial_only).map(app, *mesh);
  const auto annealed = Mapper(annealing).map(app, *mesh);
  EXPECT_TRUE(!base.eval.feasible() ||
              annealed.eval.cost <= base.eval.cost + 1e-9);
}

TEST(Annealing, TracksExploredMappings) {
  const auto app = apps::pip();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig config;
  config.search = SearchKind::kAnnealing;
  config.annealing_iterations = 200;
  config.collect_explored = true;
  const auto result = Mapper(config).map(app, *mesh);
  EXPECT_EQ(static_cast<int>(result.explored_area_power.size()),
            result.evaluated_mappings);
  EXPECT_GT(result.evaluated_mappings, 100);
}

TEST(SearchStrategy, ToStringNames) {
  EXPECT_STREQ(to_string(SearchKind::kGreedySwaps), "greedy-swaps");
  EXPECT_STREQ(to_string(SearchKind::kAnnealing), "annealing");
  EXPECT_STREQ(to_string(Objective::kWeighted), "weighted");
}

}  // namespace
}  // namespace sunmap::mapping
