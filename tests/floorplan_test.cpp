#include <gtest/gtest.h>

#include "fplan/floorplan.h"

namespace sunmap::fplan {
namespace {

TEST(BlockShape, SoftBlockDefaults) {
  const auto shape = BlockShape::soft_block(4.0);
  EXPECT_TRUE(shape.soft);
  EXPECT_DOUBLE_EQ(shape.area_mm2, 4.0);
  EXPECT_LT(shape.min_aspect, 1.0);
  EXPECT_GT(shape.max_aspect, 1.0);
}

TEST(BlockShape, HardBlockKeepsDimensions) {
  const auto shape = BlockShape::hard_block(2.0, 3.0);
  EXPECT_FALSE(shape.soft);
  EXPECT_DOUBLE_EQ(shape.area_mm2, 6.0);
  EXPECT_DOUBLE_EQ(shape.width_mm, 2.0);
  EXPECT_DOUBLE_EQ(shape.height_mm, 3.0);
}

Floorplan two_blocks() {
  std::vector<PlacedBlock> blocks;
  blocks.push_back(PlacedBlock{PlacedBlock::Kind::kCore, 0, 0, 0, 2, 2});
  blocks.push_back(PlacedBlock{PlacedBlock::Kind::kSwitch, 0, 3, 0, 1, 1});
  return Floorplan(std::move(blocks), 4.0, 2.0);
}

TEST(Floorplan, BasicAccessors) {
  const auto fp = two_blocks();
  EXPECT_DOUBLE_EQ(fp.width_mm(), 4.0);
  EXPECT_DOUBLE_EQ(fp.height_mm(), 2.0);
  EXPECT_DOUBLE_EQ(fp.area_mm2(), 8.0);
  EXPECT_DOUBLE_EQ(fp.aspect(), 2.0);
}

TEST(Floorplan, FindLocatesBlocks) {
  const auto fp = two_blocks();
  const auto core = fp.find(PlacedBlock::Kind::kCore, 0);
  ASSERT_TRUE(core.has_value());
  EXPECT_DOUBLE_EQ(core->cx(), 1.0);
  EXPECT_DOUBLE_EQ(core->cy(), 1.0);
  EXPECT_FALSE(fp.find(PlacedBlock::Kind::kCore, 7).has_value());
}

TEST(Floorplan, CenterDistanceIsManhattan) {
  const auto fp = two_blocks();
  // Core centre (1,1), switch centre (3.5, 0.5): |2.5| + |0.5| = 3.
  EXPECT_DOUBLE_EQ(fp.center_distance_mm(PlacedBlock::Kind::kCore, 0,
                                         PlacedBlock::Kind::kSwitch, 0),
                   3.0);
  EXPECT_THROW(fp.center_distance_mm(PlacedBlock::Kind::kCore, 0,
                                     PlacedBlock::Kind::kSwitch, 9),
               std::out_of_range);
}

TEST(Floorplan, DetectsOverlap) {
  std::vector<PlacedBlock> blocks;
  blocks.push_back(PlacedBlock{PlacedBlock::Kind::kCore, 0, 0, 0, 2, 2});
  blocks.push_back(PlacedBlock{PlacedBlock::Kind::kCore, 1, 1, 1, 2, 2});
  const Floorplan fp(std::move(blocks), 4.0, 4.0);
  EXPECT_FALSE(fp.overlap_free());
}

TEST(Floorplan, TouchingBlocksDoNotOverlap) {
  std::vector<PlacedBlock> blocks;
  blocks.push_back(PlacedBlock{PlacedBlock::Kind::kCore, 0, 0, 0, 2, 2});
  blocks.push_back(PlacedBlock{PlacedBlock::Kind::kCore, 1, 2, 0, 2, 2});
  const Floorplan fp(std::move(blocks), 4.0, 2.0);
  EXPECT_TRUE(fp.overlap_free());
}

TEST(Floorplan, WithinBoundsChecks) {
  const auto fp = two_blocks();
  EXPECT_TRUE(fp.within_bounds());
  std::vector<PlacedBlock> blocks;
  blocks.push_back(PlacedBlock{PlacedBlock::Kind::kCore, 0, 3, 0, 2, 2});
  const Floorplan outside(std::move(blocks), 4.0, 2.0);
  EXPECT_FALSE(outside.within_bounds());
}

TEST(Floorplan, EmptyAspectIsOne) {
  const Floorplan fp;
  EXPECT_DOUBLE_EQ(fp.aspect(), 1.0);
  EXPECT_TRUE(fp.overlap_free());
}

}  // namespace
}  // namespace sunmap::fplan
