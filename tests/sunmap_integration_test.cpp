// End-to-end tests of the three-phase SUNMAP flow against the paper's
// headline experimental claims.

#include <gtest/gtest.h>

#include <filesystem>

#include "apps/apps.h"
#include "core/sunmap.h"

namespace sunmap::core {
namespace {

TEST(SunmapFlow, VopdEndToEndSelectsButterflyAndGenerates) {
  SunmapConfig config;
  config.mapper.routing = route::RoutingKind::kMinPath;
  config.mapper.objective = mapping::Objective::kMinDelay;
  Sunmap tool(config);
  const auto result = tool.run(apps::vopd());

  ASSERT_NE(result.best(), nullptr);
  EXPECT_EQ(result.best()->topology->kind(), topo::TopologyKind::kButterfly);
  ASSERT_TRUE(result.netlist.has_value());
  EXPECT_EQ(result.netlist->switches().size(), 8u);  // 4-ary 2-fly
  ASSERT_TRUE(result.generated.has_value());
  EXPECT_FALSE(result.generated->header.empty());
  EXPECT_FALSE(result.generated->top.empty());
}

TEST(SunmapFlow, VopdButterflyBeatsMeshOnAllThreeAxes) {
  // Fig 6: the butterfly has the least hop delay, design area is among the
  // smallest, and power is the lowest of the library.
  Sunmap tool;
  const auto result = tool.run(apps::vopd());
  const select::TopologyCandidate* mesh = nullptr;
  const select::TopologyCandidate* fly = nullptr;
  const select::TopologyCandidate* torus = nullptr;
  for (const auto& candidate : result.report.candidates) {
    if (candidate.topology->kind() == topo::TopologyKind::kMesh) {
      mesh = &candidate;
    }
    if (candidate.topology->kind() == topo::TopologyKind::kButterfly) {
      fly = &candidate;
    }
    if (candidate.topology->kind() == topo::TopologyKind::kTorus) {
      torus = &candidate;
    }
  }
  ASSERT_NE(mesh, nullptr);
  ASSERT_NE(fly, nullptr);
  ASSERT_NE(torus, nullptr);
  EXPECT_LT(fly->result.eval.avg_switch_hops,
            mesh->result.eval.avg_switch_hops);
  EXPECT_LT(fly->result.eval.design_power_mw,
            mesh->result.eval.design_power_mw);
  // Fig 3(d): the torus buys ~10% lower delay with >20% more power.
  EXPECT_LE(torus->result.eval.avg_switch_hops,
            mesh->result.eval.avg_switch_hops);
  EXPECT_GT(torus->result.eval.design_power_mw,
            mesh->result.eval.design_power_mw);
}

TEST(SunmapFlow, Mpeg4RequiresSplitTrafficRouting) {
  // §6.1: minimum-path routing violates the 500 MB/s constraint everywhere;
  // split-traffic routing makes everything but the butterfly feasible.
  SunmapConfig single_path;
  single_path.mapper.routing = route::RoutingKind::kMinPath;
  const auto without_split = Sunmap(single_path).run(apps::mpeg4());
  EXPECT_EQ(without_split.best(), nullptr);
  EXPECT_FALSE(without_split.netlist.has_value());

  SunmapConfig split;
  split.mapper.routing = route::RoutingKind::kSplitAll;
  const auto with_split = Sunmap(split).run(apps::mpeg4());
  ASSERT_NE(with_split.best(), nullptr);
  EXPECT_NE(with_split.best()->topology->kind(),
            topo::TopologyKind::kButterfly);
}

TEST(SunmapFlow, Mpeg4MeshWinsAreaUnderSplitRouting) {
  // Fig 7(b): "the mesh network has large savings in area and power which
  // overshadow the slightly higher communication delay".
  SunmapConfig config;
  config.mapper.routing = route::RoutingKind::kSplitAll;
  config.mapper.objective = mapping::Objective::kMinArea;
  const auto result = Sunmap(config).run(apps::mpeg4());
  ASSERT_NE(result.best(), nullptr);
  EXPECT_EQ(result.best()->topology->kind(), topo::TopologyKind::kMesh);
}

/// The DSP filter's FFT/IFFT flows are 600 MB/s, so its experiments need
/// 1 GB/s links (the 500 MB/s budget of §6.1 applies to the video apps).
SunmapConfig dsp_config() {
  SunmapConfig config;
  config.mapper.link_bandwidth_mbps = 1000.0;
  return config;
}

TEST(SunmapFlow, DspSelectsButterflyLikeFig10) {
  SunmapConfig config = dsp_config();
  config.mapper.routing = route::RoutingKind::kMinPath;
  config.mapper.objective = mapping::Objective::kMinDelay;
  const auto result = Sunmap(config).run(apps::dsp_filter());
  ASSERT_NE(result.best(), nullptr);
  EXPECT_EQ(result.best()->topology->kind(), topo::TopologyKind::kButterfly);
  EXPECT_DOUBLE_EQ(result.best()->result.eval.avg_switch_hops, 2.0);
}

TEST(SunmapFlow, ReportTableListsEveryTopology) {
  Sunmap tool(dsp_config());
  const auto result = tool.run(apps::dsp_filter());
  const auto table = Sunmap::report_table(result.report);
  for (const auto& candidate : result.report.candidates) {
    EXPECT_NE(table.find(candidate.topology->name()), std::string::npos);
  }
  EXPECT_NE(table.find("*"), std::string::npos);  // winner marked
}

TEST(SunmapFlow, OwnedLibraryKeepsReportValid) {
  // The report holds raw topology pointers; the result must own them when
  // SUNMAP built the library itself.
  Sunmap tool;
  const auto result = tool.run(apps::dsp_filter());
  EXPECT_EQ(result.owned_library.size(), result.report.candidates.size());
  for (const auto& candidate : result.report.candidates) {
    EXPECT_FALSE(candidate.topology->name().empty());
  }
}

TEST(SunmapFlow, CallerSuppliedLibraryIsRespected) {
  std::vector<std::unique_ptr<topo::Topology>> library;
  library.push_back(topo::make_mesh_for(6));
  library.push_back(std::make_unique<topo::Star>(6));
  Sunmap tool(dsp_config());
  const auto result = tool.run(apps::dsp_filter(), library);
  EXPECT_EQ(result.report.candidates.size(), 2u);
  EXPECT_TRUE(result.owned_library.empty());
  ASSERT_NE(result.best(), nullptr);
}

TEST(SunmapFlow, WritesGeneratedFilesWhenConfigured) {
  const auto dir =
      std::filesystem::temp_directory_path() / "sunmap_integration_out";
  std::filesystem::create_directories(dir);
  SunmapConfig config = dsp_config();
  config.output_directory = dir.string();
  const auto result = Sunmap(config).run(apps::dsp_filter());
  ASSERT_EQ(result.written_files.size(), 2u);
  for (const auto& file : result.written_files) {
    EXPECT_TRUE(std::filesystem::exists(file)) << file;
  }
  std::filesystem::remove_all(dir);
}

TEST(SunmapFlow, ExtensionTopologiesParticipate) {
  SunmapConfig config;
  config.include_extension_topologies = true;
  const auto result = Sunmap(config).run(apps::dsp_filter());
  bool saw_star = false;
  for (const auto& candidate : result.report.candidates) {
    if (candidate.topology->kind() == topo::TopologyKind::kStar) {
      saw_star = true;
    }
  }
  EXPECT_TRUE(saw_star);
}

TEST(SunmapFlow, PowerObjectiveChangesCosts) {
  SunmapConfig delay;
  delay.mapper.objective = mapping::Objective::kMinDelay;
  SunmapConfig power;
  power.mapper.objective = mapping::Objective::kMinPower;
  const auto by_delay = Sunmap(delay).run(apps::vopd());
  const auto by_power = Sunmap(power).run(apps::vopd());
  ASSERT_NE(by_delay.best(), nullptr);
  ASSERT_NE(by_power.best(), nullptr);
  EXPECT_DOUBLE_EQ(by_power.best()->result.eval.cost,
                   by_power.best()->result.eval.design_power_mw);
}

}  // namespace
}  // namespace sunmap::core
