#include <gtest/gtest.h>

#include "topo/library.h"

namespace sunmap::topo {
namespace {

TEST(Library, MeshFor12IsThreeByFour) {
  const auto mesh = make_mesh_for(12);
  EXPECT_EQ(mesh->kind(), TopologyKind::kMesh);
  EXPECT_EQ(mesh->num_slots(), 12);
  EXPECT_EQ(mesh->num_switches(), 12);
}

TEST(Library, MeshFor16IsSquare) {
  const auto mesh = make_mesh_for(16);
  EXPECT_EQ(mesh->num_slots(), 16);
}

TEST(Library, MeshAvoidsDegenerateStrip) {
  const auto mesh = make_mesh_for(3);
  EXPECT_GE(mesh->num_slots(), 3);
  const auto* as_mesh = dynamic_cast<const Mesh*>(mesh.get());
  ASSERT_NE(as_mesh, nullptr);
  EXPECT_GE(as_mesh->rows(), 2);
}

TEST(Library, HypercubeRoundsUpToPowerOfTwo) {
  EXPECT_EQ(make_hypercube_for(12)->num_slots(), 16);
  EXPECT_EQ(make_hypercube_for(16)->num_slots(), 16);
  EXPECT_EQ(make_hypercube_for(17)->num_slots(), 32);
  EXPECT_EQ(make_hypercube_for(2)->num_slots(), 2);
}

TEST(Library, ClosCoversCoreCount) {
  for (int cores : {4, 6, 8, 12, 16, 20, 32}) {
    const auto clos = make_clos_for(cores);
    EXPECT_GE(clos->num_slots(), cores) << cores;
  }
}

TEST(Library, ButterflyForVopdIsFourAryTwoFly) {
  // §6.1: "the butterfly topology (4-ary 2-fly) has the least communication
  // delay" for the 12-core VOPD.
  const auto fly = make_butterfly_for(12);
  const auto* as_fly = dynamic_cast<const Butterfly*>(fly.get());
  ASSERT_NE(as_fly, nullptr);
  EXPECT_EQ(as_fly->radix(), 4);
  EXPECT_EQ(as_fly->stages(), 2);
}

TEST(Library, ButterflyPrefersFewestStages) {
  const auto owned = make_butterfly_for(6);
  const auto* fly = dynamic_cast<const Butterfly*>(owned.get());
  ASSERT_NE(fly, nullptr);
  EXPECT_EQ(fly->stages(), 2);
  EXPECT_EQ(fly->radix(), 3);
}

TEST(Library, ButterflyGrowsStagesBeyondMaxRadix) {
  const auto owned = make_butterfly_for(100, 8);
  const auto* fly = dynamic_cast<const Butterfly*>(owned.get());
  ASSERT_NE(fly, nullptr);
  EXPECT_EQ(fly->stages(), 3);
  EXPECT_GE(fly->num_slots(), 100);
}

TEST(Library, StandardLibraryHasFiveTopologies) {
  const auto library = standard_library(12);
  ASSERT_EQ(library.size(), 5u);
  EXPECT_EQ(library[0]->kind(), TopologyKind::kMesh);
  EXPECT_EQ(library[1]->kind(), TopologyKind::kTorus);
  EXPECT_EQ(library[2]->kind(), TopologyKind::kHypercube);
  EXPECT_EQ(library[3]->kind(), TopologyKind::kClos);
  EXPECT_EQ(library[4]->kind(), TopologyKind::kButterfly);
  for (const auto& topology : library) {
    EXPECT_GE(topology->num_slots(), 12) << topology->name();
  }
}

TEST(Library, ExtensionsIncludedWhenRequested) {
  const auto with_octagon = standard_library(8, /*include_extensions=*/true);
  EXPECT_EQ(with_octagon.size(), 7u);  // + octagon + star
  const auto without_octagon =
      standard_library(12, /*include_extensions=*/true);
  EXPECT_EQ(without_octagon.size(), 6u);  // octagon only fits 8 cores
}

TEST(Library, RejectsTinyApplications) {
  EXPECT_THROW(make_mesh_for(1), std::invalid_argument);
}

TEST(Library, ToStringNamesAllKinds) {
  EXPECT_STREQ(to_string(TopologyKind::kMesh), "mesh");
  EXPECT_STREQ(to_string(TopologyKind::kTorus), "torus");
  EXPECT_STREQ(to_string(TopologyKind::kHypercube), "hypercube");
  EXPECT_STREQ(to_string(TopologyKind::kClos), "clos");
  EXPECT_STREQ(to_string(TopologyKind::kButterfly), "butterfly");
  EXPECT_STREQ(to_string(TopologyKind::kOctagon), "octagon");
  EXPECT_STREQ(to_string(TopologyKind::kStar), "star");
}

}  // namespace
}  // namespace sunmap::topo
