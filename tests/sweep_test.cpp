#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "io/exploration_io.h"
#include "mapping/eval_context.h"
#include "select/explorer.h"
#include "sweep/coordinator.h"
#include "sweep/daemon.h"
#include "sweep/shard.h"
#include "sweep/wire.h"
#include "topo/library.h"

namespace sunmap::sweep {
namespace {

select::ExplorationRequest figure_request(
    const mapping::CoreGraph& app,
    const std::vector<std::unique_ptr<topo::Topology>>& library) {
  select::ExplorationRequest request;
  request.app = &app;
  request.library = &library;
  request.objectives = {mapping::Objective::kMinDelay,
                        mapping::Objective::kMinArea,
                        mapping::Objective::kMinPower};
  request.routings.assign(std::begin(route::kAllRoutingKinds),
                          std::end(route::kAllRoutingKinds));
  return request;
}

/// Bit-identity over everything a merged report carries: per-point scalars
/// and mappings in grid order, best indices, winners, and the Pareto
/// frontier. Exact double comparison throughout — the invariant is
/// bit-identical, not approximately equal.
void expect_merged_identical(const select::ExplorationReport& reference,
                             const select::ExplorationReport& merged,
                             const std::string& label) {
  ASSERT_EQ(reference.results.size(), merged.results.size()) << label;
  for (std::size_t p = 0; p < reference.results.size(); ++p) {
    const auto& a = reference.results[p];
    const auto& b = merged.results[p];
    EXPECT_EQ(a.selection.best_index, b.selection.best_index)
        << label << " point " << p;
    ASSERT_EQ(a.selection.candidates.size(), b.selection.candidates.size());
    for (std::size_t t = 0; t < a.selection.candidates.size(); ++t) {
      const auto& ca = a.selection.candidates[t];
      const auto& cb = b.selection.candidates[t];
      const std::string cell =
          label + " point " + std::to_string(p) + " topology " +
          std::to_string(t);
      EXPECT_EQ(ca.topology->name(), cb.topology->name()) << cell;
      EXPECT_EQ(ca.result.core_to_slot, cb.result.core_to_slot) << cell;
      EXPECT_EQ(ca.result.evaluated_mappings, cb.result.evaluated_mappings)
          << cell;
      EXPECT_EQ(ca.result.pruned_mappings, cb.result.pruned_mappings)
          << cell;
      const auto& ea = ca.result.eval;
      const auto& eb = cb.result.eval;
      EXPECT_EQ(ea.bandwidth_feasible, eb.bandwidth_feasible) << cell;
      EXPECT_EQ(ea.area_feasible, eb.area_feasible) << cell;
      EXPECT_EQ(ea.max_link_load_mbps, eb.max_link_load_mbps) << cell;
      EXPECT_EQ(ea.avg_switch_hops, eb.avg_switch_hops) << cell;
      EXPECT_EQ(ea.avg_path_latency_ns, eb.avg_path_latency_ns) << cell;
      EXPECT_EQ(ea.design_area_mm2, eb.design_area_mm2) << cell;
      EXPECT_EQ(ea.design_power_mw, eb.design_power_mw) << cell;
      EXPECT_EQ(ea.dynamic_power_mw, eb.dynamic_power_mw) << cell;
      EXPECT_EQ(ea.static_power_mw, eb.static_power_mw) << cell;
      EXPECT_EQ(ea.switch_area_mm2, eb.switch_area_mm2) << cell;
      EXPECT_EQ(ea.cost, eb.cost) << cell;
      EXPECT_EQ(ea.worst_fault_cost, eb.worst_fault_cost) << cell;
      EXPECT_EQ(ea.infeasible_fault_scenarios,
                eb.infeasible_fault_scenarios)
          << cell;
      EXPECT_EQ(ea.fault_outcomes.size(), eb.fault_outcomes.size()) << cell;
    }
  }
  ASSERT_EQ(reference.winners.size(), merged.winners.size()) << label;
  for (std::size_t w = 0; w < reference.winners.size(); ++w) {
    EXPECT_EQ(reference.winners[w].objective, merged.winners[w].objective);
    EXPECT_EQ(reference.winners[w].weights_index,
              merged.winners[w].weights_index);
    EXPECT_EQ(reference.winners[w].point_index, merged.winners[w].point_index)
        << label << " winner " << w;
    EXPECT_EQ(reference.winners[w].topology_index,
              merged.winners[w].topology_index)
        << label << " winner " << w;
  }
  ASSERT_EQ(reference.pareto.size(), merged.pareto.size()) << label;
  for (std::size_t i = 0; i < reference.pareto.size(); ++i) {
    EXPECT_EQ(reference.pareto[i].area_mm2, merged.pareto[i].area_mm2);
    EXPECT_EQ(reference.pareto[i].power_mw, merged.pareto[i].power_mw);
  }
}

TEST(ShardPlanner, PartitionsContiguouslyAndBalanced) {
  const auto shards = plan_shards(10, 3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].begin, 0u);
  EXPECT_EQ(shards[0].end, 4u);
  EXPECT_EQ(shards[1].begin, 4u);
  EXPECT_EQ(shards[1].end, 7u);
  EXPECT_EQ(shards[2].begin, 7u);
  EXPECT_EQ(shards[2].end, 10u);
  for (const auto& shard : shards) {
    EXPECT_GE(shard.size(), 3u);
    EXPECT_LE(shard.size(), 4u);
  }
}

TEST(ShardPlanner, ClampsToGridAndRejectsBadCounts) {
  EXPECT_EQ(plan_shards(2, 7).size(), 2u);  // Never an empty shard.
  EXPECT_TRUE(plan_shards(0, 3).empty());
  EXPECT_THROW(plan_shards(5, 0), std::invalid_argument);
  const auto one = plan_shards(5, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].begin, 0u);
  EXPECT_EQ(one[0].end, 5u);
}

TEST(Wire, PointRecordRoundTripsExactly) {
  PointRecord record;
  record.point_index = 42;
  record.shard_index = 3;
  record.worker_id = 1;
  CandidateScalars scalars;
  scalars.bandwidth_feasible = true;
  scalars.cost = 4.9445597092556772;  // A real probe cost, full precision.
  scalars.avg_switch_hops = 1.0 / 3.0;
  scalars.design_area_mm2 = 73.04;
  scalars.evaluated_mappings = 4033;
  scalars.pruned_mappings = 3981;
  scalars.core_to_slot = {3, 1, 0, 2, -1};
  record.candidates = {scalars, CandidateScalars{}};

  const auto bytes = encode_point_record(record);
  const auto decoded = decode_point_record(bytes.data(), bytes.size());
  EXPECT_EQ(decoded.point_index, 42u);
  EXPECT_EQ(decoded.shard_index, 3);
  EXPECT_EQ(decoded.worker_id, 1);
  ASSERT_EQ(decoded.candidates.size(), 2u);
  EXPECT_EQ(decoded.candidates[0].cost, scalars.cost);
  EXPECT_EQ(decoded.candidates[0].avg_switch_hops,
            scalars.avg_switch_hops);
  EXPECT_EQ(decoded.candidates[0].core_to_slot, scalars.core_to_slot);
  EXPECT_EQ(decoded.candidates[0].evaluated_mappings, 4033);
}

TEST(Wire, DecodeRejectsTruncatedPayload) {
  PointRecord record;
  record.candidates.resize(1);
  auto bytes = encode_point_record(record);
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(decode_point_record(bytes.data(), bytes.size()),
               std::runtime_error);
}

TEST(Sweep, MergedReportBitIdenticalAtEveryShardCount) {
  // Two figure workloads (the paper's VOPD and MWD graphs), shard counts
  // {1, 2, 3, 7} — the subsystem's core invariant from ISSUE/ROADMAP.
  struct Workload {
    const char* name;
    mapping::CoreGraph app;
  };
  Workload workloads[] = {{"vopd", apps::vopd()}, {"mwd", apps::mwd()}};
  for (auto& workload : workloads) {
    const auto library = topo::standard_library(workload.app.num_cores());
    const auto request = figure_request(workload.app, library);
    select::DesignSpaceExplorer explorer;
    const auto reference = explorer.explore(request);
    for (const int shards : {1, 2, 3, 7}) {
      SweepOptions options;
      options.num_workers = 2;
      options.num_shards = shards;
      const auto result = run_sweep(request, options);
      EXPECT_EQ(result.stats.points_evaluated, reference.results.size());
      EXPECT_EQ(result.stats.worker_crashes, 0);
      expect_merged_identical(
          reference, result.report,
          std::string(workload.name) + " shards=" + std::to_string(shards));
    }
  }
}

TEST(Sweep, ProvenanceColumnsRecordShardAndWorker) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  const auto request = figure_request(app, library);
  SweepOptions options;
  options.num_workers = 2;
  options.num_shards = 3;
  const auto result = run_sweep(request, options);
  for (const auto& point : result.report.results) {
    EXPECT_GE(point.shard_index, 0);
    EXPECT_LT(point.shard_index, 3);
    EXPECT_GE(point.worker_id, 0);
  }
  const auto csv = io::exploration_report_csv(result.report);
  EXPECT_NE(csv.find("point,shard,worker,routing"), std::string::npos);
  EXPECT_NE(csv.find("0,0,"), std::string::npos);
  const auto json = io::exploration_report_json(result.report);
  EXPECT_NE(json.find("\"shard\": 0"), std::string::npos);
  EXPECT_EQ(json.find("\"shard\": null"), std::string::npos);
}

TEST(Sweep, WorkerCrashRequeuesRemainderOnce) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  const auto request = figure_request(app, library);
  select::DesignSpaceExplorer explorer;
  const auto reference = explorer.explore(request);

  SweepOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  options.hooks.crash_at_point = 2;  // Mid-shard, not a boundary.
  const auto result = run_sweep(request, options);
  EXPECT_EQ(result.stats.worker_crashes, 1);
  EXPECT_EQ(result.stats.shards_requeued, 1);
  EXPECT_GT(result.stats.workers_spawned, 2);
  expect_merged_identical(reference, result.report, "after crash recovery");
}

TEST(Sweep, PersistentCrashFailsWithNamedError) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  const auto request = figure_request(app, library);
  SweepOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  options.hooks.crash_at_point = 2;
  options.hooks.crash_persistent = true;
  try {
    (void)run_sweep(request, options);
    FAIL() << "expected a named double-death error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("died twice"), std::string::npos) << what;
    EXPECT_NE(what.find("shard"), std::string::npos) << what;
  }
}

TEST(Sweep, RequestStopInterruptsAndCheckpointResumes) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  auto request = figure_request(app, library);
  select::DesignSpaceExplorer explorer;
  const auto reference = explorer.explore(request);
  const std::size_t total = reference.results.size();

  const std::string path =
      testing::TempDir() + "sweep_stop_resume.journal";
  std::remove(path.c_str());

  // Interrupt after the 3rd merged point, through the same stop flag the
  // CLI's SIGINT handler raises.
  reset_stop();
  std::size_t streamed = 0;
  request.on_point = [&](const select::PointResult&) {
    if (++streamed == 3) request_stop();
  };
  SweepOptions options;
  options.num_workers = 2;
  options.checkpoint_path = path;
  const auto partial = run_sweep(request, options);
  reset_stop();
  EXPECT_TRUE(partial.stats.interrupted);
  EXPECT_LT(partial.stats.points_evaluated, total);

  request.on_point = nullptr;
  options.resume = true;
  const auto resumed = run_sweep(request, options);
  EXPECT_FALSE(resumed.stats.interrupted);
  EXPECT_GE(resumed.stats.points_from_checkpoint, 3u);
  // Completed points are never re-evaluated: this run only paid for the
  // remainder.
  EXPECT_EQ(resumed.stats.points_evaluated,
            total - resumed.stats.points_from_checkpoint);
  expect_merged_identical(reference, resumed.report, "after stop+resume");
  std::remove(path.c_str());
}

TEST(Sweep, ExplorerContextPoolSkipsRebuilds) {
  const auto app = apps::vopd();
  const auto library = topo::standard_library(app.num_cores());
  auto request = figure_request(app, library);
  select::DesignSpaceExplorer explorer;
  const auto reference = explorer.explore(request);

  select::ExplorerContextPool pool;
  request.context_pool = &pool;
  const auto first = explorer.explore(request);
  const auto built_after_first = mapping::EvalContext::contexts_built();
  const auto second = explorer.explore(request);
  EXPECT_EQ(mapping::EvalContext::contexts_built(), built_after_first)
      << "pooled re-run must rebind, not rebuild";
  expect_merged_identical(reference, first, "pooled first run");
  expect_merged_identical(reference, second, "pooled second run");
}

TEST(Sweep, DaemonServesRepeatRequestsWithLiveContexts) {
  const std::string socket_path = testing::TempDir() + "sweep_daemon.sock";
  DaemonOptions options;
  options.socket_path = socket_path;
  options.max_requests = 3;
  reset_stop();
  DaemonStats stats;
  std::thread server([&]() { stats = serve(options); });

  const std::string request_text =
      "app=vopd\nobjectives=delay,area\nroutings=DO,MP\n";
  std::string first;
  for (int attempt = 0; attempt < 100; ++attempt) {
    try {
      first = call_daemon(socket_path, request_text);
      break;
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ASSERT_FALSE(first.empty()) << "daemon never came up";
  const auto built_after_first = mapping::EvalContext::contexts_built();
  const std::string second = call_daemon(socket_path, request_text);
  // Same socket, second request: contexts were rebound, not rebuilt.
  EXPECT_EQ(mapping::EvalContext::contexts_built(), built_after_first);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"winners\""), std::string::npos);

  EXPECT_THROW((void)call_daemon(socket_path, "app=nonesuch\n"),
               std::runtime_error);
  server.join();
  EXPECT_EQ(stats.requests_served, 2);
  EXPECT_EQ(stats.requests_failed, 1);
}

TEST(Sweep, ThreadedDaemonServesConcurrentClients) {
  const std::string socket_path = testing::TempDir() + "sweep_daemon_mt.sock";
  DaemonOptions options;
  options.socket_path = socket_path;
  options.max_requests = 4;
  options.accept_threads = 2;
  reset_stop();
  DaemonStats stats;
  std::thread server([&]() { stats = serve(options); });

  const std::string vopd_request = "app=vopd\nobjectives=delay\nroutings=DO\n";
  const std::string pip_request = "app=pip\nobjectives=power\nroutings=MP\n";
  std::string vopd_reference;
  for (int attempt = 0; attempt < 100; ++attempt) {
    try {
      vopd_reference = call_daemon(socket_path, vopd_request);
      break;
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ASSERT_FALSE(vopd_reference.empty()) << "daemon never came up";
  const std::string pip_reference = call_daemon(socket_path, pip_request);

  // Two clients in flight at once, addressing different (app, library)
  // pools, so the accept workers evaluate them concurrently. Replies must
  // match the sequential references bit for bit, and the ticketed budget
  // must close the daemon after exactly max_requests connections.
  std::string vopd_reply;
  std::string pip_reply;
  std::thread first_client(
      [&]() { vopd_reply = call_daemon(socket_path, vopd_request); });
  std::thread second_client(
      [&]() { pip_reply = call_daemon(socket_path, pip_request); });
  first_client.join();
  second_client.join();
  server.join();
  EXPECT_EQ(vopd_reply, vopd_reference);
  EXPECT_EQ(pip_reply, pip_reference);
  EXPECT_EQ(stats.requests_served, 4);
  EXPECT_EQ(stats.requests_failed, 0);
}

}  // namespace
}  // namespace sunmap::sweep
