#include <gtest/gtest.h>

#include "mapping/core_graph.h"

namespace sunmap::mapping {
namespace {

CoreGraph small() {
  CoreGraph app("small");
  app.add_core("a", 2.0);
  app.add_core("b", 3.0);
  app.add_core("c", fplan::BlockShape::hard_block(1.0, 2.0));
  app.add_flow(0, 1, 100.0);
  app.add_flow(1, 2, 50.0);
  app.add_flow(2, 0, 200.0);
  return app;
}

TEST(CoreGraph, BasicAccessors) {
  const auto app = small();
  EXPECT_EQ(app.name(), "small");
  EXPECT_EQ(app.num_cores(), 3);
  EXPECT_EQ(app.num_flows(), 3);
  EXPECT_EQ(app.core(0).name, "a");
  EXPECT_DOUBLE_EQ(app.total_bandwidth_mbps(), 350.0);
  EXPECT_DOUBLE_EQ(app.total_core_area_mm2(), 7.0);
}

TEST(CoreGraph, CoreIndexByName) {
  const auto app = small();
  EXPECT_EQ(app.core_index("b"), 1);
  EXPECT_THROW(app.core_index("nope"), std::out_of_range);
}

TEST(CoreGraph, DuplicateNameThrows) {
  CoreGraph app("dup");
  app.add_core("x", 1.0);
  EXPECT_THROW(app.add_core("x", 2.0), std::invalid_argument);
}

TEST(CoreGraph, FlowValidation) {
  CoreGraph app("flows");
  app.add_core("a", 1.0);
  app.add_core("b", 1.0);
  app.add_flow(0, 1, 10.0);
  EXPECT_THROW(app.add_flow(0, 1, 5.0), std::invalid_argument);  // duplicate
  EXPECT_THROW(app.add_flow(1, 0, 0.0), std::invalid_argument);  // zero bw
  EXPECT_THROW(app.add_flow(0, 0, 5.0), std::invalid_argument);  // self loop
  app.add_flow(1, 0, 5.0);  // reverse direction is a distinct flow
  EXPECT_EQ(app.num_flows(), 2);
}

TEST(CoreGraph, CoreTrafficSumsBothDirections) {
  const auto app = small();
  // Core 0: out 100, in 200.
  EXPECT_DOUBLE_EQ(app.core_traffic_mbps(0), 300.0);
  EXPECT_DOUBLE_EQ(app.core_traffic_mbps(1), 150.0);
}

TEST(Commodities, SortedByDecreasingValue) {
  const auto app = small();
  const auto commodities = commodities_by_value(app);
  ASSERT_EQ(commodities.size(), 3u);
  EXPECT_DOUBLE_EQ(commodities[0].value_mbps, 200.0);
  EXPECT_DOUBLE_EQ(commodities[1].value_mbps, 100.0);
  EXPECT_DOUBLE_EQ(commodities[2].value_mbps, 50.0);
  EXPECT_EQ(commodities[0].src_core, 2);
  EXPECT_EQ(commodities[0].dst_core, 0);
}

TEST(Commodities, DeterministicTieBreak) {
  CoreGraph app("ties");
  app.add_core("a", 1.0);
  app.add_core("b", 1.0);
  app.add_core("c", 1.0);
  app.add_flow(1, 2, 10.0);
  app.add_flow(0, 1, 10.0);
  app.add_flow(0, 2, 10.0);
  const auto commodities = commodities_by_value(app);
  EXPECT_EQ(commodities[0].src_core, 0);
  EXPECT_EQ(commodities[0].dst_core, 1);
  EXPECT_EQ(commodities[1].src_core, 0);
  EXPECT_EQ(commodities[1].dst_core, 2);
  EXPECT_EQ(commodities[2].src_core, 1);
}

}  // namespace
}  // namespace sunmap::mapping
