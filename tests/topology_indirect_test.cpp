#include <gtest/gtest.h>

#include <algorithm>

#include "graph/paths.h"
#include "topo/butterfly.h"
#include "topo/clos.h"

namespace sunmap::topo {
namespace {

TEST(Clos, StructureMatchesParameters) {
  Clos clos(4, 2, 4);  // the paper's Fig 2(a): 8 cores, 4 switches per stage
  EXPECT_EQ(clos.num_switches(), 12);
  EXPECT_EQ(clos.num_slots(), 8);
  EXPECT_FALSE(clos.is_direct());
  // Full bipartite interconnection between adjacent stages.
  EXPECT_EQ(clos.switch_graph().num_edges(), 4 * 4 + 4 * 4);
  EXPECT_EQ(clos.num_network_links(), 32);
  // Indirect cores attach twice (ingress + egress).
  EXPECT_EQ(clos.num_core_links(), 16);
}

TEST(Clos, EveryRouteHasThreeSwitches) {
  Clos clos(4, 4, 4);
  for (SlotId a = 0; a < clos.num_slots(); ++a) {
    for (SlotId b = 0; b < clos.num_slots(); ++b) {
      if (a == b) continue;
      EXPECT_EQ(clos.min_switch_hops(a, b), 3);
    }
  }
}

TEST(Clos, PathDiversityEqualsMiddleSwitches) {
  Clos clos(4, 2, 4);
  // Any slot pair has exactly m = 4 minimum paths (one per middle switch).
  EXPECT_EQ(graph::count_min_paths(clos.switch_graph(),
                                   clos.ingress_switch(0),
                                   clos.egress_switch(7)),
            4);
}

TEST(Clos, QuadrantIsIngressMiddlesEgress) {
  Clos clos(3, 2, 2);
  auto quadrant = clos.quadrant_nodes(0, 3);
  std::sort(quadrant.begin(), quadrant.end());
  // ingress 0, middles {2,3,4}, egress of slot 3 = node 5+1 = 6.
  EXPECT_EQ(quadrant, (std::vector<graph::NodeId>{0, 2, 3, 4, 6}));
}

TEST(Clos, SwitchPortsMatchStageRole) {
  Clos clos(4, 2, 4);
  // Ingress: 2 cores in, 4 middle links out.
  EXPECT_EQ(clos.switch_in_ports(clos.ingress_node(0)), 2);
  EXPECT_EQ(clos.switch_out_ports(clos.ingress_node(0)), 4);
  // Middle: r in, r out.
  EXPECT_EQ(clos.switch_in_ports(clos.middle_node(0)), 4);
  EXPECT_EQ(clos.switch_out_ports(clos.middle_node(0)), 4);
  // Egress: 4 middle links in, 2 cores out.
  EXPECT_EQ(clos.switch_in_ports(clos.egress_node(0)), 4);
  EXPECT_EQ(clos.switch_out_ports(clos.egress_node(0)), 2);
}

TEST(Clos, DimensionOrderedPathIsValid) {
  Clos clos(4, 2, 4);
  for (SlotId a = 0; a < clos.num_slots(); ++a) {
    for (SlotId b = 0; b < clos.num_slots(); ++b) {
      if (a == b) continue;
      const auto path = clos.dimension_ordered_path(a, b);
      EXPECT_EQ(path.size(), 3u);
      EXPECT_NO_THROW(clos.make_path(path));
    }
  }
}

TEST(Clos, RejectsBadParameters) {
  EXPECT_THROW(Clos(0, 2, 2), std::invalid_argument);
  EXPECT_THROW(Clos(2, 0, 2), std::invalid_argument);
  EXPECT_THROW(Clos(2, 2, 0), std::invalid_argument);
}

TEST(Butterfly, StructureOf2Ary3Fly) {
  Butterfly fly(2, 3);  // the paper's Fig 2(b)
  EXPECT_EQ(fly.num_slots(), 8);
  EXPECT_EQ(fly.switches_per_stage(), 4);
  EXPECT_EQ(fly.num_switches(), 12);
  // Every switch is 2x2.
  for (graph::NodeId sw = 0; sw < fly.num_switches(); ++sw) {
    EXPECT_EQ(fly.switch_radix(sw), 2) << sw;
  }
}

TEST(Butterfly, Figure2bWiring) {
  Butterfly fly(2, 3);
  const auto& g = fly.switch_graph();
  // "Switch 0 of stage 1 is connected to switches 0 and 2 of stage 2."
  EXPECT_TRUE(g.has_edge(fly.switch_at(0, 0), fly.switch_at(1, 0)));
  EXPECT_TRUE(g.has_edge(fly.switch_at(0, 0), fly.switch_at(1, 2)));
  EXPECT_FALSE(g.has_edge(fly.switch_at(0, 0), fly.switch_at(1, 1)));
  // "Switch 0 of second stage is connected to switches 0 and 1 of third."
  EXPECT_TRUE(g.has_edge(fly.switch_at(1, 0), fly.switch_at(2, 0)));
  EXPECT_TRUE(g.has_edge(fly.switch_at(1, 0), fly.switch_at(2, 1)));
  EXPECT_FALSE(g.has_edge(fly.switch_at(1, 0), fly.switch_at(2, 2)));
}

TEST(Butterfly, NoPathDiversity) {
  Butterfly fly(4, 2);  // the paper's VOPD topology
  for (SlotId a = 0; a < fly.num_slots(); ++a) {
    for (SlotId b = 0; b < fly.num_slots(); ++b) {
      if (a == b) continue;
      EXPECT_EQ(graph::count_min_paths(fly.switch_graph(),
                                       fly.ingress_switch(a),
                                       fly.egress_switch(b)),
                1);
    }
  }
}

TEST(Butterfly, EveryRouteTraversesAllStages) {
  Butterfly fly(4, 2);
  for (SlotId a = 0; a < fly.num_slots(); ++a) {
    for (SlotId b = 0; b < fly.num_slots(); ++b) {
      if (a == b) continue;
      EXPECT_EQ(fly.min_switch_hops(a, b), 2);
      const auto path = fly.dimension_ordered_path(a, b);
      EXPECT_EQ(path.size(), 2u);
      EXPECT_NO_THROW(fly.make_path(path));
      EXPECT_EQ(path.front(), fly.ingress_switch(a));
      EXPECT_EQ(path.back(), fly.egress_switch(b));
    }
  }
}

TEST(Butterfly, FourAry2FlyHas8FourByFourSwitches) {
  Butterfly fly(4, 2);  // what SUNMAP picks for VOPD: "all switches are 4x4"
  EXPECT_EQ(fly.num_switches(), 8);
  EXPECT_EQ(fly.num_slots(), 16);
  for (graph::NodeId sw = 0; sw < fly.num_switches(); ++sw) {
    EXPECT_EQ(fly.switch_in_ports(sw), 4);
    EXPECT_EQ(fly.switch_out_ports(sw), 4);
  }
}

TEST(Butterfly, TerminalAttachment) {
  Butterfly fly(2, 3);
  EXPECT_EQ(fly.ingress_switch(5), fly.switch_at(0, 2));  // 5/2 = 2
  EXPECT_EQ(fly.egress_switch(5), fly.switch_at(2, 2));
}

TEST(Butterfly, RejectsBadParameters) {
  EXPECT_THROW(Butterfly(1, 3), std::invalid_argument);
  EXPECT_THROW(Butterfly(2, 0), std::invalid_argument);
  EXPECT_THROW(Butterfly(2, 17), std::invalid_argument);
}

TEST(Butterfly, SingleStageDegenerateWorks) {
  Butterfly fly(4, 1);  // one 4x4 switch connecting 4 terminals
  EXPECT_EQ(fly.num_switches(), 1);
  EXPECT_EQ(fly.num_slots(), 4);
  EXPECT_EQ(fly.min_switch_hops(0, 3), 1);
}

}  // namespace
}  // namespace sunmap::topo
