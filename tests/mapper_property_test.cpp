// Randomised property sweep of the mapping engine over synthetic
// applications and the full topology library.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "apps/apps.h"
#include "mapping/mapper.h"
#include "topo/library.h"

namespace sunmap::mapping {
namespace {

class SyntheticSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  CoreGraph make_app() const {
    apps::SyntheticSpec spec;
    spec.num_cores = std::get<0>(GetParam());
    spec.seed = std::get<1>(GetParam());
    spec.edge_density = 0.15;
    spec.max_bandwidth_mbps = 300.0;
    return apps::synthetic(spec);
  }
};

TEST_P(SyntheticSweep, MappingValidOnEveryTopology) {
  const auto app = make_app();
  const auto library = topo::standard_library(app.num_cores());
  MapperConfig config;
  config.swap_passes = 1;
  Mapper mapper(config);
  for (const auto& topology : library) {
    const auto result = mapper.map(app, *topology);
    // Injective onto valid slots.
    std::set<int> used;
    for (int slot : result.core_to_slot) {
      EXPECT_GE(slot, 0);
      EXPECT_LT(slot, topology->num_slots());
      EXPECT_TRUE(used.insert(slot).second);
    }
    // Every commodity's weighted hops at least the topology minimum.
    const auto commodities = commodities_by_value(app);
    for (std::size_t k = 0; k < commodities.size(); ++k) {
      const int src =
          result.core_to_slot[static_cast<std::size_t>(
              commodities[k].src_core)];
      const int dst =
          result.core_to_slot[static_cast<std::size_t>(
              commodities[k].dst_core)];
      EXPECT_GE(result.eval.routes[k].weighted_switch_hops(),
                topology->min_switch_hops(src, dst) - 1e-9)
          << topology->name();
    }
    // Aggregates are internally consistent.
    EXPECT_GT(result.eval.avg_switch_hops, 1.0);
    EXPECT_GT(result.eval.design_area_mm2, app.total_core_area_mm2());
    EXPECT_NEAR(result.eval.design_power_mw,
                result.eval.dynamic_power_mw + result.eval.static_power_mw,
                1e-9);
  }
}

TEST_P(SyntheticSweep, FeasibilityMonotoneInLinkBandwidth) {
  // If a mapping meets a bandwidth budget, the same mapping must meet any
  // larger budget (evaluated on the identical placement).
  const auto app = make_app();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig tight;
  tight.link_bandwidth_mbps = 250.0;
  tight.swap_passes = 1;
  Mapper tight_mapper(tight);
  const auto result = tight_mapper.map(app, *mesh);

  MapperConfig loose = tight;
  loose.link_bandwidth_mbps = 1000.0;
  Mapper loose_mapper(loose);
  const auto loose_eval =
      loose_mapper.evaluate(app, *mesh, result.core_to_slot);
  if (result.eval.bandwidth_feasible) {
    EXPECT_TRUE(loose_eval.bandwidth_feasible);
  }
  EXPECT_LE(loose_eval.max_link_load_mbps,
            result.eval.max_link_load_mbps + 1e-6);
}

TEST_P(SyntheticSweep, SplitRoutingNeverNeedsMoreBandwidthThanSinglePath) {
  // On a fixed placement, splitting a commodity can only reduce the peak
  // link load relative to the same engine's single-path choice.
  const auto app = make_app();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  MapperConfig single;
  single.routing = route::RoutingKind::kMinPath;
  single.swap_passes = 0;
  Mapper single_mapper(single);
  const auto mapped = single_mapper.map(app, *mesh);

  MapperConfig split = single;
  split.routing = route::RoutingKind::kSplitAll;
  Mapper split_mapper(split);
  const auto split_eval =
      split_mapper.evaluate(app, *mesh, mapped.core_to_slot);
  EXPECT_LE(split_eval.max_link_load_mbps,
            mapped.eval.max_link_load_mbps + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SyntheticSweep,
    ::testing::Combine(::testing::Values(6, 9, 12),
                       ::testing::Values(1ull, 7ull, 13ull)),
    [](const auto& info) {
      return "cores" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(MapperRegression, Mpeg4RoutingBandwidthOrdering) {
  // The Fig 9(a) ordering DO >= MP >= SM >= SA must hold for the mapped
  // results (each routing function mapped with its own search).
  const auto app = apps::mpeg4();
  const auto mesh = topo::make_mesh_for(app.num_cores());
  double previous = std::numeric_limits<double>::infinity();
  for (route::RoutingKind kind : route::kAllRoutingKinds) {
    MapperConfig config;
    config.routing = kind;
    Mapper mapper(config);
    const auto result = mapper.map(app, *mesh);
    EXPECT_LE(result.eval.max_link_load_mbps, previous + 1e-6)
        << route::to_string(kind);
    previous = result.eval.max_link_load_mbps;
  }
}

}  // namespace
}  // namespace sunmap::mapping
