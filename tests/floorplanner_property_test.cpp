// Randomised property sweep of the floorplanner: for random block shapes
// (mixed hard/soft, varied areas, partially used slots) over every library
// topology, the layout must be legal and the LP engine must agree with the
// longest-path engine on chip extents.

#include <gtest/gtest.h>

#include <memory>

#include "fplan/floorplanner.h"
#include "topo/library.h"
#include "util/prng.h"

namespace sunmap::fplan {
namespace {

struct Case {
  int topo_index;
  std::uint64_t seed;
};

class RandomBlocks : public ::testing::TestWithParam<Case> {
 protected:
  void build() {
    auto library = topo::standard_library(8, /*include_extensions=*/true);
    topology_ = std::move(
        library[static_cast<std::size_t>(GetParam().topo_index)]);
    util::Prng prng(GetParam().seed);

    cores_.resize(static_cast<std::size_t>(topology_->num_slots()));
    for (int s = 0; s < topology_->num_slots(); ++s) {
      if (prng.chance(0.2)) continue;  // leave some slots empty
      if (prng.chance(0.3)) {
        const double w = 1.0 + prng.next_double() * 2.0;
        const double h = 1.0 + prng.next_double() * 2.0;
        cores_[static_cast<std::size_t>(s)] = BlockShape::hard_block(w, h);
      } else {
        cores_[static_cast<std::size_t>(s)] =
            BlockShape::soft_block(1.0 + prng.next_double() * 7.0);
      }
    }
    switches_.clear();
    for (int sw = 0; sw < topology_->num_switches(); ++sw) {
      switches_.push_back(
          BlockShape::soft_block(0.1 + prng.next_double() * 0.4));
    }
  }

  std::unique_ptr<topo::Topology> topology_;
  std::vector<std::optional<BlockShape>> cores_;
  std::vector<BlockShape> switches_;
};

TEST_P(RandomBlocks, BandLayoutLegal) {
  build();
  const auto fp = Floorplanner().place(topology_->relative_placement(),
                                       cores_, switches_);
  EXPECT_TRUE(fp.overlap_free(1e-6)) << topology_->name();
  EXPECT_TRUE(fp.within_bounds(1e-6)) << topology_->name();
  // Block areas are preserved.
  for (const auto& block : fp.blocks()) {
    if (block.kind != PlacedBlock::Kind::kCore) continue;
    const auto& shape = cores_[static_cast<std::size_t>(block.index)];
    ASSERT_TRUE(shape.has_value());
    EXPECT_NEAR(block.w * block.h, shape->area_mm2, 1e-6);
  }
}

TEST_P(RandomBlocks, LpMatchesBandExtents) {
  build();
  Floorplanner::Options lp_options;
  lp_options.engine = Floorplanner::Engine::kSimplexLp;
  const auto lp = Floorplanner(lp_options).place(
      topology_->relative_placement(), cores_, switches_);
  const auto band = Floorplanner().place(topology_->relative_placement(),
                                         cores_, switches_);
  EXPECT_NEAR(lp.width_mm() + lp.height_mm(),
              band.width_mm() + band.height_mm(), 1e-4)
      << topology_->name();
  EXPECT_TRUE(lp.overlap_free(1e-6));
}

std::vector<Case> sweep() {
  std::vector<Case> cases;
  for (int t = 0; t < 7; ++t) {
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
      cases.push_back(Case{t, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomBlocks, ::testing::ValuesIn(sweep()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return "topo" +
                                  std::to_string(info.param.topo_index) +
                                  "_seed" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace sunmap::fplan
